#include "core/nash.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/simd.hpp"
#include "numerics/optimize.hpp"
#include "numerics/rng.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/perfcount.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

namespace gw::core {

// Work accounting convention (DESIGN.md): units are recorded here, at the
// solver call sites of the virtual evaluation primitives, never inside
// discipline implementations — one congestion_into(n) is n users
// evaluated, one jacobian_into / second_partials_into is n*n cells,
// whatever the discipline does internally to fill them.
namespace work = obs::work;

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

void validate_sizes(const UtilityProfile& profile,
                    const std::vector<double>& rates) {
  if (profile.size() != rates.size() || profile.empty()) {
    throw std::invalid_argument("nash: profile / rate size mismatch");
  }
  for (const auto& u : profile) {
    if (u == nullptr) throw std::invalid_argument("nash: null utility");
  }
}

/// Per-thread solver scratch: rates are validated once at a solver's entry,
/// then every sweep / residual / matrix assembly below runs against these
/// reusable buffers and the workspace without touching the heap.
struct SolverScratch {
  EvalWorkspace ws;
  std::vector<double> rates;       ///< mutable copy for const-rate callers
  std::vector<double> congestion;  ///< C(r) staging
  std::vector<double> responses;   ///< synchronous-sweep best responses
  std::vector<double> diag;        ///< FDC Jacobian diagonal
  std::vector<std::size_t> order;  ///< sweep order
  numerics::Matrix jac;            ///< batched dC_i/dr_j
  numerics::Matrix hess;           ///< batched d2C_i/(dr_i dr_j)
  std::vector<double> trial;       ///< relax_equilibrium step candidate
};

SolverScratch& solver_scratch() {
  thread_local SolverScratch scratch;
  return scratch;
}

/// Marginal-rate-of-substitution derivatives of utility i at (r, c):
/// M = u_r / u_c, dM/dr and dM/dc by the quotient rule.
struct MarginalTerms {
  double dm_dr = 0.0;
  double dm_dc = 0.0;
};

MarginalTerms marginal_terms(const Utility& u, double r, double c) {
  const double ur = u.du_dr(r, c);
  const double uc = u.du_dc(r, c);
  const double urr = u.d2u_dr2(r, c);
  const double ucc = u.d2u_dc2(r, c);
  const double urc = u.d2u_drdc(r, c);
  MarginalTerms t;
  t.dm_dr = (urr * uc - ur * urc) / (uc * uc);
  t.dm_dc = (urc * uc - ur * ucc) / (uc * uc);
  return t;
}

/// In-place Fisher–Yates identical to numerics::Rng::permutation (same
/// draw sequence, so kRandomPermutation sweeps are bit-for-bit reproducible)
/// without the per-sweep vector.
void permutation_into(numerics::Rng& rng, std::span<std::size_t> order) {
  const std::size_t n = order.size();
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.uniform_index(i);
    std::swap(order[i - 1], order[j]);
  }
}

}  // namespace

BestResponse best_response(const AllocationFunction& alloc,
                           const Utility& utility, std::span<double> rates,
                           std::size_t i, const BestResponseOptions& options,
                           EvalWorkspace& ws) {
  const double saved = rates[i];
  // Captures are packed behind one pointer so the closure fits
  // std::function's small-buffer storage: the scan loop must stay
  // heap-allocation-free (E-EVAL verdict in bench_micro).
  struct Ctx {
    const AllocationFunction& alloc;
    const Utility& utility;
    std::span<double> rates;
    std::size_t i;
    EvalWorkspace& ws;
    bool fast;
  } ctx{alloc, utility, rates, i, ws,
        // Sort-based disciplines stage per-probe tables once (O(n log n))
        // and answer each probe in O(log n), bit-identical to the generic
        // congestion_of_into path. Opponent rates are fixed for the whole
        // scan, which is exactly the tables' validity contract.
        alloc.scan_prepare(i, rates, ws)};
  work::add(work::Kind::kBestResponseCalls, 1);
  auto payoff = [&ctx](double x) {
    work::add(work::Kind::kUsersEvaluated, 1);
    if (ctx.fast) {
      return ctx.utility.value(
          x, ctx.alloc.scan_congestion_of(ctx.i, x, ctx.rates, ctx.ws));
    }
    ctx.rates[ctx.i] = x;
    const double c = ctx.alloc.congestion_of_into(ctx.i, ctx.rates, ctx.ws);
    return ctx.utility.value(x, c);
  };
  numerics::Optimize1DOptions opt;
  opt.scan_points = options.scan_points;
  double lo = options.r_min;
  double hi = options.r_max;
  bool narrowed = false;
  if (options.warm_radius > 0.0) {
    const double wlo = std::max(options.r_min, saved - options.warm_radius);
    const double whi = std::min(options.r_max, saved + options.warm_radius);
    if (whi > wlo && (wlo > options.r_min || whi < options.r_max)) {
      lo = wlo;
      hi = whi;
      narrowed = true;
      opt.scan_points = std::min(options.scan_points,
                                 std::max(3, options.warm_scan_points));
    }
  }
  auto found = numerics::maximize_scan(payoff, lo, hi, opt);
  if (narrowed) {
    // A maximum pinned to a shrunken window edge means the true best
    // response may lie outside the warm window: redo the full scan.
    const double step = (hi - lo) / (opt.scan_points - 1);
    const bool pinned_lo = found.x <= lo + step && lo > options.r_min;
    const bool pinned_hi = found.x >= hi - step && hi < options.r_max;
    if (pinned_lo || pinned_hi) {
      opt.scan_points = options.scan_points;
      found = numerics::maximize_scan(payoff, options.r_min, options.r_max,
                                      opt);
    }
  }
  rates[i] = saved;
  return {found.x, found.value};
}

BestResponse best_response(const AllocationFunction& alloc,
                           const Utility& utility, std::vector<double> rates,
                           std::size_t i, const BestResponseOptions& options) {
  if (i >= rates.size()) throw std::invalid_argument("best_response: bad index");
  AllocationFunction::validate_rates(rates);
  return best_response(alloc, utility, std::span<double>(rates), i, options,
                       solver_scratch().ws);
}

NashResult solve_nash(const AllocationFunction& alloc,
                      const UtilityProfile& profile, std::vector<double> start,
                      const NashOptions& options) {
  validate_sizes(profile, start);
  AllocationFunction::validate_rates(start);
  auto& registry = obs::default_registry();
  static auto& solve_seconds =
      registry.histogram("core.nash.solve_seconds", 0.0, 2.0, 128);
  const obs::ScopedTimer timer(solve_seconds);
  const std::size_t n = start.size();
  numerics::Rng rng(options.seed);
  NashResult result;
  result.rates = std::move(start);

  auto& scratch = solver_scratch();
  scratch.responses.resize(n);
  scratch.order.resize(n);
  const std::span<double> rates(result.rates);

  auto flight =
      obs::FlightRecorder::begin("core.solve_nash", n, obs::FlightRung::kSolve);
  for (int it = 0; it < options.max_iterations; ++it) {
    work::add(work::Kind::kGsSweeps, 1);
    double max_move = 0.0;
    if (options.order == UpdateOrder::kSynchronous) {
      for (std::size_t i = 0; i < n; ++i) {
        scratch.responses[i] =
            best_response(alloc, *profile[i], rates, i, options.best_response,
                          scratch.ws)
                .rate;
      }
      for (std::size_t i = 0; i < n; ++i) {
        const double next = (1.0 - options.damping) * result.rates[i] +
                            options.damping * scratch.responses[i];
        max_move = std::max(max_move, std::abs(next - result.rates[i]));
        result.rates[i] = next;
      }
    } else {
      if (options.order == UpdateOrder::kRandomPermutation) {
        permutation_into(rng, scratch.order);
      } else {
        for (std::size_t i = 0; i < n; ++i) scratch.order[i] = i;
      }
      for (const std::size_t i : scratch.order) {
        const double response =
            best_response(alloc, *profile[i], rates, i, options.best_response,
                          scratch.ws)
                .rate;
        const double next = (1.0 - options.damping) * result.rates[i] +
                            options.damping * response;
        max_move = std::max(max_move, std::abs(next - result.rates[i]));
        result.rates[i] = next;
      }
    }
    result.iterations = it + 1;
    result.max_move = max_move;
    // Best-response dynamics has no KKT residual on hand: the convergence
    // quantity is the sweep's max rate move, so the residual slot stays NaN.
    flight.iteration(kNan, max_move, options.damping, 0);
    if (max_move <= options.tolerance) {
      result.converged = true;
      break;
    }
  }
  flight.verdict(result.converged, kNan);
  registry.counter("core.nash.solves").inc();
  registry.counter("core.nash.iterations_total")
      .inc(static_cast<std::uint64_t>(result.iterations));
  registry.counter("core.nash.best_responses")
      .inc(static_cast<std::uint64_t>(result.iterations) * n);
  registry.histogram("core.nash.iterations_per_solve", 0.0, 512.0, 64)
      .observe(result.iterations);
  if (!result.converged) registry.counter("core.nash.non_converged").inc();
  if (auto* trace = obs::active_trace()) {
    trace->instant("core",
                   result.converged ? "nash solve converged"
                                    : "nash solve hit max_iterations",
                   static_cast<double>(obs::wall_now_us()), "iterations",
                   static_cast<double>(result.iterations));
  }
  return result;
}

std::vector<double> fdc_residuals(const AllocationFunction& alloc,
                                  const UtilityProfile& profile,
                                  const std::vector<double>& rates) {
  validate_sizes(profile, rates);
  AllocationFunction::validate_rates(rates);
  const std::size_t n = rates.size();
  auto& scratch = solver_scratch();
  scratch.congestion.resize(n);
  work::add(work::Kind::kUsersEvaluated, n);
  alloc.congestion_into(rates, scratch.congestion, scratch.ws);
  std::vector<double> residuals(n, kNan);
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(scratch.congestion[i])) continue;
    const double m =
        profile[i]->marginal_ratio(rates[i], scratch.congestion[i]);
    const double slope = alloc.partial(i, i, rates);
    if (std::isfinite(m) && std::isfinite(slope)) residuals[i] = m + slope;
  }
  return residuals;
}

bool is_nash(const AllocationFunction& alloc, const UtilityProfile& profile,
             const std::vector<double>& rates, double utility_slack,
             const BestResponseOptions& options) {
  validate_sizes(profile, rates);
  AllocationFunction::validate_rates(rates);
  const std::size_t n = rates.size();
  auto& scratch = solver_scratch();
  scratch.congestion.resize(n);
  work::add(work::Kind::kUsersEvaluated, n);
  alloc.congestion_into(rates, scratch.congestion, scratch.ws);
  scratch.rates.assign(rates.begin(), rates.end());
  for (std::size_t i = 0; i < n; ++i) {
    const double current = profile[i]->value(rates[i], scratch.congestion[i]);
    const auto response = best_response(alloc, *profile[i], scratch.rates, i,
                                        options, scratch.ws);
    if (response.utility > current + utility_slack) return false;
  }
  return true;
}

double fdc_jacobian_entry(const AllocationFunction& alloc,
                          const UtilityProfile& profile,
                          const std::vector<double>& rates, std::size_t i,
                          std::size_t j) {
  const double c = alloc.congestion_of(i, rates);
  const MarginalTerms t = marginal_terms(*profile[i], rates[i], c);
  const double dci_drj = alloc.partial(i, j, rates);
  const double d2ci = alloc.second_partial(i, j, rates);
  double entry = t.dm_dc * dci_drj + d2ci;
  if (i == j) entry += t.dm_dr;
  return entry;
}

FdcTerms fdc_terms(const AllocationFunction& alloc, const Utility& utility,
                   const std::vector<double>& rates, std::size_t i) {
  if (i >= rates.size()) throw std::invalid_argument("fdc_terms: bad index");
  AllocationFunction::validate_rates(rates);
  FdcTerms terms{kNan, kNan};
  // The ctrl shard repair ladder's coordinate-Newton rung runs on this
  // entry point, so it is metered like the batched passes above.
  work::add(work::Kind::kUsersEvaluated, 1);
  const double c = alloc.congestion_of(i, rates);
  if (!std::isfinite(c)) return terms;
  const double m = utility.marginal_ratio(rates[i], c);
  const double dci = alloc.partial(i, i, rates);
  if (!std::isfinite(m) || !std::isfinite(dci)) return terms;
  terms.residual = m + dci;
  const MarginalTerms t = marginal_terms(utility, rates[i], c);
  terms.slope = t.dm_dr + t.dm_dc * dci + alloc.second_partial(i, i, rates);
  return terms;
}

namespace {

/// Clamp bounds shared by the incremental repair engines (the same bounds
/// newton_relaxation has always used for its Jacobi step).
constexpr double kRepairFloor = 1e-9;
constexpr double kRepairCap = 0.9999;

/// Projected (KKT) FDC residual: at an interior point the equilibrium
/// condition is E_i = 0, but a user pinned at the rate floor is at her best
/// response whenever E_i >= 0 (utility falls in r there; dU/dr = U_c * E
/// with U_c < 0), and symmetrically E_i <= 0 at the cap. Densely-coupled
/// disciplines produce such boundary equilibria routinely — under FIFO a
/// sufficiently delay-averse user's best response is to send (almost)
/// nothing — so convergence tests on raw |E_i| would never pass there.
double projected_residual(double residual, double rate) {
  if (std::isnan(residual)) return std::numeric_limits<double>::infinity();
  if (rate <= 2.0 * kRepairFloor) return std::max(0.0, -residual);
  if (rate >= kRepairCap) return std::max(0.0, residual);
  return std::abs(residual);
}

}  // namespace

RelaxResult relax_equilibrium(const AllocationFunction& alloc,
                              const UtilityProfile& profile,
                              std::vector<double>& rates,
                              const RelaxOptions& options) {
  validate_sizes(profile, rates);
  AllocationFunction::validate_rates(rates);
  const std::size_t n = rates.size();
  auto& scratch = solver_scratch();
  scratch.congestion.resize(n);
  scratch.responses.resize(n);  // FDC residuals
  scratch.diag.resize(n);       // dE_i/dr_i
  RelaxResult result;
  // Adaptive under-relaxation: the Theorem 7 one-shot property needs the
  // undamped Newton step, so damping starts (and, after transients,
  // returns to) 1; a sweep that grows the residual halves it, a sweep that
  // shrinks the residual doubles it back. On games where the synchronous
  // sweep is the wrong engine entirely — FIFO's congestion couples every
  // user to the total load, so Jacobi steps overshoot collectively and
  // orbit a limit cycle — no damping schedule converges, and the sweep
  // loop instead detects the lack of progress and gives up early so the
  // caller escalates to the (sequential, scan-based) best-response solve.
  double damping_scale = 1.0;
  double prev_residual = std::numeric_limits<double>::infinity();
  double initial_residual = std::numeric_limits<double>::infinity();
  double best_residual = std::numeric_limits<double>::infinity();
  auto flight =
      obs::FlightRecorder::begin("core.relax", n, obs::FlightRung::kRelax);
  double last_step = 0.0;  // max per-user move of the previous sweep's step
  for (int it = 0; true; ++it) {
    // One batched congestion / Jacobian / second-partials pass feeds every
    // residual and slope of the sweep (vs the per-entry recomputation in
    // newton_relaxation, which exists to expose the trajectory).
    work::add(work::Kind::kUsersEvaluated, n);
    work::add(work::Kind::kJacobianCells, 2 * n * n);
    alloc.congestion_into(rates, scratch.congestion, scratch.ws);
    alloc.jacobian_into(rates, scratch.jac, scratch.ws);
    alloc.second_partials_into(rates, scratch.hess, scratch.ws);
    double max_residual = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double residual = kNan;
      double slope = kNan;
      if (std::isfinite(scratch.congestion[i])) {
        const double m =
            profile[i]->marginal_ratio(rates[i], scratch.congestion[i]);
        const double dci = scratch.jac(i, i);
        if (std::isfinite(m) && std::isfinite(dci)) {
          residual = m + dci;
          const MarginalTerms t =
              marginal_terms(*profile[i], rates[i], scratch.congestion[i]);
          slope = t.dm_dr + t.dm_dc * dci + scratch.hess(i, i);
        }
      }
      scratch.responses[i] = residual;
      scratch.diag[i] = slope;
      max_residual =
          std::max(max_residual, projected_residual(residual, rates[i]));
    }
    result.iterations = it;
    result.max_residual = max_residual;
    if (flight.armed()) {
      std::size_t pinned = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (rates[i] <= 2.0 * kRepairFloor || rates[i] >= kRepairCap) ++pinned;
      }
      flight.iteration(max_residual, last_step, damping_scale, pinned);
    }
    if (max_residual <= options.tolerance) {
      result.converged = true;
      break;
    }
    if (it >= options.max_iterations) break;
    if (it == 0) initial_residual = max_residual;
    best_residual = std::min(best_residual, max_residual);
    // Eight sweeps with essentially no progress: this game's coupling does
    // not relax synchronously — stop burning the budget.
    if (it >= 8 && best_residual > 0.9 * initial_residual) break;
    if (max_residual > prev_residual) {
      damping_scale = std::max(damping_scale * 0.5, 1.0 / 64.0);
    } else {
      damping_scale = std::min(damping_scale * 2.0, 1.0);
    }
    prev_residual = max_residual;
    // Jacobi step, same clamp as newton_relaxation: all slopes evaluated at
    // the unmodified sweep point, then every user moves at once. The full
    // Newton step comes first (preserving the Theorem 7 one-shot property in
    // the linear regime); if the per-user clamp still lets the joint step
    // saturate the switch (total load >= 1 evaluates to non-finite
    // congestion), the whole step vector is halved until the trial point is
    // feasible again. A sweep therefore never strands the state at a point
    // it cannot evaluate — if no damping makes the step feasible (e.g. the
    // start was already saturated), the relaxation gives up and the caller
    // escalates to a scan-based solve, which handles saturation natively.
    scratch.trial.resize(n);
    double damping = damping_scale;
    bool stepped = false;
    for (int halvings = 0; halvings < 6 && !stepped; ++halvings) {
      for (std::size_t i = 0; i < n; ++i) {
        const double residual = scratch.responses[i];
        const double slope = scratch.diag[i];
        double next = rates[i];
        if (!std::isnan(residual) && slope != 0.0 && std::isfinite(slope)) {
          next = std::clamp(rates[i] - damping * residual / slope,
                            kRepairFloor, kRepairCap);
        }
        scratch.trial[i] = next;
      }
      work::add(work::Kind::kUsersEvaluated, n);
      alloc.congestion_into(scratch.trial, scratch.congestion, scratch.ws);
      stepped = true;
      for (std::size_t i = 0; i < n; ++i) {
        if (!std::isfinite(scratch.congestion[i])) {
          stepped = false;
          break;
        }
      }
      if (stepped) {
        if (flight.armed()) {
          last_step = 0.0;
          for (std::size_t i = 0; i < n; ++i) {
            last_step =
                std::max(last_step, std::abs(scratch.trial[i] - rates[i]));
          }
        }
        std::copy(scratch.trial.begin(), scratch.trial.end(), rates.begin());
      } else {
        flight.backtrack(damping * 0.5);  // trial saturated; halve the step
      }
      damping *= 0.5;
    }
    if (!stepped) break;  // wedged against saturation; escalate
  }
  flight.verdict(result.converged, result.max_residual);
  obs::default_registry()
      .counter("core.nash.relax_sweeps_total")
      .inc(static_cast<std::uint64_t>(result.iterations));
  return result;
}

NewtonFdcResult newton_fdc(const AllocationFunction& alloc,
                           const UtilityProfile& profile,
                           std::vector<double>& rates,
                           const NewtonFdcOptions& options) {
  validate_sizes(profile, rates);
  AllocationFunction::validate_rates(rates);
  const std::size_t n = rates.size();
  auto& scratch = solver_scratch();
  scratch.congestion.resize(n);
  scratch.responses.resize(n);
  scratch.trial.resize(n);

  // Residuals E_i at `point` into scratch.responses (congestion and the
  // allocation Jacobian stay loaded for the Jacobian assembly below);
  // returns the max projected (KKT) residual, infinite when any entry
  // fails to evaluate.
  const auto residual_pass = [&](const std::vector<double>& point) {
    work::add(work::Kind::kUsersEvaluated, n);
    work::add(work::Kind::kJacobianCells, n * n);
    alloc.congestion_into(point, scratch.congestion, scratch.ws);
    alloc.jacobian_into(point, scratch.jac, scratch.ws);
    double max_res = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double e = kNan;
      if (std::isfinite(scratch.congestion[i])) {
        const double m =
            profile[i]->marginal_ratio(point[i], scratch.congestion[i]);
        const double dci = scratch.jac(i, i);
        if (std::isfinite(m) && std::isfinite(dci)) e = m + dci;
      }
      scratch.responses[i] = e;
      max_res = std::max(max_res, projected_residual(e, point[i]));
    }
    return max_res;
  };

  NewtonFdcResult result;
  double max_residual = residual_pass(rates);
  numerics::Matrix jacobian(n, n);
  std::vector<double> rhs(n);
  auto flight = obs::FlightRecorder::begin("core.newton_fdc", n,
                                           obs::FlightRung::kNewton);
  double last_step = 0.0;   // max per-user move of the last accepted step
  double last_alpha = 1.0;  // line-search factor of the last accepted step
  for (int it = 0; true; ++it) {
    result.iterations = it;
    result.max_residual = max_residual;
    if (flight.armed()) {
      std::size_t pinned = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const double e = scratch.responses[i];
        if ((rates[i] <= 2.0 * kRepairFloor && e >= 0.0) ||
            (rates[i] >= kRepairCap && e <= 0.0)) {
          ++pinned;
        }
      }
      flight.iteration(max_residual, last_step, last_alpha, pinned);
    }
    if (max_residual <= options.tolerance) {
      result.converged = true;
      break;
    }
    if (it >= options.max_iterations || !std::isfinite(max_residual)) break;
    // Full dE_i/dr_j from the batched partials already loaded at `rates`.
    // Users pinned at a bound with the KKT sign satisfied are frozen out
    // of the system (identity row, zero column): their raw E_i is nonzero
    // by design and must push neither themselves nor anyone else.
    work::add(work::Kind::kJacobianCells, n * n);
    alloc.second_partials_into(rates, scratch.hess, scratch.ws);
    scratch.diag.resize(n);  // active-set mask for this assembly
    for (std::size_t i = 0; i < n; ++i) {
      const double e = scratch.responses[i];
      const bool pinned =
          (rates[i] <= 2.0 * kRepairFloor && e >= 0.0) ||
          (rates[i] >= kRepairCap && e <= 0.0);
      scratch.diag[i] = pinned ? 1.0 : 0.0;
    }
    bool assembled = true;
    for (std::size_t i = 0; i < n && assembled; ++i) {
      if (scratch.diag[i] != 0.0) {
        for (std::size_t j = 0; j < n; ++j) jacobian(i, j) = i == j;
        rhs[i] = 0.0;
        continue;
      }
      const MarginalTerms t =
          marginal_terms(*profile[i], rates[i], scratch.congestion[i]);
      for (std::size_t j = 0; j < n; ++j) {
        if (scratch.diag[j] != 0.0 && j != i) {
          jacobian(i, j) = 0.0;
          continue;
        }
        double entry = t.dm_dc * scratch.jac(i, j) + scratch.hess(i, j);
        if (i == j) entry += t.dm_dr;
        if (!std::isfinite(entry)) {
          assembled = false;
          break;
        }
        jacobian(i, j) = entry;
      }
      rhs[i] = -scratch.responses[i];
    }
    if (!assembled) break;
    const auto factorization = numerics::lu_decompose(jacobian);
    if (factorization.singular) break;
    const auto delta = numerics::lu_solve(factorization, rhs);
    // Backtracking line search on max |E|; the accepted pass leaves the
    // congestion/Jacobian buffers loaded at the new point for the next
    // assembly.
    bool accepted = false;
    double alpha = 1.0;
    for (int bt = 0; bt < 6 && !accepted; ++bt, alpha *= 0.5) {
      for (std::size_t i = 0; i < n; ++i) {
        scratch.trial[i] = std::clamp(rates[i] + alpha * delta[i],
                                      kRepairFloor, kRepairCap);
      }
      const double trial_residual = residual_pass(scratch.trial);
      if (trial_residual < max_residual) {
        if (flight.armed()) {
          last_step = 0.0;
          for (std::size_t i = 0; i < n; ++i) {
            last_step =
                std::max(last_step, std::abs(scratch.trial[i] - rates[i]));
          }
          last_alpha = alpha;
        }
        std::copy(scratch.trial.begin(), scratch.trial.end(), rates.begin());
        max_residual = trial_residual;
        accepted = true;
      } else {
        flight.backtrack(alpha * 0.5);  // residual grew; halve the step
      }
    }
    if (!accepted) break;  // stationary under the line search; escalate
  }
  flight.verdict(result.converged, result.max_residual);
  obs::default_registry()
      .counter("core.nash.newton_fdc_iterations_total")
      .inc(static_cast<std::uint64_t>(result.iterations));
  return result;
}

numerics::Matrix relaxation_matrix(const AllocationFunction& alloc,
                                   const UtilityProfile& profile,
                                   const std::vector<double>& rates) {
  validate_sizes(profile, rates);
  AllocationFunction::validate_rates(rates);
  const std::size_t n = rates.size();
  // One congestion pass, one batched Jacobian and one batched second-partial
  // pass replace the n^2 independent fdc_jacobian_entry evaluations (each of
  // which recomputed all three from scratch).
  auto& scratch = solver_scratch();
  scratch.congestion.resize(n);
  work::add(work::Kind::kUsersEvaluated, n);
  work::add(work::Kind::kJacobianCells, 2 * n * n);
  alloc.congestion_into(rates, scratch.congestion, scratch.ws);
  alloc.jacobian_into(rates, scratch.jac, scratch.ws);
  alloc.second_partials_into(rates, scratch.hess, scratch.ws);
  scratch.diag.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const MarginalTerms t =
        marginal_terms(*profile[j], rates[j], scratch.congestion[j]);
    scratch.diag[j] =
        t.dm_dr + t.dm_dc * scratch.jac(j, j) + scratch.hess(j, j);
  }
  numerics::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const MarginalTerms t =
        marginal_terms(*profile[i], rates[i], scratch.congestion[i]);
    // Full-row elementwise fill (same arithmetic per entry as the branchy
    // original), then the diagonal overwrite; the off-diagonal expression
    // never runs for i == j, so the fills stay bit-identical.
    const double dm_dc = t.dm_dc;
    double* const a_row = a.row_data(i);
    const double* const jac_row = scratch.jac.row_data(i);
    const double* const hess_row = scratch.hess.row_data(i);
    const double* const diag = scratch.diag.data();
    GW_SIMD_LOOP
    for (std::size_t j = 0; j < n; ++j) {
      a_row[j] = -(dm_dc * jac_row[j] + hess_row[j]) / diag[j];
    }
    a_row[i] = 0.0;
  }
  return a;
}

NewtonDynamicsResult newton_relaxation(const AllocationFunction& alloc,
                                       const UtilityProfile& profile,
                                       std::vector<double> start,
                                       int max_iterations, double tolerance) {
  validate_sizes(profile, start);
  AllocationFunction::validate_rates(start);
  const std::size_t n = start.size();
  NewtonDynamicsResult result;
  result.trajectory.push_back(start);
  std::vector<double> rates = std::move(start);
  auto& scratch = solver_scratch();
  scratch.congestion.resize(n);
  scratch.responses.resize(n);  // holds the FDC residuals this solver
  for (int it = 0; it < max_iterations; ++it) {
    work::add(work::Kind::kUsersEvaluated, n);
    alloc.congestion_into(rates, scratch.congestion, scratch.ws);
    double max_residual = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double residual = kNan;
      if (std::isfinite(scratch.congestion[i])) {
        const double m =
            profile[i]->marginal_ratio(rates[i], scratch.congestion[i]);
        const double slope = alloc.partial(i, i, rates);
        if (std::isfinite(m) && std::isfinite(slope)) residual = m + slope;
      }
      scratch.responses[i] = residual;
      if (std::isnan(residual)) {
        max_residual = std::numeric_limits<double>::infinity();
      } else {
        max_residual = std::max(max_residual, std::abs(residual));
      }
    }
    result.iterations = it;
    if (max_residual <= tolerance) {
      result.converged = true;
      return result;
    }
    // Synchronous update: every slope is evaluated at the unmodified sweep
    // point, then all users move at once (Jacobi, as in the paper).
    scratch.rates.assign(rates.begin(), rates.end());
    for (std::size_t i = 0; i < n; ++i) {
      if (std::isnan(scratch.responses[i])) continue;
      const MarginalTerms t =
          marginal_terms(*profile[i], rates[i], scratch.congestion[i]);
      const double slope = t.dm_dr + t.dm_dc * alloc.partial(i, i, rates) +
                           alloc.second_partial(i, i, rates);
      if (slope == 0.0 || !std::isfinite(slope)) continue;
      double candidate = rates[i] - scratch.responses[i] / slope;
      candidate = std::clamp(candidate, 1e-9, 0.9999);
      scratch.rates[i] = candidate;
    }
    rates.assign(scratch.rates.begin(), scratch.rates.end());
    result.trajectory.push_back(rates);
  }
  obs::default_registry()
      .counter("core.nash.newton_iterations_total")
      .inc(static_cast<std::uint64_t>(result.iterations));
  return result;
}

std::vector<std::vector<double>> find_equilibria(
    const AllocationFunction& alloc, const UtilityProfile& profile,
    int n_starts, unsigned seed, const NashOptions& options,
    double distinct_tolerance) {
  const std::size_t n = profile.size();
  numerics::Rng rng(seed);
  std::vector<std::vector<double>> found;
  auto& restarts = obs::default_registry().counter("core.nash.restarts");
  std::vector<double> start(n);
  for (int s = 0; s < n_starts; ++s) {
    restarts.inc();
    if (auto* trace = obs::active_trace()) {
      trace->instant("core", "nash multistart restart",
                     static_cast<double>(obs::wall_now_us()), "start",
                     static_cast<double>(s));
    }
    // Random interior start: raw uniforms rescaled to a random total < 0.95.
    double total = 0.0;
    for (auto& x : start) {
      x = rng.uniform(0.01, 1.0);
      total += x;
    }
    const double target = rng.uniform(0.05, 0.95);
    for (auto& x : start) x *= target / total;

    const auto solved = solve_nash(alloc, profile, start, options);
    if (!solved.converged) continue;
    if (!is_nash(alloc, profile, solved.rates, 1e-6,
                 options.best_response)) {
      continue;
    }
    bool duplicate = false;
    for (const auto& existing : found) {
      double distance = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        distance = std::max(distance, std::abs(existing[i] - solved.rates[i]));
      }
      if (distance <= distinct_tolerance) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) found.push_back(solved.rates);
  }
  return found;
}

}  // namespace gw::core
