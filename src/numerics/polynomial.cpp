#include "numerics/polynomial.hpp"

#include <cmath>
#include <stdexcept>

namespace gw::numerics {

Polynomial::Polynomial(std::vector<double> coeffs)
    : coeffs_(std::move(coeffs)) {
  if (coeffs_.empty()) coeffs_.push_back(0.0);
}

std::size_t Polynomial::degree() const noexcept { return coeffs_.size() - 1; }

double Polynomial::operator()(double x) const noexcept {
  double acc = 0.0;
  for (std::size_t i = coeffs_.size(); i-- > 0;) acc = acc * x + coeffs_[i];
  return acc;
}

std::complex<double> Polynomial::operator()(
    std::complex<double> x) const noexcept {
  std::complex<double> acc = 0.0;
  for (std::size_t i = coeffs_.size(); i-- > 0;) acc = acc * x + coeffs_[i];
  return acc;
}

Polynomial Polynomial::derivative() const {
  if (coeffs_.size() <= 1) return Polynomial({0.0});
  std::vector<double> out(coeffs_.size() - 1);
  for (std::size_t i = 1; i < coeffs_.size(); ++i) {
    out[i - 1] = coeffs_[i] * static_cast<double>(i);
  }
  return Polynomial(std::move(out));
}

void Polynomial::normalize(double tolerance) {
  while (coeffs_.size() > 1 && std::abs(coeffs_.back()) <= tolerance) {
    coeffs_.pop_back();
  }
}

std::vector<std::complex<double>> find_roots(const Polynomial& p,
                                             const RootFindOptions& options) {
  Polynomial poly = p;
  poly.normalize(0.0);
  const std::size_t n = poly.degree();
  if (n < 1 || poly.coefficients().back() == 0.0) {
    throw std::invalid_argument("find_roots: degree must be >= 1");
  }

  // Monic copy for stability.
  std::vector<double> monic = poly.coefficients();
  const double lead = monic.back();
  for (auto& c : monic) c /= lead;
  const Polynomial mp{monic};

  // Cauchy bound on root magnitudes.
  double bound = 0.0;
  for (std::size_t i = 0; i + 1 < monic.size(); ++i) {
    bound = std::max(bound, std::abs(monic[i]));
  }
  bound += 1.0;

  // Initial guesses on a circle of radius ~bound/2, deliberately non-real
  // and non-symmetric (the classic (0.4 + 0.9i)^k seeding).
  std::vector<std::complex<double>> roots(n);
  const std::complex<double> seed(0.4, 0.9);
  std::complex<double> power = 1.0;
  for (std::size_t k = 0; k < n; ++k) {
    power *= seed;
    roots[k] = power * (0.5 * bound + 0.5);
  }

  for (int it = 0; it < options.max_iterations; ++it) {
    double max_update = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      std::complex<double> denom = 1.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j != k) denom *= (roots[k] - roots[j]);
      }
      if (denom == std::complex<double>(0.0, 0.0)) {
        // Perturb coincident iterates.
        roots[k] += std::complex<double>(1e-8, 1e-8);
        continue;
      }
      const std::complex<double> update = mp(roots[k]) / denom;
      roots[k] -= update;
      max_update = std::max(max_update, std::abs(update));
    }
    if (max_update <= options.tolerance) break;
  }

  // Clean tiny imaginary parts of (numerically) real roots.
  for (auto& root : roots) {
    if (std::abs(root.imag()) < 1e-9 * std::max(1.0, std::abs(root.real()))) {
      root = {root.real(), 0.0};
    }
  }
  return roots;
}

}  // namespace gw::numerics
