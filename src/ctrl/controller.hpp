// Cluster-agent control loop: streaming churn in, served equilibria out.
//
// The Controller is the cluster-agent half of a host-agent/cluster-agent
// split (heyp-agents style): host agents call submit() from any thread to
// stream RateUpdates in; the control loop calls apply_pending() to drain
// the ingress queue as one batch, route each update to the shard that owns
// the user, repair every dirty shard (independently, dispatched over a
// gw_exec::ThreadPool), and atomically publish the new served allocation
// under a bumped epoch.
//
// Determinism contract: the served allocation after a batch is a pure
// function of (initial state, update sequence, batch boundaries) — shard
// repairs share no state and are combined in shard order, and
// ThreadPool::parallel_for's static partition makes the dispatch
// bit-identical for every thread count. Within a batch, later updates to
// the same user win (last-write semantics), matching what a coalescing
// host agent would deliver.
//
// Staleness: the served allocation lags the update stream by whatever sits
// in the ingress queue plus the batch in flight. pending() and the
// ctrl.staleness_updates gauge expose the queue depth at epoch boundaries;
// the ctrl.staleness_age_ms histogram records, per applied update, how long
// it waited in the ingress queue (wall time from submit to drain), so drain
// behavior is visible between epochs. The E-CHURN bench converts measured
// batch latency into served-allocation staleness in virtual time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "ctrl/churn.hpp"
#include "ctrl/shard.hpp"
#include "exec/thread_pool.hpp"

namespace gw::ctrl {

struct ControllerConfig {
  RepairPolicy policy;
};

/// What one apply_pending() call did.
struct BatchReport {
  std::uint64_t epoch = 0;          ///< epoch the batch published
  std::size_t updates_applied = 0;
  std::size_t shards_repaired = 0;
  std::size_t single_user = 0;      ///< per-path shard counts
  std::size_t relax = 0;
  std::size_t newton = 0;
  std::size_t warm_solve = 0;
  std::size_t full_solve = 0;
  bool all_converged = true;
  double max_residual = 0.0;        ///< worst measured shard residual
  double wall_seconds = 0.0;
};

/// A consistent copy of the served allocation.
struct AllocationSnapshot {
  std::uint64_t epoch = 0;
  std::vector<double> rates;  ///< global user order (shard-major)
  std::size_t pending = 0;    ///< updates submitted but not yet applied
};

class Controller {
 public:
  /// Takes ownership of the shards. Global user ids are assigned
  /// shard-major: shard k owns the contiguous block
  /// [base(k), base(k) + shard(k).size()).
  explicit Controller(std::vector<SolverShard> shards,
                      ControllerConfig config = {});

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t user_count() const noexcept { return users_; }
  [[nodiscard]] const SolverShard& shard(std::size_t k) const {
    return shards_[k];
  }
  /// Maps a global user id to (shard index, local user index).
  [[nodiscard]] std::pair<std::size_t, std::size_t> locate(
      std::size_t user) const;

  // ---- host-agent side (thread-safe) -----------------------------------

  /// Enqueues one update (or a batch); applied by the next apply_pending().
  void submit(RateUpdate update);
  void submit(std::span<const RateUpdate> updates);

  /// Updates submitted but not yet applied.
  [[nodiscard]] std::size_t pending() const;

  // ---- cluster-agent side ----------------------------------------------

  /// Drains the ingress queue, repairs every dirty shard (over `pool` when
  /// given, inline otherwise) and publishes the new served allocation.
  /// Not reentrant: one control loop calls this at a time.
  BatchReport apply_pending(exec::ThreadPool* pool = nullptr);

  /// Copies the served allocation (rates + epoch) and the queue depth.
  [[nodiscard]] AllocationSnapshot snapshot() const;

 private:
  /// An ingress entry: the update plus the wall clock at submit(), so the
  /// drain can observe per-update queue age (ctrl.staleness_age_ms).
  struct PendingUpdate {
    RateUpdate update;
    std::uint64_t submitted_us = 0;
  };

  std::vector<SolverShard> shards_;
  std::vector<std::size_t> shard_base_;  ///< global id of each shard's user 0
  std::size_t users_ = 0;
  ControllerConfig config_;

  mutable std::mutex ingress_mutex_;
  std::vector<PendingUpdate> ingress_;

  mutable std::mutex served_mutex_;
  std::vector<double> served_;
  std::uint64_t epoch_ = 0;

  // apply_pending() scratch, reused across batches (single control loop).
  std::vector<PendingUpdate> draining_;
  std::vector<std::size_t> dirty_shards_;
  std::vector<RepairOutcome> outcomes_;
};

}  // namespace gw::ctrl
