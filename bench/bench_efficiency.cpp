// E-EFF — Theorems 1 & 2 (and Corollary 2): efficiency of Nash equilibria.
//
// * identical users U = r - gamma c: FIFO Nash vs FS Nash vs symmetric
//   Pareto, swept over N and gamma ("price of anarchy" table);
// * FDC residual diagnostics: Nash condition vs Pareto condition;
// * heterogeneous profiles: explicit dominating allocations over the FIFO
//   Nash point, none over the FS symmetric Nash point.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/closed_forms.hpp"
#include "core/fair_share.hpp"
#include "core/nash.hpp"
#include "core/pareto.hpp"
#include "core/proportional.hpp"

static int run() {
  using namespace gw;
  using core::make_linear;
  bench::banner(
      "E-EFF efficiency", "Theorems 1, 2; Section 4.1.1",
      "No discipline guarantees Pareto-optimal Nash equilibria; FIFO's "
      "Nash points are NEVER Pareto optimal, FS attains every achievable "
      "Nash/Pareto point (symmetric users). Efficiency ratio degrades "
      "with N under FIFO, stays 1 under FS.");

  std::printf("\nIdentical users, U = r - gamma*c. Per-user utilities at "
              "equilibrium (closed forms):\n\n");
  bench::table_header({"gamma", "N", "U(FIFO)", "U(FS)=Pareto",
                       "FIFO/Pareto", "load FIFO", "load FS"});
  bool ratio_below_one = true;
  bool ratio_decreasing = true;
  for (const double gamma : {0.1, 0.25, 0.5}) {
    double previous_ratio = 2.0;
    for (const std::size_t n : {2u, 3u, 4u, 6u, 8u, 10u}) {
      const auto fifo = core::fifo_linear_symmetric_nash(gamma, n);
      const auto fs = core::fs_linear_symmetric_nash(gamma, n);
      const double ratio = core::fifo_efficiency_ratio(gamma, n);
      if (ratio >= 1.0) ratio_below_one = false;
      if (ratio > previous_ratio + 1e-12) ratio_decreasing = false;
      previous_ratio = ratio;
      bench::table_row({bench::fmt(gamma, 2), std::to_string(n),
                        bench::fmt(fifo.utility, 5), bench::fmt(fs.utility, 5),
                        bench::fmt(ratio, 3), bench::fmt(1.0 - fifo.idle, 3),
                        bench::fmt(1.0 - fs.idle, 3)});
    }
  }
  bench::verdict(ratio_below_one,
                 "FIFO Nash strictly less efficient than Pareto for N >= 2");
  bench::verdict(ratio_decreasing,
                 "FIFO efficiency ratio non-increasing in N (greed bites "
                 "harder in crowds)");

  // FDC diagnostics at the numerically solved equilibria.
  std::printf("\nFirst-derivative-condition residuals at solved Nash points "
              "(gamma = 0.25, N = 4):\n\n");
  const auto profile = core::uniform_profile(make_linear(1.0, 0.25), 4);
  const auto fifo_alloc = std::make_shared<core::ProportionalAllocation>();
  const auto fs_alloc = std::make_shared<core::FairShareAllocation>();
  bench::table_header({"discipline", "max|NashFDC|", "max|ParetoFDC|"});
  double fs_pareto_residual = 0.0, fifo_pareto_residual = 0.0;
  for (int which = 0; which < 2; ++which) {
    const core::AllocationFunction& alloc =
        which == 0 ? static_cast<core::AllocationFunction&>(*fifo_alloc)
                   : static_cast<core::AllocationFunction&>(*fs_alloc);
    const auto nash =
        core::solve_nash(alloc, profile, std::vector<double>(4, 0.1));
    const auto queues = alloc.congestion(nash.rates);
    double nash_resid = 0.0, pareto_resid = 0.0;
    for (const double e : core::fdc_residuals(alloc, profile, nash.rates)) {
      nash_resid = std::max(nash_resid, std::abs(e));
    }
    for (const double e :
         core::pareto_fdc_residuals(profile, nash.rates, queues)) {
      pareto_resid = std::max(pareto_resid, std::abs(e));
    }
    if (which == 0) fifo_pareto_residual = pareto_resid;
    if (which == 1) fs_pareto_residual = pareto_resid;
    bench::table_row({which == 0 ? "FIFO" : "FairShare",
                      bench::fmt(nash_resid, 6), bench::fmt(pareto_resid, 6)});
  }
  bench::verdict(fs_pareto_residual < 1e-2,
                 "FS symmetric Nash satisfies the Pareto FDC");
  bench::verdict(fifo_pareto_residual > 0.1,
                 "FIFO Nash violates the Pareto FDC");

  // Domination search: exhibit the allocation that beats the FIFO Nash.
  std::printf("\nExplicit Pareto domination over the FIFO Nash "
              "(heterogeneous gammas {0.15, 0.3, 0.5}):\n\n");
  const core::UtilityProfile mixed{make_linear(1.0, 0.15),
                                   make_linear(1.0, 0.3),
                                   make_linear(1.0, 0.5)};
  const auto fifo_nash =
      core::solve_nash(*fifo_alloc, mixed, {0.1, 0.1, 0.1});
  const auto fifo_queues = fifo_alloc->congestion(fifo_nash.rates);
  const auto domination =
      core::find_dominating_allocation(mixed, fifo_nash.rates, fifo_queues);
  bench::table_header({"user", "Nash r", "Nash c", "better r", "better c"});
  for (std::size_t u = 0; u < 3; ++u) {
    bench::table_row({std::to_string(u + 1), bench::fmt(fifo_nash.rates[u]),
                      bench::fmt(fifo_queues[u]),
                      domination.dominated ? bench::fmt(domination.rates[u])
                                           : "-",
                      domination.dominated ? bench::fmt(domination.queues[u])
                                           : "-"});
  }
  std::printf("  uniform utility gain available: %s\n",
              bench::fmt(domination.best_min_gain, 6).c_str());
  bench::verdict(domination.dominated,
                 "FIFO heterogeneous Nash is Pareto-dominated (Theorem 1/2)");

  // FS symmetric case: undominated.
  const auto fs_sym_profile = core::uniform_profile(make_linear(1.0, 0.25), 3);
  const auto fs_nash =
      core::solve_nash(*fs_alloc, fs_sym_profile, {0.1, 0.1, 0.1});
  const auto fs_queues = fs_alloc->congestion(fs_nash.rates);
  const auto fs_domination = core::find_dominating_allocation(
      fs_sym_profile, fs_nash.rates, fs_queues);
  bench::verdict(!fs_domination.dominated,
                 "FS symmetric Nash admits no dominating allocation "
                 "(Theorem 2)");
  return bench::failures();
}

GW_BENCH_MAIN(run)
