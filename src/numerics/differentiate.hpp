// Numerical differentiation with Richardson extrapolation.
//
// Analytic Jacobians of the allocation functions are cross-checked against
// these routines in the test suite; the MAC-membership checker and the
// relaxation-matrix builder also use them for disciplines without closed
// forms.
#pragma once

#include <functional>
#include <vector>

namespace gw::numerics {

struct DiffOptions {
  double step = 1e-5;      ///< base step (relative to max(1,|x|))
  int richardson = 2;      ///< extrapolation levels (0 = plain central diff)
};

/// First derivative f'(x) by central differences + Richardson.
[[nodiscard]] double derivative(const std::function<double(double)>& f,
                                double x, const DiffOptions& options = {});

/// One-sided first derivative (direction = +1 forward, -1 backward); needed
/// where allocation functions are only C^1 with one-sided second derivatives.
[[nodiscard]] double one_sided_derivative(
    const std::function<double(double)>& f, double x, int direction,
    const DiffOptions& options = {});

/// Second derivative f''(x) by central differences.
[[nodiscard]] double second_derivative(const std::function<double(double)>& f,
                                       double x,
                                       const DiffOptions& options = {});

/// Partial derivative d f / d x_i at `x`.
[[nodiscard]] double partial(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x, std::size_t i, const DiffOptions& options = {});

/// Mixed second partial d^2 f / (d x_i d x_j) at `x`.
[[nodiscard]] double mixed_partial(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x, std::size_t i, std::size_t j,
    const DiffOptions& options = {});

/// Gradient of f at x.
[[nodiscard]] std::vector<double> gradient(
    const std::function<double(const std::vector<double>&)>& f,
    const std::vector<double>& x, const DiffOptions& options = {});

}  // namespace gw::numerics
