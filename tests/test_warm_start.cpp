// Warm-start equivalence of the Nash solvers (the contract the streaming
// control plane rests on): a solve started from a perturbed equilibrium —
// via the narrowed warm_radius best-response scan or the relax_equilibrium
// Newton engine — must land on the same fixed point as the cold solve,
// across all disciplines.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/fair_share.hpp"
#include "core/gfunction.hpp"
#include "core/nash.hpp"
#include "core/proportional.hpp"
#include "core/serial_general.hpp"
#include "core/utility.hpp"
#include "core/weighted_serial.hpp"
#include "numerics/rng.hpp"

namespace gw::core {
namespace {

struct Discipline {
  std::string label;
  std::shared_ptr<const AllocationFunction> alloc;
};

std::vector<Discipline> discipline_set() {
  return {
      {"fs", std::make_shared<FairShareAllocation>()},
      {"fifo", std::make_shared<ProportionalAllocation>()},
      {"serial-mg1",
       std::make_shared<GeneralSerialAllocation>(GFunction::mg1(1.0))},
      {"wserial", std::make_shared<WeightedSerialAllocation>(
                      std::vector<double>{1.0, 2.0, 1.0, 3.0, 1.0, 2.0})},
  };
}

/// Heterogeneous linear profile with gammas spread over [0.3, 0.8].
UtilityProfile spread_profile(std::size_t n) {
  UtilityProfile profile;
  for (std::size_t i = 0; i < n; ++i) {
    profile.push_back(make_linear(
        1.0, 0.3 + 0.5 * static_cast<double>(i) / static_cast<double>(n)));
  }
  return profile;
}

double max_abs_diff(const std::vector<double>& a,
                    const std::vector<double>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d = std::max(d, std::abs(a[i] - b[i]));
  }
  return d;
}

TEST(WarmStart, PerturbedEquilibriumReconvergesAcrossDisciplines) {
  // Property: for every discipline and several perturbation draws, a warm
  // solve (narrow candidate scan) from a jiggled equilibrium recovers the
  // cold-start fixed point.
  const std::size_t n = 6;
  numerics::Rng rng(2026);
  for (const auto& d : discipline_set()) {
    const auto profile = spread_profile(n);
    const auto cold = solve_nash(*d.alloc, profile,
                                 std::vector<double>(n, 0.5 / n));
    ASSERT_TRUE(cold.converged) << d.label;

    NashOptions warm_options;
    warm_options.best_response.warm_radius = 0.05;
    for (int trial = 0; trial < 4; ++trial) {
      std::vector<double> start = cold.rates;
      for (auto& r : start) {
        r = std::max(1e-6, r * rng.uniform(0.96, 1.04));
      }
      const auto warm = solve_nash(*d.alloc, profile, start, warm_options);
      ASSERT_TRUE(warm.converged) << d.label << " trial " << trial;
      EXPECT_LT(max_abs_diff(warm.rates, cold.rates), 1e-5)
          << d.label << " trial " << trial;
    }
  }
}

TEST(WarmStart, NarrowScanFallsBackWhenOptimumOutsideWindow) {
  // Current rate far from the best response: the warm window cannot
  // contain the optimum, so the pinned-edge fallback must recover the
  // full-interval answer.
  const ProportionalAllocation alloc;
  const LinearUtility u(1.0, 0.25);
  const auto full = best_response(alloc, u, {0.01}, 0);
  BestResponseOptions warm;
  warm.warm_radius = 0.02;  // window [~0, 0.03], optimum at 0.5
  const auto narrowed = best_response(alloc, u, {0.01}, 0, warm);
  EXPECT_NEAR(narrowed.rate, full.rate, 1e-6);
  EXPECT_NEAR(narrowed.rate, 1.0 - std::sqrt(0.25), 1e-4);
}

TEST(WarmStart, WarmRadiusZeroIsExactLegacyPath) {
  const FairShareAllocation alloc;
  const LinearUtility u(1.0, 0.4);
  const BestResponseOptions defaults;
  ASSERT_EQ(defaults.warm_radius, 0.0);
  const auto a = best_response(alloc, u, {0.2, 0.3}, 0);
  const auto b = best_response(alloc, u, {0.2, 0.3}, 0, defaults);
  EXPECT_EQ(a.rate, b.rate);
  EXPECT_EQ(a.utility, b.utility);
}

TEST(Relax, MatchesNewtonRelaxationFixedPoint) {
  // relax_equilibrium is the lean batched form of newton_relaxation: same
  // Jacobi update, no trajectory. Both must reach the same fixed point.
  const FairShareAllocation alloc;
  const std::size_t n = 8;
  const auto profile = spread_profile(n);
  const std::vector<double> start(n, 0.05);

  const auto reference = newton_relaxation(alloc, profile, start, 100, 1e-10);
  ASSERT_TRUE(reference.converged);

  std::vector<double> rates = start;
  RelaxOptions options;
  options.tolerance = 1e-10;
  const auto result = relax_equilibrium(alloc, profile, rates, options);
  ASSERT_TRUE(result.converged);
  EXPECT_LE(result.max_residual, 1e-10);
  EXPECT_LT(max_abs_diff(rates, reference.trajectory.back()), 1e-8);
}

TEST(Relax, WarmRepairAfterSingleUserChurnMatchesColdSolve) {
  // The control-plane scenario in miniature: bump one user's gamma 10%,
  // relax from the old equilibrium, compare against a cold re-solve.
  const auto alloc = std::make_shared<FairShareAllocation>();
  const std::size_t n = 16;
  auto profile = spread_profile(n);
  std::vector<double> rates =
      solve_nash(*alloc, profile, std::vector<double>(n, 0.5 / n)).rates;

  profile[5] = make_linear(1.0, 0.62);
  const auto repaired = relax_equilibrium(*alloc, profile, rates);
  ASSERT_TRUE(repaired.converged);
  // Theorem 7: under Fair Share in the linear regime the relaxation matrix
  // is nilpotent and synchronous Newton needs at most N sweeps.
  EXPECT_LE(repaired.iterations, static_cast<int>(n))
      << "warm repair exceeded the Theorem 7 sweep bound";

  const auto cold =
      solve_nash(*alloc, profile, std::vector<double>(n, 0.5 / n));
  ASSERT_TRUE(cold.converged);
  EXPECT_LT(max_abs_diff(rates, cold.rates), 1e-5);
}

TEST(Relax, ZeroBudgetReportsResidualWithoutMoving) {
  const FairShareAllocation alloc;
  const auto profile = spread_profile(4);
  std::vector<double> rates(4, 0.05);
  const std::vector<double> before = rates;
  RelaxOptions options;
  options.max_iterations = 0;
  const auto result = relax_equilibrium(alloc, profile, rates, options);
  EXPECT_FALSE(result.converged);
  EXPECT_GT(result.max_residual, 0.0);
  EXPECT_EQ(result.iterations, 0);
  EXPECT_EQ(rates, before);  // pure residual probe
}

TEST(NewtonFdc, RepairsDenselyCoupledFifoChurnToBoundaryEquilibrium) {
  // FIFO ties every user's congestion to the total load, and a churned
  // user this delay-averse ends up pinned at the rate floor — a boundary
  // equilibrium where the raw FDC residual never vanishes. The dense
  // Newton engine must recognize the KKT condition, freeze the pinned
  // user out of the system, and land on the cold-solve fixed point in a
  // handful of quadratic iterations.
  const ProportionalAllocation alloc;
  const std::size_t n = 24;
  auto profile = spread_profile(n);
  std::vector<double> rates =
      solve_nash(alloc, profile, std::vector<double>(n, 0.5 / n)).rates;
  profile[7] = make_linear(1.0, 0.8);

  const auto repaired = newton_fdc(alloc, profile, rates);
  ASSERT_TRUE(repaired.converged);
  EXPECT_LE(repaired.iterations, 16);
  EXPECT_LE(rates[7], 1e-5) << "delay-averse churned user should be pinned";
  const auto cold =
      solve_nash(alloc, profile, std::vector<double>(n, 0.5 / n));
  ASSERT_TRUE(cold.converged);
  EXPECT_LT(max_abs_diff(rates, cold.rates), 1e-5);
}

TEST(NewtonFdc, ZeroBudgetReportsResidualWithoutMoving) {
  const ProportionalAllocation alloc;
  const auto profile = spread_profile(4);
  std::vector<double> rates(4, 0.05);
  const std::vector<double> before = rates;
  NewtonFdcOptions options;
  options.max_iterations = 0;
  const auto result = newton_fdc(alloc, profile, rates, options);
  EXPECT_FALSE(result.converged);
  EXPECT_GT(result.max_residual, 0.0);
  EXPECT_EQ(rates, before);
}

TEST(Fdc, TermsMatchResidualAndJacobianEntries) {
  const FairShareAllocation alloc;
  const auto profile = spread_profile(5);
  const std::vector<double> rates{0.03, 0.06, 0.09, 0.12, 0.15};
  const auto residuals = fdc_residuals(alloc, profile, rates);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const auto terms = fdc_terms(alloc, *profile[i], rates, i);
    EXPECT_NEAR(terms.residual, residuals[i], 1e-12) << i;
    EXPECT_NEAR(terms.slope,
                fdc_jacobian_entry(alloc, profile, rates, i, i), 1e-12)
        << i;
  }
}

TEST(Fdc, TermsNanWhenSaturated) {
  const ProportionalAllocation alloc;
  const auto u = make_linear(1.0, 0.25);
  const std::vector<double> rates{0.6, 0.7};  // total load > 1
  const auto terms = fdc_terms(alloc, *u, rates, 0);
  EXPECT_TRUE(std::isnan(terms.residual));
  EXPECT_TRUE(std::isnan(terms.slope));
}

}  // namespace
}  // namespace gw::core
