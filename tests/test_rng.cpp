#include "numerics/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace gw::numerics {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 2.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 2.0);
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(10)];
  for (const int count : counts) {
    EXPECT_NEAR(static_cast<double>(count) / n, 0.1, 0.01);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(17);
  const double rate = 2.5;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, ExponentialIsMemorylessInDistribution) {
  // P(X > 2m) should equal P(X > m)^2 for exponential.
  Rng rng(19);
  const double rate = 1.0;
  const double m = 0.7;
  int over_m = 0, over_2m = 0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(rate);
    if (x > m) ++over_m;
    if (x > 2 * m) ++over_2m;
  }
  const double p_m = static_cast<double>(over_m) / n;
  const double p_2m = static_cast<double>(over_2m) / n;
  EXPECT_NEAR(p_2m, p_m * p_m, 0.01);
}

TEST(Rng, NormalMomentsMatchStandard) {
  Rng rng(23);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(29);
  for (const double mean : {0.5, 3.0, 20.0}) {
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(rng.poisson(mean));
    }
    EXPECT_NEAR(sum / n, mean, 0.05 * std::max(mean, 1.0));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(31);
  const double p = 0.3;
  int hits = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(p)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01);
}

TEST(Rng, ForkGivesIndependentStream) {
  Rng parent(37);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkFamilyIsIndependent) {
  // The replication engine derives one seed per replication from a chain
  // of forks, so a whole family of children must behave as independent
  // streams: per-child uniform means on target, negligible lag-0 cross-
  // correlation between siblings (and with the parent), and no shared
  // outputs anywhere in the family's early sequences.
  constexpr int kChildren = 64;
  constexpr int kDraws = 20000;
  Rng parent(101);
  std::vector<Rng> children;
  children.reserve(kChildren);
  for (int c = 0; c < kChildren; ++c) children.push_back(parent.fork());

  std::vector<double> parent_draws(kDraws);
  for (auto& x : parent_draws) x = parent.uniform();
  std::vector<double> previous = parent_draws;
  for (int c = 0; c < kChildren; ++c) {
    std::vector<double> draws(kDraws);
    double sum = 0.0;
    for (auto& x : draws) {
      x = children[static_cast<std::size_t>(c)].uniform();
      sum += x;
    }
    EXPECT_NEAR(sum / kDraws, 0.5, 0.01) << "child " << c;
    // Lag-0 sample correlation against the parent and the previous child;
    // independent uniforms give |rho| ~ 1/sqrt(kDraws) ~ 0.007.
    const auto correlation = [&](const std::vector<double>& a,
                                 const std::vector<double>& b) {
      double ma = 0.0, mb = 0.0;
      for (int i = 0; i < kDraws; ++i) {
        ma += a[static_cast<std::size_t>(i)];
        mb += b[static_cast<std::size_t>(i)];
      }
      ma /= kDraws;
      mb /= kDraws;
      double cov = 0.0, va = 0.0, vb = 0.0;
      for (int i = 0; i < kDraws; ++i) {
        const double da = a[static_cast<std::size_t>(i)] - ma;
        const double db = b[static_cast<std::size_t>(i)] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
      }
      return cov / std::sqrt(va * vb);
    };
    EXPECT_LT(std::abs(correlation(draws, parent_draws)), 0.03)
        << "child " << c << " vs parent";
    EXPECT_LT(std::abs(correlation(draws, previous)), 0.03)
        << "child " << c << " vs previous stream";
    previous = std::move(draws);
  }

  // Overlap: the families' early raw outputs must all be distinct.
  std::set<std::uint64_t> seen;
  Rng parent2(101);
  for (int c = 0; c < kChildren; ++c) {
    Rng child = parent2.fork();
    for (int i = 0; i < 64; ++i) seen.insert(child.next_u64());
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kChildren) * 64u);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(41);
  const auto perm = rng.permutation(50);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, PermutationIsUniformish) {
  // Element 0 should land in each slot ~uniformly.
  Rng rng(43);
  std::vector<int> where(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const auto perm = rng.permutation(5);
    for (std::size_t k = 0; k < 5; ++k) {
      if (perm[k] == 0) ++where[k];
    }
  }
  for (const int count : where) {
    EXPECT_NEAR(static_cast<double>(count) / n, 0.2, 0.02);
  }
}

TEST(Splitmix, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const auto a = splitmix64(state);
  const auto b = splitmix64(state);
  EXPECT_NE(a, b);
  std::uint64_t state2 = 0;
  EXPECT_EQ(splitmix64(state2), a);
}

}  // namespace
}  // namespace gw::numerics
