// Streaming statistics: Welford accumulators, batch-means confidence
// intervals for simulation output analysis, and simple histograms.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace gw::numerics {

/// Numerically stable streaming mean/variance (Welford).
class RunningStat {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merge another accumulator (parallel Welford combine).
  void merge(const RunningStat& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Symmetric confidence interval around a mean.
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;
  std::size_t batches = 0;

  [[nodiscard]] double lo() const noexcept { return mean - half_width; }
  [[nodiscard]] double hi() const noexcept { return mean + half_width; }
  [[nodiscard]] bool contains(double x) const noexcept {
    return x >= lo() && x <= hi();
  }
};

/// Batch-means CI over a series of (roughly independent) batch averages,
/// using Student-t critical values (two-sided). `confidence` in {0.90,
/// 0.95, 0.99} (others fall back to 0.95's table row behaviour).
[[nodiscard]] ConfidenceInterval batch_means_ci(
    const std::vector<double>& batch_averages, double confidence = 0.95);

/// Two-sided Student-t critical value (interpolated table; good to ~1%).
[[nodiscard]] double student_t_critical(std::size_t dof, double confidence);

/// Fixed-bin histogram on [lo, hi); out-of-range samples are clamped
/// into the edge bins and counted.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return bins_.at(i); }
  [[nodiscard]] std::size_t bins() const noexcept { return bins_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept;
  /// Empirical quantile (0 <= q <= 1) via the bin midpoints.
  [[nodiscard]] double quantile(double q) const noexcept;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> bins_;
  std::size_t total_ = 0;
};

}  // namespace gw::numerics
