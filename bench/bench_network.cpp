// E-NET — Section 5.4: networks of switches under the paper's Poisson-
// composition approximation. A 3-switch tandem with one long-haul user
// and per-switch cross traffic: uniqueness, efficiency, and convergence
// generalize from the single-switch results.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/fair_share.hpp"
#include "core/nash.hpp"
#include "core/proportional.hpp"
#include "net/network.hpp"
#include "sim/tandem.hpp"

static int run() {
  using namespace gw;
  using core::make_linear;
  bench::banner(
      "E-NET network", "Section 5.4",
      "Network of switches, c_i = sum over route of per-switch congestion "
      "(Kleinrock independence). Straightforward generalizations hold: FS "
      "networks keep a unique, efficient, reachable equilibrium; FIFO "
      "networks magnify the single-switch pathologies hop by hop.");

  // Topology: 3 switches in tandem. User 0 crosses all three; users 1-3
  // are one-hop cross traffic at switches 0, 1, 2.
  const std::vector<std::pair<std::size_t, std::size_t>> spans{
      {0, 2}, {0, 0}, {1, 1}, {2, 2}};
  const core::UtilityProfile profile{
      make_linear(1.0, 0.25), make_linear(1.0, 0.25), make_linear(1.0, 0.25),
      make_linear(1.0, 0.25)};

  const auto fs = std::make_shared<core::FairShareAllocation>();
  const auto fifo = std::make_shared<core::ProportionalAllocation>();
  const auto fs_network = net::make_tandem(fs, 3, spans);
  const auto fifo_network = net::make_tandem(fifo, 3, spans);

  std::printf("\nNash equilibria of the tandem game (user 1 = 3-hop, users "
              "2-4 = 1-hop):\n\n");
  bench::table_header({"discipline", "user", "hops", "rate", "congestion",
                       "utility"});
  std::vector<double> fs_utilities, fifo_utilities;
  for (int which = 0; which < 2; ++which) {
    const auto& network = which == 0 ? fs_network : fifo_network;
    const auto nash = core::solve_nash(*network, profile,
                                       std::vector<double>(4, 0.08));
    const auto queues = network->congestion(nash.rates);
    for (std::size_t u = 0; u < 4; ++u) {
      const double utility = profile[u]->value(nash.rates[u], queues[u]);
      (which == 0 ? fs_utilities : fifo_utilities).push_back(utility);
      bench::table_row({which == 0 ? "FairShare" : "FIFO",
                        std::to_string(u + 1), u == 0 ? "3" : "1",
                        bench::fmt(nash.rates[u]), bench::fmt(queues[u]),
                        bench::fmt(utility, 5)});
    }
  }

  // Multi-hop protection: FIFO squeezes the 3-hop user toward silence
  // (it pays FIFO congestion at every hop); FS keeps it served. With a
  // shared utility function the worst-off user's utility is an
  // ordinal-safe comparison.
  double fs_min = fs_utilities[0], fifo_min = fifo_utilities[0];
  for (std::size_t u = 1; u < 4; ++u) {
    fs_min = std::min(fs_min, fs_utilities[u]);
    fifo_min = std::min(fifo_min, fifo_utilities[u]);
  }
  std::printf("\n  worst-off utility: FS %s vs FIFO %s\n",
              bench::fmt(fs_min, 5).c_str(), bench::fmt(fifo_min, 5).c_str());
  bench::verdict(fs_min > fifo_min,
                 "FS tandem protects the worst-off (long-haul) user");

  // Uniqueness at network scale.
  const auto fs_equilibria =
      core::find_equilibria(*fs_network, profile, 24, 31);
  const auto fifo_equilibria =
      core::find_equilibria(*fifo_network, profile, 24, 31);
  std::printf("\n  distinct equilibria over 24 starts: FS %zu, FIFO %zu\n",
              fs_equilibria.size(), fifo_equilibria.size());
  bench::verdict(fs_equilibria.size() == 1,
                 "FS network equilibrium unique across starts");

  // Packet-level check of the Poisson-composition approximation: run the
  // same topology as a real tandem of packet switches and compare each
  // user's measured total congestion with the analytic c_i = sum c_i^a.
  std::printf("\nKleinrock-approximation error at fixed rates "
              "(packet-level tandem vs analytic composition):\n\n");
  const std::vector<double> fixed_rates{0.15, 0.25, 0.25, 0.25};
  std::vector<std::pair<std::size_t, std::size_t>> tandem_spans{
      {0, 2}, {0, 0}, {1, 1}, {2, 2}};
  sim::TandemOptions tandem_options;
  tandem_options.warmup = 6000.0;
  tandem_options.batches = 14;
  tandem_options.batch_length = 7000.0;
  tandem_options.seed = 4242;
  bench::table_header({"discipline", "user", "analytic", "measured",
                       "rel.err"});
  double worst_gap = 0.0;
  for (int which = 0; which < 2; ++which) {
    const auto& network = which == 0 ? fs_network : fifo_network;
    const auto discipline = which == 0 ? sim::Discipline::kFairShareOracle
                                       : sim::Discipline::kFifo;
    const auto expected = network->congestion(fixed_rates);
    const auto measured = sim::run_tandem(discipline, fixed_rates,
                                          tandem_spans, 3, tandem_options);
    for (std::size_t u = 0; u < 4; ++u) {
      const double rel = measured.total_congestion[u] / expected[u] - 1.0;
      worst_gap = std::max(worst_gap, std::abs(rel));
      bench::table_row({which == 0 ? "FairShare" : "FIFO",
                        std::to_string(u + 1), bench::fmt(expected[u]),
                        bench::fmt(measured.total_congestion[u]),
                        bench::fmt(rel * 100.0, 2) + "%"});
    }
  }
  std::printf("  worst relative gap: %s%%\n",
              bench::fmt(worst_gap * 100.0, 2).c_str());
  bench::verdict(worst_gap < 0.30,
                 "Poisson-composition approximation holds within ~30% "
                 "(exact for FIFO by Burke; FS outputs are not Poisson — "
                 "the paper's 'daunting challenge')");
  return bench::failures();
}

GW_BENCH_MAIN(run)
