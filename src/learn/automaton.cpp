#include "learn/automaton.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace gw::learn {

EliminationAutomaton::EliminationAutomaton(double initial_rate,
                                           const AutomatonOptions& options)
    : options_(options), rng_(options.seed) {
  if (options.candidates < 2) {
    throw std::invalid_argument("EliminationAutomaton: need >= 2 candidates");
  }
  reset(initial_rate);
}

void EliminationAutomaton::reset(double initial_rate) {
  candidates_.clear();
  candidates_.resize(options_.candidates);
  for (int k = 0; k < options_.candidates; ++k) {
    candidates_[k].rate =
        options_.r_min + (options_.r_max - options_.r_min) *
                             static_cast<double>(k) /
                             (options_.candidates - 1);
  }
  // Start at the candidate closest to the requested initial rate.
  current_ = 0;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < candidates_.size(); ++k) {
    const double distance = std::abs(candidates_[k].rate - initial_rate);
    if (distance < best) {
      best = distance;
      current_ = k;
    }
  }
}

double EliminationAutomaton::current_rate() const {
  return candidates_[current_].rate;
}

std::size_t EliminationAutomaton::pick_next() {
  // Round-robin over surviving candidates with occasional random jumps so
  // payoff windows stay comparable across candidates.
  std::vector<std::size_t> alive;
  for (std::size_t k = 0; k < candidates_.size(); ++k) {
    if (candidates_[k].alive) alive.push_back(k);
  }
  if (alive.empty()) return current_;  // cannot happen: we never kill the last
  if (rng_.bernoulli(0.1)) {
    return alive[rng_.uniform_index(alive.size())];
  }
  // Next alive candidate after current_.
  for (std::size_t offset = 1; offset <= candidates_.size(); ++offset) {
    const std::size_t k = (current_ + offset) % candidates_.size();
    if (candidates_[k].alive) return k;
  }
  return current_;
}

void EliminationAutomaton::eliminate_dominated() {
  // s is eliminated when some alive s' has min_payoff(s') > max_payoff(s)
  // + margin, both past warmup: s' beat s in every context either saw.
  double best_min = -std::numeric_limits<double>::infinity();
  for (const auto& candidate : candidates_) {
    if (candidate.alive && candidate.visits >= options_.warmup_visits) {
      best_min = std::max(best_min, candidate.min_payoff);
    }
  }
  std::size_t alive_count = 0;
  for (const auto& candidate : candidates_) {
    if (candidate.alive) ++alive_count;
  }
  for (auto& candidate : candidates_) {
    if (!candidate.alive || candidate.visits < options_.warmup_visits) {
      continue;
    }
    if (alive_count <= 1) break;
    if (candidate.max_payoff + options_.margin < best_min) {
      candidate.alive = false;
      --alive_count;
    }
  }
}

double EliminationAutomaton::next_rate(const LearnerContext& context) {
  auto& candidate = candidates_[current_];
  const double payoff = context.observed_utility;
  if (candidate.visits == 0) {
    candidate.min_payoff = payoff;
    candidate.max_payoff = payoff;
  } else {
    // Window decay: relax stale extremes toward the latest observation so
    // a moving environment does not pin ancient payoffs forever.
    const double decay = options_.window_decay;
    candidate.min_payoff =
        std::min(payoff, payoff + (candidate.min_payoff - payoff) * decay);
    candidate.max_payoff =
        std::max(payoff, payoff + (candidate.max_payoff - payoff) * decay);
  }
  ++candidate.visits;

  eliminate_dominated();
  if (!candidates_[current_].alive || rng_.bernoulli(0.9)) {
    current_ = pick_next();
  }
  return candidates_[current_].rate;
}

std::vector<double> EliminationAutomaton::surviving() const {
  std::vector<double> out;
  for (const auto& candidate : candidates_) {
    if (candidate.alive) out.push_back(candidate.rate);
  }
  return out;
}

std::size_t EliminationAutomaton::surviving_count() const noexcept {
  std::size_t count = 0;
  for (const auto& candidate : candidates_) {
    if (candidate.alive) ++count;
  }
  return count;
}

}  // namespace gw::learn
