#include "core/welfare.hpp"

#include <algorithm>
#include <stdexcept>

namespace gw::core {

std::vector<double> utilities(const UtilityProfile& profile,
                              const std::vector<double>& rates,
                              const std::vector<double>& queues) {
  if (profile.size() != rates.size() || rates.size() != queues.size()) {
    throw std::invalid_argument("utilities: size mismatch");
  }
  std::vector<double> out(profile.size());
  for (std::size_t i = 0; i < profile.size(); ++i) {
    out[i] = profile[i]->value(rates[i], queues[i]);
  }
  return out;
}

double min_utility(const UtilityProfile& profile,
                   const std::vector<double>& rates,
                   const std::vector<double>& queues) {
  const auto values = utilities(profile, rates, queues);
  return *std::min_element(values.begin(), values.end());
}

double utilitarian_sum(const UtilityProfile& profile,
                       const std::vector<double>& rates,
                       const std::vector<double>& queues) {
  const auto values = utilities(profile, rates, queues);
  double total = 0.0;
  for (const double value : values) total += value;
  return total;
}

double jain_index(const std::vector<double>& rates) {
  if (rates.empty()) throw std::invalid_argument("jain_index: empty");
  double sum = 0.0, sum_sq = 0.0;
  for (const double rate : rates) {
    sum += rate;
    sum_sq += rate * rate;
  }
  if (sum_sq == 0.0) return 1.0;  // all zero: trivially equal
  return sum * sum / (static_cast<double>(rates.size()) * sum_sq);
}

bool pareto_dominates(const UtilityProfile& profile,
                      const std::vector<double>& rates_a,
                      const std::vector<double>& queues_a,
                      const std::vector<double>& rates_b,
                      const std::vector<double>& queues_b, double slack) {
  const auto a = utilities(profile, rates_a, queues_a);
  const auto b = utilities(profile, rates_b, queues_b);
  bool strict = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i] - slack) return false;
    if (a[i] > b[i] + slack) strict = true;
  }
  return strict;
}

}  // namespace gw::core
