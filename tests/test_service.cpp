// Service-demand distributions and M/G/1 empirics (footnote 5).
#include "sim/service.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "queueing/mg1.hpp"
#include "queueing/mm1.hpp"
#include "sim/runner.hpp"

namespace gw::sim {
namespace {

void check_moments(const ServiceSpec& spec, double expected_scv) {
  numerics::Rng rng(515151);
  numerics::RunningStat stat;
  const int n = 200000;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = spec.sample(rng);
    stat.add(x);
    sum_sq += x * x;
  }
  EXPECT_NEAR(stat.mean(), spec.mean, 0.02 * spec.mean);
  const double second = sum_sq / n;
  const double scv =
      (second - stat.mean() * stat.mean()) / (stat.mean() * stat.mean());
  EXPECT_NEAR(scv, expected_scv, 0.06 * std::max(expected_scv, 0.5));
  EXPECT_NEAR(spec.scv(), expected_scv, 1e-9);
}

TEST(ServiceSpec, ExponentialMoments) {
  check_moments(ServiceSpec::exponential(0.8), 1.0);
}

TEST(ServiceSpec, DeterministicMoments) {
  check_moments(ServiceSpec::deterministic(1.3), 0.0);
}

TEST(ServiceSpec, ErlangMoments) {
  check_moments(ServiceSpec::erlang(4, 1.0), 0.25);
}

TEST(ServiceSpec, HyperexponentialMoments) {
  check_moments(ServiceSpec::hyperexponential(4.0, 1.0), 4.0);
}

TEST(ServiceSpec, Validation) {
  EXPECT_THROW((void)ServiceSpec::exponential(0.0), std::invalid_argument);
  EXPECT_THROW((void)ServiceSpec::erlang(0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)ServiceSpec::hyperexponential(0.5),
               std::invalid_argument);
}

RunOptions mg1_options(std::uint64_t seed) {
  RunOptions options;
  options.warmup = 4000.0;
  options.batches = 14;
  options.batch_length = 6000.0;
  options.seed = seed;
  return options;
}

TEST(Mg1Sim, DeterministicServiceMatchesPollaczekKhinchine) {
  auto options = mg1_options(41);
  options.service = ServiceSpec::deterministic(1.0);
  const auto result = run_switch(Discipline::kFifo, {0.6}, options);
  const double expected = queueing::g_mg1(0.6, 0.0);  // M/D/1
  EXPECT_NEAR(result.users[0].mean_queue / expected, 1.0, 0.08);
}

TEST(Mg1Sim, HyperexponentialServiceMatchesPollaczekKhinchine) {
  auto options = mg1_options(43);
  options.service = ServiceSpec::hyperexponential(4.0, 1.0);
  const auto result = run_switch(Discipline::kFifo, {0.5}, options);
  const double expected = queueing::g_mg1(0.5, 4.0);
  EXPECT_NEAR(result.users[0].mean_queue / expected, 1.0, 0.15);
}

TEST(Mg1Sim, VariabilityOrdersTheQueues) {
  // At equal load: deterministic < exponential < hyperexponential queues.
  double queues[3];
  int index = 0;
  for (const auto& spec :
       {ServiceSpec::deterministic(1.0), ServiceSpec::exponential(1.0),
        ServiceSpec::hyperexponential(4.0, 1.0)}) {
    auto options = mg1_options(47);
    options.service = spec;
    queues[index++] =
        run_switch(Discipline::kFifo, {0.6}, options).users[0].mean_queue;
  }
  EXPECT_LT(queues[0], queues[1]);
  EXPECT_LT(queues[1], queues[2]);
}

TEST(Mg1Sim, FifoStaysProportionalAcrossServiceDistributions) {
  // Under FIFO every class sees the same mean delay whatever the service
  // distribution, so per-user queues remain proportional to rates.
  for (const auto& spec : {ServiceSpec::deterministic(1.0),
                           ServiceSpec::hyperexponential(4.0, 1.0)}) {
    auto options = mg1_options(53);
    options.service = spec;
    const std::vector<double> rates{0.15, 0.45};
    const auto result = run_switch(Discipline::kFifo, rates, options);
    const double ratio0 = result.users[0].mean_queue / rates[0];
    const double ratio1 = result.users[1].mean_queue / rates[1];
    EXPECT_NEAR(ratio0 / ratio1, 1.0, 0.12);
  }
}

TEST(Mg1Sim, ProcessorSharingInsensitiveToServiceDistribution) {
  // The classic M/G/1-PS insensitivity: mean occupancy depends on the
  // service distribution only through its mean.
  const double expected = queueing::g(0.6);
  for (const auto& spec : {ServiceSpec::deterministic(1.0),
                           ServiceSpec::hyperexponential(4.0, 1.0)}) {
    auto options = mg1_options(59);
    options.service = spec;
    const auto result =
        run_switch(Discipline::kProcessorSharing, {0.6}, options);
    EXPECT_NEAR(result.users[0].mean_queue / expected, 1.0, 0.12)
        << "scv " << spec.scv();
  }
}

TEST(DelayQuantiles, Mm1SojournIsExponential) {
  // M/M/1 FIFO sojourn ~ Exp(mu - lambda): quantiles ln(1/(1-q))/(mu-l).
  auto options = mg1_options(61);
  options.delay_histograms = true;
  options.delay_histogram_max = 60.0;
  const auto result = run_switch(Discipline::kFifo, {0.5}, options);
  const double scale = 1.0 / (1.0 - 0.5);
  EXPECT_NEAR(result.users[0].delay_p50 / (std::log(2.0) * scale), 1.0, 0.1);
  EXPECT_NEAR(result.users[0].delay_p95 / (std::log(20.0) * scale), 1.0,
              0.1);
  EXPECT_NEAR(result.users[0].delay_p99 / (std::log(100.0) * scale), 1.0,
              0.15);
}

TEST(DelayQuantiles, DisabledByDefault) {
  const auto result = run_switch(Discipline::kFifo, {0.3}, mg1_options(67));
  EXPECT_DOUBLE_EQ(result.users[0].delay_p99, 0.0);
}

TEST(DelayQuantiles, LifoHasHeavierTailThanFifo) {
  // Same mean, wildly different distribution: preemptive LIFO's delay
  // tail dwarfs FIFO's at equal load.
  auto options = mg1_options(71);
  options.delay_histograms = true;
  options.delay_histogram_max = 400.0;
  const auto fifo = run_switch(Discipline::kFifo, {0.6}, options);
  const auto lifo = run_switch(Discipline::kLifoPreempt, {0.6}, options);
  EXPECT_NEAR(lifo.users[0].mean_delay / fifo.users[0].mean_delay, 1.0, 0.2);
  EXPECT_GT(lifo.users[0].delay_p99, 1.5 * fifo.users[0].delay_p99);
}

}  // namespace
}  // namespace gw::sim
