// Selfish hill-climbing users against a SIMULATED switch (no oracle, no
// closed forms): each epoch the users observe only their own measured
// (rate, congestion) pair and nudge their sending rate to improve their
// utility — the paper's "adjust the knob until the picture looks best".
//
// Under Fair Share they settle at the analytic Nash point; under FIFO the
// same users overconsume past the Pareto level.
#include <cstdio>

#include "core/closed_forms.hpp"
#include "learn/hill_climber.hpp"
#include "sim/adaptive.hpp"

int main() {
  using namespace gw;

  const auto profile = core::uniform_profile(core::make_linear(1.0, 0.25), 2);

  sim::AdaptiveOptions options;
  // Epochs must be long enough that each user can see her own utility
  // gradient through queueing noise — a real deployment constraint, not a
  // simulation artifact (see DESIGN.md).
  options.epoch_length = 8000.0;
  options.epochs = 240;
  options.seed = 7;

  const sim::LearnerFactory factory = [](std::size_t, double initial) {
    learn::HillClimberOptions hill;
    hill.initial_step = 0.04;
    hill.min_step = 0.01;
    hill.samples_per_phase = 3;
    return std::make_unique<learn::FiniteDifferenceHillClimber>(initial, hill);
  };

  const auto pareto = core::fs_linear_symmetric_nash(0.25, 2);
  const auto fifo_nash = core::fifo_linear_symmetric_nash(0.25, 2);
  std::printf("Two identical users, U = r - 0.25 c. Analytic predictions:\n");
  std::printf("  Pareto / FS-Nash rate: %.4f   FIFO-Nash rate: %.4f\n\n",
              pareto.rate, fifo_nash.rate);

  for (const auto discipline :
       {sim::Discipline::kFairShareOracle, sim::Discipline::kFifo}) {
    const auto result = sim::run_adaptive(discipline, profile, {0.1, 0.35},
                                          factory, options);
    std::printf("--- %s: selfish adaptation trace ---\n",
                sim::discipline_name(discipline));
    std::printf("%-8s %-10s %-10s %-12s\n", "epoch", "r1", "r2", "total load");
    for (std::size_t e = 0; e < result.rate_history.size(); e += 30) {
      const auto& rates = result.rate_history[e];
      std::printf("%-8zu %-10.4f %-10.4f %-12.4f\n", e, rates[0], rates[1],
                  rates[0] + rates[1]);
    }
    const auto& last = result.final_rates;
    std::printf("final:   %-10.4f %-10.4f %-12.4f\n\n", last[0], last[1],
                last[0] + last[1]);
  }

  std::printf("FairShare pins the measured equilibrium at the efficient "
              "point; FIFO's selfish users overload the switch.\n");
  return 0;
}
