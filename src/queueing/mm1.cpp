#include "queueing/mm1.hpp"

#include <cmath>
#include <limits>

namespace gw::queueing {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

double g(double load) noexcept {
  if (load <= 0.0) return 0.0;
  if (load >= 1.0) return kInf;
  return load / (1.0 - load);
}

double g_prime(double load) noexcept {
  if (load >= 1.0) return kInf;
  const double u = 1.0 - load;
  return 1.0 / (u * u);
}

double g_double_prime(double load) noexcept {
  if (load >= 1.0) return kInf;
  const double u = 1.0 - load;
  return 2.0 / (u * u * u);
}

double g_inverse(double mean_queue) noexcept {
  if (mean_queue <= 0.0) return 0.0;
  if (std::isinf(mean_queue)) return 1.0;
  return mean_queue / (1.0 + mean_queue);
}

double Mm1::mean_in_system() const noexcept { return g(load()); }

double Mm1::mean_in_queue() const noexcept {
  const double rho = load();
  if (rho >= 1.0) return kInf;
  return rho * rho / (1.0 - rho);
}

double Mm1::mean_sojourn() const noexcept {
  if (!stable()) return kInf;
  return 1.0 / (mu - lambda);
}

double Mm1::mean_wait() const noexcept {
  if (!stable()) return kInf;
  return load() / (mu - lambda);
}

double Mm1::prob_n(std::size_t n) const noexcept {
  if (!stable()) return 0.0;
  const double rho = load();
  return (1.0 - rho) * std::pow(rho, static_cast<double>(n));
}

double Mm1::sojourn_tail(double t) const noexcept {
  if (!stable()) return 1.0;
  return std::exp(-(mu - lambda) * t);
}

}  // namespace gw::queueing
