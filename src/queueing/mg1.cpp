#include "queueing/mg1.hpp"

#include <limits>

namespace gw::queueing {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

ServiceMoments ServiceMoments::exponential(double rate) noexcept {
  const double mean = 1.0 / rate;
  return {mean, 2.0 * mean * mean};
}

ServiceMoments ServiceMoments::deterministic(double value) noexcept {
  return {value, value * value};
}

ServiceMoments ServiceMoments::erlang(int k, double mean) noexcept {
  // Erlang-k: variance = mean^2 / k.
  const double variance = mean * mean / k;
  return {mean, variance + mean * mean};
}

ServiceMoments ServiceMoments::hyperexponential(double p1, double rate1,
                                                double rate2) noexcept {
  const double p2 = 1.0 - p1;
  const double mean = p1 / rate1 + p2 / rate2;
  const double second = 2.0 * (p1 / (rate1 * rate1) + p2 / (rate2 * rate2));
  return {mean, second};
}

double Mg1::mean_wait() const noexcept {
  if (!stable()) return kInf;
  return lambda * service.second_moment / (2.0 * (1.0 - load()));
}

double Mg1::mean_sojourn() const noexcept {
  if (!stable()) return kInf;
  return service.mean + mean_wait();
}

double Mg1::mean_in_system() const noexcept {
  if (!stable()) return kInf;
  return lambda * mean_sojourn();
}

double g_mg1(double load, double scv) noexcept {
  if (load <= 0.0) return 0.0;
  if (load >= 1.0) return kInf;
  return load + load * load * (1.0 + scv) / (2.0 * (1.0 - load));
}

}  // namespace gw::queueing
