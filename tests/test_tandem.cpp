// Packet-level tandem networks vs the analytic Kleinrock-composition
// model of gw::net (paper Section 5.4).
#include "sim/tandem.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/fair_share.hpp"
#include "core/proportional.hpp"
#include "net/network.hpp"
#include "queueing/mm1.hpp"

namespace gw::sim {
namespace {

TandemOptions quick_tandem(std::uint64_t seed) {
  TandemOptions options;
  options.warmup = 4000.0;
  options.batches = 10;
  options.batch_length = 5000.0;
  options.seed = seed;
  return options;
}

TEST(Tandem, SingleSwitchReducesToRunSwitch) {
  const std::vector<double> rates{0.2, 0.3};
  const auto result = run_tandem(Discipline::kFifo, rates, {{0, 0}, {0, 0}},
                                 1, quick_tandem(3));
  const core::ProportionalAllocation analytic;
  const auto expected = analytic.congestion(rates);
  for (std::size_t u = 0; u < 2; ++u) {
    EXPECT_NEAR(result.total_congestion[u] / expected[u], 1.0, 0.12);
  }
}

TEST(Tandem, FifoTwoHopBurkeExact) {
  // Burke's theorem: the FIFO M/M/1 output is Poisson, so with resampled
  // service both hops are exact M/M/1 and the analytic composition holds.
  const std::vector<double> rates{0.4};
  const auto result =
      run_tandem(Discipline::kFifo, rates, {{0, 1}}, 2, quick_tandem(5));
  const double per_hop = queueing::g(0.4);
  EXPECT_NEAR(result.total_congestion[0] / (2.0 * per_hop), 1.0, 0.12);
  EXPECT_NEAR(result.mean_queue[0][0] / per_hop, 1.0, 0.12);
  EXPECT_NEAR(result.mean_queue[1][0] / per_hop, 1.0, 0.12);
}

TEST(Tandem, MatchesNetworkAllocationForFifoCrossTraffic) {
  // User 0 spans both switches, users 1/2 are local cross traffic.
  const std::vector<double> rates{0.2, 0.3, 0.25};
  const std::vector<std::pair<std::size_t, std::size_t>> spans{
      {0, 1}, {0, 0}, {1, 1}};
  const auto fifo = std::make_shared<core::ProportionalAllocation>();
  const auto analytic = net::make_tandem(fifo, 2, spans);
  const auto expected = analytic->congestion(rates);
  const auto result =
      run_tandem(Discipline::kFifo, rates, spans, 2, quick_tandem(7));
  for (std::size_t u = 0; u < 3; ++u) {
    EXPECT_NEAR(result.total_congestion[u] / expected[u], 1.0, 0.15)
        << "user " << u;
  }
}

TEST(Tandem, FairShareCompositionApproximatelyHolds) {
  // FS switch outputs are NOT Poisson; the paper calls characterizing
  // them "a daunting challenge". Empirically the Kleinrock approximation
  // is still decent at these loads — we assert a loose 25% envelope and
  // record the gap (see bench_network for the measured numbers).
  const std::vector<double> rates{0.2, 0.3, 0.25};
  const std::vector<std::pair<std::size_t, std::size_t>> spans{
      {0, 1}, {0, 0}, {1, 1}};
  const auto fs = std::make_shared<core::FairShareAllocation>();
  const auto analytic = net::make_tandem(fs, 2, spans);
  const auto expected = analytic->congestion(rates);
  const auto result =
      run_tandem(Discipline::kFairShareOracle, rates, spans, 2,
                 quick_tandem(9));
  for (std::size_t u = 0; u < 3; ++u) {
    EXPECT_NEAR(result.total_congestion[u] / expected[u], 1.0, 0.25)
        << "user " << u;
  }
}

TEST(Tandem, EndToEndDelayGrowsWithHops) {
  const std::vector<double> rates{0.3, 0.3};
  const auto one_hop = run_tandem(Discipline::kFifo, rates, {{0, 0}, {0, 0}},
                                  1, quick_tandem(11));
  const auto three_hop = run_tandem(Discipline::kFifo, rates,
                                    {{0, 2}, {0, 2}}, 3, quick_tandem(11));
  EXPECT_GT(three_hop.end_to_end_delay[0],
            2.0 * one_hop.end_to_end_delay[0]);
}

TEST(Tandem, NoResampleStillConservesThroughput) {
  // Carrying the same demand across hops (realistic packets) changes
  // correlations but not stability: queues stay finite at modest load.
  TandemOptions options = quick_tandem(13);
  options.resample_service = false;
  const std::vector<double> rates{0.35};
  const auto result = run_tandem(Discipline::kFifo, rates, {{0, 1}}, 2,
                                 options);
  EXPECT_GT(result.total_congestion[0], 0.5);
  EXPECT_LT(result.total_congestion[0], 10.0);
}

TEST(Tandem, KeptDemandInflatesDownstreamQueueing) {
  // The correlation effect behind the paper's Section 5.4 caveat: when a
  // packet keeps its service demand across hops, long services cluster at
  // the second queue and its mean occupancy exceeds the independent
  // (Kleinrock/Burke) prediction — by roughly 5-10% at this load, stable
  // across seeds. The Poisson-composition model is an approximation, and
  // this is its measurable signature.
  TandemOptions kept = quick_tandem(17);
  kept.resample_service = false;
  const std::vector<double> rates{0.45};
  const auto correlated =
      run_tandem(Discipline::kFifo, rates, {{0, 1}}, 2, kept);
  const auto independent =
      run_tandem(Discipline::kFifo, rates, {{0, 1}}, 2, quick_tandem(17));
  EXPECT_GT(correlated.mean_queue[1][0],
            0.98 * independent.mean_queue[1][0]);
  EXPECT_LT(correlated.mean_queue[1][0],
            1.30 * independent.mean_queue[1][0]);
}

TEST(Tandem, InputValidation) {
  EXPECT_THROW((void)run_tandem(Discipline::kFifo, {0.1}, {{1, 0}}, 2,
                                quick_tandem(1)),
               std::invalid_argument);
  EXPECT_THROW((void)run_tandem(Discipline::kFifo, {0.1}, {{0, 5}}, 2,
                                quick_tandem(1)),
               std::invalid_argument);
  EXPECT_THROW((void)run_tandem(Discipline::kRatePriority, {0.1}, {{0, 0}},
                                1, quick_tandem(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace gw::sim
