#include "core/plant.hpp"

#include <cmath>
#include <stdexcept>

#include "core/nash.hpp"

namespace gw::core {

UtilityProfile plant_nash_profile(const AllocationFunction& alloc,
                                  const std::vector<double>& target,
                                  const PlantOptions& options) {
  const auto congestion = alloc.congestion(target);
  UtilityProfile profile;
  profile.reserve(target.size());
  for (std::size_t i = 0; i < target.size(); ++i) {
    if (target[i] <= 0.0 || !std::isfinite(congestion[i])) {
      throw std::invalid_argument(
          "plant_nash_profile: target must be interior");
    }
    const double slope = alloc.partial(i, i, target);
    if (!(slope > 0.0) || !std::isfinite(slope)) {
      throw std::invalid_argument(
          "plant_nash_profile: dC_i/dr_i must be positive and finite");
    }
    // alpha/gamma = slope makes M_i = -slope at the target: the Nash FDC.
    const double gamma = 1.0;
    const double alpha = slope * gamma;
    profile.push_back(make_exponential(alpha, options.beta, gamma, options.nu,
                                       target[i], congestion[i]));
  }
  return profile;
}

bool verify_planted(const AllocationFunction& alloc,
                    const std::vector<double>& target,
                    const PlantOptions& options, double utility_slack) {
  const auto profile = plant_nash_profile(alloc, target, options);
  return is_nash(alloc, profile, target, utility_slack);
}

}  // namespace gw::core
