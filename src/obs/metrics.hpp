// Thread-safe metrics registry.
//
// Instruments register Counter / Gauge / Histogram handles by name; the
// handles are lock-free on the hot path (atomic operations only) and
// stable for the registry's lifetime, so call sites cache references:
//
//   static auto& solves = obs::default_registry().counter("core.nash.solves");
//   solves.inc();
//
// snapshot() captures a consistent-enough view for export; to_json() /
// to_csv() serialize it. The default registry is a process-wide singleton
// shared by the library instrumentation and the bench harness' --json
// telemetry; reset() restores all registered metrics to zero (benches use
// this to scope measurements).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace gw::obs {

/// Monotone event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (plus atomic add for accumulators).
class Gauge {
 public:
  void set(double x) noexcept { value_.store(x, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bin concurrent histogram on [lo, hi); out-of-range observations
/// clamp into the edge bins. Tracks count/sum/min/max alongside the bins.
/// NaN observations are dropped (they would corrupt sum/quantiles) and
/// tallied in rejected().
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void observe(double x) noexcept;

  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] std::size_t bins() const noexcept { return bins_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const noexcept {
    return bins_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  /// Observations dropped for being NaN.
  [[nodiscard]] std::uint64_t rejected() const noexcept {
    return rejected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double mean() const noexcept;
  /// Empirical quantile (0 <= q <= 1) via bin midpoints; NaN when empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  void reset() noexcept;

 private:
  double lo_;
  double hi_;
  std::vector<std::atomic<std::uint64_t>> bins_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// One exported sample of everything registered; see Registry::snapshot().
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    std::uint64_t value;
  };
  struct GaugeSample {
    std::string name;
    double value;
  };
  struct HistogramSample {
    std::string name;
    double lo = 0.0;
    double hi = 0.0;
    std::uint64_t count = 0;
    std::uint64_t rejected = 0;  ///< NaN observations dropped
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    std::vector<std::uint64_t> buckets;
  };

  std::vector<CounterSample> counters;      ///< sorted by name
  std::vector<GaugeSample> gauges;          ///< sorted by name
  std::vector<HistogramSample> histograms;  ///< sorted by name
};

class Registry {
 public:
  /// Returns the counter registered under `name`, creating it on first
  /// use. The reference stays valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Histogram bounds are fixed by the first registration; later calls
  /// with the same name return the existing instance (bounds ignored).
  Histogram& histogram(std::string_view name, double lo, double hi,
                       std::size_t bins = 64);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Serializes snapshot() as a JSON object
  /// {"counters":{...},"gauges":{...},"histograms":{name:{...}}}.
  [[nodiscard]] std::string to_json() const;

  /// One metric per line: "type,name,value[,...]" (histograms append
  /// count,sum,min,max,p50,p90,p99).
  [[nodiscard]] std::string to_csv() const;

  /// Zeroes every registered metric (registrations are kept).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Process-wide registry used by the built-in instrumentation.
Registry& default_registry();

}  // namespace gw::obs
