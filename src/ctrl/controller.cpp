#include "ctrl/controller.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/perfcount.hpp"
#include "obs/trace.hpp"

namespace gw::ctrl {

namespace {

struct ControllerMetrics {
  obs::Counter& submitted;
  obs::Counter& applied;
  obs::Counter& batches;
  obs::Gauge& staleness;
  obs::Gauge& epoch;
  obs::Histogram& batch_seconds;
  obs::Histogram& batch_size;
  obs::Histogram& staleness_age_ms;
};

ControllerMetrics& controller_metrics() {
  static auto& registry = obs::default_registry();
  static ControllerMetrics metrics{
      registry.counter("ctrl.updates_submitted"),
      registry.counter("ctrl.updates_applied"),
      registry.counter("ctrl.batches"),
      registry.gauge("ctrl.staleness_updates"),
      registry.gauge("ctrl.epoch"),
      registry.histogram("ctrl.batch_seconds", 0.0, 0.5, 128),
      registry.histogram("ctrl.batch_size", 0.0, 1024.0, 64),
      registry.histogram("ctrl.staleness_age_ms", 0.0, 1000.0, 128),
  };
  return metrics;
}

}  // namespace

Controller::Controller(std::vector<SolverShard> shards,
                       ControllerConfig config)
    : shards_(std::move(shards)), config_(config) {
  if (shards_.empty()) throw std::invalid_argument("Controller: no shards");
  shard_base_.reserve(shards_.size());
  for (const auto& shard : shards_) {
    shard_base_.push_back(users_);
    users_ += shard.size();
  }
  served_.reserve(users_);
  for (const auto& shard : shards_) {
    served_.insert(served_.end(), shard.rates().begin(), shard.rates().end());
  }
}

std::pair<std::size_t, std::size_t> Controller::locate(
    std::size_t user) const {
  if (user >= users_) throw std::invalid_argument("Controller: bad user id");
  // shard_base_ is ascending; find the last base <= user.
  const auto it = std::upper_bound(shard_base_.begin(), shard_base_.end(),
                                   user);
  const std::size_t k = static_cast<std::size_t>(it - shard_base_.begin()) - 1;
  return {k, user - shard_base_[k]};
}

void Controller::submit(RateUpdate update) {
  if (update.user >= users_) {
    throw std::invalid_argument("Controller: bad user id");
  }
  if (update.utility == nullptr) {
    throw std::invalid_argument("Controller: null utility");
  }
  const std::uint64_t now_us = obs::wall_now_us();
  std::size_t depth = 0;
  {
    const std::lock_guard<std::mutex> lock(ingress_mutex_);
    ingress_.push_back(PendingUpdate{std::move(update), now_us});
    depth = ingress_.size();
  }
  auto& metrics = controller_metrics();
  metrics.submitted.inc();
  metrics.staleness.set(static_cast<double>(depth));
}

void Controller::submit(std::span<const RateUpdate> updates) {
  for (const auto& update : updates) {
    if (update.user >= users_ || update.utility == nullptr) {
      throw std::invalid_argument("Controller: bad update in batch");
    }
  }
  const std::uint64_t now_us = obs::wall_now_us();
  std::size_t depth = 0;
  {
    const std::lock_guard<std::mutex> lock(ingress_mutex_);
    for (const auto& update : updates) {
      ingress_.push_back(PendingUpdate{update, now_us});
    }
    depth = ingress_.size();
  }
  auto& metrics = controller_metrics();
  metrics.submitted.inc(updates.size());
  metrics.staleness.set(static_cast<double>(depth));
}

std::size_t Controller::pending() const {
  const std::lock_guard<std::mutex> lock(ingress_mutex_);
  return ingress_.size();
}

BatchReport Controller::apply_pending(exec::ThreadPool* pool) {
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t trace_start_us = obs::wall_now_us();

  draining_.clear();
  {
    const std::lock_guard<std::mutex> lock(ingress_mutex_);
    std::swap(draining_, ingress_);
  }

  BatchReport report;
  report.updates_applied = draining_.size();
  auto& metrics = controller_metrics();

  if (!draining_.empty()) {
    // Route in arrival order; SolverShard::stage keeps the last write per
    // user, so in-batch coalescing matches the submit sequence. Each
    // update's queue age (submit to drain) feeds the staleness histogram.
    const std::uint64_t drain_us = obs::wall_now_us();
    for (auto& pending : draining_) {
      metrics.staleness_age_ms.observe(
          static_cast<double>(drain_us - pending.submitted_us) / 1000.0);
      const auto [k, local] = locate(pending.update.user);
      shards_[k].stage(local, std::move(pending.update.utility));
    }
    dirty_shards_.clear();
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      if (shards_[k].dirty()) dirty_shards_.push_back(k);
    }
    report.shards_repaired = dirty_shards_.size();
    outcomes_.assign(dirty_shards_.size(), RepairOutcome{});

    // Shard repairs are independent; per-slot outcomes + the static
    // partition keep the result identical for any pool size.
    const auto repair_one = [this](std::size_t idx) {
      outcomes_[idx] = shards_[dirty_shards_[idx]].repair(config_.policy);
    };
    if (pool != nullptr && dirty_shards_.size() > 1) {
      pool->parallel_for(dirty_shards_.size(), repair_one);
    } else {
      for (std::size_t i = 0; i < dirty_shards_.size(); ++i) repair_one(i);
    }

    for (const auto& outcome : outcomes_) {
      switch (outcome.path) {
        case RepairPath::kSingleUser: ++report.single_user; break;
        case RepairPath::kRelax: ++report.relax; break;
        case RepairPath::kNewton: ++report.newton; break;
        case RepairPath::kWarmSolve: ++report.warm_solve; break;
        case RepairPath::kFullSolve: ++report.full_solve; break;
        // Controllers only build expanded shards; classed repairs happen
        // on directly-owned shards (the E-SCALE path).
        case RepairPath::kClassRepair: ++report.warm_solve; break;
        case RepairPath::kNoop: break;
      }
      report.all_converged = report.all_converged && outcome.converged;
      report.max_residual = std::max(report.max_residual,
                                     outcome.max_residual);
    }

    // Publish: copy each repaired shard's rates into the served vector
    // under one lock, then bump the epoch — readers see old or new, never
    // a torn mix of the two.
    {
      const std::lock_guard<std::mutex> lock(served_mutex_);
      for (const std::size_t k : dirty_shards_) {
        const auto& rates = shards_[k].rates();
        std::copy(rates.begin(), rates.end(),
                  served_.begin() + static_cast<std::ptrdiff_t>(
                                        shard_base_[k]));
      }
      ++epoch_;
      report.epoch = epoch_;
    }
  } else {
    const std::lock_guard<std::mutex> lock(served_mutex_);
    report.epoch = epoch_;
  }

  const auto elapsed = std::chrono::steady_clock::now() - start;
  report.wall_seconds =
      std::chrono::duration<double>(elapsed).count();

  metrics.batches.inc();
  metrics.applied.inc(report.updates_applied);
  obs::work::add(obs::work::Kind::kUpdatesApplied, report.updates_applied);
  metrics.batch_seconds.observe(report.wall_seconds);
  metrics.batch_size.observe(static_cast<double>(report.updates_applied));
  metrics.staleness.set(static_cast<double>(pending()));
  metrics.epoch.set(static_cast<double>(report.epoch));
  if (auto* trace = obs::active_trace()) {
    trace->complete("ctrl", "apply_pending",
                    static_cast<double>(trace_start_us),
                    static_cast<double>(obs::wall_now_us() - trace_start_us));
  }
  return report;
}

AllocationSnapshot Controller::snapshot() const {
  AllocationSnapshot snap;
  {
    const std::lock_guard<std::mutex> lock(served_mutex_);
    snap.epoch = epoch_;
    snap.rates = served_;
  }
  snap.pending = pending();
  return snap;
}

}  // namespace gw::ctrl
