// Records a packet-level simulation run as a Chrome trace-event file.
//
//   ./trace_demo [output.json]
//
// Open the file at https://ui.perfetto.dev (or chrome://tracing) to see
// per-packet arrive/depart instants, per-service-segment station spans,
// and per-user queue-occupancy counter tracks over simulated time (one
// simulated second renders as one second).
#include <cstdio>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace gw;
  const std::string path = argc > 1 ? argv[1] : "trace_demo.json";

  obs::TraceSession session;
  {
    // Everything the simulator does while this scope is active is traced.
    const obs::ActiveTraceScope scope(session);

    sim::RunOptions options;
    options.warmup = 20.0;
    options.batches = 4;
    options.batch_length = 50.0;
    options.seed = 7;
    const auto result =
        sim::run_switch(sim::Discipline::kFifo, {0.35, 0.25, 0.15}, options);

    std::printf("simulated a FIFO switch: %zu events, %.1f time units\n",
                result.events, options.warmup + 4 * options.batch_length);
    for (std::size_t u = 0; u < result.users.size(); ++u) {
      std::printf("  user %zu: mean queue %.3f, mean delay %.3f\n", u,
                  result.users[u].mean_queue, result.users[u].mean_delay);
    }
  }

  if (!session.write_file(path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("\nwrote %zu trace events to %s (%zu dropped)\n",
              session.size(), path.c_str(), session.dropped());
  std::printf("open it at https://ui.perfetto.dev or chrome://tracing\n");

  // The same run also fed the metrics registry.
  std::printf("\nmetrics snapshot:\n%s",
              obs::default_registry().to_csv().c_str());
  return 0;
}
