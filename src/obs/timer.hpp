// Scoped wall-clock timers feeding the metrics registry.
//
//   void solve(...) {
//     static auto& timing = obs::default_registry().histogram(
//         "core.nash.solve_seconds", 0.0, 1.0);
//     obs::ScopedTimer timer(timing);
//     ...
//   }
//
// The observation lands in the histogram when the scope exits, so the
// registry snapshot (and bench --json telemetry) reports call counts and
// latency quantiles without any explicit bookkeeping at the call site.
#pragma once

#include <chrono>

#include "obs/metrics.hpp"

namespace gw::obs {

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& sink) noexcept
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    sink_.observe(std::chrono::duration<double>(elapsed).count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace gw::obs
