// Coalitional manipulation (paper footnote 14, after Moulin–Shenker).
//
// A coalition S deviates jointly from an operating point if its members
// can pick new rates (others frozen) that make EVERY member strictly
// better off. Fair Share Nash equilibria are resilient against such
// manipulations; FIFO's are not (any all-user coalition can back off and
// Pareto-improve itself). This module searches for profitable joint
// deviations by grid scan plus Nelder–Mead refinement.
#pragma once

#include <cstddef>
#include <vector>

#include "core/allocation.hpp"
#include "core/utility.hpp"

namespace gw::core {

struct CoalitionOptions {
  int grid = 21;          ///< per-member grid resolution of the joint scan
  double r_min = 1e-5;
  double r_max = 0.95;
  double min_gain = 1e-6; ///< required uniform gain to call it profitable
  int refine_evaluations = 4000;
};

struct CoalitionResult {
  bool profitable = false;
  double best_min_gain = 0.0;          ///< max-min utility gain achieved
  std::vector<double> deviation_rates; ///< full rate vector of the deviation
};

/// Searches for a joint deviation of `coalition` from `rates` that makes
/// every member strictly better off. Coalition sizes 1..3 use an exact
/// grid scan; larger coalitions are scanned with random joint samples.
[[nodiscard]] CoalitionResult find_coalition_deviation(
    const AllocationFunction& alloc, const UtilityProfile& profile,
    const std::vector<double>& rates, const std::vector<std::size_t>& coalition,
    const CoalitionOptions& options = {});

}  // namespace gw::core
