// Packet-level service disciplines at a single unit-rate server.
//
// Every station reports occupancy changes and departures to a
// QueueTracker, whose per-user time-average occupancy is the empirical
// counterpart of the allocation functions in gw::core:
//   * FIFO, preemptive LIFO and PS all realize the proportional
//     allocation C_i = r_i / (1 - sum r) in the M/M/1 setting;
//   * PreemptivePriorityStation realizes the telescoping per-class form
//     L_k = g(sigma_k) - g(sigma_{k-1});
//   * FairShareStation (see fair_share_station.hpp) composes priority
//     service with Table 1 thinning to realize C^FS.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"
#include "sim/tracker.hpp"

namespace gw::sim {

class Station {
 public:
  Station(Simulator& sim, QueueTracker& tracker)
      : sim_(sim), tracker_(tracker) {}
  virtual ~Station() = default;
  Station(const Station&) = delete;
  Station& operator=(const Station&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Hands a packet to the station at the current simulation time.
  virtual void arrive(Packet packet) = 0;

  /// Installs a next-hop hook invoked with every departing packet (used to
  /// chain stations into a tandem network, see sim/tandem.hpp). Virtual:
  /// wrapper stations (FairShareStation) forward it to their inner engine.
  virtual void set_next_hop(std::function<void(const Packet&)> hook) {
    next_hop_ = std::move(hook);
  }

 protected:
  // The tracing fast paths are a relaxed load + unlikely branch; the
  // emission bodies live out of line (stations.cpp) to keep the hot
  // loop's code small when tracing is off.
  void note_arrival(const Packet& packet) {
    auto* trace = obs::active_trace();
    if (trace != nullptr) [[unlikely]] {
      trace_packet_instant(*trace, "arrive", packet);
    }
    tracker_.on_change(sim_.now(), packet.user, +1, trace);
  }
  void note_departure(const Packet& packet) {
    auto* trace = obs::active_trace();
    if (trace != nullptr) [[unlikely]] {
      trace_packet_instant(*trace, "depart", packet);
    }
    tracker_.on_change(sim_.now(), packet.user, -1, trace);
    tracker_.on_departure(packet.user, sim_.now() - packet.arrival_time);
    if (next_hop_) next_hop_(packet);
  }

  /// Tracing hooks for the server's busy periods. Disciplines call
  /// trace_service_start() when a packet (re)occupies the server and
  /// trace_service_stop() when it leaves it (completion or preemption);
  /// each uninterrupted service segment becomes one "station" span.
  void trace_service_start(const Packet& packet) {
    if (obs::active_trace() != nullptr) [[unlikely]] {
      service_span_start_ = sim_.now();
      service_span_user_ = packet.user;
      service_span_open_ = true;
    }
  }
  void trace_service_stop() {
    // service_span_open_ is only ever set while tracing, so the disabled
    // path is a single plain-bool test.
    if (service_span_open_) [[unlikely]] emit_service_span();
  }

  Simulator& sim_;
  QueueTracker& tracker_;

 private:
  void trace_packet_instant(obs::TraceSession& trace, const char* name,
                            const Packet& packet) const;
  void emit_service_span();

  std::function<void(const Packet&)> next_hop_;
  double service_span_start_ = 0.0;
  std::size_t service_span_user_ = 0;
  bool service_span_open_ = false;
};

/// First-in first-out, non-preemptive.
class FifoStation final : public Station {
 public:
  using Station::Station;
  [[nodiscard]] std::string name() const override { return "FIFO"; }
  void arrive(Packet packet) override;

 private:
  void start_service();
  void complete();

  std::deque<Packet> queue_;
  bool busy_ = false;
  EventId completion_ = 0;
};

/// Last-in first-out with preemptive resume.
class LifoPreemptStation final : public Station {
 public:
  using Station::Station;
  [[nodiscard]] std::string name() const override { return "LIFO-PR"; }
  void arrive(Packet packet) override;

 private:
  void serve_top();
  void complete();

  std::vector<Packet> stack_;  ///< back() is in service
  bool busy_ = false;
  double service_start_ = 0.0;
  EventId completion_ = 0;
};

/// Exact egalitarian processor sharing: k jobs each progress at rate 1/k.
class PsStation final : public Station {
 public:
  using Station::Station;
  [[nodiscard]] std::string name() const override { return "PS"; }
  void arrive(Packet packet) override;

 private:
  void age_jobs();
  void reschedule();
  void complete();

  std::vector<Packet> jobs_;
  double last_progress_ = 0.0;
  EventId completion_ = 0;
};

/// Non-preemptive (HOL) static priority: the packet in service always
/// finishes; at each completion the head of the highest backlogged class
/// goes next (Cobham's model).
class HolPriorityStation final : public Station {
 public:
  HolPriorityStation(Simulator& sim, QueueTracker& tracker,
                     std::size_t levels);
  [[nodiscard]] std::string name() const override { return "HOL-Prio"; }
  void arrive(Packet packet) override;

 private:
  void serve_next();
  void complete();

  std::vector<std::deque<Packet>> levels_;
  bool busy_ = false;
  Packet in_service_{};
  EventId completion_ = 0;
};

/// Preemptive-resume static priority; Packet::priority selects the class
/// (0 = highest). FIFO within a class.
class PreemptivePriorityStation final : public Station {
 public:
  PreemptivePriorityStation(Simulator& sim, QueueTracker& tracker,
                            std::size_t levels);
  [[nodiscard]] std::string name() const override { return "PreemptPrio"; }
  void arrive(Packet packet) override;

 private:
  void serve_next();
  void complete();

  std::vector<std::deque<Packet>> levels_;
  bool busy_ = false;
  Packet in_service_{};
  double service_start_ = 0.0;
  EventId completion_ = 0;
};

}  // namespace gw::sim
