#include "core/fair_share.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "numerics/differentiate.hpp"
#include "numerics/rng.hpp"
#include "queueing/feasibility.hpp"
#include "queueing/mm1.hpp"
#include "queueing/priority.hpp"

namespace gw::core {
namespace {

TEST(FairShare, PaperRecursionSmallestUser) {
  // C_1 = g(N r_1) / N.
  const FairShareAllocation alloc;
  const std::vector<double> rates{0.05, 0.1, 0.2, 0.3};
  const auto congestion = alloc.congestion(rates);
  EXPECT_NEAR(congestion[0], queueing::g(4 * 0.05) / 4.0, 1e-12);
}

TEST(FairShare, PaperRecursionSecondUser) {
  // C_2 = C_1 + [g((n-1) r_2 + r_1) - g(n r_1)] / (n-1).
  const FairShareAllocation alloc;
  const std::vector<double> rates{0.05, 0.1, 0.2, 0.3};
  const auto congestion = alloc.congestion(rates);
  const double expected =
      congestion[0] +
      (queueing::g(3 * 0.1 + 0.05) - queueing::g(4 * 0.05)) / 3.0;
  EXPECT_NEAR(congestion[1], expected, 1e-12);
}

TEST(FairShare, SatisfiesAggregateConstraint) {
  const FairShareAllocation alloc;
  const std::vector<double> rates{0.12, 0.31, 0.22, 0.05, 0.1};
  const auto feasibility =
      queueing::check_feasibility(rates, alloc.congestion(rates));
  EXPECT_TRUE(feasibility.feasible());
  EXPECT_TRUE(feasibility.interior());
}

TEST(FairShare, SymmetricUnderPermutation) {
  const FairShareAllocation alloc;
  const std::vector<double> rates{0.1, 0.3, 0.2};
  const std::vector<double> permuted{0.2, 0.1, 0.3};
  const auto c = alloc.congestion(rates);
  const auto cp = alloc.congestion(permuted);
  EXPECT_NEAR(cp[0], c[2], 1e-12);
  EXPECT_NEAR(cp[1], c[0], 1e-12);
  EXPECT_NEAR(cp[2], c[1], 1e-12);
}

TEST(FairShare, EqualRatesShareEqually) {
  const FairShareAllocation alloc;
  const auto congestion = alloc.congestion({0.2, 0.2, 0.2});
  const double each = queueing::g(0.6) / 3.0;
  for (const double c : congestion) EXPECT_NEAR(c, each, 1e-12);
}

TEST(FairShare, MatchesPriorityDecompositionAnalytically) {
  // C^FS from the formula == per-user sum over priority slices of the
  // preemptive-priority per-class queues (Table 1 realization).
  const FairShareAllocation alloc;
  const std::vector<double> rates{0.05, 0.1, 0.15, 0.2};
  const auto congestion = alloc.congestion(rates);
  const auto decomposition = fair_share_decomposition(rates);
  const auto per_level =
      queueing::preemptive_priority_mm1(decomposition.level_rate);
  for (std::size_t u = 0; u < rates.size(); ++u) {
    double expected = 0.0;
    for (std::size_t l = 0; l < rates.size(); ++l) {
      if (decomposition.level_rate[l] <= 0.0) continue;
      expected += per_level[l].mean_in_system *
                  (decomposition.slice_rate[u][l] /
                   decomposition.level_rate[l]);
    }
    EXPECT_NEAR(congestion[u], expected, 1e-10) << "user " << u;
  }
}

TEST(FairShare, PartialInsularityAgainstFlooding) {
  // A light user's congestion is untouched by a flooding heavy user.
  const FairShareAllocation alloc;
  const auto calm = alloc.congestion({0.1, 0.3});
  const auto stormy = alloc.congestion({0.1, 5.0});
  // C_1 = g(2 r_1)/2 depends only on r_1 once r_2 >= r_1.
  EXPECT_NEAR(calm[0], queueing::g(0.2) / 2.0, 1e-12);
  EXPECT_NEAR(stormy[0], calm[0], 1e-12);
  const auto medium = alloc.congestion({0.1, 0.5});
  EXPECT_NEAR(stormy[0], medium[0], 1e-12);
  EXPECT_TRUE(std::isinf(stormy[1]));  // the flooder saturates alone
}

TEST(FairShare, SaturationIsSerial) {
  // S_1 = 3 * 0.2 = 0.6 < 1 finite; S_2 = 0.2 + 2*0.5 = 1.2 >= 1 infinite.
  const FairShareAllocation alloc;
  const auto congestion = alloc.congestion({0.2, 0.5, 0.6});
  EXPECT_TRUE(std::isfinite(congestion[0]));
  EXPECT_TRUE(std::isinf(congestion[1]));
  EXPECT_TRUE(std::isinf(congestion[2]));
}

TEST(FairShare, OwnPartialIsSerialSlope) {
  const FairShareAllocation alloc;
  const std::vector<double> rates{0.1, 0.2, 0.3};
  // Rank of user 0 is 0: S_1 = 3 * 0.1.
  EXPECT_NEAR(alloc.partial(0, 0, rates), queueing::g_prime(0.3), 1e-12);
  // Rank of user 2 is 2: S_3 = 0.1 + 0.2 + 0.3.
  EXPECT_NEAR(alloc.partial(2, 2, rates), queueing::g_prime(0.6), 1e-12);
}

TEST(FairShare, JacobianLowerTriangularInSortedOrder) {
  const FairShareAllocation alloc;
  const std::vector<double> rates{0.25, 0.1, 0.18};
  // r_1 = 0.1 smallest, r_2 = 0.18, r_0 = 0.25 largest.
  EXPECT_DOUBLE_EQ(alloc.partial(1, 2, rates), 0.0);
  EXPECT_DOUBLE_EQ(alloc.partial(1, 0, rates), 0.0);
  EXPECT_DOUBLE_EQ(alloc.partial(2, 0, rates), 0.0);
  EXPECT_GT(alloc.partial(0, 1, rates), 0.0);
  EXPECT_GT(alloc.partial(0, 2, rates), 0.0);
  EXPECT_GT(alloc.partial(2, 1, rates), 0.0);
}

TEST(FairShare, AnalyticPartialsMatchNumeric) {
  const FairShareAllocation alloc;
  const std::vector<double> rates{0.08, 0.2, 0.14, 0.3};
  for (std::size_t i = 0; i < rates.size(); ++i) {
    for (std::size_t j = 0; j < rates.size(); ++j) {
      const double numeric = numerics::partial(
          [&](const std::vector<double>& r) {
            return alloc.congestion(r)[i];
          },
          rates, j);
      EXPECT_NEAR(alloc.partial(i, j, rates), numeric, 2e-5)
          << "partial(" << i << "," << j << ")";
    }
  }
}

TEST(FairShare, AnalyticSecondPartialsMatchNumeric) {
  const FairShareAllocation alloc;
  const std::vector<double> rates{0.1, 0.22, 0.35};
  for (std::size_t i = 0; i < rates.size(); ++i) {
    for (std::size_t j = 0; j < rates.size(); ++j) {
      const double numeric = numerics::mixed_partial(
          [&](const std::vector<double>& r) {
            return alloc.congestion(r)[i];
          },
          rates, i, j);
      EXPECT_NEAR(alloc.second_partial(i, j, rates), numeric, 5e-3)
          << "second_partial(" << i << "," << j << ")";
    }
  }
}

TEST(FairShare, CrossDerivativeZeroAtTies) {
  // The Lemma 1 signature: dC_i/dr_j = 0 whenever r_j = r_i, i != j.
  const FairShareAllocation alloc;
  const std::vector<double> rates{0.2, 0.2, 0.1};
  EXPECT_DOUBLE_EQ(alloc.partial(0, 1, rates), 0.0);
  EXPECT_DOUBLE_EQ(alloc.partial(1, 0, rates), 0.0);
}

TEST(FairShare, ContinuousAcrossTies) {
  // C^1 at ties: congestion and derivative continuous as r_j crosses r_i.
  const FairShareAllocation alloc;
  const double base = 0.2;
  const auto at = [&](double r1) {
    return alloc.congestion({base, r1, 0.1})[0];
  };
  const double below = at(base - 1e-8);
  const double above = at(base + 1e-8);
  EXPECT_NEAR(below, above, 1e-6);
}

TEST(FairShare, SecondDerivativePositive) {
  const FairShareAllocation alloc;
  const std::vector<double> rates{0.1, 0.2, 0.3};
  for (std::size_t i = 0; i < rates.size(); ++i) {
    EXPECT_GT(alloc.second_partial(i, i, rates), 0.0);
  }
}

TEST(FairShareDecomposition, MatchesTable1Structure) {
  // The paper's Table 1 with 4 users.
  const std::vector<double> rates{0.05, 0.1, 0.15, 0.2};
  const auto d = fair_share_decomposition(rates);
  // Level widths: r1, r2-r1, r3-r2, r4-r3.
  EXPECT_NEAR(d.level_width[0], 0.05, 1e-12);
  EXPECT_NEAR(d.level_width[1], 0.05, 1e-12);
  EXPECT_NEAR(d.level_width[2], 0.05, 1e-12);
  EXPECT_NEAR(d.level_width[3], 0.05, 1e-12);
  // User 0 (smallest) only in level 0; user 3 in all levels.
  EXPECT_NEAR(d.slice_rate[0][0], 0.05, 1e-12);
  EXPECT_DOUBLE_EQ(d.slice_rate[0][1], 0.0);
  for (int l = 0; l < 4; ++l) EXPECT_NEAR(d.slice_rate[3][l], 0.05, 1e-12);
  // Per-user slice rates sum to the user's rate.
  for (std::size_t u = 0; u < 4; ++u) {
    double sum = 0.0;
    for (std::size_t l = 0; l < 4; ++l) sum += d.slice_rate[u][l];
    EXPECT_NEAR(sum, rates[u], 1e-12);
  }
  // Serial loads are the S_k.
  EXPECT_NEAR(d.serial_load[0], 4 * 0.05, 1e-12);
  EXPECT_NEAR(d.serial_load[3], 0.05 + 0.1 + 0.15 + 0.2, 1e-12);
}

TEST(FairShareDecomposition, LevelRatesSumToTotal) {
  numerics::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> rates(5);
    double total = 0.0;
    for (auto& r : rates) {
      r = rng.uniform(0.01, 0.2);
      total += r;
    }
    const auto d = fair_share_decomposition(rates);
    double level_total = 0.0;
    for (const double lr : d.level_rate) level_total += lr;
    EXPECT_NEAR(level_total, total, 1e-12);
  }
}

TEST(FairShare, MonotoneInOwnRate) {
  const FairShareAllocation alloc;
  double prev = 0.0;
  for (double r = 0.05; r < 0.3; r += 0.05) {
    const auto c = alloc.congestion({r, 0.3, 0.2});
    EXPECT_GT(c[0], prev);
    prev = c[0];
  }
}

}  // namespace
}  // namespace gw::core
