// E-FAIR — Theorem 3: unilateral envy-freeness.
//
// Measures the worst envy of a best-responding user under FIFO, FS, the
// smallest-rate-first priority foil, and mixtures — at Nash and far from
// equilibrium (random opponents, including floods).
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/envy.hpp"
#include "core/fair_share.hpp"
#include "core/mixture.hpp"
#include "core/nash.hpp"
#include "core/priority_alloc.hpp"
#include "core/proportional.hpp"
#include "numerics/rng.hpp"

static int run() {
  using namespace gw;
  using core::make_linear;
  bench::banner(
      "E-FAIR fairness", "Theorem 3; Section 4.1.2",
      "Fair Share is unilaterally envy-free: a user who best-responds "
      "never prefers another user's allocation, no matter what the others "
      "do. FIFO (and every mixture with it) produces envy.");

  struct Case {
    const char* label;
    std::shared_ptr<const core::AllocationFunction> alloc;
  };
  const std::vector<Case> cases{
      {"FIFO", std::make_shared<core::ProportionalAllocation>()},
      {"Mixture(0.5)", std::make_shared<core::MixtureAllocation>(0.5)},
      {"Mixture(0.1)", std::make_shared<core::MixtureAllocation>(0.1)},
      {"SRF-priority", std::make_shared<core::SmallestRateFirstAllocation>()},
      {"FairShare", std::make_shared<core::FairShareAllocation>()},
  };

  // Out-of-equilibrium sweep: user 0 best-responds against 400 random
  // opponent profiles; record worst envy.
  std::printf("\nWorst envy of a best-responding user over 400 random "
              "opponent profiles (N = 4, heterogeneous gammas):\n\n");
  bench::table_header({"discipline", "worst envy", "envious cases",
                       "at Nash"});
  const core::UtilityProfile profile{
      make_linear(1.0, 0.2), make_linear(1.0, 0.35), make_linear(1.0, 0.5),
      make_linear(1.0, 0.65)};
  double fs_worst = 0.0, fifo_worst = 0.0;
  for (const auto& test_case : cases) {
    numerics::Rng rng(911);
    double worst = 0.0;
    int envious = 0;
    for (int trial = 0; trial < 400; ++trial) {
      std::vector<double> rates(4);
      for (auto& r : rates) {
        r = rng.bernoulli(0.15) ? rng.uniform(0.5, 2.0)   // occasional flood
                                : rng.uniform(0.01, 0.4);
      }
      const std::size_t probe = trial % 4;
      const auto result =
          core::unilateral_envy(*test_case.alloc, profile, rates, probe);
      if (result.max_envy > 1e-6) ++envious;
      worst = std::max(worst, result.max_envy);
    }
    // Envy at the discipline's own Nash point.
    const auto nash = core::solve_nash(*test_case.alloc, profile,
                                       std::vector<double>(4, 0.08));
    const auto queues = test_case.alloc->congestion(nash.rates);
    const double nash_envy = core::max_envy(profile, nash.rates, queues);
    bench::table_row({test_case.label, bench::fmt(worst, 5),
                      std::to_string(envious) + "/400",
                      bench::fmt(nash_envy, 5)});
    if (std::string(test_case.label) == "FairShare") fs_worst = worst;
    if (std::string(test_case.label) == "FIFO") fifo_worst = worst;
  }

  bench::verdict(fs_worst <= 1e-6,
                 "FS: zero envy after best response, everywhere sampled");
  bench::verdict(fifo_worst > 1e-3, "FIFO: envy exists out of equilibrium");
  return bench::failures();
}

GW_BENCH_MAIN(run)
