#include "core/proportional.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "numerics/differentiate.hpp"
#include "queueing/feasibility.hpp"
#include "queueing/mm1.hpp"

namespace gw::core {
namespace {

TEST(Proportional, MatchesClosedForm) {
  const ProportionalAllocation alloc;
  const std::vector<double> rates{0.1, 0.2, 0.3};
  const auto congestion = alloc.congestion(rates);
  const double inv = 1.0 / 0.4;
  EXPECT_NEAR(congestion[0], 0.1 * inv, 1e-12);
  EXPECT_NEAR(congestion[1], 0.2 * inv, 1e-12);
  EXPECT_NEAR(congestion[2], 0.3 * inv, 1e-12);
}

TEST(Proportional, SatisfiesFeasibilityConstraints) {
  const ProportionalAllocation alloc;
  const std::vector<double> rates{0.15, 0.25, 0.05, 0.35};
  const auto feasibility =
      queueing::check_feasibility(rates, alloc.congestion(rates));
  EXPECT_TRUE(feasibility.feasible());
  EXPECT_TRUE(feasibility.interior());
}

TEST(Proportional, EqualCongestionPerUnitRate) {
  const ProportionalAllocation alloc;
  const std::vector<double> rates{0.1, 0.4, 0.2};
  const auto congestion = alloc.congestion(rates);
  const double ratio = congestion[0] / rates[0];
  EXPECT_NEAR(congestion[1] / rates[1], ratio, 1e-12);
  EXPECT_NEAR(congestion[2] / rates[2], ratio, 1e-12);
}

TEST(Proportional, EveryoneSaturatesTogether) {
  const ProportionalAllocation alloc;
  const auto congestion = alloc.congestion({0.6, 0.7});
  EXPECT_TRUE(std::isinf(congestion[0]));
  EXPECT_TRUE(std::isinf(congestion[1]));
}

TEST(Proportional, ZeroRateUserHasZeroQueue) {
  const ProportionalAllocation alloc;
  const auto congestion = alloc.congestion({0.0, 0.5});
  EXPECT_DOUBLE_EQ(congestion[0], 0.0);
  const auto saturated = alloc.congestion({0.0, 1.5});
  EXPECT_DOUBLE_EQ(saturated[0], 0.0);  // silent user stays clean even then
}

TEST(Proportional, AnalyticPartialsMatchNumeric) {
  const ProportionalAllocation alloc;
  const std::vector<double> rates{0.12, 0.31, 0.22};
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      const double numeric = numerics::partial(
          [&](const std::vector<double>& r) {
            return alloc.congestion(r)[i];
          },
          rates, j);
      EXPECT_NEAR(alloc.partial(i, j, rates), numeric, 1e-6)
          << "partial(" << i << "," << j << ")";
    }
  }
}

TEST(Proportional, AnalyticSecondPartialsMatchNumeric) {
  const ProportionalAllocation alloc;
  const std::vector<double> rates{0.2, 0.25};
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      const double numeric = numerics::mixed_partial(
          [&](const std::vector<double>& r) {
            return alloc.congestion(r)[i];
          },
          rates, i, j);
      EXPECT_NEAR(alloc.second_partial(i, j, rates), numeric, 1e-3)
          << "second_partial(" << i << "," << j << ")";
    }
  }
}

TEST(Proportional, CrossDerivativeAlwaysPositive) {
  // The defining vice of FIFO: my congestion grows when YOU send more.
  const ProportionalAllocation alloc;
  const std::vector<double> rates{0.3, 0.1};
  EXPECT_GT(alloc.partial(0, 1, rates), 0.0);
  EXPECT_GT(alloc.partial(1, 0, rates), 0.0);
}

TEST(Proportional, RejectsNegativeRates) {
  const ProportionalAllocation alloc;
  EXPECT_THROW((void)alloc.congestion({-0.1, 0.2}), std::invalid_argument);
  EXPECT_THROW((void)alloc.congestion({}), std::invalid_argument);
}

}  // namespace
}  // namespace gw::core
