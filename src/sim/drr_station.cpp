#include "sim/drr_station.hpp"

#include <stdexcept>

namespace gw::sim {

DrrStation::DrrStation(Simulator& sim, QueueTracker& tracker,
                       std::size_t n_users, double quantum)
    : Station(sim, tracker),
      queues_(n_users),
      deficit_(n_users, 0.0),
      quantum_(quantum) {
  if (n_users == 0 || quantum <= 0.0) {
    throw std::invalid_argument("DrrStation: bad arguments");
  }
}

void DrrStation::arrive(Packet packet) {
  note_arrival(packet);
  packet.remaining = packet.service_demand;
  queues_.at(packet.user).push_back(std::move(packet));
  if (!busy_) serve_next();
}

void DrrStation::serve_next() {
  bool any_backlog = false;
  for (const auto& queue : queues_) {
    if (!queue.empty()) {
      any_backlog = true;
      break;
    }
  }
  if (!any_backlog) {
    busy_ = false;
    for (auto& deficit : deficit_) deficit = 0.0;  // classic DRR reset
    return;
  }
  // Visit flows round-robin; each visit to a backlogged flow grows its
  // deficit by one quantum until some head packet fits.
  while (true) {
    auto& queue = queues_[cursor_];
    if (!queue.empty()) {
      deficit_[cursor_] += quantum_;
      if (queue.front().service_demand <= deficit_[cursor_]) {
        in_service_ = queue.front();
        queue.pop_front();
        deficit_[cursor_] -= in_service_.service_demand;
        if (queue.empty()) deficit_[cursor_] = 0.0;
        busy_ = true;
        completion_ =
            sim_.schedule_in(in_service_.service_demand, [this] { complete(); });
        return;
      }
    }
    cursor_ = (cursor_ + 1) % queues_.size();
  }
}

void DrrStation::complete() {
  busy_ = false;
  note_departure(in_service_);
  cursor_ = (cursor_ + 1) % queues_.size();
  serve_next();
}

}  // namespace gw::sim
