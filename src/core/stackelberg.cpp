#include "core/stackelberg.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

namespace gw::core {

namespace {

/// Everything about the leader/follower split that does not depend on the
/// committed rate, built once per solve and reused across the whole grid
/// search (the follower partition, reduced profile, staging buffers and an
/// evaluation workspace for the leader's congestion lookups).
struct LeaderContext {
  std::vector<double> frozen;
  std::vector<std::size_t> free_indices;
  UtilityProfile follower_profile;
  std::vector<double> full;
  EvalWorkspace ws;

  LeaderContext(const UtilityProfile& profile, std::size_t leader) {
    const std::size_t n = profile.size();
    frozen.assign(n, 0.0);
    full.assign(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == leader) continue;
      free_indices.push_back(j);
      follower_profile.push_back(profile[j]);
    }
  }
};

/// Leader payoff for a committed rate: followers re-equilibrate, leader is
/// evaluated at the resulting full profile. Follower solve is warm-started
/// from `follower_warm` (updated on success).
double leader_payoff(const std::shared_ptr<const AllocationFunction>& alloc,
                     const UtilityProfile& profile, std::size_t leader,
                     double leader_rate, std::vector<double>& follower_warm,
                     LeaderContext& ctx, const StackelbergOptions& options) {
  obs::default_registry().counter("core.stackelberg.payoff_evals").inc();
  ctx.frozen[leader] = leader_rate;
  const SubsystemAllocation subsystem(alloc, ctx.frozen, ctx.free_indices);
  const auto solved = solve_nash(subsystem, ctx.follower_profile,
                                 follower_warm, options.follower);
  if (solved.converged) follower_warm = solved.rates;

  ctx.full[leader] = leader_rate;
  for (std::size_t k = 0; k < ctx.free_indices.size(); ++k) {
    ctx.full[ctx.free_indices[k]] = solved.rates[k];
  }
  const double congestion =
      alloc->congestion_of_into(leader, ctx.full, ctx.ws);
  return profile[leader]->value(leader_rate, congestion);
}

}  // namespace

StackelbergResult solve_stackelberg(
    std::shared_ptr<const AllocationFunction> alloc,
    const UtilityProfile& profile, std::size_t leader,
    const StackelbergOptions& options) {
  const std::size_t n = profile.size();
  if (leader >= n || n < 2) {
    throw std::invalid_argument("solve_stackelberg: bad leader index");
  }

  auto& registry = obs::default_registry();
  static auto& solve_seconds =
      registry.histogram("core.stackelberg.solve_seconds", 0.0, 10.0, 128);
  const obs::ScopedTimer timer(solve_seconds);
  registry.counter("core.stackelberg.solves").inc();

  StackelbergResult result;

  // Plain Nash baseline (uniform small start).
  std::vector<double> start(n, 0.5 / static_cast<double>(n));
  const auto nash = solve_nash(*alloc, profile, start, options.follower);
  result.nash_rates = nash.rates;
  {
    const double c = alloc->congestion_of(leader, nash.rates);
    result.nash_leader_utility = profile[leader]->value(nash.rates[leader], c);
  }

  // Grid search over commitments, with grid-shrink refinement. The
  // leader's own Nash rate is always a candidate, so leading can never
  // look worse than following (up to follower-solve noise).
  double lo = options.r_min, hi = options.r_max;
  double best_rate = nash.rates[leader];
  std::vector<double> follower_warm(n - 1, 0.5 / static_cast<double>(n));
  LeaderContext ctx(profile, leader);
  double best_value = leader_payoff(alloc, profile, leader,
                                    nash.rates[leader], follower_warm, ctx,
                                    options);

  for (int round = 0; round <= options.refine_iterations; ++round) {
    const int grid = options.leader_grid;
    for (int k = 0; k < grid; ++k) {
      const double rate =
          lo + (hi - lo) * static_cast<double>(k) / (grid - 1);
      const double value = leader_payoff(alloc, profile, leader, rate,
                                         follower_warm, ctx, options);
      if (value > best_value) {
        best_value = value;
        best_rate = rate;
      }
    }
    registry.counter("core.stackelberg.refine_rounds").inc();
    if (auto* trace = obs::active_trace()) {
      trace->instant("core", "stackelberg refine",
                     static_cast<double>(obs::wall_now_us()), "best_rate",
                     best_rate);
    }
    const double width = (hi - lo) / (grid - 1);
    lo = std::max(options.r_min, best_rate - width);
    hi = std::min(options.r_max, best_rate + width);
    if (!(lo < hi)) break;
  }

  // Recompute the full profile at the winning commitment.
  {
    ctx.frozen[leader] = best_rate;
    const SubsystemAllocation subsystem(alloc, ctx.frozen, ctx.free_indices);
    const auto solved = solve_nash(subsystem, ctx.follower_profile,
                                   follower_warm, options.follower);
    result.rates.assign(n, 0.0);
    result.rates[leader] = best_rate;
    for (std::size_t k = 0; k < ctx.free_indices.size(); ++k) {
      result.rates[ctx.free_indices[k]] = solved.rates[k];
    }
  }
  result.leader_rate = best_rate;
  result.leader_utility = best_value;
  result.solved = std::isfinite(best_value);
  return result;
}

}  // namespace gw::core
