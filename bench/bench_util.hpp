// Shared harness for the experiment binaries: console formatting plus
// machine-readable telemetry.
//
// Every banner/table/verdict printed to the console is also recorded, and
// when the binary runs with `--json <path>` the whole transcript — every
// experiment, table, verdict, the run manifest (git sha, compiler, host),
// per-rep wall-time stats, per-rep hardware counters and work-meter
// totals (with derived normalized costs like ns/user-evaluated), and the
// obs::default_registry() metrics snapshot — is serialized to a
// structured bench_results.json (schema "gw.bench.v3"). A typical bench:
//
//   static int run() {
//     gw::bench::banner("E-FOO", "Theorem 1", "claim...");
//     ...tables and verdicts...
//     return gw::bench::failures();
//   }
//   GW_BENCH_MAIN(run)
//
// GW_BENCH_MAIN parses the shared flags, runs the body --warmup times
// untimed (discarded reps that prime caches and the allocator), then
// reruns it --repeat times (with Registry::reset() between reps, timing
// each rep), and writes the telemetry once at the end. Flags:
// --json <path>, --repeat N, --warmup N, --label S, --threads N,
// --trace-solves <path> (per-iteration solver journal, gw.solvetrace.v1),
// --counters auto|off|require (hardware perf counters per measured rep),
// --help;
// unknown --flags and negative counts are usage errors. Results are
// seed-deterministic regardless of --threads (parallel loops use
// gw::exec's static partitioning and merge in index order); the thread
// count is stamped into the manifest so suite comparisons stay
// like-for-like.
#pragma once

#include <string>
#include <vector>

namespace gw::bench {

/// Parsed shared flags; see options().
struct Options {
  std::string json_path;  ///< --json <path>; empty = no telemetry file
  int repeat = 1;         ///< --repeat N; measured reps of the body
  int warmup = 0;         ///< --warmup N; discarded reps run before them
  std::string label;      ///< --label <s>; stamped into the run manifest
  int threads = 1;        ///< --threads N; worker threads for sweep loops
                          ///< (0 = all cores); recorded in the manifest
  std::string trace_solves;  ///< --trace-solves <path>: install a solver
                             ///< flight journal for the measured reps and
                             ///< write it as gw.solvetrace.v1 JSONL;
                             ///< escalation dumps land in <path>.dumps/
  std::string counters = "auto";  ///< --counters auto|off|require: perf
                                  ///< counters per measured rep. auto
                                  ///< degrades silently (availability is
                                  ///< stamped in the manifest), require
                                  ///< exits 2 with a diagnostic when the
                                  ///< hardware group cannot open, off
                                  ///< skips perf_event_open entirely
};

/// Parses the shared bench flags. `--help`/`-h` prints usage and exits 0;
/// a malformed or unknown `--`-prefixed flag prints usage and exits 2.
/// Arguments starting with `passthrough_prefix` (when non-empty) are
/// collected for the caller instead (see passthrough_args()); bench_micro
/// uses this to forward --benchmark_* to google-benchmark. Idempotent:
/// calling again re-parses into the same state.
void parse_args(int argc, char** argv,
                const std::string& passthrough_prefix = std::string());

/// The flags recognized by the last parse_args() call.
[[nodiscard]] const Options& options();

/// Worker threads for parallel sweep loops: options().threads, with 0
/// resolved to the machine's core count.
[[nodiscard]] std::size_t thread_count();

/// Arguments diverted by parse_args()'s passthrough_prefix, in order.
[[nodiscard]] const std::vector<std::string>& passthrough_args();

/// Prints the experiment banner (id, paper reference, claim under test)
/// and opens a new experiment record in the telemetry transcript.
void banner(const std::string& experiment_id, const std::string& paper_ref,
            const std::string& claim);

/// Prints a table header / row with fixed-width columns. A header starts a
/// new recorded table; rows append to the most recent one.
void table_header(const std::vector<std::string>& columns);
void table_row(const std::vector<std::string>& cells);

/// Formats a double compactly ("0.1235", "inf").
[[nodiscard]] std::string fmt(double value, int precision = 4);

/// Prints a PASS/FAIL verdict line for the qualitative shape check.
void verdict(bool pass, const std::string& description);

/// Returns the number of verdicts that failed so far (process exit code);
/// bench bodies `return` this.
[[nodiscard]] int failures();

/// Writes the JSON telemetry when --json was given, then returns
/// failures(). Called by run_repeated() after the last rep; only benches
/// with a hand-written main call it directly.
[[nodiscard]] int finish();

/// Body of one bench: runs the experiments, returns failures().
using BodyFn = int (*)();

/// Full bench lifecycle: parse_args(), run `body` options().warmup times
/// untimed (metrics and transcript discarded after each; verdict failures
/// still count, so a warm-up failure fails the process), then
/// options().repeat measured times — resetting obs::default_registry()
/// between reps and recording each rep's wall time — then finish(). The
/// transcript keeps the last measured rep's experiments; failures
/// accumulate across all reps.
int run_repeated(int argc, char** argv, BodyFn body,
                 const std::string& passthrough_prefix = std::string());

}  // namespace gw::bench

/// Defines main() for a bench whose body is `int body_fn()`.
#define GW_BENCH_MAIN(body_fn)                          \
  int main(int argc, char** argv) {                     \
    return gw::bench::run_repeated(argc, argv, body_fn); \
  }
