#include "bench_util.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace gw::bench {

namespace {

constexpr int kColumnWidth = 14;
constexpr const char* kSchema = "gw.bench.v1";

struct Table {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
};

struct VerdictRecord {
  bool pass;
  std::string description;
};

struct Experiment {
  std::string id;
  std::string paper_ref;
  std::string claim;
  std::vector<Table> tables;
  std::vector<VerdictRecord> verdicts;
};

int g_failures = 0;
std::string g_json_path;
std::string g_binary;
std::vector<Experiment> g_experiments;

Experiment& current_experiment() {
  if (g_experiments.empty()) {
    // Tables/verdicts before any banner land in an anonymous experiment.
    g_experiments.push_back({});
  }
  return g_experiments.back();
}

}  // namespace

void parse_args(int argc, char** argv) {
  if (argc > 0) g_binary = argv[0];
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --json requires a path\n", g_binary.c_str());
        std::exit(2);
      }
      g_json_path = argv[++i];
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      g_json_path = arg + 7;
    }
    if (std::strncmp(arg, "--json", 6) == 0 && g_json_path.empty()) {
      std::fprintf(stderr, "%s: --json requires a path\n", g_binary.c_str());
      std::exit(2);
    }
  }
}

void banner(const std::string& experiment_id, const std::string& paper_ref,
            const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s  [%s]\n", experiment_id.c_str(), paper_ref.c_str());
  std::printf("%s\n", claim.c_str());
  std::printf("================================================================\n");
  g_experiments.push_back({experiment_id, paper_ref, claim, {}, {}});
}

void table_header(const std::vector<std::string>& columns) {
  for (const auto& column : columns) {
    std::printf("%-*s", kColumnWidth, column.c_str());
  }
  std::printf("\n");
  for (std::size_t i = 0; i < columns.size() * kColumnWidth; ++i) {
    std::printf("-");
  }
  std::printf("\n");
  current_experiment().tables.push_back({columns, {}});
}

void table_row(const std::vector<std::string>& cells) {
  for (const auto& cell : cells) {
    std::printf("%-*s", kColumnWidth, cell.c_str());
  }
  std::printf("\n");
  auto& experiment = current_experiment();
  if (experiment.tables.empty()) experiment.tables.push_back({});
  experiment.tables.back().rows.push_back(cells);
}

std::string fmt(double value, int precision) {
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  if (std::isnan(value)) return "nan";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

void verdict(bool pass, const std::string& description) {
  if (!pass) ++g_failures;
  std::printf("  [%s] %s\n", pass ? "PASS" : "FAIL", description.c_str());
  current_experiment().verdicts.push_back({pass, description});
}

int failures() { return g_failures; }

int finish() {
  if (g_json_path.empty()) return g_failures;

  obs::JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value(kSchema);
  w.key("binary");
  w.value(g_binary);
  w.key("experiments");
  w.begin_array();
  for (const auto& experiment : g_experiments) {
    w.begin_object();
    w.key("id");
    w.value(experiment.id);
    w.key("paper_ref");
    w.value(experiment.paper_ref);
    w.key("claim");
    w.value(experiment.claim);
    w.key("tables");
    w.begin_array();
    for (const auto& table : experiment.tables) {
      w.begin_object();
      w.key("columns");
      w.begin_array();
      for (const auto& column : table.columns) w.value(column);
      w.end_array();
      w.key("rows");
      w.begin_array();
      for (const auto& row : table.rows) {
        w.begin_array();
        for (const auto& cell : row) w.value(cell);
        w.end_array();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.key("verdicts");
    w.begin_array();
    for (const auto& record : experiment.verdicts) {
      w.begin_object();
      w.key("pass");
      w.value(record.pass);
      w.key("description");
      w.value(record.description);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("failures");
  w.value(std::int64_t{g_failures});
  w.key("metrics");
  w.raw(obs::default_registry().to_json());
  w.end_object();

  const std::string document = w.take();
  std::FILE* f = std::fopen(g_json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", g_json_path.c_str());
    return g_failures == 0 ? 1 : g_failures;
  }
  std::fwrite(document.data(), 1, document.size(), f);
  std::fclose(f);
  std::printf("\n  telemetry written to %s\n", g_json_path.c_str());
  return g_failures;
}

}  // namespace gw::bench
