// Networks of switches (paper Section 5.4).
//
// Following the paper's suggested approximation, each switch is modeled as
// an independent M/M/1 fed by Poisson streams at the users' input rates
// (Kleinrock independence), and a user's total congestion is the sum of
// her per-switch congestions: c_i = sum_alpha c_i^alpha. The composite map
// r -> c is itself an allocation-function-like object, so all the
// game-theoretic machinery (Nash solvers, envy, protection scans) applies
// unchanged. Note: with heterogeneous routes the composite is not
// symmetric across users — the paper points out that fairness then needs
// a different definition; efficiency, uniqueness and convergence questions
// remain meaningful and are what the network bench exercises.
#pragma once

#include <memory>
#include <vector>

#include "core/allocation.hpp"

namespace gw::net {

/// A user's route: the set of switches her stream crosses.
using Route = std::vector<std::size_t>;

class NetworkAllocation final : public core::AllocationFunction {
 public:
  /// `switch_allocations[a]` is the discipline at switch a; `routes[i]`
  /// lists the switches crossed by user i (duplicates ignored).
  NetworkAllocation(
      std::vector<std::shared_ptr<const core::AllocationFunction>>
          switch_allocations,
      std::vector<Route> routes);

  /// Heterogeneous-capacity variant: switch a serves at rate
  /// `capacities[a]` (> 0). An M/M/1 at service rate mu with arrivals
  /// lambda has the occupancy of a unit-rate switch at load lambda / mu,
  /// so each switch evaluates its allocation at the scaled rates.
  NetworkAllocation(
      std::vector<std::shared_ptr<const core::AllocationFunction>>
          switch_allocations,
      std::vector<Route> routes, std::vector<double> capacities);

  [[nodiscard]] std::string name() const override;
  void congestion_into(std::span<const double> rates, std::span<double> out,
                       core::EvalWorkspace& ws) const override;
  [[nodiscard]] double congestion_of_into(
      std::size_t i, std::span<const double> rates,
      core::EvalWorkspace& ws) const override;
  [[nodiscard]] double partial(std::size_t i, std::size_t j,
                               const std::vector<double>& rates) const override;
  [[nodiscard]] double second_partial(
      std::size_t i, std::size_t j,
      const std::vector<double>& rates) const override;

  [[nodiscard]] std::size_t switches() const noexcept {
    return switch_allocations_.size();
  }
  [[nodiscard]] std::size_t users() const noexcept { return routes_.size(); }
  /// Users crossing switch `a` (ascending user ids).
  [[nodiscard]] const std::vector<std::size_t>& users_at(std::size_t a) const {
    return users_at_switch_.at(a);
  }

 private:
  [[nodiscard]] std::vector<double> local_rates(
      std::size_t a, const std::vector<double>& rates) const;
  /// Allocation-free variant: gathers (and capacity-scales) the rates of
  /// the users crossing switch `a` into `local`.
  void local_rates_into(std::size_t a, std::span<const double> rates,
                        std::span<double> local) const;

  std::vector<std::shared_ptr<const core::AllocationFunction>>
      switch_allocations_;
  std::vector<Route> routes_;
  std::vector<double> capacities_;
  std::vector<std::vector<std::size_t>> users_at_switch_;
  /// local_index_[a][i] = position of user i among users_at_switch_[a]
  /// (or npos when i does not cross a).
  std::vector<std::vector<std::size_t>> local_index_;
};

/// A tandem of `n_switches` identical-discipline switches. Route helpers:
/// user i crosses switches [first_i, last_i].
[[nodiscard]] std::shared_ptr<NetworkAllocation> make_tandem(
    const std::shared_ptr<const core::AllocationFunction>& discipline,
    std::size_t n_switches, const std::vector<std::pair<std::size_t, std::size_t>>&
        user_spans);

}  // namespace gw::net
