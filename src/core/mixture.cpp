#include "core/mixture.hpp"

#include <cmath>
#include <stdexcept>

namespace gw::core {

MixtureAllocation::MixtureAllocation(double theta) : theta_(theta) {
  if (!(theta >= 0.0 && theta <= 1.0)) {
    throw std::invalid_argument("MixtureAllocation: theta must be in [0,1]");
  }
}

std::string MixtureAllocation::name() const {
  return "Mixture(theta=" + std::to_string(theta_) + ")";
}

void MixtureAllocation::congestion_into(std::span<const double> rates,
                                        std::span<double> out,
                                        EvalWorkspace& ws) const {
  // Degenerate thetas delegate outright: inf * 0 must not produce NaN.
  if (theta_ == 0.0) {
    fair_share_.congestion_into(rates, out, ws.child());
    return;
  }
  if (theta_ == 1.0) {
    proportional_.congestion_into(rates, out, ws.child());
    return;
  }
  const std::size_t n = rates.size();
  ws.ensure(n);
  const std::span<double> fs = ws.a(n);
  fair_share_.congestion_into(rates, fs, ws.child());
  proportional_.congestion_into(rates, out, ws.child());
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = theta_ * out[i] + (1.0 - theta_) * fs[i];
  }
}

double MixtureAllocation::congestion_of_into(std::size_t i,
                                             std::span<const double> rates,
                                             EvalWorkspace& ws) const {
  if (theta_ == 0.0) return fair_share_.congestion_of_into(i, rates, ws.child());
  if (theta_ == 1.0) {
    return proportional_.congestion_of_into(i, rates, ws.child());
  }
  return theta_ * proportional_.congestion_of_into(i, rates, ws.child()) +
         (1.0 - theta_) * fair_share_.congestion_of_into(i, rates, ws.child());
}

double MixtureAllocation::partial(std::size_t i, std::size_t j,
                                  const std::vector<double>& rates) const {
  if (theta_ == 0.0) return fair_share_.partial(i, j, rates);
  if (theta_ == 1.0) return proportional_.partial(i, j, rates);
  return theta_ * proportional_.partial(i, j, rates) +
         (1.0 - theta_) * fair_share_.partial(i, j, rates);
}

double MixtureAllocation::second_partial(std::size_t i, std::size_t j,
                                         const std::vector<double>& rates) const {
  if (theta_ == 0.0) return fair_share_.second_partial(i, j, rates);
  if (theta_ == 1.0) return proportional_.second_partial(i, j, rates);
  return theta_ * proportional_.second_partial(i, j, rates) +
         (1.0 - theta_) * fair_share_.second_partial(i, j, rates);
}

}  // namespace gw::core
