// Lemma 5 (paper appendix), constructively.
//
// For any allocation function in MAC and any interior point r*, there is
// an admissible utility profile making r* a Nash equilibrium: take the
// exponential family
//   U_i = -(alpha^2/beta) e^{-(beta/alpha)(r - r*_i)}
//         -(gamma^2/nu)  e^{ (nu/gamma)(c - c*_i)}
// with alpha_i/gamma_i = dC_i/dr_i(r*) (so the Nash FDC holds at r*) and
// beta, nu large enough that r*_i is the global best response.
//
// This is the paper's workhorse witness — the proofs of Theorems 1, 3 and
// 5 all lean on it — and it is equally useful as a test generator: plant
// an equilibrium anywhere, then check the solvers find it.
#pragma once

#include "core/allocation.hpp"
#include "core/utility.hpp"

namespace gw::core {

struct PlantOptions {
  /// Curvature scales: larger values sharpen the utilities around the
  /// target, enlarging the region where the FDC point is a global best
  /// response. The defaults suffice for the disciplines in this library
  /// at interior points; verify_planted() checks.
  double beta = 60.0;
  double nu = 60.0;
  /// gamma_i is fixed to 1; alpha_i = dC_i/dr_i(target).
};

/// Builds the Lemma 5 profile for `target` (interior: all rates positive,
/// congestion finite). Throws std::invalid_argument otherwise.
[[nodiscard]] UtilityProfile plant_nash_profile(
    const AllocationFunction& alloc, const std::vector<double>& target,
    const PlantOptions& options = {});

/// Convenience: plant and verify by direct best-response checks. Returns
/// true when `target` is a Nash equilibrium of the planted profile.
[[nodiscard]] bool verify_planted(const AllocationFunction& alloc,
                                  const std::vector<double>& target,
                                  const PlantOptions& options = {},
                                  double utility_slack = 1e-7);

}  // namespace gw::core
