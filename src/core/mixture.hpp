// Convex mixtures theta * Proportional + (1 - theta) * FairShare.
//
// For fixed r the feasibility constraints are linear in c, so any convex
// combination of feasible interior allocations is feasible and interior.
// The mixture family interpolates between the paper's two poles and is the
// searchlight for the "FS is the ONLY MAC function with property X"
// uniqueness claims: every theta in (0, 1] must (and in the experiments
// does) break each property.
#pragma once

#include "core/allocation.hpp"
#include "core/fair_share.hpp"
#include "core/proportional.hpp"

namespace gw::core {

class MixtureAllocation final : public AllocationFunction {
 public:
  /// theta in [0, 1]: 1 = pure proportional, 0 = pure Fair Share.
  explicit MixtureAllocation(double theta);

  [[nodiscard]] std::string name() const override;
  void congestion_into(std::span<const double> rates, std::span<double> out,
                       EvalWorkspace& ws) const override;
  [[nodiscard]] double congestion_of_into(std::size_t i,
                                          std::span<const double> rates,
                                          EvalWorkspace& ws) const override;
  [[nodiscard]] double partial(std::size_t i, std::size_t j,
                               const std::vector<double>& rates) const override;
  [[nodiscard]] double second_partial(
      std::size_t i, std::size_t j,
      const std::vector<double>& rates) const override;

  [[nodiscard]] double theta() const noexcept { return theta_; }

 private:
  double theta_;
  ProportionalAllocation proportional_;
  FairShareAllocation fair_share_;
};

}  // namespace gw::core
