#include "core/utility.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "numerics/differentiate.hpp"

namespace gw::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

double Utility::du_dr(double r, double c) const {
  return numerics::derivative([&](double x) { return value(x, c); }, r);
}

double Utility::du_dc(double r, double c) const {
  return numerics::derivative([&](double x) { return value(r, x); }, c);
}

double Utility::d2u_dr2(double r, double c) const {
  return numerics::second_derivative([&](double x) { return value(x, c); }, r);
}

double Utility::d2u_dc2(double r, double c) const {
  return numerics::second_derivative([&](double x) { return value(r, x); }, c);
}

double Utility::d2u_drdc(double r, double c) const {
  return numerics::mixed_partial(
      [&](const std::vector<double>& x) { return value(x[0], x[1]); },
      {r, c}, 0, 1);
}

double Utility::marginal_ratio(double r, double c) const {
  return du_dr(r, c) / du_dc(r, c);
}

// ---------------------------------------------------------------- Linear

LinearUtility::LinearUtility(double a, double gamma) : a_(a), gamma_(gamma) {
  if (a <= 0.0 || gamma <= 0.0) {
    throw std::invalid_argument("LinearUtility: a, gamma must be > 0");
  }
}

std::string LinearUtility::name() const {
  return "Linear(a=" + std::to_string(a_) + ",gamma=" + std::to_string(gamma_) +
         ")";
}

double LinearUtility::value(double r, double c) const {
  if (std::isinf(c)) return -kInf;
  return a_ * r - gamma_ * c;
}

double LinearUtility::du_dr(double, double) const { return a_; }
double LinearUtility::du_dc(double, double) const { return -gamma_; }

// ----------------------------------------------------------- Exponential

ExponentialUtility::ExponentialUtility(double alpha, double beta, double gamma,
                                       double nu, double r0, double c0)
    : alpha_(alpha), beta_(beta), gamma_(gamma), nu_(nu), r0_(r0), c0_(c0) {
  if (alpha <= 0.0 || beta <= 0.0 || gamma <= 0.0 || nu <= 0.0) {
    throw std::invalid_argument(
        "ExponentialUtility: parameters must be > 0");
  }
}

std::string ExponentialUtility::name() const {
  return "Exponential(a/g=" + std::to_string(alpha_ / gamma_) + ")";
}

double ExponentialUtility::value(double r, double c) const {
  if (std::isinf(c)) return -kInf;
  const double rate_term =
      -(alpha_ * alpha_ / beta_) * std::exp(-(beta_ / alpha_) * (r - r0_));
  const double congestion_term =
      -(gamma_ * gamma_ / nu_) * std::exp((nu_ / gamma_) * (c - c0_));
  return rate_term + congestion_term;
}

double ExponentialUtility::du_dr(double r, double) const {
  return alpha_ * std::exp(-(beta_ / alpha_) * (r - r0_));
}

double ExponentialUtility::du_dc(double, double c) const {
  return -gamma_ * std::exp((nu_ / gamma_) * (c - c0_));
}

double ExponentialUtility::d2u_dr2(double r, double) const {
  return -beta_ * std::exp(-(beta_ / alpha_) * (r - r0_));
}

double ExponentialUtility::d2u_dc2(double, double c) const {
  return -nu_ * std::exp((nu_ / gamma_) * (c - c0_));
}

// ----------------------------------------------------------------- Power

PowerUtility::PowerUtility(double a, double pr, double gamma, double pc)
    : a_(a), pr_(pr), gamma_(gamma), pc_(pc) {
  if (a <= 0.0 || gamma <= 0.0) {
    throw std::invalid_argument("PowerUtility: a, gamma must be > 0");
  }
  if (pr <= 0.0 || pr > 1.0 || pc < 1.0) {
    throw std::invalid_argument(
        "PowerUtility: need pr in (0, 1] and pc >= 1 for concavity");
  }
}

std::string PowerUtility::name() const {
  return "Power(pr=" + std::to_string(pr_) + ",pc=" + std::to_string(pc_) + ")";
}

double PowerUtility::value(double r, double c) const {
  if (std::isinf(c)) return -kInf;
  return a_ * std::pow(r, pr_) - gamma_ * std::pow(c, pc_);
}

double PowerUtility::du_dr(double r, double) const {
  return a_ * pr_ * std::pow(r, pr_ - 1.0);
}

double PowerUtility::du_dc(double, double c) const {
  return -gamma_ * pc_ * std::pow(c, pc_ - 1.0);
}

double PowerUtility::d2u_dr2(double r, double) const {
  return a_ * pr_ * (pr_ - 1.0) * std::pow(r, pr_ - 2.0);
}

double PowerUtility::d2u_dc2(double, double c) const {
  return -gamma_ * pc_ * (pc_ - 1.0) * std::pow(c, pc_ - 2.0);
}

// ------------------------------------------------------------------- Log

LogUtility::LogUtility(double a, double gamma, double eps)
    : a_(a), gamma_(gamma), eps_(eps) {
  if (a <= 0.0 || gamma <= 0.0 || eps <= 0.0) {
    throw std::invalid_argument("LogUtility: parameters must be > 0");
  }
}

std::string LogUtility::name() const {
  return "Log(a=" + std::to_string(a_) + ",gamma=" + std::to_string(gamma_) +
         ")";
}

double LogUtility::value(double r, double c) const {
  if (std::isinf(c)) return -kInf;
  return a_ * std::log(r + eps_) - gamma_ * c;
}

double LogUtility::du_dr(double r, double) const { return a_ / (r + eps_); }
double LogUtility::du_dc(double, double) const { return -gamma_; }

// ----------------------------------------------------------- Transformed

TransformedUtility::TransformedUtility(UtilityPtr inner,
                                       std::function<double(double)> transform,
                                       std::string label)
    : inner_(std::move(inner)),
      transform_(std::move(transform)),
      label_(std::move(label)) {
  if (inner_ == nullptr || !transform_) {
    throw std::invalid_argument("TransformedUtility: null inner or transform");
  }
}

std::string TransformedUtility::name() const {
  return label_ + "(" + inner_->name() + ")";
}

double TransformedUtility::value(double r, double c) const {
  const double u = inner_->value(r, c);
  if (std::isinf(u) && u < 0.0) return -kInf;
  return transform_(u);
}

bool TransformedUtility::in_au() const {
  // Convexity is not preserved by arbitrary monotone transforms; results
  // depending only on the preference ordering must still be invariant.
  return false;
}

// ---------------------------------------------------------------- Makers

UtilityPtr make_linear(double a, double gamma) {
  return std::make_shared<LinearUtility>(a, gamma);
}

UtilityPtr make_exponential(double alpha, double beta, double gamma, double nu,
                            double r0, double c0) {
  return std::make_shared<ExponentialUtility>(alpha, beta, gamma, nu, r0, c0);
}

UtilityPtr make_power(double a, double pr, double gamma, double pc) {
  return std::make_shared<PowerUtility>(a, pr, gamma, pc);
}

UtilityPtr make_ftp(double delay_aversion) {
  return make_linear(1.0, delay_aversion);
}

UtilityPtr make_telnet(double delay_aversion) {
  return make_linear(1.0, delay_aversion);
}

UtilityProfile uniform_profile(const UtilityPtr& u, std::size_t n) {
  return UtilityProfile(n, u);
}

}  // namespace gw::core
