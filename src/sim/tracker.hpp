// Per-user queue-occupancy and delay measurement.
//
// Tracks the time integral of each user's number-in-system (which is the
// paper's congestion measure c_i), packet delays, and departure counts.
// Batch boundaries let the runner compute batch-means confidence
// intervals; reset() discards the warmup transient.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "numerics/stats.hpp"
#include "obs/trace.hpp"

namespace gw::sim {

class QueueTracker {
 public:
  explicit QueueTracker(std::size_t n_users);

  /// Announce that `user`'s number-in-system changes by `delta` at `now`.
  /// Hot callers that already loaded the active trace pointer pass it in
  /// so the disabled-tracing path costs a single load per packet event.
  void on_change(double now, std::size_t user, int delta,
                 obs::TraceSession* trace = obs::active_trace());

  /// A packet of `user` departed after spending `delay` in the system.
  void on_departure(std::size_t user, double delay);

  /// Discards all accumulated statistics; measurement restarts at `now`
  /// with the current occupancy preserved.
  void reset(double now);

  /// Opens a new measurement batch at `now` and returns the per-user
  /// time-average occupancy of the batch that just closed (empty vector
  /// for the first call after reset()).
  std::vector<double> close_batch(double now);

  /// Cumulative time-average number in system for `user` over [reset, now].
  [[nodiscard]] double time_average(std::size_t user, double now) const;

  /// Mean delay of departed packets since reset (0 if none departed).
  [[nodiscard]] double mean_delay(std::size_t user) const;

  /// Departures since reset.
  [[nodiscard]] std::size_t departures(std::size_t user) const;

  /// Enables per-user delay histograms on [0, max_delay) with `bins`
  /// buckets (delays beyond the range clamp into the top bucket).
  void enable_delay_histograms(double max_delay, std::size_t bins = 512);

  /// Empirical delay quantile for `user` (requires enabled histograms;
  /// throws std::logic_error otherwise). When the user has recorded no
  /// departures there is no empirical distribution to query: returns the
  /// NaN sentinel rather than a garbage quantile — callers that prefer an
  /// explicit check should use try_delay_quantile().
  [[nodiscard]] double delay_quantile(std::size_t user, double q) const;

  /// Safe-path variant of delay_quantile(): std::nullopt when `user` has
  /// no departures since reset. Still throws std::logic_error when delay
  /// histograms were never enabled (a programming error, not a data gap).
  [[nodiscard]] std::optional<double> try_delay_quantile(std::size_t user,
                                                         double q) const;

  [[nodiscard]] std::size_t users() const noexcept { return per_user_.size(); }
  [[nodiscard]] int occupancy(std::size_t user) const {
    return per_user_.at(user).count;
  }

 private:
  struct PerUser {
    int count = 0;           ///< current number in system
    double area = 0.0;       ///< integral of count since reset
    double last_update = 0;  ///< time of last area update
    double batch_area = 0.0; ///< integral since the current batch opened
    double delay_sum = 0.0;
    std::size_t departures = 0;
  };

  void accrue(double now, PerUser& user);

  std::vector<PerUser> per_user_;
  std::vector<std::unique_ptr<numerics::Histogram>> delay_histograms_;
  double histogram_max_ = 0.0;
  std::size_t histogram_bins_ = 0;
  double measure_start_ = 0.0;
  double batch_start_ = 0.0;
  bool batch_open_ = false;
};

}  // namespace gw::sim
