#include "core/proportional.hpp"

#include <limits>
#include <numeric>

#include "core/simd.hpp"

namespace gw::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

double total_of(std::span<const double> rates) {
  double total = 0.0;
  for (const double r : rates) total += r;
  return total;
}
}  // namespace

void ProportionalAllocation::congestion_into(std::span<const double> rates,
                                             std::span<double> out,
                                             EvalWorkspace& /*ws*/) const {
  const double total = total_of(rates);
  if (total >= 1.0) {
    for (std::size_t i = 0; i < rates.size(); ++i) {
      out[i] = rates[i] > 0.0 ? kInf : 0.0;
    }
    return;
  }
  const double inv = 1.0 / (1.0 - total);
  const std::size_t n = rates.size();
  GW_SIMD_LOOP
  for (std::size_t i = 0; i < n; ++i) out[i] = rates[i] * inv;
}

double ProportionalAllocation::congestion_of_into(std::size_t i,
                                                  std::span<const double> rates,
                                                  EvalWorkspace& /*ws*/) const {
  const double total = total_of(rates);
  if (total >= 1.0) return rates[i] > 0.0 ? kInf : 0.0;
  // Same reciprocal-multiply as congestion_into so the single-component
  // path is bit-identical to the vector path.
  const double inv = 1.0 / (1.0 - total);
  return rates[i] * inv;
}

void ProportionalAllocation::jacobian_into(std::span<const double> rates,
                                           numerics::Matrix& out,
                                           EvalWorkspace& /*ws*/) const {
  const std::size_t n = rates.size();
  out.resize(n, n);
  const double total = total_of(rates);
  if (total >= 1.0) {
    for (std::size_t i = 0; i < n; ++i) {
      double* const out_row = out.row_data(i);
      GW_SIMD_LOOP
      for (std::size_t j = 0; j < n; ++j) out_row[j] = kInf;
    }
    return;
  }
  // Entry expressions mirror partial() exactly (division, not
  // reciprocal-multiply) so the batched path is bit-identical to the
  // legacy entrywise path; each row is a broadcast fill plus a diagonal
  // overwrite.
  const double u = 1.0 - total;
  const double u2 = u * u;
  for (std::size_t i = 0; i < n; ++i) {
    const double own = rates[i] / u2;
    double* const out_row = out.row_data(i);
    GW_SIMD_LOOP
    for (std::size_t j = 0; j < n; ++j) out_row[j] = own;
    out_row[i] = 1.0 / u + own;
  }
}

void ProportionalAllocation::second_partials_into(std::span<const double> rates,
                                                  numerics::Matrix& out,
                                                  EvalWorkspace& /*ws*/) const {
  const std::size_t n = rates.size();
  out.resize(n, n);
  const double total = total_of(rates);
  if (total >= 1.0) {
    for (std::size_t i = 0; i < n; ++i) {
      double* const out_row = out.row_data(i);
      GW_SIMD_LOOP
      for (std::size_t j = 0; j < n; ++j) out_row[j] = kInf;
    }
    return;
  }
  // Mirrors second_partial() exactly; see jacobian_into.
  const double u = 1.0 - total;
  const double u2 = u * u;
  const double u3 = u2 * u;
  for (std::size_t i = 0; i < n; ++i) {
    const double shared = 2.0 * rates[i] / u3;
    const double off = 1.0 / u2 + shared;
    double* const out_row = out.row_data(i);
    GW_SIMD_LOOP
    for (std::size_t j = 0; j < n; ++j) out_row[j] = off;
    out_row[i] = 2.0 / u2 + shared;
  }
}

bool ProportionalAllocation::congestion_classes_into(
    const ClassedPopulation& pop, std::span<double> out,
    EvalWorkspace& /*ws*/) const {
  double total = 0.0;
  for (const RateClass& c : pop.classes()) {
    total += static_cast<double>(c.count) * c.rate;
  }
  if (total >= 1.0) {
    for (std::size_t a = 0; a < pop.k(); ++a) {
      out[a] = pop[a].rate > 0.0 ? kInf : 0.0;
    }
    return true;
  }
  const double inv = 1.0 / (1.0 - total);
  for (std::size_t a = 0; a < pop.k(); ++a) out[a] = pop[a].rate * inv;
  return true;
}

bool ProportionalAllocation::jacobian_classes_into(const ClassedPopulation& pop,
                                                   numerics::Matrix& cross,
                                                   std::span<double> own,
                                                   EvalWorkspace& /*ws*/) const {
  const std::size_t k = pop.k();
  cross.resize(k, k);
  double total = 0.0;
  for (const RateClass& c : pop.classes()) {
    total += static_cast<double>(c.count) * c.rate;
  }
  if (total >= 1.0) {
    for (std::size_t a = 0; a < k; ++a) {
      own[a] = kInf;
      for (std::size_t b = 0; b < k; ++b) cross(a, b) = kInf;
    }
    return true;
  }
  // Division forms mirror partial() / jacobian_into exactly.
  const double u = 1.0 - total;
  const double u2 = u * u;
  for (std::size_t a = 0; a < k; ++a) {
    const double own_share = pop[a].rate / u2;
    own[a] = 1.0 / u + own_share;
    for (std::size_t b = 0; b < k; ++b) cross(a, b) = own_share;
  }
  return true;
}

bool ProportionalAllocation::scan_prepare_classes(std::size_t a,
                                                  const ClassedPopulation& pop,
                                                  EvalWorkspace& ws) const {
  ws.ensure(pop.k());
  double opponents = 0.0;
  for (std::size_t c = 0; c < pop.k(); ++c) {
    const double members =
        static_cast<double>(c == a ? pop[c].count - 1 : pop[c].count);
    opponents += members * pop[c].rate;
  }
  ws.scan_prefix(1)[0] = opponents;
  ws.scan.n = pop.total_users();
  ws.scan.i = a;
  ws.scan.count = 0;
  return true;
}

double ProportionalAllocation::scan_congestion_of_class(
    std::size_t /*a*/, double x, const ClassedPopulation& /*pop*/,
    EvalWorkspace& ws) const {
  const double total = ws.scan_prefix(1)[0] + x;
  if (total >= 1.0) return x > 0.0 ? kInf : 0.0;
  const double inv = 1.0 / (1.0 - total);
  return x * inv;
}

double ProportionalAllocation::partial(std::size_t i, std::size_t j,
                                       const std::vector<double>& rates) const {
  validate_rates(rates);
  const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
  if (total >= 1.0) return kInf;
  const double u = 1.0 - total;
  const double own = rates.at(i) / (u * u);
  return (i == j) ? 1.0 / u + own : own;
}

double ProportionalAllocation::second_partial(
    std::size_t i, std::size_t j, const std::vector<double>& rates) const {
  validate_rates(rates);
  const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
  if (total >= 1.0) return kInf;
  const double u = 1.0 - total;
  const double u2 = u * u;
  const double u3 = u2 * u;
  // d/dr_j [ 1/u + r_i/u^2 ]  (the i-derivative), so:
  //   j == i: 2/u^2 + 2 r_i / u^3;  j != i: 1/u^2 + 2 r_i / u^3.
  const double shared = 2.0 * rates.at(i) / u3;
  return (i == j) ? 2.0 / u2 + shared : 1.0 / u2 + shared;
}

}  // namespace gw::core
