#include "sim/simulator.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace gw::sim {

EventId Simulator::schedule_at(double t, std::function<void()> action) {
  if (t < now_) throw std::invalid_argument("Simulator: scheduling in the past");
  if (!action) throw std::invalid_argument("Simulator: empty action");
  const EventId id = next_id_++;
  heap_.push(Entry{t, id, std::move(action)});
  return id;
}

EventId Simulator::schedule_in(double dt, std::function<void()> action) {
  return schedule_at(now_ + dt, std::move(action));
}

void Simulator::cancel(EventId id) { cancelled_.insert(id); }

std::size_t Simulator::run_until(double t_end) {
  if (t_end < now_) {
    throw std::invalid_argument("Simulator: run_until into the past");
  }
  std::size_t fired = 0;
  while (!heap_.empty() && heap_.top().time <= t_end) {
    Entry entry = heap_.top();
    heap_.pop();
    if (const auto it = cancelled_.find(entry.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = entry.time;
    entry.action();
    ++fired;
    ++processed_;
  }
  now_ = t_end;
  static auto& events_processed =
      obs::default_registry().counter("sim.events_processed");
  events_processed.inc(fired);
  return fired;
}

std::size_t Simulator::run_for(double dt) { return run_until(now_ + dt); }

}  // namespace gw::sim
