// The paper's motivating workload (Section 5.2): a throughput-hungry FTP
// flow, a delay-sensitive Telnet flow, and a misbehaving flooder share a
// switch — simulated at packet level under FIFO, DRR fair queueing, and
// the Fair Share priority discipline.
#include <cstdio>

#include "sim/runner.hpp"

int main() {
  using namespace gw::sim;

  // Offered loads: telnet 0.05, ftp 0.45, flooder 1.4 (> server rate!).
  const std::vector<double> rates{0.05, 0.45, 1.4};
  const char* names[] = {"telnet", "ftp", "flooder"};

  RunOptions options;
  options.warmup = 4000.0;
  options.batches = 10;
  options.batch_length = 4000.0;
  options.seed = 99;

  std::printf("Workload: telnet 0.05, ftp 0.45, flooder 1.40 (server rate "
              "1.0)\n");
  for (const auto discipline :
       {Discipline::kFifo, Discipline::kDrr, Discipline::kFairShareOracle}) {
    const auto result = run_switch(discipline, rates, options);
    std::printf("\n--- %s ---\n", discipline_name(discipline));
    std::printf("%-10s %-10s %-12s %-12s\n", "user", "offered", "delivered",
                "mean delay");
    for (std::size_t u = 0; u < rates.size(); ++u) {
      std::printf("%-10s %-10.2f %-12.3f %-12.2f\n", names[u], rates[u],
                  result.users[u].throughput, result.users[u].mean_delay);
    }
  }

  std::printf(
      "\nUnder FIFO the flooder drags everyone into an unbounded queue; "
      "under DRR/FairShare the telnet user's delay stays near the empty-"
      "system value and the ftp flow keeps its throughput.\n");
  return 0;
}
