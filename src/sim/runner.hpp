// One-call experiment runner: build a switch, attach Poisson sources, run
// warmup + measurement batches, and report per-user statistics with
// batch-means confidence intervals. This is the empirical counterpart of
// evaluating an allocation function C(r) in gw::core.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "numerics/stats.hpp"
#include "sim/service.hpp"
#include "sim/stations.hpp"

namespace gw::sim {

/// Which service discipline the switch runs.
enum class Discipline {
  kFifo,
  kLifoPreempt,
  kProcessorSharing,
  kFairShareOracle,    ///< Table 1 thinning with true rates
  kFairShareAdaptive,  ///< Table 1 thinning with estimated rates
  kDrr,                ///< deficit round robin fair queueing
  kSfq,                ///< start-time fair queueing (packetized GPS)
  kRatePriority,       ///< preemptive priority, smaller-rate users higher
};

[[nodiscard]] const char* discipline_name(Discipline d) noexcept;

struct RunOptions {
  double mu = 1.0;
  /// Service-demand distribution (M/G/1 experiments). The default
  /// exponential mean is overridden by 1/mu when mu != 1 for backwards
  /// compatibility with the M/M/1 interface.
  ServiceSpec service = ServiceSpec::exponential(1.0);
  double warmup = 2000.0;        ///< simulated time discarded
  int batches = 20;
  double batch_length = 5000.0;  ///< simulated time per batch
  std::uint64_t seed = 1;
  double drr_quantum = 1.0;
  double estimator_tau = 500.0;      ///< adaptive FS rate-estimator memory
  double rebuild_interval = 100.0;   ///< adaptive FS threshold refresh
  /// Track per-user delay histograms (p50/p95/p99 in UserRunStats).
  bool delay_histograms = false;
  double delay_histogram_max = 500.0;
};

struct UserRunStats {
  double mean_queue = 0.0;  ///< time-average number in system (c_i)
  numerics::ConfidenceInterval queue_ci;
  double mean_delay = 0.0;
  double throughput = 0.0;  ///< departures per unit time
  /// Delay quantiles; populated when RunOptions::delay_histograms is set.
  /// NaN for a user with zero departures in the measurement window (see
  /// QueueTracker::try_delay_quantile).
  double delay_p50 = 0.0;
  double delay_p95 = 0.0;
  double delay_p99 = 0.0;
};

struct RunResult {
  std::vector<UserRunStats> users;
  double measured_time = 0.0;
  std::size_t events = 0;
};

/// Builds and runs the given discipline for the rate vector.
[[nodiscard]] RunResult run_switch(Discipline discipline,
                                   const std::vector<double>& rates,
                                   const RunOptions& options = {});

/// Custom-station variant: `factory` builds the station under test.
using StationFactory =
    std::function<std::unique_ptr<Station>(Simulator&, QueueTracker&)>;

[[nodiscard]] RunResult run_custom(const StationFactory& factory,
                                   const std::vector<double>& rates,
                                   const RunOptions& options = {});

/// Pooled statistics over independent replications of one experiment.
struct ReplicationResult {
  /// Per-user statistics pooled across replications: mean_queue /
  /// mean_delay / throughput are the (unweighted) averages of the
  /// per-replication values, and queue_ci is a Student-t confidence
  /// interval over the replication means (replication/deletion analysis —
  /// each replication contributes one observation). Delay quantiles are
  /// averaged over the replications that produced them (NaN-yielding
  /// replications, i.e. zero-departure users, are skipped).
  std::vector<UserRunStats> users;
  double measured_time = 0.0;  ///< summed across replications
  std::size_t events = 0;      ///< summed across replications
  int replications = 0;
  /// Per-replication per-user mean queues (replications x users), in
  /// replication order — the raw observations behind users[u].queue_ci.
  std::vector<std::vector<double>> replication_queues;
};

/// Runs `replications` independent copies of run_switch(discipline, rates)
/// across `threads` worker threads and pools the per-user batch-means
/// statistics into replication-level confidence intervals.
///
/// Each replication r draws its seed from a deterministic Rng stream
/// forked off options.seed by replication index, and the merge walks the
/// replications in index order — so the returned statistics are
/// bit-identical for every `threads` value (1, 2, 8, ... all agree).
/// `threads` == 0 means exec::default_thread_count().
[[nodiscard]] ReplicationResult run_replications(
    Discipline discipline, const std::vector<double>& rates,
    const RunOptions& options, int replications, int threads = 1);

}  // namespace gw::sim
