// E-PERF — google-benchmark microbenchmarks: library hot paths.
//
// Shares the gw::bench harness (and its --json/--repeat/--label flags) with
// the experiment benches so the suite runner treats all binaries uniformly;
// --benchmark_* flags pass through to google-benchmark.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/corollary2.hpp"
#include "core/fair_share.hpp"
#include "core/gfunction.hpp"
#include "core/mixture.hpp"
#include "core/nash.hpp"
#include "core/priority_alloc.hpp"
#include "core/proportional.hpp"
#include "core/serial_general.hpp"
#include "core/simd.hpp"
#include "core/weighted_serial.hpp"
#include "exec/thread_pool.hpp"
#include "numerics/eigen.hpp"
#include "numerics/rng.hpp"
#include "obs/flight.hpp"
#include "obs/perfcount.hpp"
#include "sim/runner.hpp"
#include "sim/simulator.hpp"

// ---- heap-allocation counter (E-EVAL zero-alloc verdicts) --------------
//
// Replacing the global operator new routes every heap allocation in the
// process through this counter, so the E-EVAL section can assert that a
// warmed-up evaluation loop performs exactly zero allocations. The deltas
// are read outside benchmark timing loops; the relaxed counter itself
// costs one atomic increment per allocation, which is noise next to
// malloc.
namespace gw_benchalloc {
std::atomic<std::uint64_t> g_heap_allocs{0};
inline std::uint64_t heap_allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}
}  // namespace gw_benchalloc

// GCC pairs the malloc in the replaced operator new with the free in the
// replaced operator delete and flags the (correct) combination when both
// inline into the same frame; the pairing is intentional here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  gw_benchalloc::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  gw_benchalloc::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace gw;

std::vector<double> ramp_rates(std::size_t n, double total) {
  std::vector<double> rates(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    rates[i] = static_cast<double>(i + 1);
    sum += rates[i];
  }
  for (auto& r : rates) r *= total / sum;
  return rates;
}

void BM_FairShareCongestion(benchmark::State& state) {
  const core::FairShareAllocation alloc;
  const auto rates = ramp_rates(static_cast<std::size_t>(state.range(0)), 0.8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc.congestion(rates));
  }
}
BENCHMARK(BM_FairShareCongestion)->Arg(4)->Arg(16)->Arg(64);

void BM_FairShareJacobian(benchmark::State& state) {
  const core::FairShareAllocation alloc;
  const auto rates = ramp_rates(static_cast<std::size_t>(state.range(0)), 0.8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc.jacobian(rates));
  }
}
BENCHMARK(BM_FairShareJacobian)->Arg(4)->Arg(8);

void BM_BestResponseFs(benchmark::State& state) {
  const core::FairShareAllocation alloc;
  const core::LinearUtility utility(1.0, 0.25);
  const auto rates = ramp_rates(4, 0.6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::best_response(alloc, utility, rates, 1));
  }
}
BENCHMARK(BM_BestResponseFs);

void BM_NashSolveFs(benchmark::State& state) {
  const core::FairShareAllocation alloc;
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto profile = core::uniform_profile(core::make_linear(1.0, 0.25), n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_nash(
        alloc, profile, std::vector<double>(n, 0.5 / static_cast<double>(n))));
  }
}
BENCHMARK(BM_NashSolveFs)->Arg(2)->Arg(4)->Arg(8);

// ---- E-EVAL: span/workspace evaluation core --------------------------

std::vector<double> ramp_weights(std::size_t n) {
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = 0.5 + 0.25 * static_cast<double>(i % 5);
  }
  return w;
}

void BM_EvalCongestionLegacy(benchmark::State& state) {
  // Legacy vector API: one heap-allocated result vector per call.
  const auto n = static_cast<std::size_t>(state.range(0));
  const core::WeightedSerialAllocation alloc(ramp_weights(n));
  const auto rates = ramp_rates(n, 0.8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc.congestion(rates));
  }
}
BENCHMARK(BM_EvalCongestionLegacy)->Arg(4)->Arg(16)->Arg(64);

void BM_EvalCongestionSpan(benchmark::State& state) {
  // Span primitive with a caller-held workspace: allocation-free.
  const auto n = static_cast<std::size_t>(state.range(0));
  const core::WeightedSerialAllocation alloc(ramp_weights(n));
  const auto rates = ramp_rates(n, 0.8);
  std::vector<double> out(n);
  core::EvalWorkspace ws;
  for (auto _ : state) {
    alloc.congestion_into(rates, out, ws);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_EvalCongestionSpan)->Arg(4)->Arg(16)->Arg(64);

void BM_EvalBestResponseSpan(benchmark::State& state) {
  // The solver hot path: pre-validated rates, scan + Brent refinement all
  // through the workspace overload (compare against BM_BestResponseFs,
  // which goes through the legacy vector API).
  const core::FairShareAllocation alloc;
  const core::LinearUtility utility(1.0, 0.25);
  const core::BestResponseOptions options;
  std::vector<double> rates = ramp_rates(4, 0.6);
  core::AllocationFunction::validate_rates(rates);
  core::EvalWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::best_response(
        alloc, utility, std::span<double>(rates), 1, options, ws));
  }
}
BENCHMARK(BM_EvalBestResponseSpan);

void BM_EvalJacobianNumeric(benchmark::State& state) {
  // Richardson finite differences of congestion_of: the default every
  // discipline fell back to before the closed forms landed.
  const auto n = static_cast<std::size_t>(state.range(0));
  const core::WeightedSerialAllocation alloc(ramp_weights(n));
  const auto rates = ramp_rates(n, 0.8);
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        acc += alloc.core::AllocationFunction::partial(i, j, rates);
      }
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_EvalJacobianNumeric)->Arg(4)->Arg(8);

void BM_EvalJacobianClosed(benchmark::State& state) {
  // Closed-form batched Jacobian: one sort, then O(n^2) arithmetic.
  const auto n = static_cast<std::size_t>(state.range(0));
  const core::WeightedSerialAllocation alloc(ramp_weights(n));
  const auto rates = ramp_rates(n, 0.8);
  numerics::Matrix jac(n, n);
  core::EvalWorkspace ws;
  for (auto _ : state) {
    alloc.jacobian_into(rates, jac, ws);
    benchmark::DoNotOptimize(jac(0, 0));
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_EvalJacobianClosed)->Arg(4)->Arg(8);

/// E-EVAL zero-allocation verdicts: once the workspace is warm, the span
/// evaluation loops must not touch the heap at all. Counter deltas are
/// taken around plain loops (not benchmark timing loops) so the numbers
/// are exact.
void run_eval_section() {
  gw::bench::banner(
      "E-EVAL span evaluation core", "DESIGN.md (validate-once contract)",
      "steady-state congestion_into and the span best_response scan "
      "perform zero heap allocations once the workspace is warm");

  const core::FairShareAllocation fair;
  const core::WeightedSerialAllocation weighted(ramp_weights(16));
  core::EvalWorkspace ws;
  const auto rates = ramp_rates(16, 0.8);
  std::vector<double> out(rates.size());
  fair.congestion_into(rates, out, ws);  // warm the workspace buffers
  weighted.congestion_into(rates, out, ws);

  const std::uint64_t c0 = gw_benchalloc::heap_allocs();
  for (int k = 0; k < 1000; ++k) {
    fair.congestion_into(rates, out, ws);
    weighted.congestion_into(rates, out, ws);
    benchmark::DoNotOptimize(out.data());
  }
  const std::uint64_t congestion_allocs = gw_benchalloc::heap_allocs() - c0;

  const core::LinearUtility utility(1.0, 0.25);
  const core::BestResponseOptions options;
  std::vector<double> br_rates = ramp_rates(8, 0.6);
  core::AllocationFunction::validate_rates(br_rates);
  benchmark::DoNotOptimize(core::best_response(
      fair, utility, std::span<double>(br_rates), 1, options, ws));
  const std::uint64_t b0 = gw_benchalloc::heap_allocs();
  for (int k = 0; k < 50; ++k) {
    benchmark::DoNotOptimize(core::best_response(
        fair, utility, std::span<double>(br_rates), 1, options, ws));
  }
  const std::uint64_t br_allocs = gw_benchalloc::heap_allocs() - b0;

  gw::bench::table_header({"loop", "iterations", "heap allocs"});
  gw::bench::table_row({"congestion_into x2 disciplines", "1000",
                        std::to_string(congestion_allocs)});
  gw::bench::table_row(
      {"best_response span scan", "50", std::to_string(br_allocs)});
  gw::bench::verdict(congestion_allocs == 0,
                     "congestion_into steady state is allocation-free");
  gw::bench::verdict(br_allocs == 0,
                     "span best_response scan loop is allocation-free");
}

void BM_FlightRecorderDisarmed(benchmark::State& state) {
  // No journal installed: begin() is one relaxed load, everything else a
  // predicted branch. This is the tax every solver iteration pays when
  // nobody asked for a trace — it must stay indistinguishable from zero.
  obs::set_active_flight(nullptr);
  for (auto _ : state) {
    auto flight = obs::FlightRecorder::begin("bench.off", 16);
    flight.iteration(0.1, 0.2, 1.0, 3);
    flight.verdict(true, 0.1);
    benchmark::DoNotOptimize(flight.armed());
  }
}
BENCHMARK(BM_FlightRecorderDisarmed);

void BM_FlightRecorderArmed(benchmark::State& state) {
  // Journal installed: each record is a struct store into this thread's
  // ring (registered once, reserved up front — no locks, no allocation).
  obs::FlightJournal journal;
  obs::ActiveFlightScope scope(journal);
  for (auto _ : state) {
    auto flight = obs::FlightRecorder::begin("bench.on", 16);
    flight.iteration(0.1, 0.2, 1.0, 3);
    flight.verdict(true, 0.1);
    benchmark::DoNotOptimize(flight.armed());
  }
}
BENCHMARK(BM_FlightRecorderArmed);

/// E-FLIGHT overhead verdicts: the disarmed recorder must be free — zero
/// heap allocations and single-digit nanoseconds per solver iteration —
/// and even armed recording must be allocation-free after the ring's
/// one-time registration. Deltas and timings are taken around plain loops
/// so the numbers are exact.
void run_flight_section() {
  gw::bench::banner(
      "E-FLIGHT recorder overhead", "DESIGN.md (flight recorder)",
      "a disarmed FlightRecorder costs no allocations and a bounded "
      "handful of nanoseconds per span; armed recording never allocates "
      "after ring registration");

  obs::set_active_flight(nullptr);
  constexpr int kSpans = 200000;
  const std::uint64_t d0 = gw_benchalloc::heap_allocs();
  const auto t0 = std::chrono::steady_clock::now();
  for (int k = 0; k < kSpans; ++k) {
    auto flight = obs::FlightRecorder::begin("bench.off", 16);
    flight.iteration(0.1, 0.2, 1.0, 3);
    flight.verdict(true, 0.1);
    benchmark::DoNotOptimize(flight.armed());
  }
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t disarmed_allocs = gw_benchalloc::heap_allocs() - d0;
  const double disarmed_ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count() / kSpans;

  std::uint64_t armed_allocs = 0;
  {
    obs::FlightJournal journal;
    obs::ActiveFlightScope scope(journal);
    {  // register + warm this thread's ring outside the counted loop
      auto flight = obs::FlightRecorder::begin("bench.on", 16);
      flight.iteration(0.1, 0.2, 1.0, 3);
    }
    const std::uint64_t a0 = gw_benchalloc::heap_allocs();
    for (int k = 0; k < kSpans; ++k) {
      auto flight = obs::FlightRecorder::begin("bench.on", 16);
      flight.iteration(0.1, 0.2, 1.0, 3);
      flight.verdict(true, 0.1);
    }
    armed_allocs = gw_benchalloc::heap_allocs() - a0;
  }

  gw::bench::table_header({"mode", "spans", "heap allocs", "ns/span"});
  gw::bench::table_row({"disarmed", std::to_string(kSpans),
                        std::to_string(disarmed_allocs),
                        gw::bench::fmt(disarmed_ns)});
  gw::bench::table_row(
      {"armed", std::to_string(kSpans), std::to_string(armed_allocs), "-"});
  gw::bench::verdict(disarmed_allocs == 0,
                     "disarmed recorder performs zero heap allocations");
  // Generous ceiling: the span is 1 relaxed load + 3 guarded no-ops; even
  // a slow CI host clears 250ns with two orders of magnitude to spare.
  gw::bench::verdict(disarmed_ns < 250.0,
                     "disarmed span costs < 250ns (" +
                         gw::bench::fmt(disarmed_ns) + "ns measured)");
  gw::bench::verdict(armed_allocs == 0,
                     "armed recording is allocation-free after ring "
                     "registration");
}

// ---- E-ROOFLINE: per-kernel work-normalized cost ----------------------

namespace work = gw::obs::work;

/// One measured kernel: time-boxed repetition with the perf counter group
/// bracketing the loop, cost normalized by domain work units.
struct RooflineRow {
  std::string discipline;
  std::string kernel;
  std::size_t n = 0;
  std::uint64_t units = 0;
  double ns_per_unit = 0.0;
  double ipc = 0.0;        ///< 0 when hardware counters are unavailable
  double miss_rate = 0.0;  ///< cache-misses / cache-references
  double misses_per_unit = 0.0;
};

/// Runs `body` (one kernel invocation, returning the work units it
/// performed) until ~15ms have elapsed, and normalizes.
template <typename Body>
RooflineRow measure_kernel(gw::obs::PerfCounterSession& session,
                           std::string discipline, std::string kernel,
                           std::size_t n, Body&& body) {
  using clock = std::chrono::steady_clock;
  constexpr auto kBudget = std::chrono::milliseconds(15);
  body();  // warm caches, workspace buffers, and the branch predictors
  RooflineRow row;
  row.discipline = std::move(discipline);
  row.kernel = std::move(kernel);
  row.n = n;
  session.start();
  const auto t0 = clock::now();
  auto t1 = t0;
  do {
    row.units += body();
    t1 = clock::now();
  } while (t1 - t0 < kBudget);
  const gw::obs::PerfCounts counts = session.stop();
  const double ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count();
  row.ns_per_unit = row.units > 0 ? ns / static_cast<double>(row.units) : 0.0;
  if (counts.hardware) {
    row.ipc = counts.ipc();
    row.miss_rate = counts.cache_miss_rate();
    if (row.units > 0) {
      row.misses_per_unit = static_cast<double>(counts.cache_misses) *
                            counts.scale / static_cast<double>(row.units);
    }
  }
  return row;
}

/// Per-kernel roofline table over the span-path disciplines: work rate
/// (ns/unit) vs IPC vs cache-miss rate, the measurement the SIMD/SoA pass
/// gates against. Work units are recorded into the WorkMeter at the call
/// sites here (this section is the driver), matching the DESIGN.md
/// placement rule; best_response units come from the meter itself since
/// the core solver already meters its payoff evaluations.
void run_roofline_section() {
  gw::bench::banner(
      "E-ROOFLINE per-kernel work-normalized cost",
      "ROADMAP (SIMD/SoA gating)",
      "every span-path kernel reports ns/user-evaluated — plus IPC and "
      "cache-miss/jacobian-cell when hardware counters are available — so "
      "layout changes gate on cost per unit of work, not wall time");

  gw::obs::PerfCounterSession session;
  const bool hardware = session.available();
  std::printf("  hardware counters: %s\n", session.status().c_str());

  // The meter is normally armed by the bench harness for measured reps;
  // arm it here too so a bare invocation still meters, and restore after.
  const bool was_armed = work::armed();
  work::set_armed(true);

  using AllocFactory =
      std::unique_ptr<core::AllocationFunction> (*)(std::size_t);
  struct Discipline {
    const char* name;
    AllocFactory make;
    bool closed_form_jacobian;  ///< numeric-fallback jacobians are too
                                ///< slow at roofline sizes and would
                                ///< measure the differencer, not the fill
  };
  static constexpr Discipline kDisciplines[] = {
      {"fair_share",
       [](std::size_t) -> std::unique_ptr<core::AllocationFunction> {
         return std::make_unique<core::FairShareAllocation>();
       },
       true},
      {"proportional",
       [](std::size_t) -> std::unique_ptr<core::AllocationFunction> {
         return std::make_unique<core::ProportionalAllocation>();
       },
       true},
      {"w_serial",
       [](std::size_t n) -> std::unique_ptr<core::AllocationFunction> {
         return std::make_unique<core::WeightedSerialAllocation>(
             ramp_weights(n));
       },
       true},
      {"serial_mm1",
       [](std::size_t) -> std::unique_ptr<core::AllocationFunction> {
         return std::make_unique<core::GeneralSerialAllocation>(
             core::GFunction::mm1());
       },
       true},
      {"prop_mm1",
       [](std::size_t) -> std::unique_ptr<core::AllocationFunction> {
         return std::make_unique<core::GeneralProportionalAllocation>(
             core::GFunction::mm1());
       },
       true},
      {"srf",
       [](std::size_t) -> std::unique_ptr<core::AllocationFunction> {
         return std::make_unique<core::SmallestRateFirstAllocation>();
       },
       true},
      {"fixed_prio",
       [](std::size_t) -> std::unique_ptr<core::AllocationFunction> {
         return std::make_unique<core::FixedPriorityAllocation>();
       },
       true},
      {"quadratic",
       [](std::size_t) -> std::unique_ptr<core::AllocationFunction> {
         return std::make_unique<core::QuadraticSeparableAllocation>();
       },
       false},
      {"mixture_0.5",
       [](std::size_t) -> std::unique_ptr<core::AllocationFunction> {
         return std::make_unique<core::MixtureAllocation>(0.5);
       },
       false},
  };

  std::vector<RooflineRow> rows;
  for (const Discipline& discipline : kDisciplines) {
    // Congestion fill across the N=64..4096 ramp: the g(x) evaluation
    // kernel whose ns/user the class-aggregation work must beat.
    for (const std::size_t n : {std::size_t{64}, std::size_t{4096}}) {
      const auto alloc = discipline.make(n);
      const auto rates = ramp_rates(n, 0.8);
      std::vector<double> out(n);
      core::EvalWorkspace ws;
      rows.push_back(measure_kernel(
          session, discipline.name, "congestion", n, [&]() -> std::uint64_t {
            alloc->congestion_into(rates, out, ws);
            benchmark::DoNotOptimize(out.data());
            work::add(work::Kind::kUsersEvaluated, out.size());
            return out.size();
          }));
    }
    // Batched derivative fills: the n^2 cell kernels, only where the
    // closed forms exist (the numeric fallback is a different kernel).
    if (discipline.closed_form_jacobian) {
      for (const std::size_t n : {std::size_t{64}, std::size_t{1024}}) {
        const auto alloc = discipline.make(n);
        const auto rates = ramp_rates(n, 0.8);
        numerics::Matrix jac(n, n);
        core::EvalWorkspace ws;
        rows.push_back(measure_kernel(
            session, discipline.name, "jacobian", n, [&]() -> std::uint64_t {
              alloc->jacobian_into(rates, jac, ws);
              benchmark::DoNotOptimize(jac(0, 0));
              work::add(work::Kind::kJacobianCells, n * n);
              return n * n;
            }));
      }
      {
        const std::size_t n = 256;
        const auto alloc = discipline.make(n);
        const auto rates = ramp_rates(n, 0.8);
        numerics::Matrix hess(n, n);
        core::EvalWorkspace ws;
        rows.push_back(measure_kernel(
            session, discipline.name, "2nd_partials", n,
            [&]() -> std::uint64_t {
              alloc->second_partials_into(rates, hess, ws);
              benchmark::DoNotOptimize(hess(0, 0));
              work::add(work::Kind::kJacobianCells, n * n);
              return n * n;
            }));
      }
    }
    // Scan best response through the instrumented core path: units are
    // the meter's own users-evaluated delta, so this row also checks the
    // solver-side accounting end to end.
    {
      const std::size_t n = 64;
      const auto alloc = discipline.make(n);
      const core::LinearUtility utility(1.0, 0.25);
      const core::BestResponseOptions options;
      std::vector<double> rates = ramp_rates(n, 0.6);
      core::AllocationFunction::validate_rates(rates);
      core::EvalWorkspace ws;
      rows.push_back(measure_kernel(
          session, discipline.name, "best_response", n,
          [&]() -> std::uint64_t {
            const auto before =
                work::collect()[work::Kind::kUsersEvaluated];
            benchmark::DoNotOptimize(core::best_response(
                *alloc, utility, std::span<double>(rates), 1, options, ws));
            return work::collect()[work::Kind::kUsersEvaluated] - before;
          }));
    }
  }

  gw::bench::table_header({"discipline", "kernel", "N", "units", "ns/unit",
                           "IPC", "miss/unit"});
  bool all_measured = true;
  bool all_ipc = true;
  for (const RooflineRow& row : rows) {
    const bool measured =
        row.units > 0 && std::isfinite(row.ns_per_unit) && row.ns_per_unit > 0;
    all_measured = all_measured && measured;
    if (hardware) all_ipc = all_ipc && row.ipc > 0.0;
    gw::bench::table_row(
        {row.discipline, row.kernel, std::to_string(row.n),
         std::to_string(row.units), gw::bench::fmt(row.ns_per_unit, 2),
         hardware ? gw::bench::fmt(row.ipc, 2) : "n/a",
         hardware ? gw::bench::fmt(row.misses_per_unit, 4) : "n/a"});
  }
  gw::bench::verdict(all_measured,
                     "every span-path kernel reports a finite positive "
                     "ns/unit cost");
  if (hardware) {
    gw::bench::verdict(all_ipc,
                       "hardware counters delivered a nonzero IPC for "
                       "every kernel");
  } else {
    gw::bench::verdict(true,
                       "counters degraded gracefully (" + session.status() +
                           "); ns/unit still measured");
  }

  // WorkMeter totals must not depend on how the work was partitioned:
  // the same deterministic index-space sum through 1, 2, and 4 workers.
  const auto partitioned_total = [](std::size_t threads) {
    const std::uint64_t before =
        work::collect()[work::Kind::kUsersEvaluated];
    gw::exec::parallel_for(threads, 4096, [](std::size_t i) {
      work::add(work::Kind::kUsersEvaluated, i % 7 + 1);
    });
    return work::collect()[work::Kind::kUsersEvaluated] - before;
  };
  const std::uint64_t total_1 = partitioned_total(1);
  const std::uint64_t total_2 = partitioned_total(2);
  const std::uint64_t total_4 = partitioned_total(4);
  gw::bench::table_header({"meter threads", "units"});
  gw::bench::table_row({"1", std::to_string(total_1)});
  gw::bench::table_row({"2", std::to_string(total_2)});
  gw::bench::table_row({"4", std::to_string(total_4)});
  gw::bench::verdict(total_1 == total_2 && total_2 == total_4,
                     "WorkMeter totals are bit-identical across thread "
                     "counts");

  // Disarmed-path tax: the per-call cost every library user pays when no
  // bench is metering. Must be allocation-free and a handful of ns.
  work::set_armed(false);
  constexpr int kAdds = 200000;
  const std::uint64_t a0 = gw_benchalloc::heap_allocs();
  const auto t0 = std::chrono::steady_clock::now();
  for (int k = 0; k < kAdds; ++k) {
    work::add(work::Kind::kUsersEvaluated, 1);
    benchmark::ClobberMemory();
  }
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t disarmed_allocs = gw_benchalloc::heap_allocs() - a0;
  const double disarmed_ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count() / kAdds;
  work::set_armed(was_armed || true);  // measured reps stay metered
  gw::bench::table_header({"meter mode", "adds", "heap allocs", "ns/add"});
  gw::bench::table_row({"disarmed", std::to_string(kAdds),
                        std::to_string(disarmed_allocs),
                        gw::bench::fmt(disarmed_ns)});
  gw::bench::verdict(disarmed_allocs == 0,
                     "disarmed work::add performs zero heap allocations");
  // Same generous ceiling philosophy as the flight recorder: one relaxed
  // load and a predicted branch clears 250ns on any host.
  gw::bench::verdict(disarmed_ns < 250.0,
                     "disarmed work::add costs < 250ns (" +
                         gw::bench::fmt(disarmed_ns) + "ns measured)");
}

// ---- E-SIMD: aligned SoA lanes and vectorized fills --------------------

/// Times `body` (returning elements processed per call) for ~10ms and
/// returns ns/element. Plain chrono loop, same shape as measure_kernel but
/// without the perf-counter bracket — these kernels are nanosecond-scale.
template <typename Body>
double ns_per_element(Body&& body) {
  using clock = std::chrono::steady_clock;
  constexpr auto kBudget = std::chrono::milliseconds(10);
  body();  // warm
  std::uint64_t elements = 0;
  const auto t0 = clock::now();
  auto t1 = t0;
  do {
    elements += body();
    t1 = clock::now();
  } while (t1 - t0 < kBudget);
  const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
  return elements > 0 ? ns / static_cast<double>(elements) : 0.0;
}

/// E-SIMD: the aligned-SoA/vectorized evaluation core. Three measurements:
/// (a) the interior broadcast-add kernel on a 64-byte-aligned workspace
/// lane vs a deliberately misaligned buffer, (b) batched jacobian fills vs
/// the per-entry closed forms (the O(n^2)-vs-O(n^3) restructure the SIMD
/// lanes feed), at N=64 and N=4096, (c) the build mode itself — scalar and
/// vector builds run the same section, so the JSON label carries which
/// path produced the numbers.
void run_simd_section() {
  gw::bench::banner(
      "E-SIMD aligned SoA evaluation kernels",
      "DESIGN.md (scalar/vector equivalence)",
      "the aligned workspace lanes and batched fills beat the per-entry "
      "closed forms; aligned lanes are never slower than misaligned ones");

  std::printf("  GW_SIMD build mode: %s (alignment %zu B, lane quantum %zu"
              " doubles)\n",
              core::simd::kEnabled ? "vector" : "scalar",
              core::simd::kAlignment, core::simd::kLaneQuantum);

  // (a) Broadcast add — the serial jacobian's interior kernel — on an
  // aligned workspace lane vs an odd-offset heap buffer.
  core::EvalWorkspace ws;
  gw::bench::table_header({"buffer", "N", "ns/element"});
  double aligned_4096 = 0.0, unaligned_4096 = 0.0;
  for (const std::size_t n : {std::size_t{64}, std::size_t{4096}}) {
    ws.ensure(n);
    const std::span<double> lane = ws.a(n);
    for (std::size_t q = 0; q < n; ++q) lane[q] = 0.5;
    const double aligned = ns_per_element([&]() -> std::uint64_t {
      double* const r = lane.data();
      const double t = 1e-9;
      GW_SIMD_LOOP
      for (std::size_t q = 0; q < n; ++q) r[q] += t;
      benchmark::DoNotOptimize(r);
      benchmark::ClobberMemory();
      return n;
    });
    std::vector<double> misaligned_buf(n + 1, 0.5);
    const double unaligned = ns_per_element([&]() -> std::uint64_t {
      double* const r = misaligned_buf.data() + 1;  // off the 16B malloc grid
      const double t = 1e-9;
      GW_SIMD_LOOP
      for (std::size_t q = 0; q < n; ++q) r[q] += t;
      benchmark::DoNotOptimize(r);
      benchmark::ClobberMemory();
      return n;
    });
    gw::bench::table_row({"aligned lane", std::to_string(n),
                          gw::bench::fmt(aligned, 3)});
    gw::bench::table_row({"misaligned +1", std::to_string(n),
                          gw::bench::fmt(unaligned, 3)});
    if (n == 4096) {
      aligned_4096 = aligned;
      unaligned_4096 = unaligned;
    }
  }
  // Alignment must never hurt; allow generous jitter headroom since both
  // kernels stream from L1.
  gw::bench::verdict(aligned_4096 <= unaligned_4096 * 1.25,
                     "aligned lane broadcast is not slower than the "
                     "misaligned buffer at N=4096");

  // (b) Batched fills vs per-entry closed forms, ns per matrix cell.
  struct SimdCase {
    const char* name;
    std::unique_ptr<core::AllocationFunction> alloc_small;
    std::unique_ptr<core::AllocationFunction> alloc_large;
  };
  const std::size_t kSmall = 64, kLarge = 4096;
  std::vector<SimdCase> cases;
  cases.push_back({"fair_share",
                   std::make_unique<core::FairShareAllocation>(),
                   std::make_unique<core::FairShareAllocation>()});
  cases.push_back({"serial_mm1",
                   std::make_unique<core::GeneralSerialAllocation>(
                       core::GFunction::mm1()),
                   std::make_unique<core::GeneralSerialAllocation>(
                       core::GFunction::mm1())});
  cases.push_back({"w_serial",
                   std::make_unique<core::WeightedSerialAllocation>(
                       ramp_weights(kSmall)),
                   std::make_unique<core::WeightedSerialAllocation>(
                       ramp_weights(kLarge))});
  cases.push_back({"srf",
                   std::make_unique<core::SmallestRateFirstAllocation>(),
                   std::make_unique<core::SmallestRateFirstAllocation>()});
  cases.push_back({"proportional",
                   std::make_unique<core::ProportionalAllocation>(),
                   std::make_unique<core::ProportionalAllocation>()});

  gw::bench::table_header({"discipline", "kernel", "N", "ns/cell"});
  bool batched_wins = true;
  for (const SimdCase& c : cases) {
    const auto rates_small = ramp_rates(kSmall, 0.8);
    const auto rates_large = ramp_rates(kLarge, 0.8);
    numerics::Matrix jac(kSmall, kSmall);
    const double per_entry = ns_per_element([&]() -> std::uint64_t {
      double acc = 0.0;
      for (std::size_t i = 0; i < kSmall; ++i) {
        for (std::size_t j = 0; j < kSmall; ++j) {
          acc += c.alloc_small->partial(i, j, rates_small);
        }
      }
      benchmark::DoNotOptimize(acc);
      return kSmall * kSmall;
    });
    const double batched_small = ns_per_element([&]() -> std::uint64_t {
      c.alloc_small->jacobian_into(rates_small, jac, ws);
      benchmark::DoNotOptimize(jac(0, 0));
      return kSmall * kSmall;
    });
    numerics::Matrix jac_large(kLarge, kLarge);
    const double batched_large = ns_per_element([&]() -> std::uint64_t {
      c.alloc_large->jacobian_into(rates_large, jac_large, ws);
      benchmark::DoNotOptimize(jac_large(0, 0));
      return kLarge * kLarge;
    });
    gw::bench::table_row({c.name, "per-entry partial",
                          std::to_string(kSmall),
                          gw::bench::fmt(per_entry, 2)});
    gw::bench::table_row({c.name, "batched jacobian", std::to_string(kSmall),
                          gw::bench::fmt(batched_small, 2)});
    gw::bench::table_row({c.name, "batched jacobian", std::to_string(kLarge),
                          gw::bench::fmt(batched_large, 2)});
    batched_wins = batched_wins && batched_small < per_entry;
  }
  gw::bench::verdict(batched_wins,
                     "batched jacobian fill beats the per-entry closed form "
                     "per cell for every discipline at N=64");
}

void BM_Eigenvalues(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  numerics::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = 1.0 / static_cast<double>(1 + i + 2 * j);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(numerics::eigenvalues(a));
  }
}
BENCHMARK(BM_Eigenvalues)->Arg(4)->Arg(8)->Arg(12);

void BM_KernelScheduleFire(benchmark::State& state) {
  // Pure event-kernel hot path: self-renewing chains of timers, one pop +
  // one push per fired event at constant heap depth (range = chain
  // count). The 24-byte closure matches a real station/driver capture;
  // time steps come from an inline LCG so the kernel dominates.
  const auto chains = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    std::size_t fired = 0;
    struct Chain {
      sim::Simulator* simulator;
      std::uint64_t lcg;
      std::size_t* fired;
      void operator()() {
        ++*fired;
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        const double dt = 0.5 + static_cast<double>(lcg >> 40) * 0x1p-24;
        simulator->schedule_in(dt, Chain(*this));
      }
    };
    for (std::size_t c = 0; c < chains; ++c) {
      simulator.schedule_in(
          1.0 + static_cast<double>(c) / static_cast<double>(chains),
          Chain{&simulator, 0x9e3779b97f4a7c15ULL * (c + 1), &fired});
    }
    simulator.run_until(50000.0 / static_cast<double>(chains));
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(fired));
  }
}
BENCHMARK(BM_KernelScheduleFire)->Arg(4)->Arg(64)->Arg(1024);

void BM_KernelCancelHeavy(benchmark::State& state) {
  // Retransmit-timer pattern: waves of timers, 3 of 4 cancelled before
  // they fire. Items = schedule operations.
  constexpr std::size_t kPerWave = 4096;
  struct Payload {
    std::size_t* fired;
    std::uint64_t context[3];
    void operator()() const { *fired += 1 + (context[0] & 0); }
  };
  for (auto _ : state) {
    sim::Simulator simulator;
    std::size_t fired = 0;
    std::vector<sim::EventId> ids(kPerWave);
    double base = 0.0;
    for (std::size_t wave = 0; wave < 8; ++wave) {
      for (std::size_t i = 0; i < kPerWave; ++i) {
        ids[i] = simulator.schedule_at(base + 1.0 + static_cast<double>(i),
                                       Payload{&fired, {i, wave, i ^ wave}});
      }
      for (std::size_t i = 0; i < kPerWave; ++i) {
        if (i % 4 != 0) simulator.cancel(ids[i]);
      }
      base += static_cast<double>(kPerWave) + 2.0;
      simulator.run_until(base);
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(8 * kPerWave));
  }
}
BENCHMARK(BM_KernelCancelHeavy);

void BM_SimulatorFifoEvents(benchmark::State& state) {
  // Event throughput of the packet simulator at load 0.7.
  for (auto _ : state) {
    sim::RunOptions options;
    options.warmup = 100.0;
    options.batches = 2;
    options.batch_length = 2000.0;
    options.seed = 42;
    const auto result =
        sim::run_switch(sim::Discipline::kFifo, {0.35, 0.35}, options);
    benchmark::DoNotOptimize(result);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(result.events));
  }
}
BENCHMARK(BM_SimulatorFifoEvents)->Unit(benchmark::kMillisecond);

void BM_SimulatorFairShareEvents(benchmark::State& state) {
  for (auto _ : state) {
    sim::RunOptions options;
    options.warmup = 100.0;
    options.batches = 2;
    options.batch_length = 2000.0;
    options.seed = 42;
    const auto result = sim::run_switch(sim::Discipline::kFairShareOracle,
                                        {0.2, 0.25, 0.25}, options);
    benchmark::DoNotOptimize(result);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(result.events));
  }
}
BENCHMARK(BM_SimulatorFairShareEvents)->Unit(benchmark::kMillisecond);

void BM_SimulatorDrrEvents(benchmark::State& state) {
  for (auto _ : state) {
    sim::RunOptions options;
    options.warmup = 100.0;
    options.batches = 2;
    options.batch_length = 2000.0;
    options.seed = 42;
    const auto result =
        sim::run_switch(sim::Discipline::kDrr, {0.2, 0.25, 0.25}, options);
    benchmark::DoNotOptimize(result);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(result.events));
  }
}
BENCHMARK(BM_SimulatorDrrEvents)->Unit(benchmark::kMillisecond);

void BM_ReplicationScaling(benchmark::State& state) {
  // run_replications across worker threads (range = thread count). On a
  // single-core host this measures engine overhead, not speedup; the
  // statistics are bit-identical at every thread count either way.
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::RunOptions options;
    options.warmup = 100.0;
    options.batches = 2;
    options.batch_length = 1000.0;
    options.seed = 7;
    const auto result = sim::run_replications(sim::Discipline::kFifo,
                                              {0.3, 0.3}, options, 8, threads);
    benchmark::DoNotOptimize(result);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(result.events));
  }
}
BENCHMARK(BM_ReplicationScaling)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

int run() {
  static bool initialized = false;
  if (!initialized) {
    // google-benchmark parses its flags once; reps reuse the parsed state.
    // Initialize() retains the argv pointers, so the storage must outlive
    // this call.
    static std::vector<std::string> args{"bench_micro"};
    for (const auto& arg : gw::bench::passthrough_args()) args.push_back(arg);
    static std::vector<char*> argv;
    argv.reserve(args.size());
    for (auto& arg : args) argv.push_back(arg.data());
    static int argc = static_cast<int>(argv.size());
    benchmark::Initialize(&argc, argv.data());
    initialized = true;
  }
  gw::bench::banner("E-PERF microbench", "DESIGN.md section 4",
                    "google-benchmark microbenchmarks of the library hot "
                    "paths: allocation congestion/jacobian, best response, "
                    "Nash solve, eigenvalues, simulator event throughput.");
  // google-benchmark (<= 1.7.x) crashes on a second RunSpecifiedBenchmarks
  // call in the same process, and it already repeats each benchmark
  // internally until timings stabilize — so later --repeat reps skip it.
  static bool ran_benchmarks = false;
  if (!ran_benchmarks) {
    benchmark::RunSpecifiedBenchmarks();
    ran_benchmarks = true;
    gw::bench::verdict(true, "microbenchmarks completed");
  } else {
    std::printf("  (microbenchmarks run once per process; rep skipped)\n");
    gw::bench::verdict(true, "microbenchmarks completed (first rep)");
  }
  run_eval_section();
  run_flight_section();
  run_roofline_section();
  run_simd_section();
  return gw::bench::failures();
}

}  // namespace

int main(int argc, char** argv) {
  return gw::bench::run_repeated(argc, argv, run, "--benchmark_");
}
