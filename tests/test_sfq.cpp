// Start-time Fair Queueing: deterministic tag mechanics and statistical
// fairness/protection properties.
#include "sim/sfq_station.hpp"

#include <gtest/gtest.h>

#include "core/proportional.hpp"
#include "sim/runner.hpp"

namespace gw::sim {
namespace {

Packet make_packet(std::size_t user, double now, double demand) {
  Packet packet;
  packet.user = user;
  packet.arrival_time = now;
  packet.service_demand = demand;
  packet.remaining = demand;
  return packet;
}

TEST(SfqStation, AlternatesBetweenEquallyBackloggedFlows) {
  Simulator sim;
  QueueTracker tracker(2);
  SfqStation station(sim, tracker, 2);
  sim.schedule_at(0.0, [&] {
    station.arrive(make_packet(0, 0.0, 1.0));  // S=0, F0=1
    station.arrive(make_packet(0, 0.0, 1.0));  // S=1, F0=2
    station.arrive(make_packet(1, 0.0, 1.0));  // S=0, F1=1
    station.arrive(make_packet(1, 0.0, 1.0));  // S=1, F1=2
  });
  sim.run_until(10.0);
  // Start tags 0,0,1,1 with FIFO tie-break: u0@1, u1@2, u0@3, u1@4.
  EXPECT_NEAR(tracker.mean_delay(0), 2.0, 1e-9);
  EXPECT_NEAR(tracker.mean_delay(1), 3.0, 1e-9);
}

TEST(SfqStation, WeightedSharesFavorHeavyWeight) {
  Simulator sim;
  QueueTracker tracker(2);
  SfqStation station(sim, tracker, std::vector<double>{2.0, 1.0});
  // Both flows continuously backlogged with unit packets: flow 0's finish
  // tags advance half as fast, so it gets ~2/3 of the service slots.
  sim.schedule_at(0.0, [&] {
    for (int k = 0; k < 6; ++k) station.arrive(make_packet(0, 0.0, 1.0));
    for (int k = 0; k < 6; ++k) station.arrive(make_packet(1, 0.0, 1.0));
  });
  sim.run_until(9.0);  // 9 service slots
  EXPECT_GT(tracker.departures(0), tracker.departures(1));
}

TEST(SfqStation, NewFlowNotStarvedByOldTags) {
  // The max(v, F_f) rule resets an idle flow's tags to current virtual
  // time: a newcomer is served promptly even after a long busy stretch.
  Simulator sim;
  QueueTracker tracker(2);
  SfqStation station(sim, tracker, 2);
  sim.schedule_at(0.0, [&] {
    for (int k = 0; k < 20; ++k) station.arrive(make_packet(0, 0.0, 1.0));
  });
  sim.schedule_at(10.0, [&] { station.arrive(make_packet(1, 10.0, 1.0)); });
  sim.run_until(40.0);
  // Flow 1's packet jumps close to the head (its start tag equals the
  // current virtual time, far below flow 0's accumulated tags).
  EXPECT_LT(tracker.mean_delay(1), 3.0);
}

TEST(SfqStation, BadInputsThrow) {
  Simulator sim;
  QueueTracker tracker(2);
  EXPECT_THROW(SfqStation(sim, tracker, std::vector<double>{1.0, 0.0}),
               std::invalid_argument);
  SfqStation station(sim, tracker, 2);
  EXPECT_THROW(station.arrive(make_packet(7, 0.0, 1.0)),
               std::invalid_argument);
}

TEST(SfqStation, MatchesProportionalMeansAtModestLoad) {
  // With Poisson inputs below capacity every work-conserving symmetric
  // discipline delivers the proportional mean queues.
  const std::vector<double> rates{0.2, 0.3};
  const core::ProportionalAllocation analytic;
  const auto expected = analytic.congestion(rates);
  RunOptions options;
  options.warmup = 3000.0;
  options.batches = 12;
  options.batch_length = 4000.0;
  options.seed = 97;
  const auto result = run_switch(Discipline::kSfq, rates, options);
  for (std::size_t u = 0; u < 2; ++u) {
    EXPECT_NEAR(result.users[u].mean_queue / expected[u], 1.0, 0.15);
  }
}

TEST(SfqStation, ProtectsLightUserFromFlooder) {
  const std::vector<double> rates{0.1, 1.3};
  RunOptions options;
  options.warmup = 3000.0;
  options.batches = 8;
  options.batch_length = 4000.0;
  options.seed = 101;
  const auto sfq = run_switch(Discipline::kSfq, rates, options);
  const auto fifo = run_switch(Discipline::kFifo, rates, options);
  EXPECT_LT(sfq.users[0].mean_delay, fifo.users[0].mean_delay / 5.0);
  EXPECT_NEAR(sfq.users[0].throughput, 0.1, 0.02);
}

}  // namespace
}  // namespace gw::sim
