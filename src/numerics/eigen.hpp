// Eigenvalues of small dense real (generally nonsymmetric) matrices.
//
// Strategy: Faddeev–LeVerrier to obtain the characteristic polynomial, then
// Durand–Kerner for its complex roots. This is numerically adequate for the
// N x N relaxation matrices studied here (N <= ~16) and is validated against
// analytic spectra in the tests. Power iteration provides an independent
// spectral-radius estimate.
#pragma once

#include <complex>
#include <vector>

#include "numerics/matrix.hpp"

namespace gw::numerics {

/// Characteristic polynomial det(xI - A), lowest degree first, leading
/// coefficient 1. Faddeev–LeVerrier; exact in exact arithmetic.
[[nodiscard]] std::vector<double> characteristic_polynomial(const Matrix& a);

/// All eigenvalues of A (with multiplicity) as complex numbers.
[[nodiscard]] std::vector<std::complex<double>> eigenvalues(const Matrix& a);

/// max |lambda| over the spectrum (via eigenvalues()).
[[nodiscard]] double spectral_radius(const Matrix& a);

/// Spectral-radius estimate by power iteration with random restarts;
/// independent cross-check of spectral_radius for testing. May
/// underestimate for defective matrices (returns the observed growth rate).
[[nodiscard]] double power_iteration_radius(const Matrix& a,
                                            int iterations = 2000,
                                            unsigned seed = 12345);

/// True iff A^n vanishes numerically (n = dimension), i.e. A is nilpotent
/// up to `tolerance` relative to max(1, max-abs growth of the powers).
[[nodiscard]] bool is_nilpotent(const Matrix& a, double tolerance = 1e-8);

/// Smallest k with ||A^k||_max <= tolerance, or -1 if none up to n.
[[nodiscard]] int nilpotency_index(const Matrix& a, double tolerance = 1e-8);

}  // namespace gw::numerics
