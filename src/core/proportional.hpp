// The proportional allocation function, realized by FIFO (and by any
// symmetric non-discriminating discipline such as LIFO or PS):
//   C_i(r) = r_i / (1 - sum_j r_j).
// Every user with positive rate saturates together when the total load
// reaches 1 — the absence of insulation that drives the paper's negative
// results for FIFO.
#pragma once

#include "core/allocation.hpp"

namespace gw::core {

class ProportionalAllocation final : public AllocationFunction {
 public:
  [[nodiscard]] std::string name() const override { return "Proportional(FIFO)"; }

  void congestion_into(std::span<const double> rates, std::span<double> out,
                       EvalWorkspace& ws) const override;
  [[nodiscard]] double congestion_of_into(std::size_t i,
                                          std::span<const double> rates,
                                          EvalWorkspace& ws) const override;
  void jacobian_into(std::span<const double> rates, numerics::Matrix& out,
                     EvalWorkspace& ws) const override;
  void second_partials_into(std::span<const double> rates,
                            numerics::Matrix& out,
                            EvalWorkspace& ws) const override;
  [[nodiscard]] double partial(std::size_t i, std::size_t j,
                               const std::vector<double>& rates) const override;
  [[nodiscard]] double second_partial(
      std::size_t i, std::size_t j,
      const std::vector<double>& rates) const override;
  [[nodiscard]] bool congestion_classes_into(const ClassedPopulation& pop,
                                             std::span<double> out,
                                             EvalWorkspace& ws) const override;
  [[nodiscard]] bool jacobian_classes_into(const ClassedPopulation& pop,
                                           numerics::Matrix& cross,
                                           std::span<double> own,
                                           EvalWorkspace& ws) const override;
  /// O(1) classed scan: stages the opponents' total load; each probe is a
  /// reciprocal away.
  [[nodiscard]] bool scan_prepare_classes(std::size_t a,
                                          const ClassedPopulation& pop,
                                          EvalWorkspace& ws) const override;
  [[nodiscard]] double scan_congestion_of_class(
      std::size_t a, double x, const ClassedPopulation& pop,
      EvalWorkspace& ws) const override;
};

}  // namespace gw::core
