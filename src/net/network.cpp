#include "net/network.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace gw::net {

namespace {
constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
}

NetworkAllocation::NetworkAllocation(
    std::vector<std::shared_ptr<const core::AllocationFunction>>
        switch_allocations,
    std::vector<Route> routes)
    : NetworkAllocation(
          std::move(switch_allocations), std::move(routes),
          std::vector<double>()) {}

NetworkAllocation::NetworkAllocation(
    std::vector<std::shared_ptr<const core::AllocationFunction>>
        switch_allocations,
    std::vector<Route> routes, std::vector<double> capacities)
    : switch_allocations_(std::move(switch_allocations)),
      routes_(std::move(routes)),
      capacities_(std::move(capacities)) {
  const std::size_t n_switches = switch_allocations_.size();
  if (capacities_.empty()) {
    capacities_.assign(n_switches, 1.0);
  }
  if (capacities_.size() != n_switches) {
    throw std::invalid_argument("NetworkAllocation: capacity count");
  }
  for (const double mu : capacities_) {
    if (mu <= 0.0) {
      throw std::invalid_argument("NetworkAllocation: capacity <= 0");
    }
  }
  if (n_switches == 0 || routes_.empty()) {
    throw std::invalid_argument("NetworkAllocation: empty network");
  }
  for (const auto& alloc : switch_allocations_) {
    if (alloc == nullptr) {
      throw std::invalid_argument("NetworkAllocation: null switch discipline");
    }
  }
  users_at_switch_.resize(n_switches);
  for (std::size_t i = 0; i < routes_.size(); ++i) {
    auto route = routes_[i];
    std::sort(route.begin(), route.end());
    route.erase(std::unique(route.begin(), route.end()), route.end());
    if (route.empty()) {
      throw std::invalid_argument("NetworkAllocation: user with empty route");
    }
    for (const std::size_t a : route) {
      if (a >= n_switches) {
        throw std::invalid_argument("NetworkAllocation: bad switch id");
      }
      users_at_switch_[a].push_back(i);
    }
    routes_[i] = std::move(route);
  }
  local_index_.assign(n_switches,
                      std::vector<std::size_t>(routes_.size(), kNpos));
  for (std::size_t a = 0; a < n_switches; ++a) {
    for (std::size_t k = 0; k < users_at_switch_[a].size(); ++k) {
      local_index_[a][users_at_switch_[a][k]] = k;
    }
  }
}

std::string NetworkAllocation::name() const {
  return "Network(" + std::to_string(switches()) + " switches, " +
         switch_allocations_.front()->name() + ")";
}

std::vector<double> NetworkAllocation::local_rates(
    std::size_t a, const std::vector<double>& rates) const {
  const auto& crossing = users_at_switch_[a];
  std::vector<double> local(crossing.size());
  for (std::size_t k = 0; k < crossing.size(); ++k) {
    local[k] = rates[crossing[k]] / capacities_[a];
  }
  return local;
}

void NetworkAllocation::local_rates_into(std::size_t a,
                                         std::span<const double> rates,
                                         std::span<double> local) const {
  const auto& crossing = users_at_switch_[a];
  for (std::size_t k = 0; k < crossing.size(); ++k) {
    local[k] = rates[crossing[k]] / capacities_[a];
  }
}

void NetworkAllocation::congestion_into(std::span<const double> rates,
                                        std::span<double> out,
                                        core::EvalWorkspace& ws) const {
  if (rates.size() != routes_.size()) {
    throw std::invalid_argument("NetworkAllocation: rate vector size");
  }
  ws.ensure(rates.size());
  for (auto& c : out) c = 0.0;
  for (std::size_t a = 0; a < switch_allocations_.size(); ++a) {
    const auto& crossing = users_at_switch_[a];
    if (crossing.empty()) continue;
    const std::span<double> local = ws.a(crossing.size());
    const std::span<double> local_out = ws.b(crossing.size());
    local_rates_into(a, rates, local);
    switch_allocations_[a]->congestion_into(local, local_out, ws.child());
    for (std::size_t k = 0; k < crossing.size(); ++k) {
      out[crossing[k]] += local_out[k];
    }
  }
}

double NetworkAllocation::congestion_of_into(std::size_t i,
                                             std::span<const double> rates,
                                             core::EvalWorkspace& ws) const {
  if (rates.size() != routes_.size()) {
    throw std::invalid_argument("NetworkAllocation: rate vector size");
  }
  ws.ensure(rates.size());
  // Only the switches on user i's route contribute to C_i.
  double acc = 0.0;
  for (const std::size_t a : routes_[i]) {
    const auto& crossing = users_at_switch_[a];
    const std::span<double> local = ws.a(crossing.size());
    local_rates_into(a, rates, local);
    acc += switch_allocations_[a]->congestion_of_into(local_index_[a][i], local,
                                                      ws.child());
  }
  return acc;
}

double NetworkAllocation::partial(std::size_t i, std::size_t j,
                                  const std::vector<double>& rates) const {
  validate_rates(rates);
  double acc = 0.0;
  for (std::size_t a = 0; a < switch_allocations_.size(); ++a) {
    const std::size_t li = local_index_[a][i];
    const std::size_t lj = local_index_[a][j];
    if (li == kNpos || lj == kNpos) continue;
    acc += switch_allocations_[a]->partial(li, lj, local_rates(a, rates)) /
           capacities_[a];
  }
  return acc;
}

double NetworkAllocation::second_partial(std::size_t i, std::size_t j,
                                         const std::vector<double>& rates) const {
  validate_rates(rates);
  double acc = 0.0;
  for (std::size_t a = 0; a < switch_allocations_.size(); ++a) {
    const std::size_t li = local_index_[a][i];
    const std::size_t lj = local_index_[a][j];
    if (li == kNpos || lj == kNpos) continue;
    acc += switch_allocations_[a]->second_partial(li, lj,
                                                  local_rates(a, rates)) /
           (capacities_[a] * capacities_[a]);
  }
  return acc;
}

std::shared_ptr<NetworkAllocation> make_tandem(
    const std::shared_ptr<const core::AllocationFunction>& discipline,
    std::size_t n_switches,
    const std::vector<std::pair<std::size_t, std::size_t>>& user_spans) {
  std::vector<std::shared_ptr<const core::AllocationFunction>> allocations(
      n_switches, discipline);
  std::vector<Route> routes;
  routes.reserve(user_spans.size());
  for (const auto& [first, last] : user_spans) {
    if (first > last || last >= n_switches) {
      throw std::invalid_argument("make_tandem: bad span");
    }
    Route route;
    for (std::size_t a = first; a <= last; ++a) route.push_back(a);
    routes.push_back(std::move(route));
  }
  return std::make_shared<NetworkAllocation>(std::move(allocations),
                                             std::move(routes));
}

}  // namespace gw::net
