// Robust aggregation over repeated measurements (benchstat-style).
//
// Bench runs repeat each experiment body N times; these helpers reduce the
// per-rep samples to order statistics that survive scheduler noise (median,
// MAD, IQR) and decide whether two sample sets differ by more than noise
// (Mann-Whitney U rank test, normal approximation with tie correction — no
// external dependencies). Consumed by bench_util's --repeat timing block
// and by the gw-benchstat merge/compare CLI.
#pragma once

#include <cstddef>
#include <vector>

namespace gw::obs::stats {

/// Sample median (average of the two central order statistics for even n);
/// NaN on an empty sample.
[[nodiscard]] double median(std::vector<double> xs);

/// Median absolute deviation from the median (unscaled); NaN on empty.
[[nodiscard]] double mad(const std::vector<double>& xs);

/// Empirical quantile with linear interpolation between order statistics
/// (q clamped to [0,1]); NaN on empty.
[[nodiscard]] double quantile(std::vector<double> xs, double q);

/// Flags[i] is true when xs[i] lies outside [q1 - 1.5*IQR, q3 + 1.5*IQR]
/// (Tukey's fence). All-false for n < 4 — too few points to call outliers.
[[nodiscard]] std::vector<bool> iqr_outliers(const std::vector<double>& xs);

/// Order-statistic summary of one metric's repeated measurements.
struct Summary {
  std::size_t n = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double mad = 0.0;
  double q1 = 0.0;
  double q3 = 0.0;
  double iqr = 0.0;
  std::size_t outliers = 0;  ///< count flagged by iqr_outliers()
};

/// All-zero Summary (n = 0) on an empty sample.
[[nodiscard]] Summary summarize(const std::vector<double>& xs);

/// Two-sided Mann-Whitney U rank test.
struct MannWhitney {
  double u = 0.0;        ///< U statistic of the first sample
  double z = 0.0;        ///< normal-approximation z score (tie-corrected)
  double p_value = 1.0;  ///< two-sided; 1.0 when a side is empty or all tied
};

/// Tests whether `a` and `b` come from distributions with different
/// location. Normal approximation with average ranks for ties, tie-corrected
/// variance, and 0.5 continuity correction; exactly tied pooled samples
/// (zero variance) report p = 1.
[[nodiscard]] MannWhitney mann_whitney_u(const std::vector<double>& a,
                                         const std::vector<double>& b);

/// benchstat-style old-vs-new verdict for one metric.
struct Comparison {
  double old_median = 0.0;
  double new_median = 0.0;
  double delta_pct = 0.0;  ///< (new - old) / old * 100; 0 when old == 0
  double p_value = 1.0;
  bool significant = false;  ///< p < alpha AND |delta_pct| >= threshold_pct
};

/// Compares repeated measurements of one metric across two runs. The change
/// is `significant` only when the rank test rejects at `alpha` AND the
/// median moved by at least `threshold_pct` percent (guards against
/// statistically-detectable-but-tiny shifts).
[[nodiscard]] Comparison compare_samples(const std::vector<double>& old_xs,
                                         const std::vector<double>& new_xs,
                                         double threshold_pct = 0.0,
                                         double alpha = 0.05);

}  // namespace gw::obs::stats
