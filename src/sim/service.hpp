// Service-demand distributions for packet sources (M/G/1 experiments,
// paper footnote 5).
//
// Parameterized by mean and shape; hyperexponential uses the standard
// balanced-means two-phase fit to a target squared coefficient of
// variation (scv > 1), Erlang-k covers scv = 1/k < 1, deterministic is
// scv = 0.
#pragma once

#include "numerics/rng.hpp"

namespace gw::sim {

enum class ServiceKind {
  kExponential,
  kDeterministic,
  kErlang,
  kHyperexponential,
};

struct ServiceSpec {
  ServiceKind kind = ServiceKind::kExponential;
  double mean = 1.0;
  int erlang_k = 2;       ///< phases for kErlang
  double hyper_p1 = 0.5;  ///< phase-1 probability for kHyperexponential
  double hyper_rate1 = 1.0;
  double hyper_rate2 = 1.0;

  [[nodiscard]] static ServiceSpec exponential(double mean = 1.0);
  [[nodiscard]] static ServiceSpec deterministic(double mean = 1.0);
  [[nodiscard]] static ServiceSpec erlang(int k, double mean = 1.0);
  /// Balanced-means H2 with the given scv (> 1).
  [[nodiscard]] static ServiceSpec hyperexponential(double scv,
                                                    double mean = 1.0);

  /// Draws one service demand.
  [[nodiscard]] double sample(numerics::Rng& rng) const;

  /// Squared coefficient of variation of the distribution.
  [[nodiscard]] double scv() const;
};

}  // namespace gw::sim
