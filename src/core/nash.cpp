#include "core/nash.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "numerics/optimize.hpp"
#include "numerics/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

namespace gw::core {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

void validate_sizes(const UtilityProfile& profile,
                    const std::vector<double>& rates) {
  if (profile.size() != rates.size() || profile.empty()) {
    throw std::invalid_argument("nash: profile / rate size mismatch");
  }
  for (const auto& u : profile) {
    if (u == nullptr) throw std::invalid_argument("nash: null utility");
  }
}

}  // namespace

BestResponse best_response(const AllocationFunction& alloc,
                           const Utility& utility, std::vector<double> rates,
                           std::size_t i, const BestResponseOptions& options) {
  if (i >= rates.size()) throw std::invalid_argument("best_response: bad index");
  auto payoff = [&](double x) {
    rates[i] = x;
    const double c = alloc.congestion_of(i, rates);
    return utility.value(x, c);
  };
  numerics::Optimize1DOptions opt;
  opt.scan_points = options.scan_points;
  const auto found =
      numerics::maximize_scan(payoff, options.r_min, options.r_max, opt);
  return {found.x, found.value};
}

NashResult solve_nash(const AllocationFunction& alloc,
                      const UtilityProfile& profile, std::vector<double> start,
                      const NashOptions& options) {
  validate_sizes(profile, start);
  auto& registry = obs::default_registry();
  static auto& solve_seconds =
      registry.histogram("core.nash.solve_seconds", 0.0, 2.0, 128);
  const obs::ScopedTimer timer(solve_seconds);
  const std::size_t n = start.size();
  numerics::Rng rng(options.seed);
  NashResult result;
  result.rates = std::move(start);

  for (int it = 0; it < options.max_iterations; ++it) {
    double max_move = 0.0;
    if (options.order == UpdateOrder::kSynchronous) {
      std::vector<double> responses(n);
      for (std::size_t i = 0; i < n; ++i) {
        responses[i] =
            best_response(alloc, *profile[i], result.rates, i,
                          options.best_response)
                .rate;
      }
      for (std::size_t i = 0; i < n; ++i) {
        const double next = (1.0 - options.damping) * result.rates[i] +
                            options.damping * responses[i];
        max_move = std::max(max_move, std::abs(next - result.rates[i]));
        result.rates[i] = next;
      }
    } else {
      std::vector<std::size_t> order(n);
      if (options.order == UpdateOrder::kRandomPermutation) {
        order = rng.permutation(n);
      } else {
        for (std::size_t i = 0; i < n; ++i) order[i] = i;
      }
      for (const std::size_t i : order) {
        const double response =
            best_response(alloc, *profile[i], result.rates, i,
                          options.best_response)
                .rate;
        const double next = (1.0 - options.damping) * result.rates[i] +
                            options.damping * response;
        max_move = std::max(max_move, std::abs(next - result.rates[i]));
        result.rates[i] = next;
      }
    }
    result.iterations = it + 1;
    result.max_move = max_move;
    if (max_move <= options.tolerance) {
      result.converged = true;
      break;
    }
  }
  registry.counter("core.nash.solves").inc();
  registry.counter("core.nash.iterations_total")
      .inc(static_cast<std::uint64_t>(result.iterations));
  registry.counter("core.nash.best_responses")
      .inc(static_cast<std::uint64_t>(result.iterations) * n);
  registry.histogram("core.nash.iterations_per_solve", 0.0, 512.0, 64)
      .observe(result.iterations);
  if (!result.converged) registry.counter("core.nash.non_converged").inc();
  if (auto* trace = obs::active_trace()) {
    trace->instant("core",
                   result.converged ? "nash solve converged"
                                    : "nash solve hit max_iterations",
                   static_cast<double>(obs::wall_now_us()), "iterations",
                   static_cast<double>(result.iterations));
  }
  return result;
}

std::vector<double> fdc_residuals(const AllocationFunction& alloc,
                                  const UtilityProfile& profile,
                                  const std::vector<double>& rates) {
  validate_sizes(profile, rates);
  const auto congestion = alloc.congestion(rates);
  std::vector<double> residuals(rates.size(), kNan);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (!std::isfinite(congestion[i])) continue;
    const double m = profile[i]->marginal_ratio(rates[i], congestion[i]);
    const double slope = alloc.partial(i, i, rates);
    if (std::isfinite(m) && std::isfinite(slope)) residuals[i] = m + slope;
  }
  return residuals;
}

bool is_nash(const AllocationFunction& alloc, const UtilityProfile& profile,
             const std::vector<double>& rates, double utility_slack,
             const BestResponseOptions& options) {
  validate_sizes(profile, rates);
  const auto congestion = alloc.congestion(rates);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double current = profile[i]->value(rates[i], congestion[i]);
    const auto response = best_response(alloc, *profile[i], rates, i, options);
    if (response.utility > current + utility_slack) return false;
  }
  return true;
}

double fdc_jacobian_entry(const AllocationFunction& alloc,
                          const UtilityProfile& profile,
                          const std::vector<double>& rates, std::size_t i,
                          std::size_t j) {
  const auto congestion = alloc.congestion(rates);
  const double r = rates[i];
  const double c = congestion[i];
  const Utility& u = *profile[i];
  const double ur = u.du_dr(r, c);
  const double uc = u.du_dc(r, c);
  const double urr = u.d2u_dr2(r, c);
  const double ucc = u.d2u_dc2(r, c);
  const double urc = u.d2u_drdc(r, c);
  // M = ur / uc; dM/dr = (urr uc - ur urc) / uc^2, dM/dc analogous.
  const double dm_dr = (urr * uc - ur * urc) / (uc * uc);
  const double dm_dc = (urc * uc - ur * ucc) / (uc * uc);
  const double dci_drj = alloc.partial(i, j, rates);
  const double d2ci = alloc.second_partial(i, j, rates);
  double entry = dm_dc * dci_drj + d2ci;
  if (i == j) entry += dm_dr;
  return entry;
}

numerics::Matrix relaxation_matrix(const AllocationFunction& alloc,
                                   const UtilityProfile& profile,
                                   const std::vector<double>& rates) {
  validate_sizes(profile, rates);
  const std::size_t n = rates.size();
  numerics::Matrix a(n, n);
  std::vector<double> diag(n);
  for (std::size_t j = 0; j < n; ++j) {
    diag[j] = fdc_jacobian_entry(alloc, profile, rates, j, j);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) {
        a(i, j) = 0.0;
      } else {
        a(i, j) = -fdc_jacobian_entry(alloc, profile, rates, i, j) / diag[j];
      }
    }
  }
  return a;
}

NewtonDynamicsResult newton_relaxation(const AllocationFunction& alloc,
                                       const UtilityProfile& profile,
                                       std::vector<double> start,
                                       int max_iterations, double tolerance) {
  validate_sizes(profile, start);
  const std::size_t n = start.size();
  NewtonDynamicsResult result;
  result.trajectory.push_back(start);
  std::vector<double> rates = std::move(start);
  for (int it = 0; it < max_iterations; ++it) {
    const auto residuals = fdc_residuals(alloc, profile, rates);
    double max_residual = 0.0;
    for (const double e : residuals) {
      if (std::isnan(e)) {
        max_residual = std::numeric_limits<double>::infinity();
      } else {
        max_residual = std::max(max_residual, std::abs(e));
      }
    }
    result.iterations = it;
    if (max_residual <= tolerance) {
      result.converged = true;
      return result;
    }
    std::vector<double> next = rates;
    for (std::size_t i = 0; i < n; ++i) {
      if (std::isnan(residuals[i])) continue;
      const double slope = fdc_jacobian_entry(alloc, profile, rates, i, i);
      if (slope == 0.0 || !std::isfinite(slope)) continue;
      double candidate = rates[i] - residuals[i] / slope;
      candidate = std::clamp(candidate, 1e-9, 0.9999);
      next[i] = candidate;
    }
    rates = std::move(next);
    result.trajectory.push_back(rates);
  }
  obs::default_registry()
      .counter("core.nash.newton_iterations_total")
      .inc(static_cast<std::uint64_t>(result.iterations));
  return result;
}

std::vector<std::vector<double>> find_equilibria(
    const AllocationFunction& alloc, const UtilityProfile& profile,
    int n_starts, unsigned seed, const NashOptions& options,
    double distinct_tolerance) {
  const std::size_t n = profile.size();
  numerics::Rng rng(seed);
  std::vector<std::vector<double>> found;
  auto& restarts = obs::default_registry().counter("core.nash.restarts");
  for (int s = 0; s < n_starts; ++s) {
    restarts.inc();
    if (auto* trace = obs::active_trace()) {
      trace->instant("core", "nash multistart restart",
                     static_cast<double>(obs::wall_now_us()), "start",
                     static_cast<double>(s));
    }
    // Random interior start: raw uniforms rescaled to a random total < 0.95.
    std::vector<double> start(n);
    double total = 0.0;
    for (auto& x : start) {
      x = rng.uniform(0.01, 1.0);
      total += x;
    }
    const double target = rng.uniform(0.05, 0.95);
    for (auto& x : start) x *= target / total;

    const auto solved = solve_nash(alloc, profile, start, options);
    if (!solved.converged) continue;
    if (!is_nash(alloc, profile, solved.rates, 1e-6,
                 options.best_response)) {
      continue;
    }
    bool duplicate = false;
    for (const auto& existing : found) {
      double distance = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        distance = std::max(distance, std::abs(existing[i] - solved.rates[i]));
      }
      if (distance <= distinct_tolerance) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) found.push_back(solved.rates);
  }
  return found;
}

}  // namespace gw::core
