// Shared formatting helpers for the experiment harness binaries.
#pragma once

#include <string>
#include <vector>

namespace gw::bench {

/// Prints the experiment banner (id, paper reference, claim under test).
void banner(const std::string& experiment_id, const std::string& paper_ref,
            const std::string& claim);

/// Prints a table header / row with fixed-width columns.
void table_header(const std::vector<std::string>& columns);
void table_row(const std::vector<std::string>& cells);

/// Formats a double compactly ("0.1235", "inf").
[[nodiscard]] std::string fmt(double value, int precision = 4);

/// Prints a PASS/FAIL verdict line for the qualitative shape check.
void verdict(bool pass, const std::string& description);

/// Returns the number of verdicts that failed so far (process exit code).
[[nodiscard]] int failures();

}  // namespace gw::bench
