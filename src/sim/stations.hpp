// Packet-level service disciplines at a single unit-rate server.
//
// Every station reports occupancy changes and departures to a
// QueueTracker, whose per-user time-average occupancy is the empirical
// counterpart of the allocation functions in gw::core:
//   * FIFO, preemptive LIFO and PS all realize the proportional
//     allocation C_i = r_i / (1 - sum r) in the M/M/1 setting;
//   * PreemptivePriorityStation realizes the telescoping per-class form
//     L_k = g(sigma_k) - g(sigma_{k-1});
//   * FairShareStation (see fair_share_station.hpp) composes priority
//     service with Table 1 thinning to realize C^FS.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "sim/packet.hpp"
#include "sim/simulator.hpp"
#include "sim/tracker.hpp"

namespace gw::sim {

class Station {
 public:
  Station(Simulator& sim, QueueTracker& tracker)
      : sim_(sim), tracker_(tracker) {}
  virtual ~Station() = default;
  Station(const Station&) = delete;
  Station& operator=(const Station&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Hands a packet to the station at the current simulation time.
  virtual void arrive(Packet packet) = 0;

  /// Installs a next-hop hook invoked with every departing packet (used to
  /// chain stations into a tandem network, see sim/tandem.hpp). Virtual:
  /// wrapper stations (FairShareStation) forward it to their inner engine.
  virtual void set_next_hop(std::function<void(const Packet&)> hook) {
    next_hop_ = std::move(hook);
  }

 protected:
  void note_arrival(const Packet& packet) {
    tracker_.on_change(sim_.now(), packet.user, +1);
  }
  void note_departure(const Packet& packet) {
    tracker_.on_change(sim_.now(), packet.user, -1);
    tracker_.on_departure(packet.user, sim_.now() - packet.arrival_time);
    if (next_hop_) next_hop_(packet);
  }

  Simulator& sim_;
  QueueTracker& tracker_;

 private:
  std::function<void(const Packet&)> next_hop_;
};

/// First-in first-out, non-preemptive.
class FifoStation final : public Station {
 public:
  using Station::Station;
  [[nodiscard]] std::string name() const override { return "FIFO"; }
  void arrive(Packet packet) override;

 private:
  void start_service();
  void complete();

  std::deque<Packet> queue_;
  bool busy_ = false;
  EventId completion_ = 0;
};

/// Last-in first-out with preemptive resume.
class LifoPreemptStation final : public Station {
 public:
  using Station::Station;
  [[nodiscard]] std::string name() const override { return "LIFO-PR"; }
  void arrive(Packet packet) override;

 private:
  void serve_top();
  void complete();

  std::vector<Packet> stack_;  ///< back() is in service
  bool busy_ = false;
  double service_start_ = 0.0;
  EventId completion_ = 0;
};

/// Exact egalitarian processor sharing: k jobs each progress at rate 1/k.
class PsStation final : public Station {
 public:
  using Station::Station;
  [[nodiscard]] std::string name() const override { return "PS"; }
  void arrive(Packet packet) override;

 private:
  void age_jobs();
  void reschedule();
  void complete();

  std::vector<Packet> jobs_;
  double last_progress_ = 0.0;
  EventId completion_ = 0;
};

/// Non-preemptive (HOL) static priority: the packet in service always
/// finishes; at each completion the head of the highest backlogged class
/// goes next (Cobham's model).
class HolPriorityStation final : public Station {
 public:
  HolPriorityStation(Simulator& sim, QueueTracker& tracker,
                     std::size_t levels);
  [[nodiscard]] std::string name() const override { return "HOL-Prio"; }
  void arrive(Packet packet) override;

 private:
  void serve_next();
  void complete();

  std::vector<std::deque<Packet>> levels_;
  bool busy_ = false;
  Packet in_service_{};
  EventId completion_ = 0;
};

/// Preemptive-resume static priority; Packet::priority selects the class
/// (0 = highest). FIFO within a class.
class PreemptivePriorityStation final : public Station {
 public:
  PreemptivePriorityStation(Simulator& sim, QueueTracker& tracker,
                            std::size_t levels);
  [[nodiscard]] std::string name() const override { return "PreemptPrio"; }
  void arrive(Packet packet) override;

 private:
  void serve_next();
  void complete();

  std::vector<std::deque<Packet>> levels_;
  bool busy_ = false;
  Packet in_service_{};
  double service_start_ = 0.0;
  EventId completion_ = 0;
};

}  // namespace gw::sim
