// Cross-module integration tests: the paper's headline claims, each
// exercised through several subsystems at once.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/closed_forms.hpp"
#include "core/fair_share.hpp"
#include "core/nash.hpp"
#include "core/proportional.hpp"
#include "numerics/eigen.hpp"
#include "sim/runner.hpp"

namespace gw {
namespace {

using core::FairShareAllocation;
using core::ProportionalAllocation;
using core::make_linear;
using core::uniform_profile;

TEST(Integration, Theorem7FifoLeadingEigenvalueClosedForm) {
  // N identical users with U = r - gamma c under the proportional
  // allocation: at the symmetric point, dE_i/dr_j has off-diagonal
  // (u + 2r)/u^3 and diagonal (2u + 2r)/u^3, so the relaxation matrix is
  // -beta (J - I) with beta = (u + 2r)/(2u + 2r) and leading eigenvalue
  // -beta (N - 1). The paper quotes the high-utilization limit beta -> 1
  // (gamma -> 0), i.e. eigenvalue 1 - N; see the companion test below.
  const auto alloc = std::make_shared<ProportionalAllocation>();
  for (const std::size_t n : {2u, 3u, 5u}) {
    const auto profile = uniform_profile(make_linear(1.0, 0.25), n);
    const auto nash = core::fifo_linear_symmetric_nash(0.25, n);
    const std::vector<double> rates(n, nash.rate);
    const auto a = core::relaxation_matrix(*alloc, profile, rates);
    const double beta = (nash.idle + 2.0 * nash.rate) /
                        (2.0 * nash.idle + 2.0 * nash.rate);
    double most_negative = 0.0;
    for (const auto& lambda : numerics::eigenvalues(a)) {
      most_negative = std::min(most_negative, lambda.real());
    }
    EXPECT_NEAR(most_negative, -beta * static_cast<double>(n - 1), 1e-6)
        << "n=" << n;
  }
}

TEST(Integration, Theorem7FifoEigenvalueApproachesOneMinusNAtHighLoad) {
  // As gamma -> 0 utilization -> 1 and beta -> 1: the paper's quoted
  // leading eigenvalue 1 - N is recovered in that limit.
  const auto alloc = std::make_shared<ProportionalAllocation>();
  const double gamma = 1e-4;
  for (const std::size_t n : {2u, 3u, 5u}) {
    const auto profile = uniform_profile(make_linear(1.0, gamma), n);
    const auto nash = core::fifo_linear_symmetric_nash(gamma, n);
    const std::vector<double> rates(n, nash.rate);
    const auto a = core::relaxation_matrix(*alloc, profile, rates);
    double most_negative = 0.0;
    for (const auto& lambda : numerics::eigenvalues(a)) {
      most_negative = std::min(most_negative, lambda.real());
    }
    EXPECT_NEAR(most_negative / (1.0 - static_cast<double>(n)), 1.0, 2e-2)
        << "n=" << n;
  }
}

TEST(Integration, Theorem7FsRelaxationMatrixNilpotent) {
  const auto alloc = std::make_shared<FairShareAllocation>();
  const core::UtilityProfile profile{
      make_linear(1.0, 0.15), make_linear(1.0, 0.3), make_linear(1.0, 0.5),
      make_linear(1.0, 0.7)};
  const auto result = core::solve_nash(*alloc, profile,
                                       std::vector<double>(4, 0.05));
  ASSERT_TRUE(result.converged);
  const auto a = core::relaxation_matrix(*alloc, profile, result.rates);
  EXPECT_TRUE(numerics::is_nilpotent(a, 1e-6));
  EXPECT_NEAR(numerics::spectral_radius(a), 0.0, 1e-3);
}

TEST(Integration, Theorem7FifoNewtonDynamicsDivergeForLargeN) {
  // |leading eigenvalue| = N - 1 > 1: synchronous Newton self-optimization
  // is linearly unstable under FIFO for N > 2.
  const auto alloc = std::make_shared<ProportionalAllocation>();
  const std::size_t n = 4;
  const auto profile = uniform_profile(make_linear(1.0, 0.25), n);
  const auto nash = core::fifo_linear_symmetric_nash(0.25, n);
  // Perturb asymmetrically off the equilibrium.
  std::vector<double> start(n, nash.rate);
  start[0] *= 1.02;
  start[1] *= 0.98;
  const auto dynamics = core::newton_relaxation(*alloc, profile, start, 40,
                                                1e-10);
  EXPECT_FALSE(dynamics.converged);
}

TEST(Integration, AnalyticNashMatchesSimulatedCongestion) {
  // Solve the FS Nash analytically, then run the packet switch at those
  // rates: measured congestion must match the congestion the solver
  // assumed, closing the loop between gw::core and gw::sim.
  const auto alloc = std::make_shared<FairShareAllocation>();
  const core::UtilityProfile profile{make_linear(1.0, 0.2),
                                     make_linear(1.0, 0.5)};
  const auto nash = core::solve_nash(*alloc, profile, {0.1, 0.1});
  ASSERT_TRUE(nash.converged);
  const auto analytic_c = alloc->congestion(nash.rates);

  sim::RunOptions options;
  options.warmup = 2000.0;
  options.batches = 12;
  options.batch_length = 2500.0;
  options.seed = 1234;
  const auto run =
      sim::run_switch(sim::Discipline::kFairShareOracle, nash.rates, options);
  for (std::size_t u = 0; u < 2; ++u) {
    EXPECT_NEAR(run.users[u].mean_queue / analytic_c[u], 1.0, 0.12)
        << "user " << u;
  }
}

TEST(Integration, PriceOfAnarchyOrderingFifoVsFs) {
  // For every N and gamma tried: FS Nash utility == Pareto > FIFO Nash.
  for (const double gamma : {0.1, 0.25, 0.5}) {
    for (const std::size_t n : {2u, 4u, 8u}) {
      const double ratio = core::fifo_efficiency_ratio(gamma, n);
      EXPECT_LT(ratio, 1.0) << "gamma " << gamma << " n " << n;
      EXPECT_GT(ratio, 0.2) << "gamma " << gamma << " n " << n;
    }
  }
}

TEST(Integration, SubsystemNashConsistentWithFullNash) {
  // Freeze user 0 at its equilibrium rate; the remaining users'
  // equilibrium in the induced subsystem reproduces the full equilibrium.
  const auto alloc = std::make_shared<FairShareAllocation>();
  const core::UtilityProfile profile{make_linear(1.0, 0.2),
                                     make_linear(1.0, 0.35),
                                     make_linear(1.0, 0.5)};
  const auto full = core::solve_nash(*alloc, profile, {0.1, 0.1, 0.1});
  ASSERT_TRUE(full.converged);

  const core::SubsystemAllocation subsystem(alloc, full.rates, {1, 2});
  const core::UtilityProfile sub_profile{profile[1], profile[2]};
  const auto reduced = core::solve_nash(subsystem, sub_profile,
                                        {full.rates[1], full.rates[2]});
  ASSERT_TRUE(reduced.converged);
  EXPECT_NEAR(reduced.rates[0], full.rates[1], 1e-4);
  EXPECT_NEAR(reduced.rates[1], full.rates[2], 1e-4);
}

}  // namespace
}  // namespace gw
