#include "ctrl/churn.hpp"

#include <stdexcept>

namespace gw::ctrl {

PoissonChurn::PoissonChurn(std::size_t users, PoissonChurnOptions options,
                           std::uint64_t seed)
    : users_(users), options_(options), rng_(seed) {
  if (users == 0) throw std::invalid_argument("PoissonChurn: no users");
  if (options.updates_per_second <= 0.0 ||
      options.gamma_min <= 0.0 || options.gamma_max < options.gamma_min) {
    throw std::invalid_argument("PoissonChurn: bad options");
  }
}

RateUpdate PoissonChurn::next() {
  clock_ += rng_.exponential(options_.updates_per_second);
  RateUpdate update;
  update.user = static_cast<std::size_t>(rng_.uniform_index(users_));
  update.utility = core::make_linear(
      options_.a, rng_.uniform(options_.gamma_min, options_.gamma_max));
  update.arrival_time = clock_;
  return update;
}

BurstChurn::BurstChurn(std::size_t users, BurstChurnOptions options,
                       std::uint64_t seed)
    : users_(users), options_(options), rng_(seed) {
  if (users == 0) throw std::invalid_argument("BurstChurn: no users");
  if (options.burst_length == 0 || options.block_size == 0 ||
      options.gamma_low <= 0.0 || options.gamma_high < options.gamma_low) {
    throw std::invalid_argument("BurstChurn: bad options");
  }
}

RateUpdate BurstChurn::next() {
  if (in_burst_ == 0) {
    // Jittered silence between bursts (±50%) so bursts from different
    // seeds don't phase-lock when replayed side by side.
    clock_ += options_.burst_gap * rng_.uniform(0.5, 1.5);
  } else {
    clock_ += options_.within_gap;
  }
  const std::size_t block_start = (burst_ * options_.block_size) % users_;
  RateUpdate update;
  update.user = (block_start + in_burst_ % options_.block_size) % users_;
  // Alternate the extremes across the block so consecutive updates always
  // force a real equilibrium move, and flip the phase on every full
  // rotation through the user population so a revisited block receives the
  // *opposite* assignment it holds — without the flip, the second visit
  // would stage utilities identical to the current profile and the
  // "adversarial" burst would degenerate into a no-op.
  const std::size_t rotation = burst_ * options_.block_size / users_;
  const double gamma = (in_burst_ + rotation) % 2 == 0
                           ? options_.gamma_low
                           : options_.gamma_high;
  update.utility = core::make_linear(options_.a, gamma);
  update.arrival_time = clock_;
  if (++in_burst_ >= options_.burst_length) {
    in_burst_ = 0;
    ++burst_;
  }
  return update;
}

}  // namespace gw::ctrl
