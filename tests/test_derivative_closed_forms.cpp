// Differential tests for the closed-form derivative overrides: every
// discipline that shadows the numeric default (Richardson-extrapolated
// finite differences of congestion_of) must agree with that default at
// interior and near-saturation points. The numeric path stays reachable
// through an explicitly qualified AllocationFunction:: call.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/fair_share.hpp"
#include "core/gfunction.hpp"
#include "core/priority_alloc.hpp"
#include "core/proportional.hpp"
#include "core/serial_general.hpp"
#include "core/weighted_serial.hpp"
#include "numerics/rng.hpp"

namespace gw::core {
namespace {

/// Random rate vector with the given total; strictly positive entries and
/// a minimum pairwise gap so finite-difference probes (step ~1e-5 relative)
/// never cross a sort boundary — the closed forms are exact one-sided at
/// ties but the numeric baseline straddles them.
std::vector<double> separated_rates(numerics::Rng& rng, std::size_t n,
                                    double total) {
  std::vector<double> rates(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    rates[i] = 0.2 + rng.uniform(0.0, 1.0) + 0.3 * static_cast<double>(i);
    sum += rates[i];
  }
  for (auto& r : rates) r *= total / sum;
  return rates;
}

void expect_close(double closed, double numeric, double rel_tol,
                  const char* what, std::size_t i, std::size_t j) {
  if (std::isinf(numeric) || std::isinf(closed)) {
    EXPECT_EQ(closed, numeric) << what << " i=" << i << " j=" << j;
    return;
  }
  const double scale = std::max({1.0, std::abs(closed), std::abs(numeric)});
  EXPECT_NEAR(closed, numeric, rel_tol * scale)
      << what << " i=" << i << " j=" << j << " closed=" << closed
      << " numeric=" << numeric;
}

void check_partials(const AllocationFunction& alloc,
                    const std::vector<double>& rates, double first_tol,
                    double second_tol, const char* what) {
  const std::size_t n = rates.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      expect_close(alloc.partial(i, j, rates),
                   alloc.AllocationFunction::partial(i, j, rates), first_tol,
                   what, i, j);
      expect_close(alloc.second_partial(i, j, rates),
                   alloc.AllocationFunction::second_partial(i, j, rates),
                   second_tol, what, i, j);
    }
  }
}

TEST(ClosedFormDerivatives, ProportionalMatchesNumericTo1e9) {
  // Satellite acceptance: closed-form Proportional partials within 1e-9
  // (relative) of the Richardson numeric path, including near saturation.
  const ProportionalAllocation alloc;
  numerics::Rng rng(101);
  for (const double total : {0.3, 0.6, 0.85, 0.95, 0.99}) {
    for (int trial = 0; trial < 6; ++trial) {
      const std::size_t n = 2 + rng.uniform_index(6);
      const auto rates = separated_rates(rng, n, total);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          expect_close(alloc.partial(i, j, rates),
                       alloc.AllocationFunction::partial(i, j, rates), 1e-9,
                       "proportional", i, j);
        }
      }
    }
  }
}

// Second-difference tolerance: the numeric baseline's own error on second
// partials grows like the curvature, reaching ~2e-5 relative near
// saturation, so near-saturation points get a looser bound. The closed
// forms themselves are exact; this measures the baseline.
double second_tol_for(double total) { return total > 0.9 ? 1e-3 : 1e-4; }

TEST(ClosedFormDerivatives, FairShare) {
  const FairShareAllocation alloc;
  numerics::Rng rng(202);
  for (const double total : {0.4, 0.8, 0.95}) {
    const auto rates = separated_rates(rng, 5, total);
    check_partials(alloc, rates, 1e-8, second_tol_for(total), "fair_share");
  }
}

TEST(ClosedFormDerivatives, WeightedSerial) {
  numerics::Rng rng(303);
  for (const double total : {0.4, 0.8, 0.95}) {
    const std::size_t n = 4;
    std::vector<double> weights{0.5, 1.0, 1.5, 2.5};
    const WeightedSerialAllocation alloc(weights);
    const auto rates = separated_rates(rng, n, total);
    check_partials(alloc, rates, 1e-8, second_tol_for(total),
                   "weighted_serial");
  }
}

TEST(ClosedFormDerivatives, WeightedSerialEqualWeightsIsFairShare) {
  // With all weights equal the weighted discipline degenerates to Fair
  // Share, so its closed forms must match Fair Share's exactly.
  const WeightedSerialAllocation weighted(std::vector<double>(5, 1.0));
  const FairShareAllocation fair;
  numerics::Rng rng(404);
  const auto rates = separated_rates(rng, 5, 0.8);
  const auto c_w = weighted.congestion(rates);
  const auto c_f = fair.congestion(rates);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(c_w[i], c_f[i], 1e-12) << "i=" << i;
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(weighted.partial(i, j, rates), fair.partial(i, j, rates),
                  1e-10)
          << "i=" << i << " j=" << j;
      EXPECT_NEAR(weighted.second_partial(i, j, rates),
                  fair.second_partial(i, j, rates), 1e-10)
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(ClosedFormDerivatives, GeneralSerialMg1) {
  numerics::Rng rng(505);
  const GeneralSerialAllocation alloc(GFunction::mg1(2.0));
  for (const double total : {0.4, 0.8}) {
    const auto rates = separated_rates(rng, 5, total);
    check_partials(alloc, rates, 1e-8, second_tol_for(total),
                   "general_serial_mg1");
  }
}

TEST(ClosedFormDerivatives, GeneralProportional) {
  numerics::Rng rng(606);
  for (const auto& g : {GFunction::mg1(0.5), GFunction::quadratic()}) {
    const GeneralProportionalAllocation alloc(g);
    for (const double total : {0.4, 0.8}) {
      const auto rates = separated_rates(rng, 4, total);
      check_partials(alloc, rates, 1e-8, second_tol_for(total),
                     "general_proportional");
    }
  }
}

TEST(ClosedFormDerivatives, PriorityDisciplines) {
  numerics::Rng rng(707);
  const SmallestRateFirstAllocation srf;
  const FixedPriorityAllocation fixed;
  for (const double total : {0.4, 0.8, 0.95}) {
    const auto rates = separated_rates(rng, 5, total);
    check_partials(srf, rates, 1e-8, second_tol_for(total),
                   "smallest_rate_first");
    check_partials(fixed, rates, 1e-8, second_tol_for(total),
                   "fixed_priority");
  }
}

}  // namespace
}  // namespace gw::core
