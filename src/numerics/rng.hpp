// Deterministic, seedable pseudo-random number generation.
//
// We implement xoshiro256++ (Blackman & Vigna) seeded through splitmix64
// rather than relying on std::mt19937_64 so that streams are cheap to
// fork (one independent stream per simulated source), fully reproducible
// across standard libraries, and fast enough for packet-level simulation.
#pragma once

#include <cstdint>
#include <vector>

namespace gw::numerics {

/// splitmix64 step; used for seeding and as a small standalone generator.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256++ generator with distribution helpers.
///
/// Not thread-safe; use one Rng per thread / per simulated entity.
class Rng {
 public:
  /// Seeds the four-word state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit word.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Exponential variate with the given rate (mean 1/rate). Requires rate > 0.
  [[nodiscard]] double exponential(double rate) noexcept;

  /// Standard normal via Box–Muller (no caching; simple and adequate here).
  [[nodiscard]] double normal() noexcept;

  /// Poisson variate (Knuth's multiplication method; fine for small means,
  /// falls back to normal approximation above mean 64).
  [[nodiscard]] std::uint64_t poisson(double mean) noexcept;

  /// Bernoulli trial with probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Forks an independent generator (jump via reseeding from this stream).
  [[nodiscard]] Rng fork() noexcept;

  /// Fisher–Yates shuffle of an index permutation [0, n).
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n) noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace gw::numerics
