// Parameterized property sweeps over all implemented allocation functions:
// feasibility on the constraint surface, symmetry, and the sign structure
// of derivatives, at randomized points of the natural domain D.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/fair_share.hpp"
#include "core/mixture.hpp"
#include "core/priority_alloc.hpp"
#include "core/proportional.hpp"
#include "numerics/rng.hpp"
#include "queueing/feasibility.hpp"
#include "queueing/mm1.hpp"

namespace gw::core {
namespace {

struct AllocationCase {
  const char* label;
  std::shared_ptr<const AllocationFunction> alloc;
  bool symmetric;
};

class AllocationProperty : public ::testing::TestWithParam<AllocationCase> {};

std::vector<double> random_interior_point(numerics::Rng& rng, std::size_t n) {
  std::vector<double> rates(n);
  double total = 0.0;
  for (auto& r : rates) {
    r = rng.uniform(0.01, 1.0);
    total += r;
  }
  const double target = rng.uniform(0.1, 0.9);
  for (auto& r : rates) r *= target / total;
  return rates;
}

TEST_P(AllocationProperty, FeasibleOnConstraintSurface) {
  numerics::Rng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    const auto rates = random_interior_point(rng, 4);
    const auto queues = GetParam().alloc->congestion(rates);
    const auto feasibility = queueing::check_feasibility(rates, queues, 1e-8);
    EXPECT_TRUE(feasibility.on_constraint)
        << GetParam().label << " residual " << feasibility.residual;
    EXPECT_TRUE(feasibility.subsets_ok) << GetParam().label;
  }
}

TEST_P(AllocationProperty, SymmetricUnderPermutation) {
  if (!GetParam().symmetric) GTEST_SKIP() << "deliberately non-symmetric";
  numerics::Rng rng(103);
  for (int trial = 0; trial < 30; ++trial) {
    const auto rates = random_interior_point(rng, 4);
    const auto queues = GetParam().alloc->congestion(rates);
    const auto perm = rng.permutation(4);
    std::vector<double> permuted(4);
    for (std::size_t k = 0; k < 4; ++k) permuted[k] = rates[perm[k]];
    const auto permuted_queues = GetParam().alloc->congestion(permuted);
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_NEAR(permuted_queues[k], queues[perm[k]], 1e-9)
          << GetParam().label;
    }
  }
}

TEST_P(AllocationProperty, OwnDerivativePositive) {
  numerics::Rng rng(107);
  for (int trial = 0; trial < 20; ++trial) {
    const auto rates = random_interior_point(rng, 4);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_GT(GetParam().alloc->partial(i, i, rates), 0.0)
          << GetParam().label;
    }
  }
}

TEST_P(AllocationProperty, CrossDerivativesNonNegative) {
  numerics::Rng rng(109);
  for (int trial = 0; trial < 20; ++trial) {
    const auto rates = random_interior_point(rng, 4);
    for (std::size_t i = 0; i < 4; ++i) {
      for (std::size_t j = 0; j < 4; ++j) {
        if (i == j) continue;
        EXPECT_GE(GetParam().alloc->partial(i, j, rates), -1e-9)
            << GetParam().label;
      }
    }
  }
}

TEST_P(AllocationProperty, TotalQueueConservedAcrossDisciplines) {
  // Work conservation: every discipline distributes the same total.
  numerics::Rng rng(113);
  const ProportionalAllocation reference;
  for (int trial = 0; trial < 20; ++trial) {
    const auto rates = random_interior_point(rng, 5);
    const auto queues = GetParam().alloc->congestion(rates);
    const auto reference_queues = reference.congestion(rates);
    double total = 0.0, reference_total = 0.0;
    for (std::size_t i = 0; i < rates.size(); ++i) {
      total += queues[i];
      reference_total += reference_queues[i];
    }
    EXPECT_NEAR(total, reference_total, 1e-8) << GetParam().label;
  }
}

TEST_P(AllocationProperty, SubsystemInducedAllocationConsistent) {
  // Freezing user 2's rate and evaluating the subsystem must reproduce the
  // full system's values on the free coordinates.
  numerics::Rng rng(127);
  const auto rates = random_interior_point(rng, 4);
  SubsystemAllocation subsystem(GetParam().alloc, rates, {0, 1, 3});
  const auto reduced = subsystem.congestion({rates[0], rates[1], rates[3]});
  const auto full = GetParam().alloc->congestion(rates);
  EXPECT_NEAR(reduced[0], full[0], 1e-12);
  EXPECT_NEAR(reduced[1], full[1], 1e-12);
  EXPECT_NEAR(reduced[2], full[3], 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllDisciplines, AllocationProperty,
    ::testing::Values(
        AllocationCase{"Proportional",
                       std::make_shared<ProportionalAllocation>(), true},
        AllocationCase{"FairShare", std::make_shared<FairShareAllocation>(),
                       true},
        AllocationCase{"SmallestRateFirst",
                       std::make_shared<SmallestRateFirstAllocation>(), true},
        AllocationCase{"FixedPriority",
                       std::make_shared<FixedPriorityAllocation>(), false},
        AllocationCase{"Mixture25", std::make_shared<MixtureAllocation>(0.25),
                       true},
        AllocationCase{"Mixture75", std::make_shared<MixtureAllocation>(0.75),
                       true}),
    [](const ::testing::TestParamInfo<AllocationCase>& info) {
      return info.param.label;
    });

TEST(Mixture, EndpointsReproduceParents) {
  const MixtureAllocation zero(0.0), one(1.0);
  const FairShareAllocation fs;
  const ProportionalAllocation prop;
  const std::vector<double> rates{0.1, 0.3, 0.2};
  const auto c0 = zero.congestion(rates);
  const auto c1 = one.congestion(rates);
  const auto cf = fs.congestion(rates);
  const auto cp = prop.congestion(rates);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(c0[i], cf[i], 1e-12);
    EXPECT_NEAR(c1[i], cp[i], 1e-12);
  }
}

TEST(Mixture, ThetaOutOfRangeThrows) {
  EXPECT_THROW(MixtureAllocation(-0.1), std::invalid_argument);
  EXPECT_THROW(MixtureAllocation(1.1), std::invalid_argument);
}

TEST(SmallestRateFirst, FavorsSmallUsersBeyondFairShare) {
  const SmallestRateFirstAllocation srf;
  const FairShareAllocation fs;
  const std::vector<double> rates{0.1, 0.4};
  const auto c_srf = srf.congestion(rates);
  const auto c_fs = fs.congestion(rates);
  EXPECT_LT(c_srf[0], c_fs[0]);  // small user even better off
  EXPECT_GT(c_srf[1], c_fs[1]);  // big user worse off
}

TEST(FixedPriority, TopUserSeesPrivateQueue) {
  const FixedPriorityAllocation alloc;
  const auto congestion = alloc.congestion({0.3, 0.5});
  EXPECT_NEAR(congestion[0], queueing::g(0.3), 1e-12);
}

}  // namespace
}  // namespace gw::core
