// Rate-churn event model for the streaming control plane.
//
// A RateUpdate is the unit of churn the host agents feed the controller:
// one user swaps her utility (preferences changed, demand shifted) at a
// virtual arrival time. The two generators cover the E-CHURN workload
// axes:
//   * PoissonChurn — memoryless background churn: exponential
//     interarrivals, uniformly random user, delay-aversion drawn fresh per
//     update. The smooth-perturbation regime where incremental repair
//     should almost never escalate (Wu–Bui–Johari: equilibria vary
//     smoothly under demand perturbation).
//   * BurstChurn — the adversarial pattern: bursts hammer one contiguous
//     user block (one shard's worth) back-to-back, alternating extreme
//     delay-aversions (phase-flipped on every rotation through the
//     population) so every update forces a real equilibrium move and the
//     dirty set concentrates on a single shard instead of spreading.
//
// Both are deterministic functions of their seed (numerics::Rng), so churn
// scenarios replay bit-identically across runs and thread counts.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/utility.hpp"
#include "numerics/rng.hpp"

namespace gw::ctrl {

/// One churn event: at virtual time `arrival_time` (seconds), `user`
/// replaces her utility with `utility`.
struct RateUpdate {
  std::size_t user = 0;
  core::UtilityPtr utility;
  double arrival_time = 0.0;
};

struct PoissonChurnOptions {
  double updates_per_second = 1000.0;  ///< Poisson arrival rate
  double gamma_min = 0.3;              ///< delay-aversion draw range
  double gamma_max = 0.85;
  double a = 1.0;  ///< throughput weight of the linear utility
};

/// Memoryless background churn (see file comment).
class PoissonChurn {
 public:
  PoissonChurn(std::size_t users, PoissonChurnOptions options,
               std::uint64_t seed);

  [[nodiscard]] RateUpdate next();

 private:
  std::size_t users_;
  PoissonChurnOptions options_;
  numerics::Rng rng_;
  double clock_ = 0.0;
};

struct BurstChurnOptions {
  std::size_t burst_length = 32;  ///< updates per burst
  std::size_t block_size = 64;    ///< contiguous users targeted per burst
  double burst_gap = 0.05;        ///< seconds of silence between bursts
  double within_gap = 1e-5;       ///< interarrival inside a burst
  double gamma_low = 0.3;         ///< the two extremes the burst flips
  double gamma_high = 0.85;
  double a = 1.0;
};

/// Adversarial burst churn (see file comment). Burst k targets the user
/// block starting at (k * block_size) mod users, so successive bursts
/// rotate through the shards.
class BurstChurn {
 public:
  BurstChurn(std::size_t users, BurstChurnOptions options,
             std::uint64_t seed);

  [[nodiscard]] RateUpdate next();

 private:
  std::size_t users_;
  BurstChurnOptions options_;
  numerics::Rng rng_;
  double clock_ = 0.0;
  std::size_t burst_ = 0;     ///< bursts completed
  std::size_t in_burst_ = 0;  ///< updates emitted in the current burst
};

}  // namespace gw::ctrl
