#include "numerics/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gw::numerics {

void RunningStat::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double student_t_critical(std::size_t dof, double confidence) {
  // Two-sided critical values for common confidence levels; rows are
  // degrees of freedom; interpolate, clamp at the asymptotic z value.
  struct Row {
    std::size_t dof;
    double t90, t95, t99;
  };
  static constexpr Row kTable[] = {
      {1, 6.314, 12.706, 63.657}, {2, 2.920, 4.303, 9.925},
      {3, 2.353, 3.182, 5.841},   {4, 2.132, 2.776, 4.604},
      {5, 2.015, 2.571, 4.032},   {6, 1.943, 2.447, 3.707},
      {7, 1.895, 2.365, 3.499},   {8, 1.860, 2.306, 3.355},
      {9, 1.833, 2.262, 3.250},   {10, 1.812, 2.228, 3.169},
      {12, 1.782, 2.179, 3.055},  {15, 1.753, 2.131, 2.947},
      {20, 1.725, 2.086, 2.845},  {25, 1.708, 2.060, 2.787},
      {30, 1.697, 2.042, 2.750},  {40, 1.684, 2.021, 2.704},
      {60, 1.671, 2.000, 2.660},  {120, 1.658, 1.980, 2.617},
      {1000000, 1.645, 1.960, 2.576},
  };
  auto pick = [&](const Row& row) {
    if (confidence >= 0.985) return row.t99;
    if (confidence <= 0.925) return row.t90;
    return row.t95;
  };
  if (dof == 0) dof = 1;
  const Row* prev = &kTable[0];
  for (const auto& row : kTable) {
    if (dof <= row.dof) {
      if (row.dof == prev->dof) return pick(row);
      // Interpolate in 1/dof: t-quantiles are ~affine in 1/dof, which
      // keeps large-dof queries on the asymptotic z value.
      const double t0 = pick(*prev);
      const double t1 = pick(row);
      const double x = 1.0 / static_cast<double>(dof);
      const double x0 = 1.0 / static_cast<double>(prev->dof);
      const double x1 = 1.0 / static_cast<double>(row.dof);
      const double w = (x0 - x) / (x0 - x1);
      return t0 + w * (t1 - t0);
    }
    prev = &row;
  }
  return pick(kTable[std::size(kTable) - 1]);
}

ConfidenceInterval batch_means_ci(const std::vector<double>& batch_averages,
                                  double confidence) {
  ConfidenceInterval ci;
  ci.batches = batch_averages.size();
  if (batch_averages.empty()) return ci;
  RunningStat stat;
  for (const double x : batch_averages) stat.add(x);
  ci.mean = stat.mean();
  if (batch_averages.size() < 2) return ci;
  const double t = student_t_critical(batch_averages.size() - 1, confidence);
  ci.half_width =
      t * stat.stddev() / std::sqrt(static_cast<double>(batch_averages.size()));
  return ci;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins, 0) {
  if (!(lo < hi) || bins == 0) {
    throw std::invalid_argument("Histogram: invalid range or bin count");
  }
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto i = static_cast<long long>(t * static_cast<double>(bins_.size()));
  i = std::clamp<long long>(i, 0, static_cast<long long>(bins_.size()) - 1);
  ++bins_[static_cast<std::size_t>(i)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(bins_.size());
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return bin_lo(i + 1);
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    cumulative += static_cast<double>(bins_[i]);
    if (cumulative >= target) return 0.5 * (bin_lo(i) + bin_hi(i));
  }
  return hi_;
}

}  // namespace gw::numerics
