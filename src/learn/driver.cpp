#include "learn/driver.hpp"

#include <cmath>
#include <stdexcept>

namespace gw::learn {

GameDriver::GameDriver(std::shared_ptr<const core::AllocationFunction> alloc,
                       core::UtilityProfile profile)
    : alloc_(std::move(alloc)), profile_(std::move(profile)) {
  if (alloc_ == nullptr || profile_.empty()) {
    throw std::invalid_argument("GameDriver: null allocation or empty profile");
  }
}

DriverResult GameDriver::run(std::vector<std::unique_ptr<Learner>>& learners,
                             const DriverOptions& options) const {
  const std::size_t n = profile_.size();
  if (learners.size() != n) {
    throw std::invalid_argument("GameDriver: learner count mismatch");
  }
  std::vector<double> rates(n);
  for (std::size_t i = 0; i < n; ++i) rates[i] = learners[i]->current_rate();

  DriverResult result;
  result.trajectory.push_back(rates);
  int calm_rounds = 0;

  for (int round = 0; round < options.max_rounds; ++round) {
    const std::vector<double> snapshot = rates;
    const auto congestion = alloc_->congestion(snapshot);
    double max_move = 0.0;
    const bool round_robin = options.round_robin && !options.synchronous;
    for (std::size_t i = 0; i < n; ++i) {
      if (round_robin && i != static_cast<std::size_t>(round) % n) continue;
      LearnerContext context;
      context.observed_utility =
          profile_[i]->value(snapshot[i], congestion[i]);
      // Counterfactual over the snapshot (synchronous) or live rates
      // (sequential) — matching how the round's moves compose.
      const std::vector<double>& frame =
          options.synchronous ? snapshot : rates;
      context.counterfactual = [this, &frame, i](double candidate) {
        std::vector<double> probe = frame;
        probe[i] = candidate;
        const double c = alloc_->congestion_of(i, probe);
        return profile_[i]->value(candidate, c);
      };
      const double next = learners[i]->next_rate(context);
      max_move = std::max(max_move, std::abs(next - rates[i]));
      rates[i] = next;
    }
    result.trajectory.push_back(rates);
    result.rounds = round + 1;
    if (max_move <= options.tolerance) {
      if (++calm_rounds >= options.patience) {
        result.converged = true;
        break;
      }
    } else {
      calm_rounds = 0;
    }
  }
  result.final_rates = rates;
  return result;
}

}  // namespace gw::learn
