// Unit tests for the shared serial-discipline helpers (serial_common.hpp):
// the sort/rank/gather/serial-load building blocks deduplicated out of
// FairShare, GeneralSerial and the priority allocations.
#include "core/serial_common.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "numerics/rng.hpp"

namespace gw::core::serial {
namespace {

TEST(SerialCommon, SortedOrderAscending) {
  const std::vector<double> keys{0.4, 0.1, 0.3, 0.2};
  std::vector<std::size_t> order(4);
  sorted_order_into(keys, order);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 3, 2, 0}));
}

TEST(SerialCommon, SortedOrderBreaksTiesByIndex) {
  const std::vector<double> keys{0.2, 0.1, 0.2, 0.1};
  std::vector<std::size_t> order(4);
  sorted_order_into(keys, order);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 3, 0, 2}));
}

TEST(SerialCommon, RankIsInverseOfOrder) {
  numerics::Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(16);
    std::vector<double> keys(n);
    for (auto& k : keys) k = rng.uniform(0.0, 1.0);
    std::vector<std::size_t> order(n), rank(n);
    sorted_order_into(keys, order);
    rank_from_order(order, rank);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_EQ(rank[order[k]], k);
      EXPECT_EQ(order[rank[k]], k);
    }
  }
}

TEST(SerialCommon, GatherAppliesOrder) {
  const std::vector<double> values{0.4, 0.1, 0.3};
  std::vector<std::size_t> order(3);
  std::vector<double> sorted(3);
  sorted_order_into(values, order);
  gather_into(values, order, sorted);
  EXPECT_EQ(sorted, (std::vector<double>{0.1, 0.3, 0.4}));
}

TEST(SerialCommon, SerialLoadsMatchDefinition) {
  // S_k = (n - k) * sorted[k] + sum_{m<k} sorted[m] (0-indexed ranks).
  const std::vector<double> sorted{0.1, 0.2, 0.4};
  std::vector<double> serial(3);
  serial_loads_into(sorted, serial);
  EXPECT_DOUBLE_EQ(serial[0], 3 * 0.1);
  EXPECT_DOUBLE_EQ(serial[1], 2 * 0.2 + 0.1);
  EXPECT_DOUBLE_EQ(serial[2], 1 * 0.4 + 0.1 + 0.2);
}

TEST(SerialCommon, SerialLoadsAreNondecreasing) {
  numerics::Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(24);
    std::vector<double> rates(n);
    for (auto& r : rates) r = rng.uniform(0.0, 0.2);
    std::vector<std::size_t> order(n);
    std::vector<double> sorted(n), serial(n);
    sort_and_serial_loads(rates, order, sorted, serial);
    for (std::size_t k = 1; k < n; ++k) {
      EXPECT_GE(serial[k], serial[k - 1] - 1e-15);
    }
    // The last serial load is the total rate.
    double total = 0.0;
    for (const double r : rates) total += r;
    EXPECT_NEAR(serial[n - 1], total, 1e-12);
  }
}

TEST(SerialCommon, CombinedHelperMatchesPieces) {
  numerics::Rng rng(17);
  const std::size_t n = 9;
  std::vector<double> rates(n);
  for (auto& r : rates) r = rng.uniform(0.0, 0.1);
  rates[3] = rates[7];  // exercise the tie path

  std::vector<std::size_t> order_a(n), order_b(n);
  std::vector<double> sorted_a(n), sorted_b(n), serial_a(n), serial_b(n);
  sort_and_serial_loads(rates, order_a, sorted_a, serial_a);
  sorted_order_into(rates, order_b);
  gather_into(rates, order_b, sorted_b);
  serial_loads_into(sorted_b, serial_b);
  EXPECT_EQ(order_a, order_b);
  EXPECT_EQ(sorted_a, sorted_b);
  EXPECT_EQ(serial_a, serial_b);
}

}  // namespace
}  // namespace gw::core::serial
