#include "core/envy.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace gw::core {

numerics::Matrix envy_matrix(const UtilityProfile& profile,
                             const std::vector<double>& rates,
                             const std::vector<double>& queues) {
  const std::size_t n = profile.size();
  if (rates.size() != n || queues.size() != n) {
    throw std::invalid_argument("envy_matrix: size mismatch");
  }
  numerics::Matrix envy(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double own = profile[i]->value(rates[i], queues[i]);
    for (std::size_t j = 0; j < n; ++j) {
      const double other = profile[i]->value(rates[j], queues[j]);
      // -inf - -inf would be NaN; saturated-vs-saturated is "no envy".
      if (std::isinf(own) && std::isinf(other)) {
        envy(i, j) = 0.0;
      } else {
        envy(i, j) = other - own;
      }
    }
  }
  return envy;
}

double max_envy(const UtilityProfile& profile, const std::vector<double>& rates,
                const std::vector<double>& queues) {
  const auto envy = envy_matrix(profile, rates, queues);
  double worst = 0.0;
  for (std::size_t i = 0; i < envy.rows(); ++i) {
    for (std::size_t j = 0; j < envy.cols(); ++j) {
      if (i != j) worst = std::max(worst, envy(i, j));
    }
  }
  return worst;
}

UnilateralEnvyResult unilateral_envy(const AllocationFunction& alloc,
                                     const UtilityProfile& profile,
                                     std::vector<double> rates, std::size_t i,
                                     const BestResponseOptions& options) {
  const auto response = best_response(alloc, *profile[i], rates, i, options);
  rates[i] = response.rate;
  const auto queues = alloc.congestion(rates);
  const double own = profile[i]->value(rates[i], queues[i]);
  UnilateralEnvyResult result;
  result.best_response_rate = response.rate;
  result.max_envy = 0.0;
  for (std::size_t j = 0; j < rates.size(); ++j) {
    if (j == i) continue;
    const double other = profile[i]->value(rates[j], queues[j]);
    const double envy = (std::isinf(own) && std::isinf(other)) ? 0.0
                                                               : other - own;
    if (envy > result.max_envy) {
      result.max_envy = envy;
      result.envied = j;
    }
  }
  return result;
}

}  // namespace gw::core
