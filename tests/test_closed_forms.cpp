#include "core/closed_forms.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gw::core {
namespace {

TEST(FifoClosedForm, SatisfiesItsQuadratic) {
  for (const double gamma : {0.1, 0.25, 0.5}) {
    for (const std::size_t n : {2u, 5u, 10u}) {
      const auto point = fifo_linear_symmetric_nash(gamma, n);
      const double nd = static_cast<double>(n);
      const double u = point.idle;
      EXPECT_NEAR(nd * u * u - gamma * (nd - 1.0) * u - gamma, 0.0, 1e-10);
      EXPECT_NEAR(point.rate, (1.0 - u) / nd, 1e-12);
    }
  }
}

TEST(FsClosedForm, IdleEqualsSqrtGamma) {
  const auto point = fs_linear_symmetric_nash(0.25, 4);
  EXPECT_NEAR(point.idle, 0.5, 1e-12);
  EXPECT_NEAR(point.rate, 0.125, 1e-12);
  EXPECT_NEAR(point.utility, 0.125 - 0.25 * 0.25, 1e-12);
}

TEST(ClosedForms, CornerAtLargeGamma) {
  // gamma >= 1: staying silent is optimal in both disciplines.
  EXPECT_NEAR(fs_linear_symmetric_nash(1.5, 3).rate, 0.0, 1e-12);
  EXPECT_NEAR(fifo_linear_symmetric_nash(4.0, 2).rate, 0.0, 1e-12);
}

TEST(ClosedForms, FifoOverconsumes) {
  // The FIFO Nash always has higher total load (less idle) than Pareto.
  for (const std::size_t n : {2u, 4u, 8u}) {
    const auto fifo = fifo_linear_symmetric_nash(0.25, n);
    const auto pareto = fs_linear_symmetric_nash(0.25, n);
    EXPECT_LT(fifo.idle, pareto.idle) << "n=" << n;
    EXPECT_LT(fifo.utility, pareto.utility) << "n=" << n;
  }
}

TEST(EfficiencyRatio, DecreasesWithPopulation) {
  double previous = 1.1;
  for (const std::size_t n : {1u, 2u, 4u, 8u, 16u}) {
    const double ratio = fifo_efficiency_ratio(0.25, n);
    EXPECT_LE(ratio, previous + 1e-12) << "n=" << n;
    EXPECT_GT(ratio, 0.0);
    previous = ratio;
  }
  // Single user: no externalities, FIFO is efficient.
  EXPECT_NEAR(fifo_efficiency_ratio(0.25, 1), 1.0, 1e-9);
}

TEST(EfficiencyRatio, MatchesHandComputedExample) {
  // N = 10, gamma = 0.25 (computed in DESIGN.md): ratio ~ 0.511.
  const double ratio = fifo_efficiency_ratio(0.25, 10);
  EXPECT_NEAR(ratio, 0.5115, 5e-3);
}

TEST(ClosedForms, InputValidation) {
  EXPECT_THROW((void)fifo_linear_symmetric_nash(0.0, 2),
               std::invalid_argument);
  EXPECT_THROW((void)fs_linear_symmetric_nash(0.5, 0), std::invalid_argument);
}

}  // namespace
}  // namespace gw::core
