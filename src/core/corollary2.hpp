// Corollary 2 (paper Section 4.1.1): the impossibility of Pareto-optimal
// Nash equilibria is a property of the M/M/1 constraint's SHAPE, not of
// noncooperation itself. For the separable constraint
//   sum_i c_i = f(r) = sum_i r_i^2      (h_i = (sum_{j != i} r_j^2) * N/(N-1))
// the allocation C_i(r) = r_i^2 makes every Nash equilibrium Pareto
// optimal: each user's congestion depends only on her own rate, so the
// Nash FDC coincides with the Pareto FDC.
//
// This module implements that abstract resource game so the claim is
// executable (bench_efficiency / tests), mirroring the paper's example.
#pragma once

#include "core/allocation.hpp"
#include "core/utility.hpp"

namespace gw::core {

/// The separable allocation C_i(r) = r_i^2 for the quadratic constraint.
/// NOTE: this is an abstract resource-sharing game, NOT a work-conserving
/// queue — it deliberately violates the M/M/1 feasibility region and must
/// not be fed to the queueing feasibility checker.
class QuadraticSeparableAllocation final : public AllocationFunction {
 public:
  [[nodiscard]] std::string name() const override {
    return "QuadraticSeparable";
  }
  void congestion_into(std::span<const double> rates, std::span<double> out,
                       EvalWorkspace& ws) const override;
  [[nodiscard]] double congestion_of_into(std::size_t i,
                                          std::span<const double> rates,
                                          EvalWorkspace& ws) const override;
  [[nodiscard]] double partial(std::size_t i, std::size_t j,
                               const std::vector<double>& rates) const override;
  [[nodiscard]] double second_partial(
      std::size_t i, std::size_t j,
      const std::vector<double>& rates) const override;
};

/// Pareto FDC residuals for the quadratic constraint: M_i + 2 r_i
/// (Z_i = -df/dr_i = -2 r_i). Zero at an interior Pareto optimum.
[[nodiscard]] std::vector<double> quadratic_pareto_residuals(
    const UtilityProfile& profile, const std::vector<double>& rates,
    const std::vector<double>& queues);

}  // namespace gw::core
