// Closed-loop tests: measurement-driven selfish users against the packet
// simulator. These are the paper's premises made executable.
#include "sim/adaptive.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/closed_forms.hpp"
#include "learn/hill_climber.hpp"

namespace gw::sim {
namespace {

LearnerFactory hill_climber_factory() {
  return [](std::size_t, double initial_rate) {
    learn::HillClimberOptions options;
    // Noisy-measurement regime: wide probes, a sizable step floor, and
    // 3-sample averaging per phase keep the gradient above queueing noise.
    options.initial_step = 0.04;
    options.min_step = 0.01;
    options.samples_per_phase = 3;
    return std::make_unique<learn::FiniteDifferenceHillClimber>(initial_rate,
                                                                options);
  };
}

AdaptiveOptions quick_adaptive(std::uint64_t seed) {
  AdaptiveOptions options;
  // Long epochs keep measurement noise below the hill climbers' probe
  // effect; the event-driven simulator handles this horizon in ~1 s.
  options.epoch_length = 8000.0;
  options.epochs = 240;
  options.seed = seed;
  return options;
}

TEST(Adaptive, FsOracleSelfishUsersSettleNearAnalyticNash) {
  const auto profile = core::uniform_profile(core::make_linear(1.0, 0.25), 2);
  const auto result =
      run_adaptive(Discipline::kFairShareOracle, profile, {0.1, 0.35},
                   hill_climber_factory(), quick_adaptive(5));
  const auto expected = core::fs_linear_symmetric_nash(0.25, 2);
  // Average the last 10 epochs to smooth measurement noise.
  std::vector<double> tail(2, 0.0);
  const int window = 10;
  for (int e = 0; e < window; ++e) {
    const auto& rates =
        result.rate_history[result.rate_history.size() - 1 - e];
    for (std::size_t u = 0; u < 2; ++u) tail[u] += rates[u] / window;
  }
  for (const double rate : tail) {
    EXPECT_NEAR(rate, expected.rate, 0.06) << "expected " << expected.rate;
  }
}

TEST(Adaptive, FifoSelfishUsersOverconsumeVsPareto) {
  // Under FIFO the adaptive population drives total load above the Pareto
  // level (the tragedy of the commons, measured in packets).
  const auto profile = core::uniform_profile(core::make_linear(1.0, 0.25), 2);
  const auto result =
      run_adaptive(Discipline::kFifo, profile, {0.15, 0.15},
                   hill_climber_factory(), quick_adaptive(6));
  const auto pareto = core::fs_linear_symmetric_nash(0.25, 2);
  double tail_load = 0.0;
  const int window = 10;
  for (int e = 0; e < window; ++e) {
    const auto& rates =
        result.rate_history[result.rate_history.size() - 1 - e];
    tail_load += (rates[0] + rates[1]) / window;
  }
  EXPECT_GT(tail_load, 2.0 * pareto.rate + 0.03);
}

TEST(Adaptive, FullyOracleFreeLoopStillFindsNash) {
  // The deployable configuration: the switch estimates rates online (no
  // oracle), the users observe only their own measured utility (no
  // counterfactual, no closed forms). The joint system still settles near
  // the analytic Nash point — the paper's whole program, end to end.
  const auto profile = core::uniform_profile(core::make_linear(1.0, 0.25), 2);
  auto options = quick_adaptive(12);
  options.estimator_tau = 100.0;
  options.rebuild_interval = 20.0;
  const auto result =
      run_adaptive(Discipline::kFairShareAdaptive, profile, {0.1, 0.35},
                   hill_climber_factory(), options);
  const auto expected = core::fs_linear_symmetric_nash(0.25, 2);
  std::vector<double> tail(2, 0.0);
  const int window = 10;
  for (int e = 0; e < window; ++e) {
    const auto& rates =
        result.rate_history[result.rate_history.size() - 1 - e];
    for (std::size_t u = 0; u < 2; ++u) tail[u] += rates[u] / window;
  }
  // The estimating switch is measurably more permissive than the oracle:
  // ranking noise near rate ties blurs the serial penalty, biasing the
  // empirical equilibrium a few percent above the analytic Nash load
  // (documented in EXPERIMENTS.md). Assert "near Nash, nobody starved,
  // mild overconsumption only".
  double total = 0.0;
  for (const double rate : tail) {
    EXPECT_GT(rate, expected.rate - 0.06);
    EXPECT_LT(rate, expected.rate + 0.09);
    total += rate;
  }
  EXPECT_NEAR(total, 2.0 * expected.rate, 0.10);
}

TEST(Adaptive, HistoriesHaveExpectedShape) {
  const auto profile = core::uniform_profile(core::make_linear(1.0, 0.3), 2);
  auto options = quick_adaptive(7);
  options.epochs = 10;
  const auto result =
      run_adaptive(Discipline::kFairShareOracle, profile, {0.1, 0.1},
                   hill_climber_factory(), options);
  EXPECT_EQ(result.rate_history.size(), 10u);
  EXPECT_EQ(result.queue_history.size(), 10u);
  EXPECT_EQ(result.final_rates.size(), 2u);
  EXPECT_EQ(result.final_utilities.size(), 2u);
}

TEST(Adaptive, RejectsMismatchedSizes) {
  const auto profile = core::uniform_profile(core::make_linear(1.0, 0.3), 2);
  EXPECT_THROW(
      (void)run_adaptive(Discipline::kFifo, profile, {0.1},
                         hill_climber_factory(), quick_adaptive(8)),
      std::invalid_argument);
}

TEST(Adaptive, RatePriorityUnsupported) {
  const auto profile = core::uniform_profile(core::make_linear(1.0, 0.3), 2);
  EXPECT_THROW(
      (void)run_adaptive(Discipline::kRatePriority, profile, {0.1, 0.1},
                         hill_climber_factory(), quick_adaptive(9)),
      std::invalid_argument);
}

}  // namespace
}  // namespace gw::sim
