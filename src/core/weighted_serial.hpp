// Weighted serial cost sharing (the weighted extension of Fair Share,
// after Moulin's weighted serial rule).
//
// Users carry service weights w_i > 0 (think: paid-for shares). Order
// users by normalized demand x_i = r_i / w_i. With W_m = sum of weights
// of users of rank >= m and the weighted serial loads
//   S_m = sum_{j<m} r_j + x_m * W_m,
// user k pays  C_k = sum_{m<=k} [g(S_m) - g(S_{m-1})] * w_k / W_m.
//
// Equal weights reduce exactly to FairShareAllocation. The structural
// properties generalize: the Jacobian is triangular in x-order (partial
// insularity relative to normalized demand), the rule telescopes onto the
// aggregate constraint, and the protective bound becomes
//   C_i <= w_i * g(r_i * W / w_i) / W,   W = sum of all weights
// (attained when every user runs at i's normalized demand).
#pragma once

#include "core/allocation.hpp"
#include "core/gfunction.hpp"

namespace gw::core {

class WeightedSerialAllocation final : public AllocationFunction {
 public:
  /// Weights must be positive; `g` defaults to the M/M/1 curve.
  explicit WeightedSerialAllocation(std::vector<double> weights,
                                    GFunction g = GFunction::mm1());

  [[nodiscard]] std::string name() const override;
  void congestion_into(std::span<const double> rates, std::span<double> out,
                       EvalWorkspace& ws) const override;
  [[nodiscard]] double congestion_of_into(std::size_t i,
                                          std::span<const double> rates,
                                          EvalWorkspace& ws) const override;
  void jacobian_into(std::span<const double> rates, numerics::Matrix& out,
                     EvalWorkspace& ws) const override;
  void second_partials_into(std::span<const double> rates,
                            numerics::Matrix& out,
                            EvalWorkspace& ws) const override;

  /// Closed-form dC_i/dr_j through the weighted serial loads (telescoped
  /// exactly like Fair Share, with dS_q/dr_j = W_q / w_j at j's own rank).
  /// Falls back to the numeric default when g lacks a derivative.
  [[nodiscard]] double partial(std::size_t i, std::size_t j,
                               const std::vector<double>& rates) const override;

  /// Closed form via dC_i/dr_i = g'(S_{rank(i)}): the second partial is
  /// g''(S_k) * dS_k/dr_j. Numeric default when g lacks g''.
  [[nodiscard]] double second_partial(
      std::size_t i, std::size_t j,
      const std::vector<double>& rates) const override;

  /// Classed closed form over (rate, weight, count) classes. The class
  /// weights come from the population itself; the constructor-time weight
  /// vector only pins the expanded size (pop.total_users() must equal
  /// weights().size(), else std::invalid_argument) and the caller is
  /// responsible for pop expanding to a (rate, weight) pairing consistent
  /// with it — the differential tests build pops via
  /// ClassedPopulation::compress(rates, weights()).
  [[nodiscard]] bool congestion_classes_into(const ClassedPopulation& pop,
                                             std::span<double> out,
                                             EvalWorkspace& ws) const override;
  /// Classed Jacobian when g carries a derivative; false otherwise.
  [[nodiscard]] bool jacobian_classes_into(const ClassedPopulation& pop,
                                           numerics::Matrix& cross,
                                           std::span<double> own,
                                           EvalWorkspace& ws) const override;

  /// Weighted protective bound w_i g(r_i W / w_i) / W.
  [[nodiscard]] double protective_bound(std::size_t i, double rate) const;

  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }

 private:
  /// Sorts by normalized demand and fills order / suffix weights (n+1
  /// entries, W[m] = weight of ranks >= m) / weighted serial loads from
  /// workspace buffers. Returns spans over ws.{order,b,serial}.
  struct Staging {
    std::span<const std::size_t> order;
    std::span<const double> suffix_weight;  ///< n + 1 entries
    std::span<const double> serial;
  };
  Staging stage(std::span<const double> rates, EvalWorkspace& ws) const;

  std::vector<double> weights_;
  double total_weight_;
  GFunction g_;
};

/// The priority realization of the weighted rule (Table 1 generalized):
/// level m has normalized width dx_m = x_(m) - x_(m-1); every user of
/// rank >= m sends rate w_j * dx_m at level m.
struct WeightedDecomposition {
  std::vector<std::size_t> order;  ///< users by ascending x = r/w
  std::vector<double> level_width; ///< dx_m in normalized-demand units
  /// slice_rate[u][l]: rate user u sends at priority level l.
  std::vector<std::vector<double>> slice_rate;
  std::vector<double> level_rate;  ///< aggregate rate of each level
};

[[nodiscard]] WeightedDecomposition weighted_serial_decomposition(
    const std::vector<double>& rates, const std::vector<double>& weights);

}  // namespace gw::core
