// Classed-population tests: the ClassedPopulation round-trip laws, and the
// expand/compress equivalence contract (DESIGN.md) differentially — every
// classed layer (congestion, jacobian, scan probes, solves, shard repairs)
// must agree with the expanded per-user evaluation on expand(pop), with
// per-class values being the *representative* member's (the last expanded
// member; see the tie-breaking contract in core/population.hpp).
#include "core/population.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/fair_share.hpp"
#include "core/gfunction.hpp"
#include "core/nash.hpp"
#include "core/priority_alloc.hpp"
#include "core/proportional.hpp"
#include "core/serial_general.hpp"
#include "core/weighted_serial.hpp"
#include "ctrl/shard.hpp"
#include "numerics/rng.hpp"

namespace gw::core {
namespace {

constexpr double kLayerTol = 1e-12;  ///< evaluation-layer relative budget
constexpr double kLayerFloor = 1e-11;  ///< absolute floor near cancellation

std::vector<RateClass> small_classes() {
  return {{0.02, 1.0, 3}, {0.05, 1.0, 1}, {0.03, 1.0, 4}, {0.05, 1.0, 2}};
}

/// Randomized classed population: mixed counts, deliberate rate ties
/// across classes, occasional non-unit weights when `weighted`.
ClassedPopulation random_population(numerics::Rng& rng, bool weighted) {
  const std::size_t k = 2 + rng.uniform_index(5);
  std::vector<RateClass> classes(k);
  for (auto& c : classes) {
    c.rate = rng.uniform(0.005, 0.08);
    c.weight = weighted ? 0.5 + 0.25 * rng.uniform_index(4) : 1.0;
    c.count = 1 + rng.uniform_index(5);
  }
  if (k >= 2 && rng.bernoulli(0.5)) classes[k - 1].rate = classes[0].rate;
  return ClassedPopulation::from_classes(std::move(classes));
}

void expect_layer_close(double classed, double expanded, const char* what,
                        std::size_t a) {
  if (std::isinf(expanded) || std::isnan(expanded)) {
    EXPECT_EQ(std::isinf(classed), std::isinf(expanded))
        << what << " class " << a;
    EXPECT_EQ(std::isnan(classed), std::isnan(expanded))
        << what << " class " << a;
  } else {
    // Classed closed forms reassociate the expanded sums, so agreement is
    // relative to magnitude with a small absolute floor where the expanded
    // form cancels to ~0.
    const double tol =
        std::max(kLayerFloor, kLayerTol * std::abs(expanded));
    EXPECT_NEAR(classed, expanded, tol) << what << " class " << a;
  }
}

// ---------------------------------------------------------------------------
// ClassedPopulation container laws
// ---------------------------------------------------------------------------

TEST(Population, RoundTripExpandCompress) {
  numerics::Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(40);
    std::vector<double> rates(n);
    for (auto& r : rates) r = 0.01 * (1 + rng.uniform_index(8));  // ties
    const ClassedPopulation pop = ClassedPopulation::compress(rates);
    std::vector<double> sorted = rates;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(pop.expand(), sorted);  // exact: compression copies doubles
    EXPECT_EQ(pop.total_users(), n);
  }
}

TEST(Population, RoundTripCompressExpandCanonical) {
  const auto pop = ClassedPopulation::from_classes(small_classes());
  const ClassedPopulation back = ClassedPopulation::compress(pop.expand());
  EXPECT_EQ(back.classes(), pop.canonical().classes());
}

TEST(Population, FromClassesPreservesOrderWithoutMerging) {
  // k identical-rate classes stay k classes: the index order is part of
  // the tie-breaking contract, so from_classes never canonicalizes.
  const auto pop = ClassedPopulation::from_classes(
      {{0.1, 1.0, 2}, {0.1, 1.0, 3}, {0.1, 1.0, 1}});
  EXPECT_EQ(pop.k(), 3u);
  EXPECT_EQ(pop.total_users(), 6u);
  EXPECT_EQ(pop.base(0), 0u);
  EXPECT_EQ(pop.base(1), 2u);
  EXPECT_EQ(pop.base(2), 5u);
  EXPECT_EQ(pop.canonical().k(), 1u);  // canonical() is where merging lives
}

TEST(Population, ValidationRejectsMalformedClasses) {
  EXPECT_THROW((void)ClassedPopulation::from_classes({}),
               std::invalid_argument);
  EXPECT_THROW((void)ClassedPopulation::from_classes({{-0.1, 1.0, 1}}),
               std::invalid_argument);
  EXPECT_THROW((void)ClassedPopulation::from_classes({{0.1, 0.0, 1}}),
               std::invalid_argument);
  EXPECT_THROW((void)ClassedPopulation::from_classes({{0.1, 1.0, 0}}),
               std::invalid_argument);
  auto pop = ClassedPopulation::from_classes({{0.1, 1.0, 2}});
  EXPECT_THROW(pop.set_rate(0, -1.0), std::invalid_argument);
  EXPECT_THROW(pop.set_count(0, 0), std::invalid_argument);
  pop.set_count(0, 5);
  EXPECT_EQ(pop.total_users(), 5u);
}

// ---------------------------------------------------------------------------
// Evaluation-layer differentials: classed closed forms vs expanded forms
// ---------------------------------------------------------------------------

struct ClassedCase {
  const char* label;
  bool weighted = false;  ///< needs per-user weights from the population
  /// False for disciplines with no interior Nash point under LinearUtility:
  /// SmallestRateFirst rewards undercutting just below the current smallest
  /// rate, so best responses race to a knife-edge tie cluster whose exact
  /// location is search-grid dependent (the paper's argument against
  /// rate-priority disciplines). Such cases are exercised at the evaluation
  /// layer only; the solver-layer differentials need a stable fixed point.
  bool interior_equilibrium = true;
  std::shared_ptr<const AllocationFunction> (*make)(
      const ClassedPopulation& pop);
};

std::vector<ClassedCase> classed_cases() {
  return {
      {"Proportional", false, true,
       [](const ClassedPopulation&)
           -> std::shared_ptr<const AllocationFunction> {
         return std::make_shared<ProportionalAllocation>();
       }},
      {"FairShare", false, true,
       [](const ClassedPopulation&)
           -> std::shared_ptr<const AllocationFunction> {
         return std::make_shared<FairShareAllocation>();
       }},
      {"GeneralSerial[mg1]", false, true,
       [](const ClassedPopulation&)
           -> std::shared_ptr<const AllocationFunction> {
         return std::make_shared<GeneralSerialAllocation>(GFunction::mg1(2.0));
       }},
      {"GeneralProportional[mg1]", false, true,
       [](const ClassedPopulation&)
           -> std::shared_ptr<const AllocationFunction> {
         return std::make_shared<GeneralProportionalAllocation>(
             GFunction::mg1(0.5));
       }},
      {"SmallestRateFirst", false, false,
       [](const ClassedPopulation&)
           -> std::shared_ptr<const AllocationFunction> {
         return std::make_shared<SmallestRateFirstAllocation>();
       }},
      {"WeightedSerial", true, true,
       [](const ClassedPopulation& pop)
           -> std::shared_ptr<const AllocationFunction> {
         std::vector<double> weights(pop.total_users());
         pop.expand_weights_into(weights);
         return std::make_shared<WeightedSerialAllocation>(std::move(weights));
       }},
  };
}

TEST(ClassedEval, CongestionMatchesExpandedRepresentative) {
  numerics::Rng rng(41);
  EvalWorkspace ws;
  EvalWorkspace expanded_ws;
  for (const auto& c : classed_cases()) {
    for (int trial = 0; trial < 20; ++trial) {
      const ClassedPopulation pop = random_population(rng, c.weighted);
      const auto alloc = c.make(pop);
      std::vector<double> classed(pop.k());
      ASSERT_TRUE(alloc->congestion_classes_into(pop, classed, ws))
          << c.label;
      const std::vector<double> rates = pop.expand();
      std::vector<double> expanded(rates.size());
      alloc->congestion_into(rates, expanded, expanded_ws);
      for (std::size_t a = 0; a < pop.k(); ++a) {
        const std::size_t rep = pop.base(a) + pop[a].count - 1;
        expect_layer_close(classed[a], expanded[rep], c.label, a);
      }
    }
  }
}

TEST(ClassedEval, JacobianMatchesExpandedPartials) {
  numerics::Rng rng(43);
  EvalWorkspace ws;
  numerics::Matrix cross;
  for (const auto& c : classed_cases()) {
    for (int trial = 0; trial < 12; ++trial) {
      const ClassedPopulation pop = random_population(rng, c.weighted);
      const auto alloc = c.make(pop);
      std::vector<double> own(pop.k());
      ASSERT_TRUE(alloc->jacobian_classes_into(pop, cross, own, ws))
          << c.label;
      const std::vector<double> rates = pop.expand();
      for (std::size_t a = 0; a < pop.k(); ++a) {
        const std::size_t rep_a = pop.base(a) + pop[a].count - 1;
        expect_layer_close(own[a], alloc->partial(rep_a, rep_a, rates),
                           c.label, a);
        for (std::size_t b = 0; b < pop.k(); ++b) {
          // cross(a, b) is dC_i/dr_j for i = rep of a, j a member of b
          // other than i; needs such a j to exist.
          std::size_t j;
          if (b != a) {
            j = pop.base(b);
          } else if (pop[a].count >= 2) {
            j = pop.base(a);
          } else {
            continue;
          }
          expect_layer_close(cross(a, b), alloc->partial(rep_a, j, rates),
                             c.label, a);
        }
        // Whole-class chain rule documented on jacobian_classes_into:
        // dC_rep/drho_a = own[a] + (count_a - 1) * cross(a, a).
        if (pop[a].count >= 2) {
          const double whole =
              own[a] + static_cast<double>(pop[a].count - 1) * cross(a, a);
          double expanded_whole = alloc->partial(rep_a, rep_a, rates);
          for (std::size_t j = pop.base(a); j < rep_a; ++j) {
            expanded_whole += alloc->partial(rep_a, j, rates);
          }
          if (std::isfinite(expanded_whole)) {
            EXPECT_NEAR(whole, expanded_whole, 1e-10 * pop[a].count)
                << c.label << " class " << a;
          }
        }
      }
    }
  }
}

TEST(ClassedEval, ScanProbeMatchesExpandedCongestion) {
  numerics::Rng rng(47);
  EvalWorkspace scan_ws;
  EvalWorkspace probe_ws;
  for (const auto& c : classed_cases()) {
    for (int trial = 0; trial < 15; ++trial) {
      const ClassedPopulation pop = random_population(rng, c.weighted);
      const auto alloc = c.make(pop);
      const std::size_t a = rng.uniform_index(pop.k());
      if (!alloc->scan_prepare_classes(a, pop, scan_ws)) continue;
      const std::size_t rep = pop.base(a) + pop[a].count - 1;
      std::vector<double> mutated = pop.expand();
      const std::vector<double> probes = {0.0, pop[a].rate,
                                          rng.uniform(0.0, 0.1),
                                          pop[(a + 1) % pop.k()].rate,
                                          rng.uniform(0.9, 1.5)};
      for (const double x : probes) {
        mutated[rep] = x;
        const double expected =
            alloc->congestion_of_into(rep, mutated, probe_ws);
        const double got =
            alloc->scan_congestion_of_class(a, x, pop, scan_ws);
        expect_layer_close(got, expected, c.label, a);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Solver-layer differentials
// ---------------------------------------------------------------------------

NashOptions tight_options() {
  // 1e-10 rather than 1e-11: serial tie kinks leave one-sided FD Jacobian
  // branches that stall the classed Newton just above machine-level residual.
  NashOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 200;
  return options;
}

TEST(ClassedSolver, EquilibriumMatchesExpandedSolve) {
  const auto utility = std::make_shared<LinearUtility>(1.0, 0.25);
  for (const auto& c : classed_cases()) {
    if (!c.interior_equilibrium) continue;
    const auto pop = ClassedPopulation::from_classes(small_classes());
    const auto alloc = c.make(pop);
    const UtilityProfile class_profile = uniform_profile(utility, pop.k());
    const auto classed =
        solve_nash_classed(*alloc, class_profile, pop, tight_options());
    ASSERT_TRUE(classed.converged) << c.label;

    // Expanded reference: best-response dynamics to its movement tolerance,
    // then the dense Newton polish drives the KKT residual the rest of the
    // way to the classed tolerance.
    const std::size_t n = pop.total_users();
    const UtilityProfile profile = uniform_profile(utility, n);
    NashOptions br_options;
    br_options.tolerance = 1e-9;
    br_options.max_iterations = 400;
    auto expanded = solve_nash(*alloc, profile, pop.expand(), br_options);
    ASSERT_TRUE(expanded.converged) << c.label;
    const auto polish = newton_fdc(
        *alloc, profile, expanded.rates,
        NewtonFdcOptions{.max_iterations = 32, .tolerance = 1e-10});

    const std::vector<double> classed_rates = classed.population.expand();
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      worst = std::max(worst,
                       std::abs(classed_rates[i] - expanded.rates[i]));
    }
    EXPECT_TRUE(polish.converged) << c.label;
    EXPECT_LE(worst, 1e-9) << c.label;
  }
}

TEST(ClassedSolver, ClassedResidualVanishesAtEquilibrium) {
  const auto utility = std::make_shared<LinearUtility>(1.0, 0.25);
  for (const auto& c : classed_cases()) {
    if (!c.interior_equilibrium) continue;
    const auto pop = ClassedPopulation::from_classes(small_classes());
    const auto alloc = c.make(pop);
    const UtilityProfile class_profile = uniform_profile(utility, pop.k());
    const auto solved =
        solve_nash_classed(*alloc, class_profile, pop, tight_options());
    ASSERT_TRUE(solved.converged) << c.label;
    const auto residuals =
        classed_kkt_residuals(*alloc, class_profile, solved.population);
    for (std::size_t a = 0; a < residuals.size(); ++a) {
      if (std::isnan(residuals[a])) continue;
      EXPECT_LE(std::abs(residuals[a]), 1e-6) << c.label << " class " << a;
    }
  }
}

TEST(ClassedSolver, ExpansionFallbackForDisciplinesWithoutClosedForms) {
  // FixedPriority has no classed closed forms (priority is by expanded
  // user index, which classes cannot represent), so the solver must fall
  // back to the expanded game transparently.
  const FixedPriorityAllocation alloc;
  const auto pop = ClassedPopulation::from_classes({{0.05, 1.0, 2},
                                                    {0.03, 1.0, 3}});
  const auto profile =
      uniform_profile(std::make_shared<LinearUtility>(1.0, 0.25), pop.k());
  EvalWorkspace ws;
  std::vector<double> staging(pop.k());
  EXPECT_FALSE(alloc.congestion_classes_into(pop, staging, ws));
  const auto solved = solve_nash_classed(alloc, profile, pop, {});
  EXPECT_TRUE(solved.used_expansion);
  EXPECT_TRUE(solved.converged);
  EXPECT_EQ(solved.population.total_users(), pop.total_users());
}

TEST(ClassedSolver, CountChurnShiftsEquilibriumConsistently) {
  // Count-only churn is the million-user control-plane operation: changing
  // a class count and re-solving warm must land on the same equilibrium as
  // a cold solve of the churned population.
  const auto alloc = std::make_shared<GeneralSerialAllocation>(
      GFunction::mg1(2.0));
  auto pop = ClassedPopulation::from_classes(small_classes());
  const auto profile =
      uniform_profile(std::make_shared<LinearUtility>(1.0, 0.25), pop.k());
  auto warm = solve_nash_classed(*alloc, profile, pop, tight_options());
  ASSERT_TRUE(warm.converged);
  auto churned = warm.population;
  churned.set_count(2, 9);
  const auto repaired =
      solve_nash_classed(*alloc, profile, churned, tight_options());
  auto cold_pop = ClassedPopulation::from_classes(small_classes());
  cold_pop.set_count(2, 9);
  const auto cold =
      solve_nash_classed(*alloc, profile, cold_pop, tight_options());
  ASSERT_TRUE(repaired.converged);
  ASSERT_TRUE(cold.converged);
  for (std::size_t a = 0; a < cold_pop.k(); ++a) {
    EXPECT_NEAR(repaired.population[a].rate, cold.population[a].rate, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Classed control-plane shards
// ---------------------------------------------------------------------------

TEST(ClassedShard, ClassedConstructionSolvesAndReportsSize) {
  const auto alloc = std::make_shared<FairShareAllocation>();
  const auto pop = ClassedPopulation::from_classes(small_classes());
  const auto profile =
      uniform_profile(std::make_shared<LinearUtility>(1.0, 0.25), pop.k());
  const ctrl::SolverShard shard(alloc, profile, pop);
  EXPECT_TRUE(shard.classed());
  EXPECT_EQ(shard.size(), pop.total_users());
  EXPECT_EQ(shard.population().k(), pop.k());
  const auto residuals =
      classed_kkt_residuals(*alloc, profile, shard.population());
  for (const double e : residuals) {
    if (!std::isnan(e)) {
      EXPECT_LE(std::abs(e), 1e-6);
    }
  }
}

TEST(ClassedShard, ExpandedStagingThrowsOnClassedShard) {
  const auto alloc = std::make_shared<FairShareAllocation>();
  const auto profile =
      uniform_profile(std::make_shared<LinearUtility>(1.0, 0.25), 4);
  ctrl::SolverShard classed(alloc, profile,
                            ClassedPopulation::from_classes(small_classes()));
  EXPECT_THROW(classed.stage(0, std::make_shared<LinearUtility>(1.0, 0.3)),
               std::logic_error);
  ctrl::SolverShard expanded(alloc, profile);
  EXPECT_THROW((void)expanded.population(), std::logic_error);
  EXPECT_THROW(expanded.stage_class_count(0, 2), std::logic_error);
}

TEST(ClassedShard, CountChurnRepairsViaClassPath) {
  const auto alloc = std::make_shared<GeneralSerialAllocation>(
      GFunction::mg1(2.0));
  const auto pop = ClassedPopulation::from_classes(small_classes());
  const auto profile =
      uniform_profile(std::make_shared<LinearUtility>(1.0, 0.25), pop.k());
  ctrl::SolverShard shard(alloc, profile, pop);
  EXPECT_FALSE(shard.dirty());
  shard.stage_class_count(1, 6);
  EXPECT_TRUE(shard.dirty());
  const auto outcome = shard.repair(ctrl::RepairPolicy{});
  EXPECT_FALSE(shard.dirty());
  EXPECT_TRUE(outcome.converged);
  EXPECT_EQ(outcome.path, ctrl::RepairPath::kClassRepair);
  EXPECT_EQ(shard.population()[1].count, 6u);
  EXPECT_EQ(shard.size(), pop.total_users() + 5);

  // The repaired point must match a cold classed solve of the churned
  // population (same oracle the expanded repair ladder is tested against).
  auto churned = pop;
  churned.set_count(1, 6);
  const auto cold = solve_nash_classed(*alloc, profile, churned,
                                       ctrl::RepairPolicy{}.full_solve);
  ASSERT_TRUE(cold.converged);
  for (std::size_t a = 0; a < churned.k(); ++a) {
    EXPECT_NEAR(shard.population()[a].rate, cold.population[a].rate, 1e-7);
  }
}

TEST(ClassedShard, ClassUtilityChurnRepairs) {
  const auto alloc = std::make_shared<FairShareAllocation>();
  const auto pop = ClassedPopulation::from_classes(small_classes());
  const auto profile =
      uniform_profile(std::make_shared<LinearUtility>(1.0, 0.25), pop.k());
  ctrl::SolverShard shard(alloc, profile, pop);
  const double before = shard.population()[0].rate;
  shard.stage_class_utility(0, std::make_shared<LinearUtility>(1.0, 0.6));
  const auto outcome = shard.repair(ctrl::RepairPolicy{});
  EXPECT_TRUE(outcome.converged);
  // A more delay-averse class backs off.
  EXPECT_LT(shard.population()[0].rate, before);
}

TEST(ClassedShard, FullResolveModeColdSolvesClassed) {
  const auto alloc = std::make_shared<FairShareAllocation>();
  const auto pop = ClassedPopulation::from_classes(small_classes());
  const auto profile =
      uniform_profile(std::make_shared<LinearUtility>(1.0, 0.25), pop.k());
  ctrl::SolverShard shard(alloc, profile, pop);
  shard.stage_class_count(0, 8);
  ctrl::RepairPolicy naive;
  naive.mode = ctrl::RepairMode::kFullResolve;
  const auto outcome = shard.repair(naive);
  EXPECT_TRUE(outcome.converged);
  EXPECT_EQ(outcome.path, ctrl::RepairPath::kFullSolve);
  EXPECT_EQ(shard.population()[0].count, 8u);
}

}  // namespace
}  // namespace gw::core
