// Allocation functions (paper Section 3.1).
//
// An allocation function C maps a vector of Poisson rates r to the vector
// of per-user mean queue lengths c realized by a work-conserving service
// discipline at a unit-rate exponential server. Every implementation must
//   * satisfy the aggregate constraint sum_i C_i(r) = g(sum_i r_i),
//   * satisfy the subsidiary subset constraints,
//   * be symmetric (permuting r permutes c), and
//   * be defined on all of R^N_+, with +infinity entries where users
//     saturate (paper footnote 6).
//
// Two evaluation surfaces:
//   * The span/workspace primitives (congestion_into, congestion_of_into,
//     jacobian_into, second_partials_into) are the virtual operations.
//     They take pre-validated rates, write into caller-provided spans and
//     draw scratch from an EvalWorkspace, so solver inner loops run
//     without heap allocation (see DESIGN.md, "validate-once evaluation
//     contract").
//   * The legacy vector-returning API (congestion, congestion_of,
//     jacobian) is a set of thin non-virtual wrappers: validate, feed a
//     thread-local workspace, delegate. Existing callers are unchanged.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/eval_workspace.hpp"
#include "core/population.hpp"
#include "numerics/matrix.hpp"

namespace gw::core {

class AllocationFunction {
 public:
  virtual ~AllocationFunction() = default;

  /// Human-readable discipline name for reports.
  [[nodiscard]] virtual std::string name() const = 0;

  // ---- span/workspace primitives (pre-validated rates) -----------------

  /// Writes C(r) into `out`; entries may be +infinity. Requires
  /// out.size() == rates.size(), rates pre-validated (validate_rates), and
  /// `rates`/`out` not aliasing `ws` buffers. Performs no validation and,
  /// once `ws` is warm, no heap allocation.
  virtual void congestion_into(std::span<const double> rates,
                               std::span<double> out,
                               EvalWorkspace& ws) const = 0;

  /// Single component C_i(r). Default: evaluates the full vector into the
  /// workspace's reserved buffer; disciplines with a cheaper single-user
  /// path override it.
  [[nodiscard]] virtual double congestion_of_into(std::size_t i,
                                                  std::span<const double> rates,
                                                  EvalWorkspace& ws) const;

  /// Batched Jacobian J_ij = dC_i / dr_j written into `out` (resized to
  /// n x n). Default loops partial(); the serial family overrides with a
  /// one-sort whole-matrix fill.
  virtual void jacobian_into(std::span<const double> rates,
                             numerics::Matrix& out, EvalWorkspace& ws) const;

  /// Batched own-row second partials out(i, j) = d^2 C_i / (dr_i dr_j)
  /// (the matrix consumed by the FDC/relaxation machinery). Default loops
  /// second_partial().
  virtual void second_partials_into(std::span<const double> rates,
                                    numerics::Matrix& out,
                                    EvalWorkspace& ws) const;

  // ---- best-response scan fast path ------------------------------------

  /// Stages per-trial-rate evaluation tables for a best-response scan of
  /// user i: the solver probes C_i(x, r_{-i}) at many x with the opponent
  /// rates fixed. Returns true when this discipline staged tables (the
  /// scan_* workspace lanes plus ws.scan), after which scan_congestion_of
  /// must return exactly what congestion_of_into would on the same probe —
  /// bit-identical, saturation and Inf propagation included. Default:
  /// returns false (no fast path; the solver stays on congestion_of_into).
  /// The staged tables remain valid until the next call that prepares a
  /// scan at the same workspace level; mutating opponent rates invalidates
  /// them.
  [[nodiscard]] virtual bool scan_prepare(std::size_t i,
                                          std::span<const double> rates,
                                          EvalWorkspace& ws) const;

  /// C_i with user i's rate replaced by `x`, evaluated from the tables
  /// staged by a successful scan_prepare(i, ...). Only valid after such a
  /// prepare; the default (no fast path) throws std::logic_error.
  [[nodiscard]] virtual double scan_congestion_of(std::size_t i, double x,
                                                  std::span<const double> rates,
                                                  EvalWorkspace& ws) const;

  // ---- classed-population primitives -----------------------------------
  //
  // A ClassedPopulation (core/population.hpp) compresses N users into
  // k << N (rate, weight, count) classes. Disciplines whose congestion
  // depends on the rates only through the sorted multiset expose exact
  // O(k)-state closed forms here; the defaults return false so callers
  // feature-test (the same bool pattern as scan_prepare) and fall back to
  // expansion. Every override must agree with the expanded evaluation on
  // expand(pop) — per-class values are the *representative* member's (the
  // last expanded member; see the tie-breaking contract in population.hpp).

  /// Writes the per-class congestion (each class's representative member)
  /// into `out` (size pop.k()) and returns true, or returns false when
  /// this discipline has no classed closed form. No validation; `pop` is
  /// trusted like pre-validated rates.
  [[nodiscard]] virtual bool congestion_classes_into(
      const ClassedPopulation& pop, std::span<double> out,
      EvalWorkspace& ws) const;

  /// Per-member classed Jacobian: own[a] = dC_i/dr_i for a member i of
  /// class a, cross(a, b) = dC_i/dr_j for i in class a and a *different*
  /// member j of class b (cross is resized to k x k, own has size k).
  /// A solver moving a whole class's rate scales by counts itself:
  /// dC_i/drho_a = own[a] + (count_a - 1) * cross(a, a). Returns false
  /// when no classed closed form exists.
  [[nodiscard]] virtual bool jacobian_classes_into(
      const ClassedPopulation& pop, numerics::Matrix& cross,
      std::span<double> own, EvalWorkspace& ws) const;

  /// Classed best-response scan: stages tables so that
  /// scan_congestion_of_class(a, x, ...) returns the congestion of class
  /// a's representative member at trial rate x with every other user
  /// (including the class's other count-1 members) fixed. Returns false
  /// when no classed fast path exists (callers fall back to probing via
  /// congestion_classes_into on a trial population, or to expansion).
  /// Same table-validity rules as scan_prepare.
  [[nodiscard]] virtual bool scan_prepare_classes(
      std::size_t a, const ClassedPopulation& pop, EvalWorkspace& ws) const;

  /// The probe paired with a successful scan_prepare_classes(a, ...). The
  /// default (no fast path) throws std::logic_error.
  [[nodiscard]] virtual double scan_congestion_of_class(
      std::size_t a, double x, const ClassedPopulation& pop,
      EvalWorkspace& ws) const;

  // ---- legacy vector API (thin wrappers, behavior unchanged) -----------

  /// Congestion vector C(r); entries may be +infinity.
  /// Requires all rates >= 0 (throws std::invalid_argument otherwise).
  [[nodiscard]] std::vector<double> congestion(
      const std::vector<double>& rates) const;

  /// Single component C_i(r).
  [[nodiscard]] double congestion_of(std::size_t i,
                                     const std::vector<double>& rates) const;

  /// Jacobian matrix J_ij = dC_i / dr_j.
  [[nodiscard]] numerics::Matrix jacobian(
      const std::vector<double>& rates) const;

  // ---- derivatives (legacy signatures; closed-form where available) ----

  /// dC_i / dr_j. Default: Richardson-extrapolated numeric differentiation
  /// of congestion_of; override with closed forms where available.
  [[nodiscard]] virtual double partial(std::size_t i, std::size_t j,
                                       const std::vector<double>& rates) const;

  /// d^2 C_i / (dr_i dr_j). Default numeric.
  [[nodiscard]] virtual double second_partial(
      std::size_t i, std::size_t j, const std::vector<double>& rates) const;

  /// Validates a rate vector (non-negative, non-empty); throws
  /// std::invalid_argument. Solvers call this once at entry and then stay
  /// on the unvalidated *_into primitives.
  static void validate_rates(std::span<const double> rates);

 protected:
  /// The thread-local workspace behind the legacy vector wrappers. Legacy
  /// derivative overrides (partial/second_partial) may draw scratch from
  /// it — it is never held across a virtual call that could re-enter it.
  [[nodiscard]] static EvalWorkspace& scratch_workspace();
};

/// The induced allocation function of a subsystem (paper Section 4):
/// some users' rates are frozen; the remaining `free` users see the same
/// C restricted to their coordinates. If the base function is in MAC the
/// subsystem is too.
class SubsystemAllocation final : public AllocationFunction {
 public:
  /// `frozen_rates` supplies rates for every user of the base system;
  /// coordinates listed in `free_indices` are overridden by the reduced
  /// rate vector passed to congestion().
  SubsystemAllocation(std::shared_ptr<const AllocationFunction> base,
                      std::vector<double> frozen_rates,
                      std::vector<std::size_t> free_indices);

  [[nodiscard]] std::string name() const override;
  void congestion_into(std::span<const double> rates, std::span<double> out,
                       EvalWorkspace& ws) const override;
  [[nodiscard]] double congestion_of_into(std::size_t i,
                                          std::span<const double> rates,
                                          EvalWorkspace& ws) const override;
  [[nodiscard]] double partial(std::size_t i, std::size_t j,
                               const std::vector<double>& rates) const override;
  [[nodiscard]] double second_partial(
      std::size_t i, std::size_t j,
      const std::vector<double>& rates) const override;

  [[nodiscard]] std::size_t base_size() const noexcept {
    return frozen_rates_.size();
  }
  [[nodiscard]] std::size_t free_size() const noexcept {
    return free_indices_.size();
  }

  /// Maps a reduced (free-user) rate vector into the full base vector.
  [[nodiscard]] std::vector<double> embed(
      const std::vector<double>& rates) const;

  /// Allocation-free embed: writes the full base-system rate vector into
  /// `full` (full.size() == base_size()).
  void embed_into(std::span<const double> rates, std::span<double> full) const;

 private:
  std::shared_ptr<const AllocationFunction> base_;
  std::vector<double> frozen_rates_;
  std::vector<std::size_t> free_indices_;
};

}  // namespace gw::core
