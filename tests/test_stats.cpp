#include "numerics/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "numerics/rng.hpp"

namespace gw::numerics {
namespace {

TEST(RunningStat, MeanAndVariance) {
  RunningStat stat;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.add(x);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 9.0);
}

TEST(RunningStat, SingleSampleHasZeroVariance) {
  RunningStat stat;
  stat.add(3.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
}

TEST(RunningStat, MergeMatchesPooled) {
  Rng rng(5);
  RunningStat a, b, pooled;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal() * 2.0 + 1.0;
    pooled.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_NEAR(a.mean(), pooled.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), pooled.variance(), 1e-8);
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(StudentT, KnownCriticalValues) {
  EXPECT_NEAR(student_t_critical(1, 0.95), 12.706, 1e-3);
  EXPECT_NEAR(student_t_critical(10, 0.95), 2.228, 1e-3);
  EXPECT_NEAR(student_t_critical(10, 0.99), 3.169, 1e-3);
  EXPECT_NEAR(student_t_critical(10, 0.90), 1.812, 1e-3);
  // Asymptotic z values.
  EXPECT_NEAR(student_t_critical(100000, 0.95), 1.960, 5e-3);
}

TEST(StudentT, InterpolationMonotone) {
  EXPECT_GT(student_t_critical(11, 0.95), student_t_critical(14, 0.95));
}

TEST(BatchMeansCi, CoversTrueMean) {
  // 20 batches of normal(7, 1) means: CI should contain 7 almost always.
  Rng rng(77);
  int covered = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> batches;
    for (int b = 0; b < 20; ++b) batches.push_back(7.0 + rng.normal() * 0.5);
    if (batch_means_ci(batches, 0.95).contains(7.0)) ++covered;
  }
  EXPECT_GT(covered, trials * 0.88);  // nominal 95%
}

TEST(BatchMeansCi, DegenerateInputs) {
  EXPECT_EQ(batch_means_ci({}).batches, 0u);
  const auto one = batch_means_ci({3.0});
  EXPECT_DOUBLE_EQ(one.mean, 3.0);
  EXPECT_DOUBLE_EQ(one.half_width, 0.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-5.0);   // clamps into bin 0
  h.add(100.0);  // clamps into bin 9
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, QuantileRoughlyCorrect) {
  Rng rng(123);
  Histogram h(0.0, 1.0, 200);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
}

TEST(Histogram, InvalidArgumentsThrow) {
  EXPECT_THROW(Histogram(1.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace gw::numerics
