#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "numerics/rng.hpp"
#include "sim/rate_estimator.hpp"
#include "sim/tracker.hpp"

namespace gw::sim {
namespace {

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, SimultaneousEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(3); });
  sim.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  sim.cancel(id);
  sim.run_until(2.0);
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 5) sim.schedule_in(1.0, chain);
  };
  sim.schedule_at(0.0, chain);
  sim.run_until(100.0);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.processed_events(), 5u);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(5.0, [&] { ++fired; });
  sim.run_until(3.0);
  EXPECT_EQ(fired, 1);
  sim.run_until(6.0);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, PastSchedulingThrows) {
  Simulator sim;
  sim.run_until(5.0);
  EXPECT_THROW((void)sim.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW((void)sim.run_until(2.0), std::invalid_argument);
}

TEST(Simulator, CancelAfterFireIsNoOp) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.run_until(1.5);
  EXPECT_EQ(fired, 1);
  sim.cancel(id);  // already fired: must not disturb the pending event
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(3.0);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, DoubleCancelIsNoOp) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  sim.schedule_at(1.5, [] {});
  sim.cancel(id);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.cancel(id);  // second cancel must not underflow the live count
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(2.0);
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, CancelBogusIdIsNoOp) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(1.0, [&] { fired = true; });
  sim.cancel(0);                     // the "no event" sentinel
  sim.cancel(0xdeadbeefdeadbeefULL);  // never issued
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, PendingEventsCountsLiveOnly) {
  // Regression: cancelled events used to linger as tombstones, so
  // pending_events() (heap size minus tombstones) could drift — and with
  // enough cancels the subtraction underflowed. Now it must track the
  // live population exactly at every step.
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sim.schedule_at(1.0 + i, [] {}));
  }
  EXPECT_EQ(sim.pending_events(), 100u);
  for (int i = 0; i < 100; i += 2) sim.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(sim.pending_events(), 50u);
  for (const EventId id : ids) sim.cancel(id);  // re-cancels are no-ops
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.run_until(200.0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, SlotReuseDoesNotConfuseCancel) {
  Simulator sim;
  bool first = false, second = false;
  const EventId stale = sim.schedule_at(1.0, [&] { first = true; });
  sim.cancel(stale);
  // The freed slot is reused under a fresh generation; the stale handle
  // must not reach the new occupant.
  const EventId fresh = sim.schedule_at(2.0, [&] { second = true; });
  sim.cancel(stale);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(3.0);
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
  sim.cancel(fresh);  // post-fire cancel of the reused slot: no-op
}

TEST(Simulator, FifoOrderSurvivesCancellation) {
  Simulator sim;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(sim.schedule_at(1.0, [&order, i] { order.push_back(i); }));
  }
  sim.cancel(ids[1]);
  sim.cancel(ids[4]);
  sim.cancel(ids[7]);
  sim.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{0, 2, 3, 5, 6}));
}

TEST(Simulator, RescheduleFromInsideAction) {
  // An action that schedules new work can land in the slot it just
  // vacated; ids must stay distinguishable.
  Simulator sim;
  int fired = 0;
  EventId inner = 0;
  sim.schedule_at(1.0, [&] {
    inner = sim.schedule_in(1.0, [&] { ++fired; });
  });
  sim.run_until(1.5);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(3.0);
  EXPECT_EQ(fired, 1);
  sim.cancel(inner);  // already fired
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, DifferentialAgainstReferenceModel) {
  // Randomized schedule/cancel workload checked against a naive reference
  // queue (linear scan, (time, insertion seq) order). Any divergence in
  // firing order or survivor set is a kernel bug.
  struct RefEvent {
    double time;
    int tag;
    bool cancelled = false;
  };
  numerics::Rng rng(20260805);
  for (int trial = 0; trial < 20; ++trial) {
    Simulator sim;
    std::vector<RefEvent> reference;
    std::vector<EventId> ids;
    std::vector<int> fired;
    const int n = 200;
    for (int tag = 0; tag < n; ++tag) {
      const double t = rng.uniform(0.0, 100.0);
      ids.push_back(sim.schedule_at(t, [&fired, tag] { fired.push_back(tag); }));
      reference.push_back({t, tag});
    }
    for (int k = 0; k < n / 2; ++k) {
      const auto victim = static_cast<std::size_t>(
          rng.uniform_index(static_cast<std::uint64_t>(n)));
      sim.cancel(ids[victim]);
      reference[victim].cancelled = true;
    }
    sim.run_until(200.0);
    std::vector<RefEvent> expected;
    for (const auto& e : reference) {
      if (!e.cancelled) expected.push_back(e);
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [](const RefEvent& a, const RefEvent& b) {
                       return a.time < b.time;
                     });
    ASSERT_EQ(fired.size(), expected.size()) << "trial " << trial;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(fired[i], expected[i].tag) << "trial " << trial << " pos " << i;
    }
    EXPECT_EQ(sim.pending_events(), 0u);
  }
}

TEST(Simulator, LargeHeapStress) {
  Simulator sim;
  numerics::Rng rng(7);
  std::size_t fired = 0;
  double last = -1.0;
  for (int i = 0; i < 50000; ++i) {
    sim.schedule_at(rng.uniform(0.0, 1000.0), [&] {
      EXPECT_GE(sim.now(), last);
      last = sim.now();
      ++fired;
    });
  }
  EXPECT_EQ(sim.pending_events(), 50000u);
  sim.run_until(1000.0);
  EXPECT_EQ(fired, 50000u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Tracker, TimeAverageOfSquareWave) {
  QueueTracker tracker(1);
  tracker.reset(0.0);
  tracker.on_change(0.0, 0, +1);  // occupancy 1 during [0, 4)
  tracker.on_change(4.0, 0, +1);  // occupancy 2 during [4, 6)
  tracker.on_change(6.0, 0, -2);  // occupancy 0 during [6, 10)
  EXPECT_NEAR(tracker.time_average(0, 10.0), (4.0 + 4.0) / 10.0, 1e-12);
}

TEST(Tracker, BatchesAreIndependentWindows) {
  QueueTracker tracker(1);
  tracker.reset(0.0);
  tracker.close_batch(0.0);  // open first batch
  tracker.on_change(0.0, 0, +1);
  const auto batch1 = tracker.close_batch(2.0);  // occupancy 1 throughout
  ASSERT_EQ(batch1.size(), 1u);
  EXPECT_NEAR(batch1[0], 1.0, 1e-12);
  tracker.on_change(2.0, 0, +1);
  const auto batch2 = tracker.close_batch(4.0);  // occupancy 2 throughout
  EXPECT_NEAR(batch2[0], 2.0, 1e-12);
}

TEST(Tracker, DelayAccounting) {
  QueueTracker tracker(2);
  tracker.reset(0.0);
  tracker.on_departure(0, 1.5);
  tracker.on_departure(0, 2.5);
  tracker.on_departure(1, 10.0);
  EXPECT_NEAR(tracker.mean_delay(0), 2.0, 1e-12);
  EXPECT_NEAR(tracker.mean_delay(1), 10.0, 1e-12);
  EXPECT_EQ(tracker.departures(0), 2u);
}

TEST(Tracker, NegativeOccupancyThrows) {
  QueueTracker tracker(1);
  EXPECT_THROW(tracker.on_change(0.0, 0, -1), std::logic_error);
}

TEST(Tracker, ResetDiscardsHistoryKeepsOccupancy) {
  QueueTracker tracker(1);
  tracker.on_change(0.0, 0, +1);
  tracker.reset(5.0);
  EXPECT_EQ(tracker.occupancy(0), 1);
  // After reset, the standing occupant counts from t=5.
  EXPECT_NEAR(tracker.time_average(0, 7.0), 1.0, 1e-12);
  EXPECT_EQ(tracker.departures(0), 0u);
}

TEST(RateEstimator, ConvergesToTrueRateOnRegularTrain) {
  RateEstimator estimator(1, 50.0);
  const double rate = 0.4;
  double t = 0.0;
  for (int k = 0; k < 2000; ++k) {
    t += 1.0 / rate;
    estimator.on_arrival(0, t);
  }
  EXPECT_NEAR(estimator.estimate(0, t), rate, 0.05 * rate);
}

TEST(RateEstimator, DecaysAfterSilence) {
  RateEstimator estimator(1, 10.0);
  estimator.on_arrival(0, 0.0);
  const double soon = estimator.estimate(0, 1.0);
  const double later = estimator.estimate(0, 100.0);
  EXPECT_GT(soon, later);
  EXPECT_NEAR(later, 0.0, 1e-4);
}

TEST(RateEstimator, TracksRateChanges) {
  RateEstimator estimator(1, 30.0);
  double t = 0.0;
  for (int k = 0; k < 500; ++k) {
    t += 5.0;  // rate 0.2
    estimator.on_arrival(0, t);
  }
  const double slow = estimator.estimate(0, t);
  for (int k = 0; k < 1000; ++k) {
    t += 1.25;  // rate 0.8
    estimator.on_arrival(0, t);
  }
  const double fast = estimator.estimate(0, t);
  EXPECT_NEAR(slow, 0.2, 0.05);
  EXPECT_NEAR(fast, 0.8, 0.1);
}

}  // namespace
}  // namespace gw::sim
