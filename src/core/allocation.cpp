#include "core/allocation.hpp"

#include <cmath>
#include <stdexcept>

#include "numerics/differentiate.hpp"

namespace gw::core {

void AllocationFunction::validate_rates(const std::vector<double>& rates) {
  if (rates.empty()) {
    throw std::invalid_argument("allocation: empty rate vector");
  }
  for (const double rate : rates) {
    if (rate < 0.0 || std::isnan(rate)) {
      throw std::invalid_argument("allocation: rates must be >= 0");
    }
  }
}

double AllocationFunction::congestion_of(
    std::size_t i, const std::vector<double>& rates) const {
  return congestion(rates).at(i);
}

double AllocationFunction::partial(std::size_t i, std::size_t j,
                                   const std::vector<double>& rates) const {
  return numerics::partial(
      [this, i](const std::vector<double>& r) { return congestion_of(i, r); },
      rates, j);
}

double AllocationFunction::second_partial(
    std::size_t i, std::size_t j, const std::vector<double>& rates) const {
  return numerics::mixed_partial(
      [this, i](const std::vector<double>& r) { return congestion_of(i, r); },
      rates, i, j);
}

numerics::Matrix AllocationFunction::jacobian(
    const std::vector<double>& rates) const {
  const std::size_t n = rates.size();
  numerics::Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) out(i, j) = partial(i, j, rates);
  }
  return out;
}

SubsystemAllocation::SubsystemAllocation(
    std::shared_ptr<const AllocationFunction> base,
    std::vector<double> frozen_rates, std::vector<std::size_t> free_indices)
    : base_(std::move(base)),
      frozen_rates_(std::move(frozen_rates)),
      free_indices_(std::move(free_indices)) {
  if (base_ == nullptr) {
    throw std::invalid_argument("SubsystemAllocation: null base");
  }
  if (free_indices_.empty()) {
    throw std::invalid_argument("SubsystemAllocation: no free users");
  }
  for (const std::size_t idx : free_indices_) {
    if (idx >= frozen_rates_.size()) {
      throw std::invalid_argument("SubsystemAllocation: index out of range");
    }
  }
}

std::string SubsystemAllocation::name() const {
  return base_->name() + "/subsystem(" + std::to_string(free_indices_.size()) +
         " of " + std::to_string(frozen_rates_.size()) + ")";
}

std::vector<double> SubsystemAllocation::embed(
    const std::vector<double>& rates) const {
  if (rates.size() != free_indices_.size()) {
    throw std::invalid_argument("SubsystemAllocation: wrong reduced size");
  }
  std::vector<double> full = frozen_rates_;
  for (std::size_t k = 0; k < free_indices_.size(); ++k) {
    full[free_indices_[k]] = rates[k];
  }
  return full;
}

std::vector<double> SubsystemAllocation::congestion(
    const std::vector<double>& rates) const {
  const auto full = base_->congestion(embed(rates));
  std::vector<double> reduced(free_indices_.size());
  for (std::size_t k = 0; k < free_indices_.size(); ++k) {
    reduced[k] = full[free_indices_[k]];
  }
  return reduced;
}

double SubsystemAllocation::partial(std::size_t i, std::size_t j,
                                    const std::vector<double>& rates) const {
  return base_->partial(free_indices_.at(i), free_indices_.at(j),
                        embed(rates));
}

double SubsystemAllocation::second_partial(
    std::size_t i, std::size_t j, const std::vector<double>& rates) const {
  return base_->second_partial(free_indices_.at(i), free_indices_.at(j),
                               embed(rates));
}

}  // namespace gw::core
