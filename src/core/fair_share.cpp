#include "core/fair_share.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/serial_common.hpp"
#include "queueing/mm1.hpp"

namespace gw::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// dC_i/dr_j from the serial loads, for the rank k of i and rank jr of j:
///   coefficient of r_(jr) inside S_m is (n - jr) at m == jr, 1 for
///   m > jr, 0 below; telescoping through g' gives the sum below.
double partial_from_serial(std::span<const double> serial, std::size_t n,
                           std::size_t k, std::size_t jr) {
  if (jr > k) return 0.0;  // larger-rate users never affect C_i
  if (serial[k] >= 1.0) return kInf;  // saturated component
  auto coefficient = [&](std::size_t m) -> double {
    if (m < jr) return 0.0;
    return (m == jr) ? static_cast<double>(n - jr) : 1.0;
  };
  double acc = 0.0;
  for (std::size_t m = jr; m <= k; ++m) {
    const double upper = coefficient(m) * queueing::g_prime(serial[m]);
    const double lower =
        (m > 0) ? coefficient(m - 1) * queueing::g_prime(serial[m - 1]) : 0.0;
    acc += (upper - lower) / static_cast<double>(n - m);
  }
  return acc;
}

/// d^2 C_i / (dr_i dr_j): dC_i/dr_i = g'(S_k), differentiated once more.
double second_partial_from_serial(std::span<const double> serial,
                                  std::size_t n, std::size_t k,
                                  std::size_t jr) {
  if (jr > k) return 0.0;
  if (serial[k] >= 1.0) return kInf;
  const double coefficient = (jr == k) ? static_cast<double>(n - k) : 1.0;
  return coefficient * queueing::g_double_prime(serial[k]);
}

}  // namespace

void FairShareAllocation::congestion_into(std::span<const double> rates,
                                          std::span<double> out,
                                          EvalWorkspace& ws) const {
  const std::size_t n = rates.size();
  ws.ensure(n);
  const std::span<std::size_t> order = ws.order(n);
  const std::span<double> sorted = ws.sorted(n);
  const std::span<double> serial = ws.serial(n);
  serial::sort_and_serial_loads(rates, order, sorted, serial);

  double running = 0.0;
  double g_prev = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double g_here = queueing::g(serial[k]);
    if (std::isinf(g_here)) {
      running = kInf;
    } else {
      running += (g_here - g_prev) / static_cast<double>(n - k);
      g_prev = g_here;
    }
    out[order[k]] = running;
  }
}

double FairShareAllocation::congestion_of_into(std::size_t i,
                                               std::span<const double> rates,
                                               EvalWorkspace& ws) const {
  const std::size_t n = rates.size();
  ws.ensure(n);
  const std::span<std::size_t> order = ws.order(n);
  const std::span<double> sorted = ws.sorted(n);
  const std::span<double> serial = ws.serial(n);
  serial::sort_and_serial_loads(rates, order, sorted, serial);

  // Accumulate the running share only through user i's own rank: shares of
  // larger-rate users never feed back into C_i (partial insularity).
  double running = 0.0;
  double g_prev = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double g_here = queueing::g(serial[k]);
    if (std::isinf(g_here)) {
      running = kInf;
    } else {
      running += (g_here - g_prev) / static_cast<double>(n - k);
      g_prev = g_here;
    }
    if (order[k] == i) return running;
  }
  return running;  // unreachable for valid i
}

void FairShareAllocation::jacobian_into(std::span<const double> rates,
                                        numerics::Matrix& out,
                                        EvalWorkspace& ws) const {
  const std::size_t n = rates.size();
  out.resize(n, n);
  ws.ensure(n);
  const std::span<std::size_t> order = ws.order(n);
  const std::span<double> sorted = ws.sorted(n);
  const std::span<double> serial = ws.serial(n);
  serial::sort_and_serial_loads(rates, order, sorted, serial);
  // One sort for the whole matrix; the rolling-row fill reproduces
  // partial_from_serial bit for bit in O(n^2) (see serial_common.hpp).
  serial::serial_jacobian_fill(
      order, serial, 1.0, [](double s) { return queueing::g_prime(s); },
      ws.a(n), out);
}

void FairShareAllocation::second_partials_into(std::span<const double> rates,
                                               numerics::Matrix& out,
                                               EvalWorkspace& ws) const {
  const std::size_t n = rates.size();
  out.resize(n, n);
  ws.ensure(n);
  const std::span<std::size_t> order = ws.order(n);
  const std::span<double> sorted = ws.sorted(n);
  const std::span<double> serial = ws.serial(n);
  serial::sort_and_serial_loads(rates, order, sorted, serial);
  serial::serial_second_partials_fill(
      order, serial, 1.0,
      [](double s) { return queueing::g_double_prime(s); }, out);
}

double FairShareAllocation::partial(std::size_t i, std::size_t j,
                                    const std::vector<double>& rates) const {
  validate_rates(rates);
  const std::size_t n = rates.size();
  EvalWorkspace& ws = scratch_workspace();
  ws.ensure(n);
  const std::span<std::size_t> order = ws.order(n);
  const std::span<std::size_t> rank = ws.rank(n);
  const std::span<double> sorted = ws.sorted(n);
  const std::span<double> serial = ws.serial(n);
  serial::sort_and_serial_loads(rates, order, sorted, serial);
  serial::rank_from_order(order, rank);
  return partial_from_serial(serial, n, rank[i], rank[j]);
}

double FairShareAllocation::second_partial(
    std::size_t i, std::size_t j, const std::vector<double>& rates) const {
  validate_rates(rates);
  const std::size_t n = rates.size();
  EvalWorkspace& ws = scratch_workspace();
  ws.ensure(n);
  const std::span<std::size_t> order = ws.order(n);
  const std::span<std::size_t> rank = ws.rank(n);
  const std::span<double> sorted = ws.sorted(n);
  const std::span<double> serial = ws.serial(n);
  serial::sort_and_serial_loads(rates, order, sorted, serial);
  serial::rank_from_order(order, rank);
  return second_partial_from_serial(serial, n, rank[i], rank[j]);
}

bool FairShareAllocation::scan_prepare(std::size_t i,
                                       std::span<const double> rates,
                                       EvalWorkspace& ws) const {
  serial::serial_scan_prepare(rates, i,
                              [](double s) { return queueing::g(s); }, ws);
  return true;
}

double FairShareAllocation::scan_congestion_of(std::size_t /*i*/, double x,
                                               std::span<const double> /*rates*/,
                                               EvalWorkspace& ws) const {
  return serial::serial_scan_probe(
      x, [](double s) { return queueing::g(s); }, ws.scan, ws);
}

bool FairShareAllocation::congestion_classes_into(const ClassedPopulation& pop,
                                                  std::span<double> out,
                                                  EvalWorkspace& ws) const {
  const serial::ClassedSerialStage stage = serial::classed_serial_stage(pop, ws);
  serial::classed_serial_congestion(
      stage, [](double s) { return queueing::g(s); }, out);
  return true;
}

bool FairShareAllocation::jacobian_classes_into(const ClassedPopulation& pop,
                                                numerics::Matrix& cross,
                                                std::span<double> own,
                                                EvalWorkspace& ws) const {
  const serial::ClassedSerialStage stage = serial::classed_serial_stage(pop, ws);
  serial::classed_serial_jacobian(
      stage, 1.0, [](double s) { return queueing::g_prime(s); },
      ws.a(pop.k()), cross, own);
  return true;
}

bool FairShareAllocation::scan_prepare_classes(std::size_t a,
                                               const ClassedPopulation& pop,
                                               EvalWorkspace& ws) const {
  serial::classed_serial_scan_prepare(
      pop, a, [](double s) { return queueing::g(s); }, ws);
  return true;
}

double FairShareAllocation::scan_congestion_of_class(
    std::size_t /*a*/, double x, const ClassedPopulation& /*pop*/,
    EvalWorkspace& ws) const {
  return serial::classed_serial_scan_probe(
      x, [](double s) { return queueing::g(s); }, ws.scan, ws);
}

FairShareDecomposition fair_share_decomposition(
    const std::vector<double>& rates) {
  const std::size_t n = rates.size();
  FairShareDecomposition out;
  out.order.resize(n);
  serial::sorted_order_into(rates, out.order);
  std::vector<double> sorted_rates(n);
  serial::gather_into(rates, out.order, sorted_rates);

  out.level_width.resize(n);
  double previous = 0.0;
  for (std::size_t l = 0; l < n; ++l) {
    out.level_width[l] = sorted_rates[l] - previous;
    previous = sorted_rates[l];
  }

  out.slice_rate.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t k = 0; k < n; ++k) {        // rank-k user
    const std::size_t user = out.order[k];
    for (std::size_t l = 0; l <= k; ++l) {      // contributes to levels 0..k
      out.slice_rate[user][l] = out.level_width[l];
    }
  }

  out.level_rate.resize(n);
  out.serial_load.resize(n);
  double cumulative = 0.0;
  for (std::size_t l = 0; l < n; ++l) {
    out.level_rate[l] = static_cast<double>(n - l) * out.level_width[l];
    cumulative += out.level_rate[l];
    out.serial_load[l] = cumulative;
  }
  return out;
}

}  // namespace gw::core
