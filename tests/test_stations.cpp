// Deterministic unit tests of the service disciplines: hand-scheduled
// packets with known demands, checking exactly who departs when.
#include "sim/stations.hpp"

#include <gtest/gtest.h>

#include "sim/drr_station.hpp"
#include "sim/fair_share_station.hpp"

namespace gw::sim {
namespace {

Packet make_packet(std::size_t user, double now, double demand,
                   int priority = 0) {
  Packet packet;
  packet.user = user;
  packet.arrival_time = now;
  packet.service_demand = demand;
  packet.remaining = demand;
  packet.priority = priority;
  return packet;
}

TEST(FifoStation, ServesInArrivalOrder) {
  Simulator sim;
  QueueTracker tracker(2);
  FifoStation station(sim, tracker);
  sim.schedule_at(0.0, [&] { station.arrive(make_packet(0, 0.0, 2.0)); });
  sim.schedule_at(1.0, [&] { station.arrive(make_packet(1, 1.0, 1.0)); });
  sim.run_until(10.0);
  // Packet 0 departs at 2 (delay 2); packet 1 at 3 (delay 2).
  EXPECT_NEAR(tracker.mean_delay(0), 2.0, 1e-12);
  EXPECT_NEAR(tracker.mean_delay(1), 2.0, 1e-12);
  EXPECT_EQ(tracker.departures(0), 1u);
  EXPECT_EQ(tracker.departures(1), 1u);
}

TEST(FifoStation, WorkConservingAcrossIdlePeriods) {
  Simulator sim;
  QueueTracker tracker(1);
  FifoStation station(sim, tracker);
  sim.schedule_at(0.0, [&] { station.arrive(make_packet(0, 0.0, 1.0)); });
  sim.schedule_at(5.0, [&] { station.arrive(make_packet(0, 5.0, 1.0)); });
  sim.run_until(10.0);
  EXPECT_NEAR(tracker.mean_delay(0), 1.0, 1e-12);  // both served alone
}

TEST(LifoStation, NewArrivalPreemptsAndResumes) {
  Simulator sim;
  QueueTracker tracker(2);
  LifoPreemptStation station(sim, tracker);
  sim.schedule_at(0.0, [&] { station.arrive(make_packet(0, 0.0, 3.0)); });
  sim.schedule_at(1.0, [&] { station.arrive(make_packet(1, 1.0, 1.0)); });
  sim.run_until(10.0);
  // User 1 preempts at t=1, departs at t=2 (delay 1).
  // User 0 resumes, departs at t=4 (delay 4): preemptive-RESUME, work kept.
  EXPECT_NEAR(tracker.mean_delay(1), 1.0, 1e-12);
  EXPECT_NEAR(tracker.mean_delay(0), 4.0, 1e-12);
}

TEST(PsStation, TwoJobsShareCapacityEqually) {
  Simulator sim;
  QueueTracker tracker(2);
  PsStation station(sim, tracker);
  sim.schedule_at(0.0, [&] { station.arrive(make_packet(0, 0.0, 1.0)); });
  sim.schedule_at(0.0, [&] { station.arrive(make_packet(1, 0.0, 1.0)); });
  sim.run_until(10.0);
  // Both progress at rate 1/2; both depart at t=2.
  EXPECT_NEAR(tracker.mean_delay(0), 2.0, 1e-9);
  EXPECT_NEAR(tracker.mean_delay(1), 2.0, 1e-9);
}

TEST(PsStation, ShortJobEscapesLongJob) {
  Simulator sim;
  QueueTracker tracker(2);
  PsStation station(sim, tracker);
  sim.schedule_at(0.0, [&] { station.arrive(make_packet(0, 0.0, 10.0)); });
  sim.schedule_at(0.0, [&] { station.arrive(make_packet(1, 0.0, 1.0)); });
  sim.run_until(20.0);
  // Short job: shares until it has consumed 1 unit at rate 1/2 -> t=2.
  EXPECT_NEAR(tracker.mean_delay(1), 2.0, 1e-9);
  // Long job: 1 unit done by t=2, then full rate: 2 + 9 = 11.
  EXPECT_NEAR(tracker.mean_delay(0), 11.0, 1e-9);
}

TEST(PriorityStation, HighPriorityPreempts) {
  Simulator sim;
  QueueTracker tracker(2);
  PreemptivePriorityStation station(sim, tracker, 2);
  sim.schedule_at(0.0, [&] { station.arrive(make_packet(0, 0.0, 3.0, 1)); });
  sim.schedule_at(1.0, [&] { station.arrive(make_packet(1, 1.0, 1.0, 0)); });
  sim.run_until(10.0);
  EXPECT_NEAR(tracker.mean_delay(1), 1.0, 1e-12);  // preempts immediately
  EXPECT_NEAR(tracker.mean_delay(0), 4.0, 1e-12);  // resumes banked work
}

TEST(PriorityStation, EqualPriorityIsFifo) {
  Simulator sim;
  QueueTracker tracker(2);
  PreemptivePriorityStation station(sim, tracker, 2);
  sim.schedule_at(0.0, [&] { station.arrive(make_packet(0, 0.0, 2.0, 1)); });
  sim.schedule_at(0.5, [&] { station.arrive(make_packet(1, 0.5, 1.0, 1)); });
  sim.run_until(10.0);
  EXPECT_NEAR(tracker.mean_delay(0), 2.0, 1e-12);
  EXPECT_NEAR(tracker.mean_delay(1), 2.5, 1e-12);
}

TEST(PriorityStation, LowerLevelsWaitForAllHigher) {
  Simulator sim;
  QueueTracker tracker(3);
  PreemptivePriorityStation station(sim, tracker, 3);
  sim.schedule_at(0.0, [&] { station.arrive(make_packet(2, 0.0, 1.0, 2)); });
  sim.schedule_at(0.0, [&] { station.arrive(make_packet(1, 0.0, 1.0, 1)); });
  sim.schedule_at(0.0, [&] { station.arrive(make_packet(0, 0.0, 1.0, 0)); });
  sim.run_until(10.0);
  EXPECT_NEAR(tracker.mean_delay(0), 1.0, 1e-12);
  EXPECT_NEAR(tracker.mean_delay(1), 2.0, 1e-12);
  EXPECT_NEAR(tracker.mean_delay(2), 3.0, 1e-12);
}

TEST(PriorityStation, BadPriorityThrows) {
  Simulator sim;
  QueueTracker tracker(1);
  PreemptivePriorityStation station(sim, tracker, 2);
  EXPECT_THROW(station.arrive(make_packet(0, 0.0, 1.0, 5)),
               std::invalid_argument);
}

TEST(HolPriorityStation, DoesNotPreempt) {
  Simulator sim;
  QueueTracker tracker(2);
  HolPriorityStation station(sim, tracker, 2);
  sim.schedule_at(0.0, [&] { station.arrive(make_packet(0, 0.0, 3.0, 1)); });
  sim.schedule_at(1.0, [&] { station.arrive(make_packet(1, 1.0, 1.0, 0)); });
  sim.run_until(10.0);
  // The low-priority job in service FINISHES (t=3); the high-priority
  // arrival waits for it (departs t=4) — contrast with the preemptive
  // version where it would depart at t=2.
  EXPECT_NEAR(tracker.mean_delay(0), 3.0, 1e-12);
  EXPECT_NEAR(tracker.mean_delay(1), 3.0, 1e-12);
}

TEST(HolPriorityStation, PriorityAppliesAtServiceSelection) {
  Simulator sim;
  QueueTracker tracker(3);
  HolPriorityStation station(sim, tracker, 3);
  sim.schedule_at(0.0, [&] {
    station.arrive(make_packet(2, 0.0, 1.0, 2));  // starts immediately
    station.arrive(make_packet(1, 0.0, 1.0, 1));
    station.arrive(make_packet(0, 0.0, 1.0, 0));
  });
  sim.run_until(10.0);
  // After the first (non-preemptible) job, highest class goes first.
  EXPECT_NEAR(tracker.mean_delay(2), 1.0, 1e-12);
  EXPECT_NEAR(tracker.mean_delay(0), 2.0, 1e-12);
  EXPECT_NEAR(tracker.mean_delay(1), 3.0, 1e-12);
}

TEST(DrrStation, AlternatesBetweenBackloggedFlows) {
  Simulator sim;
  QueueTracker tracker(2);
  DrrStation station(sim, tracker, 2, 1.0);
  // Two packets per user, all demand 1.0, all present at t=0.
  sim.schedule_at(0.0, [&] {
    station.arrive(make_packet(0, 0.0, 1.0));
    station.arrive(make_packet(0, 0.0, 1.0));
    station.arrive(make_packet(1, 0.0, 1.0));
    station.arrive(make_packet(1, 0.0, 1.0));
  });
  sim.run_until(10.0);
  // Round robin: u0@1, u1@2, u0@3, u1@4 -> delays (1+3)/2 and (2+4)/2.
  EXPECT_NEAR(tracker.mean_delay(0), 2.0, 1e-9);
  EXPECT_NEAR(tracker.mean_delay(1), 3.0, 1e-9);
}

TEST(DrrStation, LargePacketWaitsForDeficit) {
  Simulator sim;
  QueueTracker tracker(2);
  DrrStation station(sim, tracker, 2, 1.0);
  // Flow 1's small packets are backlogged BEFORE flow 0's big one shows
  // up (if flow 0 were alone first, it would legitimately rack up deficit
  // instantly and start at t=0).
  sim.schedule_at(0.0, [&] {
    station.arrive(make_packet(1, 0.0, 1.0));
    station.arrive(make_packet(1, 0.0, 1.0));
    station.arrive(make_packet(0, 0.0, 3.0));  // needs 3 quanta
  });
  sim.run_until(20.0);
  // Serve order: u1@1, u1@2, then u0's big packet once its deficit hits 3.
  EXPECT_NEAR(tracker.mean_delay(1), 1.5, 1e-9);
  EXPECT_NEAR(tracker.mean_delay(0), 5.0, 1e-9);
  EXPECT_EQ(tracker.departures(0), 1u);
  EXPECT_EQ(tracker.departures(1), 2u);
}

TEST(FairShareStationOracle, SinglePacketFlowsThrough) {
  Simulator sim;
  QueueTracker tracker(2);
  FairShareStation station(sim, tracker, {0.2, 0.3}, 99);
  sim.schedule_at(0.0, [&] { station.arrive(make_packet(0, 0.0, 1.5)); });
  sim.run_until(10.0);
  EXPECT_EQ(tracker.departures(0), 1u);
  EXPECT_NEAR(tracker.mean_delay(0), 1.5, 1e-12);
}

TEST(FairShareStationOracle, SetRatesRejectsSizeChange) {
  Simulator sim;
  QueueTracker tracker(2);
  FairShareStation station(sim, tracker, {0.2, 0.3}, 99);
  EXPECT_THROW(station.set_rates({0.1}), std::invalid_argument);
}

TEST(Stations, TrackerOccupancyReturnsToZero) {
  // All disciplines drain completely with finite input.
  Simulator sim;
  QueueTracker tracker(2);
  PsStation station(sim, tracker);
  sim.schedule_at(0.0, [&] {
    station.arrive(make_packet(0, 0.0, 0.7));
    station.arrive(make_packet(1, 0.0, 1.3));
  });
  sim.schedule_at(0.5, [&] { station.arrive(make_packet(0, 0.5, 0.4)); });
  sim.run_until(50.0);
  EXPECT_EQ(tracker.occupancy(0), 0);
  EXPECT_EQ(tracker.occupancy(1), 0);
}

}  // namespace
}  // namespace gw::sim
