// Serial cost sharing and proportional sharing over an arbitrary convex
// aggregate constraint g (paper footnote 5).
//
// GeneralSerialAllocation is the Fair Share construction with g pluggable:
//   S_k = (N-k+1) r_k + sum_{j<k} r_j (rates ascending),
//   C_k = sum_{m<=k} [g(S_m) - g(S_{m-1})] / (N-m+1).
// GeneralProportionalAllocation is the FIFO analogue: everyone pays in
// proportion to throughput, C_i = r_i * g(sum r) / sum r.
//
// With GFunction::mm1() these reduce exactly to FairShareAllocation and
// ProportionalAllocation (tested); with M/G/1 or abstract technologies
// they carry the paper's theorems beyond the exponential server.
#pragma once

#include "core/allocation.hpp"
#include "core/gfunction.hpp"

namespace gw::core {

class GeneralSerialAllocation final : public AllocationFunction {
 public:
  explicit GeneralSerialAllocation(GFunction g);

  [[nodiscard]] std::string name() const override;
  void congestion_into(std::span<const double> rates, std::span<double> out,
                       EvalWorkspace& ws) const override;
  [[nodiscard]] double congestion_of_into(std::size_t i,
                                          std::span<const double> rates,
                                          EvalWorkspace& ws) const override;
  void jacobian_into(std::span<const double> rates, numerics::Matrix& out,
                     EvalWorkspace& ws) const override;
  void second_partials_into(std::span<const double> rates,
                            numerics::Matrix& out,
                            EvalWorkspace& ws) const override;
  [[nodiscard]] double partial(std::size_t i, std::size_t j,
                               const std::vector<double>& rates) const override;
  [[nodiscard]] double second_partial(
      std::size_t i, std::size_t j,
      const std::vector<double>& rates) const override;
  [[nodiscard]] bool scan_prepare(std::size_t i, std::span<const double> rates,
                                  EvalWorkspace& ws) const override;
  [[nodiscard]] double scan_congestion_of(std::size_t i, double x,
                                          std::span<const double> rates,
                                          EvalWorkspace& ws) const override;
  [[nodiscard]] bool congestion_classes_into(const ClassedPopulation& pop,
                                             std::span<double> out,
                                             EvalWorkspace& ws) const override;
  [[nodiscard]] bool jacobian_classes_into(const ClassedPopulation& pop,
                                           numerics::Matrix& cross,
                                           std::span<double> own,
                                           EvalWorkspace& ws) const override;
  [[nodiscard]] bool scan_prepare_classes(std::size_t a,
                                          const ClassedPopulation& pop,
                                          EvalWorkspace& ws) const override;
  [[nodiscard]] double scan_congestion_of_class(
      std::size_t a, double x, const ClassedPopulation& pop,
      EvalWorkspace& ws) const override;

  /// The generalized protective bound g(N r) / N (Theorem 8's analogue).
  [[nodiscard]] double protective_bound(double rate, std::size_t n) const;

  [[nodiscard]] const GFunction& g() const noexcept { return g_; }

 private:
  GFunction g_;
};

class GeneralProportionalAllocation final : public AllocationFunction {
 public:
  explicit GeneralProportionalAllocation(GFunction g);

  [[nodiscard]] std::string name() const override;
  void congestion_into(std::span<const double> rates, std::span<double> out,
                       EvalWorkspace& ws) const override;
  /// Closed-form dC_i/dr_j = delta_ij g(T)/T + r_i (g'(T) T - g(T)) / T^2
  /// when g carries a derivative; numeric default otherwise.
  [[nodiscard]] double partial(std::size_t i, std::size_t j,
                               const std::vector<double>& rates) const override;
  /// Closed form via g'' when available; numeric default otherwise.
  [[nodiscard]] double second_partial(
      std::size_t i, std::size_t j,
      const std::vector<double>& rates) const override;
  [[nodiscard]] bool congestion_classes_into(const ClassedPopulation& pop,
                                             std::span<double> out,
                                             EvalWorkspace& ws) const override;
  /// Classed Jacobian when g carries a derivative; false otherwise.
  [[nodiscard]] bool jacobian_classes_into(const ClassedPopulation& pop,
                                           numerics::Matrix& cross,
                                           std::span<double> own,
                                           EvalWorkspace& ws) const override;

 private:
  GFunction g_;
};

}  // namespace gw::core
