#include "core/protection.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "numerics/rng.hpp"

namespace gw::core {

double protective_bound(double rate, std::size_t n) noexcept {
  const double load = static_cast<double>(n) * rate;
  if (load >= 1.0) return std::numeric_limits<double>::infinity();
  return rate / (1.0 - load);
}

ProtectionScanResult scan_protection(const AllocationFunction& alloc,
                                     std::size_t i, double rate, std::size_t n,
                                     const ProtectionScanOptions& options) {
  if (i >= n || n == 0 || rate < 0.0) {
    throw std::invalid_argument("scan_protection: bad arguments");
  }
  ProtectionScanResult result;
  result.bound = protective_bound(rate, n);

  auto consider = [&](const std::vector<double>& rates) {
    const double congestion = alloc.congestion_of(i, rates);
    if (congestion > result.max_congestion) {
      result.max_congestion = congestion;
      result.worst_rates = rates;
    }
  };

  std::vector<double> rates(n, rate);
  consider(rates);  // clones — the bound itself

  // Floods: everyone else at increasing multiples of capacity.
  for (const double flood : {0.5, 1.0, 1.5, options.adversary_max_rate}) {
    for (std::size_t j = 0; j < n; ++j) rates[j] = (j == i) ? rate : flood;
    consider(rates);
  }

  // Near-rate crowding (the Fair Share extremal direction: adversaries just
  // below r_i maximize i's serial load).
  for (const double fraction : {0.5, 0.9, 0.99, 0.999, 1.0}) {
    for (std::size_t j = 0; j < n; ++j) {
      rates[j] = (j == i) ? rate : rate * fraction;
    }
    consider(rates);
  }

  // Staircases mixing light and flooding adversaries.
  for (std::size_t split = 1; split < n; ++split) {
    std::size_t placed = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      rates[j] = (placed < split) ? rate * 0.5 : options.adversary_max_rate;
      ++placed;
    }
    rates[i] = rate;
    consider(rates);
  }

  numerics::Rng rng(options.seed);
  for (int s = 0; s < options.random_samples; ++s) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) {
        rates[j] = rate;
      } else if (rng.bernoulli(0.3)) {
        rates[j] = rng.uniform(0.0, options.adversary_max_rate);
      } else {
        // concentrate sampling near r_i where the binding profiles live
        rates[j] = rate * rng.uniform(0.0, 1.2);
      }
    }
    consider(rates);
  }

  const double slack =
      1e-7 * std::max(1.0, std::isfinite(result.bound) ? result.bound : 1.0);
  result.protective = std::isinf(result.bound) ||
                      result.max_congestion <= result.bound + slack;
  return result;
}

}  // namespace gw::core
