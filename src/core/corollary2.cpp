#include "core/corollary2.hpp"

#include <limits>
#include <stdexcept>

namespace gw::core {

void QuadraticSeparableAllocation::congestion_into(
    std::span<const double> rates, std::span<double> out,
    EvalWorkspace& /*ws*/) const {
  for (std::size_t i = 0; i < rates.size(); ++i) out[i] = rates[i] * rates[i];
}

double QuadraticSeparableAllocation::congestion_of_into(
    std::size_t i, std::span<const double> rates,
    EvalWorkspace& /*ws*/) const {
  return rates[i] * rates[i];
}

double QuadraticSeparableAllocation::partial(
    std::size_t i, std::size_t j, const std::vector<double>& rates) const {
  validate_rates(rates);
  return i == j ? 2.0 * rates.at(i) : 0.0;
}

double QuadraticSeparableAllocation::second_partial(
    std::size_t i, std::size_t j, const std::vector<double>& rates) const {
  validate_rates(rates);
  return i == j ? 2.0 : 0.0;
}

std::vector<double> quadratic_pareto_residuals(
    const UtilityProfile& profile, const std::vector<double>& rates,
    const std::vector<double>& queues) {
  if (profile.size() != rates.size() || rates.size() != queues.size()) {
    throw std::invalid_argument("quadratic_pareto_residuals: size mismatch");
  }
  std::vector<double> out(rates.size(),
                          std::numeric_limits<double>::quiet_NaN());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double m = profile[i]->marginal_ratio(rates[i], queues[i]);
    out[i] = m + 2.0 * rates[i];
  }
  return out;
}

}  // namespace gw::core
