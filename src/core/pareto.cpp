#include "core/pareto.hpp"

#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "numerics/optimize.hpp"
#include "numerics/rng.hpp"
#include "queueing/feasibility.hpp"
#include "queueing/mm1.hpp"

namespace gw::core {

namespace {
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

double pareto_z(const std::vector<double>& rates) {
  const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
  return -queueing::g_prime(total);
}

std::vector<double> pareto_fdc_residuals(const UtilityProfile& profile,
                                         const std::vector<double>& rates,
                                         const std::vector<double>& queues) {
  if (profile.size() != rates.size() || rates.size() != queues.size()) {
    throw std::invalid_argument("pareto_fdc_residuals: size mismatch");
  }
  const double z = pareto_z(rates);
  std::vector<double> out(rates.size(), kNan);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (!std::isfinite(queues[i])) continue;
    const double m = profile[i]->marginal_ratio(rates[i], queues[i]);
    if (std::isfinite(m) && std::isfinite(z)) out[i] = m - z;
  }
  return out;
}

double symmetric_pareto_rate(const Utility& u, std::size_t n,
                             double r_max_total) {
  if (n == 0) throw std::invalid_argument("symmetric_pareto_rate: n == 0");
  const double nd = static_cast<double>(n);
  auto objective = [&](double r) {
    const double queue = queueing::g(nd * r) / nd;
    return u.value(r, queue);
  };
  const auto best =
      numerics::maximize_scan(objective, 1e-7, r_max_total / nd);
  return best.x;
}

DominationResult find_dominating_allocation(
    const UtilityProfile& profile, const std::vector<double>& base_rates,
    const std::vector<double>& base_queues, const DominationOptions& options) {
  const std::size_t n = profile.size();
  if (base_rates.size() != n || base_queues.size() != n || n == 0) {
    throw std::invalid_argument("find_dominating_allocation: size mismatch");
  }
  std::vector<double> base_utility(n);
  for (std::size_t i = 0; i < n; ++i) {
    base_utility[i] = profile[i]->value(base_rates[i], base_queues[i]);
  }

  // Decision variables: x = (r_1..r_N, w_1..w_N); queues are the weights w
  // rescaled onto the aggregate constraint sum c = g(sum r). Subsidiary
  // subset constraints enter as a penalty on their worst violation.
  auto objective = [&](const std::vector<double>& x) -> double {
    std::vector<double> rates(n), weights(n);
    double total_rate = 0.0, total_weight = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      rates[i] = x[i];
      weights[i] = x[n + i];
      if (rates[i] <= 0.0 || weights[i] <= 0.0) return -kInf;
      total_rate += rates[i];
      total_weight += weights[i];
    }
    if (total_rate >= 0.999) return -kInf;
    const double total_queue = queueing::g(total_rate);
    std::vector<double> queues(n);
    for (std::size_t i = 0; i < n; ++i) {
      queues[i] = weights[i] * total_queue / total_weight;
    }
    const auto feasibility = queueing::check_feasibility(rates, queues, 1e-9);
    double penalty = 0.0;
    if (feasibility.worst_prefix_slack < 0.0) {
      penalty = 100.0 * -feasibility.worst_prefix_slack;
    }
    double min_gain = kInf;
    for (std::size_t i = 0; i < n; ++i) {
      min_gain =
          std::min(min_gain, profile[i]->value(rates[i], queues[i]) -
                                 base_utility[i]);
    }
    return min_gain - penalty;
  };

  numerics::Rng rng(options.seed);
  DominationResult result;
  result.best_min_gain = -kInf;
  numerics::NelderMeadOptions nm;
  nm.max_evaluations = options.max_evaluations / std::max(options.restarts, 1);
  nm.initial_step = 0.15;

  for (int restart = 0; restart < options.restarts; ++restart) {
    std::vector<double> start(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      const double jitter = restart == 0 ? 1.0 : rng.uniform(0.7, 1.3);
      start[i] = std::max(1e-5, base_rates[i] * jitter);
      const double base_queue = std::isfinite(base_queues[i])
                                    ? base_queues[i]
                                    : 1.0;  // saturated base: any weight
      start[n + i] =
          std::max(1e-5, base_queue * (restart == 0 ? 1.0
                                                    : rng.uniform(0.7, 1.3)));
    }
    const auto found = numerics::nelder_mead_max(objective, start, nm);
    if (found.value > result.best_min_gain) {
      result.best_min_gain = found.value;
      std::vector<double> rates(found.x.begin(), found.x.begin() + n);
      std::vector<double> weights(found.x.begin() + n, found.x.end());
      const double total_rate =
          std::accumulate(rates.begin(), rates.end(), 0.0);
      const double total_weight =
          std::accumulate(weights.begin(), weights.end(), 0.0);
      const double total_queue = queueing::g(total_rate);
      result.rates = rates;
      result.queues.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        result.queues[i] = weights[i] * total_queue / total_weight;
      }
    }
  }
  result.dominated = result.best_min_gain > options.min_gain;
  return result;
}

}  // namespace gw::core
