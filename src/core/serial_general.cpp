#include "core/serial_general.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace gw::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<std::size_t> ascending_order(const std::vector<double>& rates) {
  std::vector<std::size_t> order(rates.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (rates[a] != rates[b]) return rates[a] < rates[b];
    return a < b;
  });
  return order;
}

std::vector<double> serial_loads(const std::vector<double>& sorted_rates) {
  const std::size_t n = sorted_rates.size();
  std::vector<double> serial(n);
  double prefix = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    serial[k] = static_cast<double>(n - k) * sorted_rates[k] + prefix;
    prefix += sorted_rates[k];
  }
  return serial;
}

}  // namespace

GeneralSerialAllocation::GeneralSerialAllocation(GFunction g)
    : g_(std::move(g)) {
  if (!g_.value || !g_.prime || !g_.double_prime) {
    throw std::invalid_argument("GeneralSerialAllocation: incomplete g");
  }
}

std::string GeneralSerialAllocation::name() const {
  return "Serial[" + g_.name + "]";
}

std::vector<double> GeneralSerialAllocation::congestion(
    const std::vector<double>& rates) const {
  validate_rates(rates);
  const std::size_t n = rates.size();
  const auto order = ascending_order(rates);
  std::vector<double> sorted_rates(n);
  for (std::size_t k = 0; k < n; ++k) sorted_rates[k] = rates[order[k]];
  const auto serial = serial_loads(sorted_rates);

  std::vector<double> out(n, 0.0);
  double running = 0.0;
  double g_prev = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double g_here = g_.value(serial[k]);
    if (std::isinf(g_here)) {
      running = kInf;
    } else {
      running += (g_here - g_prev) / static_cast<double>(n - k);
      g_prev = g_here;
    }
    out[order[k]] = running;
  }
  return out;
}

double GeneralSerialAllocation::partial(std::size_t i, std::size_t j,
                                        const std::vector<double>& rates) const {
  validate_rates(rates);
  const std::size_t n = rates.size();
  const auto order = ascending_order(rates);
  std::vector<std::size_t> rank(n);
  for (std::size_t k = 0; k < n; ++k) rank[order[k]] = k;
  std::vector<double> sorted_rates(n);
  for (std::size_t k = 0; k < n; ++k) sorted_rates[k] = rates[order[k]];
  const auto serial = serial_loads(sorted_rates);

  const std::size_t k = rank.at(i);
  const std::size_t jr = rank.at(j);
  if (jr > k) return 0.0;
  if (serial[k] >= g_.saturation) return kInf;

  auto coefficient = [&](std::size_t m) -> double {
    if (m < jr) return 0.0;
    return (m == jr) ? static_cast<double>(n - jr) : 1.0;
  };
  double acc = 0.0;
  for (std::size_t m = jr; m <= k; ++m) {
    const double upper = coefficient(m) * g_.prime(serial[m]);
    const double lower =
        (m > 0) ? coefficient(m - 1) * g_.prime(serial[m - 1]) : 0.0;
    acc += (upper - lower) / static_cast<double>(n - m);
  }
  return acc;
}

double GeneralSerialAllocation::second_partial(
    std::size_t i, std::size_t j, const std::vector<double>& rates) const {
  validate_rates(rates);
  const std::size_t n = rates.size();
  const auto order = ascending_order(rates);
  std::vector<std::size_t> rank(n);
  for (std::size_t k = 0; k < n; ++k) rank[order[k]] = k;
  std::vector<double> sorted_rates(n);
  for (std::size_t k = 0; k < n; ++k) sorted_rates[k] = rates[order[k]];
  const auto serial = serial_loads(sorted_rates);

  const std::size_t k = rank.at(i);
  const std::size_t jr = rank.at(j);
  if (jr > k) return 0.0;
  if (serial[k] >= g_.saturation) return kInf;
  const double coefficient = (jr == k) ? static_cast<double>(n - k) : 1.0;
  return coefficient * g_.double_prime(serial[k]);
}

double GeneralSerialAllocation::protective_bound(double rate,
                                                 std::size_t n) const {
  return g_.value(static_cast<double>(n) * rate) / static_cast<double>(n);
}

GeneralProportionalAllocation::GeneralProportionalAllocation(GFunction g)
    : g_(std::move(g)) {
  if (!g_.value) {
    throw std::invalid_argument("GeneralProportionalAllocation: missing g");
  }
}

std::string GeneralProportionalAllocation::name() const {
  return "Proportional[" + g_.name + "]";
}

std::vector<double> GeneralProportionalAllocation::congestion(
    const std::vector<double>& rates) const {
  validate_rates(rates);
  const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
  std::vector<double> out(rates.size(), 0.0);
  if (total <= 0.0) return out;
  const double aggregate = g_.value(total);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (rates[i] <= 0.0) {
      out[i] = 0.0;
    } else if (std::isinf(aggregate)) {
      out[i] = kInf;
    } else {
      out[i] = rates[i] * aggregate / total;
    }
  }
  return out;
}

}  // namespace gw::core
