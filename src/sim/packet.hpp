// The unit of work flowing through simulated switches.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gw::sim {

struct Packet {
  std::uint64_t id = 0;
  std::size_t user = 0;
  double arrival_time = 0.0;
  double service_demand = 0.0;  ///< total work (time at unit service rate)
  double remaining = 0.0;       ///< work left (preemptive-resume state)
  int priority = 0;             ///< 0 = highest; used by priority stations
};

}  // namespace gw::sim
