#include "core/pareto.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/closed_forms.hpp"
#include "core/fair_share.hpp"
#include "core/nash.hpp"
#include "core/proportional.hpp"
#include "queueing/mm1.hpp"

namespace gw::core {
namespace {

TEST(ParetoZ, MatchesConstraintSlope) {
  const std::vector<double> rates{0.2, 0.3};
  EXPECT_NEAR(pareto_z(rates), -1.0 / (0.5 * 0.5), 1e-12);
}

TEST(SymmetricParetoRate, LinearUtilityClosedForm) {
  // max r - gamma g(N r)/N: FOC 1 = gamma g'(N r) -> N r = 1 - sqrt(gamma).
  const LinearUtility u(1.0, 0.25);
  for (const std::size_t n : {1u, 2u, 5u}) {
    const double rate = symmetric_pareto_rate(u, n);
    EXPECT_NEAR(rate, (1.0 - 0.5) / static_cast<double>(n), 1e-5) << n;
  }
}

TEST(SymmetricParetoRate, StrongDelayAversionPushesTowardZero) {
  const LinearUtility u(1.0, 2.0);  // gamma > 1: silence is optimal
  EXPECT_LT(symmetric_pareto_rate(u, 3), 1e-3);
}

TEST(Theorem2, FsSymmetricNashIsParetoOptimal) {
  // FS Nash with identical users = symmetric Pareto: FDC residuals vanish
  // AND no dominating allocation exists.
  const FairShareAllocation alloc;
  const auto u = make_linear(1.0, 0.25);
  const auto profile = uniform_profile(u, 3);
  const auto nash = solve_nash(alloc, profile, {0.1, 0.1, 0.1});
  ASSERT_TRUE(nash.converged);
  const auto queues = alloc.congestion(nash.rates);

  for (const double residual :
       pareto_fdc_residuals(profile, nash.rates, queues)) {
    EXPECT_LT(std::abs(residual), 1e-3);
  }
  const auto domination =
      find_dominating_allocation(profile, nash.rates, queues);
  EXPECT_FALSE(domination.dominated)
      << "claimed gain " << domination.best_min_gain;
}

TEST(Theorem1, FifoSymmetricNashIsNotParetoOptimal) {
  // The tragedy of the commons under FIFO: the Nash point is strictly
  // dominated (everyone better off sending less).
  const ProportionalAllocation alloc;
  const auto profile = uniform_profile(make_linear(1.0, 0.25), 4);
  const auto nash = solve_nash(alloc, profile, std::vector<double>(4, 0.1));
  ASSERT_TRUE(nash.converged);
  const auto queues = alloc.congestion(nash.rates);

  // FDC residuals are far from zero...
  double max_residual = 0.0;
  for (const double residual :
       pareto_fdc_residuals(profile, nash.rates, queues)) {
    max_residual = std::max(max_residual, std::abs(residual));
  }
  EXPECT_GT(max_residual, 0.1);

  // ...and an explicitly dominating allocation exists.
  const auto domination =
      find_dominating_allocation(profile, nash.rates, queues);
  EXPECT_TRUE(domination.dominated);
  EXPECT_GT(domination.best_min_gain, 1e-4);
}

TEST(Domination, SymmetricParetoPointIsUndominated) {
  const auto u = make_linear(1.0, 0.25);
  const auto profile = uniform_profile(u, 2);
  const double rate = symmetric_pareto_rate(*u, 2);
  const std::vector<double> rates{rate, rate};
  const double each = queueing::g(2.0 * rate) / 2.0;
  const auto domination =
      find_dominating_allocation(profile, rates, {each, each});
  EXPECT_FALSE(domination.dominated);
}

TEST(Domination, ObviouslyWastefulPointIsDominated) {
  // Both users send far beyond the sweet spot: backing off helps everyone.
  const auto profile = uniform_profile(make_linear(1.0, 0.25), 2);
  const std::vector<double> rates{0.45, 0.45};
  const double each = queueing::g(0.9) / 2.0;
  const auto domination =
      find_dominating_allocation(profile, rates, {each, each});
  EXPECT_TRUE(domination.dominated);
  // The dominating allocation itself must be feasible.
  ASSERT_EQ(domination.rates.size(), 2u);
  double total_rate = 0.0;
  for (const double r : domination.rates) total_rate += r;
  EXPECT_LT(total_rate, 1.0);
}

TEST(ParetoFdc, MixedProfileResidualStructure) {
  // At any point, residuals use each user's own M; check plumbing.
  const UtilityProfile profile{make_linear(1.0, 0.2), make_linear(1.0, 0.8)};
  const std::vector<double> rates{0.2, 0.2};
  const std::vector<double> queues{0.4, 0.4};
  const auto residuals = pareto_fdc_residuals(profile, rates, queues);
  const double z = pareto_z(rates);
  EXPECT_NEAR(residuals[0], -1.0 / 0.2 - z, 1e-9);
  EXPECT_NEAR(residuals[1], -1.0 / 0.8 - z, 1e-9);
}

TEST(ParetoFdc, SizeMismatchThrows) {
  const UtilityProfile profile{make_linear(1.0, 0.2)};
  EXPECT_THROW(
      (void)pareto_fdc_residuals(profile, {0.1, 0.2}, {0.1, 0.2}),
      std::invalid_argument);
}

}  // namespace
}  // namespace gw::core
