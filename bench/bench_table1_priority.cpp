// E-T1 — Paper Table 1: the preemptive priority decomposition that
// realizes the Fair Share allocation function, regenerated analytically
// and validated against the packet simulator.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/fair_share.hpp"
#include "core/weighted_serial.hpp"
#include "sim/fair_share_station.hpp"
#include "sim/runner.hpp"

static int run() {
  using namespace gw;
  bench::banner("E-T1 table1_priority", "Table 1 + Section 3.1",
                "Fair Share is realized by splitting each user's stream "
                "across priority levels: user of rank k sends the slice "
                "r_l - r_{l-1} at level l for every l <= k.");

  const std::vector<double> rates{0.05, 0.10, 0.15, 0.20};
  const auto decomposition = core::fair_share_decomposition(rates);

  std::printf("\nPriority-slice table (paper Table 1; rows = users, columns ="
              " priority levels A..D, entries = slice rates):\n\n");
  bench::table_header({"user", "A", "B", "C", "D", "total"});
  for (std::size_t u = 0; u < rates.size(); ++u) {
    std::vector<std::string> row{std::to_string(u + 1)};
    double total = 0.0;
    for (std::size_t l = 0; l < rates.size(); ++l) {
      const double slice = decomposition.slice_rate[u][l];
      row.push_back(slice > 0.0 ? bench::fmt(slice, 2) : "-");
      total += slice;
    }
    row.push_back(bench::fmt(total, 2));
    bench::table_row(row);
  }

  std::printf("\nPer-level aggregates:\n\n");
  bench::table_header({"level", "width", "agg rate", "serial S_k"});
  const char* level_names[] = {"A", "B", "C", "D"};
  for (std::size_t l = 0; l < rates.size(); ++l) {
    bench::table_row({level_names[l], bench::fmt(decomposition.level_width[l], 2),
                      bench::fmt(decomposition.level_rate[l], 2),
                      bench::fmt(decomposition.serial_load[l], 2)});
  }

  // The decomposition reproduces the paper's structure.
  bool slices_match = true;
  for (std::size_t u = 0; u < rates.size(); ++u) {
    double total = 0.0;
    for (std::size_t l = 0; l < rates.size(); ++l) {
      total += decomposition.slice_rate[u][l];
    }
    if (std::abs(total - rates[u]) > 1e-12) slices_match = false;
  }
  bench::verdict(slices_match, "per-user slices sum to the user's rate");

  // Analytic C^FS vs the packet simulator running this exact decomposition.
  const core::FairShareAllocation alloc;
  const auto analytic = alloc.congestion(rates);

  sim::RunOptions options;
  options.warmup = 5000.0;
  options.batches = 16;
  options.batch_length = 6000.0;
  options.seed = 404;
  const auto run =
      sim::run_switch(sim::Discipline::kFairShareOracle, rates, options);

  std::printf("\nAnalytic C^FS vs simulated per-user mean queue:\n\n");
  bench::table_header({"user", "rate", "analytic", "simulated", "ci +/-",
                       "rel.err"});
  bool all_close = true;
  for (std::size_t u = 0; u < rates.size(); ++u) {
    const double measured = run.users[u].mean_queue;
    const double rel = measured / analytic[u] - 1.0;
    if (std::abs(rel) > 0.10) all_close = false;
    bench::table_row({std::to_string(u + 1), bench::fmt(rates[u], 2),
                      bench::fmt(analytic[u]), bench::fmt(measured),
                      bench::fmt(run.users[u].queue_ci.half_width),
                      bench::fmt(rel * 100.0, 2) + "%"});
  }
  bench::verdict(all_close,
                 "simulated priority switch reproduces C^FS within 10%");

  // Extension: the weighted Table 1. Same construction in normalized-
  // demand space; a user's weight scales both its slices and its share.
  const std::vector<double> weighted_rates{0.2, 0.2, 0.15};
  const std::vector<double> weights{2.0, 1.0, 0.75};
  const core::WeightedSerialAllocation weighted(weights);
  const auto weighted_expected = weighted.congestion(weighted_rates);
  const auto weighted_run = sim::run_custom(
      [&](sim::Simulator& sim, sim::QueueTracker& tracker) {
        return std::make_unique<sim::FairShareStation>(
            sim, tracker, weighted_rates, weights, 777);
      },
      weighted_rates, options);
  std::printf("\nWeighted Table 1 (weights 2 / 1 / 0.75, equal-ish rates): "
              "analytic weighted-serial vs packets:\n\n");
  bench::table_header({"user", "rate", "weight", "analytic", "simulated",
                       "rel.err"});
  bool weighted_close = true;
  for (std::size_t u = 0; u < weighted_rates.size(); ++u) {
    const double measured = weighted_run.users[u].mean_queue;
    const double rel = measured / weighted_expected[u] - 1.0;
    if (std::abs(rel) > 0.10) weighted_close = false;
    bench::table_row({std::to_string(u + 1),
                      bench::fmt(weighted_rates[u], 2),
                      bench::fmt(weights[u], 2),
                      bench::fmt(weighted_expected[u]), bench::fmt(measured),
                      bench::fmt(rel * 100.0, 2) + "%"});
  }
  bench::verdict(weighted_close,
                 "weighted thinning realizes the weighted serial rule "
                 "within 10%");
  return bench::failures();
}

GW_BENCH_MAIN(run)
