#include "sim/tracker.hpp"

#include <limits>
#include <stdexcept>
#include <string>

#include "obs/trace.hpp"

namespace gw::sim {

QueueTracker::QueueTracker(std::size_t n_users) : per_user_(n_users) {
  if (n_users == 0) throw std::invalid_argument("QueueTracker: zero users");
}

void QueueTracker::accrue(double now, PerUser& user) {
  const double dt = now - user.last_update;
  if (dt > 0.0) {
    user.area += user.count * dt;
    user.batch_area += user.count * dt;
    user.last_update = now;
  }
}

void QueueTracker::on_change(double now, std::size_t user, int delta,
                             obs::TraceSession* trace) {
  auto& u = per_user_.at(user);
  accrue(now, u);
  u.count += delta;
  if (u.count < 0) throw std::logic_error("QueueTracker: negative occupancy");
  if (trace != nullptr) [[unlikely]] {
    trace->counter("occupancy", "occupancy u" + std::to_string(user),
                   now * 1e6, static_cast<double>(u.count));
  }
}

void QueueTracker::on_departure(std::size_t user, double delay) {
  auto& u = per_user_.at(user);
  u.delay_sum += delay;
  ++u.departures;
  if (!delay_histograms_.empty() && delay_histograms_[user] != nullptr) {
    delay_histograms_[user]->add(delay);
  }
}

void QueueTracker::enable_delay_histograms(double max_delay,
                                           std::size_t bins) {
  histogram_max_ = max_delay;
  histogram_bins_ = bins;
  delay_histograms_.clear();
  for (std::size_t u = 0; u < per_user_.size(); ++u) {
    delay_histograms_.push_back(
        std::make_unique<numerics::Histogram>(0.0, max_delay, bins));
  }
}

double QueueTracker::delay_quantile(std::size_t user, double q) const {
  return try_delay_quantile(user, q)
      .value_or(std::numeric_limits<double>::quiet_NaN());
}

std::optional<double> QueueTracker::try_delay_quantile(std::size_t user,
                                                       double q) const {
  if (delay_histograms_.empty()) {
    throw std::logic_error("QueueTracker: delay histograms not enabled");
  }
  const auto& histogram = *delay_histograms_.at(user);
  if (histogram.total() == 0) return std::nullopt;
  return histogram.quantile(q);
}

void QueueTracker::reset(double now) {
  for (auto& u : per_user_) {
    u.area = 0.0;
    u.batch_area = 0.0;
    u.last_update = now;
    u.delay_sum = 0.0;
    u.departures = 0;
  }
  if (!delay_histograms_.empty()) {
    enable_delay_histograms(histogram_max_, histogram_bins_);  // fresh bins
  }
  measure_start_ = now;
  batch_start_ = now;
  batch_open_ = false;
}

std::vector<double> QueueTracker::close_batch(double now) {
  std::vector<double> averages;
  const double span = now - batch_start_;
  if (batch_open_ && span > 0.0) {
    averages.reserve(per_user_.size());
    for (auto& u : per_user_) {
      accrue(now, u);
      averages.push_back(u.batch_area / span);
    }
  }
  for (auto& u : per_user_) u.batch_area = 0.0;
  batch_start_ = now;
  batch_open_ = true;
  return averages;
}

double QueueTracker::time_average(std::size_t user, double now) const {
  const auto& u = per_user_.at(user);
  const double span = now - measure_start_;
  if (span <= 0.0) return 0.0;
  const double pending = u.count * (now - u.last_update);
  return (u.area + pending) / span;
}

double QueueTracker::mean_delay(std::size_t user) const {
  const auto& u = per_user_.at(user);
  return u.departures == 0 ? 0.0
                           : u.delay_sum / static_cast<double>(u.departures);
}

std::size_t QueueTracker::departures(std::size_t user) const {
  return per_user_.at(user).departures;
}

}  // namespace gw::sim
