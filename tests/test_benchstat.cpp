// gw-benchstat CLI end-to-end: merge + compare on synthetic gw.bench.v2
// and gw.bench.v3 telemetry — improvement, regression, and
// below-threshold-noise verdicts, the nonzero exit code that gates CI,
// --per-unit promotion of normalized work costs, and the manifest
// mismatch warnings that keep compares like-for-like.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "json_lite.hpp"

namespace {

using gw::jsonlite::JsonValue;
using gw::jsonlite::parse_json;

#ifndef GW_TOOLS_BIN_DIR
#define GW_TOOLS_BIN_DIR ""
#endif

bool file_exists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

std::string benchstat_path() {
  const std::string dir = GW_TOOLS_BIN_DIR;
  return dir.empty() ? std::string() : dir + "/gw-benchstat";
}

/// Renders a minimal gw.bench.v2 document for one bench binary.
std::string synthetic_bench(const std::string& binary,
                            const std::vector<double>& wall_ms,
                            double counter_value) {
  std::ostringstream out;
  out << "{\"schema\":\"gw.bench.v2\",\"binary\":\"" << binary << "\","
      << "\"manifest\":{\"git_sha\":\"cafe1234\",\"git_dirty\":false,"
      << "\"compiler\":\"test\",\"build_type\":\"Release\","
      << "\"cxx_flags\":\"\",\"hostname\":\"testhost\",\"cpu_count\":4,"
      << "\"timestamp_utc\":\"2026-01-01T00:00:00Z\",\"label\":\"fixture\"},"
      << "\"timing\":{\"repeat\":" << wall_ms.size() << ",\"wall_ms\":[";
  for (std::size_t i = 0; i < wall_ms.size(); ++i) {
    if (i > 0) out << ",";
    out << wall_ms[i];
  }
  out << "]},\"experiments\":[],\"failures\":0,"
      << "\"metrics\":{\"counters\":{\"core.nash.solves\":" << counter_value
      << "},\"gauges\":{},\"histograms\":{}}}";
  return out.str();
}

/// Renders a minimal gw.bench.v3 document: v2 plus counters/work/derived
/// blocks and the counters_* manifest fields.
std::string synthetic_bench_v3(const std::string& binary,
                               const std::vector<double>& wall_ms,
                               const std::vector<double>& ns_per_user,
                               double threads, bool counters_available) {
  std::ostringstream out;
  out << "{\"schema\":\"gw.bench.v3\",\"binary\":\"" << binary << "\","
      << "\"manifest\":{\"git_sha\":\"cafe1234\",\"git_dirty\":false,"
      << "\"compiler\":\"test\",\"build_type\":\"Release\","
      << "\"cxx_flags\":\"\",\"hostname\":\"testhost\",\"cpu_count\":4,"
      << "\"timestamp_utc\":\"2026-01-01T00:00:00Z\",\"label\":\"fixture\","
      << "\"threads\":" << threads << ",\"counters_mode\":\"auto\","
      << "\"counters_available\":" << (counters_available ? "true" : "false")
      << ",\"counters_status\":\""
      << (counters_available ? "ok" : "perf_event_open: ENOENT") << "\"},"
      << "\"timing\":{\"repeat\":" << wall_ms.size() << ",\"wall_ms\":[";
  for (std::size_t i = 0; i < wall_ms.size(); ++i) {
    if (i > 0) out << ",";
    out << wall_ms[i];
  }
  out << "]},\"counters\":{\"mode\":\"auto\",\"available\":"
      << (counters_available ? "true" : "false")
      << ",\"software\":true,\"status\":\""
      << (counters_available ? "ok" : "perf_event_open: ENOENT")
      << "\",\"per_rep\":{}},"
      << "\"work\":{\"per_rep\":{\"users_evaluated\":[";
  for (std::size_t i = 0; i < wall_ms.size(); ++i) {
    if (i > 0) out << ",";
    out << 1000;
  }
  out << "]}},\"derived\":{\"ns_per_user_evaluated\":[";
  for (std::size_t i = 0; i < ns_per_user.size(); ++i) {
    if (i > 0) out << ",";
    out << ns_per_user[i];
  }
  out << "]},\"experiments\":[],\"failures\":0,"
      << "\"metrics\":{\"counters\":{\"core.nash.solves\":100},"
      << "\"gauges\":{},\"histograms\":{}}}";
  return out.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  ASSERT_TRUE(out.good()) << "cannot write " << path;
}

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

// ctest runs each test case as its own process, possibly in parallel, and
// TempDir() is shared — every path must carry the pid or concurrent cases
// clobber each other's fixtures and captures.
std::string pid_tag() { return std::to_string(static_cast<long>(::getpid())); }

CommandResult run_command(const std::string& command) {
  CommandResult result;
  const std::string capture =
      ::testing::TempDir() + "gw_benchstat_out." + pid_tag() + ".txt";
  const int raw =
      std::system((command + " > " + capture + " 2>&1").c_str());
  result.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  std::ifstream in(capture);
  std::stringstream buffer;
  buffer << in.rdbuf();
  result.output = buffer.str();
  std::remove(capture.c_str());
  return result;
}

class BenchstatCli : public ::testing::Test {
 protected:
  void SetUp() override {
    if (benchstat_path().empty() || !file_exists(benchstat_path())) {
      GTEST_SKIP() << "gw-benchstat not built: " << benchstat_path();
    }
    dir_ = ::testing::TempDir();
  }

  std::string path(const std::string& name) const {
    return dir_ + "gw_benchstat_" + pid_tag() + "_" + name;
  }

  std::string dir_;
};

TEST_F(BenchstatCli, MergeAggregatesBenchRunsIntoSuite) {
  write_file(path("a.json"),
             synthetic_bench("out/bench_alpha", {10.0, 10.2, 9.9}, 100));
  write_file(path("b.json"),
             synthetic_bench("out/bench_beta", {5.0, 5.1, 4.9}, 50));

  const auto merged = run_command(benchstat_path() + " merge " +
                                  path("a.json") + " " + path("b.json"));
  ASSERT_EQ(merged.exit_code, 0) << merged.output;

  const JsonValue doc = parse_json(merged.output);
  EXPECT_EQ(doc.at("schema").string, "gw.benchsuite.v1");
  EXPECT_EQ(doc.at("manifest").at("git_sha").string, "cafe1234");
  ASSERT_EQ(doc.at("benches").array.size(), 2u);
  const JsonValue& alpha = doc.at("benches").array[0];
  EXPECT_EQ(alpha.at("name").string, "bench_alpha");  // basename, sorted
  EXPECT_EQ(alpha.at("wall_ms").array.size(), 3u);
  EXPECT_NEAR(alpha.at("wall_ms_stats").at("median").number, 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(alpha.at("counters").at("core.nash.solves").number,
                   100.0);
}

TEST_F(BenchstatCli, CompareFlagsRegressionAndExitsNonzero) {
  write_file(path("old.json"),
             synthetic_bench("bench_slowed", {10.0, 10.2, 9.9, 10.1, 10.0},
                             100));
  write_file(path("new.json"),
             synthetic_bench("bench_slowed", {20.0, 20.4, 19.8, 20.2, 20.1},
                             100));

  const auto compared = run_command(benchstat_path() + " compare " +
                                    path("old.json") + " " +
                                    path("new.json") + " --threshold 5");
  EXPECT_EQ(compared.exit_code, 1) << compared.output;
  // The gate names the regressed metric.
  EXPECT_NE(compared.output.find("REGRESSED: bench_slowed.wall_ms"),
            std::string::npos)
      << compared.output;
}

TEST_F(BenchstatCli, CompareJsonWritesMachineReadableDocument) {
  // --json emits the full row set as gw.benchcompare.v1 so dashboards and
  // bots consume the gate without scraping the table.
  write_file(path("old.json"),
             synthetic_bench("bench_slowed", {10.0, 10.2, 9.9, 10.1, 10.0},
                             100));
  write_file(path("new.json"),
             synthetic_bench("bench_slowed", {20.0, 20.4, 19.8, 20.2, 20.1},
                             150));

  const std::string out = path("compare.json");
  const auto compared = run_command(
      benchstat_path() + " compare " + path("old.json") + " " +
      path("new.json") + " --threshold 5 --json " + out);
  EXPECT_EQ(compared.exit_code, 1) << compared.output;
  ASSERT_TRUE(file_exists(out)) << "no compare document written";

  std::ifstream in(out);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue doc = parse_json(buffer.str());
  EXPECT_EQ(doc.at("schema").string, "gw.benchcompare.v1");
  EXPECT_DOUBLE_EQ(doc.at("threshold_pct").number, 5.0);
  EXPECT_DOUBLE_EQ(doc.at("alpha").number, 0.05);
  EXPECT_EQ(doc.at("gate").string, "fail");
  ASSERT_EQ(doc.at("regressions").array.size(), 1u);
  EXPECT_EQ(doc.at("regressions").array[0].string,
            "bench_slowed.wall_ms");

  bool found_samples_row = false;
  bool found_scalar_row = false;
  for (const auto& row : doc.at("metrics").array) {
    if (row.at("name").string == "bench_slowed.wall_ms") {
      found_samples_row = true;
      EXPECT_EQ(row.at("kind").string, "samples");
      EXPECT_EQ(row.at("verdict").string, "regression");
      EXPECT_NEAR(row.at("old").number, 10.0, 1e-9);
      EXPECT_NEAR(row.at("new").number, 20.1, 1e-9);
      EXPECT_GT(row.at("delta_pct").number, 50.0);
      EXPECT_LT(row.at("p_value").number, 0.05);
    }
    if (row.at("name").string == "bench_slowed.core.nash.solves") {
      found_scalar_row = true;
      EXPECT_EQ(row.at("kind").string, "scalar");
      EXPECT_EQ(row.at("verdict").string, "changed");
      EXPECT_DOUBLE_EQ(row.at("old").number, 100.0);
      EXPECT_DOUBLE_EQ(row.at("new").number, 150.0);
    }
  }
  EXPECT_TRUE(found_samples_row);
  EXPECT_TRUE(found_scalar_row);
  std::remove(out.c_str());
}

TEST_F(BenchstatCli, CompareJsonGatePassesWhenUnchanged) {
  write_file(path("old.json"),
             synthetic_bench("bench_same", {10.0, 10.2, 9.9, 10.1, 10.0},
                             100));
  write_file(path("new.json"),
             synthetic_bench("bench_same", {10.1, 10.0, 10.2, 9.9, 10.05},
                             100));
  const std::string out = path("compare_pass.json");
  const auto compared = run_command(
      benchstat_path() + " compare " + path("old.json") + " " +
      path("new.json") + " --threshold 5 --json " + out);
  EXPECT_EQ(compared.exit_code, 0) << compared.output;
  std::ifstream in(out);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue doc = parse_json(buffer.str());
  EXPECT_EQ(doc.at("gate").string, "pass");
  EXPECT_TRUE(doc.at("regressions").array.empty());
  ASSERT_FALSE(doc.at("metrics").array.empty());
  EXPECT_EQ(doc.at("metrics").array[0].at("verdict").string, "unchanged");
  std::remove(out.c_str());
}

TEST_F(BenchstatCli, CompareImprovementExitsZero) {
  write_file(path("old.json"),
             synthetic_bench("bench_faster", {20.0, 20.4, 19.8, 20.2, 20.1},
                             100));
  write_file(path("new.json"),
             synthetic_bench("bench_faster", {10.0, 10.2, 9.9, 10.1, 10.0},
                             100));

  const auto compared = run_command(benchstat_path() + " compare " +
                                    path("old.json") + " " +
                                    path("new.json"));
  EXPECT_EQ(compared.exit_code, 0) << compared.output;
  EXPECT_NE(compared.output.find("improvement"), std::string::npos)
      << compared.output;
}

TEST_F(BenchstatCli, CompareIdenticalRunsIsNoiseRobust) {
  // Same samples with jitter well inside the threshold: no verdict.
  write_file(path("old.json"),
             synthetic_bench("bench_same", {10.0, 10.2, 9.9, 10.1, 10.0},
                             100));
  write_file(path("new.json"),
             synthetic_bench("bench_same", {10.1, 10.0, 10.2, 9.9, 10.05},
                             100));

  const auto compared = run_command(benchstat_path() + " compare " +
                                    path("old.json") + " " +
                                    path("new.json") + " --threshold 5");
  EXPECT_EQ(compared.exit_code, 0) << compared.output;
  EXPECT_EQ(compared.output.find("REGRESSION"), std::string::npos)
      << compared.output;
  EXPECT_NE(compared.output.find("0 regression(s)"), std::string::npos)
      << compared.output;
}

TEST_F(BenchstatCli, CompareAcceptsV1WithoutManifestOrTiming) {
  // Readers accept gw.bench.v1 (no manifest, no timing): scalar-only
  // comparison, never a gating verdict.
  const std::string v1 =
      "{\"schema\":\"gw.bench.v1\",\"binary\":\"bench_legacy\","
      "\"experiments\":[],\"failures\":0,"
      "\"metrics\":{\"counters\":{\"sim.events\":1000},\"gauges\":{},"
      "\"histograms\":{}}}";
  const std::string v1_changed =
      "{\"schema\":\"gw.bench.v1\",\"binary\":\"bench_legacy\","
      "\"experiments\":[],\"failures\":0,"
      "\"metrics\":{\"counters\":{\"sim.events\":2000},\"gauges\":{},"
      "\"histograms\":{}}}";
  write_file(path("old.json"), v1);
  write_file(path("new.json"), v1_changed);

  const auto compared = run_command(benchstat_path() + " compare " +
                                    path("old.json") + " " +
                                    path("new.json"));
  EXPECT_EQ(compared.exit_code, 0) << compared.output;
  EXPECT_NE(compared.output.find("info (no samples)"), std::string::npos)
      << compared.output;
}

TEST_F(BenchstatCli, MergeCarriesV3UnitsAndMixesWithV2) {
  // A v3 run contributes a `units` object to the suite entry; a v2 run in
  // the same merge simply has none — mixed suites stay valid.
  write_file(path("v3.json"),
             synthetic_bench_v3("out/bench_alpha", {10.0, 10.2, 9.9},
                                {42.0, 42.5, 41.8}, 1, false));
  write_file(path("v2.json"),
             synthetic_bench("out/bench_beta", {5.0, 5.1, 4.9}, 50));

  const auto merged = run_command(benchstat_path() + " merge " +
                                  path("v3.json") + " " + path("v2.json"));
  ASSERT_EQ(merged.exit_code, 0) << merged.output;

  const JsonValue doc = parse_json(merged.output);
  EXPECT_EQ(doc.at("schema").string, "gw.benchsuite.v1");
  ASSERT_EQ(doc.at("benches").array.size(), 2u);
  const JsonValue& alpha = doc.at("benches").array[0];
  ASSERT_TRUE(alpha.has("units")) << merged.output;
  ASSERT_TRUE(alpha.at("units").has("ns_per_user_evaluated"));
  EXPECT_EQ(
      alpha.at("units").at("ns_per_user_evaluated").array.size(), 3u);
  const JsonValue& beta = doc.at("benches").array[1];
  EXPECT_FALSE(beta.has("units"));
  // Manifest facts come from the first document that carried them.
  EXPECT_EQ(doc.at("manifest").at("counters_available").boolean, false);
}

TEST_F(BenchstatCli, PerUnitGatesOnNsPerUserEvaluated) {
  // Wall time unchanged but the normalized cost doubled (the sweep did
  // half the work): only --per-unit turns that into a gate failure.
  const std::vector<double> wall = {10.0, 10.2, 9.9, 10.1, 10.0};
  write_file(path("old.json"),
             synthetic_bench_v3("bench_norm", wall,
                                {40.0, 40.4, 39.8, 40.2, 40.1}, 1, false));
  write_file(path("new.json"),
             synthetic_bench_v3("bench_norm", wall,
                                {80.0, 80.6, 79.5, 80.3, 80.2}, 1, false));

  const auto scalar_only = run_command(
      benchstat_path() + " compare " + path("old.json") + " " +
      path("new.json") + " --threshold 5");
  EXPECT_EQ(scalar_only.exit_code, 0) << scalar_only.output;

  const std::string out = path("per_unit.json");
  const auto per_unit = run_command(
      benchstat_path() + " compare " + path("old.json") + " " +
      path("new.json") + " --threshold 5 --per-unit --json " + out);
  EXPECT_EQ(per_unit.exit_code, 1) << per_unit.output;
  EXPECT_NE(
      per_unit.output.find("REGRESSED: bench_norm.ns_per_user_evaluated"),
      std::string::npos)
      << per_unit.output;

  std::ifstream in(out);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue doc = parse_json(buffer.str());
  EXPECT_EQ(doc.at("gate").string, "fail");
  EXPECT_EQ(doc.at("per_unit").boolean, true);
  ASSERT_EQ(doc.at("regressions").array.size(), 1u);
  EXPECT_EQ(doc.at("regressions").array[0].string,
            "bench_norm.ns_per_user_evaluated");
  std::remove(out.c_str());
}

TEST_F(BenchstatCli, CompareWarnsWhenManifestsDiffer) {
  // threads 1 vs 2 and hardware vs degraded counters: normalized metrics
  // are not comparable, so the compare carries explicit warnings (but the
  // gate itself is unaffected).
  const std::vector<double> wall = {10.0, 10.2, 9.9, 10.1, 10.0};
  write_file(path("old.json"),
             synthetic_bench_v3("bench_cfg", wall,
                                {40.0, 40.4, 39.8, 40.2, 40.1}, 1, true));
  write_file(path("new.json"),
             synthetic_bench_v3("bench_cfg", wall,
                                {40.1, 40.0, 40.2, 39.9, 40.05}, 2, false));

  const std::string out = path("warn.json");
  const auto compared = run_command(
      benchstat_path() + " compare " + path("old.json") + " " +
      path("new.json") + " --threshold 5 --per-unit --json " + out);
  EXPECT_EQ(compared.exit_code, 0) << compared.output;
  EXPECT_NE(compared.output.find("WARNING: manifests differ: threads 1 vs 2"),
            std::string::npos)
      << compared.output;
  EXPECT_NE(compared.output.find("counter availability"), std::string::npos)
      << compared.output;

  std::ifstream in(out);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue doc = parse_json(buffer.str());
  ASSERT_EQ(doc.at("manifest_warnings").array.size(), 2u);
  EXPECT_NE(doc.at("manifest_warnings").array[0].string.find("threads"),
            std::string::npos);
  std::remove(out.c_str());
}

TEST_F(BenchstatCli, CompareWarnsOnSimdAndMarchMismatch) {
  // A vector-vs-scalar build (GW_SIMD stamp) or a different ISA baseline
  // (-march= inside cxx_flags) skews per-unit costs exactly like a
  // thread-count mismatch, so both earn manifest warnings.
  const std::vector<double> wall = {10.0, 10.2, 9.9, 10.1, 10.0};
  auto with_manifest = [](std::string doc, const std::string& simd,
                          const std::string& flags) {
    const std::string needle = "\"cxx_flags\":\"\"";
    const std::size_t at = doc.find(needle);
    EXPECT_NE(at, std::string::npos);
    doc.replace(at, needle.size(),
                "\"cxx_flags\":\"" + flags + "\",\"simd\":\"" + simd + "\"");
    return doc;
  };
  write_file(path("old.json"),
             with_manifest(
                 synthetic_bench_v3("bench_isa", wall,
                                    {40.0, 40.4, 39.8, 40.2, 40.1}, 1, true),
                 "ON", "-O3 -march=x86-64-v3"));
  write_file(path("new.json"),
             with_manifest(
                 synthetic_bench_v3("bench_isa", wall,
                                    {40.1, 40.0, 40.2, 39.9, 40.05}, 1, true),
                 "OFF", "-O3 -march=native"));

  const std::string out = path("warn_isa.json");
  const auto compared = run_command(
      benchstat_path() + " compare " + path("old.json") + " " +
      path("new.json") + " --threshold 5 --per-unit --json " + out);
  EXPECT_EQ(compared.exit_code, 0) << compared.output;
  EXPECT_NE(compared.output.find("WARNING: manifests differ: GW_SIMD ON vs "
                                 "OFF"),
            std::string::npos)
      << compared.output;
  EXPECT_NE(compared.output.find(
                "WARNING: manifests differ: -march=x86-64-v3 vs "
                "-march=native"),
            std::string::npos)
      << compared.output;

  std::ifstream in(out);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue doc = parse_json(buffer.str());
  ASSERT_EQ(doc.at("manifest_warnings").array.size(), 2u);
  std::remove(out.c_str());
}

TEST_F(BenchstatCli, MixedV2AndV3CompareFallsBackToWall) {
  // Old baseline predates counters (v2), new run is v3: wall_ms still
  // gates, per-unit metrics appear only on the side that has them, and
  // nothing errors out.
  write_file(path("old.json"),
             synthetic_bench("bench_mixed", {10.0, 10.2, 9.9, 10.1, 10.0},
                             100));
  write_file(path("new.json"),
             synthetic_bench_v3("bench_mixed",
                                {20.0, 20.4, 19.8, 20.2, 20.1},
                                {40.0, 40.4, 39.8, 40.2, 40.1}, 1, false));

  const auto compared = run_command(
      benchstat_path() + " compare " + path("old.json") + " " +
      path("new.json") + " --threshold 5 --per-unit");
  EXPECT_EQ(compared.exit_code, 1) << compared.output;
  EXPECT_NE(compared.output.find("REGRESSED: bench_mixed.wall_ms"),
            std::string::npos)
      << compared.output;
}

TEST_F(BenchstatCli, RejectsUnknownSchemaAndMissingFile) {
  write_file(path("bad.json"), "{\"schema\":\"who.knows.v9\"}");
  EXPECT_EQ(run_command(benchstat_path() + " merge " + path("bad.json"))
                .exit_code,
            2);
  EXPECT_EQ(run_command(benchstat_path() + " merge " + path("nope.json"))
                .exit_code,
            2);
}

}  // namespace
