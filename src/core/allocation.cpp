#include "core/allocation.hpp"

#include <cmath>
#include <stdexcept>

#include "numerics/differentiate.hpp"

namespace gw::core {

namespace {

/// Workspace behind the legacy vector wrappers. Thread-local so concurrent
/// solvers (exec::parallel_for sweeps) never share scratch; *_into
/// implementations only ever use the workspace passed to them, so the
/// wrapper's use is never re-entered.
EvalWorkspace& wrapper_workspace() {
  thread_local EvalWorkspace ws;
  return ws;
}

}  // namespace

EvalWorkspace& AllocationFunction::scratch_workspace() {
  return wrapper_workspace();
}

void AllocationFunction::validate_rates(std::span<const double> rates) {
  if (rates.empty()) {
    throw std::invalid_argument("allocation: empty rate vector");
  }
  for (const double rate : rates) {
    if (rate < 0.0 || std::isnan(rate)) {
      throw std::invalid_argument("allocation: rates must be >= 0");
    }
  }
}

double AllocationFunction::congestion_of_into(std::size_t i,
                                              std::span<const double> rates,
                                              EvalWorkspace& ws) const {
  const std::size_t n = rates.size();
  ws.ensure(n);
  const std::span<double> cbuf = ws.cbuf(n);
  congestion_into(rates, cbuf, ws);
  return cbuf[i];
}

void AllocationFunction::jacobian_into(std::span<const double> rates,
                                       numerics::Matrix& out,
                                       EvalWorkspace& ws) const {
  const std::size_t n = rates.size();
  out.resize(n, n);
  // The legacy partial() signature wants a vector; stage the rates in the
  // workspace's staging vector (rates must not alias ws per the contract).
  std::vector<double>& staged = ws.legacy_staging();
  staged.assign(rates.begin(), rates.end());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) out(i, j) = partial(i, j, staged);
  }
}

void AllocationFunction::second_partials_into(std::span<const double> rates,
                                              numerics::Matrix& out,
                                              EvalWorkspace& ws) const {
  const std::size_t n = rates.size();
  out.resize(n, n);
  std::vector<double>& staged = ws.legacy_staging();
  staged.assign(rates.begin(), rates.end());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out(i, j) = second_partial(i, j, staged);
    }
  }
}

bool AllocationFunction::scan_prepare(std::size_t /*i*/,
                                      std::span<const double> /*rates*/,
                                      EvalWorkspace& /*ws*/) const {
  return false;
}

double AllocationFunction::scan_congestion_of(std::size_t /*i*/, double /*x*/,
                                              std::span<const double> /*rates*/,
                                              EvalWorkspace& /*ws*/) const {
  throw std::logic_error(
      "AllocationFunction::scan_congestion_of: no scan fast path staged "
      "(scan_prepare returned false)");
}

bool AllocationFunction::congestion_classes_into(
    const ClassedPopulation& /*pop*/, std::span<double> /*out*/,
    EvalWorkspace& /*ws*/) const {
  return false;
}

bool AllocationFunction::jacobian_classes_into(const ClassedPopulation& /*pop*/,
                                               numerics::Matrix& /*cross*/,
                                               std::span<double> /*own*/,
                                               EvalWorkspace& /*ws*/) const {
  return false;
}

bool AllocationFunction::scan_prepare_classes(std::size_t /*a*/,
                                              const ClassedPopulation& /*pop*/,
                                              EvalWorkspace& /*ws*/) const {
  return false;
}

double AllocationFunction::scan_congestion_of_class(
    std::size_t /*a*/, double /*x*/, const ClassedPopulation& /*pop*/,
    EvalWorkspace& /*ws*/) const {
  throw std::logic_error(
      "AllocationFunction::scan_congestion_of_class: no classed scan fast "
      "path staged (scan_prepare_classes returned false)");
}

std::vector<double> AllocationFunction::congestion(
    const std::vector<double>& rates) const {
  validate_rates(rates);
  std::vector<double> out(rates.size());
  congestion_into(rates, out, wrapper_workspace());
  return out;
}

double AllocationFunction::congestion_of(
    std::size_t i, const std::vector<double>& rates) const {
  validate_rates(rates);
  if (i >= rates.size()) {
    throw std::out_of_range("allocation: congestion_of index");
  }
  return congestion_of_into(i, rates, wrapper_workspace());
}

numerics::Matrix AllocationFunction::jacobian(
    const std::vector<double>& rates) const {
  validate_rates(rates);
  const std::size_t n = rates.size();
  numerics::Matrix out(n, n);
  jacobian_into(rates, out, wrapper_workspace());
  return out;
}

double AllocationFunction::partial(std::size_t i, std::size_t j,
                                   const std::vector<double>& rates) const {
  return numerics::partial(
      [this, i](const std::vector<double>& r) { return congestion_of(i, r); },
      rates, j);
}

double AllocationFunction::second_partial(
    std::size_t i, std::size_t j, const std::vector<double>& rates) const {
  return numerics::mixed_partial(
      [this, i](const std::vector<double>& r) { return congestion_of(i, r); },
      rates, i, j);
}

SubsystemAllocation::SubsystemAllocation(
    std::shared_ptr<const AllocationFunction> base,
    std::vector<double> frozen_rates, std::vector<std::size_t> free_indices)
    : base_(std::move(base)),
      frozen_rates_(std::move(frozen_rates)),
      free_indices_(std::move(free_indices)) {
  if (base_ == nullptr) {
    throw std::invalid_argument("SubsystemAllocation: null base");
  }
  if (free_indices_.empty()) {
    throw std::invalid_argument("SubsystemAllocation: no free users");
  }
  for (const std::size_t idx : free_indices_) {
    if (idx >= frozen_rates_.size()) {
      throw std::invalid_argument("SubsystemAllocation: index out of range");
    }
  }
}

std::string SubsystemAllocation::name() const {
  return base_->name() + "/subsystem(" + std::to_string(free_indices_.size()) +
         " of " + std::to_string(frozen_rates_.size()) + ")";
}

void SubsystemAllocation::embed_into(std::span<const double> rates,
                                     std::span<double> full) const {
  if (rates.size() != free_indices_.size()) {
    throw std::invalid_argument("SubsystemAllocation: wrong reduced size");
  }
  for (std::size_t k = 0; k < frozen_rates_.size(); ++k) {
    full[k] = frozen_rates_[k];
  }
  for (std::size_t k = 0; k < free_indices_.size(); ++k) {
    full[free_indices_[k]] = rates[k];
  }
}

std::vector<double> SubsystemAllocation::embed(
    const std::vector<double>& rates) const {
  std::vector<double> full(frozen_rates_.size());
  embed_into(rates, full);
  return full;
}

void SubsystemAllocation::congestion_into(std::span<const double> rates,
                                          std::span<double> out,
                                          EvalWorkspace& ws) const {
  const std::size_t base_n = frozen_rates_.size();
  ws.ensure(base_n);
  const std::span<double> full = ws.a(base_n);
  const std::span<double> base_out = ws.b(base_n);
  embed_into(rates, full);
  base_->congestion_into(full, base_out, ws.child());
  for (std::size_t k = 0; k < free_indices_.size(); ++k) {
    out[k] = base_out[free_indices_[k]];
  }
}

double SubsystemAllocation::congestion_of_into(std::size_t i,
                                               std::span<const double> rates,
                                               EvalWorkspace& ws) const {
  const std::size_t base_n = frozen_rates_.size();
  ws.ensure(base_n);
  const std::span<double> full = ws.a(base_n);
  embed_into(rates, full);
  return base_->congestion_of_into(free_indices_[i], full, ws.child());
}

double SubsystemAllocation::partial(std::size_t i, std::size_t j,
                                    const std::vector<double>& rates) const {
  return base_->partial(free_indices_.at(i), free_indices_.at(j),
                        embed(rates));
}

double SubsystemAllocation::second_partial(
    std::size_t i, std::size_t j, const std::vector<double>& rates) const {
  return base_->second_partial(free_indices_.at(i), free_indices_.at(j),
                               embed(rates));
}

}  // namespace gw::core
