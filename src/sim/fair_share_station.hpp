// The Fair Share switch (paper Table 1), at packet level.
//
// Each arriving packet from the rank-k user is assigned a priority level
// l <= k with probability (slice width at l) / r_k — a thinning of the
// user's Poisson stream into independent per-level Poisson slices — and
// the station then runs preemptive-resume priority. The resulting
// per-level loads are exactly the serial cumulative loads S_k, so the
// measured per-user occupancy reproduces C^FS.
//
// Two modes:
//   * oracle: the true rate vector is supplied up front;
//   * adaptive: rates are estimated online (RateEstimator) and the
//     thinning thresholds rebuilt every `rebuild_interval` of simulated
//     time — the deployable variant.
#pragma once

#include <memory>

#include "core/fair_share.hpp"
#include "numerics/rng.hpp"
#include "sim/rate_estimator.hpp"
#include "sim/stations.hpp"

namespace gw::sim {

class FairShareStation final : public Station {
 public:
  /// Oracle mode.
  FairShareStation(Simulator& sim, QueueTracker& tracker,
                   std::vector<double> rates, std::uint64_t seed);

  /// Weighted oracle mode: realizes the weighted serial rule (weighted
  /// Fair Share) by thinning onto levels of the weighted decomposition.
  FairShareStation(Simulator& sim, QueueTracker& tracker,
                   std::vector<double> rates, std::vector<double> weights,
                   std::uint64_t seed);

  /// Adaptive mode: rates estimated with `estimator_tau`, thresholds
  /// rebuilt every `rebuild_interval` time units.
  FairShareStation(Simulator& sim, QueueTracker& tracker, std::size_t n_users,
                   double estimator_tau, double rebuild_interval,
                   std::uint64_t seed);

  [[nodiscard]] std::string name() const override {
    return adaptive_ ? "FairShare(adaptive)" : "FairShare(oracle)";
  }
  void arrive(Packet packet) override;

  /// Departures happen inside the wrapped priority engine; forward the
  /// tandem hook there.
  void set_next_hop(std::function<void(const Packet&)> hook) override {
    priority_.set_next_hop(std::move(hook));
  }

  /// Updates the oracle rates (adaptive users changing their demands).
  void set_rates(std::vector<double> rates);

  /// The rates currently driving the thinning thresholds.
  [[nodiscard]] const std::vector<double>& active_rates() const noexcept {
    return rates_;
  }

 private:
  void rebuild_thresholds();
  [[nodiscard]] int sample_level(std::size_t user);

  PreemptivePriorityStation priority_;
  std::vector<double> rates_;
  std::vector<double> weights_;  ///< empty = unweighted
  /// cumulative_[u][l] = P(level <= l) for a packet of user u.
  std::vector<std::vector<double>> cumulative_;
  numerics::Rng rng_;
  bool adaptive_ = false;
  std::unique_ptr<RateEstimator> estimator_;
  double rebuild_interval_ = 0.0;
  double next_rebuild_ = 0.0;
};

}  // namespace gw::sim
