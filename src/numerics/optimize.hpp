// Scalar and small-dimension optimization.
//
// Best responses in the congestion game are global maxima of possibly
// non-concave scalar payoffs (congestion can jump to +infinity outside the
// feasible region), so the scalar maximizer combines a coarse scan with a
// Brent refinement. Nelder–Mead handles the low-dimensional Pareto
// domination searches.
#pragma once

#include <functional>
#include <vector>

namespace gw::numerics {

/// Result of a scalar optimization.
struct Maximum1D {
  double x = 0.0;      ///< argmax
  double value = 0.0;  ///< attained maximum
  int evaluations = 0;
  bool converged = false;
};

struct Optimize1DOptions {
  double x_tol = 1e-11;
  int max_iterations = 200;
  /// Number of coarse scan points used by maximize_scan before refinement.
  int scan_points = 257;
};

/// Golden-section maximization of a unimodal f on [lo, hi].
[[nodiscard]] Maximum1D golden_section_max(
    const std::function<double(double)>& f, double lo, double hi,
    const Optimize1DOptions& options = {});

/// Brent's parabolic-interpolation maximization on [lo, hi] (unimodal f).
[[nodiscard]] Maximum1D brent_max(const std::function<double(double)>& f,
                                  double lo, double hi,
                                  const Optimize1DOptions& options = {});

/// Global-ish maximization: evaluates a uniform scan over [lo, hi], then
/// refines around the best sample with Brent. Robust to plateaus, -inf
/// regions, and mild multimodality; this is the workhorse for best responses.
[[nodiscard]] Maximum1D maximize_scan(const std::function<double(double)>& f,
                                      double lo, double hi,
                                      const Optimize1DOptions& options = {});

/// Result of a Nelder–Mead search.
struct MaximumND {
  std::vector<double> x;
  double value = 0.0;
  int evaluations = 0;
  bool converged = false;
};

struct NelderMeadOptions {
  double f_tol = 1e-10;        ///< spread of simplex values at convergence
  int max_evaluations = 20000;
  double initial_step = 0.05;  ///< simplex edge length
};

/// Nelder–Mead simplex *maximization* of f from `start`.
/// f may return -infinity to encode infeasibility (penalty style).
[[nodiscard]] MaximumND nelder_mead_max(
    const std::function<double(const std::vector<double>&)>& f,
    const std::vector<double>& start, const NelderMeadOptions& options = {});

}  // namespace gw::numerics
