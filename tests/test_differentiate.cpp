#include "numerics/differentiate.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gw::numerics {
namespace {

TEST(Derivative, Polynomial) {
  auto f = [](double x) { return 3.0 * x * x * x - 2.0 * x + 1.0; };
  EXPECT_NEAR(derivative(f, 2.0), 9.0 * 4.0 - 2.0, 1e-8);
}

TEST(Derivative, Exponential) {
  EXPECT_NEAR(derivative([](double x) { return std::exp(x); }, 1.0),
              std::exp(1.0), 1e-8);
}

TEST(Derivative, SteepRational) {
  // d/dx [x / (1 - x)] = 1 / (1 - x)^2, near the pole.
  auto f = [](double x) { return x / (1.0 - x); };
  const double x = 0.9;
  const double expected = 1.0 / (0.1 * 0.1);
  DiffOptions options;
  options.step = 1e-6;
  EXPECT_NEAR(derivative(f, x, options) / expected, 1.0, 1e-5);
}

TEST(OneSidedDerivative, MatchesDirectionAtKink) {
  auto f = [](double x) { return std::abs(x); };
  EXPECT_NEAR(one_sided_derivative(f, 0.0, +1), 1.0, 1e-6);
  EXPECT_NEAR(one_sided_derivative(f, 0.0, -1), -1.0, 1e-6);
}

TEST(SecondDerivative, Quadratic) {
  EXPECT_NEAR(second_derivative([](double x) { return 4.0 * x * x; }, 3.0),
              8.0, 1e-5);
}

TEST(SecondDerivative, Cosine) {
  EXPECT_NEAR(
      second_derivative([](double x) { return std::cos(x); }, 0.5),
      -std::cos(0.5), 1e-5);
}

TEST(Partial, MultivariatePolynomial) {
  auto f = [](const std::vector<double>& x) {
    return x[0] * x[0] * x[1] + 5.0 * x[1];
  };
  EXPECT_NEAR(partial(f, {2.0, 3.0}, 0), 12.0, 1e-7);
  EXPECT_NEAR(partial(f, {2.0, 3.0}, 1), 9.0, 1e-7);
}

TEST(MixedPartial, SymmetricCrossTerm) {
  auto f = [](const std::vector<double>& x) {
    return std::sin(x[0]) * std::cos(x[1]);
  };
  const double expected = -std::cos(1.0) * std::sin(0.5);
  EXPECT_NEAR(mixed_partial(f, {1.0, 0.5}, 0, 1), expected, 1e-5);
  EXPECT_NEAR(mixed_partial(f, {1.0, 0.5}, 1, 0), expected, 1e-5);
}

TEST(MixedPartial, DiagonalIsSecondDerivative) {
  auto f = [](const std::vector<double>& x) { return x[0] * x[0] * x[0]; };
  EXPECT_NEAR(mixed_partial(f, {2.0}, 0, 0), 12.0, 1e-4);
}

TEST(Gradient, MatchesAnalytic) {
  auto f = [](const std::vector<double>& x) {
    return x[0] * x[0] + 2.0 * x[1] * x[1] + x[0] * x[1];
  };
  const auto grad = gradient(f, {1.0, -1.0});
  EXPECT_NEAR(grad[0], 2.0 - 1.0, 1e-7);
  EXPECT_NEAR(grad[1], -4.0 + 1.0, 1e-7);
}

}  // namespace
}  // namespace gw::numerics
