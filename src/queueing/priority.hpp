// M/M/1 priority queues with identical exponical service rates per class.
//
// Preemptive-resume priority is the substrate of the Fair Share allocation:
// classes 1..K (1 = highest priority), arrival rates lambda_k, one
// exponential server of rate mu. Because preemption makes lower classes
// invisible to higher ones, classes 1..k jointly behave as an M/M/1 at the
// cumulative load sigma_k, giving the clean telescoping form
//   L_k = g(sigma_k) - g(sigma_{k-1})
// that the paper's Fair Share construction exploits.
#pragma once

#include <vector>

namespace gw::queueing {

/// Per-class results for a priority M/M/1.
struct PriorityClassResult {
  double lambda = 0.0;          ///< class arrival rate
  double mean_in_system = 0.0;  ///< L_k, +inf if the class saturates
  double mean_sojourn = 0.0;    ///< W_k = L_k / lambda_k (Little)
};

/// Preemptive-resume priority M/M/1; `lambdas[0]` is the highest class.
/// Classes whose cumulative load reaches mu get +infinity means.
[[nodiscard]] std::vector<PriorityClassResult> preemptive_priority_mm1(
    const std::vector<double>& lambdas, double mu = 1.0);

/// Non-preemptive (HOL, Cobham) priority M/M/1 with identical service rate.
[[nodiscard]] std::vector<PriorityClassResult> nonpreemptive_priority_mm1(
    const std::vector<double>& lambdas, double mu = 1.0);

}  // namespace gw::queueing
