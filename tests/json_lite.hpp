// Test-suite alias for the shared JSON parser.
//
// The parser used to live here; it moved to obs/json_parse.hpp so the
// gw-benchstat CLI can read telemetry with the same code the tests use to
// validate it. Existing tests keep their gw::jsonlite spelling.
#pragma once

#include "obs/json_parse.hpp"

namespace gw::jsonlite {

using JsonValue = gw::obs::JsonValue;
using JsonParser = gw::obs::JsonParser;
using gw::obs::parse_json;

}  // namespace gw::jsonlite
