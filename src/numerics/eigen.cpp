#include "numerics/eigen.hpp"

#include <cmath>
#include <stdexcept>

#include "numerics/polynomial.hpp"
#include "numerics/rng.hpp"

namespace gw::numerics {

std::vector<double> characteristic_polynomial(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("characteristic_polynomial: non-square");
  }
  const std::size_t n = a.rows();
  // Faddeev–LeVerrier: M_0 = I, c_n = 1;
  //   M_k = A M_{k-1} + c_{n-k+1} I,  c_{n-k} = -tr(A M_k) / k.
  std::vector<double> coefficients(n + 1, 0.0);
  coefficients[n] = 1.0;
  Matrix m = Matrix::identity(n);
  for (std::size_t k = 1; k <= n; ++k) {
    Matrix am = a * m;
    coefficients[n - k] = -am.trace() / static_cast<double>(k);
    m = am;
    for (std::size_t i = 0; i < n; ++i) m(i, i) += coefficients[n - k];
  }
  return coefficients;
}

std::vector<std::complex<double>> eigenvalues(const Matrix& a) {
  const auto coefficients = characteristic_polynomial(a);
  // Zero matrix special-case: all coefficients except the lead vanish.
  bool all_zero = true;
  for (std::size_t i = 0; i + 1 < coefficients.size(); ++i) {
    if (coefficients[i] != 0.0) {
      all_zero = false;
      break;
    }
  }
  if (all_zero) {
    return std::vector<std::complex<double>>(a.rows(), {0.0, 0.0});
  }
  return find_roots(Polynomial{coefficients});
}

double spectral_radius(const Matrix& a) {
  double radius = 0.0;
  for (const auto& lambda : eigenvalues(a)) {
    radius = std::max(radius, std::abs(lambda));
  }
  return radius;
}

double power_iteration_radius(const Matrix& a, int iterations, unsigned seed) {
  const std::size_t n = a.rows();
  if (n == 0) return 0.0;
  Rng rng(seed);
  double best = 0.0;
  for (int restart = 0; restart < 4; ++restart) {
    std::vector<double> v(n);
    for (auto& x : v) x = rng.uniform(-1.0, 1.0);
    double norm = 0.0;
    for (const double x : v) norm += x * x;
    norm = std::sqrt(norm);
    if (norm == 0.0) continue;
    for (auto& x : v) x /= norm;
    double estimate = 0.0;
    for (int it = 0; it < iterations; ++it) {
      std::vector<double> w = a * v;
      double wnorm = 0.0;
      for (const double x : w) wnorm += x * x;
      wnorm = std::sqrt(wnorm);
      if (wnorm < 1e-300) {
        estimate = 0.0;
        break;
      }
      estimate = wnorm;  // since ||v|| == 1
      for (std::size_t i = 0; i < n; ++i) v[i] = w[i] / wnorm;
    }
    best = std::max(best, estimate);
  }
  return best;
}

bool is_nilpotent(const Matrix& a, double tolerance) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("is_nilpotent: non-square");
  }
  const Matrix power = matrix_power(a, static_cast<unsigned>(a.rows()));
  const double scale = std::max(1.0, a.max_abs());
  return power.max_abs() <= tolerance * std::pow(scale,
                                                 static_cast<double>(a.rows()));
}

int nilpotency_index(const Matrix& a, double tolerance) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("nilpotency_index: non-square");
  }
  const std::size_t n = a.rows();
  Matrix power = Matrix::identity(n);
  const double scale = std::max(1.0, a.max_abs());
  double scale_k = 1.0;
  for (std::size_t k = 0; k <= n; ++k) {
    if (power.max_abs() <= tolerance * std::max(1.0, scale_k)) {
      return static_cast<int>(k);
    }
    power = power * a;
    scale_k *= scale;
  }
  return -1;
}

}  // namespace gw::numerics
