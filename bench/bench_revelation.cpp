// E-REVEAL — Theorem 6: the Fair Share Nash map is a revelation
// mechanism. Users report linear utilities U = r - gamma_hat c to the
// switch; we sweep misreported gamma_hat and measure the TRUE-utility
// gain relative to honesty, under B^FS and under the FIFO-Nash analogue.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/fair_share.hpp"
#include "core/proportional.hpp"
#include "core/revelation.hpp"

static int run() {
  using namespace gw;
  using core::make_linear;
  bench::banner(
      "E-REVEAL revelation", "Theorem 6; Definition 6",
      "When the switch computes the reported game's Nash allocation, "
      "truth-telling is dominant under Fair Share; under FIFO users gain "
      "by under-reporting congestion sensitivity.");

  const core::UtilityProfile truth{make_linear(1.0, 0.2),
                                   make_linear(1.0, 0.35),
                                   make_linear(1.0, 0.5)};
  std::vector<core::UtilityPtr> reports;
  std::vector<double> report_gammas;
  for (double gamma = 0.05; gamma <= 0.95; gamma += 0.05) {
    reports.push_back(make_linear(1.0, gamma));
    report_gammas.push_back(gamma);
  }

  const auto fs_mechanism =
      core::make_nash_mechanism(std::make_shared<core::FairShareAllocation>());
  const auto fifo_mechanism = core::make_nash_mechanism(
      std::make_shared<core::ProportionalAllocation>());

  std::printf("\nBest true-utility gain from misreporting gamma_hat "
              "(true gammas: 0.20 / 0.35 / 0.50):\n\n");
  bench::table_header({"user", "truth", "FS gain", "FS best lie",
                       "FIFO gain", "FIFO best lie"});
  double fs_worst_gain = 0.0, fifo_best_gain = 0.0;
  const double true_gammas[] = {0.2, 0.35, 0.5};
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const auto fs_sweep = core::sweep_misreports(fs_mechanism, truth, i, reports);
    const auto fifo_sweep =
        core::sweep_misreports(fifo_mechanism, truth, i, reports);
    fs_worst_gain = std::max(fs_worst_gain, fs_sweep.best_gain);
    fifo_best_gain = std::max(fifo_best_gain, fifo_sweep.best_gain);
    bench::table_row(
        {std::to_string(i + 1), bench::fmt(true_gammas[i], 2),
         bench::fmt(fs_sweep.best_gain, 6),
         fs_sweep.best_gain > 1e-6
             ? bench::fmt(report_gammas[fs_sweep.best_report_index], 2)
             : "-",
         bench::fmt(fifo_sweep.best_gain, 6),
         fifo_sweep.best_gain > 1e-6
             ? bench::fmt(report_gammas[fifo_sweep.best_report_index], 2)
             : "-"});
  }
  bench::verdict(fs_worst_gain <= 1e-4,
                 "B^FS: no profitable misreport in the sweep (truth "
                 "dominant)");
  bench::verdict(fifo_best_gain > 1e-3,
                 "FIFO mechanism: profitable misreports exist");
  return bench::failures();
}

GW_BENCH_MAIN(run)
