// Roofline observability in miniature: one Nash solve per discipline with
// hardware counters and the work meter armed, then a normalized-cost
// table — ns per user-evaluated, instructions per user, IPC — instead of
// raw wall time.
//
//   ./roofline_demo
//
// On hosts without a usable PMU (unprivileged CI runners, most VMs) the
// counter columns print "n/a" and the demo still reports work-normalized
// wall costs: exactly the degradation contract the bench harness relies
// on, so this demo doubles as a smoke test for it.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/fair_share.hpp"
#include "core/gfunction.hpp"
#include "core/nash.hpp"
#include "core/priority_alloc.hpp"
#include "core/proportional.hpp"
#include "core/serial_general.hpp"
#include "core/utility.hpp"
#include "obs/perfcount.hpp"

int main() {
  using namespace gw;
  namespace work = obs::work;
  constexpr std::size_t kUsers = 24;

  struct Entry {
    const char* name;
    std::unique_ptr<core::AllocationFunction> alloc;
  };
  std::vector<Entry> disciplines;
  disciplines.push_back({"fair_share",
                         std::make_unique<core::FairShareAllocation>()});
  disciplines.push_back({"proportional",
                         std::make_unique<core::ProportionalAllocation>()});
  disciplines.push_back(
      {"serial_mm1", std::make_unique<core::GeneralSerialAllocation>(
                         core::GFunction::mm1())});
  disciplines.push_back(
      {"srf", std::make_unique<core::SmallestRateFirstAllocation>()});
  disciplines.push_back(
      {"fixed_priority",
       std::make_unique<core::FixedPriorityAllocation>()});

  core::UtilityProfile profile;
  for (std::size_t i = 0; i < kUsers; ++i) {
    profile.push_back(core::make_linear(
        1.0, 0.3 + 0.5 * static_cast<double>(i) / kUsers));
  }

  obs::PerfCounterSession session;
  const bool hardware = session.available();
  std::printf("hardware counters: %s\n", session.status().c_str());
  if (!hardware) {
    std::printf("(degraded: work-normalized wall costs only — run with "
                "perf_event_paranoid <= 2 on a PMU host for IPC)\n");
  }
  std::printf("\n%zu users per solve; cost is per unit of work, not per "
              "solve:\n\n", kUsers);
  std::printf("  %-15s %-6s %-8s %-10s %-10s %-9s %-6s\n", "discipline",
              "iters", "sweeps", "users", "ns/user", "instr/user", "IPC");

  for (const Entry& entry : disciplines) {
    work::reset();
    work::set_armed(true);
    session.start();
    const auto t0 = std::chrono::steady_clock::now();
    const core::NashResult result = core::solve_nash(
        *entry.alloc, profile, std::vector<double>(kUsers, 0.01));
    const auto t1 = std::chrono::steady_clock::now();
    const obs::PerfCounts counts = session.stop();
    work::set_armed(false);
    const work::Totals totals = work::collect();

    const auto users = totals[work::Kind::kUsersEvaluated];
    const auto sweeps = totals[work::Kind::kGsSweeps];
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count();
    const double ns_per_user =
        users > 0 ? ns / static_cast<double>(users) : 0.0;
    std::string instr_per_user = "n/a";
    std::string ipc = "n/a";
    if (counts.hardware && users > 0) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.1f",
                    static_cast<double>(counts.instructions) * counts.scale /
                        static_cast<double>(users));
      instr_per_user = buf;
      std::snprintf(buf, sizeof buf, "%.2f", counts.ipc());
      ipc = buf;
    }
    std::printf("  %-15s %-6d %-8llu %-10llu %-10.1f %-9s %-6s%s\n",
                entry.name, result.iterations,
                static_cast<unsigned long long>(sweeps),
                static_cast<unsigned long long>(users), ns_per_user,
                instr_per_user.c_str(), ipc.c_str(),
                result.converged ? "" : "  (did not converge)");
    if (!result.converged) return 1;
  }

  std::printf(
      "\nns/user is the number a data-layout change must move; wall time "
      "alone\ncannot tell a faster kernel from a solve that simply did "
      "less work.\n");
  return 0;
}
