#include "queueing/feasibility.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "queueing/mm1.hpp"

namespace gw::queueing {
namespace {

TEST(ConstraintResidual, ZeroOnMm1Surface) {
  // Proportional allocation lies exactly on the constraint.
  const std::vector<double> rates{0.2, 0.3};
  const double inv = 1.0 / (1.0 - 0.5);
  const std::vector<double> queues{0.2 * inv, 0.3 * inv};
  EXPECT_NEAR(constraint_residual(rates, queues), 0.0, 1e-12);
}

TEST(ConstraintResidual, SignConventions) {
  EXPECT_GT(constraint_residual({0.5}, {2.0}), 0.0);  // too much queue
  EXPECT_LT(constraint_residual({0.5}, {0.5}), 0.0);  // too little
}

TEST(CheckFeasibility, ProportionalIsFeasibleInterior) {
  const std::vector<double> rates{0.1, 0.2, 0.3};
  const double inv = 1.0 / (1.0 - 0.6);
  std::vector<double> queues;
  for (const double r : rates) queues.push_back(r * inv);
  const auto feasibility = check_feasibility(rates, queues);
  EXPECT_TRUE(feasibility.feasible());
  EXPECT_TRUE(feasibility.interior());
}

TEST(CheckFeasibility, SubsetViolationDetected) {
  // Give one user less queue than a solo M/M/1 would allow: infeasible.
  const std::vector<double> rates{0.4, 0.4};
  const double total = g(0.8);
  // User 0 gets far less than g(0.4) = 0.666...
  const std::vector<double> queues{0.1, total - 0.1};
  const auto feasibility = check_feasibility(rates, queues);
  EXPECT_TRUE(feasibility.on_constraint);
  EXPECT_FALSE(feasibility.subsets_ok);
  EXPECT_FALSE(feasibility.feasible());
}

TEST(CheckFeasibility, BoundaryOfSubsetConstraint) {
  // Preemptive priority saturates the prefix constraint for the top class.
  const std::vector<double> rates{0.3, 0.4};
  const std::vector<double> queues{g(0.3), g(0.7) - g(0.3)};
  const auto feasibility = check_feasibility(rates, queues);
  EXPECT_TRUE(feasibility.feasible());
  EXPECT_FALSE(feasibility.interior(1e-9));
  EXPECT_NEAR(feasibility.worst_prefix_slack, 0.0, 1e-12);
}

TEST(CheckFeasibility, OffConstraintRejected) {
  const auto feasibility = check_feasibility({0.5}, {2.0});
  EXPECT_FALSE(feasibility.on_constraint);
}

TEST(CheckFeasibility, SizeMismatchThrows) {
  EXPECT_THROW((void)check_feasibility({0.1}, {0.1, 0.2}),
               std::invalid_argument);
  EXPECT_THROW((void)check_feasibility({-0.1}, {0.1}), std::invalid_argument);
}

TEST(CheckFeasibility, SingleUserOnlyAggregate) {
  const auto feasibility = check_feasibility({0.5}, {1.0});
  EXPECT_TRUE(feasibility.feasible());
}

TEST(InNaturalDomain, BoundaryCases) {
  EXPECT_TRUE(in_natural_domain({0.2, 0.3}));
  EXPECT_FALSE(in_natural_domain({0.5, 0.5}));   // sums to 1
  EXPECT_FALSE(in_natural_domain({0.0, 0.3}));   // zero component
  EXPECT_FALSE(in_natural_domain({0.7, 0.6}));   // over capacity
}

}  // namespace
}  // namespace gw::queueing
