// E-ROBUST — Theorem 5: robust convergence and Stackelberg immunity.
//
// (a) Populations of mixed learners (hill climbers, elimination automata,
//     best-response sharks) under FS all converge to the same Nash point;
//     the automaton's surviving candidate set (S-infinity estimate)
//     collapses.
// (b) Stackelberg leader advantage: positive under FIFO, ~zero under FS.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/closed_forms.hpp"
#include "exec/thread_pool.hpp"
#include "core/fair_share.hpp"
#include "core/nash.hpp"
#include "core/priority_alloc.hpp"
#include "core/proportional.hpp"
#include "core/stackelberg.hpp"
#include "learn/automaton.hpp"
#include "learn/driver.hpp"
#include "learn/hill_climber.hpp"
#include "learn/oracle_learners.hpp"

static int run() {
  using namespace gw;
  using core::make_linear;
  bench::banner(
      "E-ROBUST convergence", "Theorem 5; Section 4.2.2",
      "Under Fair Share every 'reasonable' self-optimization scheme "
      "converges to the unique Nash point, and sophisticated strategies "
      "(Stackelberg leadership) buy nothing. Under FIFO the leader "
      "profits at the followers' expense.");

  const auto fs = std::make_shared<core::FairShareAllocation>();
  const auto fifo = std::make_shared<core::ProportionalAllocation>();
  const auto profile = core::uniform_profile(make_linear(1.0, 0.25), 3);
  const auto expected = core::fs_linear_symmetric_nash(0.25, 3);

  std::printf("\n(a) Mixed learner populations on Fair Share (target Nash "
              "rate %s):\n\n",
              bench::fmt(expected.rate, 4).c_str());
  bench::table_header({"population", "rounds", "final rates",
                       "max|r - Nash|"});

  struct Population {
    const char* label;
    std::vector<const char*> kinds;
  };
  const std::vector<Population> populations{
      {"3x hill-climb", {"hill", "hill", "hill"}},
      {"3x automaton", {"auto", "auto", "auto"}},
      {"hill+auto+BR", {"hill", "auto", "br"}},
      {"2xBR + newton", {"br", "br", "newton"}},
  };

  // The populations are independent deterministic games: drive them on
  // --threads workers, then report in order (identical for any count).
  std::vector<learn::DriverResult> outcomes(populations.size());
  exec::parallel_for(
      bench::thread_count(), populations.size(), [&](std::size_t p) {
        std::vector<std::unique_ptr<learn::Learner>> learners;
        double initial = 0.05;
        for (const char* kind : populations[p].kinds) {
          if (std::string(kind) == "hill") {
            learners.push_back(
                std::make_unique<learn::FiniteDifferenceHillClimber>(initial));
          } else if (std::string(kind) == "auto") {
            learn::AutomatonOptions options;
            options.candidates = 41;
            options.r_max = 0.6;
            learners.push_back(
                std::make_unique<learn::EliminationAutomaton>(initial,
                                                              options));
          } else if (std::string(kind) == "newton") {
            learners.push_back(std::make_unique<learn::NewtonLearner>(initial));
          } else {
            learners.push_back(
                std::make_unique<learn::BestResponseLearner>(initial));
          }
          initial += 0.1;
        }
        learn::GameDriver driver(fs, profile);
        learn::DriverOptions options;
        options.max_rounds = 6000;
        outcomes[p] = driver.run(learners, options);
      });

  bool all_converged_to_nash = true;
  for (std::size_t p = 0; p < populations.size(); ++p) {
    const auto& result = outcomes[p];
    double worst = 0.0;
    std::string rates = "(";
    for (std::size_t i = 0; i < result.final_rates.size(); ++i) {
      worst = std::max(worst, std::abs(result.final_rates[i] - expected.rate));
      rates += bench::fmt(result.final_rates[i], 3) +
               (i + 1 < result.final_rates.size() ? "," : ")");
    }
    if (worst > 0.04) all_converged_to_nash = false;
    bench::table_row({populations[p].label, std::to_string(result.rounds),
                      rates, bench::fmt(worst, 4)});
  }
  bench::verdict(all_converged_to_nash,
                 "every mixed population lands on the FS Nash point");

  // S-infinity estimate: automaton surviving sets.
  {
    std::vector<std::unique_ptr<learn::Learner>> learners;
    std::vector<learn::EliminationAutomaton*> automata;
    for (int i = 0; i < 3; ++i) {
      learn::AutomatonOptions options;
      options.candidates = 41;
      options.r_max = 0.6;
      options.seed = 17 + i;
      auto automaton = std::make_unique<learn::EliminationAutomaton>(
          0.1 + 0.1 * i, options);
      automata.push_back(automaton.get());
      learners.push_back(std::move(automaton));
    }
    learn::GameDriver driver(fs, profile);
    learn::DriverOptions options;
    options.max_rounds = 9000;
    (void)driver.run(learners, options);
    std::printf("\n  S-infinity estimate (surviving candidates of 41): ");
    bool collapsed = true;
    for (const auto* automaton : automata) {
      std::printf("%zu ", automaton->surviving_count());
      if (automaton->surviving_count() > 8) collapsed = false;
    }
    std::printf("\n");
    bench::verdict(collapsed,
                   "elimination automata collapse toward a single candidate");
  }

  // Scaling of convergence time with population size: naive hill
  // climbers on FS, rounds until the driver's calm criterion fires.
  std::printf("\nConvergence time vs population size (hill climbers on "
              "FS):\n\n");
  bench::table_header({"N", "rounds", "max|r - Nash|"});
  bool scaling_sane = true;
  for (const std::size_t n : {2u, 4u, 6u, 8u}) {
    const auto big_profile =
        core::uniform_profile(make_linear(1.0, 0.25), n);
    std::vector<std::unique_ptr<learn::Learner>> climbers;
    for (std::size_t i = 0; i < n; ++i) {
      climbers.push_back(std::make_unique<learn::FiniteDifferenceHillClimber>(
          0.02 + 0.3 * static_cast<double>(i) / static_cast<double>(n)));
    }
    learn::GameDriver driver(fs, big_profile);
    learn::DriverOptions driver_options;
    driver_options.max_rounds = 20000;
    const auto run = driver.run(climbers, driver_options);
    const auto target = core::fs_linear_symmetric_nash(0.25, n);
    double worst = 0.0;
    for (const double r : run.final_rates) {
      worst = std::max(worst, std::abs(r - target.rate));
    }
    if (worst > 0.03) scaling_sane = false;
    bench::table_row({std::to_string(n), std::to_string(run.rounds),
                      bench::fmt(worst, 4)});
  }
  bench::verdict(scaling_sane,
                 "hill-climber populations reach the FS Nash point at "
                 "every population size tried");

  // Best-response sweep throughput at scale: capped Gauss–Seidel sweeps
  // on large heterogeneous populations, where each sweep is N scalar
  // best-response scans and the congestion-probe kernel is the whole
  // cost. Sweeps are capped (the point is throughput, not convergence);
  // the shape verdicts hold at any kernel speed.
  std::printf("\nBest-response sweep throughput at scale (capped "
              "Gauss-Seidel sweeps):\n\n");
  bench::table_header(
      {"discipline", "N", "sweeps", "ms/sweep", "max_move", "sane"});
  const auto priority =
      std::make_shared<gw::core::SmallestRateFirstAllocation>();
  bool sweeps_sane = true;
  for (int which = 0; which < 2; ++which) {
    const auto alloc =
        which == 0
            ? std::static_pointer_cast<const core::AllocationFunction>(fs)
            : std::static_pointer_cast<const core::AllocationFunction>(
                  priority);
    for (const std::size_t n : {96u, 384u}) {
      core::UtilityProfile big;
      for (std::size_t i = 0; i < n; ++i) {
        big.push_back(make_linear(
            1.0, 0.2 + 0.3 * static_cast<double>(i) / static_cast<double>(n)));
      }
      std::vector<double> start(n, 0.25 / static_cast<double>(n));
      core::NashOptions options;
      options.max_iterations = 3;
      options.best_response.scan_points = 65;
      const auto t0 = std::chrono::steady_clock::now();
      const auto result = core::solve_nash(*alloc, big, start, options);
      const auto t1 = std::chrono::steady_clock::now();
      const double total_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      const int sweeps = std::max(result.iterations, 1);
      bool sane = std::isfinite(result.max_move);
      for (const double r : result.rates) {
        if (!std::isfinite(r) || r < 0.0 || r > 1.0) sane = false;
      }
      if (!sane) sweeps_sane = false;
      bench::table_row(
          {which == 0 ? "FairShare" : "SmallestRateFirst", std::to_string(n),
           std::to_string(sweeps),
           bench::fmt(total_ms / static_cast<double>(sweeps), 2),
           bench::fmt(result.max_move, 5), sane ? "yes" : "NO"});
    }
  }
  bench::verdict(sweeps_sane,
                 "large-N best-response sweeps keep every rate finite and "
                 "inside [0, 1]");

  // (b) Stackelberg advantage.
  std::printf("\n(b) Stackelberg leader advantage (leader utility minus her "
              "Nash utility):\n\n");
  bench::table_header({"discipline", "leader", "advantage", "leader rate",
                       "Nash rate"});
  core::StackelbergOptions stackelberg;
  stackelberg.leader_grid = 31;
  double fifo_advantage = 0.0, fs_advantage = 0.0;
  for (int which = 0; which < 2; ++which) {
    const auto alloc =
        which == 0
            ? std::static_pointer_cast<const core::AllocationFunction>(fifo)
            : std::static_pointer_cast<const core::AllocationFunction>(fs);
    const auto result = core::solve_stackelberg(alloc, profile, 0, stackelberg);
    bench::table_row({which == 0 ? "FIFO" : "FairShare", "user 1",
                      bench::fmt(result.advantage(), 6),
                      bench::fmt(result.leader_rate, 4),
                      bench::fmt(result.nash_rates[0], 4)});
    (which == 0 ? fifo_advantage : fs_advantage) = result.advantage();
  }
  bench::verdict(fifo_advantage > 1e-4,
                 "FIFO rewards Stackelberg sophistication");
  bench::verdict(std::abs(fs_advantage) < 3e-4,
                 "FS leader gains nothing (Nash == Stackelberg)");
  return bench::failures();
}

GW_BENCH_MAIN(run)
