// Roofline observability: hardware perf counters + domain work accounting.
//
// Wall time alone cannot tell a data-layout win from a smaller problem: a
// 2x speedup at N=4096 and a sweep that quietly evaluated half the users
// look identical in `wall_ms`. This header provides the two measurement
// primitives that make cost *work-normalized*:
//
//   * PerfCounterSession — a grouped `perf_event_open` session over the
//     classic roofline counters (cycles, instructions, cache-references,
//     cache-misses, branch-misses) plus the software task-clock. Counter
//     groups schedule on and off the PMU together, so ratios (IPC, miss
//     rate) are internally consistent; when the kernel multiplexes the
//     group the time_enabled/time_running scale factor is surfaced rather
//     than silently folded in. On hosts without a PMU or with
//     perf_event_paranoid too high the session degrades to "counters
//     unavailable" (status() says why) instead of failing — every caller
//     must keep working with hardware=false samples.
//
//   * WorkMeter (namespace gw::obs::work) — thread-local counters of
//     *domain* work units: users-evaluated, jacobian-cells-filled,
//     best-response calls, GS sweeps, events-processed, updates-applied.
//     Disarmed (the default) an add() is one relaxed atomic load and a
//     predicted branch — zero heap traffic, nanosecond-scale. Armed, each
//     add lands in the calling thread's own cache-line-padded block;
//     collect() sums the blocks, so totals are bit-identical for any
//     --threads value (integer sums are associative and the work partition
//     is deterministic — see exec::ThreadPool).
//
// Placement rule (see DESIGN.md): work is accounted at the *call site* of
// the virtual evaluation primitives — the solver/driver layer that
// requests the work — never inside discipline implementations. Composites
// (mixtures, subsystems, networks) recurse internally without touching
// the meter, so each unit is counted exactly once and the counts stay
// comparable across disciplines and data layouts.
//
// Threading contract: PerfCounterSession counts the thread that opened it
// (plus nothing else; worker-thread cycles are invisible to it, which the
// run manifest records via `threads` so compares stay like-for-like).
// WorkMeter::collect()/reset() require quiescence: no thread concurrently
// adding — the same contract Registry::reset() and FlightJournal exports
// already have in the bench harness.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace gw::obs {

/// One sample of the counter group, read at stop(). `hardware` says the
/// PMU group delivered; `software` says the task-clock did. All counts are
/// raw (unscaled): apply `scale` to estimate full-interval values when the
/// kernel multiplexed the group (scale == 1.0 means the group was on-PMU
/// for the whole interval).
struct PerfCounts {
  bool hardware = false;
  bool software = false;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t task_clock_ns = 0;    ///< software: on-CPU nanoseconds
  std::uint64_t time_enabled_ns = 0;  ///< group: wall time counters were armed
  std::uint64_t time_running_ns = 0;  ///< group: time actually on the PMU
  double scale = 1.0;  ///< time_enabled / time_running (>= 1 when multiplexed)

  /// Instructions per cycle; 0 when hardware counts are absent.
  [[nodiscard]] double ipc() const noexcept {
    return cycles > 0 ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
  }
  /// cache-misses / cache-references; 0 when absent.
  [[nodiscard]] double cache_miss_rate() const noexcept {
    return cache_references > 0 ? static_cast<double>(cache_misses) /
                                      static_cast<double>(cache_references)
                                : 0.0;
  }
};

struct PerfCounterOptions {
  /// Skip opening anything and report "disabled by caller": the --counters
  /// off path, and the test hook for forcing graceful degradation.
  bool force_disable = false;
};

/// A per-thread counting session over perf_event_open. Construction opens
/// the file descriptors once (hardware group + software task-clock);
/// start()/stop() pairs then reset+enable / disable+read them, so a
/// session can bracket many measured regions. Not thread-safe; counts the
/// constructing thread only.
class PerfCounterSession {
 public:
  explicit PerfCounterSession(const PerfCounterOptions& options = {});
  ~PerfCounterSession();
  PerfCounterSession(const PerfCounterSession&) = delete;
  PerfCounterSession& operator=(const PerfCounterSession&) = delete;

  /// True when the hardware group opened (cycles/instructions/cache/branch
  /// counts will be real). The software task-clock may be available even
  /// when this is false (software() below).
  [[nodiscard]] bool available() const noexcept { return group_fd_ >= 0; }
  /// True when the software task-clock opened.
  [[nodiscard]] bool software() const noexcept { return clock_fd_ >= 0; }
  /// "ok", or the reason hardware counters are unavailable — e.g.
  /// "perf_event_open: EACCES (perf_event_paranoid=3; need <= 2)" or
  /// "perf_event_open: ENOENT (no hardware PMU — VM or container?)".
  [[nodiscard]] const std::string& status() const noexcept { return status_; }

  /// Zeroes and enables every open counter. No-op when nothing opened.
  void start() noexcept;
  /// Disables and reads every open counter. Safe (all-zero, hardware =
  /// software = false) when nothing opened or start() was never called.
  PerfCounts stop() noexcept;

  /// /proc/sys/kernel/perf_event_paranoid, or -1000 when unreadable
  /// (non-Linux, masked /proc). Levels: 2 = own-process user-space
  /// counting allowed (enough for this session), 3+ = unprivileged
  /// perf_event_open refused entirely.
  [[nodiscard]] static int paranoid_level() noexcept;

  /// Cheap process-wide probe: opens and closes a throwaway session once,
  /// caching the verdict. `reason` (when non-null) receives status() of
  /// the probe. Use for CLI diagnostics (--counters require).
  [[nodiscard]] static bool probe(std::string* reason = nullptr);

 private:
  void open_counters();
  void close_counters() noexcept;

  int group_fd_ = -1;  ///< leader (cycles); siblings read through it
  int clock_fd_ = -1;  ///< software task-clock, its own fd (never muxed)
  std::array<int, 4> sibling_fds_{{-1, -1, -1, -1}};
  std::string status_ = "not opened";
};

namespace work {

/// Domain work units. Kept deliberately small and stable: these names are
/// part of the gw.bench.v3 schema (`work` block) and the per-unit compare
/// metrics in gw-benchstat.
enum class Kind : std::uint8_t {
  kUsersEvaluated = 0,  ///< per-user congestion values requested
  kJacobianCells,       ///< jacobian + second-partials matrix cells filled
  kBestResponseCalls,   ///< scalar best-response maximizations
  kGsSweeps,            ///< best-response dynamics sweeps (solve_nash)
  kEventsProcessed,     ///< DES events fired (sim::Simulator)
  kUpdatesApplied,      ///< control-plane rate updates applied
};
inline constexpr std::size_t kKindCount = 6;

/// Schema name of a kind ("users_evaluated", ...).
[[nodiscard]] const char* kind_name(Kind kind) noexcept;

/// Totals summed across every thread that ever recorded.
struct Totals {
  std::array<std::uint64_t, kKindCount> counts{};
  [[nodiscard]] std::uint64_t operator[](Kind kind) const noexcept {
    return counts[static_cast<std::size_t>(kind)];
  }
};

namespace detail {

/// One cache line per recording thread so armed adds never false-share.
struct alignas(64) Block {
  std::array<std::atomic<std::uint64_t>, kKindCount> counts{};
};

inline std::atomic<bool> g_armed{false};
extern thread_local Block* t_block;

/// Registers (or re-finds) the calling thread's block; never returns null.
[[nodiscard]] Block* register_thread();

}  // namespace detail

/// True while the meter is collecting.
[[nodiscard]] inline bool armed() noexcept {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// Arms / disarms the meter process-wide. Existing counts are kept;
/// callers reset() when they want a fresh window.
void set_armed(bool armed) noexcept;

/// Records `n` units of `kind` against the calling thread. Disarmed: one
/// relaxed load + predicted branch, no other work. The atomics are
/// single-writer (the owning thread); relaxed load/store keeps the armed
/// path at plain-store cost while collect() stays race-free.
inline void add(Kind kind, std::uint64_t n) noexcept {
  if (!detail::g_armed.load(std::memory_order_relaxed)) return;
  detail::Block* block = detail::t_block;
  if (block == nullptr) block = detail::register_thread();
  auto& cell = block->counts[static_cast<std::size_t>(kind)];
  cell.store(cell.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

/// Sums every thread's block (quiescent: no concurrent add()).
[[nodiscard]] Totals collect();

/// Zeroes every thread's block, keeping registrations (quiescent).
void reset();

/// Threads that have registered a block so far (test/diagnostic hook).
[[nodiscard]] std::size_t registered_threads();

}  // namespace work

class Registry;

/// Writes collect() into `registry` as counters "work.<kind_name>" by
/// increment (call once per measurement window, after a registry reset).
void publish_work_totals(Registry& registry);

}  // namespace gw::obs
