// E-COAL — footnote 14: resilience against coalitional manipulation.
//
// At each discipline's Nash point, search for joint deviations by every
// pair and by the grand coalition that make all members strictly better
// off. FS equilibria resist; FIFO's collapse to a joint retreat.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/coalition.hpp"
#include "core/fair_share.hpp"
#include "core/mixture.hpp"
#include "core/nash.hpp"
#include "core/proportional.hpp"

static int run() {
  using namespace gw;
  using core::make_linear;
  bench::banner(
      "E-COAL coalition", "Footnote 14 (Moulin-Shenker [23], p. 1025)",
      "Fair Share Nash equilibria are resilient against coalitions acting "
      "in concert; FIFO's Nash points are destroyed even by the users' "
      "own grand coalition (a joint retreat helps every member).");

  struct Case {
    const char* label;
    std::shared_ptr<const core::AllocationFunction> alloc;
  };
  const std::vector<Case> cases{
      {"FairShare", std::make_shared<core::FairShareAllocation>()},
      {"FIFO", std::make_shared<core::ProportionalAllocation>()},
      {"Mixture(0.5)", std::make_shared<core::MixtureAllocation>(0.5)},
  };
  const core::UtilityProfile profile{make_linear(1.0, 0.2),
                                     make_linear(1.0, 0.35),
                                     make_linear(1.0, 0.5)};
  const std::vector<std::vector<std::size_t>> coalitions{
      {0, 1}, {0, 2}, {1, 2}, {0, 1, 2}};

  std::printf("\nBest uniform coalition gain over joint deviations at each "
              "discipline's Nash point:\n\n");
  bench::table_header({"discipline", "coalition", "best gain", "profitable"});
  bool fs_resilient = true;
  bool fifo_falls = false;
  for (const auto& test_case : cases) {
    const auto nash =
        core::solve_nash(*test_case.alloc, profile, {0.1, 0.1, 0.1});
    for (const auto& coalition : coalitions) {
      const auto result = core::find_coalition_deviation(
          *test_case.alloc, profile, nash.rates, coalition);
      std::string members = "{";
      for (std::size_t k = 0; k < coalition.size(); ++k) {
        members += std::to_string(coalition[k] + 1) +
                   (k + 1 < coalition.size() ? "," : "");
      }
      members += "}";
      bench::table_row({test_case.label, members,
                        bench::fmt(result.best_min_gain, 6),
                        result.profitable ? "YES" : "no"});
      if (std::string(test_case.label) == "FairShare" && result.profitable) {
        fs_resilient = false;
      }
      if (std::string(test_case.label) == "FIFO" && result.profitable) {
        fifo_falls = true;
      }
    }
  }
  bench::verdict(fs_resilient,
                 "FS Nash resists every coalition tried (footnote 14)");
  bench::verdict(fifo_falls, "FIFO Nash is coalitionally manipulable");
  return bench::failures();
}

GW_BENCH_MAIN(run)
