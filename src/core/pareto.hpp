// Pareto optimality machinery (paper Section 4.1.1).
//
// An interior allocation is Pareto optimal only if the first-derivative
// condition M_i(r_i, c_i) = Z_i = -g'(sum r) holds for every user; for a
// definitive verdict on candidate points we also run a direct search for a
// feasible allocation that makes every user strictly better off.
#pragma once

#include <vector>

#include "core/allocation.hpp"
#include "core/utility.hpp"

namespace gw::core {

/// Z_i(r) = -g'(sum_j r_j), the feasibility-surface marginal tradeoff
/// (identical for all users under the M/M/1 constraint).
[[nodiscard]] double pareto_z(const std::vector<double>& rates);

/// Residuals M_i - Z_i (zero at an interior Pareto optimum). NaN where the
/// congestion is infinite.
[[nodiscard]] std::vector<double> pareto_fdc_residuals(
    const UtilityProfile& profile, const std::vector<double>& rates,
    const std::vector<double>& queues);

/// The symmetric Pareto point for N identical users with utility u:
/// argmax_r U(r, g(N r) / N). Returns the per-user rate.
[[nodiscard]] double symmetric_pareto_rate(const Utility& u, std::size_t n,
                                           double r_max_total = 0.9999);

struct DominationOptions {
  int restarts = 8;
  unsigned seed = 2024;
  int max_evaluations = 40000;
  /// Required uniform utility gain for declaring domination; guards
  /// against numerical noise.
  double min_gain = 1e-7;
};

struct DominationResult {
  bool dominated = false;      ///< a strictly better allocation was found
  double best_min_gain = 0.0;  ///< max-min utility improvement achieved
  std::vector<double> rates;   ///< the dominating allocation (if found)
  std::vector<double> queues;
};

/// Searches (Nelder–Mead over rates and queue weights, feasibility
/// enforced exactly for the aggregate constraint and by penalty for the
/// subsidiary ones) for a feasible allocation in which EVERY user is
/// better off than at (base_rates, base_queues). Finding one proves the
/// base allocation is not Pareto optimal.
[[nodiscard]] DominationResult find_dominating_allocation(
    const UtilityProfile& profile, const std::vector<double>& base_rates,
    const std::vector<double>& base_queues,
    const DominationOptions& options = {});

}  // namespace gw::core
