// Networks of switches (paper Section 5.4): a 3-hop path with cross
// traffic at every hop, using the Poisson-composition approximation
// c_i = sum over the route of per-switch congestion.
#include <cstdio>
#include <memory>

#include "core/fair_share.hpp"
#include "core/nash.hpp"
#include "core/proportional.hpp"
#include "net/network.hpp"

int main() {
  using namespace gw;
  using core::make_linear;

  // Switch 0 --- Switch 1 --- Switch 2
  // user 1 crosses all three; users 2..4 are single-hop cross traffic.
  const std::vector<std::pair<std::size_t, std::size_t>> spans{
      {0, 2}, {0, 0}, {1, 1}, {2, 2}};
  const core::UtilityProfile profile(4, make_linear(1.0, 0.25));

  for (const auto& discipline :
       {std::static_pointer_cast<const core::AllocationFunction>(
            std::make_shared<core::FairShareAllocation>()),
        std::static_pointer_cast<const core::AllocationFunction>(
            std::make_shared<core::ProportionalAllocation>())}) {
    const auto network = net::make_tandem(discipline, 3, spans);
    const auto nash = core::solve_nash(*network, profile,
                                       std::vector<double>(4, 0.08));
    const auto queues = network->congestion(nash.rates);

    std::printf("\n=== tandem of 3 x %s ===\n", discipline->name().c_str());
    std::printf("%-6s %-6s %-10s %-12s %-10s\n", "user", "hops", "rate",
                "congestion", "utility");
    for (std::size_t u = 0; u < 4; ++u) {
      std::printf("%-6zu %-6s %-10.4f %-12.4f %-10.5f\n", u + 1,
                  u == 0 ? "3" : "1", nash.rates[u], queues[u],
                  profile[u]->value(nash.rates[u], queues[u]));
    }
  }

  std::printf(
      "\nThe 3-hop user pays congestion at every switch, so it settles at "
      "a lower selfish rate; Fair Share keeps each hop efficient, so the "
      "whole path stays usable.\n");
  return 0;
}
