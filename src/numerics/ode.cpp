#include "numerics/ode.hpp"

#include <cmath>
#include <stdexcept>

namespace gw::numerics {

OdeResult rk4_integrate(
    const OdeField& field, std::vector<double> y0, double t0, double t1,
    const OdeOptions& options,
    const std::function<void(std::vector<double>&)>& project) {
  if (!(t1 > t0) || options.dt <= 0.0) {
    throw std::invalid_argument("rk4_integrate: bad time range or step");
  }
  const std::size_t n = y0.size();
  OdeResult result;
  result.times.push_back(t0);
  result.states.push_back(y0);

  auto axpy = [n](const std::vector<double>& y, double a,
                  const std::vector<double>& k) {
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = y[i] + a * k[i];
    return out;
  };

  std::vector<double> y = std::move(y0);
  double t = t0;
  int step = 0;
  while (t < t1 - 1e-15) {
    const double h = std::min(options.dt, t1 - t);
    const auto k1 = field(t, y);
    const auto k2 = field(t + 0.5 * h, axpy(y, 0.5 * h, k1));
    const auto k3 = field(t + 0.5 * h, axpy(y, 0.5 * h, k2));
    const auto k4 = field(t + h, axpy(y, h, k3));
    for (std::size_t i = 0; i < n; ++i) {
      y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
    if (project) project(y);
    t += h;
    ++step;
    if (step % std::max(options.record_stride, 1) == 0) {
      result.times.push_back(t);
      result.states.push_back(y);
    }
    if (options.field_tolerance > 0.0) {
      double magnitude = 0.0;
      for (const double v : field(t, y)) {
        magnitude = std::max(magnitude, std::abs(v));
      }
      if (magnitude <= options.field_tolerance) {
        result.reached_equilibrium = true;
        break;
      }
    }
  }
  if (result.times.back() != t) {
    result.times.push_back(t);
    result.states.push_back(y);
  }
  return result;
}

}  // namespace gw::numerics
