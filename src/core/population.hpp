// Compressed (rate, weight, count) user-class populations.
//
// Every solver used to carry O(N) state per distinct user, which caps the
// equilibrium analysis at thousands of users. A million users in k << N
// *rate classes* is tractable when the evaluation stack speaks classes
// natively (the ValCount / SingleLinkMaxMinFairnessDistProblem idiom):
// a ClassedPopulation holds k classes, each a (rate, weight, count)
// triple, and stands for the expanded population in which class 0's
// members come first, then class 1's, and so on.
//
// Deterministic tie-breaking contract: the class index plays the user
// index's role everywhere the expanded code breaks rate ties by index.
// Because expansion lays classes out contiguously in class order, the
// expanded (key, user-index) sort groups each class's members into one
// contiguous block, and blocks of tied classes appear in class-index
// order — so a classed evaluation that sorts classes by (key, class
// index) sees exactly the structure the expanded evaluation would.
// Within a class, the *representative* member is the LAST expanded
// member (largest user index): for tie-insensitive disciplines (the
// serial family, proportional) every member shares the representative's
// congestion, while for tie-sensitive ones (smallest-rate-first) the
// classed closed forms are defined to report the representative's values
// (see DESIGN.md, "expand/compress equivalence contract").
//
// Round trips (tested):
//   expand(compress(r))            == sorted(r)          (ascending)
//   compress(expand(p)).classes()  == p.canonical().classes()
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gw::core {

/// One user class: `count` users, each sending `rate` with `weight`.
struct RateClass {
  double rate = 0.0;
  double weight = 1.0;
  std::size_t count = 1;

  friend bool operator==(const RateClass&, const RateClass&) = default;
};

class ClassedPopulation {
 public:
  ClassedPopulation() = default;

  /// Adopts `classes` in the given index order (the order is part of the
  /// tie-breaking contract above, so it is preserved verbatim). Validates
  /// every class: rate >= 0 and not NaN, weight > 0 and finite, count >= 1.
  /// Throws std::invalid_argument on violation or when `classes` is empty.
  [[nodiscard]] static ClassedPopulation from_classes(
      std::vector<RateClass> classes);

  /// Compresses an expanded rate vector (all weights 1): sorts ascending
  /// and merges runs of equal rates into counted classes. The result is
  /// canonical (sorted, no two classes equal in (rate, weight)).
  [[nodiscard]] static ClassedPopulation compress(
      std::span<const double> rates);

  /// Weighted compression: merges users equal in (rate, weight), classes
  /// sorted lexicographically by (rate, weight).
  [[nodiscard]] static ClassedPopulation compress(
      std::span<const double> rates, std::span<const double> weights);

  [[nodiscard]] std::size_t k() const noexcept { return classes_.size(); }
  [[nodiscard]] std::size_t total_users() const noexcept { return total_; }
  [[nodiscard]] const std::vector<RateClass>& classes() const noexcept {
    return classes_;
  }
  [[nodiscard]] const RateClass& operator[](std::size_t a) const {
    return classes_[a];
  }

  /// Rewrites class a's rate (solvers mutate rates in place; sortedness is
  /// a property of the canonical form, not an invariant). Same validation
  /// as from_classes.
  void set_rate(std::size_t a, double rate);

  /// Rewrites class a's population count (count >= 1). O(1); total_users()
  /// is maintained incrementally.
  void set_count(std::size_t a, std::size_t count);

  /// Expanded per-user rates, class 0's members first. `rates` must have
  /// size total_users().
  void expand_into(std::span<double> rates) const;

  /// Expanded per-user weights in the same layout.
  void expand_weights_into(std::span<double> weights) const;

  /// Allocating convenience wrapper around expand_into.
  [[nodiscard]] std::vector<double> expand() const;

  /// First expanded user index of class a: sum of counts of classes before
  /// it. The representative member's index is base(a) + count_a - 1.
  [[nodiscard]] std::size_t base(std::size_t a) const;

  /// Canonical form: classes sorted by (rate, weight, original index) with
  /// equal (rate, weight) neighbors merged. compress(expand(*this)) for
  /// unit weights, but O(k log k) and weight-preserving.
  [[nodiscard]] ClassedPopulation canonical() const;

 private:
  std::vector<RateClass> classes_;
  std::size_t total_ = 0;
};

}  // namespace gw::core
