#include "sim/runner.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "sim/drr_station.hpp"
#include "sim/fair_share_station.hpp"
#include "sim/sfq_station.hpp"
#include "sim/sources.hpp"

namespace gw::sim {

namespace {

/// Adapter that stamps a fixed per-user priority before forwarding to a
/// preemptive priority core (used for the rate-ordered HOL discipline).
class ClassifierStation final : public Station {
 public:
  ClassifierStation(Simulator& sim, QueueTracker& tracker,
                    std::vector<int> user_priority)
      : Station(sim, tracker),
        priority_(sim, tracker, user_priority.size()),
        user_priority_(std::move(user_priority)) {}

  [[nodiscard]] std::string name() const override { return "RatePriority"; }

  void arrive(Packet packet) override {
    packet.priority = user_priority_.at(packet.user);
    priority_.arrive(std::move(packet));
  }

 private:
  PreemptivePriorityStation priority_;
  std::vector<int> user_priority_;
};

std::unique_ptr<Station> make_station(Discipline discipline, Simulator& sim,
                                      QueueTracker& tracker,
                                      const std::vector<double>& rates,
                                      const RunOptions& options) {
  switch (discipline) {
    case Discipline::kFifo:
      return std::make_unique<FifoStation>(sim, tracker);
    case Discipline::kLifoPreempt:
      return std::make_unique<LifoPreemptStation>(sim, tracker);
    case Discipline::kProcessorSharing:
      return std::make_unique<PsStation>(sim, tracker);
    case Discipline::kFairShareOracle:
      return std::make_unique<FairShareStation>(sim, tracker, rates,
                                                options.seed ^ 0xf5f5f5f5ULL);
    case Discipline::kFairShareAdaptive:
      return std::make_unique<FairShareStation>(
          sim, tracker, rates.size(), options.estimator_tau,
          options.rebuild_interval, options.seed ^ 0xadaadaadULL);
    case Discipline::kDrr:
      return std::make_unique<DrrStation>(sim, tracker, rates.size(),
                                          options.drr_quantum);
    case Discipline::kSfq:
      return std::make_unique<SfqStation>(sim, tracker, rates.size());
    case Discipline::kRatePriority: {
      // Smaller rate -> higher priority (lower level index).
      std::vector<std::size_t> order(rates.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (rates[a] != rates[b]) return rates[a] < rates[b];
        return a < b;
      });
      std::vector<int> priority(rates.size());
      for (std::size_t k = 0; k < order.size(); ++k) {
        priority[order[k]] = static_cast<int>(k);
      }
      return std::make_unique<ClassifierStation>(sim, tracker,
                                                 std::move(priority));
    }
  }
  throw std::invalid_argument("make_station: unknown discipline");
}

}  // namespace

const char* discipline_name(Discipline d) noexcept {
  switch (d) {
    case Discipline::kFifo: return "FIFO";
    case Discipline::kLifoPreempt: return "LIFO-PR";
    case Discipline::kProcessorSharing: return "PS";
    case Discipline::kFairShareOracle: return "FS(oracle)";
    case Discipline::kFairShareAdaptive: return "FS(adaptive)";
    case Discipline::kDrr: return "DRR-FQ";
    case Discipline::kSfq: return "SFQ";
    case Discipline::kRatePriority: return "RatePrio";
  }
  return "?";
}

RunResult run_custom(const StationFactory& factory,
                     const std::vector<double>& rates,
                     const RunOptions& options) {
  if (rates.empty()) throw std::invalid_argument("run_custom: no users");
  Simulator sim;
  QueueTracker tracker(rates.size());
  if (options.delay_histograms) {
    tracker.enable_delay_histograms(options.delay_histogram_max);
  }
  const auto station = factory(sim, tracker);

  std::vector<std::unique_ptr<PoissonSource>> sources;
  sources.reserve(rates.size());
  numerics::Rng seeder(options.seed);
  ServiceSpec service = options.service;
  if (service.kind == ServiceKind::kExponential && service.mean == 1.0 &&
      options.mu != 1.0) {
    service = ServiceSpec::exponential(1.0 / options.mu);
  }
  for (std::size_t u = 0; u < rates.size(); ++u) {
    sources.push_back(std::make_unique<PoissonSource>(
        sim, *station, u, rates[u], service, seeder.next_u64()));
  }

  sim.run_for(options.warmup);
  tracker.reset(sim.now());
  tracker.close_batch(sim.now());  // open the first batch

  std::vector<std::vector<double>> batch_queues(rates.size());
  for (int b = 0; b < options.batches; ++b) {
    sim.run_for(options.batch_length);
    const auto averages = tracker.close_batch(sim.now());
    for (std::size_t u = 0; u < rates.size(); ++u) {
      batch_queues[u].push_back(averages[u]);
    }
  }

  RunResult result;
  result.measured_time = options.batches * options.batch_length;
  result.events = sim.processed_events();
  result.users.resize(rates.size());
  for (std::size_t u = 0; u < rates.size(); ++u) {
    auto& stats = result.users[u];
    stats.queue_ci = numerics::batch_means_ci(batch_queues[u]);
    stats.mean_queue = stats.queue_ci.mean;
    stats.mean_delay = tracker.mean_delay(u);
    stats.throughput = static_cast<double>(tracker.departures(u)) /
                       result.measured_time;
    if (options.delay_histograms) {
      stats.delay_p50 = tracker.delay_quantile(u, 0.50);
      stats.delay_p95 = tracker.delay_quantile(u, 0.95);
      stats.delay_p99 = tracker.delay_quantile(u, 0.99);
    }
  }
  return result;
}

RunResult run_switch(Discipline discipline, const std::vector<double>& rates,
                     const RunOptions& options) {
  return run_custom(
      [&](Simulator& sim, QueueTracker& tracker) {
        return make_station(discipline, sim, tracker, rates, options);
      },
      rates, options);
}

}  // namespace gw::sim
