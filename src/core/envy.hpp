// Envy-freeness (paper Section 4.1.2, Theorem 3).
//
// User i envies user j when she prefers j's allocation to her own under
// her OWN utility: U_i(r_j, c_j) > U_i(r_i, c_i). An allocation function is
// *unilaterally envy-free* when a user who has best-responded envies no
// one, regardless of what the others are doing.
#pragma once

#include <cstddef>
#include <vector>

#include "core/allocation.hpp"
#include "core/nash.hpp"
#include "core/utility.hpp"
#include "numerics/matrix.hpp"

namespace gw::core {

/// envy(i, j) = U_i(r_j, c_j) - U_i(r_i, c_i); positive entries are envy.
/// Entries comparing against an infinite-congestion allocation are -inf
/// (no one envies a saturated user) or computed normally if only i's own
/// allocation saturates.
[[nodiscard]] numerics::Matrix envy_matrix(const UtilityProfile& profile,
                                           const std::vector<double>& rates,
                                           const std::vector<double>& queues);

/// Largest positive entry of the envy matrix (0 if envy-free).
[[nodiscard]] double max_envy(const UtilityProfile& profile,
                              const std::vector<double>& rates,
                              const std::vector<double>& queues);

struct UnilateralEnvyResult {
  double best_response_rate = 0.0;
  double max_envy = 0.0;       ///< envy of user i after best-responding
  std::size_t envied = 0;      ///< most-envied user (valid if max_envy > 0)
};

/// Sets user i to her best response against fixed opponents, then measures
/// her envy toward every other user. Fair Share guarantees this is <= 0
/// for every i and every opponents' profile (Theorem 3).
[[nodiscard]] UnilateralEnvyResult unilateral_envy(
    const AllocationFunction& alloc, const UtilityProfile& profile,
    std::vector<double> rates, std::size_t i,
    const BestResponseOptions& options = {});

}  // namespace gw::core
