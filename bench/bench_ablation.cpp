// E-ABL — ablations of the library's own design choices (DESIGN.md §5):
//   (a) best-response scan resolution vs Nash accuracy and cost;
//   (b) adaptive Fair Share rate-estimator memory (tau) vs allocation
//       fidelity — the oracle-free switch's key knob;
//   (c) DRR quantum vs light-user delay protection;
//   (d) simulation batch length vs confidence-interval honesty.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/closed_forms.hpp"
#include "core/fair_share.hpp"
#include "core/nash.hpp"
#include "sim/runner.hpp"

static int run() {
  using namespace gw;
  using core::make_linear;
  bench::banner(
      "E-ABL ablation", "DESIGN.md section 5",
      "Sensitivity of the reproduction to its own implementation knobs: "
      "solver resolution, adaptive-switch estimator memory, DRR quantum, "
      "and measurement batch length.");

  // (a) best-response scan resolution.
  std::printf("\n(a) Best-response scan points vs Nash accuracy (FS, 3 "
              "identical users, closed-form target):\n\n");
  bench::table_header({"scan pts", "max |r-r*|", "sweeps"});
  const core::FairShareAllocation fs;
  const auto profile = core::uniform_profile(make_linear(1.0, 0.25), 3);
  const double target = core::fs_linear_symmetric_nash(0.25, 3).rate;
  bool all_accurate = true;
  for (const int scan : {11, 41, 201, 801}) {
    core::NashOptions options;
    options.best_response.scan_points = scan;
    const auto nash = core::solve_nash(fs, profile, {0.1, 0.1, 0.1}, options);
    double error = 0.0;
    for (const double r : nash.rates) {
      error = std::max(error, std::abs(r - target));
    }
    bench::table_row({std::to_string(scan), bench::fmt(error, 9),
                      std::to_string(nash.iterations)});
    if (error > 1e-4) all_accurate = false;
  }
  bench::verdict(all_accurate,
                 "even coarse scans hit the closed-form Nash point (Brent "
                 "refinement pins the optimum; resolution only guards "
                 "against multimodality)");

  // (b) adaptive FS estimator memory.
  std::printf("\n(b) Adaptive FS estimator tau vs fidelity to the analytic "
              "allocation (rates 0.15/0.35):\n\n");
  bench::table_header({"tau", "rel.err u1", "rel.err u2"});
  const std::vector<double> rates{0.15, 0.35};
  const auto analytic = fs.congestion(rates);
  double best_gap = 1e9, worst_gap = 0.0;
  for (const double tau : {20.0, 100.0, 500.0, 2000.0}) {
    sim::RunOptions options;
    options.warmup = 6000.0;
    options.batches = 12;
    options.batch_length = 6000.0;
    options.seed = 1212;
    options.estimator_tau = tau;
    const auto run =
        sim::run_switch(sim::Discipline::kFairShareAdaptive, rates, options);
    double gap = 0.0;
    std::vector<std::string> row{bench::fmt(tau, 0)};
    for (std::size_t u = 0; u < 2; ++u) {
      const double rel = run.users[u].mean_queue / analytic[u] - 1.0;
      gap = std::max(gap, std::abs(rel));
      row.push_back(bench::fmt(rel * 100.0, 2) + "%");
    }
    bench::table_row(row);
    best_gap = std::min(best_gap, gap);
    worst_gap = std::max(worst_gap, gap);
  }
  bench::verdict(best_gap < 0.10,
                 "some estimator memory reproduces the oracle allocation "
                 "within 10%");

  // (c) DRR quantum.
  std::printf("\n(c) DRR quantum vs telnet delay beside a flooder "
              "(rates 0.05 / 1.3):\n\n");
  bench::table_header({"quantum", "telnet delay", "flooder tput"});
  bool flooder_capped = true;
  double worst_telnet_delay = 0.0;
  for (const double quantum : {0.25, 1.0, 4.0, 16.0}) {
    sim::RunOptions options;
    options.warmup = 4000.0;
    options.batches = 8;
    options.batch_length = 4000.0;
    options.seed = 77;
    options.drr_quantum = quantum;
    const auto run =
        sim::run_switch(sim::Discipline::kDrr, {0.05, 1.3}, options);
    bench::table_row({bench::fmt(quantum, 2),
                      bench::fmt(run.users[0].mean_delay, 3),
                      bench::fmt(run.users[1].throughput, 3)});
    // The flooder can only ever consume the leftover capacity...
    if (run.users[1].throughput > 1.0 - 0.05 + 0.02) flooder_capped = false;
    // ...and the telnet user's delay stays near the private-server value.
    worst_telnet_delay = std::max(worst_telnet_delay,
                                  run.users[0].mean_delay);
  }
  bench::verdict(flooder_capped && worst_telnet_delay < 5.0,
                 "DRR protection is insensitive to the quantum: flooder "
                 "capped at leftover capacity, telnet delay bounded");

  // (d) batch length vs CI honesty: at short batches, batch means are
  // correlated and CIs undercover; long batches restore honesty.
  std::printf("\n(d) Batch length vs CI coverage of the analytic M/M/1 "
              "value (rho = 0.5, 30 replications each):\n\n");
  bench::table_header({"batch len", "coverage", "mean halfwidth"});
  bool long_batches_cover = false;
  for (const double batch : {100.0, 1000.0, 8000.0}) {
    int covered = 0;
    double halfwidth_sum = 0.0;
    const int replications = 30;
    for (int rep = 0; rep < replications; ++rep) {
      sim::RunOptions options;
      options.warmup = 1000.0;
      options.batches = 12;
      options.batch_length = batch;
      options.seed = 9000 + rep;
      const auto run = sim::run_switch(sim::Discipline::kFifo, {0.5}, options);
      if (run.users[0].queue_ci.contains(1.0)) ++covered;
      halfwidth_sum += run.users[0].queue_ci.half_width;
    }
    const double coverage = static_cast<double>(covered) / replications;
    bench::table_row({bench::fmt(batch, 0), bench::fmt(coverage, 2),
                      bench::fmt(halfwidth_sum / replications, 4)});
    if (batch >= 8000.0 && coverage >= 0.8) long_batches_cover = true;
  }
  bench::verdict(long_batches_cover,
                 "long batches restore nominal-ish CI coverage");
  return bench::failures();
}

GW_BENCH_MAIN(run)
