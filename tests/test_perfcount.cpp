// PerfCounterSession / WorkMeter: graceful degradation when counters are
// unavailable, bit-identical work totals across thread counts, registry
// publication, and the disarmed fast path's zero-allocation guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/perfcount.hpp"

// ---- counting allocator harness ----------------------------------------
//
// Replacing the global operator new routes every heap allocation in the
// test binary through this counter, so the disarmed-path test can assert
// an exact zero-allocation delta (same harness bench_micro uses for its
// E-EVAL verdicts). The relaxed increment is noise next to malloc.
namespace gw_testalloc {
std::atomic<std::uint64_t> g_heap_allocs{0};
std::uint64_t heap_allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}
}  // namespace gw_testalloc

// GCC pairs the malloc in the replaced operator new with the free in the
// replaced operator delete and flags the (correct) combination when both
// inline into the same frame; the pairing is intentional here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  gw_testalloc::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  gw_testalloc::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using gw::obs::PerfCounterOptions;
using gw::obs::PerfCounterSession;
using gw::obs::PerfCounts;
namespace work = gw::obs::work;

/// Restores the meter to disarmed + zeroed no matter how a test exits.
struct MeterGuard {
  MeterGuard() {
    work::set_armed(false);
    work::reset();
  }
  ~MeterGuard() {
    work::set_armed(false);
    work::reset();
  }
};

TEST(PerfCount, ForcedDisableDegradesGracefully) {
  PerfCounterSession session(PerfCounterOptions{.force_disable = true});
  EXPECT_FALSE(session.available());
  EXPECT_FALSE(session.software());
  EXPECT_EQ(session.status(), "disabled by caller");

  // The start/stop bracket must stay safe and report all-zero samples: the
  // contract every caller relies on when counters are unavailable.
  session.start();
  const PerfCounts counts = session.stop();
  EXPECT_FALSE(counts.hardware);
  EXPECT_FALSE(counts.software);
  EXPECT_EQ(counts.cycles, 0u);
  EXPECT_EQ(counts.instructions, 0u);
  EXPECT_EQ(counts.task_clock_ns, 0u);
  EXPECT_DOUBLE_EQ(counts.ipc(), 0.0);
  EXPECT_DOUBLE_EQ(counts.cache_miss_rate(), 0.0);
}

TEST(PerfCount, HostSessionEitherCountsOrExplains) {
  // Whatever this host supports, construction must not throw and the
  // sample must be self-consistent. On unprivileged or PMU-less runners
  // available() is false and status() carries the diagnostic.
  PerfCounterSession session;
  session.start();
  // A little on-CPU work so nonzero counts have something to measure.
  double sink = 0.0;
  for (int i = 1; i < 50000; ++i) sink += 1.0 / i;
  const PerfCounts counts = session.stop();
  ASSERT_GT(sink, 0.0);

  EXPECT_EQ(counts.hardware, session.available());
  EXPECT_EQ(counts.software, session.software());
  if (session.available()) {
    EXPECT_EQ(session.status(), "ok");
    EXPECT_GT(counts.cycles, 0u);
    EXPECT_GT(counts.instructions, 0u);
    EXPECT_GE(counts.scale, 1.0);
    EXPECT_GE(counts.time_enabled_ns, counts.time_running_ns);
  } else {
    EXPECT_NE(session.status(), "ok");
    EXPECT_FALSE(session.status().empty());
  }
  if (session.software()) {
    EXPECT_GT(counts.task_clock_ns, 0u);
  }
}

TEST(PerfCount, ProbeMatchesSessionAvailability) {
  std::string reason;
  const bool probed = PerfCounterSession::probe(&reason);
  PerfCounterSession session;
  EXPECT_EQ(probed, session.available());
  if (!probed) {
    EXPECT_FALSE(reason.empty());
  }
  // paranoid_level() is a diagnostic, not a gate: just check the sentinel
  // convention (-1000 = unreadable, otherwise a small kernel level).
  const int paranoid = PerfCounterSession::paranoid_level();
  EXPECT_TRUE(paranoid == -1000 || (paranoid >= -1 && paranoid <= 4))
      << "paranoid_level=" << paranoid;
}

TEST(WorkMeter, DisarmedAddsAreDropped) {
  MeterGuard guard;
  EXPECT_FALSE(work::armed());
  work::add(work::Kind::kUsersEvaluated, 7);
  EXPECT_EQ(work::collect()[work::Kind::kUsersEvaluated], 0u);
}

TEST(WorkMeter, ArmedAddsAccumulateAndResetClears) {
  MeterGuard guard;
  work::set_armed(true);
  work::add(work::Kind::kUsersEvaluated, 3);
  work::add(work::Kind::kUsersEvaluated, 4);
  work::add(work::Kind::kJacobianCells, 16);
  work::set_armed(false);

  const work::Totals totals = work::collect();
  EXPECT_EQ(totals[work::Kind::kUsersEvaluated], 7u);
  EXPECT_EQ(totals[work::Kind::kJacobianCells], 16u);
  EXPECT_EQ(totals[work::Kind::kGsSweeps], 0u);

  work::reset();
  const work::Totals cleared = work::collect();
  for (std::size_t k = 0; k < work::kKindCount; ++k) {
    EXPECT_EQ(cleared.counts[k], 0u);
  }
}

TEST(WorkMeter, TotalsBitIdenticalAcrossThreadCounts) {
  MeterGuard guard;
  // The same index-space sum partitioned across 1, 2, 4, and 8 workers
  // must produce the same totals: integer sums are associative and
  // exec::parallel_for's static partition covers [0, n) exactly once.
  constexpr std::size_t kItems = 10000;
  std::vector<std::uint64_t> totals;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    work::reset();
    work::set_armed(true);
    gw::exec::parallel_for(threads, kItems, [](std::size_t i) {
      work::add(work::Kind::kUsersEvaluated, i % 13 + 1);
      if (i % 3 == 0) work::add(work::Kind::kJacobianCells, i % 5);
    });
    work::set_armed(false);
    const work::Totals t = work::collect();
    totals.push_back(t[work::Kind::kUsersEvaluated] * 1000003u +
                     t[work::Kind::kJacobianCells]);
  }
  EXPECT_EQ(totals[0], totals[1]);
  EXPECT_EQ(totals[0], totals[2]);
  EXPECT_EQ(totals[0], totals[3]);

  // And against the closed form, so "identical" can't mean "identically
  // wrong": sum of (i % 13 + 1) over [0, 10000).
  std::uint64_t expected_users = 0;
  for (std::size_t i = 0; i < kItems; ++i) expected_users += i % 13 + 1;
  EXPECT_EQ(totals[0] / 1000003u, expected_users);
}

TEST(WorkMeter, ThreadsRegisterOnceAndSurviveExit) {
  MeterGuard guard;
  work::set_armed(true);
  const std::size_t before = work::registered_threads();
  std::thread t([] { work::add(work::Kind::kEventsProcessed, 42); });
  t.join();
  work::set_armed(false);
  // The exited thread's block is retained (registry never frees), so its
  // counts still appear in collect().
  EXPECT_GE(work::registered_threads(), before);
  EXPECT_EQ(work::collect()[work::Kind::kEventsProcessed], 42u);
}

TEST(WorkMeter, PublishWritesNonZeroKindsToRegistry) {
  MeterGuard guard;
  work::set_armed(true);
  work::add(work::Kind::kUsersEvaluated, 11);
  work::add(work::Kind::kGsSweeps, 2);
  work::set_armed(false);

  gw::obs::Registry registry;
  gw::obs::publish_work_totals(registry);
  EXPECT_EQ(registry.counter("work.users_evaluated").value(), 11u);
  EXPECT_EQ(registry.counter("work.gs_sweeps").value(), 2u);
}

TEST(WorkMeter, DisarmedPathAllocatesNothing) {
  MeterGuard guard;
  // Warm the thread's registration while armed so the disarmed loop below
  // exercises exactly the fast path every library call site pays.
  work::set_armed(true);
  work::add(work::Kind::kUsersEvaluated, 1);
  work::set_armed(false);

  const std::uint64_t before = gw_testalloc::heap_allocs();
  for (int i = 0; i < 100000; ++i) {
    work::add(work::Kind::kUsersEvaluated, 1);
    work::add(work::Kind::kJacobianCells, 9);
  }
  const std::uint64_t allocs = gw_testalloc::heap_allocs() - before;
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(work::collect()[work::Kind::kJacobianCells], 0u);
}

TEST(WorkMeter, ArmedPathAllocatesOnlyOnFirstRegistration) {
  MeterGuard guard;
  work::set_armed(true);
  work::add(work::Kind::kUsersEvaluated, 1);  // registration (may allocate)
  const std::uint64_t before = gw_testalloc::heap_allocs();
  for (int i = 0; i < 100000; ++i) {
    work::add(work::Kind::kUsersEvaluated, 1);
  }
  const std::uint64_t allocs = gw_testalloc::heap_allocs() - before;
  work::set_armed(false);
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(work::collect()[work::Kind::kUsersEvaluated], 100001u);
}

TEST(WorkMeter, KindNamesAreSchemaStable) {
  EXPECT_STREQ(work::kind_name(work::Kind::kUsersEvaluated),
               "users_evaluated");
  EXPECT_STREQ(work::kind_name(work::Kind::kJacobianCells),
               "jacobian_cells");
  EXPECT_STREQ(work::kind_name(work::Kind::kBestResponseCalls),
               "best_response_calls");
  EXPECT_STREQ(work::kind_name(work::Kind::kGsSweeps), "gs_sweeps");
  EXPECT_STREQ(work::kind_name(work::Kind::kEventsProcessed),
               "events_processed");
  EXPECT_STREQ(work::kind_name(work::Kind::kUpdatesApplied),
               "updates_applied");
}

}  // namespace
