// Fixed-step RK4 integration for small ODE systems (the continuous-time
// game dynamics in core/flow.hpp).
#pragma once

#include <functional>
#include <vector>

namespace gw::numerics {

/// dy/dt = f(t, y).
using OdeField =
    std::function<std::vector<double>(double, const std::vector<double>&)>;

struct OdeOptions {
  double dt = 1e-2;
  /// Stop early when ||f|| (max-abs) drops below this (equilibrium).
  double field_tolerance = 0.0;
  /// Record every k-th step in the returned trajectory (1 = all).
  int record_stride = 1;
};

struct OdeResult {
  std::vector<double> times;
  std::vector<std::vector<double>> states;
  bool reached_equilibrium = false;

  [[nodiscard]] const std::vector<double>& final_state() const {
    return states.back();
  }
};

/// Integrates from t0 to t1 with classic RK4. A `project` hook, if given,
/// is applied to the state after every step (e.g. clamping to a feasible
/// box — making this a projected dynamical system).
[[nodiscard]] OdeResult rk4_integrate(
    const OdeField& field, std::vector<double> y0, double t0, double t1,
    const OdeOptions& options = {},
    const std::function<void(std::vector<double>&)>& project = nullptr);

}  // namespace gw::numerics
