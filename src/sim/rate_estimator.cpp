#include "sim/rate_estimator.hpp"

#include <cmath>
#include <stdexcept>

namespace gw::sim {

RateEstimator::RateEstimator(std::size_t n_users, double time_constant)
    : tau_(time_constant), per_user_(n_users) {
  if (n_users == 0 || time_constant <= 0.0) {
    throw std::invalid_argument("RateEstimator: bad arguments");
  }
}

double RateEstimator::decayed(const PerUser& user, double now) const {
  const double dt = now - user.last_event;
  return user.weighted_count * std::exp(-dt / tau_);
}

void RateEstimator::on_arrival(std::size_t user, double now) {
  auto& u = per_user_.at(user);
  // EWMA of a unit impulse train: value decays with time constant tau and
  // gains 1/tau per arrival, so in steady state it equals the rate.
  u.weighted_count = decayed(u, now) + 1.0 / tau_;
  u.last_event = now;
}

std::vector<double> RateEstimator::estimates(double now) const {
  std::vector<double> out(per_user_.size());
  for (std::size_t i = 0; i < per_user_.size(); ++i) {
    out[i] = decayed(per_user_[i], now);
  }
  return out;
}

double RateEstimator::estimate(std::size_t user, double now) const {
  return decayed(per_user_.at(user), now);
}

}  // namespace gw::sim
