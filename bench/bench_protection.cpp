// E-PROT — Theorem 8: out-of-equilibrium protection.
//
// For each discipline: fix user 0's rate, scan adversarial opponent
// profiles (floods, clones, staircases, random), report max congestion
// against the protective bound r / (1 - N r).
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/fair_share.hpp"
#include "core/mixture.hpp"
#include "core/priority_alloc.hpp"
#include "core/proportional.hpp"
#include "core/protection.hpp"

static int run() {
  using namespace gw;
  bench::banner(
      "E-PROT protection", "Theorem 8; Section 4.3",
      "Fair Share is protective: a user at rate r never sees more "
      "congestion than r/(1 - N r), whatever the other users do. FIFO "
      "offers no bound at all (flooders saturate everyone); mixtures "
      "inherit FIFO's vulnerability.");

  struct Case {
    const char* label;
    std::shared_ptr<const core::AllocationFunction> alloc;
  };
  const std::vector<Case> cases{
      {"FairShare", std::make_shared<core::FairShareAllocation>()},
      {"FIFO", std::make_shared<core::ProportionalAllocation>()},
      {"Mixture(0.25)", std::make_shared<core::MixtureAllocation>(0.25)},
      {"SRF-priority", std::make_shared<core::SmallestRateFirstAllocation>()},
  };

  const std::size_t n = 4;
  std::printf("\nAdversarial scan, N = %zu users, user 1 probed:\n\n", n);
  bench::table_header({"discipline", "rate", "bound", "max C_i",
                       "protective"});
  bool fs_ok = true, fifo_violates = false;
  core::ProtectionScanOptions options;
  options.random_samples = 3000;
  for (const auto& test_case : cases) {
    for (const double rate : {0.05, 0.1, 0.2}) {
      const auto scan =
          core::scan_protection(*test_case.alloc, 0, rate, n, options);
      bench::table_row({test_case.label, bench::fmt(rate, 2),
                        bench::fmt(scan.bound), bench::fmt(scan.max_congestion),
                        scan.protective ? "yes" : "NO"});
      if (std::string(test_case.label) == "FairShare" && !scan.protective) {
        fs_ok = false;
      }
      if (std::string(test_case.label) == "FIFO" && !scan.protective) {
        fifo_violates = true;
      }
    }
  }
  bench::verdict(fs_ok, "FS respects the protective bound everywhere scanned");
  bench::verdict(fifo_violates, "FIFO violates the bound (unbounded abuse)");

  // Tightness: the bound is achieved exactly by N clones.
  const core::FairShareAllocation fs;
  const double rate = 0.15;
  const std::vector<double> clones(n, rate);
  const double at_clones = fs.congestion(clones)[0];
  const double bound = core::protective_bound(rate, n);
  std::printf("\n  FS at N clones of r=%.2f: C = %s (bound %s)\n", rate,
              bench::fmt(at_clones).c_str(), bench::fmt(bound).c_str());
  bench::verdict(std::abs(at_clones - bound) < 1e-9,
                 "protective bound is tight (achieved by clones)");
  return bench::failures();
}

GW_BENCH_MAIN(run)
