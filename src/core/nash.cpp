#include "core/nash.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "numerics/optimize.hpp"
#include "numerics/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

namespace gw::core {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

void validate_sizes(const UtilityProfile& profile,
                    const std::vector<double>& rates) {
  if (profile.size() != rates.size() || profile.empty()) {
    throw std::invalid_argument("nash: profile / rate size mismatch");
  }
  for (const auto& u : profile) {
    if (u == nullptr) throw std::invalid_argument("nash: null utility");
  }
}

/// Per-thread solver scratch: rates are validated once at a solver's entry,
/// then every sweep / residual / matrix assembly below runs against these
/// reusable buffers and the workspace without touching the heap.
struct SolverScratch {
  EvalWorkspace ws;
  std::vector<double> rates;       ///< mutable copy for const-rate callers
  std::vector<double> congestion;  ///< C(r) staging
  std::vector<double> responses;   ///< synchronous-sweep best responses
  std::vector<double> diag;        ///< FDC Jacobian diagonal
  std::vector<std::size_t> order;  ///< sweep order
  numerics::Matrix jac;            ///< batched dC_i/dr_j
  numerics::Matrix hess;           ///< batched d2C_i/(dr_i dr_j)
};

SolverScratch& solver_scratch() {
  thread_local SolverScratch scratch;
  return scratch;
}

/// Marginal-rate-of-substitution derivatives of utility i at (r, c):
/// M = u_r / u_c, dM/dr and dM/dc by the quotient rule.
struct MarginalTerms {
  double dm_dr = 0.0;
  double dm_dc = 0.0;
};

MarginalTerms marginal_terms(const Utility& u, double r, double c) {
  const double ur = u.du_dr(r, c);
  const double uc = u.du_dc(r, c);
  const double urr = u.d2u_dr2(r, c);
  const double ucc = u.d2u_dc2(r, c);
  const double urc = u.d2u_drdc(r, c);
  MarginalTerms t;
  t.dm_dr = (urr * uc - ur * urc) / (uc * uc);
  t.dm_dc = (urc * uc - ur * ucc) / (uc * uc);
  return t;
}

/// In-place Fisher–Yates identical to numerics::Rng::permutation (same
/// draw sequence, so kRandomPermutation sweeps are bit-for-bit reproducible)
/// without the per-sweep vector.
void permutation_into(numerics::Rng& rng, std::span<std::size_t> order) {
  const std::size_t n = order.size();
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.uniform_index(i);
    std::swap(order[i - 1], order[j]);
  }
}

}  // namespace

BestResponse best_response(const AllocationFunction& alloc,
                           const Utility& utility, std::span<double> rates,
                           std::size_t i, const BestResponseOptions& options,
                           EvalWorkspace& ws) {
  const double saved = rates[i];
  // Captures are packed behind one pointer so the closure fits
  // std::function's small-buffer storage: the scan loop must stay
  // heap-allocation-free (E-EVAL verdict in bench_micro).
  struct Ctx {
    const AllocationFunction& alloc;
    const Utility& utility;
    std::span<double> rates;
    std::size_t i;
    EvalWorkspace& ws;
  } ctx{alloc, utility, rates, i, ws};
  auto payoff = [&ctx](double x) {
    ctx.rates[ctx.i] = x;
    const double c = ctx.alloc.congestion_of_into(ctx.i, ctx.rates, ctx.ws);
    return ctx.utility.value(x, c);
  };
  numerics::Optimize1DOptions opt;
  opt.scan_points = options.scan_points;
  const auto found =
      numerics::maximize_scan(payoff, options.r_min, options.r_max, opt);
  rates[i] = saved;
  return {found.x, found.value};
}

BestResponse best_response(const AllocationFunction& alloc,
                           const Utility& utility, std::vector<double> rates,
                           std::size_t i, const BestResponseOptions& options) {
  if (i >= rates.size()) throw std::invalid_argument("best_response: bad index");
  AllocationFunction::validate_rates(rates);
  return best_response(alloc, utility, std::span<double>(rates), i, options,
                       solver_scratch().ws);
}

NashResult solve_nash(const AllocationFunction& alloc,
                      const UtilityProfile& profile, std::vector<double> start,
                      const NashOptions& options) {
  validate_sizes(profile, start);
  AllocationFunction::validate_rates(start);
  auto& registry = obs::default_registry();
  static auto& solve_seconds =
      registry.histogram("core.nash.solve_seconds", 0.0, 2.0, 128);
  const obs::ScopedTimer timer(solve_seconds);
  const std::size_t n = start.size();
  numerics::Rng rng(options.seed);
  NashResult result;
  result.rates = std::move(start);

  auto& scratch = solver_scratch();
  scratch.responses.resize(n);
  scratch.order.resize(n);
  const std::span<double> rates(result.rates);

  for (int it = 0; it < options.max_iterations; ++it) {
    double max_move = 0.0;
    if (options.order == UpdateOrder::kSynchronous) {
      for (std::size_t i = 0; i < n; ++i) {
        scratch.responses[i] =
            best_response(alloc, *profile[i], rates, i, options.best_response,
                          scratch.ws)
                .rate;
      }
      for (std::size_t i = 0; i < n; ++i) {
        const double next = (1.0 - options.damping) * result.rates[i] +
                            options.damping * scratch.responses[i];
        max_move = std::max(max_move, std::abs(next - result.rates[i]));
        result.rates[i] = next;
      }
    } else {
      if (options.order == UpdateOrder::kRandomPermutation) {
        permutation_into(rng, scratch.order);
      } else {
        for (std::size_t i = 0; i < n; ++i) scratch.order[i] = i;
      }
      for (const std::size_t i : scratch.order) {
        const double response =
            best_response(alloc, *profile[i], rates, i, options.best_response,
                          scratch.ws)
                .rate;
        const double next = (1.0 - options.damping) * result.rates[i] +
                            options.damping * response;
        max_move = std::max(max_move, std::abs(next - result.rates[i]));
        result.rates[i] = next;
      }
    }
    result.iterations = it + 1;
    result.max_move = max_move;
    if (max_move <= options.tolerance) {
      result.converged = true;
      break;
    }
  }
  registry.counter("core.nash.solves").inc();
  registry.counter("core.nash.iterations_total")
      .inc(static_cast<std::uint64_t>(result.iterations));
  registry.counter("core.nash.best_responses")
      .inc(static_cast<std::uint64_t>(result.iterations) * n);
  registry.histogram("core.nash.iterations_per_solve", 0.0, 512.0, 64)
      .observe(result.iterations);
  if (!result.converged) registry.counter("core.nash.non_converged").inc();
  if (auto* trace = obs::active_trace()) {
    trace->instant("core",
                   result.converged ? "nash solve converged"
                                    : "nash solve hit max_iterations",
                   static_cast<double>(obs::wall_now_us()), "iterations",
                   static_cast<double>(result.iterations));
  }
  return result;
}

std::vector<double> fdc_residuals(const AllocationFunction& alloc,
                                  const UtilityProfile& profile,
                                  const std::vector<double>& rates) {
  validate_sizes(profile, rates);
  AllocationFunction::validate_rates(rates);
  const std::size_t n = rates.size();
  auto& scratch = solver_scratch();
  scratch.congestion.resize(n);
  alloc.congestion_into(rates, scratch.congestion, scratch.ws);
  std::vector<double> residuals(n, kNan);
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(scratch.congestion[i])) continue;
    const double m =
        profile[i]->marginal_ratio(rates[i], scratch.congestion[i]);
    const double slope = alloc.partial(i, i, rates);
    if (std::isfinite(m) && std::isfinite(slope)) residuals[i] = m + slope;
  }
  return residuals;
}

bool is_nash(const AllocationFunction& alloc, const UtilityProfile& profile,
             const std::vector<double>& rates, double utility_slack,
             const BestResponseOptions& options) {
  validate_sizes(profile, rates);
  AllocationFunction::validate_rates(rates);
  const std::size_t n = rates.size();
  auto& scratch = solver_scratch();
  scratch.congestion.resize(n);
  alloc.congestion_into(rates, scratch.congestion, scratch.ws);
  scratch.rates.assign(rates.begin(), rates.end());
  for (std::size_t i = 0; i < n; ++i) {
    const double current = profile[i]->value(rates[i], scratch.congestion[i]);
    const auto response = best_response(alloc, *profile[i], scratch.rates, i,
                                        options, scratch.ws);
    if (response.utility > current + utility_slack) return false;
  }
  return true;
}

double fdc_jacobian_entry(const AllocationFunction& alloc,
                          const UtilityProfile& profile,
                          const std::vector<double>& rates, std::size_t i,
                          std::size_t j) {
  const double c = alloc.congestion_of(i, rates);
  const MarginalTerms t = marginal_terms(*profile[i], rates[i], c);
  const double dci_drj = alloc.partial(i, j, rates);
  const double d2ci = alloc.second_partial(i, j, rates);
  double entry = t.dm_dc * dci_drj + d2ci;
  if (i == j) entry += t.dm_dr;
  return entry;
}

numerics::Matrix relaxation_matrix(const AllocationFunction& alloc,
                                   const UtilityProfile& profile,
                                   const std::vector<double>& rates) {
  validate_sizes(profile, rates);
  AllocationFunction::validate_rates(rates);
  const std::size_t n = rates.size();
  // One congestion pass, one batched Jacobian and one batched second-partial
  // pass replace the n^2 independent fdc_jacobian_entry evaluations (each of
  // which recomputed all three from scratch).
  auto& scratch = solver_scratch();
  scratch.congestion.resize(n);
  alloc.congestion_into(rates, scratch.congestion, scratch.ws);
  alloc.jacobian_into(rates, scratch.jac, scratch.ws);
  alloc.second_partials_into(rates, scratch.hess, scratch.ws);
  scratch.diag.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const MarginalTerms t =
        marginal_terms(*profile[j], rates[j], scratch.congestion[j]);
    scratch.diag[j] =
        t.dm_dr + t.dm_dc * scratch.jac(j, j) + scratch.hess(j, j);
  }
  numerics::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const MarginalTerms t =
        marginal_terms(*profile[i], rates[i], scratch.congestion[i]);
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) {
        a(i, j) = 0.0;
      } else {
        const double entry =
            t.dm_dc * scratch.jac(i, j) + scratch.hess(i, j);
        a(i, j) = -entry / scratch.diag[j];
      }
    }
  }
  return a;
}

NewtonDynamicsResult newton_relaxation(const AllocationFunction& alloc,
                                       const UtilityProfile& profile,
                                       std::vector<double> start,
                                       int max_iterations, double tolerance) {
  validate_sizes(profile, start);
  AllocationFunction::validate_rates(start);
  const std::size_t n = start.size();
  NewtonDynamicsResult result;
  result.trajectory.push_back(start);
  std::vector<double> rates = std::move(start);
  auto& scratch = solver_scratch();
  scratch.congestion.resize(n);
  scratch.responses.resize(n);  // holds the FDC residuals this solver
  for (int it = 0; it < max_iterations; ++it) {
    alloc.congestion_into(rates, scratch.congestion, scratch.ws);
    double max_residual = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double residual = kNan;
      if (std::isfinite(scratch.congestion[i])) {
        const double m =
            profile[i]->marginal_ratio(rates[i], scratch.congestion[i]);
        const double slope = alloc.partial(i, i, rates);
        if (std::isfinite(m) && std::isfinite(slope)) residual = m + slope;
      }
      scratch.responses[i] = residual;
      if (std::isnan(residual)) {
        max_residual = std::numeric_limits<double>::infinity();
      } else {
        max_residual = std::max(max_residual, std::abs(residual));
      }
    }
    result.iterations = it;
    if (max_residual <= tolerance) {
      result.converged = true;
      return result;
    }
    // Synchronous update: every slope is evaluated at the unmodified sweep
    // point, then all users move at once (Jacobi, as in the paper).
    scratch.rates.assign(rates.begin(), rates.end());
    for (std::size_t i = 0; i < n; ++i) {
      if (std::isnan(scratch.responses[i])) continue;
      const MarginalTerms t =
          marginal_terms(*profile[i], rates[i], scratch.congestion[i]);
      const double slope = t.dm_dr + t.dm_dc * alloc.partial(i, i, rates) +
                           alloc.second_partial(i, i, rates);
      if (slope == 0.0 || !std::isfinite(slope)) continue;
      double candidate = rates[i] - scratch.responses[i] / slope;
      candidate = std::clamp(candidate, 1e-9, 0.9999);
      scratch.rates[i] = candidate;
    }
    rates.assign(scratch.rates.begin(), scratch.rates.end());
    result.trajectory.push_back(rates);
  }
  obs::default_registry()
      .counter("core.nash.newton_iterations_total")
      .inc(static_cast<std::uint64_t>(result.iterations));
  return result;
}

std::vector<std::vector<double>> find_equilibria(
    const AllocationFunction& alloc, const UtilityProfile& profile,
    int n_starts, unsigned seed, const NashOptions& options,
    double distinct_tolerance) {
  const std::size_t n = profile.size();
  numerics::Rng rng(seed);
  std::vector<std::vector<double>> found;
  auto& restarts = obs::default_registry().counter("core.nash.restarts");
  std::vector<double> start(n);
  for (int s = 0; s < n_starts; ++s) {
    restarts.inc();
    if (auto* trace = obs::active_trace()) {
      trace->instant("core", "nash multistart restart",
                     static_cast<double>(obs::wall_now_us()), "start",
                     static_cast<double>(s));
    }
    // Random interior start: raw uniforms rescaled to a random total < 0.95.
    double total = 0.0;
    for (auto& x : start) {
      x = rng.uniform(0.01, 1.0);
      total += x;
    }
    const double target = rng.uniform(0.05, 0.95);
    for (auto& x : start) x *= target / total;

    const auto solved = solve_nash(alloc, profile, start, options);
    if (!solved.converged) continue;
    if (!is_nash(alloc, profile, solved.rates, 1e-6,
                 options.best_response)) {
      continue;
    }
    bool duplicate = false;
    for (const auto& existing : found) {
      double distance = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        distance = std::max(distance, std::abs(existing[i] - solved.rates[i]));
      }
      if (distance <= distinct_tolerance) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) found.push_back(solved.rates);
  }
  return found;
}

}  // namespace gw::core
