#include "core/flow.hpp"

#include <algorithm>
#include <cmath>

namespace gw::core {

FlowResult gradient_flow(const AllocationFunction& alloc,
                         const UtilityProfile& profile,
                         std::vector<double> start,
                         const FlowOptions& options) {
  const std::size_t n = profile.size();
  for (auto& r : start) r = std::clamp(r, options.r_min, options.r_max);

  const auto field = [&](double, const std::vector<double>& rates) {
    const auto congestion = alloc.congestion(rates);
    std::vector<double> drift(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(congestion[i])) {
        drift[i] = -options.eta;  // saturated: back off hard
        continue;
      }
      const double ur = profile[i]->du_dr(rates[i], congestion[i]);
      const double uc = profile[i]->du_dc(rates[i], congestion[i]);
      const double slope = alloc.partial(i, i, rates);
      double gradient = ur + uc * slope;
      if (!std::isfinite(gradient)) gradient = -1.0;
      drift[i] = options.eta * gradient;
      // One-sided projection at the box faces.
      if (rates[i] <= options.r_min && drift[i] < 0.0) drift[i] = 0.0;
      if (rates[i] >= options.r_max && drift[i] > 0.0) drift[i] = 0.0;
    }
    return drift;
  };

  numerics::OdeOptions ode;
  ode.dt = options.dt;
  ode.field_tolerance = options.field_tolerance;
  ode.record_stride = options.record_stride;
  const auto integrated = numerics::rk4_integrate(
      field, start, 0.0, options.t_end, ode,
      [&](std::vector<double>& rates) {
        for (auto& r : rates) r = std::clamp(r, options.r_min, options.r_max);
      });

  FlowResult result;
  result.times = integrated.times;
  result.trajectory = integrated.states;
  result.final_rates = integrated.final_state();
  result.converged = integrated.reached_equilibrium;
  return result;
}

}  // namespace gw::core
