#include "learn/oracle_learners.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numerics/differentiate.hpp"
#include "numerics/optimize.hpp"

namespace gw::learn {

namespace {

void require_oracle(const LearnerContext& context, const char* who) {
  if (!context.counterfactual) {
    throw std::logic_error(std::string(who) +
                           " requires a counterfactual oracle");
  }
}

}  // namespace

BestResponseLearner::BestResponseLearner(double initial_rate,
                                         const OracleOptions& options)
    : options_(options), rate_(initial_rate) {}

double BestResponseLearner::next_rate(const LearnerContext& context) {
  require_oracle(context, "BestResponseLearner");
  numerics::Optimize1DOptions opt;
  opt.scan_points = options_.scan_points;
  const auto best = numerics::maximize_scan(context.counterfactual,
                                            options_.r_min, options_.r_max, opt);
  rate_ = (1.0 - options_.damping) * rate_ + options_.damping * best.x;
  return rate_;
}

NewtonLearner::NewtonLearner(double initial_rate, const OracleOptions& options)
    : options_(options), rate_(initial_rate) {}

double NewtonLearner::next_rate(const LearnerContext& context) {
  require_oracle(context, "NewtonLearner");
  const auto& payoff = context.counterfactual;
  // E = dU/dr at the current rate; Newton: r -= E / (dE/dr).
  const double e = numerics::derivative(payoff, rate_);
  const double de = numerics::second_derivative(payoff, rate_);
  double next = rate_;
  if (std::isfinite(e) && std::isfinite(de) && de != 0.0) {
    next = rate_ - e / de;
  }
  if (!std::isfinite(next)) next = rate_;
  // Newton can shoot off maxima (de > 0 regions); fall back to a damped
  // gradient nudge there.
  if (de >= 0.0) next = rate_ + std::clamp(e, -0.05, 0.05);
  rate_ = std::clamp(next, options_.r_min, options_.r_max);
  return rate_;
}

}  // namespace gw::learn
