// Differential property tests for the span/workspace evaluation core:
// for every discipline, the allocation-free primitives (congestion_into,
// congestion_of_into, jacobian_into, second_partials_into) must reproduce
// the legacy vector API bit-for-bit across randomized sizes, rate ties,
// zeros and saturating points — with a single EvalWorkspace reused across
// all trials.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/corollary2.hpp"
#include "core/fair_share.hpp"
#include "core/gfunction.hpp"
#include "core/mixture.hpp"
#include "core/population.hpp"
#include "core/priority_alloc.hpp"
#include "core/proportional.hpp"
#include "core/serial_general.hpp"
#include "core/simd.hpp"
#include "core/weighted_serial.hpp"
#include "net/network.hpp"
#include "numerics/rng.hpp"

namespace gw::core {
namespace {

using Factory =
    std::function<std::shared_ptr<const AllocationFunction>(std::size_t)>;

struct SpanCase {
  const char* label;
  Factory make;
};

std::vector<double> standard_weights(std::size_t n) {
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = 0.5 + 0.25 * static_cast<double>(i % 5);
  }
  return w;
}

std::shared_ptr<const AllocationFunction> make_subsystem(std::size_t n) {
  // A Fair Share base with two extra frozen users; the reduced system has
  // exactly n free coordinates.
  std::vector<double> frozen(n + 2, 0.0);
  frozen[n] = 0.05;
  frozen[n + 1] = 0.1;
  std::vector<std::size_t> free_indices(n);
  for (std::size_t i = 0; i < n; ++i) free_indices[i] = i;
  return std::make_shared<SubsystemAllocation>(
      std::make_shared<FairShareAllocation>(), std::move(frozen),
      std::move(free_indices));
}

std::shared_ptr<const AllocationFunction> make_network(std::size_t n) {
  // Two Fair Share switches; every user crosses switch 0, odd users also
  // cross switch 1 — heterogeneous routes exercise the gather/scatter path.
  std::vector<std::shared_ptr<const AllocationFunction>> switches{
      std::make_shared<FairShareAllocation>(),
      std::make_shared<FairShareAllocation>()};
  std::vector<net::Route> routes(n);
  for (std::size_t i = 0; i < n; ++i) {
    routes[i] = (i % 2 == 1) ? net::Route{0, 1} : net::Route{0};
  }
  return std::make_shared<net::NetworkAllocation>(std::move(switches),
                                                  std::move(routes),
                                                  std::vector<double>{1.0, 2.0});
}

std::vector<SpanCase> all_cases() {
  return {
      {"Proportional",
       [](std::size_t) { return std::make_shared<ProportionalAllocation>(); }},
      {"FairShare",
       [](std::size_t) { return std::make_shared<FairShareAllocation>(); }},
      {"Mixture0.3",
       [](std::size_t) { return std::make_shared<MixtureAllocation>(0.3); }},
      {"Mixture0",
       [](std::size_t) { return std::make_shared<MixtureAllocation>(0.0); }},
      {"Mixture1",
       [](std::size_t) { return std::make_shared<MixtureAllocation>(1.0); }},
      {"SmallestRateFirst",
       [](std::size_t) {
         return std::make_shared<SmallestRateFirstAllocation>();
       }},
      {"FixedPriority",
       [](std::size_t) { return std::make_shared<FixedPriorityAllocation>(); }},
      {"WeightedSerial",
       [](std::size_t n) {
         return std::make_shared<WeightedSerialAllocation>(
             standard_weights(n));
       }},
      {"GeneralSerial[mm1]",
       [](std::size_t) {
         return std::make_shared<GeneralSerialAllocation>(GFunction::mm1());
       }},
      {"GeneralSerial[mg1]",
       [](std::size_t) {
         return std::make_shared<GeneralSerialAllocation>(GFunction::mg1(2.0));
       }},
      {"GeneralProportional[mg1]",
       [](std::size_t) {
         return std::make_shared<GeneralProportionalAllocation>(
             GFunction::mg1(0.5));
       }},
      {"GeneralProportional[quadratic]",
       [](std::size_t) {
         return std::make_shared<GeneralProportionalAllocation>(
             GFunction::quadratic());
       }},
      {"QuadraticSeparable",
       [](std::size_t) {
         return std::make_shared<QuadraticSeparableAllocation>();
       }},
      {"Subsystem[FairShare]", make_subsystem},
      {"Network[FairShare]", make_network},
  };
}

/// Randomized rate vector: mixes interior points, exact ties, zero entries
/// and saturating totals (> 1) so the comparison covers the +inf branches.
std::vector<double> random_rates(numerics::Rng& rng, std::size_t n) {
  std::vector<double> rates(n);
  for (auto& r : rates) r = rng.uniform(0.0, 1.0);
  const double flavor = rng.uniform();
  double target;
  if (flavor < 0.2) {
    target = rng.uniform(1.05, 2.0);  // saturating
  } else if (flavor < 0.4) {
    target = rng.uniform(0.9, 1.0);  // near-saturation
  } else {
    target = rng.uniform(0.1, 0.85);  // interior
  }
  double total = 0.0;
  for (const double r : rates) total += r;
  for (auto& r : rates) r *= target / total;
  if (n >= 2 && rng.bernoulli(0.5)) rates[n - 1] = rates[0];  // exact tie
  if (n >= 3 && rng.bernoulli(0.3)) rates[1] = 0.0;           // silent user
  return rates;
}

void expect_identical(double actual, double expected, const char* label,
                      std::size_t n, std::size_t i) {
  if (std::isnan(expected)) {
    EXPECT_TRUE(std::isnan(actual)) << label << " n=" << n << " i=" << i;
  } else {
    EXPECT_EQ(actual, expected) << label << " n=" << n << " i=" << i;
  }
}

TEST(EvalWorkspace, SpanCongestionMatchesLegacyBitForBit) {
  numerics::Rng rng(20260805);
  EvalWorkspace ws;  // shared across every case and size: reuse must be safe
  for (const auto& c : all_cases()) {
    for (int trial = 0; trial < 40; ++trial) {
      const std::size_t n = 1 + rng.uniform_index(32);
      const auto alloc = c.make(n);
      const auto rates = random_rates(rng, n);
      const auto legacy = alloc->congestion(rates);
      std::vector<double> out(n, -1.0);
      alloc->congestion_into(rates, out, ws);
      for (std::size_t i = 0; i < n; ++i) {
        expect_identical(out[i], legacy[i], c.label, n, i);
      }
    }
  }
}

TEST(EvalWorkspace, CongestionOfMatchesComponent) {
  numerics::Rng rng(777);
  EvalWorkspace ws;
  for (const auto& c : all_cases()) {
    for (int trial = 0; trial < 15; ++trial) {
      const std::size_t n = 1 + rng.uniform_index(16);
      const auto alloc = c.make(n);
      const auto rates = random_rates(rng, n);
      const auto legacy = alloc->congestion(rates);
      for (std::size_t i = 0; i < n; ++i) {
        expect_identical(alloc->congestion_of_into(i, rates, ws), legacy[i],
                         c.label, n, i);
        expect_identical(alloc->congestion_of(i, rates), legacy[i], c.label, n,
                         i);
      }
    }
  }
}

TEST(EvalWorkspace, BatchedJacobianMatchesEntrywisePartials) {
  numerics::Rng rng(31337);
  EvalWorkspace ws;
  numerics::Matrix jac(1, 1);
  for (const auto& c : all_cases()) {
    for (int trial = 0; trial < 8; ++trial) {
      const std::size_t n = 1 + rng.uniform_index(8);
      const auto alloc = c.make(n);
      const auto rates = random_rates(rng, n);
      alloc->jacobian_into(rates, jac, ws);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          expect_identical(jac(i, j), alloc->partial(i, j, rates), c.label, n,
                           i * n + j);
        }
      }
    }
  }
}

TEST(EvalWorkspace, BatchedSecondPartialsMatchEntrywise) {
  numerics::Rng rng(4242);
  EvalWorkspace ws;
  numerics::Matrix hess(1, 1);
  // Restricted to disciplines with closed-form second partials: the numeric
  // default is compared entrywise anyway (identical call path), and running
  // Richardson second differences n^2 times per trial is slow.
  const std::vector<const char*> closed = {
      "Proportional", "FairShare",         "SmallestRateFirst",
      "FixedPriority", "WeightedSerial",   "GeneralSerial[mm1]",
      "GeneralSerial[mg1]", "QuadraticSeparable"};
  for (const auto& c : all_cases()) {
    bool has_closed = false;
    for (const char* name : closed) {
      if (std::string(name) == c.label) has_closed = true;
    }
    if (!has_closed) continue;
    for (int trial = 0; trial < 8; ++trial) {
      const std::size_t n = 1 + rng.uniform_index(8);
      const auto alloc = c.make(n);
      const auto rates = random_rates(rng, n);
      alloc->second_partials_into(rates, hess, ws);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          expect_identical(hess(i, j), alloc->second_partial(i, j, rates),
                           c.label, n, i * n + j);
        }
      }
    }
  }
}

TEST(EvalWorkspace, ReuseAcrossShrinkingAndGrowingSizes) {
  // A workspace warmed at n=32 then reused at n=3 (and back) must give the
  // same answers as a cold workspace: spans are sized by the call's n, not
  // by the buffer capacity.
  numerics::Rng rng(99);
  EvalWorkspace warm;
  const FairShareAllocation fs;
  for (const std::size_t n : {32u, 3u, 17u, 1u, 32u}) {
    const auto rates = random_rates(rng, n);
    std::vector<double> out_warm(n), out_cold(n);
    EvalWorkspace cold;
    fs.congestion_into(rates, out_warm, warm);
    fs.congestion_into(rates, out_cold, cold);
    EXPECT_EQ(out_warm, out_cold) << "n=" << n;
  }
}

TEST(EvalWorkspace, EnsureGrowsAndChildIsStable) {
  EvalWorkspace ws;
  ws.ensure(8);
  // padded(n) >= n + 1: the explicit slack contract replacing the old
  // implicit +1 (suffix-sum callers take b(n + 1)).
  EXPECT_GE(EvalWorkspace::padded(8), 9u);
  EXPECT_EQ(ws.order(9).size(), 9u);
  EXPECT_EQ(ws.b(9).size(), 9u);
  double* const a_ptr = ws.a(8).data();
  ws.ensure(4);  // never shrinks
  EXPECT_EQ(ws.a(8).data(), a_ptr);
  EvalWorkspace* const child = &ws.child();
  EXPECT_EQ(&ws.child(), child);  // created once, then reused
}

TEST(EvalWorkspace, PaddedStrideContract) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{8}, std::size_t{63}, std::size_t{64},
                              std::size_t{4096}}) {
    const std::size_t p = EvalWorkspace::padded(n);
    EXPECT_GE(p, n + 1) << "n=" << n;
    EXPECT_EQ(p % simd::kLaneQuantum, 0u) << "n=" << n;
  }
  // Stride in bytes is a multiple of the alignment, so *every* lane start
  // is aligned, not just the slab base.
  EXPECT_EQ(EvalWorkspace::padded(1) * sizeof(double) %
                EvalWorkspace::kAlignment,
            0u);
}

TEST(EvalWorkspace, AllLanesAre64ByteAligned) {
  EvalWorkspace ws;
  const auto aligned = [](const void* p) {
    return reinterpret_cast<std::uintptr_t>(p) % EvalWorkspace::kAlignment ==
           0;
  };
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{32},
                              std::size_t{4096}}) {
    ws.ensure(n);
    EXPECT_TRUE(aligned(ws.order(n).data())) << n;
    EXPECT_TRUE(aligned(ws.rank(n).data())) << n;
    EXPECT_TRUE(aligned(ws.scan_index(n).data())) << n;
    EXPECT_TRUE(aligned(ws.sorted(n).data())) << n;
    EXPECT_TRUE(aligned(ws.serial(n).data())) << n;
    EXPECT_TRUE(aligned(ws.a(n).data())) << n;
    EXPECT_TRUE(aligned(ws.b(n).data())) << n;
    EXPECT_TRUE(aligned(ws.cbuf(n).data())) << n;
    EXPECT_TRUE(aligned(ws.scan_keys(n).data())) << n;
    EXPECT_TRUE(aligned(ws.scan_prefix(n).data())) << n;
    EXPECT_TRUE(aligned(ws.scan_run(n).data())) << n;
    EXPECT_TRUE(aligned(ws.scan_gprev(n).data())) << n;
    EXPECT_TRUE(simd::is_aligned(ws.a(n).data())) << n;
  }
}

#ifndef NDEBUG
TEST(EvalWorkspaceDeathTest, LaneSpanBeyondPaddedAsserts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EvalWorkspace ws;
  ws.ensure(8);
  // Asking for more elements than padded(capacity) violates the lane
  // contract; the debug assert has to fire rather than silently bleeding
  // into the next lane.
  EXPECT_DEATH((void)ws.a(EvalWorkspace::padded(8) + 1),
               "lane span exceeds padded");
  EXPECT_DEATH((void)ws.order(EvalWorkspace::padded(8) + 1),
               "lane span exceeds padded");
}
#endif

// The vector (GW_SIMD=ON) and scalar (OFF) builds run this same binary; the
// batched-vs-per-entry comparisons above are the bit-identity oracle in both
// modes. This test pins the large-N regime where the vector kernels take
// multi-lane trips: full batched fills at n = 4096 must still agree with the
// per-entry closed forms on sampled entries.
TEST(EvalWorkspace, LargeNBatchedMatchesPerEntrySampled) {
  numerics::Rng rng(20260808);
  const std::size_t n = 4096;
  EvalWorkspace ws;
  numerics::Matrix jac(1, 1), hess(1, 1);
  const std::vector<const char*> large = {
      "Proportional", "FairShare", "SmallestRateFirst", "WeightedSerial",
      "GeneralSerial[mm1]"};
  for (const auto& c : all_cases()) {
    bool wanted = false;
    for (const char* name : large) {
      if (std::string(name) == c.label) wanted = true;
    }
    if (!wanted) continue;
    const auto alloc = c.make(n);
    const auto rates = random_rates(rng, n);
    const auto legacy = alloc->congestion(rates);
    std::vector<double> out(n, -1.0);
    alloc->congestion_into(rates, out, ws);
    for (std::size_t i = 0; i < n; i += 257) {
      expect_identical(out[i], legacy[i], c.label, n, i);
    }
    alloc->jacobian_into(rates, jac, ws);
    alloc->second_partials_into(rates, hess, ws);
    for (int s = 0; s < 128; ++s) {
      const std::size_t i = rng.uniform_index(n);
      const std::size_t j = rng.uniform_index(n);
      expect_identical(jac(i, j), alloc->partial(i, j, rates), c.label, n,
                       i * n + j);
      expect_identical(hess(i, j), alloc->second_partial(i, j, rates), c.label,
                       n, i * n + j);
    }
  }
}

// ---------------------------------------------------------------------------
// Best-response scan fast path: scan_congestion_of(i, x, ...) must be
// bit-identical to the generic congestion_of_into on the rates-with-x-at-i
// vector, for every staged discipline, across ties, zeros and saturation.
// ---------------------------------------------------------------------------

TEST(EvalWorkspace, ScanProbeMatchesGenericBitForBit) {
  numerics::Rng rng(616);
  EvalWorkspace scan_ws;   // holds the staged tables
  EvalWorkspace probe_ws;  // scratch for the generic reference path
  const std::vector<const char*> staged = {"FairShare", "SmallestRateFirst",
                                           "GeneralSerial[mm1]",
                                           "GeneralSerial[mg1]"};
  for (const auto& c : all_cases()) {
    bool wanted = false;
    for (const char* name : staged) {
      if (std::string(name) == c.label) wanted = true;
    }
    if (!wanted) continue;
    for (int trial = 0; trial < 25; ++trial) {
      const std::size_t n = 1 + rng.uniform_index(24);
      const auto alloc = c.make(n);
      const auto rates = random_rates(rng, n);
      const std::size_t i = rng.uniform_index(n);
      ASSERT_TRUE(alloc->scan_prepare(i, rates, scan_ws)) << c.label;
      std::vector<double> mutated = rates;
      // Probe a spread of trial rates: zero, the current rate, an exact tie
      // with another user, interior points, and a saturating rate.
      std::vector<double> probes = {0.0, rates[i], rng.uniform(0.0, 0.5),
                                    rng.uniform(0.0, 1.0),
                                    rng.uniform(1.0, 2.5)};
      if (n >= 2) probes.push_back(rates[(i + 1) % n]);
      for (const double x : probes) {
        mutated[i] = x;
        const double expected = alloc->congestion_of_into(i, mutated, probe_ws);
        const double got = alloc->scan_congestion_of(i, x, rates, scan_ws);
        expect_identical(got, expected, c.label, n, i);
      }
    }
  }
}

TEST(EvalWorkspace, ScanDefaultsSignalNoFastPath) {
  // Regression for the scan_prepare contract: EVERY discipline without a
  // staged path reports false from the base-class default (no
  // discipline-specific logic_error split), and calling the probe anyway
  // is a contract violation, not a silent fallback. Staged disciplines
  // report true on the same inputs.
  EvalWorkspace ws;
  const std::vector<double> rates{0.1, 0.2, 0.3};
  const std::vector<const char*> staged = {"FairShare", "SmallestRateFirst",
                                           "GeneralSerial[mm1]",
                                           "GeneralSerial[mg1]"};
  for (const auto& c : all_cases()) {
    const auto alloc = c.make(rates.size());
    bool expected = false;
    for (const char* name : staged) {
      if (std::string(name) == c.label) expected = true;
    }
    EXPECT_EQ(alloc->scan_prepare(0, rates, ws), expected) << c.label;
    if (!expected) {
      EXPECT_THROW((void)alloc->scan_congestion_of(0, 0.15, rates, ws),
                   std::logic_error)
          << c.label;
    }
  }
}

TEST(EvalWorkspace, ChildReuseAcrossMixedPopulationSizes) {
  // The classed solver runs k-sized classed passes and N-sized expanded
  // passes through the same workspace tree (classed staging on ws, nested
  // evaluation on ws.child()). Growing the child for a large expanded pass
  // and then shrinking back to a small classed pass must not alias lanes:
  // every result must match a cold workspace at that size.
  numerics::Rng rng(727);
  const GeneralSerialAllocation serial(GFunction::mg1(2.0));
  EvalWorkspace warm;
  for (const std::size_t n : {5u, 40u, 3u, 64u, 7u, 40u}) {
    // Expanded pass at size n through the parent...
    const auto rates = random_rates(rng, n);
    std::vector<double> out_warm(n), out_cold(n);
    EvalWorkspace cold;
    serial.congestion_into(rates, out_warm, warm);
    serial.congestion_into(rates, out_cold, cold);
    EXPECT_EQ(out_warm, out_cold) << "n=" << n;
    // ...then a classed pass at k = min(n, 6) through the child.
    const std::size_t k = std::min<std::size_t>(n, 6);
    std::vector<RateClass> classes(k);
    for (std::size_t a = 0; a < k; ++a) {
      classes[a] = RateClass{rates[a] / 4.0, 1.0, 1 + a % 3};
    }
    const auto pop = ClassedPopulation::from_classes(std::move(classes));
    std::vector<double> classed_warm(k), classed_cold(k);
    EvalWorkspace cold2;
    ASSERT_TRUE(serial.congestion_classes_into(pop, classed_warm,
                                               warm.child()));
    ASSERT_TRUE(serial.congestion_classes_into(pop, classed_cold, cold2));
    EXPECT_EQ(classed_warm, classed_cold) << "k=" << k;
  }
}

TEST(EvalWorkspace, PaddedHoldsAtClassLaneBoundaries) {
  // Classed scan tables put k-sized prefix tables in the value lanes (the
  // opponent-count prefixes ride lane 9), so the padded(n) >= n + 1 slack
  // contract must hold exactly at and around the lane-quantum boundaries a
  // class count k sits on — and the staged classed scan must keep matching
  // the expanded reference there.
  EvalWorkspace scan_ws;
  EvalWorkspace probe_ws;
  const GeneralSerialAllocation serial(GFunction::mm1());
  for (const std::size_t k :
       {std::size_t{7}, std::size_t{8}, std::size_t{9}, std::size_t{15},
        std::size_t{16}, std::size_t{17}, std::size_t{63}, std::size_t{64},
        std::size_t{65}}) {
    EXPECT_GE(EvalWorkspace::padded(k), k + 1) << "k=" << k;
    EXPECT_EQ(EvalWorkspace::padded(k) % simd::kLaneQuantum, 0u) << "k=" << k;
    std::vector<RateClass> classes(k);
    for (std::size_t a = 0; a < k; ++a) {
      classes[a] = RateClass{0.4 * (1.0 + static_cast<double>(a % 5)) /
                                 (5.0 * static_cast<double>(k)),
                             1.0, 1 + a % 2};
    }
    const auto pop = ClassedPopulation::from_classes(std::move(classes));
    const std::size_t a = k - 1;  // the class whose tables end at the edge
    ASSERT_TRUE(serial.scan_prepare_classes(a, pop, scan_ws)) << "k=" << k;
    const std::size_t rep = pop.base(a) + pop[a].count - 1;
    std::vector<double> mutated = pop.expand();
    for (const double x : {0.0, pop[a].rate, pop[0].rate, 0.8}) {
      mutated[rep] = x;
      const double expected = serial.congestion_of_into(rep, mutated,
                                                        probe_ws);
      const double got = serial.scan_congestion_of_class(a, x, pop, scan_ws);
      // Not bit-identical: the classed prefix tables reassociate the
      // expanded per-user sums, so agreement is relative to magnitude.
      if (std::isnan(expected) || std::isinf(expected)) {
        expect_identical(got, expected, "classed-scan", k, a);
      } else {
        EXPECT_NEAR(got, expected, 1e-12 * std::max(1.0, std::abs(expected)))
            << "classed-scan k=" << k << " x=" << x;
      }
    }
  }
}

}  // namespace
}  // namespace gw::core
