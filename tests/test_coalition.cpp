// Footnote 14: resilience of Fair Share Nash equilibria against
// coalitional manipulation, and FIFO's lack thereof.
#include "core/coalition.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/fair_share.hpp"
#include "core/nash.hpp"
#include "core/proportional.hpp"

namespace gw::core {
namespace {

CoalitionOptions fast_options() {
  CoalitionOptions options;
  options.grid = 17;
  options.refine_evaluations = 2000;
  return options;
}

TEST(Coalition, FsNashResistsPairDeviations) {
  const FairShareAllocation alloc;
  const UtilityProfile profile{make_linear(1.0, 0.2), make_linear(1.0, 0.35),
                               make_linear(1.0, 0.5)};
  const auto nash = solve_nash(alloc, profile, {0.1, 0.1, 0.1});
  ASSERT_TRUE(nash.converged);
  const std::vector<std::vector<std::size_t>> coalitions{{0, 1}, {0, 2},
                                                         {1, 2}};
  for (const auto& coalition : coalitions) {
    const auto result = find_coalition_deviation(alloc, profile, nash.rates,
                                                 coalition, fast_options());
    EXPECT_FALSE(result.profitable)
        << "coalition {" << coalition[0] << "," << coalition[1]
        << "} gains " << result.best_min_gain;
  }
}

TEST(Coalition, FsNashResistsGrandCoalition) {
  const FairShareAllocation alloc;
  const auto profile = uniform_profile(make_linear(1.0, 0.25), 3);
  const auto nash = solve_nash(alloc, profile, {0.1, 0.1, 0.1});
  ASSERT_TRUE(nash.converged);
  const auto result = find_coalition_deviation(alloc, profile, nash.rates,
                                               {0, 1, 2}, fast_options());
  EXPECT_FALSE(result.profitable) << "gain " << result.best_min_gain;
}

TEST(Coalition, FifoNashFallsToGrandCoalition) {
  // At the FIFO Nash, everyone jointly backing off is a strict Pareto
  // improvement for the coalition — the tragedy is self-inflicted.
  const ProportionalAllocation alloc;
  const auto profile = uniform_profile(make_linear(1.0, 0.25), 3);
  const auto nash = solve_nash(alloc, profile, {0.1, 0.1, 0.1});
  ASSERT_TRUE(nash.converged);
  const auto result = find_coalition_deviation(alloc, profile, nash.rates,
                                               {0, 1, 2}, fast_options());
  EXPECT_TRUE(result.profitable);
  // The deviation is a joint retreat: lower rates for every member.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_LT(result.deviation_rates[i], nash.rates[i]);
  }
}

TEST(Coalition, FifoNashFallsToPairCoalitionsToo) {
  const ProportionalAllocation alloc;
  const auto profile = uniform_profile(make_linear(1.0, 0.25), 2);
  const auto nash = solve_nash(alloc, profile, {0.1, 0.1});
  ASSERT_TRUE(nash.converged);
  const auto result = find_coalition_deviation(alloc, profile, nash.rates,
                                               {0, 1}, fast_options());
  EXPECT_TRUE(result.profitable);
}

TEST(Coalition, SingletonCoalitionAtNashGainsNothing) {
  // A one-member "coalition" is just a unilateral deviation: zero gain at
  // any Nash point, for either discipline.
  const FairShareAllocation fs;
  const ProportionalAllocation fifo;
  const auto profile = uniform_profile(make_linear(1.0, 0.25), 2);
  for (const AllocationFunction* alloc :
       {static_cast<const AllocationFunction*>(&fs),
        static_cast<const AllocationFunction*>(&fifo)}) {
    const auto nash = solve_nash(*alloc, profile, {0.1, 0.1});
    ASSERT_TRUE(nash.converged);
    const auto result = find_coalition_deviation(*alloc, profile, nash.rates,
                                                 {0}, fast_options());
    EXPECT_FALSE(result.profitable) << alloc->name();
  }
}

TEST(Coalition, InputValidation) {
  const FairShareAllocation alloc;
  const auto profile = uniform_profile(make_linear(1.0, 0.25), 2);
  EXPECT_THROW((void)find_coalition_deviation(alloc, profile, {0.1, 0.1}, {},
                                              fast_options()),
               std::invalid_argument);
  EXPECT_THROW((void)find_coalition_deviation(alloc, profile, {0.1, 0.1},
                                              {5}, fast_options()),
               std::invalid_argument);
}

}  // namespace
}  // namespace gw::core
