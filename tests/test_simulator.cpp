#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "sim/rate_estimator.hpp"
#include "sim/tracker.hpp"

namespace gw::sim {
namespace {

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, SimultaneousEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(3); });
  sim.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  sim.cancel(id);
  sim.run_until(2.0);
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 5) sim.schedule_in(1.0, chain);
  };
  sim.schedule_at(0.0, chain);
  sim.run_until(100.0);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.processed_events(), 5u);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(5.0, [&] { ++fired; });
  sim.run_until(3.0);
  EXPECT_EQ(fired, 1);
  sim.run_until(6.0);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, PastSchedulingThrows) {
  Simulator sim;
  sim.run_until(5.0);
  EXPECT_THROW((void)sim.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW((void)sim.run_until(2.0), std::invalid_argument);
}

TEST(Tracker, TimeAverageOfSquareWave) {
  QueueTracker tracker(1);
  tracker.reset(0.0);
  tracker.on_change(0.0, 0, +1);  // occupancy 1 during [0, 4)
  tracker.on_change(4.0, 0, +1);  // occupancy 2 during [4, 6)
  tracker.on_change(6.0, 0, -2);  // occupancy 0 during [6, 10)
  EXPECT_NEAR(tracker.time_average(0, 10.0), (4.0 + 4.0) / 10.0, 1e-12);
}

TEST(Tracker, BatchesAreIndependentWindows) {
  QueueTracker tracker(1);
  tracker.reset(0.0);
  tracker.close_batch(0.0);  // open first batch
  tracker.on_change(0.0, 0, +1);
  const auto batch1 = tracker.close_batch(2.0);  // occupancy 1 throughout
  ASSERT_EQ(batch1.size(), 1u);
  EXPECT_NEAR(batch1[0], 1.0, 1e-12);
  tracker.on_change(2.0, 0, +1);
  const auto batch2 = tracker.close_batch(4.0);  // occupancy 2 throughout
  EXPECT_NEAR(batch2[0], 2.0, 1e-12);
}

TEST(Tracker, DelayAccounting) {
  QueueTracker tracker(2);
  tracker.reset(0.0);
  tracker.on_departure(0, 1.5);
  tracker.on_departure(0, 2.5);
  tracker.on_departure(1, 10.0);
  EXPECT_NEAR(tracker.mean_delay(0), 2.0, 1e-12);
  EXPECT_NEAR(tracker.mean_delay(1), 10.0, 1e-12);
  EXPECT_EQ(tracker.departures(0), 2u);
}

TEST(Tracker, NegativeOccupancyThrows) {
  QueueTracker tracker(1);
  EXPECT_THROW(tracker.on_change(0.0, 0, -1), std::logic_error);
}

TEST(Tracker, ResetDiscardsHistoryKeepsOccupancy) {
  QueueTracker tracker(1);
  tracker.on_change(0.0, 0, +1);
  tracker.reset(5.0);
  EXPECT_EQ(tracker.occupancy(0), 1);
  // After reset, the standing occupant counts from t=5.
  EXPECT_NEAR(tracker.time_average(0, 7.0), 1.0, 1e-12);
  EXPECT_EQ(tracker.departures(0), 0u);
}

TEST(RateEstimator, ConvergesToTrueRateOnRegularTrain) {
  RateEstimator estimator(1, 50.0);
  const double rate = 0.4;
  double t = 0.0;
  for (int k = 0; k < 2000; ++k) {
    t += 1.0 / rate;
    estimator.on_arrival(0, t);
  }
  EXPECT_NEAR(estimator.estimate(0, t), rate, 0.05 * rate);
}

TEST(RateEstimator, DecaysAfterSilence) {
  RateEstimator estimator(1, 10.0);
  estimator.on_arrival(0, 0.0);
  const double soon = estimator.estimate(0, 1.0);
  const double later = estimator.estimate(0, 100.0);
  EXPECT_GT(soon, later);
  EXPECT_NEAR(later, 0.0, 1e-4);
}

TEST(RateEstimator, TracksRateChanges) {
  RateEstimator estimator(1, 30.0);
  double t = 0.0;
  for (int k = 0; k < 500; ++k) {
    t += 5.0;  // rate 0.2
    estimator.on_arrival(0, t);
  }
  const double slow = estimator.estimate(0, t);
  for (int k = 0; k < 1000; ++k) {
    t += 1.25;  // rate 0.8
    estimator.on_arrival(0, t);
  }
  const double fast = estimator.estimate(0, t);
  EXPECT_NEAR(slow, 0.2, 0.05);
  EXPECT_NEAR(fast, 0.8, 0.1);
}

}  // namespace
}  // namespace gw::sim
