#include "core/stackelberg.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/fair_share.hpp"
#include "core/proportional.hpp"

namespace gw::core {
namespace {

StackelbergOptions fast_options() {
  StackelbergOptions options;
  options.leader_grid = 25;
  options.refine_iterations = 2;
  options.follower.max_iterations = 120;
  options.follower.best_response.scan_points = 121;
  return options;
}

TEST(Theorem5, FifoLeaderGainsFromSophistication) {
  // Under the proportional allocation the Stackelberg leader does strictly
  // better than at the Nash point — sophistication pays, which is exactly
  // what the paper wants to design away.
  const auto alloc = std::make_shared<ProportionalAllocation>();
  const auto profile = uniform_profile(make_linear(1.0, 0.25), 3);
  const auto result = solve_stackelberg(alloc, profile, 0, fast_options());
  ASSERT_TRUE(result.solved);
  EXPECT_GT(result.advantage(), 1e-4);
}

TEST(Theorem5, FairShareLeaderGainsNothing) {
  // Under FS every Nash equilibrium is a Stackelberg equilibrium: leading
  // buys (numerically) nothing.
  const auto alloc = std::make_shared<FairShareAllocation>();
  const auto profile = uniform_profile(make_linear(1.0, 0.25), 3);
  const auto result = solve_stackelberg(alloc, profile, 0, fast_options());
  ASSERT_TRUE(result.solved);
  EXPECT_NEAR(result.advantage(), 0.0, 2e-4);
  EXPECT_NEAR(result.leader_rate, result.nash_rates[0], 5e-2);
}

TEST(Theorem5, FairShareHeterogeneousLeaderStillGainsNothing) {
  const auto alloc = std::make_shared<FairShareAllocation>();
  const UtilityProfile profile{make_linear(1.0, 0.15), make_linear(1.0, 0.4),
                               make_linear(1.0, 0.7)};
  for (const std::size_t leader : {0u, 1u, 2u}) {
    const auto result =
        solve_stackelberg(alloc, profile, leader, fast_options());
    ASSERT_TRUE(result.solved) << "leader " << leader;
    EXPECT_NEAR(result.advantage(), 0.0, 3e-4) << "leader " << leader;
  }
}

TEST(Stackelberg, LeaderNeverWorseThanNash) {
  // Leading weakly dominates following for any discipline (the leader can
  // always commit to her Nash rate).
  const auto alloc = std::make_shared<ProportionalAllocation>();
  const UtilityProfile profile{make_linear(1.0, 0.2), make_linear(1.0, 0.5)};
  const auto result = solve_stackelberg(alloc, profile, 1, fast_options());
  ASSERT_TRUE(result.solved);
  EXPECT_GE(result.advantage(), -1e-5);
}

TEST(Stackelberg, FifoLeaderCrowdsOutFollowers) {
  // The FIFO leader over-claims: her committed rate exceeds her Nash rate,
  // and followers retreat below theirs.
  const auto alloc = std::make_shared<ProportionalAllocation>();
  const auto profile = uniform_profile(make_linear(1.0, 0.25), 2);
  const auto result = solve_stackelberg(alloc, profile, 0, fast_options());
  ASSERT_TRUE(result.solved);
  EXPECT_GT(result.leader_rate, result.nash_rates[0] + 1e-3);
  EXPECT_LT(result.rates[1], result.nash_rates[1] - 1e-4);
}

TEST(Stackelberg, BadLeaderIndexThrows) {
  const auto alloc = std::make_shared<ProportionalAllocation>();
  const auto profile = uniform_profile(make_linear(1.0, 0.2), 2);
  EXPECT_THROW((void)solve_stackelberg(alloc, profile, 5, fast_options()),
               std::invalid_argument);
}

}  // namespace
}  // namespace gw::core
