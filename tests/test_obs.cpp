// gw::obs — metrics registry, event tracer, scoped timers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "json_lite.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "sim/runner.hpp"

namespace {

using namespace gw;

// ------------------------------------------------------------ JsonWriter

TEST(JsonWriter, ProducesParseableNestedDocument) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("name");
  w.value("he said \"hi\"\n");
  w.key("xs");
  w.begin_array();
  w.value(1.5);
  w.value(std::int64_t{-3});
  w.value(true);
  w.begin_object();
  w.key("inner");
  w.value(std::uint64_t{42});
  w.end_object();
  w.end_array();
  w.key("nan");
  w.value(std::nan(""));
  w.end_object();

  const auto doc = jsonlite::parse_json(w.str());
  EXPECT_EQ(doc.at("name").string, "he said \"hi\"\n");
  ASSERT_EQ(doc.at("xs").array.size(), 4u);
  EXPECT_DOUBLE_EQ(doc.at("xs").array[0].number, 1.5);
  EXPECT_DOUBLE_EQ(doc.at("xs").array[1].number, -3.0);
  EXPECT_TRUE(doc.at("xs").array[2].boolean);
  EXPECT_DOUBLE_EQ(doc.at("xs").array[3].at("inner").number, 42.0);
  // Non-finite doubles are encoded as sentinel strings to keep the
  // document valid JSON.
  EXPECT_EQ(doc.at("nan").string, "nan");
}

// -------------------------------------------------------------- Registry

TEST(MetricsRegistry, HandlesAreStableAndNamed) {
  obs::Registry registry;
  auto& a = registry.counter("a");
  auto& again = registry.counter("a");
  EXPECT_EQ(&a, &again);
  a.inc(3);
  EXPECT_EQ(registry.counter("a").value(), 3u);

  registry.gauge("g").set(2.5);
  EXPECT_DOUBLE_EQ(registry.gauge("g").value(), 2.5);
  registry.gauge("g").add(-0.5);
  EXPECT_DOUBLE_EQ(registry.gauge("g").value(), 2.0);
}

TEST(MetricsRegistry, SnapshotCorrectUnderConcurrentIncrements) {
  obs::Registry registry;
  auto& counter = registry.counter("hits");
  auto& gauge = registry.gauge("acc");
  auto& histogram = registry.histogram("obs", 0.0, 1.0, 16);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.inc();
        gauge.add(1.0);
        histogram.observe(static_cast<double>((t + i) % 16) / 16.0 + 0.01);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  constexpr auto kTotal =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, kTotal);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, static_cast<double>(kTotal));
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, kTotal);
  std::uint64_t in_bins = 0;
  for (const auto b : snap.histograms[0].buckets) in_bins += b;
  EXPECT_EQ(in_bins, kTotal);
}

TEST(MetricsHistogram, BucketAndQuantileEdges) {
  obs::Histogram h(0.0, 10.0, 10);
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));  // empty: no distribution
  EXPECT_TRUE(std::isnan(h.min()));
  EXPECT_TRUE(std::isnan(h.mean()));

  h.observe(-5.0);   // clamps into bin 0
  h.observe(0.0);    // bin 0
  h.observe(9.999);  // bin 9
  h.observe(25.0);   // clamps into bin 9
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 25.0);
  // Quantiles answer from bin midpoints.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 9.5);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));

  EXPECT_THROW(obs::Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(obs::Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(MetricsHistogram, NanObservationsRejectedNotAbsorbed) {
  obs::Histogram h(0.0, 10.0, 10);
  h.observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.rejected(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);  // NaN must not poison the accumulator

  h.observe(2.0);
  h.observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.rejected(), 2u);
  EXPECT_DOUBLE_EQ(h.sum(), 2.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);

  h.reset();
  EXPECT_EQ(h.rejected(), 0u);
}

TEST(MetricsHistogram, RejectedCountRidesSnapshotAndJson) {
  obs::Registry registry;
  auto& h = registry.histogram("lat", 0.0, 1.0, 4);
  h.observe(0.5);
  h.observe(std::numeric_limits<double>::quiet_NaN());

  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_EQ(snap.histograms[0].rejected, 1u);

  const auto doc = jsonlite::parse_json(registry.to_json());
  EXPECT_DOUBLE_EQ(doc.at("histograms").at("lat").at("rejected").number, 1.0);
}

TEST(MetricsHistogram, QuantileZeroSkipsEmptyLeadingBins) {
  obs::Histogram h(0.0, 10.0, 10);
  h.observe(7.3);  // bin 7 is the only occupied bin
  // Regression: q=0 used to report the bin-0 midpoint (0.5) even though
  // bin 0 is empty; every quantile of a single-bin distribution is that
  // bin's midpoint.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 7.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 7.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 7.5);

  h.observe(9.1);  // occupy bin 9 as well
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 7.5);  // first *non-empty* bin
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 9.5);
}

TEST(MetricsRegistry, JsonAndCsvExportsParse) {
  obs::Registry registry;
  registry.counter("runs").inc(2);
  registry.gauge("last").set(0.25);
  auto& h = registry.histogram("lat", 0.0, 1.0, 4);
  h.observe(0.1);
  h.observe(0.9);

  const auto doc = jsonlite::parse_json(registry.to_json());
  EXPECT_DOUBLE_EQ(doc.at("counters").at("runs").number, 2.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("last").number, 0.25);
  const auto& lat = doc.at("histograms").at("lat");
  EXPECT_DOUBLE_EQ(lat.at("count").number, 2.0);
  EXPECT_DOUBLE_EQ(lat.at("sum").number, 1.0);
  ASSERT_EQ(lat.at("buckets").array.size(), 4u);

  const std::string csv = registry.to_csv();
  EXPECT_NE(csv.find("counter,runs,2"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat"), std::string::npos);

  registry.reset();
  EXPECT_EQ(registry.counter("runs").value(), 0u);
  EXPECT_EQ(registry.histogram("lat", 0.0, 1.0).count(), 0u);
}

TEST(MetricsRegistry, ResetClearsHistogramRejectedCounters) {
  // Registry::reset() runs between bench reps; a rejected() count leaking
  // across reps would misattribute rep 1's NaN observations to rep 2.
  obs::Registry registry;
  auto& h = registry.histogram("lat", 0.0, 1.0, 4);
  h.observe(std::numeric_limits<double>::quiet_NaN());
  h.observe(0.5);
  ASSERT_EQ(h.rejected(), 1u);
  ASSERT_EQ(h.count(), 1u);

  registry.reset();
  EXPECT_EQ(h.rejected(), 0u);
  EXPECT_EQ(h.count(), 0u);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].rejected, 0u);
}

TEST(ScopedTimer, FeedsHistogram) {
  obs::Registry registry;
  auto& sink = registry.histogram("t", 0.0, 1.0, 8);
  {
    obs::ScopedTimer timer(sink);
  }
  EXPECT_EQ(sink.count(), 1u);
  EXPECT_GE(sink.sum(), 0.0);
}

// ---------------------------------------------------------------- Tracer

TEST(TraceSession, EmitsWellFormedChromeTraceJson) {
  obs::TraceSession session;
  session.complete("station", "serve u0", 100.0, 50.0);
  session.instant("packet", "arrive", 10.0, "user", 2.0);
  session.counter("occupancy", "occupancy u0", 11.0, 3.0);

  const auto doc = jsonlite::parse_json(session.to_json());
  const auto& events = doc.at("traceEvents").array;
  ASSERT_EQ(events.size(), 3u);

  EXPECT_EQ(events[0].at("ph").string, "X");
  EXPECT_DOUBLE_EQ(events[0].at("ts").number, 100.0);
  EXPECT_DOUBLE_EQ(events[0].at("dur").number, 50.0);

  EXPECT_EQ(events[1].at("ph").string, "i");
  EXPECT_EQ(events[1].at("cat").string, "packet");
  EXPECT_DOUBLE_EQ(events[1].at("args").at("user").number, 2.0);

  EXPECT_EQ(events[2].at("ph").string, "C");
  EXPECT_DOUBLE_EQ(events[2].at("args").at("value").number, 3.0);
}

TEST(TraceSession, DropsBeyondCapAndCounts) {
  obs::TraceOptions options;
  options.max_events = 2;
  obs::TraceSession session(options);
  for (int i = 0; i < 5; ++i) session.instant("c", "e", i);
  EXPECT_EQ(session.size(), 2u);
  EXPECT_EQ(session.dropped(), 3u);
  // Still serializes cleanly.
  EXPECT_NO_THROW(jsonlite::parse_json(session.to_json()));
}

TEST(Tracing, SimRunWithActiveSessionHasAllCategories) {
  obs::TraceSession session;
  {
    const obs::ActiveTraceScope scope(session);
    sim::RunOptions options;
    options.warmup = 5.0;
    options.batches = 2;
    options.batch_length = 20.0;
    options.seed = 3;
    (void)sim::run_switch(sim::Discipline::kFifo, {0.3, 0.3}, options);
  }
  EXPECT_EQ(obs::active_trace(), nullptr);
  ASSERT_GT(session.size(), 0u);

  const auto doc = jsonlite::parse_json(session.to_json());
  bool saw_packet = false, saw_station = false, saw_occupancy = false;
  for (const auto& event : doc.at("traceEvents").array) {
    const auto& category = event.at("cat").string;
    saw_packet |= category == "packet";
    saw_station |= category == "station";
    saw_occupancy |= category == "occupancy";
  }
  EXPECT_TRUE(saw_packet);
  EXPECT_TRUE(saw_station);
  EXPECT_TRUE(saw_occupancy);
}

TEST(Tracing, DisabledTracerHasZeroSideEffects) {
  ASSERT_EQ(obs::active_trace(), nullptr);
  obs::TraceSession session;  // never installed

  {
    GW_TRACE_SCOPE("test", "should-not-record");
    sim::RunOptions options;
    options.warmup = 5.0;
    options.batches = 2;
    options.batch_length = 20.0;
    (void)sim::run_switch(sim::Discipline::kFifo, {0.3}, options);
  }
  EXPECT_EQ(session.size(), 0u);
  EXPECT_EQ(session.dropped(), 0u);
}

TEST(Tracing, ScopedTraceRecordsWallClockSpan) {
  obs::TraceSession session;
  {
    const obs::ActiveTraceScope scope(session);
    GW_TRACE_SCOPE("test", "span");
  }
  ASSERT_EQ(session.size(), 1u);
  const auto doc = jsonlite::parse_json(session.to_json());
  const auto& event = doc.at("traceEvents").array.at(0);
  EXPECT_EQ(event.at("ph").string, "X");
  EXPECT_EQ(event.at("name").string, "span");
  EXPECT_GE(event.at("dur").number, 0.0);
}

TEST(Tracing, WrittenFileParsesBack) {
  obs::TraceSession session;
  session.instant("c", "e", 1.0);
  const std::string path = ::testing::TempDir() + "gw_trace_roundtrip.json";
  ASSERT_TRUE(session.write_file(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto doc = jsonlite::parse_json(buffer.str());
  EXPECT_EQ(doc.at("traceEvents").array.size(), 1u);
  std::remove(path.c_str());
}

// ------------------------------------------- concurrent counter stress

TEST(RegistryConcurrency, CountersAreExactUnderContention) {
  // Many threads hammer a mix of shared and private counters while others
  // concurrently register new names. Run under TSan (the CI tsan job) this
  // doubles as a data-race check on the registry's hot path.
  obs::Registry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  auto& shared = registry.counter("stress.shared");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &shared, t] {
      auto& mine =
          registry.counter("stress.private." + std::to_string(t));
      for (int i = 0; i < kIncrements; ++i) {
        shared.inc();
        mine.inc(2);
        if (i % 1024 == 0) {
          // Interleave registration traffic with increments.
          (void)registry.counter("stress.registered." + std::to_string(t) +
                                 "." + std::to_string(i));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(shared.value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.counter("stress.private." + std::to_string(t)).value(),
              static_cast<std::uint64_t>(kIncrements) * 2u);
  }
}

TEST(RegistryConcurrency, SimulatorsShareTheEventsProcessedCounter) {
  // The simulator binds a per-instance handle to the registry counter at
  // construction (no function-local static), so concurrent simulators
  // accumulate into the same metric without racing on initialization.
  obs::default_registry().reset();
  constexpr int kSims = 4;
  constexpr int kEvents = 500;
  std::vector<std::thread> threads;
  threads.reserve(kSims);
  for (int s = 0; s < kSims; ++s) {
    threads.emplace_back([] {
      sim::Simulator simulator;
      for (int i = 0; i < kEvents; ++i) {
        simulator.schedule_at(static_cast<double>(i), [] {});
      }
      simulator.run_until(static_cast<double>(kEvents));
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(obs::default_registry().counter("sim.events_processed").value(),
            static_cast<std::uint64_t>(kSims) * kEvents);
}

// ------------------------------------------------- QueueTracker fix

TEST(QueueTrackerQuantiles, ZeroDepartureSafePath) {
  sim::QueueTracker tracker(2);
  EXPECT_THROW((void)tracker.delay_quantile(0, 0.5), std::logic_error);
  EXPECT_THROW((void)tracker.try_delay_quantile(0, 0.5), std::logic_error);

  tracker.enable_delay_histograms(10.0, 16);
  tracker.on_departure(0, 1.0);
  // User 0 departed: real quantile. User 1 never did: sentinel, not garbage.
  EXPECT_TRUE(tracker.try_delay_quantile(0, 0.5).has_value());
  EXPECT_FALSE(tracker.try_delay_quantile(1, 0.5).has_value());
  EXPECT_TRUE(std::isnan(tracker.delay_quantile(1, 0.5)));
  EXPECT_GT(tracker.delay_quantile(0, 0.5), 0.0);
}

}  // namespace
