// Shared harness for the experiment binaries: console formatting plus
// machine-readable telemetry.
//
// Every banner/table/verdict printed to the console is also recorded, and
// when the binary runs with `--json <path>` the whole transcript — every
// experiment, table, verdict, and the obs::default_registry() metrics
// snapshot — is serialized to a structured bench_results.json
// (schema "gw.bench.v1"). A typical main:
//
//   int main(int argc, char** argv) {
//     gw::bench::parse_args(argc, argv);
//     gw::bench::banner("E-FOO", "Theorem 1", "claim...");
//     ...tables and verdicts...
//     return gw::bench::finish();
//   }
#pragma once

#include <string>
#include <vector>

namespace gw::bench {

/// Recognizes `--json <path>` (and `--json=<path>`); other arguments are
/// ignored so binaries stay forward-compatible with new flags.
void parse_args(int argc, char** argv);

/// Prints the experiment banner (id, paper reference, claim under test)
/// and opens a new experiment record in the telemetry transcript.
void banner(const std::string& experiment_id, const std::string& paper_ref,
            const std::string& claim);

/// Prints a table header / row with fixed-width columns. A header starts a
/// new recorded table; rows append to the most recent one.
void table_header(const std::vector<std::string>& columns);
void table_row(const std::vector<std::string>& cells);

/// Formats a double compactly ("0.1235", "inf").
[[nodiscard]] std::string fmt(double value, int precision = 4);

/// Prints a PASS/FAIL verdict line for the qualitative shape check.
void verdict(bool pass, const std::string& description);

/// Returns the number of verdicts that failed so far (process exit code).
[[nodiscard]] int failures();

/// Writes the JSON telemetry when --json was given, then returns
/// failures(); benches `return` this from main.
[[nodiscard]] int finish();

}  // namespace gw::bench
