#include "numerics/matrix.hpp"

#include <cmath>
#include <ostream>
#include <stdexcept>

namespace gw::numerics {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows_ * cols_) {
    throw std::invalid_argument("Matrix: data size does not match shape");
  }
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);  // assign reuses capacity when sufficient
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix += shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix -= shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) noexcept {
  for (auto& value : data_) value *= scalar;
  return *this;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

double Matrix::max_abs() const noexcept {
  double best = 0.0;
  for (const double value : data_) best = std::max(best, std::abs(value));
  return best;
}

double Matrix::trace() const {
  if (rows_ != cols_) throw std::invalid_argument("trace of non-square matrix");
  double sum = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) sum += (*this)(i, i);
  return sum;
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }

Matrix operator*(const Matrix& lhs, const Matrix& rhs) {
  if (lhs.cols() != rhs.rows()) {
    throw std::invalid_argument("Matrix * shape mismatch");
  }
  Matrix out(lhs.rows(), rhs.cols());
  for (std::size_t i = 0; i < lhs.rows(); ++i) {
    for (std::size_t k = 0; k < lhs.cols(); ++k) {
      const double a = lhs(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols(); ++j) {
        out(i, j) += a * rhs(k, j);
      }
    }
  }
  return out;
}

Matrix operator*(double scalar, Matrix m) noexcept { return m *= scalar; }

std::vector<double> operator*(const Matrix& m, const std::vector<double>& v) {
  if (m.cols() != v.size()) {
    throw std::invalid_argument("Matrix * vector shape mismatch");
  }
  std::vector<double> out(m.rows(), 0.0);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) out[i] += m(i, j) * v[j];
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < m.cols(); ++c) {
      os << m(r, c) << (c + 1 < m.cols() ? ", " : "");
    }
    os << (r + 1 < m.rows() ? ";\n" : "]");
  }
  return os;
}

Matrix matrix_power(const Matrix& a, unsigned k) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("matrix_power of non-square matrix");
  }
  Matrix result = Matrix::identity(a.rows());
  Matrix base = a;
  while (k != 0) {
    if (k & 1u) result = result * base;
    k >>= 1u;
    if (k != 0) base = base * base;
  }
  return result;
}

Lu lu_decompose(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("lu_decompose of non-square matrix");
  }
  const std::size_t n = a.rows();
  Lu out{a, std::vector<std::size_t>(n), 1, false};
  for (std::size_t i = 0; i < n; ++i) out.perm[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::abs(out.lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(out.lu(r, col));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best == 0.0) {
      out.singular = true;
      continue;
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(out.lu(pivot, c), out.lu(col, c));
      }
      std::swap(out.perm[pivot], out.perm[col]);
      out.sign = -out.sign;
    }
    const double inv_pivot = 1.0 / out.lu(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = out.lu(r, col) * inv_pivot;
      out.lu(r, col) = factor;
      for (std::size_t c = col + 1; c < n; ++c) {
        out.lu(r, c) -= factor * out.lu(col, c);
      }
    }
  }
  return out;
}

std::vector<double> lu_solve(const Lu& factorization,
                             const std::vector<double>& b) {
  if (factorization.singular) {
    throw std::domain_error("lu_solve: singular matrix");
  }
  const std::size_t n = factorization.lu.rows();
  if (b.size() != n) throw std::invalid_argument("lu_solve: size mismatch");
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[factorization.perm[i]];
  // Forward substitution (L has unit diagonal).
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) x[i] -= factorization.lu(i, j) * x[j];
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n; ++j) {
      x[ii] -= factorization.lu(ii, j) * x[j];
    }
    x[ii] /= factorization.lu(ii, ii);
  }
  return x;
}

double determinant(const Matrix& a) {
  const Lu factorization = lu_decompose(a);
  if (factorization.singular) return 0.0;
  double det = factorization.sign;
  for (std::size_t i = 0; i < a.rows(); ++i) det *= factorization.lu(i, i);
  return det;
}

Matrix inverse(const Matrix& a) {
  const Lu factorization = lu_decompose(a);
  if (factorization.singular) throw std::domain_error("inverse: singular");
  const std::size_t n = a.rows();
  Matrix out(n, n);
  std::vector<double> e(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    e[c] = 1.0;
    const auto column = lu_solve(factorization, e);
    for (std::size_t r = 0; r < n; ++r) out(r, c) = column[r];
    e[c] = 0.0;
  }
  return out;
}

}  // namespace gw::numerics
