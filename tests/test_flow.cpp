// Continuous-time gradient play: the ODE integrator and the stability
// contrast with the discrete synchronous-Newton dynamics (Theorem 7).
#include "core/flow.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/closed_forms.hpp"
#include "core/fair_share.hpp"
#include "core/nash.hpp"
#include "core/proportional.hpp"
#include "numerics/ode.hpp"

namespace gw {
namespace {

using core::make_linear;
using core::uniform_profile;

TEST(Rk4, ExponentialDecayExact) {
  const auto result = numerics::rk4_integrate(
      [](double, const std::vector<double>& y) {
        return std::vector<double>{-y[0]};
      },
      {1.0}, 0.0, 2.0);
  EXPECT_NEAR(result.final_state()[0], std::exp(-2.0), 1e-8);
}

TEST(Rk4, HarmonicOscillatorEnergyConserved) {
  const auto result = numerics::rk4_integrate(
      [](double, const std::vector<double>& y) {
        return std::vector<double>{y[1], -y[0]};
      },
      {1.0, 0.0}, 0.0, 10.0);
  const auto& y = result.final_state();
  EXPECT_NEAR(y[0] * y[0] + y[1] * y[1], 1.0, 1e-6);
  EXPECT_NEAR(y[0], std::cos(10.0), 1e-5);
}

TEST(Rk4, EquilibriumStopFires) {
  numerics::OdeOptions options;
  options.field_tolerance = 1e-6;
  const auto result = numerics::rk4_integrate(
      [](double, const std::vector<double>& y) {
        return std::vector<double>{-5.0 * y[0]};
      },
      {1.0}, 0.0, 100.0, options);
  EXPECT_TRUE(result.reached_equilibrium);
  EXPECT_LT(result.times.back(), 10.0);
}

TEST(Rk4, ProjectionHookApplied) {
  const auto result = numerics::rk4_integrate(
      [](double, const std::vector<double>&) {
        return std::vector<double>{1.0};  // constant upward drift
      },
      {0.0}, 0.0, 5.0, {},
      [](std::vector<double>& y) { y[0] = std::min(y[0], 1.0); });
  EXPECT_NEAR(result.final_state()[0], 1.0, 1e-12);
}

TEST(Rk4, BadArgumentsThrow) {
  const auto field = [](double, const std::vector<double>& y) { return y; };
  EXPECT_THROW((void)numerics::rk4_integrate(field, {1.0}, 1.0, 0.0),
               std::invalid_argument);
}

TEST(GradientFlow, FsConvergesToNash) {
  const core::FairShareAllocation alloc;
  const auto profile = uniform_profile(make_linear(1.0, 0.25), 3);
  const auto flow = core::gradient_flow(alloc, profile, {0.05, 0.2, 0.4});
  const auto expected = core::fs_linear_symmetric_nash(0.25, 3);
  EXPECT_TRUE(flow.converged);
  for (const double r : flow.final_rates) {
    EXPECT_NEAR(r, expected.rate, 1e-4);
  }
}

TEST(GradientFlow, FifoConvergesWhereSynchronousNewtonDiverges) {
  // The headline contrast: at N = 4 the synchronous Newton dynamics are
  // linearly unstable under FIFO (|1 - N| like eigenvalue), yet the
  // continuous-time gradient flow of the very same game converges — the
  // instability is a property of the discretization (large simultaneous
  // steps), exactly the "time constants" caveat of Section 4.2.2.
  const core::ProportionalAllocation alloc;
  const std::size_t n = 4;
  const auto profile = uniform_profile(make_linear(1.0, 0.25), n);
  const auto expected = core::fifo_linear_symmetric_nash(0.25, n);

  core::FlowOptions options;
  options.t_end = 400.0;
  const auto flow = core::gradient_flow(
      alloc, profile, std::vector<double>(n, 0.05), options);
  EXPECT_TRUE(flow.converged);
  for (const double r : flow.final_rates) {
    EXPECT_NEAR(r, expected.rate, 1e-3);
  }

  // And the discrete Newton dynamics from a nearby point do NOT converge.
  std::vector<double> start(n, expected.rate);
  start[0] *= 1.03;
  start[1] *= 0.97;
  const auto newton = core::newton_relaxation(alloc, profile, start, 40,
                                              1e-8);
  EXPECT_FALSE(newton.converged);
}

TEST(GradientFlow, EscapesSaturatedStart) {
  // Starting beyond capacity, the back-off drift restores feasibility and
  // the flow still finds the Nash point.
  const core::FairShareAllocation alloc;
  const auto profile = uniform_profile(make_linear(1.0, 0.25), 2);
  core::FlowOptions options;
  options.t_end = 400.0;
  const auto flow = core::gradient_flow(alloc, profile, {0.9, 0.8}, options);
  const auto expected = core::fs_linear_symmetric_nash(0.25, 2);
  EXPECT_TRUE(flow.converged);
  for (const double r : flow.final_rates) {
    EXPECT_NEAR(r, expected.rate, 1e-3);
  }
}

TEST(GradientFlow, HeterogeneousUsersOrderedByDelayAversion) {
  const core::FairShareAllocation alloc;
  const core::UtilityProfile profile{make_linear(1.0, 0.15),
                                     make_linear(1.0, 0.35),
                                     make_linear(1.0, 0.7)};
  const auto flow = core::gradient_flow(alloc, profile, {0.2, 0.2, 0.2});
  EXPECT_TRUE(flow.converged);
  EXPECT_GT(flow.final_rates[0], flow.final_rates[1]);
  EXPECT_GT(flow.final_rates[1], flow.final_rates[2]);
  // Flow equilibrium == best-response equilibrium.
  const auto nash = core::solve_nash(alloc, profile, {0.1, 0.1, 0.1});
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(flow.final_rates[i], nash.rates[i], 1e-3);
  }
}

}  // namespace
}  // namespace gw
