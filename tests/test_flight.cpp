// FlightJournal / FlightRecorder: span lifecycle, ring wraparound,
// escalation dumps (including exactly-once under the exec pool), and the
// disabled fast path's lack of side effects.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/flight.hpp"
#include "obs/json_parse.hpp"

namespace {

using gw::obs::ActiveFlightScope;
using gw::obs::FlightJournal;
using gw::obs::FlightOptions;
using gw::obs::FlightRecorder;
using gw::obs::FlightRung;
using gw::obs::JsonValue;
using gw::obs::parse_json;

std::vector<JsonValue> parse_lines(const std::string& jsonl) {
  std::vector<JsonValue> lines;
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(parse_json(line));
  }
  return lines;
}

std::string unique_dir(const std::string& name) {
  return ::testing::TempDir() + "gw_flight_" +
         std::to_string(static_cast<long>(::getpid())) + "_" + name;
}

TEST(Flight, JournalRecordsSpanAsSolvetraceV1) {
  FlightJournal journal;
  ActiveFlightScope scope(journal);
  {
    auto flight = FlightRecorder::begin("test.span", 4, FlightRung::kRelax);
    ASSERT_TRUE(flight.armed());
    EXPECT_EQ(flight.id(), 1u);
    flight.iteration(0.5, 0.1, 1.0, 2);
    flight.iteration(0.05, 0.01, 1.0, 2);
    flight.verdict(true, 0.05);
  }
  EXPECT_EQ(journal.solves(), 1u);
  EXPECT_EQ(journal.recorded(), 4u);  // begin + 2 iters + verdict

  const auto lines = parse_lines(journal.to_jsonl());
  ASSERT_GE(lines.size(), 5u);
  EXPECT_EQ(lines[0].at("schema").string, "gw.solvetrace.v1");
  EXPECT_DOUBLE_EQ(lines[0].at("solves").number, 1.0);
  EXPECT_EQ(lines[1].at("t").string, "begin");
  EXPECT_EQ(lines[1].at("label").string, "test.span");
  EXPECT_DOUBLE_EQ(lines[1].at("users").number, 4.0);
  EXPECT_EQ(lines[1].at("rung").string, "relax");
  EXPECT_EQ(lines[2].at("t").string, "iter");
  EXPECT_DOUBLE_EQ(lines[2].at("residual").number, 0.5);
  EXPECT_DOUBLE_EQ(lines[2].at("active_set").number, 2.0);
  EXPECT_EQ(lines[4].at("t").string, "event");
  EXPECT_EQ(lines[4].at("kind").string, "verdict");
  EXPECT_TRUE(lines[4].at("converged").boolean);
}

TEST(Flight, NestedBeginJoinsTheOpenSpan) {
  FlightJournal journal;
  ActiveFlightScope scope(journal);
  {
    auto outer = FlightRecorder::begin("outer", 8, FlightRung::kNone);
    const std::uint32_t id = outer.id();
    {
      // A core engine called inside the control-plane span: same solve id,
      // no second begin event, and destruction keeps the span open.
      auto inner = FlightRecorder::begin("inner", 8, FlightRung::kNewton);
      EXPECT_EQ(inner.id(), id);
      inner.iteration(0.1, 0.2, 1.0, 0);
    }
    outer.iteration(0.01, 0.02, 1.0, 0);  // still recording after join ends
    outer.verdict(true, 0.01);
  }
  EXPECT_EQ(journal.solves(), 1u);
  std::size_t begins = 0;
  for (const auto& line : parse_lines(journal.to_jsonl())) {
    if (line.has("t") && line.at("t").string == "begin") ++begins;
  }
  EXPECT_EQ(begins, 1u);

  // The span closed with the outer recorder: a fresh begin opens a new one.
  auto next = FlightRecorder::begin("next", 1);
  EXPECT_EQ(next.id(), 2u);
}

TEST(Flight, RingWraparoundKeepsTheNewestRecords) {
  FlightOptions options;
  options.ring_capacity = 8;
  FlightJournal journal(options);
  ActiveFlightScope scope(journal);
  {
    auto flight = FlightRecorder::begin("wrap", 1);
    for (int i = 0; i < 20; ++i) {
      flight.iteration(1.0 / (i + 1), 0.0, 1.0, 0);
    }
  }
  // begin + 20 iterations = 21 appends into 8 slots.
  EXPECT_EQ(journal.recorded(), 8u);
  EXPECT_EQ(journal.overwritten(), 13u);

  // Survivors are the newest 8 records in chronological order: iterates
  // 12..19 (the begin event and iterates 0..11 were overwritten).
  const auto lines = parse_lines(journal.to_jsonl());
  std::vector<double> iterates;
  for (const auto& line : lines) {
    if (line.has("t") && line.at("t").string == "iter") {
      iterates.push_back(line.at("i").number);
    }
  }
  ASSERT_EQ(iterates.size(), 8u);
  for (std::size_t k = 1; k < iterates.size(); ++k) {
    EXPECT_EQ(iterates[k], iterates[k - 1] + 1.0) << "gap at " << k;
  }
  EXPECT_EQ(iterates.back(), 19.0);
}

TEST(Flight, ClearEmptiesRingsAndKeepsRecording) {
  FlightJournal journal;
  ActiveFlightScope scope(journal);
  {
    auto flight = FlightRecorder::begin("first", 1);
    flight.iteration(0.1, 0.1, 1.0, 0);
  }
  ASSERT_GT(journal.recorded(), 0u);
  journal.clear();
  EXPECT_EQ(journal.recorded(), 0u);
  EXPECT_EQ(journal.overwritten(), 0u);
  {
    auto flight = FlightRecorder::begin("second", 1);
    flight.iteration(0.2, 0.2, 1.0, 0);
  }
  EXPECT_EQ(journal.recorded(), 2u);  // the new span's begin + iteration
}

TEST(Flight, NoJournalMeansDisarmedRecorderAndNoSideEffects) {
  ASSERT_EQ(gw::obs::active_flight(), nullptr);
  auto flight = FlightRecorder::begin("off", 128, FlightRung::kSolve);
  EXPECT_FALSE(flight.armed());
  EXPECT_EQ(flight.id(), 0u);
  // Every record call must be an inert branch.
  flight.rung(FlightRung::kNewton);
  flight.iteration(0.1, 0.2, 0.3, 4);
  flight.backtrack(0.5);
  flight.escalation(FlightRung::kFullSolve, 0.1);
  flight.verdict(true, 0.0);

  // A journal installed afterwards sees none of it.
  FlightJournal journal;
  ActiveFlightScope scope(journal);
  EXPECT_EQ(journal.recorded(), 0u);
  EXPECT_EQ(journal.solves(), 0u);
}

TEST(Flight, EscalationWritesExactlyOneDumpForTheSolve) {
  const std::string dir = unique_dir("dump");
  std::filesystem::remove_all(dir);
  FlightOptions options;
  options.dump_dir = dir;
  FlightJournal journal(options);
  ActiveFlightScope scope(journal);
  std::uint32_t id = 0;
  {
    auto flight = FlightRecorder::begin("ctrl.repair", 16, FlightRung::kRelax);
    id = flight.id();
    flight.iteration(0.9, 0.5, 1.0, 1);
    flight.escalation(FlightRung::kFullSolve, 0.9);
    flight.iteration(0.001, 0.0005, 1.0, 0);
    flight.verdict(true, 0.001);
  }
  EXPECT_EQ(journal.dumps(), 1u);

  const std::string dump_path =
      dir + "/solvetrace-" + std::to_string(id) + ".jsonl";
  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good()) << "missing dump " << dump_path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto lines = parse_lines(buffer.str());
  ASSERT_GE(lines.size(), 3u);
  EXPECT_TRUE(lines[0].at("escalation_dump").boolean);
  EXPECT_DOUBLE_EQ(lines[0].at("solve").number, static_cast<double>(id));
  // The dump holds only this solve's records, up to the escalation point.
  for (std::size_t k = 1; k < lines.size(); ++k) {
    EXPECT_DOUBLE_EQ(lines[k].at("solve").number, static_cast<double>(id));
  }
  std::filesystem::remove_all(dir);
}

TEST(Flight, PoolDispatchedEscalationsDumpExactlyOncePerSolve) {
  const std::string dir = unique_dir("pool");
  std::filesystem::remove_all(dir);
  FlightOptions options;
  options.dump_dir = dir;
  FlightJournal journal(options);
  ActiveFlightScope scope(journal);

  // One independent escalating solve per work item, dispatched across the
  // pool exactly as SolverShard::repair runs. Run under TSan this also
  // checks that per-thread rings and concurrent dumps do not race.
  constexpr std::size_t kSolves = 32;
  gw::exec::ThreadPool pool(4);
  std::atomic<std::size_t> completed{0};
  pool.parallel_for(kSolves, [&](std::size_t) {
    auto flight = FlightRecorder::begin("pool.repair", 8, FlightRung::kRelax);
    flight.iteration(0.7, 0.3, 1.0, 0);
    flight.escalation(FlightRung::kFullSolve, 0.7);
    flight.verdict(true, 1e-9);
    completed.fetch_add(1, std::memory_order_relaxed);
  });
  ASSERT_EQ(completed.load(), kSolves);
  EXPECT_EQ(journal.solves(), kSolves);
  EXPECT_EQ(journal.dumps(), kSolves);

  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++files;
    EXPECT_NE(entry.path().filename().string().find("solvetrace-"),
              std::string::npos);
  }
  EXPECT_EQ(files, kSolves);
  std::filesystem::remove_all(dir);
}

TEST(Flight, RungAndEventNamesAreStable) {
  using gw::obs::flight_event_name;
  using gw::obs::flight_rung_name;
  EXPECT_STREQ(flight_rung_name(FlightRung::kSingleUser), "single_user");
  EXPECT_STREQ(flight_rung_name(FlightRung::kFullSolve), "full_solve");
  EXPECT_STREQ(flight_rung_name(FlightRung::kDriver), "driver");
  EXPECT_STREQ(flight_event_name(gw::obs::FlightEvent::kEscalation),
               "escalation");
  EXPECT_STREQ(flight_event_name(gw::obs::FlightEvent::kDirtyGate),
               "dirty_gate");
}

}  // namespace
