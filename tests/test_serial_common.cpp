// Unit tests for the shared serial-discipline helpers (serial_common.hpp):
// the sort/rank/gather/serial-load building blocks deduplicated out of
// FairShare, GeneralSerial and the priority allocations.
#include "core/serial_common.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "numerics/rng.hpp"

namespace gw::core::serial {
namespace {

TEST(SerialCommon, SortedOrderAscending) {
  const std::vector<double> keys{0.4, 0.1, 0.3, 0.2};
  std::vector<std::size_t> order(4);
  sorted_order_into(keys, order);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 3, 2, 0}));
}

TEST(SerialCommon, SortedOrderBreaksTiesByIndex) {
  const std::vector<double> keys{0.2, 0.1, 0.2, 0.1};
  std::vector<std::size_t> order(4);
  sorted_order_into(keys, order);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 3, 0, 2}));
}

TEST(SerialCommon, RankIsInverseOfOrder) {
  numerics::Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(16);
    std::vector<double> keys(n);
    for (auto& k : keys) k = rng.uniform(0.0, 1.0);
    std::vector<std::size_t> order(n), rank(n);
    sorted_order_into(keys, order);
    rank_from_order(order, rank);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_EQ(rank[order[k]], k);
      EXPECT_EQ(order[rank[k]], k);
    }
  }
}

TEST(SerialCommon, GatherAppliesOrder) {
  const std::vector<double> values{0.4, 0.1, 0.3};
  std::vector<std::size_t> order(3);
  std::vector<double> sorted(3);
  sorted_order_into(values, order);
  gather_into(values, order, sorted);
  EXPECT_EQ(sorted, (std::vector<double>{0.1, 0.3, 0.4}));
}

TEST(SerialCommon, SerialLoadsMatchDefinition) {
  // S_k = (n - k) * sorted[k] + sum_{m<k} sorted[m] (0-indexed ranks).
  const std::vector<double> sorted{0.1, 0.2, 0.4};
  std::vector<double> serial(3);
  serial_loads_into(sorted, serial);
  EXPECT_DOUBLE_EQ(serial[0], 3 * 0.1);
  EXPECT_DOUBLE_EQ(serial[1], 2 * 0.2 + 0.1);
  EXPECT_DOUBLE_EQ(serial[2], 1 * 0.4 + 0.1 + 0.2);
}

TEST(SerialCommon, SerialLoadsAreNondecreasing) {
  numerics::Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(24);
    std::vector<double> rates(n);
    for (auto& r : rates) r = rng.uniform(0.0, 0.2);
    std::vector<std::size_t> order(n);
    std::vector<double> sorted(n), serial(n);
    sort_and_serial_loads(rates, order, sorted, serial);
    for (std::size_t k = 1; k < n; ++k) {
      EXPECT_GE(serial[k], serial[k - 1] - 1e-15);
    }
    // The last serial load is the total rate.
    double total = 0.0;
    for (const double r : rates) total += r;
    EXPECT_NEAR(serial[n - 1], total, 1e-12);
  }
}

TEST(SerialCommon, SuffixSumsMatchDefinition) {
  // suffix[m] = sum of values[order[q]] for q >= m, suffix[n] = 0, and the
  // accumulation is right-to-left so each entry is exactly one add away
  // from its neighbour (the order weighted serial loads depend on).
  const std::vector<double> values{2.0, 1.0, 4.0};
  const std::vector<std::size_t> order{1, 0, 2};
  std::vector<double> suffix(4, -1.0);
  suffix_sums_into(values, order, suffix);
  EXPECT_EQ(suffix[3], 0.0);
  EXPECT_EQ(suffix[2], 4.0);
  EXPECT_EQ(suffix[1], 4.0 + 2.0);
  EXPECT_EQ(suffix[0], (4.0 + 2.0) + 1.0);
}

TEST(SerialCommon, SuffixSumsRandomizedAgainstNaive) {
  numerics::Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(32);
    std::vector<double> values(n);
    for (auto& v : values) v = rng.uniform(0.1, 2.0);
    std::vector<std::size_t> order(n);
    sorted_order_into(values, order);
    std::vector<double> suffix(n + 1);
    suffix_sums_into(values, order, suffix);
    for (std::size_t m = 0; m <= n; ++m) {
      // Reproduce the right-to-left accumulation exactly.
      double acc = 0.0;
      for (std::size_t q = n; q > m; --q) acc += values[order[q - 1]];
      EXPECT_EQ(suffix[m], acc) << "n=" << n << " m=" << m;
    }
  }
}

TEST(SerialCommon, ScanInsertionPosCountsLexSmaller) {
  // Opponents of user i = 2 staged as (key, index) pairs; the insertion
  // position of x is the count of opponents with (key, j) < (x, 2).
  const std::vector<double> keys{0.1, 0.2, 0.2, 0.4};
  const std::vector<std::size_t> idx{3, 1, 5, 0};
  EXPECT_EQ(scan_insertion_pos(keys, idx, 0.05, 2), 0u);
  EXPECT_EQ(scan_insertion_pos(keys, idx, 0.1, 2), 0u);   // tie, idx 3 > 2
  EXPECT_EQ(scan_insertion_pos(keys, idx, 0.15, 2), 1u);
  EXPECT_EQ(scan_insertion_pos(keys, idx, 0.2, 2), 2u);   // ties: idx 1 < 2 < 5
  EXPECT_EQ(scan_insertion_pos(keys, idx, 0.3, 2), 3u);
  EXPECT_EQ(scan_insertion_pos(keys, idx, 0.5, 2), 4u);
}

TEST(SerialCommon, ScanSortOpponentsMatchesFullSort) {
  // Dropping user i from the (rate, index) sort of all users must give the
  // staged opponent order — same comparator, one element removed.
  numerics::Rng rng(29);
  EvalWorkspace ws;
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.uniform_index(16);
    std::vector<double> rates(n);
    for (auto& r : rates) r = rng.uniform(0.0, 0.3);
    if (rng.bernoulli(0.5)) rates[0] = rates[n - 1];  // tie across the drop
    const std::size_t i = rng.uniform_index(n);
    const std::size_t count = scan_sort_opponents(rates, i, ws);
    ASSERT_EQ(count, n - 1);
    std::vector<std::size_t> full(n);
    sorted_order_into(rates, full);
    std::size_t m = 0;
    for (std::size_t k = 0; k < n; ++k) {
      if (full[k] == i) continue;
      EXPECT_EQ(ws.scan_index(count)[m], full[k]) << "n=" << n << " m=" << m;
      EXPECT_EQ(ws.scan_keys(count)[m], rates[full[k]]);
      ++m;
    }
    EXPECT_EQ(ws.scan.n, n);
    EXPECT_EQ(ws.scan.i, i);
    EXPECT_EQ(ws.scan.count, count);
  }
}

TEST(SerialCommon, CombinedHelperMatchesPieces) {
  numerics::Rng rng(17);
  const std::size_t n = 9;
  std::vector<double> rates(n);
  for (auto& r : rates) r = rng.uniform(0.0, 0.1);
  rates[3] = rates[7];  // exercise the tie path

  std::vector<std::size_t> order_a(n), order_b(n);
  std::vector<double> sorted_a(n), sorted_b(n), serial_a(n), serial_b(n);
  sort_and_serial_loads(rates, order_a, sorted_a, serial_a);
  sorted_order_into(rates, order_b);
  gather_into(rates, order_b, sorted_b);
  serial_loads_into(sorted_b, serial_b);
  EXPECT_EQ(order_a, order_b);
  EXPECT_EQ(sorted_a, sorted_b);
  EXPECT_EQ(serial_a, serial_b);
}

}  // namespace
}  // namespace gw::core::serial
