#include "core/mixture.hpp"

#include <cmath>
#include <stdexcept>

namespace gw::core {

MixtureAllocation::MixtureAllocation(double theta) : theta_(theta) {
  if (!(theta >= 0.0 && theta <= 1.0)) {
    throw std::invalid_argument("MixtureAllocation: theta must be in [0,1]");
  }
}

std::string MixtureAllocation::name() const {
  return "Mixture(theta=" + std::to_string(theta_) + ")";
}

std::vector<double> MixtureAllocation::congestion(
    const std::vector<double>& rates) const {
  auto a = proportional_.congestion(rates);
  const auto b = fair_share_.congestion(rates);
  for (std::size_t i = 0; i < a.size(); ++i) {
    // inf * 0 must not produce NaN for degenerate thetas.
    if (theta_ == 0.0) {
      a[i] = b[i];
    } else if (theta_ == 1.0) {
      // keep a[i]
    } else {
      a[i] = theta_ * a[i] + (1.0 - theta_) * b[i];
    }
  }
  return a;
}

double MixtureAllocation::partial(std::size_t i, std::size_t j,
                                  const std::vector<double>& rates) const {
  if (theta_ == 0.0) return fair_share_.partial(i, j, rates);
  if (theta_ == 1.0) return proportional_.partial(i, j, rates);
  return theta_ * proportional_.partial(i, j, rates) +
         (1.0 - theta_) * fair_share_.partial(i, j, rates);
}

double MixtureAllocation::second_partial(std::size_t i, std::size_t j,
                                         const std::vector<double>& rates) const {
  if (theta_ == 0.0) return fair_share_.second_partial(i, j, rates);
  if (theta_ == 1.0) return proportional_.second_partial(i, j, rates);
  return theta_ * proportional_.second_partial(i, j, rates) +
         (1.0 - theta_) * fair_share_.second_partial(i, j, rates);
}

}  // namespace gw::core
