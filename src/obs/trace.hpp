// Event tracing in Chrome trace-event format (Perfetto-compatible).
//
// A TraceSession buffers trace events and serializes them as the JSON
// array format understood by Perfetto (https://ui.perfetto.dev) and
// chrome://tracing. Three event shapes cover the library's needs:
//
//   * complete(cat, name, ts, dur)  — a span ("X" event);
//   * instant(cat, name, ts)       — a point event ("i");
//   * counter(cat, name, ts, v)    — a counter track sample ("C").
//
// Timestamps are in microseconds. Library instrumentation uses *simulated*
// time scaled by 1e6 (one simulated second renders as one second in
// Perfetto); GW_TRACE_SCOPE spans use the wall clock — record the two into
// separate sessions.
//
// Tracing is off by default. Installing a session with set_active_trace()
// (or the RAII ActiveTraceScope) turns the instrumentation on; when no
// session is installed the hooks cost a single relaxed atomic load and a
// predictable branch, so instrumented hot paths stay within noise.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace gw::obs {

struct TraceOptions {
  /// Events beyond the cap are dropped (and counted) rather than growing
  /// the buffer without bound on long runs.
  std::size_t max_events = 4u << 20;
};

class TraceSession {
 public:
  explicit TraceSession(TraceOptions options = {});

  /// A span covering [ts_us, ts_us + dur_us].
  void complete(std::string_view category, std::string_view name,
                double ts_us, double dur_us);

  /// A point event; `arg_key`/`arg_value` become the event's args entry
  /// (pass an empty key for no args).
  void instant(std::string_view category, std::string_view name, double ts_us,
               std::string_view arg_key = {}, double arg_value = 0.0);

  /// One sample on the counter track `name` (Perfetto draws these as a
  /// step function).
  void counter(std::string_view category, std::string_view name, double ts_us,
               double value);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t dropped() const;

  /// Serializes {"traceEvents":[...]}; valid even while recording.
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const;

  void clear();

 private:
  struct Event {
    char phase;  ///< 'X', 'i', 'C'
    std::string category;
    std::string name;
    double ts_us;
    double dur_us;      ///< 'X' only
    std::string arg_key;  ///< empty: no args
    double arg_value;
  };

  void push(Event event);

  TraceOptions options_;
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::size_t dropped_ = 0;
};

namespace detail {
inline std::atomic<TraceSession*> g_active_trace{nullptr};
}  // namespace detail

/// The globally installed session, or nullptr when tracing is disabled.
/// Inline so the disabled-tracing fast path in instrumented hot paths is a
/// relaxed load + predictable branch, not a cross-TU call.
[[nodiscard]] inline TraceSession* active_trace() noexcept {
  return detail::g_active_trace.load(std::memory_order_relaxed);
}

/// Installs `session` as the global trace sink (nullptr disables tracing).
/// Returns the previously installed session.
inline TraceSession* set_active_trace(TraceSession* session) noexcept {
  return detail::g_active_trace.exchange(session, std::memory_order_release);
}

/// RAII: installs a session for the enclosing scope, restores the previous
/// one on exit.
class ActiveTraceScope {
 public:
  explicit ActiveTraceScope(TraceSession& session)
      : previous_(set_active_trace(&session)) {}
  ~ActiveTraceScope() { set_active_trace(previous_); }
  ActiveTraceScope(const ActiveTraceScope&) = delete;
  ActiveTraceScope& operator=(const ActiveTraceScope&) = delete;

 private:
  TraceSession* previous_;
};

/// Monotonic wall clock in microseconds (epoch: first call).
[[nodiscard]] std::uint64_t wall_now_us() noexcept;

/// Wall-clock span recorded into the active session (see GW_TRACE_SCOPE).
class ScopedTrace {
 public:
  ScopedTrace(const char* category, const char* name) noexcept
      : session_(active_trace()), category_(category), name_(name) {
    if (session_ != nullptr) start_us_ = wall_now_us();
  }
  ~ScopedTrace() {
    if (session_ != nullptr) {
      const auto now = static_cast<double>(wall_now_us());
      session_->complete(category_, name_, static_cast<double>(start_us_),
                         now - static_cast<double>(start_us_));
    }
  }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  TraceSession* session_;
  const char* category_;
  const char* name_;
  std::uint64_t start_us_ = 0;
};

}  // namespace gw::obs

#define GW_OBS_CONCAT_IMPL(a, b) a##b
#define GW_OBS_CONCAT(a, b) GW_OBS_CONCAT_IMPL(a, b)

/// Records a wall-clock span for the enclosing scope into the active
/// trace session; a single predictable branch when tracing is off.
#define GW_TRACE_SCOPE(category, name) \
  ::gw::obs::ScopedTrace GW_OBS_CONCAT(gw_trace_scope_, __LINE__)(category, \
                                                                  name)
