#include "learn/bandit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/closed_forms.hpp"
#include "core/fair_share.hpp"
#include "learn/driver.hpp"
#include "learn/hill_climber.hpp"

namespace gw::learn {
namespace {

TEST(SoftmaxBandit, FindsBestArmOnStaticBandit) {
  BanditOptions options;
  options.candidates = 21;
  options.r_min = 0.0;
  options.r_max = 1.0;
  SoftmaxBandit bandit(0.5, options);
  auto payoff = [](double r) { return -(r - 0.7) * (r - 0.7); };
  double rate = bandit.current_rate();
  for (int round = 0; round < 5000; ++round) {
    LearnerContext context;
    context.observed_utility = payoff(rate);
    rate = bandit.next_rate(context);
  }
  EXPECT_NEAR(bandit.greedy_rate(), 0.7, 0.06);
}

TEST(SoftmaxBandit, TemperatureCoolsAndFloors) {
  BanditOptions options;
  options.initial_temperature = 1.0;
  options.cooling = 0.5;
  options.min_temperature = 0.01;
  SoftmaxBandit bandit(0.3, options);
  LearnerContext context;
  context.observed_utility = 0.0;
  for (int round = 0; round < 50; ++round) (void)bandit.next_rate(context);
  EXPECT_NEAR(bandit.temperature(), 0.01, 1e-12);
}

TEST(SoftmaxBandit, ExploresEveryArmFirst) {
  BanditOptions options;
  options.candidates = 5;
  SoftmaxBandit bandit(0.0, options);
  std::set<double> seen;
  LearnerContext context;
  context.observed_utility = 1.0;
  seen.insert(bandit.current_rate());
  for (int round = 0; round < 4; ++round) {
    seen.insert(bandit.next_rate(context));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(SoftmaxBandit, ResetRestoresState) {
  SoftmaxBandit bandit(0.3);
  LearnerContext context;
  context.observed_utility = 1.0;
  (void)bandit.next_rate(context);
  bandit.reset(0.5);
  EXPECT_NEAR(bandit.current_rate(), 0.5, 0.05);
}

TEST(SoftmaxBandit, RejectsBadOptions) {
  BanditOptions options;
  options.candidates = 1;
  EXPECT_THROW(SoftmaxBandit(0.1, options), std::invalid_argument);
}

TEST(SoftmaxBandit, PopulationOnFairShareApproachesNash) {
  // Three bandits in the FS game: greedy choices concentrate near the
  // unique Nash rate (another 'reasonable' algorithm per Theorem 5).
  const auto alloc = std::make_shared<core::FairShareAllocation>();
  const auto profile =
      core::uniform_profile(core::make_linear(1.0, 0.25), 3);
  GameDriver driver(alloc, profile);
  std::vector<std::unique_ptr<Learner>> learners;
  std::vector<SoftmaxBandit*> bandits;
  for (int i = 0; i < 3; ++i) {
    BanditOptions options;
    options.candidates = 31;
    options.r_max = 0.6;
    options.cooling = 0.9997;
    options.ewma = 0.1;
    options.seed = 100 + i;
    auto bandit = std::make_unique<SoftmaxBandit>(0.1 + 0.1 * i, options);
    bandits.push_back(bandit.get());
    learners.push_back(std::move(bandit));
  }
  DriverOptions options;
  // Bandits keep exploring, so their payoff estimates mix opponents'
  // exploration noise; they need a long cooled tail during which near-
  // greedy play approximates mutual best response before the estimates
  // line up with the Nash point.
  options.max_rounds = 40000;
  (void)driver.run(learners, options);
  const auto expected = core::fs_linear_symmetric_nash(0.25, 3);
  for (const auto* bandit : bandits) {
    EXPECT_NEAR(bandit->greedy_rate(), expected.rate, 0.06);
  }
}

}  // namespace
}  // namespace gw::learn
