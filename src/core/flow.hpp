// Continuous-time gradient play (the continuous limit of incremental hill
// climbing, paper Section 4.2.2-4.2.3).
//
// Each user drifts up her own payoff gradient:
//   dr_i/dt = eta * dU_i/dr_i (r)
// projected onto the feasible box. The paper stresses that "the dynamics
// depend on the time constants used": strikingly, this continuous-time
// dynamic is locally stable at the symmetric FIFO Nash point (the flow
// Jacobian is -gamma[(D_diag - D_off) I + D_off J], negative definite)
// even though the SYNCHRONOUS NEWTON discretization is unstable for
// N > 2 (Theorem 7's example). The divergence is an artifact of large
// simultaneous steps, not of the vector field — bench_relaxation
// demonstrates both on the same game.
#pragma once

#include "core/allocation.hpp"
#include "core/utility.hpp"
#include "numerics/ode.hpp"

namespace gw::core {

struct FlowOptions {
  double eta = 1.0;       ///< common learning-rate scale
  double t_end = 200.0;
  double dt = 0.01;
  double r_min = 1e-6;
  double r_max = 0.98;
  double field_tolerance = 1e-9;  ///< equilibrium stop
  int record_stride = 100;
};

struct FlowResult {
  std::vector<double> times;
  std::vector<std::vector<double>> trajectory;
  std::vector<double> final_rates;
  bool converged = false;  ///< field magnitude fell below tolerance
};

/// Integrates gradient play from `start`. Users whose congestion is
/// infinite at the current point get a strong inward drift (they are
/// starving; any reduction of their own rate is an improvement only if it
/// restores feasibility, so we push them toward r_min).
[[nodiscard]] FlowResult gradient_flow(const AllocationFunction& alloc,
                                       const UtilityProfile& profile,
                                       std::vector<double> start,
                                       const FlowOptions& options = {});

}  // namespace gw::core
