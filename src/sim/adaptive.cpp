#include "sim/adaptive.hpp"

#include <stdexcept>

#include "sim/drr_station.hpp"
#include "sim/fair_share_station.hpp"
#include "sim/sfq_station.hpp"
#include "sim/sources.hpp"

namespace gw::sim {

AdaptiveResult run_adaptive(Discipline discipline,
                            const core::UtilityProfile& profile,
                            const std::vector<double>& initial_rates,
                            const LearnerFactory& factory,
                            const AdaptiveOptions& options) {
  const std::size_t n = profile.size();
  if (initial_rates.size() != n || n == 0) {
    throw std::invalid_argument("run_adaptive: size mismatch");
  }

  Simulator sim;
  QueueTracker tracker(n);

  // Build the switch. FairShare oracle mode is refreshed with the users'
  // current rates each epoch (the switch is told demand, as when hosts
  // declare their traffic class); the adaptive mode estimates them.
  std::unique_ptr<Station> station;
  FairShareStation* fair_share_oracle = nullptr;
  switch (discipline) {
    case Discipline::kFifo:
      station = std::make_unique<FifoStation>(sim, tracker);
      break;
    case Discipline::kLifoPreempt:
      station = std::make_unique<LifoPreemptStation>(sim, tracker);
      break;
    case Discipline::kProcessorSharing:
      station = std::make_unique<PsStation>(sim, tracker);
      break;
    case Discipline::kFairShareOracle: {
      auto fs = std::make_unique<FairShareStation>(sim, tracker, initial_rates,
                                                   options.seed ^ 0xf5ULL);
      fair_share_oracle = fs.get();
      station = std::move(fs);
      break;
    }
    case Discipline::kFairShareAdaptive:
      station = std::make_unique<FairShareStation>(
          sim, tracker, n, options.estimator_tau, options.rebuild_interval,
          options.seed ^ 0xadULL);
      break;
    case Discipline::kDrr:
      station = std::make_unique<DrrStation>(sim, tracker, n,
                                             options.drr_quantum);
      break;
    case Discipline::kSfq:
      station = std::make_unique<SfqStation>(sim, tracker, n);
      break;
    case Discipline::kRatePriority:
      throw std::invalid_argument(
          "run_adaptive: RatePriority needs static rates; use run_switch");
  }

  std::vector<std::unique_ptr<PoissonSource>> sources;
  numerics::Rng seeder(options.seed);
  for (std::size_t u = 0; u < n; ++u) {
    sources.push_back(std::make_unique<PoissonSource>(
        sim, *station, u, initial_rates[u], options.mu, seeder.next_u64()));
  }

  std::vector<std::unique_ptr<learn::Learner>> learners;
  for (std::size_t u = 0; u < n; ++u) {
    learners.push_back(factory(u, initial_rates[u]));
  }

  AdaptiveResult result;
  std::vector<double> rates = initial_rates;

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    // Warmup slice of the epoch, then measure the rest.
    sim.run_for(options.epoch_length * options.warmup_fraction);
    tracker.reset(sim.now());
    sim.run_for(options.epoch_length * (1.0 - options.warmup_fraction));

    std::vector<double> queues(n);
    for (std::size_t u = 0; u < n; ++u) {
      queues[u] = tracker.time_average(u, sim.now());
    }
    result.rate_history.push_back(rates);
    result.queue_history.push_back(queues);

    const bool round_robin =
        options.update_mode == AdaptiveUpdateMode::kRoundRobin;
    for (std::size_t u = 0; u < n; ++u) {
      if (round_robin && u != static_cast<std::size_t>(epoch) % n) continue;
      learn::LearnerContext context;
      context.observed_utility = profile[u]->value(rates[u], queues[u]);
      // No counterfactual: measurement-only environment.
      rates[u] = learners[u]->next_rate(context);
      sources[u]->set_rate(rates[u]);
    }
    if (fair_share_oracle != nullptr) fair_share_oracle->set_rates(rates);
  }

  result.final_rates = rates;
  result.final_utilities.resize(n);
  const auto& last_queues = result.queue_history.back();
  for (std::size_t u = 0; u < n; ++u) {
    result.final_utilities[u] = profile[u]->value(rates[u], last_queues[u]);
  }
  return result;
}

}  // namespace gw::sim
