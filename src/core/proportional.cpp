#include "core/proportional.hpp"

#include <limits>
#include <numeric>

namespace gw::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

std::vector<double> ProportionalAllocation::congestion(
    const std::vector<double>& rates) const {
  validate_rates(rates);
  const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
  std::vector<double> out(rates.size(), 0.0);
  if (total >= 1.0) {
    for (std::size_t i = 0; i < rates.size(); ++i) {
      out[i] = rates[i] > 0.0 ? kInf : 0.0;
    }
    return out;
  }
  const double inv = 1.0 / (1.0 - total);
  for (std::size_t i = 0; i < rates.size(); ++i) out[i] = rates[i] * inv;
  return out;
}

double ProportionalAllocation::congestion_of(
    std::size_t i, const std::vector<double>& rates) const {
  validate_rates(rates);
  const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
  if (total >= 1.0) return rates.at(i) > 0.0 ? kInf : 0.0;
  return rates.at(i) / (1.0 - total);
}

double ProportionalAllocation::partial(std::size_t i, std::size_t j,
                                       const std::vector<double>& rates) const {
  validate_rates(rates);
  const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
  if (total >= 1.0) return kInf;
  const double u = 1.0 - total;
  const double own = rates.at(i) / (u * u);
  return (i == j) ? 1.0 / u + own : own;
}

double ProportionalAllocation::second_partial(
    std::size_t i, std::size_t j, const std::vector<double>& rates) const {
  validate_rates(rates);
  const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
  if (total >= 1.0) return kInf;
  const double u = 1.0 - total;
  const double u2 = u * u;
  const double u3 = u2 * u;
  // d/dr_j [ 1/u + r_i/u^2 ]  (the i-derivative), so:
  //   j == i: 2/u^2 + 2 r_i / u^3;  j != i: 1/u^2 + 2 r_i / u^3.
  const double shared = 2.0 * rates.at(i) / u3;
  return (i == j) ? 2.0 / u2 + shared : 1.0 / u2 + shared;
}

}  // namespace gw::core
