#include "core/revelation.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/fair_share.hpp"
#include "core/proportional.hpp"

namespace gw::core {
namespace {

std::vector<UtilityPtr> gamma_report_family() {
  // Candidate misreports: pretending to be more / less delay-averse.
  std::vector<UtilityPtr> reports;
  for (const double gamma : {0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.6, 0.9}) {
    reports.push_back(make_linear(1.0, gamma));
  }
  return reports;
}

TEST(Theorem6, FairShareMechanismIsTruthDominant) {
  const auto mechanism =
      make_nash_mechanism(std::make_shared<FairShareAllocation>());
  const UtilityProfile truth{make_linear(1.0, 0.2), make_linear(1.0, 0.35),
                             make_linear(1.0, 0.5)};
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const auto sweep =
        sweep_misreports(mechanism, truth, i, gamma_report_family());
    EXPECT_LE(sweep.best_gain, 1e-4) << "user " << i << " gains by lying";
  }
}

TEST(Theorem6, FifoMechanismIsManipulable) {
  // The FIFO-Nash mechanism rewards claiming to be congestion-insensitive.
  const auto mechanism =
      make_nash_mechanism(std::make_shared<ProportionalAllocation>());
  const UtilityProfile truth{make_linear(1.0, 0.5), make_linear(1.0, 0.5)};
  const auto sweep =
      sweep_misreports(mechanism, truth, 0, gamma_report_family());
  EXPECT_GT(sweep.best_gain, 1e-3);
}

TEST(Mechanism, OutcomeIsReportedGamesNash) {
  const auto alloc = std::make_shared<FairShareAllocation>();
  const auto mechanism = make_nash_mechanism(alloc);
  const UtilityProfile reported{make_linear(1.0, 0.25),
                                make_linear(1.0, 0.25)};
  const auto outcome = mechanism(reported);
  EXPECT_TRUE(is_nash(*alloc, reported, outcome.rates, 1e-5));
  // Queues consistent with the allocation function.
  const auto queues = alloc->congestion(outcome.rates);
  for (std::size_t i = 0; i < queues.size(); ++i) {
    EXPECT_NEAR(outcome.queues[i], queues[i], 1e-12);
  }
}

TEST(MisreportGain, TruthfulReportGainsZero) {
  const auto mechanism =
      make_nash_mechanism(std::make_shared<FairShareAllocation>());
  const UtilityProfile truth{make_linear(1.0, 0.3), make_linear(1.0, 0.4)};
  EXPECT_NEAR(misreport_gain(mechanism, truth, 0, truth[0]), 0.0, 1e-9);
}

TEST(MisreportGain, BadIndexThrows) {
  const auto mechanism =
      make_nash_mechanism(std::make_shared<FairShareAllocation>());
  const UtilityProfile truth{make_linear(1.0, 0.3)};
  EXPECT_THROW((void)misreport_gain(mechanism, truth, 3, truth[0]),
               std::invalid_argument);
}

TEST(Mechanism, NullAllocationThrows) {
  EXPECT_THROW((void)make_nash_mechanism(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace gw::core
