#include "learn/driver.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gw::learn {

GameDriver::GameDriver(std::shared_ptr<const core::AllocationFunction> alloc,
                       core::UtilityProfile profile)
    : alloc_(std::move(alloc)), profile_(std::move(profile)) {
  if (alloc_ == nullptr || profile_.empty()) {
    throw std::invalid_argument("GameDriver: null allocation or empty profile");
  }
}

DriverResult GameDriver::run(std::vector<std::unique_ptr<Learner>>& learners,
                             const DriverOptions& options) const {
  const std::size_t n = profile_.size();
  if (learners.size() != n) {
    throw std::invalid_argument("GameDriver: learner count mismatch");
  }
  std::vector<double> rates(n);
  for (std::size_t i = 0; i < n; ++i) rates[i] = learners[i]->current_rate();

  DriverResult result;
  if (options.record_trajectory) result.trajectory.push_back(rates);
  int calm_rounds = 0;

  // Evaluation state reused across all rounds: the counterfactual oracle
  // stages candidates in `probe` and evaluates through `ws`, so a learner
  // probing thousands of rates per round never touches the heap.
  core::EvalWorkspace ws;
  std::vector<double> snapshot(n);
  std::vector<double> congestion(n);
  std::vector<double> probe(n);

  auto flight =
      obs::FlightRecorder::begin("learn.driver", n, obs::FlightRung::kDriver);
  for (int round = 0; round < options.max_rounds; ++round) {
    snapshot.assign(rates.begin(), rates.end());
    core::AllocationFunction::validate_rates(snapshot);
    alloc_->congestion_into(snapshot, congestion, ws);
    double max_move = 0.0;
    const bool round_robin = options.round_robin && !options.synchronous;
    for (std::size_t i = 0; i < n; ++i) {
      if (round_robin && i != static_cast<std::size_t>(round) % n) continue;
      LearnerContext context;
      context.observed_utility =
          profile_[i]->value(snapshot[i], congestion[i]);
      // Counterfactual over the snapshot (synchronous) or live rates
      // (sequential) — matching how the round's moves compose.
      const std::vector<double>& frame =
          options.synchronous ? snapshot : rates;
      probe.assign(frame.begin(), frame.end());
      context.counterfactual = [this, i, &probe, &ws](double candidate) {
        if (candidate < 0.0 || std::isnan(candidate)) {
          throw std::invalid_argument(
              "GameDriver: negative counterfactual rate");
        }
        probe[i] = candidate;
        const double c = alloc_->congestion_of_into(i, probe, ws);
        return profile_[i]->value(candidate, c);
      };
      const double next = learners[i]->next_rate(context);
      max_move = std::max(max_move, std::abs(next - rates[i]));
      rates[i] = next;
    }
    if (options.record_trajectory) result.trajectory.push_back(rates);
    result.rounds = round + 1;
    result.final_max_move = max_move;
    // Learner rounds have no KKT residual; the convergence quantity is the
    // round's max rate move (residual slot stays NaN, as in solve_nash).
    flight.iteration(std::numeric_limits<double>::quiet_NaN(), max_move, 1.0,
                     0);
    if (auto* trace = obs::active_trace()) {
      // Round index doubles as the trace timestamp: one "µs" per round.
      trace->counter("learn", "driver max_move", static_cast<double>(round),
                     max_move);
    }
    if (max_move <= options.tolerance) {
      if (++calm_rounds >= options.patience) {
        result.converged = true;
        break;
      }
    } else {
      if (calm_rounds > 0) {
        if (auto* trace = obs::active_trace()) {
          trace->instant("learn", "patience reset",
                         static_cast<double>(round), "calm_rounds",
                         static_cast<double>(calm_rounds));
        }
      }
      calm_rounds = 0;
    }
  }
  result.final_rates = rates;
  flight.verdict(result.converged, std::numeric_limits<double>::quiet_NaN());

  auto& registry = obs::default_registry();
  registry.counter("learn.driver.runs").inc();
  registry.counter("learn.driver.rounds_total")
      .inc(static_cast<std::uint64_t>(result.rounds));
  registry.gauge("learn.driver.last_rounds").set(result.rounds);
  registry.gauge("learn.driver.last_max_move").set(result.final_max_move);
  if (result.converged) {
    registry.counter("learn.driver.converged").inc();
    registry
        .histogram("learn.driver.rounds_to_converge", 0.0, 20000.0, 100)
        .observe(result.rounds);
  }
  if (auto* trace = obs::active_trace()) {
    trace->instant("learn", result.converged ? "converged" : "max_rounds",
                   static_cast<double>(result.rounds), "final_max_move",
                   result.final_max_move);
  }
  return result;
}

}  // namespace gw::learn
