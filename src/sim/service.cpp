#include "sim/service.hpp"

#include <cmath>
#include <stdexcept>

namespace gw::sim {

ServiceSpec ServiceSpec::exponential(double mean) {
  if (mean <= 0.0 || !std::isfinite(mean)) {
    throw std::invalid_argument("ServiceSpec: bad mean");
  }
  ServiceSpec spec;
  spec.kind = ServiceKind::kExponential;
  spec.mean = mean;
  return spec;
}

ServiceSpec ServiceSpec::deterministic(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("ServiceSpec: mean <= 0");
  ServiceSpec spec;
  spec.kind = ServiceKind::kDeterministic;
  spec.mean = mean;
  return spec;
}

ServiceSpec ServiceSpec::erlang(int k, double mean) {
  if (mean <= 0.0 || k < 1) {
    throw std::invalid_argument("ServiceSpec: bad Erlang parameters");
  }
  ServiceSpec spec;
  spec.kind = ServiceKind::kErlang;
  spec.mean = mean;
  spec.erlang_k = k;
  return spec;
}

ServiceSpec ServiceSpec::hyperexponential(double scv, double mean) {
  if (mean <= 0.0 || scv <= 1.0) {
    throw std::invalid_argument(
        "ServiceSpec: hyperexponential needs scv > 1");
  }
  // Balanced means: p1/rate1 == p2/rate2 == mean/2.
  ServiceSpec spec;
  spec.kind = ServiceKind::kHyperexponential;
  spec.mean = mean;
  spec.hyper_p1 = 0.5 * (1.0 + std::sqrt((scv - 1.0) / (scv + 1.0)));
  spec.hyper_rate1 = 2.0 * spec.hyper_p1 / mean;
  spec.hyper_rate2 = 2.0 * (1.0 - spec.hyper_p1) / mean;
  return spec;
}

double ServiceSpec::sample(numerics::Rng& rng) const {
  switch (kind) {
    case ServiceKind::kExponential:
      return rng.exponential(1.0 / mean);
    case ServiceKind::kDeterministic:
      return mean;
    case ServiceKind::kErlang: {
      double total = 0.0;
      const double phase_rate = static_cast<double>(erlang_k) / mean;
      for (int phase = 0; phase < erlang_k; ++phase) {
        total += rng.exponential(phase_rate);
      }
      return total;
    }
    case ServiceKind::kHyperexponential:
      return rng.bernoulli(hyper_p1) ? rng.exponential(hyper_rate1)
                                     : rng.exponential(hyper_rate2);
  }
  return mean;
}

double ServiceSpec::scv() const {
  switch (kind) {
    case ServiceKind::kExponential:
      return 1.0;
    case ServiceKind::kDeterministic:
      return 0.0;
    case ServiceKind::kErlang:
      return 1.0 / static_cast<double>(erlang_k);
    case ServiceKind::kHyperexponential: {
      const double p1 = hyper_p1, p2 = 1.0 - hyper_p1;
      const double second =
          2.0 * (p1 / (hyper_rate1 * hyper_rate1) +
                 p2 / (hyper_rate2 * hyper_rate2));
      const double variance = second - mean * mean;
      return variance / (mean * mean);
    }
  }
  return 1.0;
}

}  // namespace gw::sim
