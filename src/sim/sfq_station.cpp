#include "sim/sfq_station.hpp"

#include <algorithm>
#include <stdexcept>

namespace gw::sim {

SfqStation::SfqStation(Simulator& sim, QueueTracker& tracker,
                       std::size_t n_users)
    : SfqStation(sim, tracker, std::vector<double>(n_users, 1.0)) {}

SfqStation::SfqStation(Simulator& sim, QueueTracker& tracker,
                       std::vector<double> weights)
    : Station(sim, tracker),
      weights_(std::move(weights)),
      finish_tag_(weights_.size(), 0.0) {
  if (weights_.empty()) {
    throw std::invalid_argument("SfqStation: no users");
  }
  for (const double w : weights_) {
    if (w <= 0.0) throw std::invalid_argument("SfqStation: weight <= 0");
  }
}

void SfqStation::arrive(Packet packet) {
  const std::size_t user = packet.user;
  if (user >= weights_.size()) {
    throw std::invalid_argument("SfqStation: bad user id");
  }
  note_arrival(packet);
  packet.remaining = packet.service_demand;
  const double start = std::max(virtual_time_, finish_tag_[user]);
  finish_tag_[user] = start + packet.service_demand / weights_[user];
  queue_.push(Tagged{start, next_sequence_++, std::move(packet)});
  if (!busy_) serve_next();
}

void SfqStation::serve_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  const Tagged next = queue_.top();
  queue_.pop();
  virtual_time_ = next.start_tag;
  in_service_ = next.packet;
  busy_ = true;
  completion_ =
      sim_.schedule_in(in_service_.service_demand, [this] { complete(); });
}

void SfqStation::complete() {
  busy_ = false;
  note_departure(in_service_);
  serve_next();
}

}  // namespace gw::sim
