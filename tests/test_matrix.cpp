#include "numerics/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gw::numerics {
namespace {

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3);
  m(0, 0) = 1.0;
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
}

TEST(Matrix, InitializerShapeChecked) {
  EXPECT_THROW(Matrix(2, 2, {1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(Matrix, IdentityTimesAnything) {
  const Matrix a(2, 2, {1.0, 2.0, 3.0, 4.0});
  const Matrix result = Matrix::identity(2) * a;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_DOUBLE_EQ(result(i, j), a(i, j));
    }
  }
}

TEST(Matrix, ProductKnownValues) {
  const Matrix a(2, 2, {1.0, 2.0, 3.0, 4.0});
  const Matrix b(2, 2, {5.0, 6.0, 7.0, 8.0});
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatVec) {
  const Matrix a(2, 3, {1.0, 0.0, 2.0, 0.0, 1.0, -1.0});
  const auto y = a * std::vector<double>{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(Matrix, TransposeRoundTrip) {
  const Matrix a(2, 3, {1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  const Matrix back = t.transposed();
  EXPECT_DOUBLE_EQ(back(1, 2), 6.0);
}

TEST(Matrix, TraceAndMaxAbs) {
  const Matrix a(2, 2, {1.0, -7.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(a.trace(), 4.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 7.0);
}

TEST(MatrixPower, NilpotentVanishes) {
  const Matrix a(3, 3, {0.0, 1.0, 2.0, 0.0, 0.0, 3.0, 0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(matrix_power(a, 3).max_abs(), 0.0);
  EXPECT_GT(matrix_power(a, 2).max_abs(), 0.0);
}

TEST(MatrixPower, ZeroExponentIsIdentity) {
  const Matrix a(2, 2, {5.0, 1.0, 2.0, 3.0});
  const Matrix p = matrix_power(a, 0);
  EXPECT_DOUBLE_EQ(p(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 0.0);
}

TEST(Lu, SolvesLinearSystem) {
  const Matrix a(3, 3, {2.0, 1.0, 1.0, 1.0, 3.0, 2.0, 1.0, 0.0, 0.0});
  const auto factorization = lu_decompose(a);
  EXPECT_FALSE(factorization.singular);
  const auto x = lu_solve(factorization, {4.0, 5.0, 6.0});
  // Verify A x = b.
  const auto b = a * x;
  EXPECT_NEAR(b[0], 4.0, 1e-12);
  EXPECT_NEAR(b[1], 5.0, 1e-12);
  EXPECT_NEAR(b[2], 6.0, 1e-12);
}

TEST(Lu, DetectsSingular) {
  const Matrix a(2, 2, {1.0, 2.0, 2.0, 4.0});
  const auto factorization = lu_decompose(a);
  EXPECT_TRUE(factorization.singular);
  EXPECT_THROW((void)lu_solve(factorization, {1.0, 1.0}), std::domain_error);
}

TEST(Determinant, KnownValues) {
  EXPECT_NEAR(determinant(Matrix(2, 2, {1.0, 2.0, 3.0, 4.0})), -2.0, 1e-12);
  EXPECT_NEAR(determinant(Matrix::identity(4)), 1.0, 1e-12);
  EXPECT_NEAR(determinant(Matrix(2, 2, {1.0, 2.0, 2.0, 4.0})), 0.0, 1e-12);
}

TEST(Determinant, PermutationSign) {
  // Swapping two rows of I gives det = -1.
  Matrix a = Matrix::identity(3);
  std::swap(a(0, 0), a(1, 0));
  std::swap(a(0, 1), a(1, 1));
  EXPECT_NEAR(determinant(a), -1.0, 1e-12);
}

TEST(Inverse, RoundTrip) {
  const Matrix a(3, 3, {4.0, 7.0, 2.0, 3.0, 6.0, 1.0, 2.0, 5.0, 3.0});
  const Matrix inv = inverse(a);
  const Matrix product = a * inv;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(product(i, j), i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(Inverse, SingularThrows) {
  EXPECT_THROW((void)inverse(Matrix(2, 2, {1.0, 1.0, 1.0, 1.0})),
               std::domain_error);
}

}  // namespace
}  // namespace gw::numerics
