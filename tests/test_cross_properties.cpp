// The paper's theorems quantify over ALL acceptable utility profiles;
// most suites here use linear utilities for closed-form anchors. This one
// re-runs the headline properties with power and exponential (Lemma 5)
// families, heterogeneous mixes, and monotone-transformed variants.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/envy.hpp"
#include "core/fair_share.hpp"
#include "core/nash.hpp"
#include "core/pareto.hpp"
#include "core/proportional.hpp"
#include "core/protection.hpp"
#include "core/stackelberg.hpp"
#include "numerics/rng.hpp"

namespace gw::core {
namespace {

UtilityProfile mixed_family_profile() {
  return {
      make_power(1.0, 0.7, 0.6, 1.3),                    // concave-power
      make_linear(1.0, 0.3),                             // linear
      make_exponential(0.8, 4.0, 1.0, 4.0, 0.2, 0.5),    // Lemma 5 family
  };
}

TEST(CrossProperties, FsNashExistsAndVerifiesForMixedFamilies) {
  const FairShareAllocation alloc;
  const auto profile = mixed_family_profile();
  const auto nash = solve_nash(alloc, profile, {0.1, 0.1, 0.1});
  ASSERT_TRUE(nash.converged);
  EXPECT_TRUE(is_nash(alloc, profile, nash.rates, 1e-6));
  // All users keep positive service.
  for (const double r : nash.rates) EXPECT_GT(r, 1e-4);
}

TEST(CrossProperties, FsUniqueAcrossStartsForMixedFamilies) {
  const FairShareAllocation alloc;
  const auto profile = mixed_family_profile();
  const auto equilibria = find_equilibria(alloc, profile, 16, 2029);
  EXPECT_EQ(equilibria.size(), 1u);
}

TEST(CrossProperties, FsUnilateralEnvyFreeForPowerUtilities) {
  const FairShareAllocation alloc;
  const auto u = make_power(1.0, 0.6, 0.7, 1.5);
  const UtilityProfile profile{u, u, u};
  numerics::Rng rng(777);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> rates(3);
    for (auto& r : rates) r = rng.uniform(0.02, 0.7);
    const auto result = unilateral_envy(alloc, profile, rates, trial % 3);
    EXPECT_LE(result.max_envy, 1e-6) << "trial " << trial;
  }
}

TEST(CrossProperties, FifoEnvyPersistsForPowerUtilities) {
  // With concave throughput value, envy under FIFO needs a fat target
  // (heavy user) and mild delay aversion — but it exists (probed over the
  // parameter grid; e.g. pr=.8, gamma=.15, opponent at 0.5 gives ~0.09).
  const ProportionalAllocation alloc;
  const auto u = make_power(1.0, 0.8, 0.15, 1.2);
  const auto result = unilateral_envy(alloc, {u, u}, {0.1, 0.5}, 0);
  EXPECT_GT(result.max_envy, 0.05);
}

TEST(CrossProperties, FsStackelbergAdvantageZeroForExponentialUsers) {
  const auto alloc = std::make_shared<FairShareAllocation>();
  const auto u = make_exponential(0.9, 3.0, 1.0, 3.0, 0.15, 0.4);
  const UtilityProfile profile{u, u, u};
  StackelbergOptions options;
  options.leader_grid = 25;
  const auto result = solve_stackelberg(alloc, profile, 0, options);
  ASSERT_TRUE(result.solved);
  EXPECT_NEAR(result.advantage(), 0.0, 5e-4);
}

TEST(CrossProperties, SymmetricPowerUsersFsNashIsParetoUndominated) {
  const FairShareAllocation alloc;
  const auto u = make_power(1.0, 0.8, 0.5, 1.2);
  const auto profile = uniform_profile(u, 3);
  const auto nash = solve_nash(alloc, profile, {0.1, 0.1, 0.1});
  ASSERT_TRUE(nash.converged);
  // Symmetric (identical users, unique equilibrium) ...
  EXPECT_NEAR(nash.rates[0], nash.rates[1], 1e-4);
  EXPECT_NEAR(nash.rates[1], nash.rates[2], 1e-4);
  // ... and undominated (Theorem 2).
  const auto queues = alloc.congestion(nash.rates);
  const auto domination = find_dominating_allocation(profile, nash.rates,
                                                     queues);
  EXPECT_FALSE(domination.dominated)
      << "claimed gain " << domination.best_min_gain;
}

TEST(CrossProperties, FifoPowerUsersNashIsDominated) {
  const ProportionalAllocation alloc;
  const auto u = make_power(1.0, 0.8, 0.5, 1.2);
  const auto profile = uniform_profile(u, 3);
  const auto nash = solve_nash(alloc, profile, {0.1, 0.1, 0.1});
  ASSERT_TRUE(nash.converged);
  const auto queues = alloc.congestion(nash.rates);
  const auto domination = find_dominating_allocation(profile, nash.rates,
                                                     queues);
  EXPECT_TRUE(domination.dominated);
}

TEST(CrossProperties, TransformInvarianceOfEnvyAndNash) {
  // Monotone transforms preserve preference order, so Nash points and
  // envy verdicts are unchanged.
  const FairShareAllocation alloc;
  const auto base = make_power(1.0, 0.7, 0.6, 1.4);
  const auto transformed = std::make_shared<TransformedUtility>(
      base, [](double x) { return std::exp(0.5 * x) + 2.0 * x; }, "exp+lin");
  const auto plain = solve_nash(alloc, {base, base}, {0.1, 0.2});
  const auto twisted =
      solve_nash(alloc, {transformed, transformed}, {0.1, 0.2});
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(twisted.converged);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(plain.rates[i], twisted.rates[i], 1e-4);
  }
  const auto queues = alloc.congestion(plain.rates);
  const double envy_plain = max_envy({base, base}, plain.rates, queues);
  const double envy_twisted =
      max_envy({transformed, transformed}, plain.rates, queues);
  EXPECT_EQ(envy_plain <= 1e-9, envy_twisted <= 1e-9);
}

TEST(CrossProperties, LogUtilityOutsideAuStillSolvable) {
  // Robustness beyond the paper's assumptions: the solvers handle the
  // non-AU log family gracefully (global-scan best responses).
  const FairShareAllocation alloc;
  const auto u = std::make_shared<LogUtility>(0.3, 0.5);
  const UtilityProfile profile{u, u};
  const auto nash = solve_nash(alloc, profile, {0.1, 0.1});
  ASSERT_TRUE(nash.converged);
  EXPECT_TRUE(is_nash(alloc, profile, nash.rates, 1e-6));
}

TEST(CrossProperties, ProtectionIndependentOfUtilities) {
  // Theorem 8 is a statement about the allocation function alone; verify
  // the scan gives identical bounds regardless of who is measuring.
  const FairShareAllocation alloc;
  ProtectionScanOptions options;
  options.random_samples = 800;
  const auto scan_a = scan_protection(alloc, 0, 0.12, 3, options);
  options.seed = 4321;
  const auto scan_b = scan_protection(alloc, 0, 0.12, 3, options);
  EXPECT_TRUE(scan_a.protective);
  EXPECT_TRUE(scan_b.protective);
  EXPECT_NEAR(scan_a.bound, scan_b.bound, 1e-12);
}

}  // namespace
}  // namespace gw::core
