#include "core/priority_alloc.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/serial_common.hpp"
#include "queueing/mm1.hpp"

namespace gw::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Prefix loads P_k = sum of the k+1 smallest sorted rates.
void prefix_loads_into(std::span<const double> sorted_rates,
                       std::span<double> prefix) {
  double acc = 0.0;
  for (std::size_t k = 0; k < sorted_rates.size(); ++k) {
    acc += sorted_rates[k];
    prefix[k] = acc;
  }
}

double priority_partial(std::span<const double> prefix,
                        std::span<const double> sorted, std::size_t k,
                        std::size_t jr) {
  if (jr > k) return 0.0;
  if (prefix[k] >= 1.0) return kInf;
  const double gp_k = queueing::g_prime(prefix[k]);
  if (jr == k) return gp_k;
  return gp_k - queueing::g_prime(prefix[k] - sorted[k]);
}

double priority_second_partial(std::span<const double> prefix, std::size_t k,
                               std::size_t jr) {
  if (jr > k) return 0.0;
  if (prefix[k] >= 1.0) return kInf;
  return queueing::g_double_prime(prefix[k]);
}

}  // namespace

void SmallestRateFirstAllocation::congestion_into(std::span<const double> rates,
                                                  std::span<double> out,
                                                  EvalWorkspace& ws) const {
  const std::size_t n = rates.size();
  ws.ensure(n);
  const std::span<std::size_t> order = ws.order(n);
  const std::span<double> sorted = ws.sorted(n);
  serial::sorted_order_into(rates, order);
  serial::gather_into(rates, order, sorted);
  double prefix = 0.0;
  double g_prev = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    prefix += sorted[k];
    const double g_here = queueing::g(prefix);
    out[order[k]] = std::isinf(g_here) ? kInf : g_here - g_prev;
    g_prev = g_here;
  }
}

double SmallestRateFirstAllocation::congestion_of_into(
    std::size_t i, std::span<const double> rates, EvalWorkspace& ws) const {
  const std::size_t n = rates.size();
  ws.ensure(n);
  const std::span<std::size_t> order = ws.order(n);
  const std::span<double> sorted = ws.sorted(n);
  serial::sorted_order_into(rates, order);
  serial::gather_into(rates, order, sorted);
  double prefix = 0.0;
  double g_prev = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    prefix += sorted[k];
    const double g_here = queueing::g(prefix);
    if (order[k] == i) return std::isinf(g_here) ? kInf : g_here - g_prev;
    g_prev = g_here;
  }
  return kInf;  // unreachable for valid i
}

void SmallestRateFirstAllocation::jacobian_into(std::span<const double> rates,
                                                numerics::Matrix& out,
                                                EvalWorkspace& ws) const {
  const std::size_t n = rates.size();
  out.resize(n, n);
  ws.ensure(n);
  const std::span<std::size_t> order = ws.order(n);
  const std::span<double> sorted = ws.sorted(n);
  const std::span<double> prefix = ws.serial(n);
  serial::sorted_order_into(rates, order);
  serial::gather_into(rates, order, sorted);
  prefix_loads_into(sorted, prefix);
  // Row-hoisted priority_partial: the off-diagonal value is constant per
  // row, so each row needs two g' calls instead of two per entry.
  for (std::size_t k = 0; k < n; ++k) {
    double* const out_row = out.row_data(order[k]);
    if (prefix[k] >= 1.0) {
      for (std::size_t jr = 0; jr <= k; ++jr) out_row[order[jr]] = kInf;
    } else {
      const double gp_k = queueing::g_prime(prefix[k]);
      const double off = gp_k - queueing::g_prime(prefix[k] - sorted[k]);
      for (std::size_t jr = 0; jr < k; ++jr) out_row[order[jr]] = off;
      out_row[order[k]] = gp_k;
    }
    for (std::size_t jr = k + 1; jr < n; ++jr) out_row[order[jr]] = 0.0;
  }
}

void SmallestRateFirstAllocation::second_partials_into(
    std::span<const double> rates, numerics::Matrix& out,
    EvalWorkspace& ws) const {
  const std::size_t n = rates.size();
  out.resize(n, n);
  ws.ensure(n);
  const std::span<std::size_t> order = ws.order(n);
  const std::span<double> sorted = ws.sorted(n);
  const std::span<double> prefix = ws.serial(n);
  serial::sorted_order_into(rates, order);
  serial::gather_into(rates, order, sorted);
  prefix_loads_into(sorted, prefix);
  for (std::size_t k = 0; k < n; ++k) {
    double* const out_row = out.row_data(order[k]);
    if (prefix[k] >= 1.0) {
      for (std::size_t jr = 0; jr <= k; ++jr) out_row[order[jr]] = kInf;
    } else {
      const double g2 = queueing::g_double_prime(prefix[k]);
      for (std::size_t jr = 0; jr <= k; ++jr) out_row[order[jr]] = g2;
    }
    for (std::size_t jr = k + 1; jr < n; ++jr) out_row[order[jr]] = 0.0;
  }
}

double SmallestRateFirstAllocation::partial(
    std::size_t i, std::size_t j, const std::vector<double>& rates) const {
  validate_rates(rates);
  const std::size_t n = rates.size();
  EvalWorkspace& ws = scratch_workspace();
  ws.ensure(n);
  const std::span<std::size_t> order = ws.order(n);
  const std::span<std::size_t> rank = ws.rank(n);
  const std::span<double> sorted = ws.sorted(n);
  const std::span<double> prefix = ws.serial(n);
  serial::sorted_order_into(rates, order);
  serial::rank_from_order(order, rank);
  serial::gather_into(rates, order, sorted);
  prefix_loads_into(sorted, prefix);
  return priority_partial(prefix, sorted, rank[i], rank[j]);
}

double SmallestRateFirstAllocation::second_partial(
    std::size_t i, std::size_t j, const std::vector<double>& rates) const {
  validate_rates(rates);
  const std::size_t n = rates.size();
  EvalWorkspace& ws = scratch_workspace();
  ws.ensure(n);
  const std::span<std::size_t> order = ws.order(n);
  const std::span<std::size_t> rank = ws.rank(n);
  const std::span<double> sorted = ws.sorted(n);
  const std::span<double> prefix = ws.serial(n);
  serial::sorted_order_into(rates, order);
  serial::rank_from_order(order, rank);
  serial::gather_into(rates, order, sorted);
  prefix_loads_into(sorted, prefix);
  return priority_second_partial(prefix, rank[i], rank[j]);
}

bool SmallestRateFirstAllocation::scan_prepare(std::size_t i,
                                               std::span<const double> rates,
                                               EvalWorkspace& ws) const {
  serial::priority_scan_prepare(rates, i,
                                [](double s) { return queueing::g(s); }, ws);
  return true;
}

double SmallestRateFirstAllocation::scan_congestion_of(
    std::size_t /*i*/, double x, std::span<const double> /*rates*/,
    EvalWorkspace& ws) const {
  return serial::priority_scan_probe(
      x, [](double s) { return queueing::g(s); }, ws.scan, ws);
}

bool SmallestRateFirstAllocation::congestion_classes_into(
    const ClassedPopulation& pop, std::span<double> out,
    EvalWorkspace& ws) const {
  const std::size_t k = pop.k();
  ws.ensure(k);
  const std::span<std::size_t> order = ws.order(k);
  const std::span<double> keys = ws.sorted(k);
  for (std::size_t a = 0; a < k; ++a) keys[a] = pop[a].rate;
  serial::sorted_order_into(keys, order);
  double prefix = 0.0;
  for (std::size_t t = 0; t < k; ++t) {
    const RateClass& c = pop[order[t]];
    prefix += static_cast<double>(c.count) * c.rate;
    const double g_here = queueing::g(prefix);
    out[order[t]] =
        std::isinf(g_here) ? kInf : g_here - queueing::g(prefix - c.rate);
  }
  return true;
}

bool SmallestRateFirstAllocation::jacobian_classes_into(
    const ClassedPopulation& pop, numerics::Matrix& cross,
    std::span<double> own, EvalWorkspace& ws) const {
  const std::size_t k = pop.k();
  cross.resize(k, k);
  ws.ensure(k);
  const std::span<std::size_t> order = ws.order(k);
  const std::span<double> keys = ws.sorted(k);
  for (std::size_t a = 0; a < k; ++a) keys[a] = pop[a].rate;
  serial::sorted_order_into(keys, order);
  double prefix = 0.0;
  for (std::size_t t = 0; t < k; ++t) {
    const RateClass& c = pop[order[t]];
    prefix += static_cast<double>(c.count) * c.rate;
    const std::size_t a = order[t];
    double* const row = cross.row_data(a);
    if (prefix >= 1.0) {
      own[a] = kInf;
      for (std::size_t tb = 0; tb <= t; ++tb) row[order[tb]] = kInf;
    } else {
      const double gp_here = queueing::g_prime(prefix);
      // A same-class peer sits below the representative too, so the
      // off-diagonal value extends through tb == t.
      const double off = gp_here - queueing::g_prime(prefix - c.rate);
      own[a] = gp_here;
      for (std::size_t tb = 0; tb <= t; ++tb) row[order[tb]] = off;
    }
    for (std::size_t tb = t + 1; tb < k; ++tb) row[order[tb]] = 0.0;
  }
  return true;
}

bool SmallestRateFirstAllocation::scan_prepare_classes(
    std::size_t a, const ClassedPopulation& pop, EvalWorkspace& ws) const {
  serial::classed_priority_scan_prepare(
      pop, a, [](double s) { return queueing::g(s); }, ws);
  return true;
}

double SmallestRateFirstAllocation::scan_congestion_of_class(
    std::size_t /*a*/, double x, const ClassedPopulation& /*pop*/,
    EvalWorkspace& ws) const {
  return serial::classed_priority_scan_probe(
      x, [](double s) { return queueing::g(s); }, ws.scan, ws);
}

void FixedPriorityAllocation::congestion_into(std::span<const double> rates,
                                              std::span<double> out,
                                              EvalWorkspace& /*ws*/) const {
  double prefix = 0.0;
  double g_prev = 0.0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    prefix += rates[i];
    const double g_here = queueing::g(prefix);
    out[i] = std::isinf(g_here) ? kInf : g_here - g_prev;
    g_prev = g_here;
  }
}

double FixedPriorityAllocation::congestion_of_into(std::size_t i,
                                                   std::span<const double> rates,
                                                   EvalWorkspace& /*ws*/) const {
  // Only the prefix through user i matters: higher-index users are invisible.
  double prefix = 0.0;
  for (std::size_t m = 0; m < i; ++m) prefix += rates[m];
  const double g_prev = queueing::g(prefix);
  const double g_here = queueing::g(prefix + rates[i]);
  return std::isinf(g_here) ? kInf : g_here - g_prev;
}

double FixedPriorityAllocation::partial(std::size_t i, std::size_t j,
                                        const std::vector<double>& rates) const {
  validate_rates(rates);
  if (j > i) return 0.0;
  double prefix = 0.0;
  for (std::size_t m = 0; m <= i; ++m) prefix += rates[m];
  if (prefix >= 1.0) return kInf;
  const double gp_i = queueing::g_prime(prefix);
  if (j == i) return gp_i;
  return gp_i - queueing::g_prime(prefix - rates[i]);
}

double FixedPriorityAllocation::second_partial(
    std::size_t i, std::size_t j, const std::vector<double>& rates) const {
  validate_rates(rates);
  if (j > i) return 0.0;
  double prefix = 0.0;
  for (std::size_t m = 0; m <= i; ++m) prefix += rates[m];
  if (prefix >= 1.0) return kInf;
  return queueing::g_double_prime(prefix);
}

}  // namespace gw::core
