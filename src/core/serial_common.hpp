// Shared machinery of the serial (sorted-rate) allocation family.
//
// Fair Share, the general-g serial rule, the weighted serial rule and the
// smallest-rate-first priority foil all start from the same two steps:
// sort the users ascending by a scalar key with index tie-break (stable
// across permutations of equal values up to relabeling, which symmetry
// requires), then form the serial cumulative loads
//   S_k = (N - k) * x_(k) + sum_{m<k} x_(m)   (0-indexed ranks)
// of the sorted keys. These helpers write into caller-provided spans so
// the hot evaluation paths stay allocation-free (see EvalWorkspace).
#pragma once

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <span>

namespace gw::core::serial {

/// Fills `order` with the ascending sort order of `keys`, ties broken by
/// index. order.size() must equal keys.size().
inline void sorted_order_into(std::span<const double> keys,
                              std::span<std::size_t> order) {
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [keys](std::size_t a, std::size_t b) {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    return a < b;
  });
}

/// Inverts a sort order: rank[order[k]] = k.
inline void rank_from_order(std::span<const std::size_t> order,
                            std::span<std::size_t> rank) {
  for (std::size_t k = 0; k < order.size(); ++k) rank[order[k]] = k;
}

/// Gathers `values` through `order`: sorted[k] = values[order[k]].
inline void gather_into(std::span<const double> values,
                        std::span<const std::size_t> order,
                        std::span<double> sorted) {
  for (std::size_t k = 0; k < order.size(); ++k) sorted[k] = values[order[k]];
}

/// Serial cumulative loads of already-sorted rates:
///   serial[k] = (N - k) * sorted[k] + sum_{m<k} sorted[m].
inline void serial_loads_into(std::span<const double> sorted_rates,
                              std::span<double> serial) {
  const std::size_t n = sorted_rates.size();
  double prefix = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    serial[k] = static_cast<double>(n - k) * sorted_rates[k] + prefix;
    prefix += sorted_rates[k];
  }
}

/// One-call combination used by every serial-family evaluation: sort the
/// rates into ws-style buffers and form the serial loads. All four spans
/// must have size rates.size().
inline void sort_and_serial_loads(std::span<const double> rates,
                                  std::span<std::size_t> order,
                                  std::span<double> sorted,
                                  std::span<double> serial) {
  sorted_order_into(rates, order);
  gather_into(rates, order, sorted);
  serial_loads_into(sorted, serial);
}

}  // namespace gw::core::serial
