// Shared machinery of the serial (sorted-rate) allocation family.
//
// Fair Share, the general-g serial rule, the weighted serial rule and the
// smallest-rate-first priority foil all start from the same two steps:
// sort the users ascending by a scalar key with index tie-break (stable
// across permutations of equal values up to relabeling, which symmetry
// requires), then form the serial cumulative loads
//   S_k = (N - k) * x_(k) + sum_{m<k} x_(m)   (0-indexed ranks)
// of the sorted keys. These helpers write into caller-provided spans so
// the hot evaluation paths stay allocation-free (see EvalWorkspace).
//
// The whole-matrix fills at the bottom replace the per-entry telescoping
// of dC_i/dr_j (O(n) g' calls per entry, O(n^3) per matrix) with a rolling
// rank-space row recurrence (O(n^2) per matrix, n g' calls total). The
// recurrence reproduces the per-entry sum term by term in the same
// left-to-right order — including the literal `0.0 * g'(S_{m-1})` lower
// terms and the `0.0 + term` accumulator seed — so its output is
// bit-identical to the per-entry definition, Inf/NaN propagation included
// (see DESIGN.md, "scalar/vector equivalence policy").
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <numeric>
#include <span>

#include "core/eval_workspace.hpp"
#include "core/population.hpp"
#include "core/simd.hpp"
#include "numerics/matrix.hpp"

namespace gw::core::serial {

/// Fills `order` with the ascending sort order of `keys`, ties broken by
/// index. order.size() must equal keys.size().
inline void sorted_order_into(std::span<const double> keys,
                              std::span<std::size_t> order) {
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [keys](std::size_t a, std::size_t b) {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    return a < b;
  });
}

/// Inverts a sort order: rank[order[k]] = k.
inline void rank_from_order(std::span<const std::size_t> order,
                            std::span<std::size_t> rank) {
  for (std::size_t k = 0; k < order.size(); ++k) rank[order[k]] = k;
}

/// Gathers `values` through `order`: sorted[k] = values[order[k]].
inline void gather_into(std::span<const double> values,
                        std::span<const std::size_t> order,
                        std::span<double> sorted) {
  for (std::size_t k = 0; k < order.size(); ++k) sorted[k] = values[order[k]];
}

/// Serial cumulative loads of already-sorted rates:
///   serial[k] = (N - k) * sorted[k] + sum_{m<k} sorted[m].
/// The prefix accumulation is a loop-carried chain and stays scalar; the
/// chain is the point (reassociating it would break bit-identity).
inline void serial_loads_into(std::span<const double> sorted_rates,
                              std::span<double> serial) {
  const std::size_t n = sorted_rates.size();
  double prefix = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    serial[k] = static_cast<double>(n - k) * sorted_rates[k] + prefix;
    prefix += sorted_rates[k];
  }
}

/// Suffix sums of `values` gathered through `order`:
///   suffix[m] = sum_{q >= m} values[order[q]],  suffix[order.size()] = 0.
/// suffix.size() must be order.size() + 1 — the one-past-the-end slot the
/// EvalWorkspace::padded(n) contract guarantees (callers take a lane span
/// of n + 1). Right-to-left accumulation, matching the weighted-serial
/// staging order exactly.
inline void suffix_sums_into(std::span<const double> values,
                             std::span<const std::size_t> order,
                             std::span<double> suffix) {
  const std::size_t n = order.size();
  suffix[n] = 0.0;
  for (std::size_t m = n; m-- > 0;) {
    suffix[m] = suffix[m + 1] + values[order[m]];
  }
}

/// One-call combination used by every serial-family evaluation: sort the
/// rates into ws-style buffers and form the serial loads. All four spans
/// must have size rates.size().
inline void sort_and_serial_loads(std::span<const double> rates,
                                  std::span<std::size_t> order,
                                  std::span<double> sorted,
                                  std::span<double> serial) {
  sorted_order_into(rates, order);
  gather_into(rates, order, sorted);
  serial_loads_into(sorted, serial);
}

/// Whole-matrix dC_i/dr_j fill for the unweighted serial rule under any g
/// (Fair Share is g = M/M/1). `gp` is g', `saturation` the load at which
/// entries become +Inf, `row` an n-element rank-space scratch lane.
///
/// Per-entry definition (rank k of i, rank jr of j <= k, not saturated):
///   sum_{m=jr}^{k} [coeff(m) g'(S_m) - coeff(m-1) g'(S_{m-1})] / (n - m),
///   coeff(m) = (n - jr) at m == jr, 1 above, 0 below.
/// Row recurrence over k: interior entries (jr <= k-2) gain the common
/// term (g'(S_k) - g'(S_{k-1}))/(n - k) — a broadcast add, the vector
/// kernel — while the boundary jr = k-1 extends last row's diagonal and
/// the new diagonal is seeded fresh. Saturated rows emit Inf but still
/// advance the row state, preserving the per-entry Inf/NaN propagation
/// into later unsaturated rows (FP serial loads may break monotonicity by
/// an ulp on ties, so "saturated" is per-row, not a suffix).
template <class GPrime>
inline void serial_jacobian_fill(std::span<const std::size_t> order,
                                 std::span<const double> serial,
                                 double saturation, GPrime&& gp,
                                 std::span<double> row,
                                 numerics::Matrix& out) {
  const std::size_t n = order.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double gpk1 = 0.0;  // g'(S_{k-1}), carried between rows
  for (std::size_t k = 0; k < n; ++k) {
    const double gpk = gp(serial[k]);
    const double nk = static_cast<double>(n - k);
    if (k == 0) {
      row[0] = 0.0 + (nk * gpk - 0.0) / nk;
    } else {
      const double t_k = (1.0 * gpk - 1.0 * gpk1) / nk;
      double* const r = row.data();
      const std::size_t interior = k - 1;  // entries jr <= k-2 (k >= 1 here)
      GW_SIMD_LOOP
      for (std::size_t jr = 0; jr < interior; ++jr) r[jr] += t_k;
      row[k - 1] +=
          (1.0 * gpk - static_cast<double>(n - (k - 1)) * gpk1) / nk;
      row[k] = 0.0 + (nk * gpk - 0.0 * gpk1) / nk;
    }
    double* const out_row = out.row_data(order[k]);
    if (serial[k] >= saturation) {
      for (std::size_t jr = 0; jr <= k; ++jr) out_row[order[jr]] = kInf;
    } else {
      for (std::size_t jr = 0; jr <= k; ++jr) out_row[order[jr]] = row[jr];
    }
    for (std::size_t jr = k + 1; jr < n; ++jr) out_row[order[jr]] = 0.0;
    gpk1 = gpk;
  }
}

/// Whole-matrix d^2 C_i/(dr_i dr_j) fill for the unweighted serial rule:
/// per-entry value is (jr == k ? (n - k) : 1) * g''(S_k) below the
/// diagonal in rank space, Inf on saturated rows, 0 above. One g'' call
/// per row instead of one per entry.
template <class GDoublePrime>
inline void serial_second_partials_fill(std::span<const std::size_t> order,
                                        std::span<const double> serial,
                                        double saturation, GDoublePrime&& gdd,
                                        numerics::Matrix& out) {
  const std::size_t n = order.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < n; ++k) {
    double* const out_row = out.row_data(order[k]);
    if (serial[k] >= saturation) {
      for (std::size_t jr = 0; jr <= k; ++jr) out_row[order[jr]] = kInf;
    } else {
      const double g2 = gdd(serial[k]);
      const double off = 1.0 * g2;
      for (std::size_t jr = 0; jr < k; ++jr) out_row[order[jr]] = off;
      out_row[order[k]] = static_cast<double>(n - k) * g2;
    }
    for (std::size_t jr = k + 1; jr < n; ++jr) out_row[order[jr]] = 0.0;
  }
}

// ---------------------------------------------------------------------------
// Best-response scan fast path (AllocationFunction::scan_prepare /
// scan_congestion_of). A best-response scan probes C_i at many trial rates
// x with the other rates fixed; for the sort-based disciplines everything
// about the opponents is independent of x, so one prepare stages
// per-insertion-position tables and each probe costs a binary search plus
// one g evaluation instead of a full sort + O(n) accumulation. Every
// table is accumulated in exactly the order the generic congestion_of_into
// would, so probes are bit-identical to the generic path.
// ---------------------------------------------------------------------------

/// Sorts the opponents of user i by (rate, index) into the scan lanes and
/// stamps ws.scan. Returns the opponent count n - 1.
inline std::size_t scan_sort_opponents(std::span<const double> rates,
                                       std::size_t i, EvalWorkspace& ws) {
  const std::size_t n = rates.size();
  ws.ensure(n);
  const std::size_t count = n - 1;
  const std::span<std::size_t> idx = ws.scan_index(count);
  std::size_t m = 0;
  for (std::size_t j = 0; j < n; ++j) {
    if (j != i) idx[m++] = j;
  }
  std::sort(idx.begin(), idx.end(), [rates](std::size_t a, std::size_t b) {
    if (rates[a] != rates[b]) return rates[a] < rates[b];
    return a < b;
  });
  const std::span<double> keys = ws.scan_keys(count);
  for (std::size_t q = 0; q < count; ++q) keys[q] = rates[idx[q]];
  ws.scan.n = n;
  ws.scan.i = i;
  ws.scan.count = count;
  return count;
}

/// Insertion position of trial rate x for user i among the staged
/// opponents: the number of opponents j with (r_j, j) < (x, i)
/// lexicographically — exactly the rank x would take under the family's
/// (key, index) sort.
inline std::size_t scan_insertion_pos(std::span<const double> keys,
                                      std::span<const std::size_t> idx,
                                      double x, std::size_t i) {
  std::size_t lo = 0;
  std::size_t hi = keys.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const bool before_x = keys[mid] < x || (keys[mid] == x && idx[mid] < i);
    if (before_x) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Prepare for the unweighted serial rule (Fair Share, general g): for
/// every insertion position p, the running share, trailing g value and
/// key prefix accumulated through ranks 0..p-1 — all independent of the
/// trial rate, accumulated in congestion_of_into's exact order (including
/// the no-g_prev-update-on-Inf saturation handling).
template <class G>
inline void serial_scan_prepare(std::span<const double> rates, std::size_t i,
                                G&& g, EvalWorkspace& ws) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t n = rates.size();
  const std::size_t count = scan_sort_opponents(rates, i, ws);
  const std::span<const double> keys = ws.scan_keys(count);
  const std::span<double> prefix = ws.scan_prefix(count + 1);
  const std::span<double> run = ws.scan_run(count + 1);
  const std::span<double> gprev = ws.scan_gprev(count + 1);
  double pref = 0.0;
  double running = 0.0;
  double g_prev = 0.0;
  prefix[0] = 0.0;
  run[0] = 0.0;
  gprev[0] = 0.0;
  for (std::size_t m = 0; m < count; ++m) {
    const double s = static_cast<double>(n - m) * keys[m] + pref;
    const double g_here = g(s);
    if (std::isinf(g_here)) {
      running = kInf;
    } else {
      running += (g_here - g_prev) / static_cast<double>(n - m);
      g_prev = g_here;
    }
    pref += keys[m];
    prefix[m + 1] = pref;
    run[m + 1] = running;
    gprev[m + 1] = g_prev;
  }
}

/// Probe for the unweighted serial rule: C_i at trial rate x, bit-identical
/// to congestion_of_into on the rates-with-x-at-i vector.
template <class G>
inline double serial_scan_probe(double x, G&& g, const EvalWorkspace::ScanState& scan,
                                EvalWorkspace& ws) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t pos = scan_insertion_pos(
      ws.scan_keys(scan.count), ws.scan_index(scan.count), x, scan.i);
  const double s =
      static_cast<double>(scan.n - pos) * x + ws.scan_prefix(pos + 1)[pos];
  const double g_here = g(s);
  if (std::isinf(g_here)) return kInf;
  return ws.scan_run(pos + 1)[pos] +
         (g_here - ws.scan_gprev(pos + 1)[pos]) /
             static_cast<double>(scan.n - pos);
}

// ---------------------------------------------------------------------------
// Classed-population evaluation (core/population.hpp). A ClassedPopulation
// stands for the expanded population in which class 0's members come first;
// under the family's (key, user-index) sort each class's members form one
// contiguous block and tied classes appear in class-index order, so the
// expanded rank structure is fully determined by per-class quantities:
//   m_t = number of expanded users before sorted class t (its first rank),
//   P_t = sum over earlier sorted classes of count * key,
//   S_t = (N - m_t) * key_t + P_t   (the serial load at rank m_t; within a
//         class the serial load is constant in exact arithmetic because
//         each step trades one (N - m) * key unit for one prefix unit).
// The expanded rank loop contributes (g(S) - g_prev)/(N - m) once per
// *distinct* serial load, i.e. once per class at its first rank — so the
// classed accumulation below visits classes in sorted order and reproduces
// the expanded running sum term for term, Inf handling included.
// ---------------------------------------------------------------------------

/// Classed serial staging: sorted class order, per-class serial loads and
/// first expanded ranks. Spans point into ws lanes (order / serial / b);
/// ws.sorted holds the class-indexed keys, ws.a stays free for jacobian
/// scratch.
struct ClassedSerialStage {
  std::span<const std::size_t> order;  ///< ascending (rate, class index)
  std::span<const double> serial;      ///< S_t per sorted position
  std::span<const double> first_rank;  ///< m_t per sorted position (double)
  double n_users = 0.0;                ///< N = pop.total_users()
};

inline ClassedSerialStage classed_serial_stage(const ClassedPopulation& pop,
                                               EvalWorkspace& ws) {
  const std::size_t k = pop.k();
  ws.ensure(k);
  const std::span<std::size_t> order = ws.order(k);
  const std::span<double> keys = ws.sorted(k);
  for (std::size_t a = 0; a < k; ++a) keys[a] = pop[a].rate;
  sorted_order_into(keys, order);
  const std::span<double> serial = ws.serial(k);
  const std::span<double> first_rank = ws.b(k);
  const double n_users = static_cast<double>(pop.total_users());
  double users_before = 0.0;
  double prefix = 0.0;
  for (std::size_t t = 0; t < k; ++t) {
    const RateClass& c = pop[order[t]];
    first_rank[t] = users_before;
    serial[t] = (n_users - users_before) * c.rate + prefix;
    users_before += static_cast<double>(c.count);
    prefix += static_cast<double>(c.count) * c.rate;
  }
  return {order, serial, first_rank, n_users};
}

/// Classed congestion for the unweighted serial rule: the expanded running
/// accumulation with one term per class, saturation handled exactly like
/// the expanded loop (running pinned to Inf, g_prev not advanced).
/// out[class] receives the congestion every member of the class shares.
template <class G>
inline void classed_serial_congestion(const ClassedSerialStage& s, G&& g,
                                      std::span<double> out) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t k = s.order.size();
  double running = 0.0;
  double g_prev = 0.0;
  for (std::size_t t = 0; t < k; ++t) {
    const double g_here = g(s.serial[t]);
    if (std::isinf(g_here)) {
      running = kInf;
    } else {
      running += (g_here - g_prev) / (s.n_users - s.first_rank[t]);
      g_prev = g_here;
    }
    out[s.order[t]] = running;
  }
}

/// Classed jacobian for the unweighted serial rule, in per-member terms:
/// own[a] = dC_i/dr_i for any member i of class a, and cross(a, b) =
/// dC_i/dr_j for a member i of a and a *different* member j of b (the
/// per-member sensitivity; a solver moving the whole class multiplies by
/// counts itself). Telescoping the expanded rank sum over class blocks
/// gives, with D_t = (g'(S_t) - g'(S_{t-1})) / (N - m_t) and its prefix
/// T_t = sum_{u<=t, u>=1} D_u:
///   own[a]      = g'(S_ta)
///   cross(a, b) = T_ta - T_tb   for tb < ta (earlier sorted class)
///   cross(a, a) = 0             (same-class members split one unit of
///                                load shift, net zero at equal rates)
///   cross(a, b) = 0             for tb > ta.
/// Saturated rows (S_ta >= saturation) emit Inf across b with tb <= ta and
/// own, mirroring serial_jacobian_fill. `tscratch` is a k-element lane
/// (ws.a). cross is resized to k x k.
template <class GPrime>
inline void classed_serial_jacobian(const ClassedSerialStage& s,
                                    double saturation, GPrime&& gp,
                                    std::span<double> tscratch,
                                    numerics::Matrix& cross,
                                    std::span<double> own) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t k = s.order.size();
  cross.resize(k, k);
  double gp_prev = 0.0;
  double t_acc = 0.0;
  for (std::size_t t = 0; t < k; ++t) {
    const double gp_here = gp(s.serial[t]);
    if (t > 0) t_acc += (gp_here - gp_prev) / (s.n_users - s.first_rank[t]);
    tscratch[t] = t_acc;
    own[s.order[t]] = gp_here;
    gp_prev = gp_here;
  }
  for (std::size_t ta = 0; ta < k; ++ta) {
    const std::size_t a = s.order[ta];
    double* const row = cross.row_data(a);
    if (s.serial[ta] >= saturation) {
      own[a] = kInf;
      for (std::size_t tb = 0; tb <= ta; ++tb) row[s.order[tb]] = kInf;
    } else {
      for (std::size_t tb = 0; tb < ta; ++tb) {
        row[s.order[tb]] = tscratch[ta] - tscratch[tb];
      }
      row[a] = 0.0;
    }
    for (std::size_t tb = ta + 1; tb < k; ++tb) row[s.order[tb]] = 0.0;
  }
}

/// Sorts the opponent classes of the probing class `a` by (rate, class
/// index) into the scan lanes and stamps ws.scan with n = total users,
/// i = a, count = opponent class count (class a itself participates with
/// count - 1 members and is dropped when that hits zero). Returns the
/// opponent class count.
inline std::size_t classed_scan_sort_opponents(const ClassedPopulation& pop,
                                               std::size_t a,
                                               EvalWorkspace& ws) {
  const std::size_t k = pop.k();
  ws.ensure(k);
  const std::size_t count = pop[a].count > 1 ? k : k - 1;
  const std::span<std::size_t> idx = ws.scan_index(count);
  std::size_t m = 0;
  for (std::size_t c = 0; c < k; ++c) {
    if (c != a || pop[a].count > 1) idx[m++] = c;
  }
  std::sort(idx.begin(), idx.end(), [&pop](std::size_t x, std::size_t y) {
    if (pop[x].rate != pop[y].rate) return pop[x].rate < pop[y].rate;
    return x < y;
  });
  const std::span<double> keys = ws.scan_keys(count);
  for (std::size_t q = 0; q < count; ++q) keys[q] = pop[idx[q]].rate;
  ws.scan.n = pop.total_users();
  ws.scan.i = a;
  ws.scan.count = count;
  return count;
}

/// Insertion position of trial rate x for the representative member of
/// class a among the staged opponent classes: an opponent class c sorts
/// before the probe iff key_c < x, or key_c == x and c <= a — `<=`, not
/// `<`, because at equal rates the probe is the LAST member of class a and
/// the class's remaining members sort before it.
inline std::size_t classed_scan_insertion_pos(std::span<const double> keys,
                                              std::span<const std::size_t> idx,
                                              double x, std::size_t a) {
  std::size_t lo = 0;
  std::size_t hi = keys.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const bool before_x = keys[mid] < x || (keys[mid] == x && idx[mid] <= a);
    if (before_x) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Classed prepare for the unweighted serial rule: per insertion position
/// p over opponent *classes*, the running share, trailing g value, rate
/// prefix and — in the scan_aux lane — the opponent *user*-count prefix
/// m_p, all accumulated in classed_serial_congestion's order.
template <class G>
inline void classed_serial_scan_prepare(const ClassedPopulation& pop,
                                        std::size_t a, G&& g,
                                        EvalWorkspace& ws) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t count = classed_scan_sort_opponents(pop, a, ws);
  const std::span<const std::size_t> idx = ws.scan_index(count);
  const std::span<const double> keys = ws.scan_keys(count);
  const std::span<double> prefix = ws.scan_prefix(count + 1);
  const std::span<double> run = ws.scan_run(count + 1);
  const std::span<double> gprev = ws.scan_gprev(count + 1);
  const std::span<double> aux = ws.scan_aux(count + 1);
  const double n_users = static_cast<double>(pop.total_users());
  double pref = 0.0;
  double running = 0.0;
  double g_prev = 0.0;
  double users = 0.0;
  prefix[0] = 0.0;
  run[0] = 0.0;
  gprev[0] = 0.0;
  aux[0] = 0.0;
  for (std::size_t p = 0; p < count; ++p) {
    const std::size_t c = idx[p];
    const double members = static_cast<double>(c == a ? pop[c].count - 1
                                                      : pop[c].count);
    const double s = (n_users - users) * keys[p] + pref;
    const double g_here = g(s);
    if (std::isinf(g_here)) {
      running = kInf;
    } else {
      running += (g_here - g_prev) / (n_users - users);
      g_prev = g_here;
    }
    users += members;
    pref += members * keys[p];
    prefix[p + 1] = pref;
    run[p + 1] = running;
    gprev[p + 1] = g_prev;
    aux[p + 1] = users;
  }
}

/// Classed probe for the unweighted serial rule: C of class a's
/// representative at trial rate x, matching classed_serial_congestion on
/// the population-with-x-at-a.
template <class G>
inline double classed_serial_scan_probe(double x, G&& g,
                                        const EvalWorkspace::ScanState& scan,
                                        EvalWorkspace& ws) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t pos = classed_scan_insertion_pos(
      ws.scan_keys(scan.count), ws.scan_index(scan.count), x, scan.i);
  const double share =
      static_cast<double>(scan.n) - ws.scan_aux(pos + 1)[pos];
  const double s = share * x + ws.scan_prefix(pos + 1)[pos];
  const double g_here = g(s);
  if (std::isinf(g_here)) return kInf;
  return ws.scan_run(pos + 1)[pos] +
         (g_here - ws.scan_gprev(pos + 1)[pos]) / share;
}

/// Classed prepare for the smallest-rate-first priority rule: count-scaled
/// key prefixes and trailing g(prefix) per insertion position.
template <class G>
inline void classed_priority_scan_prepare(const ClassedPopulation& pop,
                                          std::size_t a, G&& g,
                                          EvalWorkspace& ws) {
  const std::size_t count = classed_scan_sort_opponents(pop, a, ws);
  const std::span<const std::size_t> idx = ws.scan_index(count);
  const std::span<const double> keys = ws.scan_keys(count);
  const std::span<double> prefix = ws.scan_prefix(count + 1);
  const std::span<double> gprev = ws.scan_gprev(count + 1);
  double pref = 0.0;
  prefix[0] = 0.0;
  gprev[0] = 0.0;
  for (std::size_t p = 0; p < count; ++p) {
    const std::size_t c = idx[p];
    const double members = static_cast<double>(c == a ? pop[c].count - 1
                                                      : pop[c].count);
    pref += members * keys[p];
    prefix[p + 1] = pref;
    gprev[p + 1] = g(pref);
  }
}

/// Classed probe for the smallest-rate-first priority rule (representative
/// member: served after every tied same-class peer).
template <class G>
inline double classed_priority_scan_probe(double x, G&& g,
                                          const EvalWorkspace::ScanState& scan,
                                          EvalWorkspace& ws) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t pos = classed_scan_insertion_pos(
      ws.scan_keys(scan.count), ws.scan_index(scan.count), x, scan.i);
  const double g_here = g(ws.scan_prefix(pos + 1)[pos] + x);
  if (std::isinf(g_here)) return kInf;
  return g_here - ws.scan_gprev(pos + 1)[pos];
}

/// Prepare for the smallest-rate-first priority rule: key prefixes and the
/// trailing g(prefix) per insertion position (g_prev is updated
/// unconditionally in the priority accumulation, so no run[] lane).
template <class G>
inline void priority_scan_prepare(std::span<const double> rates, std::size_t i,
                                  G&& g, EvalWorkspace& ws) {
  const std::size_t count = scan_sort_opponents(rates, i, ws);
  const std::span<const double> keys = ws.scan_keys(count);
  const std::span<double> prefix = ws.scan_prefix(count + 1);
  const std::span<double> gprev = ws.scan_gprev(count + 1);
  double pref = 0.0;
  prefix[0] = 0.0;
  gprev[0] = 0.0;
  for (std::size_t m = 0; m < count; ++m) {
    pref += keys[m];
    prefix[m + 1] = pref;
    gprev[m + 1] = g(pref);
  }
}

/// Probe for the smallest-rate-first priority rule.
template <class G>
inline double priority_scan_probe(double x, G&& g,
                                  const EvalWorkspace::ScanState& scan,
                                  EvalWorkspace& ws) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t pos = scan_insertion_pos(
      ws.scan_keys(scan.count), ws.scan_index(scan.count), x, scan.i);
  const double g_here = g(ws.scan_prefix(pos + 1)[pos] + x);
  if (std::isinf(g_here)) return kInf;
  return g_here - ws.scan_gprev(pos + 1)[pos];
}

}  // namespace gw::core::serial
