#include "numerics/roots.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gw::numerics {
namespace {

TEST(Bisect, FindsSqrtTwo) {
  const auto result = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x, std::sqrt(2.0), 1e-9);
}

TEST(Bisect, ExactEndpointRoot) {
  const auto result = bisect([](double x) { return x; }, 0.0, 1.0);
  EXPECT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(result.x, 0.0);
}

TEST(Bisect, ThrowsWithoutSignChange) {
  EXPECT_THROW(
      (void)bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
      std::invalid_argument);
}

TEST(BrentRoot, FindsCosRoot) {
  const auto result = brent_root([](double x) { return std::cos(x); }, 1.0, 2.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x, M_PI / 2.0, 1e-10);
}

TEST(BrentRoot, HighMultiplicityRoot) {
  const auto result =
      brent_root([](double x) { return std::pow(x - 1.0, 3); }, 0.0, 3.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x, 1.0, 1e-4);
}

TEST(BrentRoot, FasterThanBisection) {
  int brent_evals = 0, bisect_evals = 0;
  auto f_brent = [&](double x) {
    ++brent_evals;
    return std::exp(x) - 5.0;
  };
  auto f_bisect = [&](double x) {
    ++bisect_evals;
    return std::exp(x) - 5.0;
  };
  const auto rb = brent_root(f_brent, 0.0, 4.0);
  const auto rs = bisect(f_bisect, 0.0, 4.0);
  EXPECT_TRUE(rb.converged);
  EXPECT_TRUE(rs.converged);
  EXPECT_NEAR(rb.x, std::log(5.0), 1e-9);
  EXPECT_LT(brent_evals, bisect_evals);
}

TEST(NewtonRoot, QuadraticConvergence) {
  const auto result = newton_root([](double x) { return x * x - 2.0; },
                                  [](double x) { return 2.0 * x; }, 1.0, 0.0,
                                  2.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x, std::sqrt(2.0), 1e-10);
  EXPECT_LE(result.iterations, 8);
}

TEST(NewtonRoot, SafeguardedAgainstFlatDerivative) {
  // f'(x0) = 0 at the start; must fall back to bisection, not divide by 0.
  const auto result = newton_root(
      [](double x) { return x * x * x - 1.0; },
      [](double x) { return 3.0 * x * x; }, 0.0, -2.0, 2.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x, 1.0, 1e-8);
}

TEST(ExpandBracket, GrowsToFindSignChange) {
  const auto bracket =
      expand_bracket([](double x) { return x - 100.0; }, 0.0, 1.0);
  ASSERT_TRUE(bracket.has_value());
  EXPECT_LE(bracket->first, 100.0);
  EXPECT_GE(bracket->second, 100.0);
}

TEST(ExpandBracket, GivesUpWhenNoRoot) {
  const auto bracket =
      expand_bracket([](double x) { return x * x + 1.0; }, -1.0, 1.0, 10);
  EXPECT_FALSE(bracket.has_value());
}

TEST(RootOptions, TightToleranceHonored) {
  RootOptions options;
  options.f_tol = 1e-15;
  options.x_tol = 1e-15;
  const auto result =
      brent_root([](double x) { return x * x * x - 8.0; }, 0.0, 5.0, options);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x, 2.0, 1e-12);
}

}  // namespace
}  // namespace gw::numerics
