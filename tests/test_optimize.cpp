#include "numerics/optimize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace gw::numerics {
namespace {

TEST(GoldenSection, FindsParabolaPeak) {
  const auto result = golden_section_max(
      [](double x) { return -(x - 0.3) * (x - 0.3); }, 0.0, 1.0);
  EXPECT_NEAR(result.x, 0.3, 1e-7);
}

TEST(BrentMax, FindsSinePeak) {
  const auto result = brent_max([](double x) { return std::sin(x); }, 0.0, 3.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x, M_PI / 2.0, 1e-8);
  EXPECT_NEAR(result.value, 1.0, 1e-12);
}

TEST(BrentMax, EdgeMaximum) {
  const auto result = brent_max([](double x) { return x; }, 0.0, 2.0);
  EXPECT_NEAR(result.x, 2.0, 1e-6);
}

TEST(MaximizeScan, EscapesLocalMaxima) {
  // Two humps; the taller is near x = 2.2.
  auto f = [](double x) {
    return std::exp(-10.0 * (x - 0.5) * (x - 0.5)) +
           1.5 * std::exp(-10.0 * (x - 2.2) * (x - 2.2));
  };
  const auto result = maximize_scan(f, 0.0, 3.0);
  EXPECT_NEAR(result.x, 2.2, 1e-4);
}

TEST(MaximizeScan, HandlesInfiniteRegions) {
  // -inf outside (0, 1): the optimizer must ignore the infeasible zone.
  auto f = [](double x) {
    if (x <= 0.0 || x >= 1.0) return -std::numeric_limits<double>::infinity();
    return -(x - 0.6) * (x - 0.6);
  };
  const auto result = maximize_scan(f, -1.0, 2.0);
  EXPECT_NEAR(result.x, 0.6, 1e-4);
}

TEST(MaximizeScan, AllInfeasibleReportsNotConverged) {
  auto f = [](double) { return -std::numeric_limits<double>::infinity(); };
  const auto result = maximize_scan(f, 0.0, 1.0);
  EXPECT_FALSE(result.converged);
  EXPECT_TRUE(std::isinf(result.value));
}

TEST(MaximizeScan, PlateauReturnsPointOnPlateau) {
  auto f = [](double x) { return (x > 0.4 && x < 0.6) ? 1.0 : 0.0; };
  const auto result = maximize_scan(f, 0.0, 1.0);
  EXPECT_GT(result.x, 0.39);
  EXPECT_LT(result.x, 0.61);
  EXPECT_DOUBLE_EQ(result.value, 1.0);
}

TEST(NelderMead, QuadraticBowl2D) {
  auto f = [](const std::vector<double>& x) {
    const double dx = x[0] - 1.0, dy = x[1] + 2.0;
    return -(dx * dx + 3.0 * dy * dy);
  };
  const auto result = nelder_mead_max(f, {0.0, 0.0});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 1.0, 1e-4);
  EXPECT_NEAR(result.x[1], -2.0, 1e-4);
}

TEST(NelderMead, RosenbrockRidge) {
  auto f = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return -(a * a + 100.0 * b * b);
  };
  NelderMeadOptions options;
  options.max_evaluations = 50000;
  options.f_tol = 1e-14;
  const auto result = nelder_mead_max(f, {-1.0, 1.0}, options);
  EXPECT_NEAR(result.x[0], 1.0, 2e-2);
  EXPECT_NEAR(result.x[1], 1.0, 4e-2);
}

TEST(NelderMead, RespectsInfeasiblePenalty) {
  auto f = [](const std::vector<double>& x) {
    if (x[0] < 0.0) return -std::numeric_limits<double>::infinity();
    return -(x[0] - 0.5) * (x[0] - 0.5) - x[1] * x[1];
  };
  const auto result = nelder_mead_max(f, {0.2, 0.3});
  EXPECT_NEAR(result.x[0], 0.5, 1e-3);
  EXPECT_NEAR(result.x[1], 0.0, 1e-3);
}

TEST(NelderMead, ThrowsOnEmptyStart) {
  EXPECT_THROW(
      (void)nelder_mead_max([](const std::vector<double>&) { return 0.0; }, {}),
      std::invalid_argument);
}

}  // namespace
}  // namespace gw::numerics
