// greedworks explorer — a command-line front end for the library.
//
//   explore_cli nash        --disc fs   --gammas 0.2,0.4,0.6
//   explore_cli envy        --disc fifo --gammas 0.25,0.25 --rates 0.1,0.4
//   explore_cli protection  --disc fifo --rate 0.1 --users 4
//   explore_cli stackelberg --disc fifo --gammas 0.25,0.25,0.25 --leader 0
//   explore_cli simulate    --disc drr  --rates 0.1,0.3,0.8
//   explore_cli table1      --rates 0.05,0.1,0.15,0.2
//
// Every command prints what the library computed and, where relevant, the
// paper's prediction next to it.
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/envy.hpp"
#include "core/fair_share.hpp"
#include "core/mixture.hpp"
#include "core/nash.hpp"
#include "core/pareto.hpp"
#include "core/priority_alloc.hpp"
#include "core/proportional.hpp"
#include "core/protection.hpp"
#include "core/stackelberg.hpp"
#include "sim/runner.hpp"

namespace {

using namespace gw;

[[noreturn]] void usage() {
  std::printf(
      "usage: explore_cli <command> [--key value]...\n"
      "commands:\n"
      "  nash        --disc fs|fifo|srf|mix:T --gammas g1,g2,...\n"
      "  envy        --disc ... --gammas ... --rates r1,r2,...\n"
      "  protection  --disc ... --rate R --users N\n"
      "  stackelberg --disc ... --gammas ... --leader K\n"
      "  simulate    --disc fifo|lifo|ps|fs|fsadapt|drr|sfq|rprio --rates ...\n"
      "  table1      --rates r1,r2,...\n");
  std::exit(2);
}

std::vector<double> parse_list(const std::string& text) {
  std::vector<double> out;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t comma = text.find(',', begin);
    const std::string token =
        text.substr(begin, comma == std::string::npos ? comma : comma - begin);
    if (!token.empty()) out.push_back(std::stod(token));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) usage();
    flags[argv[i] + 2] = argv[i + 1];
  }
  return flags;
}

std::shared_ptr<const core::AllocationFunction> make_alloc(
    const std::string& name) {
  if (name == "fs") return std::make_shared<core::FairShareAllocation>();
  if (name == "fifo") return std::make_shared<core::ProportionalAllocation>();
  if (name == "srf") {
    return std::make_shared<core::SmallestRateFirstAllocation>();
  }
  if (name.rfind("mix:", 0) == 0) {
    return std::make_shared<core::MixtureAllocation>(
        std::stod(name.substr(4)));
  }
  std::printf("unknown discipline '%s'\n", name.c_str());
  std::exit(2);
}

core::UtilityProfile profile_from_gammas(const std::vector<double>& gammas) {
  core::UtilityProfile profile;
  for (const double gamma : gammas) {
    profile.push_back(core::make_linear(1.0, gamma));
  }
  return profile;
}

int cmd_nash(const std::map<std::string, std::string>& flags) {
  const auto alloc = make_alloc(flags.count("disc") ? flags.at("disc") : "fs");
  const auto gammas =
      parse_list(flags.count("gammas") ? flags.at("gammas") : "0.25,0.25");
  const auto profile = profile_from_gammas(gammas);
  const std::size_t n = profile.size();
  const auto nash =
      core::solve_nash(*alloc, profile, std::vector<double>(n, 0.1));
  const auto queues = alloc->congestion(nash.rates);
  std::printf("%s: Nash %s after %d sweeps\n", alloc->name().c_str(),
              nash.converged ? "converged" : "NOT converged",
              nash.iterations);
  std::printf("%-6s %-8s %-10s %-12s %-10s\n", "user", "gamma", "rate",
              "congestion", "utility");
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("%-6zu %-8.3f %-10.4f %-12.4f %-10.5f\n", i + 1, gammas[i],
                nash.rates[i], queues[i],
                profile[i]->value(nash.rates[i], queues[i]));
  }
  const auto domination =
      core::find_dominating_allocation(profile, nash.rates, queues);
  std::printf("Pareto-dominated: %s | max envy: %.5f\n",
              domination.dominated ? "YES" : "no",
              core::max_envy(profile, nash.rates, queues));
  return nash.converged ? 0 : 1;
}

int cmd_envy(const std::map<std::string, std::string>& flags) {
  const auto alloc = make_alloc(flags.count("disc") ? flags.at("disc")
                                                    : "fifo");
  const auto gammas =
      parse_list(flags.count("gammas") ? flags.at("gammas") : "0.25,0.25");
  const auto rates =
      parse_list(flags.count("rates") ? flags.at("rates") : "0.1,0.4");
  const auto profile = profile_from_gammas(gammas);
  const auto queues = alloc->congestion(rates);
  const auto envy = core::envy_matrix(profile, rates, queues);
  std::printf("%s envy matrix (row envies column when positive):\n",
              alloc->name().c_str());
  for (std::size_t i = 0; i < envy.rows(); ++i) {
    for (std::size_t j = 0; j < envy.cols(); ++j) {
      std::printf("%10.5f", envy(i, j));
    }
    std::printf("\n");
  }
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const auto unilateral = core::unilateral_envy(*alloc, profile, rates, i);
    std::printf("user %zu best-responds to %.4f, residual envy %.5f\n",
                i + 1, unilateral.best_response_rate, unilateral.max_envy);
  }
  return 0;
}

int cmd_protection(const std::map<std::string, std::string>& flags) {
  const auto alloc = make_alloc(flags.count("disc") ? flags.at("disc")
                                                    : "fifo");
  const double rate = flags.count("rate") ? std::stod(flags.at("rate")) : 0.1;
  const std::size_t users =
      flags.count("users") ? std::stoul(flags.at("users")) : 4;
  const auto scan = core::scan_protection(*alloc, 0, rate, users);
  std::printf("%s: user at rate %.3f among %zu users\n",
              alloc->name().c_str(), rate, users);
  std::printf("protective bound r/(1-Nr) = %.4f\n", scan.bound);
  std::printf("worst congestion found   = %.4f -> %s\n", scan.max_congestion,
              scan.protective ? "PROTECTIVE" : "NOT protective");
  return 0;  // a negative finding is still a successful analysis
}

int cmd_stackelberg(const std::map<std::string, std::string>& flags) {
  const auto alloc = make_alloc(flags.count("disc") ? flags.at("disc")
                                                    : "fifo");
  const auto gammas = parse_list(
      flags.count("gammas") ? flags.at("gammas") : "0.25,0.25,0.25");
  const std::size_t leader =
      flags.count("leader") ? std::stoul(flags.at("leader")) : 0;
  const auto profile = profile_from_gammas(gammas);
  const auto result = core::solve_stackelberg(alloc, profile, leader);
  std::printf("%s, user %zu leading:\n", alloc->name().c_str(), leader + 1);
  std::printf("Nash leader utility        %.5f at rate %.4f\n",
              result.nash_leader_utility, result.nash_rates[leader]);
  std::printf("Stackelberg leader utility %.5f at rate %.4f\n",
              result.leader_utility, result.leader_rate);
  std::printf("advantage of sophistication: %+.6f\n", result.advantage());
  return 0;
}

int cmd_simulate(const std::map<std::string, std::string>& flags) {
  static const std::map<std::string, sim::Discipline> kDisciplines{
      {"fifo", sim::Discipline::kFifo},
      {"lifo", sim::Discipline::kLifoPreempt},
      {"ps", sim::Discipline::kProcessorSharing},
      {"fs", sim::Discipline::kFairShareOracle},
      {"fsadapt", sim::Discipline::kFairShareAdaptive},
      {"drr", sim::Discipline::kDrr},
      {"sfq", sim::Discipline::kSfq},
      {"rprio", sim::Discipline::kRatePriority},
  };
  const std::string name =
      flags.count("disc") ? flags.at("disc") : std::string("fifo");
  const auto found = kDisciplines.find(name);
  if (found == kDisciplines.end()) usage();
  const auto rates =
      parse_list(flags.count("rates") ? flags.at("rates") : "0.2,0.3");
  sim::RunOptions options;
  if (flags.count("seed")) options.seed = std::stoull(flags.at("seed"));
  const auto result = sim::run_switch(found->second, rates, options);
  std::printf("%s, %zu users, %.0f simulated time units, %zu events\n",
              sim::discipline_name(found->second), rates.size(),
              result.measured_time, result.events);
  std::printf("%-6s %-8s %-14s %-12s %-12s\n", "user", "rate",
              "mean queue+/-", "mean delay", "throughput");
  for (std::size_t u = 0; u < rates.size(); ++u) {
    const auto& stats = result.users[u];
    std::printf("%-6zu %-8.3f %7.4f+/-%-6.4f %-12.4f %-12.4f\n", u + 1,
                rates[u], stats.mean_queue, stats.queue_ci.half_width,
                stats.mean_delay, stats.throughput);
  }
  return 0;
}

int cmd_table1(const std::map<std::string, std::string>& flags) {
  const auto rates = parse_list(
      flags.count("rates") ? flags.at("rates") : "0.05,0.1,0.15,0.2");
  const auto decomposition = core::fair_share_decomposition(rates);
  std::printf("Fair Share priority decomposition (paper Table 1):\n");
  std::printf("%-6s", "user");
  for (std::size_t l = 0; l < rates.size(); ++l) {
    std::printf("  lvl%-4zu", l);
  }
  std::printf("\n");
  for (std::size_t u = 0; u < rates.size(); ++u) {
    std::printf("%-6zu", u + 1);
    for (std::size_t l = 0; l < rates.size(); ++l) {
      const double slice = decomposition.slice_rate[u][l];
      if (slice > 0.0) {
        std::printf("  %-7.3f", slice);
      } else {
        std::printf("  %-7s", "-");
      }
    }
    std::printf("\n");
  }
  const core::FairShareAllocation fs;
  const auto congestion = fs.congestion(rates);
  std::printf("resulting C^FS:");
  for (const double c : congestion) std::printf(" %.4f", c);
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  const auto flags = parse_flags(argc, argv, 2);
  if (command == "nash") return cmd_nash(flags);
  if (command == "envy") return cmd_envy(flags);
  if (command == "protection") return cmd_protection(flags);
  if (command == "stackelberg") return cmd_stackelberg(flags);
  if (command == "simulate") return cmd_simulate(flags);
  if (command == "table1") return cmd_table1(flags);
  usage();
}
