#include "numerics/differentiate.hpp"

#include <cmath>
#include <cstdlib>

namespace gw::numerics {

namespace {

double scaled_step(double x, double base) {
  return base * std::max(1.0, std::abs(x));
}

}  // namespace

double derivative(const std::function<double(double)>& f, double x,
                  const DiffOptions& options) {
  // Richardson tableau over central differences with halving steps.
  const int levels = std::max(options.richardson, 0) + 1;
  double h = scaled_step(x, options.step);
  std::vector<double> row(levels);
  std::vector<double> prev(levels);
  for (int i = 0; i < levels; ++i) {
    row[0] = (f(x + h) - f(x - h)) / (2.0 * h);
    for (int k = 1; k <= i; ++k) {
      const double factor = std::pow(4.0, k);
      row[k] = (factor * row[k - 1] - prev[k - 1]) / (factor - 1.0);
    }
    std::swap(row, prev);
    h *= 0.5;
  }
  return prev[levels - 1];
}

double one_sided_derivative(const std::function<double(double)>& f, double x,
                            int direction, const DiffOptions& options) {
  const double h = scaled_step(x, options.step) * (direction >= 0 ? 1.0 : -1.0);
  // Second-order one-sided formula.
  return (-3.0 * f(x) + 4.0 * f(x + h) - f(x + 2.0 * h)) / (2.0 * h);
}

double second_derivative(const std::function<double(double)>& f, double x,
                         const DiffOptions& options) {
  const double h = scaled_step(x, std::sqrt(options.step) * 1e-1);
  return (f(x + h) - 2.0 * f(x) + f(x - h)) / (h * h);
}

double partial(const std::function<double(const std::vector<double>&)>& f,
               std::vector<double> x, std::size_t i,
               const DiffOptions& options) {
  const double xi = x[i];
  return derivative(
      [&](double v) {
        x[i] = v;
        const double out = f(x);
        x[i] = xi;
        return out;
      },
      xi, options);
}

double mixed_partial(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x, std::size_t i, std::size_t j,
    const DiffOptions& options) {
  if (i == j) {
    const double xi = x[i];
    return second_derivative(
        [&](double v) {
          x[i] = v;
          const double out = f(x);
          x[i] = xi;
          return out;
        },
        xi, options);
  }
  const double hi = scaled_step(x[i], options.step * 10.0);
  const double hj = scaled_step(x[j], options.step * 10.0);
  auto at = [&](double di, double dj) {
    std::vector<double> point = x;
    point[i] += di;
    point[j] += dj;
    return f(point);
  };
  return (at(hi, hj) - at(hi, -hj) - at(-hi, hj) + at(-hi, -hj)) /
         (4.0 * hi * hj);
}

std::vector<double> gradient(
    const std::function<double(const std::vector<double>&)>& f,
    const std::vector<double>& x, const DiffOptions& options) {
  std::vector<double> grad(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    grad[i] = partial(f, x, i, options);
  }
  return grad;
}

}  // namespace gw::numerics
