#include "core/gfunction.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace gw::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

GFunction GFunction::mm1() {
  GFunction g;
  g.name = "M/M/1";
  g.value = [](double x) {
    if (x <= 0.0) return 0.0;
    if (x >= 1.0) return kInf;
    return x / (1.0 - x);
  };
  g.prime = [](double x) {
    if (x >= 1.0) return kInf;
    const double u = 1.0 - x;
    return 1.0 / (u * u);
  };
  g.double_prime = [](double x) {
    if (x >= 1.0) return kInf;
    const double u = 1.0 - x;
    return 2.0 / (u * u * u);
  };
  g.saturation = 1.0;
  return g;
}

GFunction GFunction::mg1(double scv) {
  if (scv < 0.0) throw std::invalid_argument("GFunction::mg1: scv < 0");
  GFunction g;
  g.name = "M/G/1(scv=" + std::to_string(scv) + ")";
  const double k = (1.0 + scv) / 2.0;
  g.value = [k](double x) {
    if (x <= 0.0) return 0.0;
    if (x >= 1.0) return kInf;
    return x + k * x * x / (1.0 - x);
  };
  g.prime = [k](double x) {
    if (x >= 1.0) return kInf;
    const double u = 1.0 - x;
    // d/dx [x + k x^2/(1-x)] = 1 + k (2x(1-x) + x^2) / (1-x)^2.
    return 1.0 + k * (2.0 * x * u + x * x) / (u * u);
  };
  g.double_prime = [k](double x) {
    if (x >= 1.0) return kInf;
    const double u = 1.0 - x;
    // d2/dx2 = 2k / (1-x)^3.
    return 2.0 * k / (u * u * u);
  };
  g.saturation = 1.0;
  return g;
}

GFunction GFunction::quadratic() {
  GFunction g;
  g.name = "quadratic";
  g.value = [](double x) { return x * x; };
  g.prime = [](double x) { return 2.0 * x; };
  g.double_prime = [](double) { return 2.0; };
  g.saturation = kInf;
  return g;
}

GFunction GFunction::power(double p) {
  if (p <= 1.0) throw std::invalid_argument("GFunction::power: need p > 1");
  GFunction g;
  g.name = "power(" + std::to_string(p) + ")";
  g.value = [p](double x) { return x <= 0.0 ? 0.0 : std::pow(x, p); };
  g.prime = [p](double x) {
    return x <= 0.0 ? 0.0 : p * std::pow(x, p - 1.0);
  };
  g.double_prime = [p](double x) {
    return x <= 0.0 ? 0.0 : p * (p - 1.0) * std::pow(x, p - 2.0);
  };
  g.saturation = kInf;
  return g;
}

}  // namespace gw::core
