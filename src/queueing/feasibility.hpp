// The paper's feasible-allocation region (Section 3.1).
//
// An allocation (r, c) is realizable by a work-conserving discipline iff
//   F(r, c) = sum_i c_i - g(sum_i r_i) = 0
// and, for users ordered by increasing c_i / r_i, every prefix satisfies
//   sum_{i<=k} c_i >= g(sum_{i<=k} r_i)           (subsidiary constraints)
// (checking the increasing-ratio ordering suffices; see Coffman & Mitrani).
#pragma once

#include <vector>

namespace gw::queueing {

/// F(r, c) = sum c_i - g(sum r_i). NaN-free; +/-inf propagate.
[[nodiscard]] double constraint_residual(const std::vector<double>& rates,
                                         const std::vector<double>& queues);

/// Result of a feasibility check.
struct Feasibility {
  bool on_constraint = false;     ///< |F| within tolerance
  bool subsets_ok = false;        ///< all subsidiary prefix constraints hold
  double worst_prefix_slack = 0;  ///< min over prefixes of lhs - rhs
  double residual = 0.0;          ///< value of F

  [[nodiscard]] bool feasible() const noexcept {
    return on_constraint && subsets_ok;
  }
  /// Interior: subsidiary constraints strictly satisfied.
  [[nodiscard]] bool interior(double margin = 1e-12) const noexcept {
    return on_constraint && worst_prefix_slack > margin;
  }
};

/// Full feasibility check of an allocation. Requires rates.size() ==
/// queues.size(); throws std::invalid_argument otherwise or on negative
/// rates.
[[nodiscard]] Feasibility check_feasibility(const std::vector<double>& rates,
                                            const std::vector<double>& queues,
                                            double tolerance = 1e-9);

/// True iff the rate vector lies in the natural domain
/// D = { r : r_i > 0, sum r_i < 1 }.
[[nodiscard]] bool in_natural_domain(const std::vector<double>& rates) noexcept;

}  // namespace gw::queueing
