// Nash equilibrium computation for the switch congestion game
// (paper Definition 1 and Sections 4.1–4.2).
//
// A point r is a Nash equilibrium when no user can raise her utility by a
// unilateral rate change. Best responses are computed by *global* scalar
// maximization (scan + Brent), so the solvers remain correct where payoffs
// are non-concave or partially infeasible (congestion jumps to +infinity).
#pragma once

#include <vector>

#include "core/allocation.hpp"
#include "core/utility.hpp"
#include "numerics/matrix.hpp"

namespace gw::core {

struct BestResponseOptions {
  double r_min = 1e-6;   ///< lower edge of the candidate interval
  double r_max = 0.999;  ///< upper edge (paper: candidates in [0, 1])
  int scan_points = 201; ///< coarse scan resolution before refinement
  /// When > 0, the candidate scan is narrowed to
  /// [r_i - warm_radius, r_i + warm_radius] (clamped to [r_min, r_max]),
  /// the warm-start path used by the streaming control plane: near an
  /// equilibrium the best response moves only slightly, so a local scan
  /// with `warm_scan_points` samples replaces the full-interval sweep. If
  /// the argmax pins to a shrunken edge the search falls back to the full
  /// interval, so the result is exact whenever the payoff is unimodal on
  /// the excluded side (true for the AU utility families near interior
  /// equilibria).
  double warm_radius = 0.0;
  int warm_scan_points = 33;  ///< scan resolution inside the warm window
};

struct BestResponse {
  double rate = 0.0;
  double utility = 0.0;
};

/// User i's utility-maximizing rate against fixed opponents' rates.
[[nodiscard]] BestResponse best_response(const AllocationFunction& alloc,
                                         const Utility& utility,
                                         std::vector<double> rates,
                                         std::size_t i,
                                         const BestResponseOptions& options = {});

/// Allocation-free hot path used by the solvers: `rates` must be
/// pre-validated (AllocationFunction::validate_rates); candidate rates are
/// written into rates[i] during the scan and the original value is
/// restored before returning. Draws all scratch from `ws`.
[[nodiscard]] BestResponse best_response(const AllocationFunction& alloc,
                                         const Utility& utility,
                                         std::span<double> rates, std::size_t i,
                                         const BestResponseOptions& options,
                                         EvalWorkspace& ws);

enum class UpdateOrder {
  kSequential,         ///< Gauss–Seidel: apply each best response immediately
  kSynchronous,        ///< Jacobi: all users move simultaneously
  kRandomPermutation,  ///< Gauss–Seidel in a fresh random order per sweep
};

struct NashOptions {
  UpdateOrder order = UpdateOrder::kSequential;
  double damping = 1.0;  ///< r <- (1-damping) r + damping * BR(r)
  int max_iterations = 400;
  double tolerance = 1e-9;  ///< max rate movement per sweep at convergence
  BestResponseOptions best_response;
  unsigned seed = 7;  ///< for kRandomPermutation
};

struct NashResult {
  std::vector<double> rates;
  bool converged = false;
  int iterations = 0;
  double max_move = 0.0;  ///< movement in the final sweep
};

/// Best-response dynamics from `start`. `profile.size()` must match
/// `start.size()`; throws std::invalid_argument otherwise.
[[nodiscard]] NashResult solve_nash(const AllocationFunction& alloc,
                                    const UtilityProfile& profile,
                                    std::vector<double> start,
                                    const NashOptions& options = {});

/// Result of the classed (symmetric-within-class) Nash solve.
struct ClassedNashResult {
  ClassedPopulation population;   ///< equilibrium rates, counts unchanged
  bool converged = false;
  int iterations = 0;             ///< best-response + verification sweeps
  int polish_iterations = 0;      ///< k-dim Newton iterations accepted
  double max_move = 0.0;          ///< rate movement in the final BR sweep
  double max_residual = 0.0;      ///< max projected classed KKT residual
  bool used_expansion = false;    ///< fell back to the expanded solver
  /// When used_expansion: the largest within-class rate spread the expanded
  /// solve produced before compression (0 means the expanded equilibrium
  /// was exactly class-symmetric).
  double expansion_spread = 0.0;
};

/// Symmetric-Nash solve over a classed population: same-class users share a
/// best response, so one representative evaluation per class replaces
/// count_a identical ones — solver state is O(k), independent of
/// total_users(). When the discipline has a classed Jacobian the solver
/// runs a damped k-dim Newton on the classed KKT system
/// E_a = M_a(rho_a, C_a) + dC_rep/dr_rep, converged when the projected
/// residual falls below options.tolerance (or, if the line search stalls
/// first, when the stalled full Newton step does — solve_nash's
/// rate-movement criterion), then
/// verifies the point with one global best-response scan per class
/// (utility slack 1e-7, as is_nash); per-class best-response sweeps are
/// used only to globalize when Newton stalls — applied to whole classes
/// they diverge under densely-coupled disciplines (see nash_classed.cpp),
/// and the scan+Brent argmax is only ~1e-8 accurate anyway, which would
/// drown the classed-vs-expanded equivalence budget. Without a classed
/// Jacobian the solver runs feasibility-guarded best-response dynamics on
/// the k class rates (honoring options.order / damping / warm windows
/// exactly like solve_nash), converged on rate movement.
/// `class_profile` has one utility per class (all members share it).
/// Disciplines without classed closed forms are handled by transparent
/// expansion: solve_nash on expand(pop) with per-class mean compression
/// (used_expansion / expansion_spread report it), so the entry point is
/// total.
[[nodiscard]] ClassedNashResult solve_nash_classed(
    const AllocationFunction& alloc, const UtilityProfile& class_profile,
    ClassedPopulation start, const NashOptions& options = {});

/// Classed KKT residuals E_a = M_a(rho_a, C_a) + dC_rep/dr_rep per class
/// (the per-member first-order condition at the representative; zero at an
/// interior symmetric equilibrium). NaN where C_a is infinite or a term
/// fails to evaluate. Uses the classed closed forms when available, else
/// evaluates the expanded population at each class representative.
[[nodiscard]] std::vector<double> classed_kkt_residuals(
    const AllocationFunction& alloc, const UtilityProfile& class_profile,
    const ClassedPopulation& pop);

/// The Nash first-derivative residuals E_i = M_i(r_i, C_i(r)) + dC_i/dr_i
/// (zero at an interior Nash point). Entries are NaN where C_i is infinite.
[[nodiscard]] std::vector<double> fdc_residuals(const AllocationFunction& alloc,
                                                const UtilityProfile& profile,
                                                const std::vector<double>& rates);

/// Verifies the Nash property directly: no user can improve her utility by
/// more than `utility_slack` with a unilateral move.
[[nodiscard]] bool is_nash(const AllocationFunction& alloc,
                           const UtilityProfile& profile,
                           const std::vector<double>& rates,
                           double utility_slack = 1e-7,
                           const BestResponseOptions& options = {});

/// dE_i/dr_j assembled from the allocation's partials and the utility's
/// second derivatives (chain rule through C_i).
[[nodiscard]] double fdc_jacobian_entry(const AllocationFunction& alloc,
                                        const UtilityProfile& profile,
                                        const std::vector<double>& rates,
                                        std::size_t i, std::size_t j);

/// User i's FDC residual E_i = M_i + dC_i/dr_i and own-slope dE_i/dr_i in
/// one evaluation — the pair consumed by a single coordinate Newton step.
/// Both are NaN where C_i is infinite. This is the rank-1 refresh primitive
/// of the control plane: when only user i's utility churns, row i of the
/// FDC system is the only row that changes at the current rate point, so an
/// incremental repair can re-solve E_i(r_i) = 0 alone before deciding
/// whether a global sweep is needed.
struct FdcTerms {
  double residual = 0.0;  ///< E_i = M_i(r_i, C_i) + dC_i/dr_i
  double slope = 0.0;     ///< dE_i/dr_i
};
[[nodiscard]] FdcTerms fdc_terms(const AllocationFunction& alloc,
                                 const Utility& utility,
                                 const std::vector<double>& rates,
                                 std::size_t i);

/// Lean warm-start entry point for the Section 4.2.3 synchronous Newton
/// relaxation (the Theorem 7 engine): iterates the Jacobi Newton update in
/// place on `rates` until max_i |E_i| <= tolerance, drawing the residuals
/// and slopes from one batched congestion/jacobian/second-partials pass per
/// sweep instead of per-entry recomputation, and recording no trajectory.
/// This is the fast re-convergence path of gw::ctrl: warm-started from the
/// previous equilibrium it typically converges in a handful of sweeps
/// (exactly one plus verification in Fair Share's linear regime, where the
/// relaxation matrix is nilpotent).
/// Convergence for both incremental engines is measured on the projected
/// (KKT) residual: |E_i| for interior users, but zero for a user pinned at
/// the rate floor with E_i >= 0 (or at the cap with E_i <= 0) — such a user
/// is at her best response even though E_i != 0, and boundary equilibria
/// are routine under densely-coupled disciplines like FIFO.
struct RelaxOptions {
  int max_iterations = 64;
  double tolerance = 1e-9;  ///< max projected residual at convergence
};
struct RelaxResult {
  bool converged = false;
  int iterations = 0;        ///< Newton sweeps applied
  double max_residual = 0.0; ///< max projected residual at the final point
};
[[nodiscard]] RelaxResult relax_equilibrium(const AllocationFunction& alloc,
                                            const UtilityProfile& profile,
                                            std::vector<double>& rates,
                                            const RelaxOptions& options = {});

/// Dense Newton on the full FDC system E(r) = 0: assembles the complete
/// dE_i/dr_j Jacobian from the batched allocation partials, LU-solves for
/// the joint step, and backtracks on max_i |E_i|. This is the incremental
/// engine for densely-coupled disciplines — under FIFO every user's
/// congestion moves with the total load, so the per-user synchronous sweep
/// (relax_equilibrium) orbits a limit cycle while the full-Jacobian step
/// converges quadratically from a warm start. O(n^3) per iteration, which
/// at control-plane shard sizes is orders of magnitude below one
/// best-response scan sweep.
/// Users pinned at a rate bound with the KKT sign satisfied are frozen out
/// of the linear system (active-set projection), and convergence is
/// measured on the projected residual (see RelaxOptions).
struct NewtonFdcOptions {
  int max_iterations = 16;
  double tolerance = 1e-9;  ///< max projected residual at convergence
};
struct NewtonFdcResult {
  bool converged = false;
  int iterations = 0;
  double max_residual = 0.0;  ///< max projected residual at the final point
};
[[nodiscard]] NewtonFdcResult newton_fdc(const AllocationFunction& alloc,
                                         const UtilityProfile& profile,
                                         std::vector<double>& rates,
                                         const NewtonFdcOptions& options = {});

/// The synchronous-Newton relaxation matrix of paper Section 4.2.3:
///   A_ij = delta_ij - (dE_i/dr_j) / (dE_j/dr_j).
/// (The paper's displayed denominator dE_j/dr_i is a typo; this form is
/// the linearization of the Newton update and yields A_ii = 0 as stated.)
[[nodiscard]] numerics::Matrix relaxation_matrix(
    const AllocationFunction& alloc, const UtilityProfile& profile,
    const std::vector<double>& rates);

struct NewtonDynamicsResult {
  std::vector<std::vector<double>> trajectory;  ///< includes the start point
  bool converged = false;
  int iterations = 0;
};

/// Synchronous Newton self-optimization: every user simultaneously applies
/// r_i += -E_i / (dE_i/dr_i). Under Fair Share this converges in at most N
/// steps in the linear regime (Theorem 7).
[[nodiscard]] NewtonDynamicsResult newton_relaxation(
    const AllocationFunction& alloc, const UtilityProfile& profile,
    std::vector<double> start, int max_iterations = 100,
    double tolerance = 1e-10);

/// Multi-start equilibrium enumeration: runs solve_nash from `n_starts`
/// random interior points and clusters converged, Nash-verified outcomes
/// that differ by more than `distinct_tolerance` (L-infinity).
[[nodiscard]] std::vector<std::vector<double>> find_equilibria(
    const AllocationFunction& alloc, const UtilityProfile& profile,
    int n_starts, unsigned seed = 42, const NashOptions& options = {},
    double distinct_tolerance = 1e-4);

}  // namespace gw::core
