// Solver flight recorder: per-iteration convergence journals.
//
// The aggregate `core.nash.*` / `ctrl.*` metrics say *that* a solve took
// 900 sweeps or escalated to a cold re-solve; they cannot say *why*. A
// FlightJournal records the iterate trajectory itself — one compact tuple
// per solver sweep (iterate index, repair-ladder rung, projected KKT
// residual, max rate delta, damping factor, active-set size) plus discrete
// events (rung escalation, backtrack, dirty-gate trip, convergence
// verdict) — into per-thread ring buffers, and serializes everything as
// `gw.solvetrace.v1` JSONL for the `gw-inspect` CLI.
//
// Hot-path contract:
//   * No journal installed: FlightRecorder::begin() is one relaxed atomic
//     load; every other call is a predictable `if (!armed) return` branch.
//     Compiling with -DGW_FLIGHT_DISABLED removes even that (the recorder
//     collapses to an empty object).
//   * Journal installed: each record is a handful of plain stores into the
//     calling thread's own ring — no locks, no allocation after the ring's
//     one-time reservation. Registering a thread's ring with the journal
//     (once per thread per journal) takes the journal mutex; nothing else
//     does.
//
// Threading contract: a solve span (begin .. verdict) lives on one thread
// — exactly how the solvers run, including shard repairs dispatched over
// gw::exec's pool. Export (to_jsonl / write_file / clear) requires the
// journal to be quiescent: no solver concurrently recording, the same
// contract TraceSession has. Escalation dumps are the one concurrent
// export: they read only the *calling* thread's ring, so they are safe
// while other threads keep recording into theirs.
//
// Span nesting: SolverShard::repair opens the span and tags the ladder
// rung; the core engines it calls (relax_equilibrium, newton_fdc,
// solve_nash) also call begin(), detect the open span on their thread and
// join it — their iterations inherit the shard's rung and solve id, so one
// repair reads as a single trajectory across rung transitions. Called
// standalone (tests, benches, the learn driver) the same engines open
// their own spans.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gw::obs {

/// Which engine produced an iteration — the repair-ladder rung for
/// control-plane spans, the engine's own identity for standalone solves.
enum class FlightRung : std::uint8_t {
  kNone = 0,     ///< span opened, no rung tagged yet
  kSingleUser,   ///< ladder rung 1: rank-1 coordinate Newton
  kRelax,        ///< ladder rung 2 / standalone relax_equilibrium
  kNewton,       ///< ladder rung 3 / standalone newton_fdc
  kWarmSolve,    ///< ladder rung 4: warm best-response solve
  kFullSolve,    ///< ladder rung 5 / naive mode: cold best-response solve
  kSolve,        ///< standalone solve_nash (best-response dynamics)
  kDriver,       ///< learn::GameDriver rounds
};
[[nodiscard]] const char* flight_rung_name(FlightRung rung) noexcept;

/// Discrete solve events interleaved with the iteration stream.
enum class FlightEvent : std::uint8_t {
  kBegin = 0,    ///< span opened (label, population size)
  kRung,         ///< rung transition (ladder moved to `rung`)
  kEscalation,   ///< cold-solve fallback; triggers the journal dump
  kBacktrack,    ///< step halved (line search / feasibility damping)
  kDirtyGate,    ///< bulk-churn gate tripped (value = dirty fraction)
  kVerdict,      ///< convergence verdict (flag = converged)
};
[[nodiscard]] const char* flight_event_name(FlightEvent event) noexcept;

/// One ring slot. POD on purpose: recording is a struct copy. `label`
/// must point at static-lifetime storage (call sites pass literals).
struct FlightRecord {
  enum class Type : std::uint8_t { kIteration = 0, kEvent };
  Type type = Type::kIteration;
  FlightRung rung = FlightRung::kNone;
  FlightEvent event = FlightEvent::kBegin;  ///< kEvent only
  std::uint8_t flag = 0;        ///< verdict: converged
  std::uint32_t solve = 0;      ///< solve span id (journal-wide, unique)
  std::uint32_t iterate = 0;    ///< iterate index within the span
  std::uint32_t active_set = 0; ///< iteration: pinned users; begin: users
  double residual = 0.0;        ///< projected KKT residual (NaN: unmeasured)
  double max_delta = 0.0;       ///< max per-user rate move this iterate
  double damping = 0.0;         ///< damping / line-search factor applied
  const char* label = nullptr;  ///< begin events: span label
};

struct FlightOptions {
  /// Records kept per recording thread; wraparound overwrites the oldest
  /// so the newest `ring_capacity` iterations always survive.
  std::size_t ring_capacity = 1u << 14;
  /// When non-empty, every escalation writes the escalating solve's
  /// trajectory to `<dump_dir>/solvetrace-<solve_id>.jsonl` (the directory
  /// must exist). Empty: escalations are recorded but not dumped to disk.
  std::string dump_dir;
};

/// The journal: owns one ring per recording thread plus the solve-id
/// allocator. Install with set_active_flight() / ActiveFlightScope.
class FlightJournal {
 public:
  explicit FlightJournal(FlightOptions options = {});

  [[nodiscard]] const FlightOptions& options() const noexcept {
    return options_;
  }

  /// Records currently held across all thread rings (quiescent).
  [[nodiscard]] std::size_t recorded() const;
  /// Records overwritten by ring wraparound, summed over threads
  /// (quiescent).
  [[nodiscard]] std::uint64_t overwritten() const;
  /// Escalation dump files written (always current; atomic).
  [[nodiscard]] std::uint64_t dumps() const noexcept {
    return dumps_.load(std::memory_order_relaxed);
  }
  /// Solve spans opened so far (always current; atomic).
  [[nodiscard]] std::uint32_t solves() const noexcept {
    return next_solve_.load(std::memory_order_relaxed);
  }

  /// Serializes every ring as gw.solvetrace.v1 JSONL: a header line, then
  /// one record per line in per-thread chronological order (quiescent).
  [[nodiscard]] std::string to_jsonl() const;
  /// Writes to_jsonl() to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const;
  /// Empties every ring, keeping thread registrations (quiescent).
  void clear();

 private:
  friend class FlightRecorder;

  struct ThreadLog {
    std::vector<FlightRecord> ring;  ///< reserved to capacity up front
    std::size_t head = 0;            ///< oldest slot once the ring is full
    std::uint64_t overwritten = 0;
    std::size_t index = 0;  ///< registration order; the "thread" JSONL field
  };

  /// The calling thread's ring, registering it on first use.
  ThreadLog& thread_log();
  std::uint32_t open_solve() noexcept {
    return next_solve_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  static void append(ThreadLog& log, const FlightRecord& record,
                     std::size_t capacity);
  /// Writes `solve`'s records from `log` (the caller's own ring) to
  /// <dump_dir>/solvetrace-<solve>.jsonl.
  void dump_escalation(const ThreadLog& log, std::uint32_t solve);
  static void write_records(std::string& out, const ThreadLog& log,
                            std::uint32_t solve_filter, bool filter);

  FlightOptions options_;
  std::uint64_t uid_;  ///< distinguishes journals for thread-local caches
  std::atomic<std::uint32_t> next_solve_{0};
  std::atomic<std::uint64_t> dumps_{0};
  mutable std::mutex mutex_;  ///< guards logs_ (registration + export)
  std::vector<std::unique_ptr<ThreadLog>> logs_;
};

namespace detail {
inline std::atomic<FlightJournal*> g_active_flight{nullptr};
}  // namespace detail

/// The installed journal, or nullptr when flight recording is disabled.
/// Inline so the disabled fast path is a relaxed load + predictable branch.
[[nodiscard]] inline FlightJournal* active_flight() noexcept {
#ifdef GW_FLIGHT_DISABLED
  return nullptr;
#else
  return detail::g_active_flight.load(std::memory_order_relaxed);
#endif
}

/// Installs `journal` as the process-wide flight sink (nullptr disables).
/// Returns the previously installed journal. Swap only while quiescent.
inline FlightJournal* set_active_flight(FlightJournal* journal) noexcept {
#ifdef GW_FLIGHT_DISABLED
  (void)journal;
  return nullptr;
#else
  return detail::g_active_flight.exchange(journal, std::memory_order_release);
#endif
}

/// RAII: installs a journal for the enclosing scope, restores on exit.
class ActiveFlightScope {
 public:
  explicit ActiveFlightScope(FlightJournal& journal)
      : previous_(set_active_flight(&journal)) {}
  ~ActiveFlightScope() { set_active_flight(previous_); }
  ActiveFlightScope(const ActiveFlightScope&) = delete;
  ActiveFlightScope& operator=(const ActiveFlightScope&) = delete;

 private:
  FlightJournal* previous_;
};

/// The solver-side handle: obtained at solver entry, fed per sweep.
///
///   auto flight = obs::FlightRecorder::begin("core.relax", n,
///                                            obs::FlightRung::kRelax);
///   for (...) {
///     ...
///     if (flight.armed()) flight.iteration(residual, delta, damp, pinned);
///   }
///   flight.verdict(converged, residual);
///
/// begin() either opens a new solve span on this thread or, when one is
/// already open (the control-plane repair wrapping a core engine), joins
/// it: joined recorders share the span's solve id and rung and emit no
/// begin event. The recorder closes its span on destruction.
class FlightRecorder {
 public:
  /// `label` must be a string literal (static lifetime). `rung` tags the
  /// span's iterations until the next rung() call; ignored when joining
  /// an open span (the opener's rung stands).
  [[nodiscard]] static FlightRecorder begin(
      const char* label, std::size_t users,
      FlightRung rung = FlightRung::kSolve) noexcept;

  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// True when a journal is recording this span. Call sites guard any
  /// non-trivial input computation (active-set counts, deltas) on this.
  [[nodiscard]] bool armed() const noexcept {
#ifdef GW_FLIGHT_DISABLED
    return false;
#else
    return armed_;
#endif
  }
  /// The span's solve id (0 when disarmed).
  [[nodiscard]] std::uint32_t id() const noexcept;

  /// Rung transition: emits a kRung event and tags subsequent iterations.
  void rung(FlightRung rung) noexcept;
  /// One solver sweep: the per-iteration tuple of the journal.
  void iteration(double residual, double max_delta, double damping,
                 std::size_t active_set) noexcept;
  /// A discrete event at the current iterate (value lands in `residual`
  /// for kEscalation/kVerdict, `damping` otherwise).
  void event(FlightEvent kind, double value = 0.0) noexcept;
  /// Step halved `times` times down to `factor` (line search /
  /// feasibility damping): one kBacktrack event.
  void backtrack(double factor) noexcept { event(FlightEvent::kBacktrack, factor); }
  /// Cold-solve fallback: emits kEscalation tagged with the rung being
  /// escalated *to*, then dumps this solve's trajectory to the journal's
  /// dump_dir (when configured). Fires the dump exactly once per call.
  void escalation(FlightRung to, double residual) noexcept;
  /// Convergence verdict for the current engine/rung. The span's final
  /// verdict is the last one recorded before close.
  void verdict(bool converged, double residual) noexcept;

 private:
  FlightRecorder() = default;

#ifndef GW_FLIGHT_DISABLED
  FlightRecorder(bool armed, bool opened) noexcept
      : armed_(armed), opened_(opened) {}

  bool armed_ = false;
  bool opened_ = false;  ///< this recorder opened the span (closes it too)
#endif
};

}  // namespace gw::obs
