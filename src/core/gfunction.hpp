// Generalized aggregate-constraint functions (paper footnote 5).
//
// Every result in the paper holds for any queueing system whose feasible
// allocations satisfy sum_i c_i = g(sum_i r_i) with g strictly increasing
// and strictly convex. This module abstracts g so the serial (Fair Share)
// and proportional constructions — and all the game machinery on top —
// can run against M/M/1, M/G/1 with arbitrary service variability, or
// purely abstract convex technologies (Corollary 2 experiments).
#pragma once

#include <functional>
#include <string>

namespace gw::core {

struct GFunction {
  std::string name;
  std::function<double(double)> value;         ///< g(x); may return +inf
  std::function<double(double)> prime;         ///< g'(x)
  std::function<double(double)> double_prime;  ///< g''(x)
  /// Load at which g diverges (+inf beyond); infinity when g is finite
  /// everywhere (abstract technologies).
  double saturation = 1.0;

  /// The M/M/1 mean-queue curve g(x) = x / (1 - x).
  [[nodiscard]] static GFunction mm1();
  /// M/G/1 (P-K) mean-queue curve at squared coefficient of variation scv:
  /// g(x) = x + x^2 (1 + scv) / (2 (1 - x)).
  [[nodiscard]] static GFunction mg1(double scv);
  /// Abstract convex technology g(x) = x^2 (no saturation).
  [[nodiscard]] static GFunction quadratic();
  /// Abstract convex technology g(x) = x^p, p > 1 (no saturation).
  [[nodiscard]] static GFunction power(double p);
};

}  // namespace gw::core
