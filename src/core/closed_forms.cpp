#include "core/closed_forms.hpp"

#include <cmath>
#include <stdexcept>

namespace gw::core {

namespace {

SymmetricPoint from_idle(double idle, double gamma, std::size_t n) {
  SymmetricPoint point;
  point.idle = idle;
  point.rate = (1.0 - idle) / static_cast<double>(n);
  point.congestion = point.rate / idle;
  point.utility = point.rate - gamma * point.congestion;
  return point;
}

void validate(double gamma, std::size_t n) {
  if (gamma <= 0.0 || n == 0) {
    throw std::invalid_argument("closed_forms: gamma > 0 and n >= 1 required");
  }
}

}  // namespace

SymmetricPoint fifo_linear_symmetric_nash(double gamma, std::size_t n) {
  validate(gamma, n);
  const double nd = static_cast<double>(n);
  // N u^2 - gamma (N-1) u - gamma = 0, positive root.
  const double b = gamma * (nd - 1.0);
  const double idle = (b + std::sqrt(b * b + 4.0 * nd * gamma)) / (2.0 * nd);
  if (idle >= 1.0) {
    // gamma so large that even a lone user stays silent: corner at rate 0.
    return from_idle(1.0, gamma, n);
  }
  return from_idle(idle, gamma, n);
}

SymmetricPoint fs_linear_symmetric_nash(double gamma, std::size_t n) {
  validate(gamma, n);
  if (gamma >= 1.0) return from_idle(1.0, gamma, n);  // corner: silence
  return from_idle(std::sqrt(gamma), gamma, n);
}

double fifo_efficiency_ratio(double gamma, std::size_t n) {
  const double pareto = fs_linear_symmetric_nash(gamma, n).utility;
  const double fifo = fifo_linear_symmetric_nash(gamma, n).utility;
  if (pareto <= 0.0) return 1.0;  // degenerate: nobody wants service
  return fifo / pareto;
}

}  // namespace gw::core
