#include "obs/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace gw::obs::stats {

namespace {

double nan() { return std::numeric_limits<double>::quiet_NaN(); }

double median_sorted(const std::vector<double>& xs) {
  const std::size_t n = xs.size();
  if (n == 0) return nan();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

}  // namespace

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return median_sorted(xs);
}

double mad(const std::vector<double>& xs) {
  if (xs.empty()) return nan();
  const double m = median(xs);
  std::vector<double> deviations;
  deviations.reserve(xs.size());
  for (const double x : xs) deviations.push_back(std::abs(x - m));
  return median(std::move(deviations));
}

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return nan();
  std::sort(xs.begin(), xs.end());
  q = std::clamp(q, 0.0, 1.0);
  const double position = q * static_cast<double>(xs.size() - 1);
  const auto below = static_cast<std::size_t>(position);
  const std::size_t above = std::min(below + 1, xs.size() - 1);
  const double fraction = position - static_cast<double>(below);
  return xs[below] + fraction * (xs[above] - xs[below]);
}

std::vector<bool> iqr_outliers(const std::vector<double>& xs) {
  std::vector<bool> flags(xs.size(), false);
  if (xs.size() < 4) return flags;
  const double q1 = quantile(xs, 0.25);
  const double q3 = quantile(xs, 0.75);
  const double fence = 1.5 * (q3 - q1);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    flags[i] = xs[i] < q1 - fence || xs[i] > q3 + fence;
  }
  return flags;
}

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = std::accumulate(sorted.begin(), sorted.end(), 0.0) /
           static_cast<double>(sorted.size());
  s.median = median_sorted(sorted);
  s.mad = mad(xs);
  s.q1 = quantile(sorted, 0.25);
  s.q3 = quantile(sorted, 0.75);
  s.iqr = s.q3 - s.q1;
  const auto flags = iqr_outliers(xs);
  s.outliers = static_cast<std::size_t>(
      std::count(flags.begin(), flags.end(), true));
  return s;
}

MannWhitney mann_whitney_u(const std::vector<double>& a,
                           const std::vector<double>& b) {
  MannWhitney result;
  const std::size_t n1 = a.size();
  const std::size_t n2 = b.size();
  if (n1 == 0 || n2 == 0) return result;

  // Pool and assign average ranks to ties.
  struct Tagged {
    double value;
    bool first_sample;
  };
  std::vector<Tagged> pooled;
  pooled.reserve(n1 + n2);
  for (const double x : a) pooled.push_back({x, true});
  for (const double x : b) pooled.push_back({x, false});
  std::sort(pooled.begin(), pooled.end(),
            [](const Tagged& lhs, const Tagged& rhs) {
              return lhs.value < rhs.value;
            });

  const std::size_t n = n1 + n2;
  double rank_sum_a = 0.0;
  double tie_correction = 0.0;  // sum over tie groups of t^3 - t
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j < n && pooled[j].value == pooled[i].value) ++j;
    const auto t = static_cast<double>(j - i);
    // Ranks are 1-based: positions i..j-1 share the average rank.
    const double average_rank = 0.5 * (static_cast<double>(i + 1) +
                                       static_cast<double>(j));
    for (std::size_t k = i; k < j; ++k) {
      if (pooled[k].first_sample) rank_sum_a += average_rank;
    }
    tie_correction += t * t * t - t;
    i = j;
  }

  const auto d1 = static_cast<double>(n1);
  const auto d2 = static_cast<double>(n2);
  const auto dn = static_cast<double>(n);
  result.u = rank_sum_a - d1 * (d1 + 1.0) / 2.0;

  const double mu = d1 * d2 / 2.0;
  const double variance =
      d1 * d2 / 12.0 *
      ((dn + 1.0) - tie_correction / (dn * (dn - 1.0)));
  if (variance <= 0.0) return result;  // all pooled values tied: p = 1

  // Continuity correction toward the mean.
  double numerator = result.u - mu;
  if (numerator > 0.5) {
    numerator -= 0.5;
  } else if (numerator < -0.5) {
    numerator += 0.5;
  } else {
    numerator = 0.0;
  }
  result.z = numerator / std::sqrt(variance);
  result.p_value = std::erfc(std::abs(result.z) / std::sqrt(2.0));
  return result;
}

Comparison compare_samples(const std::vector<double>& old_xs,
                           const std::vector<double>& new_xs,
                           double threshold_pct, double alpha) {
  Comparison c;
  c.old_median = median(old_xs);
  c.new_median = median(new_xs);
  if (old_xs.empty() || new_xs.empty()) return c;
  if (c.old_median != 0.0) {
    c.delta_pct = (c.new_median - c.old_median) / c.old_median * 100.0;
  }
  c.p_value = mann_whitney_u(old_xs, new_xs).p_value;
  c.significant =
      c.p_value < alpha && std::abs(c.delta_pct) >= threshold_pct;
  return c;
}

}  // namespace gw::obs::stats
