// Revelation mechanisms (paper Definition 6, Theorem 6).
//
// When users report utility functions directly to the switch, the switch
// computes the allocation users would have reached by self-optimizing:
// B(reported profile) = the Nash allocation of the reported game. The
// mechanism is a *revelation mechanism* (truth-dominant) when no user can
// gain — measured by her TRUE utility — by misreporting. B^FS (built on
// Fair Share) has this property; the FIFO-based analogue does not.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/allocation.hpp"
#include "core/nash.hpp"
#include "core/utility.hpp"

namespace gw::core {

/// An allocation mechanism: reported utilities -> (rates, queues).
struct MechanismOutcome {
  std::vector<double> rates;
  std::vector<double> queues;
};

using Mechanism = std::function<MechanismOutcome(const UtilityProfile&)>;

/// Builds the Nash-outcome mechanism for an allocation function: solve the
/// reported game's equilibrium (best-response dynamics from a uniform
/// start) and hand out the resulting allocation.
[[nodiscard]] Mechanism make_nash_mechanism(
    std::shared_ptr<const AllocationFunction> alloc,
    const NashOptions& options = {});

/// True-utility gain user i obtains by reporting `reported` instead of the
/// truth (positive = profitable manipulation).
[[nodiscard]] double misreport_gain(const Mechanism& mechanism,
                                    const UtilityProfile& true_profile,
                                    std::size_t i, const UtilityPtr& reported);

struct ManipulationSweep {
  double best_gain = 0.0;            ///< largest true-utility gain found
  std::size_t best_report_index = 0; ///< index into the candidate list
};

/// Tries every candidate report for user i and returns the most profitable
/// manipulation. A revelation mechanism yields best_gain <= ~0.
[[nodiscard]] ManipulationSweep sweep_misreports(
    const Mechanism& mechanism, const UtilityProfile& true_profile,
    std::size_t i, const std::vector<UtilityPtr>& candidate_reports);

}  // namespace gw::core
