// Streaming control plane in miniature: users churn their preferences,
// the controller repairs the equilibrium incrementally instead of
// re-solving from scratch.
//
//   ./churn_demo
//
// Builds a 64-user Fair Share cluster (4 shards of 16), streams two churn
// patterns through it — smooth Poisson background churn, then adversarial
// bursts that hammer one shard at a time — and prints, per batch, which
// rung of the repair ladder served the new allocation (rank-1 refresh,
// Theorem 7 relaxation sweeps, warm solve, or a full cold solve).
#include <cstdio>
#include <memory>
#include <vector>

#include "core/fair_share.hpp"
#include "core/utility.hpp"
#include "ctrl/controller.hpp"
#include "exec/thread_pool.hpp"

int main() {
  using namespace gw;
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kPerShard = 16;

  const auto alloc = std::make_shared<core::FairShareAllocation>();
  std::vector<ctrl::SolverShard> shards;
  for (std::size_t k = 0; k < kShards; ++k) {
    core::UtilityProfile profile;
    for (std::size_t i = 0; i < kPerShard; ++i) {
      profile.push_back(core::make_linear(
          1.0, 0.3 + 0.5 * static_cast<double>(i) / kPerShard));
    }
    shards.emplace_back(alloc, std::move(profile));
  }
  ctrl::Controller controller(std::move(shards));
  exec::ThreadPool pool(2);

  std::printf("cluster: %zu users across %zu Fair Share shards\n\n",
              controller.user_count(), controller.shard_count());

  auto drain = [&](const char* label, auto& churn, int batches,
                   int per_batch) {
    std::printf("%s\n", label);
    std::printf("  %-6s %-8s %-8s %-11s %-6s %-10s %-10s\n", "batch",
                "updates", "shards", "single/rlx", "warm", "full", "ms");
    for (int b = 0; b < batches; ++b) {
      for (int i = 0; i < per_batch; ++i) controller.submit(churn.next());
      const auto report = controller.apply_pending(&pool);
      std::printf("  %-6llu %-8zu %-8zu %zu/%-9zu %-6zu %-10zu %-10.3f\n",
                  static_cast<unsigned long long>(report.epoch),
                  report.updates_applied, report.shards_repaired,
                  report.single_user, report.relax, report.warm_solve,
                  report.full_solve, report.wall_seconds * 1e3);
    }
    std::printf("\n");
  };

  ctrl::PoissonChurn poisson(controller.user_count(), {}, /*seed=*/1);
  drain("Poisson background churn (memoryless, spread across shards):",
        poisson, /*batches=*/5, /*per_batch=*/8);

  ctrl::BurstChurnOptions burst_options;
  burst_options.block_size = kPerShard;  // each burst targets one shard
  ctrl::BurstChurn burst(controller.user_count(), burst_options,
                         /*seed=*/2);
  drain("Adversarial bursts (one shard hammered per burst):", burst,
        /*batches=*/4, /*per_batch=*/16);

  // The served allocation is always a true equilibrium: verify the last
  // state against a cold re-solve of every shard.
  double worst = 0.0;
  for (std::size_t k = 0; k < controller.shard_count(); ++k) {
    const auto oracle = controller.shard(k).cold_solve();
    const auto& served = controller.shard(k).rates();
    for (std::size_t i = 0; i < served.size(); ++i) {
      const double d = served[i] > oracle[i] ? served[i] - oracle[i]
                                             : oracle[i] - served[i];
      if (d > worst) worst = d;
    }
  }
  std::printf("served allocation vs cold re-solve: max |diff| = %.2e %s\n",
              worst, worst < 1e-5 ? "(consistent)" : "(DIVERGED)");
  return worst < 1e-5 ? 0 : 1;
}
