// Corollary 2: with the separable quadratic constraint, Nash equilibria
// ARE Pareto optimal — the impossibility of Theorem 1 is a property of
// the M/M/1 constraint's shape, not of selfishness itself.
#include "core/corollary2.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/nash.hpp"

namespace gw::core {
namespace {

TEST(Corollary2, AllocationIsSeparable) {
  const QuadraticSeparableAllocation alloc;
  const auto c = alloc.congestion({0.3, 0.5});
  EXPECT_NEAR(c[0], 0.09, 1e-12);
  EXPECT_NEAR(c[1], 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(alloc.partial(0, 1, {0.3, 0.5}), 0.0);
  EXPECT_NEAR(alloc.partial(1, 1, {0.3, 0.5}), 1.0, 1e-12);
}

TEST(Corollary2, NashFdcEqualsParetoFdc) {
  // dC_i/dr_i = 2 r_i = df/dr_i: the two first-derivative conditions are
  // literally the same equation.
  const QuadraticSeparableAllocation alloc;
  const UtilityProfile profile{make_linear(1.0, 0.8), make_linear(1.0, 1.6)};
  const std::vector<double> rates{0.37, 0.19};
  const auto queues = alloc.congestion(rates);
  const auto nash = fdc_residuals(alloc, profile, rates);
  const auto pareto = quadratic_pareto_residuals(profile, rates, queues);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    EXPECT_NEAR(nash[i], pareto[i], 1e-9);
  }
}

TEST(Corollary2, NashEquilibriumIsParetoOptimal) {
  // Solve the Nash point, then verify the Pareto FDC holds there; with
  // linear utilities U = r - gamma c the closed form is r* = 1/(2 gamma).
  const QuadraticSeparableAllocation alloc;
  const UtilityProfile profile{make_linear(1.0, 0.8), make_linear(1.0, 1.25)};
  BestResponseOptions best_response_options;
  NashOptions options;
  options.best_response = best_response_options;
  const auto nash = solve_nash(alloc, profile, {0.2, 0.2}, options);
  ASSERT_TRUE(nash.converged);
  EXPECT_NEAR(nash.rates[0], 1.0 / (2.0 * 0.8), 1e-4);
  EXPECT_NEAR(nash.rates[1], 1.0 / (2.0 * 1.25), 1e-4);
  const auto queues = alloc.congestion(nash.rates);
  for (const double residual :
       quadratic_pareto_residuals(profile, nash.rates, queues)) {
    EXPECT_LT(std::abs(residual), 1e-3);
  }
}

TEST(Corollary2, EquilibriumIndependentOfOtherUsers) {
  // Full separability: each user's Nash rate ignores everyone else.
  const QuadraticSeparableAllocation alloc;
  const auto solo = solve_nash(alloc, {make_linear(1.0, 0.8)}, {0.1});
  const auto crowd = solve_nash(
      alloc, {make_linear(1.0, 0.8), make_linear(1.0, 2.0),
              make_linear(1.0, 5.0)},
      {0.1, 0.1, 0.1});
  ASSERT_TRUE(solo.converged);
  ASSERT_TRUE(crowd.converged);
  EXPECT_NEAR(solo.rates[0], crowd.rates[0], 1e-6);
}

}  // namespace
}  // namespace gw::core
