#include "sim/fair_share_station.hpp"

#include <stdexcept>

#include "core/weighted_serial.hpp"

namespace gw::sim {

FairShareStation::FairShareStation(Simulator& sim, QueueTracker& tracker,
                                   std::vector<double> rates,
                                   std::uint64_t seed)
    : Station(sim, tracker),
      priority_(sim, tracker, rates.size()),
      rates_(std::move(rates)),
      rng_(seed) {
  if (rates_.empty()) {
    throw std::invalid_argument("FairShareStation: empty rate vector");
  }
  rebuild_thresholds();
}

FairShareStation::FairShareStation(Simulator& sim, QueueTracker& tracker,
                                   std::vector<double> rates,
                                   std::vector<double> weights,
                                   std::uint64_t seed)
    : Station(sim, tracker),
      priority_(sim, tracker, rates.size()),
      rates_(std::move(rates)),
      weights_(std::move(weights)),
      rng_(seed) {
  if (rates_.empty() || weights_.size() != rates_.size()) {
    throw std::invalid_argument("FairShareStation: bad weighted arguments");
  }
  rebuild_thresholds();
}

FairShareStation::FairShareStation(Simulator& sim, QueueTracker& tracker,
                                   std::size_t n_users, double estimator_tau,
                                   double rebuild_interval, std::uint64_t seed)
    : Station(sim, tracker),
      priority_(sim, tracker, n_users),
      rates_(n_users, 1e-6),
      rng_(seed),
      adaptive_(true),
      estimator_(std::make_unique<RateEstimator>(n_users, estimator_tau)),
      rebuild_interval_(rebuild_interval) {
  if (rebuild_interval <= 0.0) {
    throw std::invalid_argument("FairShareStation: bad rebuild interval");
  }
  rebuild_thresholds();
}

void FairShareStation::set_rates(std::vector<double> rates) {
  if (rates.size() != rates_.size()) {
    throw std::invalid_argument("FairShareStation: rate vector size changed");
  }
  rates_ = std::move(rates);
  rebuild_thresholds();
}

void FairShareStation::rebuild_thresholds() {
  const std::size_t n = rates_.size();
  std::vector<std::vector<double>> slices;
  if (weights_.empty()) {
    slices = core::fair_share_decomposition(rates_).slice_rate;
  } else {
    slices = core::weighted_serial_decomposition(rates_, weights_).slice_rate;
  }
  cumulative_.assign(n, std::vector<double>(n, 1.0));
  for (std::size_t u = 0; u < n; ++u) {
    const double total = rates_[u];
    double acc = 0.0;
    for (std::size_t l = 0; l < n; ++l) {
      acc += slices[u][l];
      cumulative_[u][l] = (total > 0.0) ? acc / total : 1.0;
    }
    // Guard against rounding: the last threshold must be exactly 1.
    cumulative_[u][n - 1] = 1.0;
  }
}

int FairShareStation::sample_level(std::size_t user) {
  const double x = rng_.uniform();
  const auto& cdf = cumulative_.at(user);
  for (std::size_t l = 0; l < cdf.size(); ++l) {
    if (x < cdf[l]) return static_cast<int>(l);
  }
  return static_cast<int>(cdf.size()) - 1;
}

void FairShareStation::arrive(Packet packet) {
  if (adaptive_) {
    estimator_->on_arrival(packet.user, sim_.now());
    if (sim_.now() >= next_rebuild_) {
      rates_ = estimator_->estimates(sim_.now());
      for (auto& rate : rates_) rate = std::max(rate, 1e-6);
      rebuild_thresholds();
      next_rebuild_ = sim_.now() + rebuild_interval_;
    }
  }
  packet.priority = sample_level(packet.user);
  priority_.arrive(std::move(packet));
}

}  // namespace gw::sim
