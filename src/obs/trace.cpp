#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>

#include "obs/json.hpp"

namespace gw::obs {

TraceSession::TraceSession(TraceOptions options) : options_(options) {}

void TraceSession::push(Event event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= options_.max_events) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void TraceSession::complete(std::string_view category, std::string_view name,
                            double ts_us, double dur_us) {
  push({'X', std::string(category), std::string(name), ts_us, dur_us, {},
        0.0});
}

void TraceSession::instant(std::string_view category, std::string_view name,
                           double ts_us, std::string_view arg_key,
                           double arg_value) {
  push({'i', std::string(category), std::string(name), ts_us, 0.0,
        std::string(arg_key), arg_value});
}

void TraceSession::counter(std::string_view category, std::string_view name,
                           double ts_us, double value) {
  push({'C', std::string(category), std::string(name), ts_us, 0.0, "value",
        value});
}

std::size_t TraceSession::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::size_t TraceSession::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void TraceSession::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_ = 0;
}

std::string TraceSession::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const Event& e : events_) {
    w.begin_object();
    w.key("ph");
    w.value(std::string_view(&e.phase, 1));
    w.key("cat");
    w.value(e.category);
    w.key("name");
    w.value(e.name);
    w.key("ts");
    w.value(e.ts_us);
    if (e.phase == 'X') {
      w.key("dur");
      w.value(e.dur_us);
    }
    if (e.phase == 'i') {
      w.key("s");
      w.value("t");  // instant scope: thread
    }
    w.key("pid");
    w.value(std::int64_t{1});
    w.key("tid");
    w.value(std::int64_t{1});
    if (!e.arg_key.empty()) {
      w.key("args");
      w.begin_object();
      w.key(e.arg_key);
      w.value(e.arg_value);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit");
  w.value("ms");
  w.end_object();
  return w.take();
}

bool TraceSession::write_file(const std::string& path) const {
  const std::string doc = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  const bool ok = written == doc.size() && std::fclose(f) == 0;
  if (!ok && written != doc.size()) std::fclose(f);
  return ok;
}

std::uint64_t wall_now_us() noexcept {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            epoch)
          .count());
}

}  // namespace gw::obs
