// Packet-level tandem networks (paper Section 5.4).
//
// The analytic gw::net model assumes every switch sees Poisson input
// (Kleinrock independence). Here packets really flow switch to switch, so
// the approximation error is measurable: for FIFO tandems Burke's theorem
// makes aggregate outputs exactly Poisson, while priority/Fair Share
// outputs are not — the "daunting challenge" the paper points at.
//
// `resample_service` chooses between redrawing a packet's demand at every
// hop (the independence assumption; exact product-form for FIFO) and
// carrying the same demand through (realistic packets, correlated hops).
#pragma once

#include <utility>
#include <vector>

#include "sim/runner.hpp"

namespace gw::sim {

struct TandemOptions {
  double mu = 1.0;
  bool resample_service = true;
  double warmup = 4000.0;
  int batches = 12;
  double batch_length = 5000.0;
  std::uint64_t seed = 33;
  double drr_quantum = 1.0;
};

struct TandemResult {
  /// mean_queue[a][u]: user u's time-average queue at switch a.
  std::vector<std::vector<double>> mean_queue;
  /// total_congestion[u] = sum over the user's route (the paper's c_i).
  std::vector<double> total_congestion;
  /// End-to-end mean delay per user (summed per-hop sojourns).
  std::vector<double> end_to_end_delay;
  std::size_t events = 0;
};

/// Runs a tandem of identical-discipline switches. `spans[u]` gives the
/// (first, last) switch of user u's route. Supported disciplines: kFifo,
/// kLifoPreempt, kProcessorSharing, kFairShareOracle, kDrr.
[[nodiscard]] TandemResult run_tandem(
    Discipline discipline, const std::vector<double>& rates,
    const std::vector<std::pair<std::size_t, std::size_t>>& spans,
    std::size_t n_switches, const TandemOptions& options = {});

}  // namespace gw::sim
