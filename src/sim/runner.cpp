#include "sim/runner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "exec/thread_pool.hpp"
#include "sim/drr_station.hpp"
#include "sim/fair_share_station.hpp"
#include "sim/sfq_station.hpp"
#include "sim/sources.hpp"

namespace gw::sim {

namespace {

/// Adapter that stamps a fixed per-user priority before forwarding to a
/// preemptive priority core (used for the rate-ordered HOL discipline).
class ClassifierStation final : public Station {
 public:
  ClassifierStation(Simulator& sim, QueueTracker& tracker,
                    std::vector<int> user_priority)
      : Station(sim, tracker),
        priority_(sim, tracker, user_priority.size()),
        user_priority_(std::move(user_priority)) {}

  [[nodiscard]] std::string name() const override { return "RatePriority"; }

  void arrive(Packet packet) override {
    packet.priority = user_priority_.at(packet.user);
    priority_.arrive(std::move(packet));
  }

 private:
  PreemptivePriorityStation priority_;
  std::vector<int> user_priority_;
};

std::unique_ptr<Station> make_station(Discipline discipline, Simulator& sim,
                                      QueueTracker& tracker,
                                      const std::vector<double>& rates,
                                      const RunOptions& options) {
  switch (discipline) {
    case Discipline::kFifo:
      return std::make_unique<FifoStation>(sim, tracker);
    case Discipline::kLifoPreempt:
      return std::make_unique<LifoPreemptStation>(sim, tracker);
    case Discipline::kProcessorSharing:
      return std::make_unique<PsStation>(sim, tracker);
    case Discipline::kFairShareOracle:
      return std::make_unique<FairShareStation>(sim, tracker, rates,
                                                options.seed ^ 0xf5f5f5f5ULL);
    case Discipline::kFairShareAdaptive:
      return std::make_unique<FairShareStation>(
          sim, tracker, rates.size(), options.estimator_tau,
          options.rebuild_interval, options.seed ^ 0xadaadaadULL);
    case Discipline::kDrr:
      return std::make_unique<DrrStation>(sim, tracker, rates.size(),
                                          options.drr_quantum);
    case Discipline::kSfq:
      return std::make_unique<SfqStation>(sim, tracker, rates.size());
    case Discipline::kRatePriority: {
      // Smaller rate -> higher priority (lower level index).
      std::vector<std::size_t> order(rates.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (rates[a] != rates[b]) return rates[a] < rates[b];
        return a < b;
      });
      std::vector<int> priority(rates.size());
      for (std::size_t k = 0; k < order.size(); ++k) {
        priority[order[k]] = static_cast<int>(k);
      }
      return std::make_unique<ClassifierStation>(sim, tracker,
                                                 std::move(priority));
    }
  }
  throw std::invalid_argument("make_station: unknown discipline");
}

}  // namespace

const char* discipline_name(Discipline d) noexcept {
  switch (d) {
    case Discipline::kFifo: return "FIFO";
    case Discipline::kLifoPreempt: return "LIFO-PR";
    case Discipline::kProcessorSharing: return "PS";
    case Discipline::kFairShareOracle: return "FS(oracle)";
    case Discipline::kFairShareAdaptive: return "FS(adaptive)";
    case Discipline::kDrr: return "DRR-FQ";
    case Discipline::kSfq: return "SFQ";
    case Discipline::kRatePriority: return "RatePrio";
  }
  return "?";
}

RunResult run_custom(const StationFactory& factory,
                     const std::vector<double>& rates,
                     const RunOptions& options) {
  if (rates.empty()) throw std::invalid_argument("run_custom: no users");
  Simulator sim;
  QueueTracker tracker(rates.size());
  if (options.delay_histograms) {
    tracker.enable_delay_histograms(options.delay_histogram_max);
  }
  const auto station = factory(sim, tracker);

  std::vector<std::unique_ptr<PoissonSource>> sources;
  sources.reserve(rates.size());
  numerics::Rng seeder(options.seed);
  ServiceSpec service = options.service;
  if (service.kind == ServiceKind::kExponential && service.mean == 1.0 &&
      options.mu != 1.0) {
    service = ServiceSpec::exponential(1.0 / options.mu);
  }
  for (std::size_t u = 0; u < rates.size(); ++u) {
    sources.push_back(std::make_unique<PoissonSource>(
        sim, *station, u, rates[u], service, seeder.next_u64()));
  }

  sim.run_for(options.warmup);
  tracker.reset(sim.now());
  tracker.close_batch(sim.now());  // open the first batch

  std::vector<std::vector<double>> batch_queues(rates.size());
  for (int b = 0; b < options.batches; ++b) {
    sim.run_for(options.batch_length);
    const auto averages = tracker.close_batch(sim.now());
    for (std::size_t u = 0; u < rates.size(); ++u) {
      batch_queues[u].push_back(averages[u]);
    }
  }

  RunResult result;
  result.measured_time = options.batches * options.batch_length;
  result.events = sim.processed_events();
  result.users.resize(rates.size());
  for (std::size_t u = 0; u < rates.size(); ++u) {
    auto& stats = result.users[u];
    stats.queue_ci = numerics::batch_means_ci(batch_queues[u]);
    stats.mean_queue = stats.queue_ci.mean;
    stats.mean_delay = tracker.mean_delay(u);
    stats.throughput = static_cast<double>(tracker.departures(u)) /
                       result.measured_time;
    if (options.delay_histograms) {
      stats.delay_p50 = tracker.delay_quantile(u, 0.50);
      stats.delay_p95 = tracker.delay_quantile(u, 0.95);
      stats.delay_p99 = tracker.delay_quantile(u, 0.99);
    }
  }
  return result;
}

RunResult run_switch(Discipline discipline, const std::vector<double>& rates,
                     const RunOptions& options) {
  return run_custom(
      [&](Simulator& sim, QueueTracker& tracker) {
        return make_station(discipline, sim, tracker, rates, options);
      },
      rates, options);
}

ReplicationResult run_replications(Discipline discipline,
                                   const std::vector<double>& rates,
                                   const RunOptions& options,
                                   int replications, int threads) {
  if (replications < 1) {
    throw std::invalid_argument("run_replications: replications must be >= 1");
  }
  const auto n_reps = static_cast<std::size_t>(replications);

  // Seeds are forked off options.seed by replication *index*, before any
  // thread runs: the work assigned to replication r is identical no matter
  // which worker executes it or in what order.
  std::vector<std::uint64_t> seeds(n_reps);
  numerics::Rng parent(options.seed);
  for (auto& seed : seeds) seed = parent.fork().next_u64();

  std::vector<RunResult> reps(n_reps);
  exec::parallel_for(
      threads < 0 ? 1 : static_cast<std::size_t>(threads), n_reps,
      [&](std::size_t r) {
        RunOptions rep_options = options;
        rep_options.seed = seeds[r];
        reps[r] = run_switch(discipline, rates, rep_options);
      });

  // Merge strictly in replication order so the result is bit-identical
  // for every thread count.
  ReplicationResult result;
  result.replications = replications;
  result.users.resize(rates.size());
  result.replication_queues.assign(n_reps, std::vector<double>(rates.size()));
  for (std::size_t r = 0; r < n_reps; ++r) {
    result.measured_time += reps[r].measured_time;
    result.events += reps[r].events;
    for (std::size_t u = 0; u < rates.size(); ++u) {
      result.replication_queues[r][u] = reps[r].users[u].mean_queue;
    }
  }
  const double inv_reps = 1.0 / static_cast<double>(n_reps);
  std::vector<double> rep_means(n_reps);
  for (std::size_t u = 0; u < rates.size(); ++u) {
    auto& pooled = result.users[u];
    double delay_sum = 0.0;
    double throughput_sum = 0.0;
    for (std::size_t r = 0; r < n_reps; ++r) {
      rep_means[r] = reps[r].users[u].mean_queue;
      delay_sum += reps[r].users[u].mean_delay;
      throughput_sum += reps[r].users[u].throughput;
    }
    pooled.queue_ci = numerics::batch_means_ci(rep_means);
    pooled.mean_queue = pooled.queue_ci.mean;
    pooled.mean_delay = delay_sum * inv_reps;
    pooled.throughput = throughput_sum * inv_reps;
    if (options.delay_histograms) {
      // Average each quantile over the replications that produced one
      // (zero-departure users yield NaN; see QueueTracker).
      const auto pool_quantile = [&](auto member) {
        double sum = 0.0;
        std::size_t n = 0;
        for (std::size_t r = 0; r < n_reps; ++r) {
          const double q = reps[r].users[u].*member;
          if (!std::isnan(q)) {
            sum += q;
            ++n;
          }
        }
        return n == 0 ? std::numeric_limits<double>::quiet_NaN()
                      : sum / static_cast<double>(n);
      };
      pooled.delay_p50 = pool_quantile(&UserRunStats::delay_p50);
      pooled.delay_p95 = pool_quantile(&UserRunStats::delay_p95);
      pooled.delay_p99 = pool_quantile(&UserRunStats::delay_p99);
    }
  }
  return result;
}

}  // namespace gw::sim
