// The Fair Share allocation function (paper Section 3.1; Moulin–Shenker
// "serial cost sharing").
//
// Sort rates ascending, let S_k = (N-k+1) r_k + sum_{j<k} r_j be the k-th
// serial cumulative load (S_0 = 0). Then
//   C_k^FS(r) = sum_{m<=k} [g(S_m) - g(S_{m-1})] / (N - m + 1).
// Key structural facts used throughout the library (all verified in tests):
//   * dC_i/dr_j = 0 whenever r_j >= r_i (i != j): the Jacobian is lower
//     triangular in sorted order — the "partial insularity" that powers
//     every positive theorem in the paper;
//   * dC_i/dr_i = g'(S_i) > 0 and d2C_i/dr_i^2 = (N-i+1) g''(S_i) > 0;
//   * user i saturates (C_i = +inf) iff its serial load S_i >= 1, even if
//     the total load exceeds 1 — light users stay protected.
//
// The function is realized by the preemptive priority decomposition of the
// paper's Table 1; fair_share_decomposition() exposes that table and is
// shared with the packet-level simulator.
#pragma once

#include "core/allocation.hpp"

namespace gw::core {

class FairShareAllocation final : public AllocationFunction {
 public:
  [[nodiscard]] std::string name() const override { return "FairShare"; }

  void congestion_into(std::span<const double> rates, std::span<double> out,
                       EvalWorkspace& ws) const override;
  [[nodiscard]] double congestion_of_into(std::size_t i,
                                          std::span<const double> rates,
                                          EvalWorkspace& ws) const override;
  void jacobian_into(std::span<const double> rates, numerics::Matrix& out,
                     EvalWorkspace& ws) const override;
  void second_partials_into(std::span<const double> rates,
                            numerics::Matrix& out,
                            EvalWorkspace& ws) const override;
  [[nodiscard]] double partial(std::size_t i, std::size_t j,
                               const std::vector<double>& rates) const override;
  [[nodiscard]] double second_partial(
      std::size_t i, std::size_t j,
      const std::vector<double>& rates) const override;
  [[nodiscard]] bool scan_prepare(std::size_t i, std::span<const double> rates,
                                  EvalWorkspace& ws) const override;
  [[nodiscard]] double scan_congestion_of(std::size_t i, double x,
                                          std::span<const double> rates,
                                          EvalWorkspace& ws) const override;
  [[nodiscard]] bool congestion_classes_into(const ClassedPopulation& pop,
                                             std::span<double> out,
                                             EvalWorkspace& ws) const override;
  [[nodiscard]] bool jacobian_classes_into(const ClassedPopulation& pop,
                                           numerics::Matrix& cross,
                                           std::span<double> own,
                                           EvalWorkspace& ws) const override;
  [[nodiscard]] bool scan_prepare_classes(std::size_t a,
                                          const ClassedPopulation& pop,
                                          EvalWorkspace& ws) const override;
  [[nodiscard]] double scan_congestion_of_class(
      std::size_t a, double x, const ClassedPopulation& pop,
      EvalWorkspace& ws) const override;
};

/// The priority-queueing realization of Fair Share (paper Table 1).
struct FairShareDecomposition {
  /// Users sorted by ascending rate (ties by index); order[k] = user id of
  /// the rank-k user.
  std::vector<std::size_t> order;
  /// Width of priority level k's slice: r_(k) - r_(k-1) in sorted order.
  /// Level 0 is the highest priority.
  std::vector<double> level_width;
  /// slice_rate[u][l]: rate the (original-index) user u sends at priority
  /// level l; zero above the user's own rank.
  std::vector<std::vector<double>> slice_rate;
  /// Aggregate arrival rate of each priority level:
  /// level l carries (N - l) * level_width[l] ... i.e. every user of rank
  /// >= l contributes level_width[l].
  std::vector<double> level_rate;
  /// Serial cumulative loads S_k (1-based in the paper; S[k] here is
  /// S_{k+1}); S[k] = sum of level rates up to level k.
  std::vector<double> serial_load;
};

/// Builds Table 1 for a rate vector. Requires rates >= 0.
[[nodiscard]] FairShareDecomposition fair_share_decomposition(
    const std::vector<double>& rates);

}  // namespace gw::core
