// Stress and failure-injection tests for the packet simulator: overload
// physics, rate toggling, degenerate packets, long-horizon stability.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/drr_station.hpp"
#include "sim/fair_share_station.hpp"
#include "sim/runner.hpp"
#include "sim/sfq_station.hpp"
#include "sim/sources.hpp"

namespace gw::sim {
namespace {

TEST(SimStress, OverloadedQueueGrowsLinearly) {
  // lambda > mu: number in system grows at rate lambda - mu; after time T
  // the occupancy is ~(lambda - mu) T.
  Simulator sim;
  QueueTracker tracker(1);
  FifoStation station(sim, tracker);
  PoissonSource source(sim, station, 0, 1.5, 1.0, 99);
  const double horizon = 20000.0;
  sim.run_until(horizon);
  const double expected = 0.5 * horizon;
  EXPECT_NEAR(tracker.occupancy(0) / expected, 1.0, 0.10);
}

TEST(SimStress, FsStationKeepsLightUserCleanUnderExtremeOverload) {
  // A 10x-capacity flooder for a long horizon: the light user's time-
  // average queue stays at its analytic value throughout.
  Simulator sim;
  QueueTracker tracker(2);
  FairShareStation station(sim, tracker, {0.1, 10.0}, 7);
  PoissonSource light(sim, station, 0, 0.1, 1.0, 1);
  PoissonSource flood(sim, station, 1, 10.0, 1.0, 2);
  sim.run_for(2000.0);
  tracker.reset(sim.now());
  sim.run_for(20000.0);
  // Analytic: C_light = g(0.2)/2 = 0.125.
  EXPECT_NEAR(tracker.time_average(0, sim.now()), 0.125, 0.03);
}

TEST(SimStress, RateTogglingSourceStaysConsistent) {
  // Toggle a source on/off repeatedly; departures can never exceed
  // emissions and occupancy stays consistent.
  Simulator sim;
  QueueTracker tracker(1);
  FifoStation station(sim, tracker);
  PoissonSource source(sim, station, 0, 0.5, 1.0, 11);
  for (int cycle = 0; cycle < 50; ++cycle) {
    sim.run_for(100.0);
    source.set_rate(cycle % 2 == 0 ? 0.0 : 0.5);
  }
  source.set_rate(0.0);
  sim.run_for(5000.0);  // drain
  EXPECT_EQ(tracker.occupancy(0), 0);
  EXPECT_EQ(tracker.departures(0), source.emitted());
}

TEST(SimStress, ZeroDemandPacketsFlowThrough) {
  Simulator sim;
  QueueTracker tracker(1);
  FifoStation station(sim, tracker);
  Packet packet;
  packet.user = 0;
  packet.arrival_time = 0.0;
  packet.service_demand = 0.0;
  sim.schedule_at(0.0, [&] { station.arrive(packet); });
  sim.run_until(1.0);
  EXPECT_EQ(tracker.departures(0), 1u);
  EXPECT_DOUBLE_EQ(tracker.mean_delay(0), 0.0);
}

TEST(SimStress, SimultaneousArrivalBurstsHandled) {
  // 1000 packets arriving at the same instant: everything is served, in
  // order, with no occupancy anomalies — for several disciplines.
  for (int which = 0; which < 3; ++which) {
    Simulator sim;
    QueueTracker tracker(4);
    std::unique_ptr<Station> station;
    switch (which) {
      case 0: station = std::make_unique<FifoStation>(sim, tracker); break;
      case 1: station = std::make_unique<DrrStation>(sim, tracker, 4, 1.0); break;
      default: station = std::make_unique<SfqStation>(sim, tracker, 4); break;
    }
    sim.schedule_at(0.0, [&] {
      numerics::Rng rng(5);
      for (int k = 0; k < 1000; ++k) {
        Packet packet;
        packet.user = k % 4;
        packet.arrival_time = 0.0;
        packet.service_demand = rng.exponential(1.0);
        packet.remaining = packet.service_demand;
        station->arrive(std::move(packet));
      }
    });
    sim.run_until(1e7);
    std::size_t total = 0;
    for (std::size_t u = 0; u < 4; ++u) {
      EXPECT_EQ(tracker.occupancy(u), 0) << "which " << which;
      total += tracker.departures(u);
    }
    EXPECT_EQ(total, 1000u) << "which " << which;
  }
}

TEST(SimStress, LongHorizonEventCountsAreSane) {
  RunOptions options;
  options.warmup = 1000.0;
  options.batches = 4;
  options.batch_length = 25000.0;
  options.seed = 3;
  const auto result = run_switch(Discipline::kFairShareOracle, {0.3, 0.3},
                                 options);
  // ~0.6 arrivals per time unit, 2+ events per packet.
  EXPECT_GT(result.events, 100000u);
  EXPECT_LT(result.events, 500000u);
  EXPECT_NEAR(result.users[0].throughput, 0.3, 0.02);
}

TEST(SimStress, IdenticalSeedsGiveIdenticalResults) {
  // Bitwise reproducibility: the whole pipeline is deterministic.
  RunOptions options;
  options.warmup = 1000.0;
  options.batches = 6;
  options.batch_length = 2000.0;
  options.seed = 99;
  const auto a = run_switch(Discipline::kFairShareOracle, {0.2, 0.3}, options);
  const auto b = run_switch(Discipline::kFairShareOracle, {0.2, 0.3}, options);
  ASSERT_EQ(a.events, b.events);
  for (std::size_t u = 0; u < 2; ++u) {
    EXPECT_DOUBLE_EQ(a.users[u].mean_queue, b.users[u].mean_queue);
    EXPECT_DOUBLE_EQ(a.users[u].mean_delay, b.users[u].mean_delay);
  }
}

TEST(SimStress, DifferentSeedsAgreeStatistically) {
  RunOptions options;
  options.warmup = 3000.0;
  options.batches = 10;
  options.batch_length = 5000.0;
  numerics::RunningStat across_seeds;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    options.seed = seed;
    across_seeds.add(
        run_switch(Discipline::kFifo, {0.5}, options).users[0].mean_queue);
  }
  EXPECT_NEAR(across_seeds.mean(), 1.0, 0.08);   // analytic L = 1
  EXPECT_LT(across_seeds.stddev(), 0.1);
}

TEST(SimStress, AdaptiveFsSurvivesEstimatorColdStart) {
  // The adaptive switch starts with no rate information at all; it must
  // not crash or deadlock, and converges to sane allocations.
  RunOptions options;
  options.warmup = 3000.0;
  options.batches = 8;
  options.batch_length = 4000.0;
  options.seed = 23;
  options.estimator_tau = 200.0;
  options.rebuild_interval = 40.0;
  const auto result =
      run_switch(Discipline::kFairShareAdaptive, {0.25, 0.25}, options);
  for (const auto& user : result.users) {
    EXPECT_GT(user.mean_queue, 0.3);
    EXPECT_LT(user.mean_queue, 0.8);
  }
}

}  // namespace
}  // namespace gw::sim
