#include "core/nash.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/closed_forms.hpp"
#include "core/fair_share.hpp"
#include "core/proportional.hpp"

namespace gw::core {
namespace {

TEST(BestResponse, SingleUserFifoLinearClosedForm) {
  // One user, U = r - gamma c, proportional: max r - gamma r/(1-r);
  // FOC: 1 = gamma / (1-r)^2 -> r = 1 - sqrt(gamma).
  const ProportionalAllocation alloc;
  const LinearUtility u(1.0, 0.25);
  const auto response = best_response(alloc, u, {0.1}, 0);
  EXPECT_NEAR(response.rate, 1.0 - std::sqrt(0.25), 1e-5);
}

TEST(BestResponse, RespondsToCongestionFromOthers) {
  const ProportionalAllocation alloc;
  const LinearUtility u(1.0, 0.25);
  const auto alone = best_response(alloc, u, {0.1, 0.0}, 0);
  const auto crowded = best_response(alloc, u, {0.1, 0.4}, 0);
  EXPECT_LT(crowded.rate, alone.rate);  // back off under congestion
}

TEST(BestResponse, AgainstSaturatedFifoBacksOff) {
  // Others already exceed capacity: every positive rate gives -inf, so the
  // response hugs the lower edge.
  const ProportionalAllocation alloc;
  const LinearUtility u(1.0, 0.25);
  const auto response = best_response(alloc, u, {0.1, 1.5}, 0);
  EXPECT_TRUE(std::isinf(response.utility));
  EXPECT_LT(response.utility, 0.0);
}

TEST(BestResponse, FairShareIgnoresFlooder) {
  // Under FS my payoff is unaffected by a flooder bigger than me; best
  // response equals the solitary-ish optimum of the serial form.
  const FairShareAllocation alloc;
  const LinearUtility u(1.0, 0.25);
  const auto calm = best_response(alloc, u, {0.1, 0.3}, 0);
  const auto stormy = best_response(alloc, u, {0.1, 9.0}, 0);
  // Both must agree wherever the response stays below the opponent's rate.
  EXPECT_NEAR(calm.rate, stormy.rate, 1e-4);
}

TEST(SolveNash, FifoSymmetricLinearMatchesClosedForm) {
  const auto alloc = std::make_shared<ProportionalAllocation>();
  for (const std::size_t n : {2u, 4u, 6u}) {
    const auto profile = uniform_profile(make_linear(1.0, 0.25), n);
    const auto result =
        solve_nash(*alloc, profile, std::vector<double>(n, 0.1));
    ASSERT_TRUE(result.converged) << "n=" << n;
    const auto expected = fifo_linear_symmetric_nash(0.25, n);
    for (const double r : result.rates) {
      EXPECT_NEAR(r, expected.rate, 1e-4) << "n=" << n;
    }
  }
}

TEST(SolveNash, FairShareSymmetricLinearMatchesClosedForm) {
  const auto alloc = std::make_shared<FairShareAllocation>();
  for (const double gamma : {0.1, 0.25, 0.5}) {
    const auto profile = uniform_profile(make_linear(1.0, gamma), 3);
    const auto result =
        solve_nash(*alloc, profile, std::vector<double>(3, 0.05));
    ASSERT_TRUE(result.converged) << "gamma=" << gamma;
    const auto expected = fs_linear_symmetric_nash(gamma, 3);
    for (const double r : result.rates) {
      EXPECT_NEAR(r, expected.rate, 1e-4) << "gamma=" << gamma;
    }
  }
}

TEST(SolveNash, VerifiedByIsNash) {
  const auto alloc = std::make_shared<FairShareAllocation>();
  const UtilityProfile profile{make_linear(1.0, 0.2), make_linear(1.0, 0.4),
                               make_linear(1.0, 0.8)};
  const auto result = solve_nash(*alloc, profile, {0.1, 0.1, 0.1});
  ASSERT_TRUE(result.converged);
  EXPECT_TRUE(is_nash(*alloc, profile, result.rates, 1e-6));
}

TEST(SolveNash, FdcResidualsVanishAtEquilibrium) {
  const auto alloc = std::make_shared<FairShareAllocation>();
  const UtilityProfile profile{make_linear(1.0, 0.2), make_linear(1.0, 0.5)};
  const auto result = solve_nash(*alloc, profile, {0.1, 0.1});
  ASSERT_TRUE(result.converged);
  for (const double e : fdc_residuals(*alloc, profile, result.rates)) {
    EXPECT_LT(std::abs(e), 1e-3);
  }
}

TEST(SolveNash, HeterogeneousFsMoreDelayAverseSendsLess) {
  const auto alloc = std::make_shared<FairShareAllocation>();
  const UtilityProfile profile{make_linear(1.0, 0.1), make_linear(1.0, 0.6)};
  const auto result = solve_nash(*alloc, profile, {0.2, 0.2});
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.rates[0], result.rates[1]);
}

TEST(SolveNash, OrdersAgreeOnFairShare) {
  const auto alloc = std::make_shared<FairShareAllocation>();
  const UtilityProfile profile{make_linear(1.0, 0.15), make_linear(1.0, 0.3),
                               make_linear(1.0, 0.45)};
  NashOptions sequential;
  NashOptions random;
  random.order = UpdateOrder::kRandomPermutation;
  const auto a = solve_nash(*alloc, profile, {0.1, 0.1, 0.1}, sequential);
  const auto b = solve_nash(*alloc, profile, {0.3, 0.05, 0.2}, random);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(a.rates[i], b.rates[i], 1e-4);
  }
}

TEST(SolveNash, MonotoneTransformInvariance) {
  // Nash points depend only on preference orderings.
  const auto alloc = std::make_shared<FairShareAllocation>();
  const auto base = make_linear(1.0, 0.3);
  const auto transformed = std::make_shared<TransformedUtility>(
      base, [](double x) { return std::atan(2.0 * x) + x; }, "atan+id");
  const auto straight =
      solve_nash(*alloc, {base, base}, {0.1, 0.2});
  const auto twisted = solve_nash(
      *alloc, {transformed, transformed}, {0.1, 0.2});
  ASSERT_TRUE(straight.converged);
  ASSERT_TRUE(twisted.converged);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(straight.rates[i], twisted.rates[i], 1e-4);
  }
}

TEST(NewtonRelaxation, FairShareConvergesWithinNStepsLinearRegime) {
  // Theorem 7: nilpotent relaxation matrix -> exact convergence in <= N
  // synchronous Newton steps (linear utilities make the regime global).
  const auto alloc = std::make_shared<FairShareAllocation>();
  const UtilityProfile profile{make_linear(1.0, 0.15), make_linear(1.0, 0.3),
                               make_linear(1.0, 0.5)};
  const auto nash = solve_nash(*alloc, profile, {0.1, 0.1, 0.1});
  ASSERT_TRUE(nash.converged);
  auto start = nash.rates;
  for (auto& r : start) r *= 0.9;  // small displacement: linear regime
  const auto dynamics = newton_relaxation(*alloc, profile, start, 30, 1e-7);
  EXPECT_TRUE(dynamics.converged);
  EXPECT_LE(dynamics.iterations, 8);
}

TEST(RelaxationMatrix, DiagonalIsZero) {
  const auto alloc = std::make_shared<ProportionalAllocation>();
  const auto profile = uniform_profile(make_linear(1.0, 0.25), 3);
  const auto a = relaxation_matrix(*alloc, profile, {0.1, 0.15, 0.2});
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(a(i, i), 0.0);
}

TEST(FindEquilibria, FairShareFindsExactlyOne) {
  const auto alloc = std::make_shared<FairShareAllocation>();
  const UtilityProfile profile{make_linear(1.0, 0.2), make_linear(1.0, 0.35),
                               make_linear(1.0, 0.5)};
  const auto equilibria = find_equilibria(*alloc, profile, 12, 11);
  EXPECT_EQ(equilibria.size(), 1u);
}

TEST(SolveNash, SingleUserIsMonopolyOptimum) {
  // N = 1: the "game" degenerates to a monopoly problem with the same
  // closed form under every symmetric discipline: r* = 1 - sqrt(gamma).
  const auto u = make_linear(1.0, 0.16);
  const FairShareAllocation fair_share;
  const ProportionalAllocation proportional;
  for (const AllocationFunction* alloc :
       {static_cast<const AllocationFunction*>(&fair_share),
        static_cast<const AllocationFunction*>(&proportional)}) {
    const auto result = solve_nash(*alloc, {u}, {0.1});
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.rates[0], 1.0 - 0.4, 1e-4) << alloc->name();
  }
}

TEST(SolveNash, InputValidation) {
  const ProportionalAllocation alloc;
  const auto u = make_linear(1.0, 0.2);
  EXPECT_THROW((void)solve_nash(alloc, {u, u}, {0.1}), std::invalid_argument);
  EXPECT_THROW((void)solve_nash(alloc, {}, {}), std::invalid_argument);
  EXPECT_THROW((void)solve_nash(alloc, {u, nullptr}, {0.1, 0.1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace gw::core
