// gw-inspect CLI end-to-end against journals written by FlightJournal:
// summarize's rung/escalation tables, trajectory drift mode, and the
// check gate's machine-readable verdicts and exit codes.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/flight.hpp"
#include "obs/json_parse.hpp"

namespace {

using gw::obs::ActiveFlightScope;
using gw::obs::FlightJournal;
using gw::obs::FlightRecorder;
using gw::obs::FlightRung;
using gw::obs::JsonValue;
using gw::obs::parse_json;

#ifndef GW_TOOLS_BIN_DIR
#define GW_TOOLS_BIN_DIR ""
#endif

bool file_exists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

std::string inspect_path() {
  const std::string dir = GW_TOOLS_BIN_DIR;
  return dir.empty() ? std::string() : dir + "/gw-inspect";
}

std::string pid_tag() { return std::to_string(static_cast<long>(::getpid())); }

struct CommandResult {
  int exit_code = -1;
  std::string output;  ///< stdout only; stderr is discarded
};

CommandResult run_command(const std::string& command) {
  CommandResult result;
  const std::string capture =
      ::testing::TempDir() + "gw_inspect_out." + pid_tag() + ".txt";
  const int raw =
      std::system((command + " > " + capture + " 2>/dev/null").c_str());
  result.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  std::ifstream in(capture);
  std::stringstream buffer;
  buffer << in.rdbuf();
  result.output = buffer.str();
  std::remove(capture.c_str());
  return result;
}

/// A healthy repair trajectory: relax stalls, escalates to a cold solve
/// that converges — the shape bench_churn's adversarial bursts produce.
void record_escalating_solve(bool converge) {
  auto flight = FlightRecorder::begin("ctrl.repair", 16, FlightRung::kRelax);
  flight.iteration(0.8, 0.4, 1.0, 1);
  flight.iteration(0.75, 0.35, 0.5, 1);
  flight.backtrack(0.5);
  flight.escalation(FlightRung::kFullSolve, 0.75);
  flight.iteration(0.3, 0.2, 1.0, 0);
  flight.iteration(0.001, 0.0008, 1.0, 0);
  flight.verdict(converge, converge ? 1e-9 : 0.3);
}

void record_clean_solve(double scale) {
  auto flight = FlightRecorder::begin("core.relax", 8, FlightRung::kRelax);
  flight.iteration(0.4 * scale, 0.2, 1.0, 0);
  flight.iteration(0.04 * scale, 0.02, 1.0, 0);
  flight.iteration(0.004 * scale, 0.002, 1.0, 0);
  flight.verdict(true, 0.004 * scale);
}

class InspectCli : public ::testing::Test {
 protected:
  void SetUp() override {
    if (inspect_path().empty() || !file_exists(inspect_path())) {
      GTEST_SKIP() << "gw-inspect not built: " << inspect_path();
    }
  }

  std::string path(const std::string& name) const {
    return ::testing::TempDir() + "gw_inspect_" + pid_tag() + "_" + name;
  }
};

TEST_F(InspectCli, SummarizeReportsRungsEscalationsAndVerdicts) {
  FlightJournal journal;
  {
    ActiveFlightScope scope(journal);
    record_clean_solve(1.0);
    record_escalating_solve(true);
  }
  const std::string journal_path = path("summary.jsonl");
  ASSERT_TRUE(journal.write_file(journal_path));

  const auto run = run_command(inspect_path() + " summarize " + journal_path);
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("gw.solvetrace.v1"), std::string::npos);
  EXPECT_NE(run.output.find("relax"), std::string::npos);
  EXPECT_NE(run.output.find("full_solve"), std::string::npos);
  EXPECT_NE(run.output.find("escalated to full_solve"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("trajectory:"), std::string::npos);
  EXPECT_NE(run.output.find("2 converged, 0 not"), std::string::npos)
      << run.output;
  std::remove(journal_path.c_str());
}

TEST_F(InspectCli, CheckPassesHealthyJournalWithMachineReadableVerdict) {
  FlightJournal journal;
  {
    ActiveFlightScope scope(journal);
    record_clean_solve(1.0);
    record_escalating_solve(true);
  }
  const std::string journal_path = path("pass.jsonl");
  ASSERT_TRUE(journal.write_file(journal_path));

  const auto run = run_command(inspect_path() + " check " + journal_path);
  EXPECT_EQ(run.exit_code, 0) << run.output;
  const JsonValue doc = parse_json(run.output);
  EXPECT_EQ(doc.at("schema").string, "gw.inspectcheck.v1");
  EXPECT_DOUBLE_EQ(doc.at("solves").number, 2.0);
  EXPECT_DOUBLE_EQ(doc.at("converged").number, 2.0);
  EXPECT_TRUE(doc.at("pass").boolean);
  EXPECT_TRUE(doc.at("violations").array.empty());
  std::remove(journal_path.c_str());
}

TEST_F(InspectCli, CheckFailsOnNonConvergedFinalVerdict) {
  FlightJournal journal;
  {
    ActiveFlightScope scope(journal);
    record_escalating_solve(false);
  }
  const std::string journal_path = path("nonconv.jsonl");
  ASSERT_TRUE(journal.write_file(journal_path));

  const auto run = run_command(inspect_path() + " check " + journal_path);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  const JsonValue doc = parse_json(run.output);
  EXPECT_FALSE(doc.at("pass").boolean);
  ASSERT_EQ(doc.at("violations").array.size(), 1u);
  EXPECT_EQ(doc.at("violations").array[0].at("rule").string,
            "non_converged");
  std::remove(journal_path.c_str());
}

TEST_F(InspectCli, CheckAllowNonconvergedTalliesWithoutGating) {
  FlightJournal journal;
  {
    ActiveFlightScope scope(journal);
    record_escalating_solve(false);
  }
  const std::string journal_path = path("allowed.jsonl");
  ASSERT_TRUE(journal.write_file(journal_path));

  const auto run = run_command(inspect_path() + " check " + journal_path +
                               " --allow-nonconverged");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  const JsonValue doc = parse_json(run.output);
  EXPECT_TRUE(doc.at("pass").boolean);
  EXPECT_TRUE(doc.at("nonconverged_allowed").boolean);
  EXPECT_DOUBLE_EQ(doc.at("nonconverged").number, 1.0);
  EXPECT_TRUE(doc.at("violations").array.empty());
  std::remove(journal_path.c_str());
}

TEST_F(InspectCli, CheckFailsOnSilentNonConvergence) {
  FlightJournal journal;
  {
    ActiveFlightScope scope(journal);
    // Iterations but no verdict: the failure mode the gate exists for.
    auto flight = FlightRecorder::begin("core.newton_fdc", 8,
                                        FlightRung::kNewton);
    flight.iteration(0.5, 0.3, 1.0, 0);
    flight.iteration(0.4, 0.2, 1.0, 0);
  }
  const std::string journal_path = path("silent.jsonl");
  ASSERT_TRUE(journal.write_file(journal_path));

  const auto run = run_command(inspect_path() + " check " + journal_path);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  const JsonValue doc = parse_json(run.output);
  ASSERT_EQ(doc.at("violations").array.size(), 1u);
  EXPECT_EQ(doc.at("violations").array[0].at("rule").string,
            "silent_nonconvergence");
  std::remove(journal_path.c_str());
}

TEST_F(InspectCli, CheckFailsWhenFinalSegmentResidualGrows) {
  FlightJournal journal;
  {
    ActiveFlightScope scope(journal);
    auto flight = FlightRecorder::begin("core.relax", 4, FlightRung::kRelax);
    flight.iteration(0.01, 0.1, 1.0, 0);
    flight.iteration(0.5, 0.2, 1.0, 0);  // residual grew two orders
    flight.verdict(true, 0.5);           // ...yet claims convergence
  }
  const std::string journal_path = path("grew.jsonl");
  ASSERT_TRUE(journal.write_file(journal_path));

  const auto run = run_command(inspect_path() + " check " + journal_path);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  const JsonValue doc = parse_json(run.output);
  ASSERT_EQ(doc.at("violations").array.size(), 1u);
  EXPECT_EQ(doc.at("violations").array[0].at("rule").string,
            "residual_grew");
  std::remove(journal_path.c_str());
}

TEST_F(InspectCli, TrajectoryPrintsSeriesAndDriftAgainstSecondJournal) {
  const std::string old_path = path("old.jsonl");
  const std::string new_path = path("new.jsonl");
  {
    FlightJournal journal;
    ActiveFlightScope scope(journal);
    record_clean_solve(1.0);
    ASSERT_TRUE(journal.write_file(old_path));
  }
  {
    FlightJournal journal;
    ActiveFlightScope scope(journal);
    record_clean_solve(1.5);  // same shape, drifted residuals
    ASSERT_TRUE(journal.write_file(new_path));
  }

  const auto single = run_command(inspect_path() + " trajectory " + old_path +
                                  " --label core.relax");
  EXPECT_EQ(single.exit_code, 0) << single.output;
  EXPECT_NE(single.output.find("core.relax"), std::string::npos);
  EXPECT_NE(single.output.find("converged"), std::string::npos);

  const auto drift = run_command(inspect_path() + " trajectory " + old_path +
                                 " --label core.relax --against " + new_path);
  EXPECT_EQ(drift.exit_code, 0) << drift.output;
  // Max drift over the aligned series: |0.4 - 0.6| = 0.2 at iterate 0.
  EXPECT_NE(drift.output.find("max |drift| over aligned iterates: 0.2"),
            std::string::npos)
      << drift.output;
  std::remove(old_path.c_str());
  std::remove(new_path.c_str());
}

TEST_F(InspectCli, RejectsMissingFileAndUnknownCommand) {
  EXPECT_EQ(run_command(inspect_path() + " summarize " + path("nope.jsonl"))
                .exit_code,
            2);
  EXPECT_EQ(run_command(inspect_path() + " frobnicate x").exit_code, 2);
}

}  // namespace
