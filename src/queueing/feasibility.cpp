#include "queueing/feasibility.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "queueing/mm1.hpp"

namespace gw::queueing {

double constraint_residual(const std::vector<double>& rates,
                           const std::vector<double>& queues) {
  const double total_rate = std::accumulate(rates.begin(), rates.end(), 0.0);
  const double total_queue = std::accumulate(queues.begin(), queues.end(), 0.0);
  return total_queue - g(total_rate);
}

Feasibility check_feasibility(const std::vector<double>& rates,
                              const std::vector<double>& queues,
                              double tolerance) {
  if (rates.size() != queues.size()) {
    throw std::invalid_argument("check_feasibility: size mismatch");
  }
  for (const double rate : rates) {
    if (rate < 0.0) {
      throw std::invalid_argument("check_feasibility: negative rate");
    }
  }
  Feasibility out;
  out.residual = constraint_residual(rates, queues);
  out.on_constraint =
      std::isfinite(out.residual) && std::abs(out.residual) <= tolerance;

  // Order users by increasing c_i / r_i (zero-rate users first: their ratio
  // is taken as c_i / epsilon -> order them by queue, but a zero-rate user
  // must have c_i contribute nothing binding; place them last so prefixes
  // of active users are checked).
  const std::size_t n = rates.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ratio_a = rates[a] > 0.0
                               ? queues[a] / rates[a]
                               : std::numeric_limits<double>::infinity();
    const double ratio_b = rates[b] > 0.0
                               ? queues[b] / rates[b]
                               : std::numeric_limits<double>::infinity();
    return ratio_a < ratio_b;
  });

  out.subsets_ok = true;
  out.worst_prefix_slack = std::numeric_limits<double>::infinity();
  double prefix_rate = 0.0;
  double prefix_queue = 0.0;
  for (std::size_t k = 0; k + 1 <= n; ++k) {
    prefix_rate += rates[order[k]];
    prefix_queue += queues[order[k]];
    if (k + 1 == n) break;  // the full set is the equality constraint itself
    const double bound = g(prefix_rate);
    const double slack = std::isinf(bound)
                             ? (std::isinf(prefix_queue) ? 0.0 : -bound)
                             : prefix_queue - bound;
    out.worst_prefix_slack = std::min(out.worst_prefix_slack, slack);
    if (slack < -tolerance) out.subsets_ok = false;
  }
  if (n <= 1) out.worst_prefix_slack = 0.0;
  return out;
}

bool in_natural_domain(const std::vector<double>& rates) noexcept {
  double total = 0.0;
  for (const double rate : rates) {
    if (rate <= 0.0) return false;
    total += rate;
  }
  return total < 1.0;
}

}  // namespace gw::queueing
