// Nash equilibrium computation for the switch congestion game
// (paper Definition 1 and Sections 4.1–4.2).
//
// A point r is a Nash equilibrium when no user can raise her utility by a
// unilateral rate change. Best responses are computed by *global* scalar
// maximization (scan + Brent), so the solvers remain correct where payoffs
// are non-concave or partially infeasible (congestion jumps to +infinity).
#pragma once

#include <vector>

#include "core/allocation.hpp"
#include "core/utility.hpp"
#include "numerics/matrix.hpp"

namespace gw::core {

struct BestResponseOptions {
  double r_min = 1e-6;   ///< lower edge of the candidate interval
  double r_max = 0.999;  ///< upper edge (paper: candidates in [0, 1])
  int scan_points = 201; ///< coarse scan resolution before refinement
};

struct BestResponse {
  double rate = 0.0;
  double utility = 0.0;
};

/// User i's utility-maximizing rate against fixed opponents' rates.
[[nodiscard]] BestResponse best_response(const AllocationFunction& alloc,
                                         const Utility& utility,
                                         std::vector<double> rates,
                                         std::size_t i,
                                         const BestResponseOptions& options = {});

/// Allocation-free hot path used by the solvers: `rates` must be
/// pre-validated (AllocationFunction::validate_rates); candidate rates are
/// written into rates[i] during the scan and the original value is
/// restored before returning. Draws all scratch from `ws`.
[[nodiscard]] BestResponse best_response(const AllocationFunction& alloc,
                                         const Utility& utility,
                                         std::span<double> rates, std::size_t i,
                                         const BestResponseOptions& options,
                                         EvalWorkspace& ws);

enum class UpdateOrder {
  kSequential,         ///< Gauss–Seidel: apply each best response immediately
  kSynchronous,        ///< Jacobi: all users move simultaneously
  kRandomPermutation,  ///< Gauss–Seidel in a fresh random order per sweep
};

struct NashOptions {
  UpdateOrder order = UpdateOrder::kSequential;
  double damping = 1.0;  ///< r <- (1-damping) r + damping * BR(r)
  int max_iterations = 400;
  double tolerance = 1e-9;  ///< max rate movement per sweep at convergence
  BestResponseOptions best_response;
  unsigned seed = 7;  ///< for kRandomPermutation
};

struct NashResult {
  std::vector<double> rates;
  bool converged = false;
  int iterations = 0;
  double max_move = 0.0;  ///< movement in the final sweep
};

/// Best-response dynamics from `start`. `profile.size()` must match
/// `start.size()`; throws std::invalid_argument otherwise.
[[nodiscard]] NashResult solve_nash(const AllocationFunction& alloc,
                                    const UtilityProfile& profile,
                                    std::vector<double> start,
                                    const NashOptions& options = {});

/// The Nash first-derivative residuals E_i = M_i(r_i, C_i(r)) + dC_i/dr_i
/// (zero at an interior Nash point). Entries are NaN where C_i is infinite.
[[nodiscard]] std::vector<double> fdc_residuals(const AllocationFunction& alloc,
                                                const UtilityProfile& profile,
                                                const std::vector<double>& rates);

/// Verifies the Nash property directly: no user can improve her utility by
/// more than `utility_slack` with a unilateral move.
[[nodiscard]] bool is_nash(const AllocationFunction& alloc,
                           const UtilityProfile& profile,
                           const std::vector<double>& rates,
                           double utility_slack = 1e-7,
                           const BestResponseOptions& options = {});

/// dE_i/dr_j assembled from the allocation's partials and the utility's
/// second derivatives (chain rule through C_i).
[[nodiscard]] double fdc_jacobian_entry(const AllocationFunction& alloc,
                                        const UtilityProfile& profile,
                                        const std::vector<double>& rates,
                                        std::size_t i, std::size_t j);

/// The synchronous-Newton relaxation matrix of paper Section 4.2.3:
///   A_ij = delta_ij - (dE_i/dr_j) / (dE_j/dr_j).
/// (The paper's displayed denominator dE_j/dr_i is a typo; this form is
/// the linearization of the Newton update and yields A_ii = 0 as stated.)
[[nodiscard]] numerics::Matrix relaxation_matrix(
    const AllocationFunction& alloc, const UtilityProfile& profile,
    const std::vector<double>& rates);

struct NewtonDynamicsResult {
  std::vector<std::vector<double>> trajectory;  ///< includes the start point
  bool converged = false;
  int iterations = 0;
};

/// Synchronous Newton self-optimization: every user simultaneously applies
/// r_i += -E_i / (dE_i/dr_i). Under Fair Share this converges in at most N
/// steps in the linear regime (Theorem 7).
[[nodiscard]] NewtonDynamicsResult newton_relaxation(
    const AllocationFunction& alloc, const UtilityProfile& profile,
    std::vector<double> start, int max_iterations = 100,
    double tolerance = 1e-10);

/// Multi-start equilibrium enumeration: runs solve_nash from `n_starts`
/// random interior points and clusters converged, Nash-verified outcomes
/// that differ by more than `distinct_tolerance` (L-infinity).
[[nodiscard]] std::vector<std::vector<double>> find_equilibria(
    const AllocationFunction& alloc, const UtilityProfile& profile,
    int n_starts, unsigned seed = 42, const NashOptions& options = {},
    double distinct_tolerance = 1e-4);

}  // namespace gw::core
