#include "sim/tandem.hpp"

#include <memory>
#include <stdexcept>

#include "sim/drr_station.hpp"
#include "sim/fair_share_station.hpp"
#include "sim/sfq_station.hpp"
#include "sim/sources.hpp"

namespace gw::sim {

TandemResult run_tandem(
    Discipline discipline, const std::vector<double>& rates,
    const std::vector<std::pair<std::size_t, std::size_t>>& spans,
    std::size_t n_switches, const TandemOptions& options) {
  const std::size_t n_users = rates.size();
  if (spans.size() != n_users || n_users == 0 || n_switches == 0) {
    throw std::invalid_argument("run_tandem: size mismatch");
  }
  for (const auto& [first, last] : spans) {
    if (first > last || last >= n_switches) {
      throw std::invalid_argument("run_tandem: bad span");
    }
  }

  Simulator sim;
  std::vector<std::unique_ptr<QueueTracker>> trackers;
  std::vector<std::unique_ptr<Station>> stations;
  trackers.reserve(n_switches);
  stations.reserve(n_switches);

  // Per-switch local rate vector (zero where the user does not cross) —
  // needed by the FS oracle thinning.
  numerics::Rng seeder(options.seed);
  for (std::size_t a = 0; a < n_switches; ++a) {
    trackers.push_back(std::make_unique<QueueTracker>(n_users));
    std::vector<double> local(n_users, 0.0);
    for (std::size_t u = 0; u < n_users; ++u) {
      if (spans[u].first <= a && a <= spans[u].second) local[u] = rates[u];
    }
    switch (discipline) {
      case Discipline::kFifo:
        stations.push_back(std::make_unique<FifoStation>(sim, *trackers[a]));
        break;
      case Discipline::kLifoPreempt:
        stations.push_back(
            std::make_unique<LifoPreemptStation>(sim, *trackers[a]));
        break;
      case Discipline::kProcessorSharing:
        stations.push_back(std::make_unique<PsStation>(sim, *trackers[a]));
        break;
      case Discipline::kFairShareOracle:
        stations.push_back(std::make_unique<FairShareStation>(
            sim, *trackers[a], local, seeder.next_u64()));
        break;
      case Discipline::kDrr:
        stations.push_back(std::make_unique<DrrStation>(
            sim, *trackers[a], n_users, options.drr_quantum));
        break;
      case Discipline::kSfq:
        stations.push_back(
            std::make_unique<SfqStation>(sim, *trackers[a], n_users));
        break;
      default:
        throw std::invalid_argument("run_tandem: unsupported discipline");
    }
  }

  // Chain the hops: a departure at switch a re-enters switch a + 1 while
  // inside the user's span, with the demand optionally redrawn.
  std::vector<numerics::Rng> hop_rng;
  hop_rng.reserve(n_switches);
  for (std::size_t a = 0; a < n_switches; ++a) {
    hop_rng.emplace_back(seeder.next_u64());
  }
  // End-to-end accounting: entry time per packet id.
  struct EndToEnd {
    double delay_sum = 0.0;
    std::size_t packets = 0;
  };
  std::vector<EndToEnd> end_to_end(n_users);

  for (std::size_t a = 0; a < n_switches; ++a) {
    Station* next = (a + 1 < n_switches) ? stations[a + 1].get() : nullptr;
    stations[a]->set_next_hop([&, a, next](const Packet& done) {
      const auto [first, last] = spans[done.user];
      if (a < last && next != nullptr) {
        Packet forwarded = done;
        forwarded.arrival_time = sim.now();
        if (options.resample_service) {
          forwarded.service_demand = hop_rng[a].exponential(options.mu);
        }
        forwarded.remaining = forwarded.service_demand;
        next->arrive(std::move(forwarded));
      }
    });
  }

  std::vector<std::unique_ptr<PoissonSource>> sources;
  for (std::size_t u = 0; u < n_users; ++u) {
    sources.push_back(std::make_unique<PoissonSource>(
        sim, *stations[spans[u].first], u, rates[u], options.mu,
        seeder.next_u64()));
  }

  sim.run_for(options.warmup);
  for (auto& tracker : trackers) tracker->reset(sim.now());
  const double measure_start = sim.now();
  sim.run_for(options.batches * options.batch_length);
  const double now = sim.now();

  TandemResult result;
  result.events = sim.processed_events();
  result.mean_queue.assign(n_switches, std::vector<double>(n_users, 0.0));
  result.total_congestion.assign(n_users, 0.0);
  result.end_to_end_delay.assign(n_users, 0.0);
  for (std::size_t a = 0; a < n_switches; ++a) {
    for (std::size_t u = 0; u < n_users; ++u) {
      const double queue = trackers[a]->time_average(u, now);
      result.mean_queue[a][u] = queue;
      result.total_congestion[u] += queue;
      // Per-hop mean delays compose into the end-to-end mean.
      if (spans[u].first <= a && a <= spans[u].second) {
        result.end_to_end_delay[u] += trackers[a]->mean_delay(u);
      }
    }
  }
  (void)measure_start;
  return result;
}

}  // namespace gw::sim
