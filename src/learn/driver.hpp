// Couples a population of learners to the analytic congestion game.
//
// Each round every user observes the utility of the current operating
// point and revises her rate via her Learner. Sophisticated learners also
// receive a counterfactual oracle (everyone else frozen). The driver
// records the full trajectory so benches can report convergence speed and
// the distance to the game's Nash equilibrium.
#pragma once

#include <memory>
#include <vector>

#include "core/allocation.hpp"
#include "core/utility.hpp"
#include "learn/learner.hpp"

namespace gw::learn {

struct DriverOptions {
  int max_rounds = 4000;
  /// Converged when every rate moved less than this for `patience` rounds.
  double tolerance = 1e-5;
  int patience = 50;
  bool synchronous = false;  ///< true: all users update on a snapshot
  /// One user acts per round (users self-optimize on their own
  /// timescales). This keeps each learner's base/probe comparisons
  /// unconfounded by the others' simultaneous probing — without it, naive
  /// probing learners inject oscillation into each other's payoffs and
  /// can stall off-equilibrium. Ignored when `synchronous` is true.
  bool round_robin = true;
  /// Record the full per-round rate trajectory in DriverResult. Long
  /// self-optimization runs can turn this off to skip the O(rounds × N)
  /// allocation; convergence diagnostics survive via DriverResult::rounds,
  /// DriverResult::final_max_move and the "learn.driver.*" metrics in
  /// obs::default_registry().
  bool record_trajectory = true;
};

struct DriverResult {
  /// Rates per round (start point included); empty when
  /// DriverOptions::record_trajectory is false.
  std::vector<std::vector<double>> trajectory;
  std::vector<double> final_rates;
  bool converged = false;
  int rounds = 0;
  /// Largest single-user rate move in the final round (the driver's
  /// convergence residual).
  double final_max_move = 0.0;
};

class GameDriver {
 public:
  GameDriver(std::shared_ptr<const core::AllocationFunction> alloc,
             core::UtilityProfile profile);

  /// Runs the learner population (one per user) from their current rates.
  [[nodiscard]] DriverResult run(
      std::vector<std::unique_ptr<Learner>>& learners,
      const DriverOptions& options = {}) const;

 private:
  std::shared_ptr<const core::AllocationFunction> alloc_;
  core::UtilityProfile profile_;
};

}  // namespace gw::learn
