// Allocation functions (paper Section 3.1).
//
// An allocation function C maps a vector of Poisson rates r to the vector
// of per-user mean queue lengths c realized by a work-conserving service
// discipline at a unit-rate exponential server. Every implementation must
//   * satisfy the aggregate constraint sum_i C_i(r) = g(sum_i r_i),
//   * satisfy the subsidiary subset constraints,
//   * be symmetric (permuting r permutes c), and
//   * be defined on all of R^N_+, with +infinity entries where users
//     saturate (paper footnote 6).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "numerics/matrix.hpp"

namespace gw::core {

class AllocationFunction {
 public:
  virtual ~AllocationFunction() = default;

  /// Human-readable discipline name for reports.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Congestion vector C(r); entries may be +infinity.
  /// Requires all rates >= 0 (throws std::invalid_argument otherwise).
  [[nodiscard]] virtual std::vector<double> congestion(
      const std::vector<double>& rates) const = 0;

  /// Single component C_i(r). Default: evaluates the full vector.
  [[nodiscard]] virtual double congestion_of(
      std::size_t i, const std::vector<double>& rates) const;

  /// dC_i / dr_j. Default: Richardson-extrapolated numeric differentiation
  /// of congestion_of; override with closed forms where available.
  [[nodiscard]] virtual double partial(std::size_t i, std::size_t j,
                                       const std::vector<double>& rates) const;

  /// d^2 C_i / (dr_i dr_j). Default numeric.
  [[nodiscard]] virtual double second_partial(
      std::size_t i, std::size_t j, const std::vector<double>& rates) const;

  /// Jacobian matrix J_ij = dC_i / dr_j.
  [[nodiscard]] numerics::Matrix jacobian(
      const std::vector<double>& rates) const;

 protected:
  /// Validates a rate vector (non-negative, non-empty).
  static void validate_rates(const std::vector<double>& rates);
};

/// The induced allocation function of a subsystem (paper Section 4):
/// some users' rates are frozen; the remaining `free` users see the same
/// C restricted to their coordinates. If the base function is in MAC the
/// subsystem is too.
class SubsystemAllocation final : public AllocationFunction {
 public:
  /// `frozen_rates` supplies rates for every user of the base system;
  /// coordinates listed in `free_indices` are overridden by the reduced
  /// rate vector passed to congestion().
  SubsystemAllocation(std::shared_ptr<const AllocationFunction> base,
                      std::vector<double> frozen_rates,
                      std::vector<std::size_t> free_indices);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::vector<double> congestion(
      const std::vector<double>& rates) const override;
  [[nodiscard]] double partial(std::size_t i, std::size_t j,
                               const std::vector<double>& rates) const override;
  [[nodiscard]] double second_partial(
      std::size_t i, std::size_t j,
      const std::vector<double>& rates) const override;

  [[nodiscard]] std::size_t base_size() const noexcept {
    return frozen_rates_.size();
  }
  [[nodiscard]] std::size_t free_size() const noexcept {
    return free_indices_.size();
  }

  /// Maps a reduced (free-user) rate vector into the full base vector.
  [[nodiscard]] std::vector<double> embed(
      const std::vector<double>& rates) const;

 private:
  std::shared_ptr<const AllocationFunction> base_;
  std::vector<double> frozen_rates_;
  std::vector<std::size_t> free_indices_;
};

}  // namespace gw::core
