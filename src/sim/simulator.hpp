// Discrete-event simulation kernel.
//
// A time-ordered event heap with stable FIFO ordering of simultaneous
// events and cheap cancellation. Service disciplines with preemption
// (LIFO, priority, Fair Share) rely on cancel() to withdraw completion
// events when the job in service changes.
//
// The kernel is allocation-free on the steady-state hot path:
//   * actions live in fixed inline storage (InlineAction) instead of a
//     heap-allocated std::function closure — oversized captures fail to
//     compile rather than silently boxing;
//   * the priority queue is a flat 4-ary array heap of 24-byte POD
//     entries (shallower than a binary heap and cache-line friendly;
//     sift moves never touch the action storage);
//   * cancellation is generation-stamped lazy invalidation: cancel() is
//     O(1) and retires the slot immediately, and the stale heap entry is
//     discarded when it surfaces at the top — no tombstone set, and no
//     cost at all for events that are never cancelled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace gw::obs {
class Counter;
}  // namespace gw::obs

namespace gw::sim {

using EventId = std::uint64_t;

namespace detail {

/// Type-erased move-only callable with fixed inline storage — the
/// simulator's replacement for std::function<void()>. Construction from a
/// callable whose captures exceed kCapacity (or that is not nothrow move
/// constructible) is a compile error, so every event is guaranteed
/// allocation-free. The station closures capture a single `this` pointer;
/// kCapacity leaves room for test/driver lambdas with a few captures (a
/// whole std::function still fits, so recursive std::function chains keep
/// working).
class InlineAction {
 public:
  static constexpr std::size_t kCapacity = 48;

  InlineAction() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineAction> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineAction(F&& fn) {  // NOLINT(google-explicit-constructor)
    static_assert(sizeof(D) <= kCapacity,
                  "event closure captures exceed InlineAction::kCapacity; "
                  "shrink the capture list (the kernel never heap-allocates)");
    static_assert(alignof(D) <= alignof(std::max_align_t),
                  "event closure is over-aligned for InlineAction storage");
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "event closure must be nothrow move constructible");
    ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
    vtable_ = vtable_for<D>();
  }

  InlineAction(InlineAction&& other) noexcept : vtable_(other.vtable_) {
    if (vtable_ != nullptr) {
      vtable_->relocate(storage_, other.storage_);
      other.vtable_ = nullptr;
    }
  }

  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      reset();
      vtable_ = other.vtable_;
      if (vtable_ != nullptr) {
        vtable_->relocate(storage_, other.storage_);
        other.vtable_ = nullptr;
      }
    }
    return *this;
  }

  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;

  ~InlineAction() { reset(); }

  /// Destroys the held callable (no-op when empty).
  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vtable_ != nullptr;
  }

  void operator()() { vtable_->invoke(storage_); }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;  ///< move + destroy src
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static const VTable* vtable_for() noexcept {
    static constexpr VTable table{
        [](void* p) { (*static_cast<D*>(p))(); },
        [](void* dst, void* src) noexcept {
          ::new (dst) D(std::move(*static_cast<D*>(src)));
          static_cast<D*>(src)->~D();
        },
        [](void* p) noexcept { static_cast<D*>(p)->~D(); }};
    return &table;
  }

  alignas(std::max_align_t) unsigned char storage_[kCapacity];
  const VTable* vtable_ = nullptr;
};

}  // namespace detail

class Simulator {
 public:
  using Action = detail::InlineAction;

  Simulator();

  [[nodiscard]] double now() const noexcept { return now_; }

  /// Schedules `action` at absolute time `t` (>= now). Returns a handle
  /// usable with cancel().
  EventId schedule_at(double t, Action action);

  /// Schedules `action` `dt` from now (dt >= 0).
  EventId schedule_in(double dt, Action action);

  /// Cancels a pending event in O(1); no-op if already fired, already
  /// cancelled, or never issued (stale handles are recognized by their
  /// generation stamp even after the slot is reused).
  void cancel(EventId id) noexcept;

  /// Processes all events with time <= t_end, then advances the clock to
  /// t_end. Returns the number of events processed.
  std::size_t run_until(double t_end);

  /// run_until(now + dt).
  std::size_t run_for(double dt);

  [[nodiscard]] std::size_t processed_events() const noexcept {
    return processed_;
  }
  /// Scheduled-but-not-yet-fired events, net of cancellations.
  [[nodiscard]] std::size_t pending_events() const noexcept { return live_; }

 private:
  /// POD heap entry; sift operations shuffle these 24-byte records while
  /// the action stays put in its slot.
  struct Entry {
    double time;
    std::uint64_t seq;   ///< monotone schedule order; FIFO tie-break
    std::uint32_t slot;  ///< index into slots_
    std::uint32_t gen;   ///< must match the slot's generation to fire
  };

  /// Home of one scheduled action. Freed (and its generation bumped) the
  /// moment the event fires or is cancelled, so slots recycle at the rate
  /// of the event population, not the event count.
  struct Slot {
    Action action;
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNoSlot;
    bool armed = false;
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  static bool earlier(const Entry& a, const Entry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;  // FIFO among simultaneous events
  }

  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index) noexcept;

  double now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::size_t processed_ = 0;
  std::size_t live_ = 0;
  std::vector<Entry> heap_;   ///< flat 4-ary min-heap on (time, seq)
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  obs::Counter* events_processed_;  ///< per-instance registry handle
};

}  // namespace gw::sim
