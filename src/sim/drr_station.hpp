// Deficit Round Robin fair queueing (paper Section 5.2's "real network"
// discipline family).
//
// Non-preemptive: per-user FIFO queues are visited round-robin; a visit
// adds `quantum` to the user's deficit and the head packet is served when
// its service demand fits the deficit. Backlogged users share bandwidth
// nearly equally regardless of their arrival rates, approximating the
// insulation Fair Queueing provides in packet networks.
#pragma once

#include <deque>

#include "sim/stations.hpp"

namespace gw::sim {

class DrrStation final : public Station {
 public:
  DrrStation(Simulator& sim, QueueTracker& tracker, std::size_t n_users,
             double quantum);

  [[nodiscard]] std::string name() const override { return "DRR-FQ"; }
  void arrive(Packet packet) override;

 private:
  void serve_next();
  void complete();

  std::vector<std::deque<Packet>> queues_;
  std::vector<double> deficit_;
  double quantum_;
  std::size_t cursor_ = 0;
  bool busy_ = false;
  Packet in_service_{};
  EventId completion_ = 0;
};

}  // namespace gw::sim
