#include "queueing/priority.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "queueing/mm1.hpp"

namespace gw::queueing {
namespace {

TEST(PreemptivePriority, SingleClassIsMm1) {
  const auto result = preemptive_priority_mm1({0.5});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_NEAR(result[0].mean_in_system, 1.0, 1e-12);
  EXPECT_NEAR(result[0].mean_sojourn, 2.0, 1e-12);
}

TEST(PreemptivePriority, TopClassSeesPrivateServer) {
  // The highest class is oblivious to lower classes under preemption.
  const auto result = preemptive_priority_mm1({0.3, 0.4});
  const Mm1 solo{0.3, 1.0};
  EXPECT_NEAR(result[0].mean_in_system, solo.mean_in_system(), 1e-12);
}

TEST(PreemptivePriority, TelescopesToAggregate) {
  const std::vector<double> lambdas{0.1, 0.2, 0.3, 0.15};
  const auto result = preemptive_priority_mm1(lambdas);
  const double total_rate =
      std::accumulate(lambdas.begin(), lambdas.end(), 0.0);
  double total_l = 0.0;
  for (const auto& cls : result) total_l += cls.mean_in_system;
  EXPECT_NEAR(total_l, g(total_rate), 1e-12);
}

TEST(PreemptivePriority, LowerClassesSufferMore) {
  const auto result = preemptive_priority_mm1({0.2, 0.2, 0.2});
  EXPECT_LT(result[0].mean_sojourn, result[1].mean_sojourn);
  EXPECT_LT(result[1].mean_sojourn, result[2].mean_sojourn);
}

TEST(PreemptivePriority, SaturatedLowClassInfinite) {
  const auto result = preemptive_priority_mm1({0.5, 0.6});
  EXPECT_TRUE(std::isfinite(result[0].mean_in_system));
  EXPECT_TRUE(std::isinf(result[1].mean_in_system));
}

TEST(PreemptivePriority, HighClassesImmuneToSaturationBelow) {
  const auto calm = preemptive_priority_mm1({0.4});
  const auto stormy = preemptive_priority_mm1({0.4, 5.0});
  EXPECT_NEAR(stormy[0].mean_in_system, calm[0].mean_in_system, 1e-12);
}

TEST(PreemptivePriority, ZeroRateClassHasZeroQueue) {
  const auto result = preemptive_priority_mm1({0.3, 0.0, 0.4});
  EXPECT_NEAR(result[1].mean_in_system, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(result[1].mean_sojourn, 0.0);
}

TEST(PreemptivePriority, ScalesWithMu) {
  // Doubling mu at doubled rates preserves loads, halves sojourns.
  const auto base = preemptive_priority_mm1({0.2, 0.3}, 1.0);
  const auto fast = preemptive_priority_mm1({0.4, 0.6}, 2.0);
  EXPECT_NEAR(fast[0].mean_in_system, base[0].mean_in_system, 1e-12);
  EXPECT_NEAR(fast[1].mean_sojourn, base[1].mean_sojourn / 2.0, 1e-12);
}

TEST(PreemptivePriority, RejectsNegativeInputs) {
  EXPECT_THROW((void)preemptive_priority_mm1({-0.1}), std::invalid_argument);
  EXPECT_THROW((void)preemptive_priority_mm1({0.1}, 0.0),
               std::invalid_argument);
}

TEST(NonpreemptivePriority, TotalMatchesFifoMm1) {
  // Work-conserving, exponential: total L equals the M/M/1 value.
  const std::vector<double> lambdas{0.25, 0.35};
  const auto result = nonpreemptive_priority_mm1(lambdas);
  double total_l = 0.0;
  for (const auto& cls : result) total_l += cls.mean_in_system;
  EXPECT_NEAR(total_l, g(0.6), 1e-9);
}

TEST(NonpreemptivePriority, HighClassStillWaitsForResidual) {
  // Unlike preemption, the top class is slower than a private M/M/1.
  const auto result = nonpreemptive_priority_mm1({0.3, 0.4});
  const Mm1 solo{0.3, 1.0};
  EXPECT_GT(result[0].mean_sojourn, solo.mean_sojourn());
}

TEST(NonpreemptivePriority, PreemptionHelpsTopClass) {
  const auto preemptive = preemptive_priority_mm1({0.3, 0.4});
  const auto hol = nonpreemptive_priority_mm1({0.3, 0.4});
  EXPECT_LT(preemptive[0].mean_sojourn, hol[0].mean_sojourn);
}

}  // namespace
}  // namespace gw::queueing
