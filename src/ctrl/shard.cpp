#include "ctrl/shard.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"

namespace gw::ctrl {

namespace {

struct RepairMetrics {
  obs::Counter& single_user;
  obs::Counter& relax;
  obs::Counter& newton;
  obs::Counter& warm_solve;
  obs::Counter& full_solve;
  obs::Counter& escalations;
  obs::Histogram& relax_iterations;
};

RepairMetrics& repair_metrics() {
  static auto& registry = obs::default_registry();
  static RepairMetrics metrics{
      registry.counter("ctrl.repair.single_user"),
      registry.counter("ctrl.repair.relax"),
      registry.counter("ctrl.repair.newton"),
      registry.counter("ctrl.repair.warm_solve"),
      registry.counter("ctrl.repair.full_solve"),
      registry.counter("ctrl.repair.escalations"),
      registry.histogram("ctrl.repair.relax_iterations", 0.0, 64.0, 32),
  };
  return metrics;
}

}  // namespace

SolverShard::SolverShard(
    std::shared_ptr<const core::AllocationFunction> alloc,
    core::UtilityProfile profile, std::vector<double> start)
    : alloc_(std::move(alloc)), profile_(std::move(profile)) {
  if (alloc_ == nullptr) throw std::invalid_argument("SolverShard: null alloc");
  if (profile_.empty()) throw std::invalid_argument("SolverShard: no users");
  for (const auto& u : profile_) {
    if (u == nullptr) throw std::invalid_argument("SolverShard: null utility");
  }
  staged_.resize(profile_.size());
  staged_flag_.assign(profile_.size(), 0);
  if (start.empty()) {
    rates_.assign(profile_.size(), 0.5 / static_cast<double>(profile_.size()));
    rates_ = core::solve_nash(*alloc_, profile_, rates_,
                              RepairPolicy{}.full_solve)
                 .rates;
  } else {
    if (start.size() != profile_.size()) {
      throw std::invalid_argument("SolverShard: start size mismatch");
    }
    rates_ = std::move(start);
  }
}

SolverShard::SolverShard(
    std::shared_ptr<const core::AllocationFunction> alloc,
    core::UtilityProfile class_profile, core::ClassedPopulation population)
    : alloc_(std::move(alloc)),
      profile_(std::move(class_profile)),
      classed_(true),
      pop_(std::move(population)) {
  if (alloc_ == nullptr) throw std::invalid_argument("SolverShard: null alloc");
  if (profile_.size() != pop_.k() || profile_.empty()) {
    throw std::invalid_argument(
        "SolverShard: class profile / population size mismatch");
  }
  for (const auto& u : profile_) {
    if (u == nullptr) throw std::invalid_argument("SolverShard: null utility");
  }
  staged_count_.assign(pop_.k(), 0);
  staged_class_.resize(pop_.k());
  staged_class_flag_.assign(pop_.k(), 0);
  pop_ = core::solve_nash_classed(*alloc_, profile_, std::move(pop_),
                                  RepairPolicy{}.full_solve)
             .population;
}

const core::ClassedPopulation& SolverShard::population() const {
  if (!classed_) {
    throw std::logic_error("SolverShard: population() on expanded shard");
  }
  return pop_;
}

void SolverShard::stage(std::size_t local_user, core::UtilityPtr utility) {
  if (classed_) {
    throw std::logic_error(
        "SolverShard: expanded stage() on classed shard; use "
        "stage_class_count / stage_class_utility");
  }
  if (local_user >= profile_.size()) {
    throw std::invalid_argument("SolverShard: bad user index");
  }
  if (utility == nullptr) {
    throw std::invalid_argument("SolverShard: null utility");
  }
  if (staged_flag_[local_user] == 0) {
    staged_flag_[local_user] = 1;
    dirty_users_.push_back(local_user);
  }
  staged_[local_user] = std::move(utility);
}

void SolverShard::stage_class_count(std::size_t cls, std::size_t count) {
  if (!classed_) {
    throw std::logic_error("SolverShard: stage_class_count on expanded shard");
  }
  if (cls >= pop_.k()) throw std::invalid_argument("SolverShard: bad class");
  if (count == 0) {
    throw std::invalid_argument("SolverShard: class count must be >= 1");
  }
  if (staged_class_flag_[cls] == 0) {
    staged_class_flag_[cls] = 1;
    dirty_classes_.push_back(cls);
  }
  staged_count_[cls] = count;
}

void SolverShard::stage_class_utility(std::size_t cls,
                                      core::UtilityPtr utility) {
  if (!classed_) {
    throw std::logic_error(
        "SolverShard: stage_class_utility on expanded shard");
  }
  if (cls >= pop_.k()) throw std::invalid_argument("SolverShard: bad class");
  if (utility == nullptr) {
    throw std::invalid_argument("SolverShard: null utility");
  }
  if (staged_class_flag_[cls] == 0) {
    staged_class_flag_[cls] = 1;
    dirty_classes_.push_back(cls);
  }
  staged_class_[cls] = std::move(utility);
}

std::vector<double> SolverShard::cold_start() const {
  return std::vector<double>(profile_.size(),
                             0.5 / static_cast<double>(profile_.size()));
}

std::vector<double> SolverShard::cold_solve(
    const core::NashOptions& options) const {
  return core::solve_nash(*alloc_, profile_, cold_start(), options).rates;
}

RepairOutcome SolverShard::repair(const RepairPolicy& policy) {
  if (classed_) return repair_classed(policy);
  RepairOutcome outcome;
  if (dirty_users_.empty()) return outcome;
  outcome.users_churned = dirty_users_.size();
  const bool single = dirty_users_.size() == 1;
  const std::size_t churned = dirty_users_.front();
  for (const std::size_t user : dirty_users_) {
    profile_[user] = std::move(staged_[user]);
    staged_flag_[user] = 0;
  }
  dirty_users_.clear();

  auto& metrics = repair_metrics();

  // The flight span covers the whole ladder: the core engines below join
  // it, so one repair reads as a single trajectory across rung
  // transitions, and the last engine's verdict is the span's verdict.
  auto flight = obs::FlightRecorder::begin("ctrl.repair", rates_.size(),
                                           obs::FlightRung::kNone);

  // Naive mode, or so much of the shard churned that the previous
  // equilibrium is stale wholesale: cold solve directly, skipping the
  // incremental rungs that could only waste their budgets first.
  const bool bulk_churn =
      static_cast<double>(outcome.users_churned) >
      policy.full_solve_dirty_fraction * static_cast<double>(rates_.size());
  if (policy.mode == RepairMode::kFullResolve || bulk_churn) {
    if (policy.mode == RepairMode::kFullResolve) {
      // The naive baseline always cold-solves; that is its normal path,
      // not an escalation worth dumping.
      flight.rung(obs::FlightRung::kFullSolve);
    } else if (flight.armed()) {
      flight.event(obs::FlightEvent::kDirtyGate,
                   static_cast<double>(outcome.users_churned) /
                       static_cast<double>(rates_.size()));
      flight.escalation(obs::FlightRung::kFullSolve,
                        std::numeric_limits<double>::quiet_NaN());
    }
    const auto solved =
        core::solve_nash(*alloc_, profile_, cold_start(), policy.full_solve);
    rates_ = solved.rates;
    outcome.path = RepairPath::kFullSolve;
    outcome.converged = solved.converged;
    metrics.full_solve.inc();
    return outcome;
  }

  // Rung 1: coordinate Newton on the one churned user. Only row `churned`
  // of the FDC system moved at the current rate point, so this is the
  // whole repair whenever the cross-coupling it induces stays below
  // tolerance (verified by the rung-2 residual check, which costs one
  // batched sweep and zero Newton steps when already converged).
  if (single && policy.single_user_iterations > 0) {
    flight.rung(obs::FlightRung::kSingleUser);
    for (int it = 0; it < policy.single_user_iterations; ++it) {
      const auto terms =
          core::fdc_terms(*alloc_, *profile_[churned], rates_, churned);
      if (std::isnan(terms.residual) ||
          std::abs(terms.residual) <= policy.relax.tolerance) {
        break;
      }
      if (terms.slope == 0.0 || !std::isfinite(terms.slope)) break;
      const double previous = rates_[churned];
      rates_[churned] = std::clamp(
          rates_[churned] - terms.residual / terms.slope, 1e-9, 0.9999);
      flight.iteration(std::abs(terms.residual),
                       std::abs(rates_[churned] - previous), 1.0, 0);
    }
  }

  // Rung 2: warm synchronous-Newton relaxation from the (possibly rung-1
  // improved) previous equilibrium.
  flight.rung(obs::FlightRung::kRelax);
  const auto relaxed =
      core::relax_equilibrium(*alloc_, profile_, rates_, policy.relax);
  outcome.relax_iterations = relaxed.iterations;
  outcome.max_residual = relaxed.max_residual;
  metrics.relax_iterations.observe(relaxed.iterations);
  if (relaxed.converged) {
    outcome.path = single && relaxed.iterations <= 1 ? RepairPath::kSingleUser
                                                     : RepairPath::kRelax;
    (outcome.path == RepairPath::kSingleUser ? metrics.single_user
                                             : metrics.relax)
        .inc();
    return outcome;
  }

  // Rung 3: dense Newton on the full FDC system. Densely-coupled games
  // (FIFO ties every user's congestion to the total load) defeat the
  // per-user sweep above, but the joint linearized step converges
  // quadratically from the still-warm point.
  metrics.escalations.inc();
  flight.escalation(obs::FlightRung::kNewton, relaxed.max_residual);
  const auto newton =
      core::newton_fdc(*alloc_, profile_, rates_, policy.newton);
  if (newton.converged) {
    outcome.path = RepairPath::kNewton;
    outcome.max_residual = newton.max_residual;
    metrics.newton.inc();
    return outcome;
  }

  // Rung 4: warm best-response solve from wherever Newton left us.
  flight.escalation(obs::FlightRung::kWarmSolve, newton.max_residual);
  const auto warm =
      core::solve_nash(*alloc_, profile_, rates_, policy.warm_solve);
  rates_ = warm.rates;
  if (warm.converged) {
    outcome.path = RepairPath::kWarmSolve;
    outcome.converged = true;
    metrics.warm_solve.inc();
    return outcome;
  }

  // Rung 5: the cold solve a from-scratch controller would run.
  flight.escalation(obs::FlightRung::kFullSolve,
                    std::numeric_limits<double>::quiet_NaN());
  const auto full =
      core::solve_nash(*alloc_, profile_, cold_start(), policy.full_solve);
  rates_ = full.rates;
  outcome.path = RepairPath::kFullSolve;
  outcome.converged = full.converged;
  metrics.full_solve.inc();
  return outcome;
}

// Classed ladder: the solver state is k class rates, so every rung is O(k)
// per sweep no matter how many users the classes represent. Count-only
// churn keeps the previous class rates as a warm start (the equilibrium
// moves smoothly in the counts); utility churn does too, since only the
// churned classes' best responses shift. The rungs: warm classed solve
// (narrowed candidate scan) -> cold classed solve, with the same bulk-churn
// gate as the expanded ladder measured against k.
RepairOutcome SolverShard::repair_classed(const RepairPolicy& policy) {
  RepairOutcome outcome;
  if (dirty_classes_.empty()) return outcome;
  outcome.users_churned = dirty_classes_.size();
  for (const std::size_t cls : dirty_classes_) {
    if (staged_count_[cls] != 0) {
      pop_.set_count(cls, staged_count_[cls]);
      staged_count_[cls] = 0;
    }
    if (staged_class_[cls] != nullptr) {
      profile_[cls] = std::move(staged_class_[cls]);
    }
    staged_class_flag_[cls] = 0;
  }
  dirty_classes_.clear();

  auto& metrics = repair_metrics();
  auto flight = obs::FlightRecorder::begin("ctrl.repair_classed", pop_.k(),
                                           obs::FlightRung::kNone);

  const bool bulk_churn =
      policy.mode == RepairMode::kFullResolve ||
      static_cast<double>(outcome.users_churned) >
          policy.full_solve_dirty_fraction * static_cast<double>(pop_.k());
  if (!bulk_churn) {
    flight.rung(obs::FlightRung::kWarmSolve);
    const auto warm = core::solve_nash_classed(*alloc_, profile_, pop_,
                                               policy.warm_solve);
    pop_ = warm.population;
    if (warm.converged) {
      outcome.path = RepairPath::kClassRepair;
      outcome.max_residual = warm.max_residual;
      metrics.warm_solve.inc();
      return outcome;
    }
    metrics.escalations.inc();
    flight.escalation(obs::FlightRung::kFullSolve, warm.max_residual);
  } else if (policy.mode == RepairMode::kFullResolve) {
    flight.rung(obs::FlightRung::kFullSolve);
  } else if (flight.armed()) {
    flight.event(obs::FlightEvent::kDirtyGate,
                 static_cast<double>(outcome.users_churned) /
                     static_cast<double>(pop_.k()));
    flight.escalation(obs::FlightRung::kFullSolve,
                      std::numeric_limits<double>::quiet_NaN());
  }

  // Cold classed solve from the canonical interior start.
  core::ClassedPopulation cold = pop_;
  const double per_user = 0.5 / static_cast<double>(cold.total_users());
  for (std::size_t a = 0; a < cold.k(); ++a) cold.set_rate(a, per_user);
  const auto full = core::solve_nash_classed(*alloc_, profile_,
                                             std::move(cold),
                                             policy.full_solve);
  pop_ = full.population;
  outcome.path = RepairPath::kFullSolve;
  outcome.converged = full.converged;
  outcome.max_residual = full.max_residual;
  metrics.full_solve.inc();
  return outcome;
}

}  // namespace gw::ctrl
