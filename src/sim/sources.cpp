#include "sim/sources.hpp"

#include <stdexcept>

namespace gw::sim {

PoissonSource::PoissonSource(Simulator& sim, Station& station,
                             std::size_t user, double rate, double mu,
                             std::uint64_t seed)
    : PoissonSource(sim, station, user, rate,
                    ServiceSpec::exponential(1.0 / mu), seed) {
  if (mu <= 0.0) throw std::invalid_argument("PoissonSource: mu must be > 0");
}

PoissonSource::PoissonSource(Simulator& sim, Station& station,
                             std::size_t user, double rate,
                             const ServiceSpec& service, std::uint64_t seed)
    : sim_(sim), station_(station), user_(user), rate_(rate),
      service_(service), rng_(seed) {
  if (rate_ > 0.0) schedule_next();
}

void PoissonSource::set_rate(double rate) {
  const bool was_silent = rate_ <= 0.0;
  rate_ = rate;
  if (pending_ != 0) {
    sim_.cancel(pending_);
    pending_ = 0;
  }
  if (rate_ > 0.0) {
    // Memorylessness makes redrawing the residual interarrival exact.
    schedule_next();
  } else if (!was_silent) {
    // silenced; nothing pending anymore
  }
}

void PoissonSource::schedule_next() {
  pending_ = sim_.schedule_in(rng_.exponential(rate_), [this] { emit(); });
}

void PoissonSource::emit() {
  pending_ = 0;
  Packet packet;
  packet.id = (static_cast<std::uint64_t>(user_) << 40) | emitted_;
  packet.user = user_;
  packet.arrival_time = sim_.now();
  packet.service_demand = service_.sample(rng_);
  packet.remaining = packet.service_demand;
  ++emitted_;
  station_.arrive(std::move(packet));
  if (rate_ > 0.0) schedule_next();
}

}  // namespace gw::sim
