// Build-time SIMD abstraction for the evaluation core.
//
// The vectorized kernels in src/core are written as plain scalar loops
// whose iterations are independent (elementwise fills, broadcast adds,
// row scatters); this header provides the three things that let the
// compiler turn them into vector code without changing their semantics:
//
//   * GW_SIMD_LOOP — `#pragma omp simd` when the build enables the vector
//     path (`-DGW_SIMD=ON`, the default; adds `-fopenmp-simd`, which
//     honors the pragma without any OpenMP runtime). Applied ONLY to
//     loops with no loop-carried dependence and no reductions, so
//     vectorization cannot reassociate floating-point operations: the
//     scalar (`-DGW_SIMD=OFF`) and vector builds execute the same
//     arithmetic per element and produce bit-identical results (see
//     DESIGN.md, "scalar/vector equivalence policy").
//   * aligned(p) — std::assume_aligned<kAlignment> on pointers into the
//     EvalWorkspace arena, so vector loads/stores need no peeling. A
//     no-op (plus a debug assert) on the scalar path.
//   * padded_stride(n) — the shared lane stride of the workspace arena:
//     n + 1 (the explicit slack for suffix-sum style uses that index one
//     past the end, see EvalWorkspace::padded) rounded up to a whole
//     64-byte line, so every lane of the structure-of-arrays slab starts
//     on its own cache line.
//
// Intrinsics are deliberately absent: every kernel in src/core reaches
// vector width through the pragma + alignment contract alone.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>

#ifndef GW_SIMD_ENABLED
#define GW_SIMD_ENABLED 1
#endif

#if GW_SIMD_ENABLED
#define GW_SIMD_LOOP _Pragma("omp simd")
#else
#define GW_SIMD_LOOP
#endif

namespace gw::core::simd {

/// Whether this build selected the vector path (GW_SIMD=ON).
inline constexpr bool kEnabled = GW_SIMD_ENABLED != 0;

/// Arena alignment: one x86 cache line, enough for any AVX-512 load.
inline constexpr std::size_t kAlignment = 64;

/// Doubles (and 64-bit indices) per aligned line.
inline constexpr std::size_t kLaneQuantum = kAlignment / sizeof(double);

/// Lane stride (in elements) backing a capacity-n workspace: at least
/// n + 1, rounded up to a multiple of kLaneQuantum.
[[nodiscard]] constexpr std::size_t padded_stride(std::size_t n) noexcept {
  return (n + 1 + kLaneQuantum - 1) / kLaneQuantum * kLaneQuantum;
}

/// True when p sits on a kAlignment boundary.
template <class T>
[[nodiscard]] inline bool is_aligned(const T* p) noexcept {
  return reinterpret_cast<std::uintptr_t>(p) % kAlignment == 0;
}

/// Asserts the arena alignment contract and, on the vector path, promises
/// it to the compiler. Use on pointers obtained from EvalWorkspace lanes;
/// caller-provided spans (rates, outputs) make no alignment promise.
template <class T>
[[nodiscard]] inline T* aligned(T* p) noexcept {
  assert(is_aligned(p));
#if GW_SIMD_ENABLED
  return std::assume_aligned<kAlignment>(p);
#else
  return p;
#endif
}

}  // namespace gw::core::simd
