#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/json.hpp"

namespace gw::obs {

// ------------------------------------------------------------- Histogram

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo),
      hi_(hi),
      bins_(bins),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (!(lo < hi) || bins == 0) {
    throw std::invalid_argument("obs::Histogram: bad range or zero bins");
  }
}

void Histogram::observe(double x) noexcept {
  if (std::isnan(x)) {
    // Casting NaN to an integer index is UB and NaN poisons sum_; drop the
    // observation but keep it visible via the rejected counter.
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(bins_.size());
  auto index = static_cast<std::ptrdiff_t>((x - lo_) / width);
  index = std::clamp<std::ptrdiff_t>(
      index, 0, static_cast<std::ptrdiff_t>(bins_.size()) - 1);
  bins_[static_cast<std::size_t>(index)].fetch_add(1,
                                                   std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + x,
                                     std::memory_order_relaxed)) {
  }
  double lo = min_.load(std::memory_order_relaxed);
  while (x < lo &&
         !min_.compare_exchange_weak(lo, x, std::memory_order_relaxed)) {
  }
  double hi = max_.load(std::memory_order_relaxed);
  while (x > hi &&
         !max_.compare_exchange_weak(hi, x, std::memory_order_relaxed)) {
  }
}

double Histogram::min() const noexcept {
  return count() == 0 ? std::numeric_limits<double>::quiet_NaN()
                      : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return count() == 0 ? std::numeric_limits<double>::quiet_NaN()
                      : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? std::numeric_limits<double>::quiet_NaN()
                : sum() / static_cast<double>(n);
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  const double width = (hi_ - lo_) / static_cast<double>(bins_.size());
  double cumulative = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const std::uint64_t in_bin = bin_count(i);
    if (in_bin == 0) continue;  // an empty bin can't hold the quantile
    cumulative += static_cast<double>(in_bin);
    if (cumulative >= target) {
      return lo_ + (static_cast<double>(i) + 0.5) * width;
    }
  }
  return hi_;
}

void Histogram::reset() noexcept {
  for (auto& bin : bins_) bin.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  rejected_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

// -------------------------------------------------------------- Registry

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name, double lo, double hi,
                               std::size_t bins) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(lo, hi, bins))
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramSample sample;
    sample.name = name;
    sample.lo = histogram->lo();
    sample.hi = histogram->hi();
    sample.count = histogram->count();
    sample.rejected = histogram->rejected();
    sample.sum = histogram->sum();
    sample.min = histogram->min();
    sample.max = histogram->max();
    sample.p50 = histogram->quantile(0.50);
    sample.p90 = histogram->quantile(0.90);
    sample.p99 = histogram->quantile(0.99);
    sample.buckets.resize(histogram->bins());
    for (std::size_t i = 0; i < histogram->bins(); ++i) {
      sample.buckets[i] = histogram->bin_count(i);
    }
    snap.histograms.push_back(std::move(sample));
  }
  return snap;
}

std::string Registry::to_json() const {
  const MetricsSnapshot snap = snapshot();
  JsonWriter w;
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& c : snap.counters) {
    w.key(c.name);
    w.value(c.value);
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& g : snap.gauges) {
    w.key(g.name);
    w.value(g.value);
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& h : snap.histograms) {
    w.key(h.name);
    w.begin_object();
    w.key("lo"); w.value(h.lo);
    w.key("hi"); w.value(h.hi);
    w.key("count"); w.value(h.count);
    w.key("rejected"); w.value(h.rejected);
    w.key("sum"); w.value(h.sum);
    w.key("min"); w.value(h.min);
    w.key("max"); w.value(h.max);
    w.key("p50"); w.value(h.p50);
    w.key("p90"); w.value(h.p90);
    w.key("p99"); w.value(h.p99);
    w.key("buckets");
    w.begin_array();
    for (const std::uint64_t b : h.buckets) w.value(b);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

std::string Registry::to_csv() const {
  const MetricsSnapshot snap = snapshot();
  std::string out = "type,name,value,count,sum,min,max,p50,p90,p99\n";
  auto number = [](double x) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", x);
    return std::string(buffer);
  };
  for (const auto& c : snap.counters) {
    out += "counter," + c.name + "," + std::to_string(c.value) + ",,,,,,,\n";
  }
  for (const auto& g : snap.gauges) {
    out += "gauge," + g.name + "," + number(g.value) + ",,,,,,,\n";
  }
  for (const auto& h : snap.histograms) {
    out += "histogram," + h.name + ",," + std::to_string(h.count) + "," +
           number(h.sum) + "," + number(h.min) + "," + number(h.max) + "," +
           number(h.p50) + "," + number(h.p90) + "," + number(h.p99) + "\n";
  }
  return out;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

Registry& default_registry() {
  static Registry registry;
  return registry;
}

}  // namespace gw::obs
