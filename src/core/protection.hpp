// Out-of-equilibrium protection (paper Section 4.3, Theorem 8).
//
// A discipline is *protective* when a user sending at rate r_i never sees
// more congestion than she would in a system of N clones of herself:
//   C_i(r) <= C_i(r_i * e) = r_i / (1 - N r_i).
// This is the strongest guarantee symmetry allows — the converse of the
// Golden Rule — and shields naive users from malicious ones.
#pragma once

#include <cstddef>
#include <vector>

#include "core/allocation.hpp"

namespace gw::core {

/// The symmetric protection bound r / (1 - N r); +infinity when N r >= 1.
[[nodiscard]] double protective_bound(double rate, std::size_t n) noexcept;

struct ProtectionScanOptions {
  int random_samples = 4000;
  unsigned seed = 99;
  double adversary_max_rate = 3.0;  ///< adversaries may flood far beyond capacity
};

struct ProtectionScanResult {
  double max_congestion = 0.0;       ///< worst C_i found over the scan
  std::vector<double> worst_rates;   ///< adversary profile achieving it
  double bound = 0.0;                ///< protective bound for (rate, n)
  /// Whether every scanned profile respected the bound (within slack).
  bool protective = false;
};

/// Adversarial scan: user `i` holds `rate`; the other N-1 users take
/// structured patterns (clones at the same rate, floods, staircases,
/// near-rate crowding — the FS worst case) plus random profiles. Returns
/// the worst congestion seen for user i and whether the protective bound
/// held throughout.
[[nodiscard]] ProtectionScanResult scan_protection(
    const AllocationFunction& alloc, std::size_t i, double rate, std::size_t n,
    const ProtectionScanOptions& options = {});

}  // namespace gw::core
