// gw-benchstat — consume gw.bench telemetry: merge per-binary runs into
// a suite document, and compare two runs benchstat-style.
//
//   gw-benchstat merge bench/out/*.json > BENCH_SUITE.json
//   gw-benchstat compare baseline.json candidate.json [--threshold pct]
//                [--per-unit] [--json out.json]
//
// `merge` aggregates bench JSON files (schema gw.bench.v1/v2/v3) into one
// gw.benchsuite.v1 document: per-bench wall-time samples, v3 normalized
// unit-cost samples (ns/user-evaluated and friends), registry
// counters/gauges/histogram quantiles, and the run manifest of the first
// input that carries one. `compare` accepts suite documents or single
// bench files on either side, prints a per-metric delta table (old, new,
// delta %, verdict), and exits 1 when any sample-backed metric regressed
// significantly (Mann-Whitney U, p < 0.05) beyond --threshold percent —
// the CI perf gate. By default only wall_ms gates; `--per-unit` promotes
// the normalized unit costs (ns_per_user_evaluated, instructions_per_user,
// cache_misses_per_jacobian_cell — all lower-better) to gate-eligible
// samples, which catches data-layout regressions that a shrinking workload
// would otherwise mask. Scalar metrics (counters, histogram quantiles,
// IPC) have no gate; they are reported as context. `compare` also warns —
// and flags in the JSON report — when the two manifests differ in threads,
// build type, or counter availability: normalized metrics make
// cross-config compares tempting and silently misleading.
// `compare --json <path>` additionally writes the full row set as a
// gw.benchcompare.v1 document for machine consumers (dashboards, bots).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/json_parse.hpp"
#include "obs/stats.hpp"

namespace {

using gw::obs::JsonValue;
using gw::obs::JsonWriter;

struct HistogramSummary {
  double count = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// One bench binary's contribution to a suite.
struct BenchRun {
  std::string name;
  double failures = 0.0;
  std::vector<double> wall_ms;  ///< per-rep samples; empty for v1 inputs
  /// Per-rep normalized unit costs from the v3 `derived` block
  /// (ns_per_user_evaluated, instructions_per_user, ...); empty for
  /// v1/v2 inputs.
  std::map<std::string, std::vector<double>> units;
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;
};

/// The manifest fields a compare must hold fixed for normalized metrics
/// to mean anything; parsed from the first manifest a suite carries.
struct ManifestFacts {
  bool any = false;  ///< a manifest with these fields was seen
  double threads = std::numeric_limits<double>::quiet_NaN();
  std::string build_type;
  std::string simd;   ///< "ON"/"OFF" GW_SIMD stamp; empty pre-field
  std::string march;  ///< -march= token parsed from cxx_flags; empty if none
  int counters_available = -1;  ///< -1 unknown (pre-v3), else 0/1
};

struct Suite {
  std::string manifest_raw;  ///< pre-rendered JSON object, may be empty
  ManifestFacts facts;
  std::map<std::string, BenchRun> benches;  ///< keyed by bench name
};

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "gw-benchstat: %s\n", message.c_str());
  std::exit(2);
}

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage:\n"
               "  gw-benchstat merge <bench.json>...              "
               "write a gw.benchsuite.v1 document to stdout\n"
               "  gw-benchstat compare <old.json> <new.json>\n"
               "               [--threshold <pct>] [--alpha <a>]   "
               "per-metric delta table; exit 1 on regression\n"
               "               [--per-unit]                        "
               "also gate normalized unit costs (ns/user-evaluated, ...)\n"
               "               [--json <path>]                     "
               "also write a gw.benchcompare.v1 document\n"
               "inputs may be gw.bench.v1/v2/v3 files or merged suites\n");
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) die("cannot read " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// Serializes a parsed JsonValue back to JSON text (used to carry the
/// manifest through merge verbatim-ish; key order is normalized).
void write_value(JsonWriter& w, const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull: w.raw("null"); break;
    case JsonValue::Kind::kBool: w.value(v.boolean); break;
    case JsonValue::Kind::kNumber: w.value(v.number); break;
    case JsonValue::Kind::kString: w.value(v.string); break;
    case JsonValue::Kind::kArray:
      w.begin_array();
      for (const auto& item : v.array) write_value(w, item);
      w.end_array();
      break;
    case JsonValue::Kind::kObject:
      w.begin_object();
      for (const auto& [key, item] : v.object) {
        w.key(key);
        write_value(w, item);
      }
      w.end_object();
      break;
  }
}

std::string render_value(const JsonValue& v) {
  JsonWriter w;
  write_value(w, v);
  return w.take();
}

double number_or(const JsonValue& object, const std::string& key,
                 double fallback) {
  if (!object.has(key) || !object.at(key).is_number()) return fallback;
  return object.at(key).number;
}

HistogramSummary parse_histogram(const JsonValue& h) {
  HistogramSummary s;
  s.count = number_or(h, "count", 0.0);
  const double count = s.count;
  const double sum = number_or(h, "sum", 0.0);
  s.mean = count > 0.0 ? sum / count : 0.0;
  s.p50 = number_or(h, "p50", 0.0);
  s.p90 = number_or(h, "p90", 0.0);
  s.p99 = number_or(h, "p99", 0.0);
  return s;
}

/// Records the compare-relevant manifest fields of the first manifest a
/// suite sees (matching the manifest_raw carry-through convention).
void absorb_manifest(Suite& suite, const JsonValue& manifest) {
  if (!manifest.is_object()) return;
  if (suite.manifest_raw.empty()) {
    suite.manifest_raw = render_value(manifest);
  }
  if (suite.facts.any) return;
  suite.facts.any = true;
  suite.facts.threads = number_or(manifest, "threads",
                                  std::numeric_limits<double>::quiet_NaN());
  if (manifest.has("build_type") && manifest.at("build_type").is_string()) {
    suite.facts.build_type = manifest.at("build_type").string;
  }
  if (manifest.has("simd") && manifest.at("simd").is_string()) {
    suite.facts.simd = manifest.at("simd").string;
  }
  if (manifest.has("cxx_flags") && manifest.at("cxx_flags").is_string()) {
    // The ISA baseline hides inside the flags string; a -march mismatch
    // skews per-unit costs exactly like a thread-count mismatch would.
    const std::string& flags = manifest.at("cxx_flags").string;
    const std::size_t at = flags.find("-march=");
    if (at != std::string::npos) {
      const std::size_t end = flags.find_first_of(" \t", at);
      suite.facts.march = flags.substr(
          at, (end == std::string::npos ? flags.size() : end) - at);
    }
  }
  if (manifest.has("counters_available") &&
      manifest.at("counters_available").kind == JsonValue::Kind::kBool) {
    suite.facts.counters_available =
        manifest.at("counters_available").boolean ? 1 : 0;
  }
}

/// Parses one gw.bench.v1/v2/v3 document into a BenchRun.
BenchRun parse_bench(const JsonValue& doc, Suite& suite) {
  BenchRun run;
  run.name = basename_of(doc.at("binary").string);
  run.failures = number_or(doc, "failures", 0.0);
  if (doc.has("manifest")) absorb_manifest(suite, doc.at("manifest"));
  if (doc.has("timing") && doc.at("timing").has("wall_ms")) {
    for (const auto& ms : doc.at("timing").at("wall_ms").array) {
      if (ms.is_number()) run.wall_ms.push_back(ms.number);
    }
  }
  if (doc.has("derived") && doc.at("derived").is_object()) {
    for (const auto& [name, samples] : doc.at("derived").object) {
      if (!samples.is_array()) continue;
      auto& unit = run.units[name];
      for (const auto& sample : samples.array) {
        if (sample.is_number()) unit.push_back(sample.number);
      }
    }
  }
  if (doc.has("metrics")) {
    const JsonValue& metrics = doc.at("metrics");
    if (metrics.has("counters")) {
      for (const auto& [name, value] : metrics.at("counters").object) {
        if (value.is_number()) run.counters[name] = value.number;
      }
    }
    if (metrics.has("gauges")) {
      for (const auto& [name, value] : metrics.at("gauges").object) {
        if (value.is_number()) run.gauges[name] = value.number;
      }
    }
    if (metrics.has("histograms")) {
      for (const auto& [name, h] : metrics.at("histograms").object) {
        run.histograms[name] = parse_histogram(h);
      }
    }
  }
  return run;
}

BenchRun parse_suite_bench(const JsonValue& entry) {
  BenchRun run;
  run.name = entry.at("name").string;
  run.failures = number_or(entry, "failures", 0.0);
  if (entry.has("wall_ms")) {
    for (const auto& ms : entry.at("wall_ms").array) {
      if (ms.is_number()) run.wall_ms.push_back(ms.number);
    }
  }
  if (entry.has("units") && entry.at("units").is_object()) {
    for (const auto& [name, samples] : entry.at("units").object) {
      if (!samples.is_array()) continue;
      auto& unit = run.units[name];
      for (const auto& sample : samples.array) {
        if (sample.is_number()) unit.push_back(sample.number);
      }
    }
  }
  if (entry.has("counters")) {
    for (const auto& [name, value] : entry.at("counters").object) {
      if (value.is_number()) run.counters[name] = value.number;
    }
  }
  if (entry.has("gauges")) {
    for (const auto& [name, value] : entry.at("gauges").object) {
      if (value.is_number()) run.gauges[name] = value.number;
    }
  }
  if (entry.has("histograms")) {
    for (const auto& [name, h] : entry.at("histograms").object) {
      run.histograms[name] = parse_histogram(h);
    }
  }
  return run;
}

void absorb(Suite& suite, BenchRun run) {
  auto [it, inserted] = suite.benches.emplace(run.name, std::move(run));
  if (inserted) return;
  // Same bench seen again (e.g. two suite runs merged): pool the wall-time
  // samples, keep the worst failure count and the latest metric values.
  BenchRun& existing = it->second;
  BenchRun& fresh = run;
  existing.failures = std::max(existing.failures, fresh.failures);
  existing.wall_ms.insert(existing.wall_ms.end(), fresh.wall_ms.begin(),
                          fresh.wall_ms.end());
  for (auto& [name, samples] : fresh.units) {
    auto& pooled = existing.units[name];
    pooled.insert(pooled.end(), samples.begin(), samples.end());
  }
  for (const auto& [name, value] : fresh.counters) {
    existing.counters[name] = value;
  }
  for (const auto& [name, value] : fresh.gauges) {
    existing.gauges[name] = value;
  }
  for (const auto& [name, value] : fresh.histograms) {
    existing.histograms[name] = value;
  }
}

/// Loads a bench or suite document into `suite`.
void load_into(Suite& suite, const std::string& path) {
  JsonValue doc;
  try {
    doc = gw::obs::parse_json(read_file(path));
  } catch (const std::exception& error) {
    die(path + ": " + error.what());
  }
  if (!doc.is_object() || !doc.has("schema")) {
    die(path + ": not a gw bench/suite document (no schema)");
  }
  const std::string& schema = doc.at("schema").string;
  if (schema == "gw.benchsuite.v1") {
    if (doc.has("manifest")) absorb_manifest(suite, doc.at("manifest"));
    for (const auto& entry : doc.at("benches").array) {
      absorb(suite, parse_suite_bench(entry));
    }
  } else if (schema == "gw.bench.v1" || schema == "gw.bench.v2" ||
             schema == "gw.bench.v3") {
    absorb(suite, parse_bench(doc, suite));
  } else {
    die(path + ": unsupported schema '" + schema + "'");
  }
}

std::string render_suite(const Suite& suite) {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value("gw.benchsuite.v1");
  w.key("generated_by");
  w.value("gw-benchstat");
  if (!suite.manifest_raw.empty()) {
    w.key("manifest");
    w.raw(suite.manifest_raw);
  }
  w.key("benches");
  w.begin_array();
  for (const auto& [name, run] : suite.benches) {
    w.begin_object();
    w.key("name");
    w.value(name);
    w.key("failures");
    w.value(run.failures);
    w.key("wall_ms");
    w.begin_array();
    for (const double ms : run.wall_ms) w.value(ms);
    w.end_array();
    const auto s = gw::obs::stats::summarize(run.wall_ms);
    w.key("wall_ms_stats");
    w.begin_object();
    w.key("n"); w.value(static_cast<std::uint64_t>(s.n));
    w.key("median"); w.value(s.median);
    w.key("mad"); w.value(s.mad);
    w.key("min"); w.value(s.min);
    w.key("max"); w.value(s.max);
    w.key("iqr"); w.value(s.iqr);
    w.key("outliers"); w.value(static_cast<std::uint64_t>(s.outliers));
    w.end_object();
    if (!run.units.empty()) {
      // v3 normalized unit costs; omitted (not emptied) for v1/v2 inputs
      // so pre-roofline readers see an unchanged document.
      w.key("units");
      w.begin_object();
      for (const auto& [unit, samples] : run.units) {
        w.key(unit);
        w.begin_array();
        for (const double sample : samples) w.value(sample);
        w.end_array();
      }
      w.end_object();
    }
    w.key("counters");
    w.begin_object();
    for (const auto& [metric, value] : run.counters) {
      w.key(metric);
      w.value(value);
    }
    w.end_object();
    w.key("gauges");
    w.begin_object();
    for (const auto& [metric, value] : run.gauges) {
      w.key(metric);
      w.value(value);
    }
    w.end_object();
    w.key("histograms");
    w.begin_object();
    for (const auto& [metric, h] : run.histograms) {
      w.key(metric);
      w.begin_object();
      w.key("count"); w.value(h.count);
      w.key("mean"); w.value(h.mean);
      w.key("p50"); w.value(h.p50);
      w.key("p90"); w.value(h.p90);
      w.key("p99"); w.value(h.p99);
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

int cmd_merge(const std::vector<std::string>& inputs) {
  if (inputs.empty()) {
    print_usage(stderr);
    return 2;
  }
  Suite suite;
  for (const auto& path : inputs) load_into(suite, path);
  const std::string document = render_suite(suite);
  std::fwrite(document.data(), 1, document.size(), stdout);
  std::fputc('\n', stdout);
  return 0;
}

// ---------------------------------------------------------------- compare

/// Flattened metric views of a suite for pairwise comparison.
struct MetricView {
  std::map<std::string, std::vector<double>> samples;  ///< gate-eligible
  std::map<std::string, double> scalars;               ///< context only
};

MetricView flatten(const Suite& suite, bool per_unit) {
  MetricView view;
  for (const auto& [bench, run] : suite.benches) {
    if (!run.wall_ms.empty()) {
      view.samples[bench + ".wall_ms"] = run.wall_ms;
    }
    for (const auto& [name, samples] : run.units) {
      if (samples.empty()) continue;
      // compare_samples is lower-is-better, which fits every unit cost
      // except IPC (a throughput); IPC stays context in either mode.
      if (per_unit && name != "ipc") {
        view.samples[bench + "." + name] = samples;
      } else {
        view.scalars[bench + "." + name + ".median"] =
            gw::obs::stats::median(samples);
      }
    }
    for (const auto& [name, value] : run.counters) {
      view.scalars[bench + "." + name] = value;
    }
    for (const auto& [name, value] : run.gauges) {
      view.scalars[bench + "." + name] = value;
    }
    for (const auto& [name, h] : run.histograms) {
      view.scalars[bench + "." + name + ".p50"] = h.p50;
      view.scalars[bench + "." + name + ".p99"] = h.p99;
    }
  }
  return view;
}

std::string fmt_ms(double x) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", x);
  return buffer;
}

std::string fmt_pct(double x) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%+.1f%%", x);
  return buffer;
}

/// One line of the compare table, kept for --json emission. Optional
/// numeric fields use NaN as "absent" and are omitted from the document.
struct CompareRow {
  std::string name;
  std::string kind;     ///< "samples" (gate-eligible) or "scalar" (context)
  std::string verdict;  ///< unchanged|regression|improvement|missing_in_new|
                        ///< new_metric|changed
  double old_value = std::numeric_limits<double>::quiet_NaN();
  double new_value = std::numeric_limits<double>::quiet_NaN();
  double delta_pct = std::numeric_limits<double>::quiet_NaN();
  double p_value = std::numeric_limits<double>::quiet_NaN();
};

std::string render_compare(const std::vector<CompareRow>& rows,
                           const std::vector<std::string>& regressions,
                           const std::vector<std::string>& manifest_warnings,
                           const std::string& old_path,
                           const std::string& new_path, double threshold_pct,
                           double alpha, bool per_unit) {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value("gw.benchcompare.v1");
  w.key("old");
  w.value(old_path);
  w.key("new");
  w.value(new_path);
  w.key("threshold_pct");
  w.value(threshold_pct);
  w.key("alpha");
  w.value(alpha);
  w.key("per_unit");
  w.value(per_unit);
  w.key("manifest_warnings");
  w.begin_array();
  for (const auto& warning : manifest_warnings) w.value(warning);
  w.end_array();
  w.key("metrics");
  w.begin_array();
  for (const auto& row : rows) {
    w.begin_object();
    w.key("name");
    w.value(row.name);
    w.key("kind");
    w.value(row.kind);
    w.key("verdict");
    w.value(row.verdict);
    if (std::isfinite(row.old_value)) {
      w.key("old");
      w.value(row.old_value);
    }
    if (std::isfinite(row.new_value)) {
      w.key("new");
      w.value(row.new_value);
    }
    if (std::isfinite(row.delta_pct)) {
      w.key("delta_pct");
      w.value(row.delta_pct);
    }
    if (std::isfinite(row.p_value)) {
      w.key("p_value");
      w.value(row.p_value);
    }
    w.end_object();
  }
  w.end_array();
  w.key("regressions");
  w.begin_array();
  for (const auto& metric : regressions) w.value(metric);
  w.end_array();
  w.key("gate");
  w.value(regressions.empty() ? "pass" : "fail");
  w.end_object();
  return w.take();
}

/// Differences between the two manifests that make normalized metrics
/// silently misleading; each becomes a printed warning and a
/// manifest_warnings entry in the JSON report.
std::vector<std::string> manifest_mismatches(const ManifestFacts& old_facts,
                                             const ManifestFacts& new_facts) {
  std::vector<std::string> warnings;
  if (!old_facts.any || !new_facts.any) return warnings;
  const bool both_threads = std::isfinite(old_facts.threads) &&
                            std::isfinite(new_facts.threads);
  if (both_threads && old_facts.threads != new_facts.threads) {
    char buffer[128];
    std::snprintf(buffer, sizeof(buffer),
                  "manifests differ: threads %g vs %g", old_facts.threads,
                  new_facts.threads);
    warnings.emplace_back(buffer);
  }
  if (!old_facts.build_type.empty() && !new_facts.build_type.empty() &&
      old_facts.build_type != new_facts.build_type) {
    warnings.push_back("manifests differ: build_type " +
                       old_facts.build_type + " vs " + new_facts.build_type);
  }
  if (!old_facts.simd.empty() && !new_facts.simd.empty() &&
      old_facts.simd != new_facts.simd) {
    warnings.push_back("manifests differ: GW_SIMD " + old_facts.simd +
                       " vs " + new_facts.simd);
  }
  if (!old_facts.march.empty() && !new_facts.march.empty() &&
      old_facts.march != new_facts.march) {
    warnings.push_back("manifests differ: " + old_facts.march + " vs " +
                       new_facts.march);
  }
  if (old_facts.counters_available >= 0 && new_facts.counters_available >= 0 &&
      old_facts.counters_available != new_facts.counters_available) {
    const auto describe = [](int available) {
      return available == 1 ? "hardware" : "degraded";
    };
    warnings.push_back(
        std::string("manifests differ: counter availability ") +
        describe(old_facts.counters_available) + " vs " +
        describe(new_facts.counters_available));
  }
  return warnings;
}

int cmd_compare(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  std::string json_path;
  double threshold_pct = 2.0;
  double alpha = 0.05;
  bool per_unit = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value_of = [&](const std::string& flag) -> std::string {
      if (i + 1 >= args.size()) die(flag + " requires a value");
      return args[++i];
    };
    if (arg == "--threshold") {
      threshold_pct = std::atof(value_of(arg).c_str());
    } else if (arg.rfind("--threshold=", 0) == 0) {
      threshold_pct = std::atof(arg.c_str() + std::strlen("--threshold="));
    } else if (arg == "--alpha") {
      alpha = std::atof(value_of(arg).c_str());
    } else if (arg.rfind("--alpha=", 0) == 0) {
      alpha = std::atof(arg.c_str() + std::strlen("--alpha="));
    } else if (arg == "--json") {
      json_path = value_of(arg);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(std::strlen("--json="));
    } else if (arg == "--per-unit") {
      per_unit = true;
    } else if (arg.rfind("--", 0) == 0) {
      die("unknown flag '" + arg + "'");
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) {
    print_usage(stderr);
    return 2;
  }

  Suite old_suite;
  Suite new_suite;
  load_into(old_suite, files[0]);
  load_into(new_suite, files[1]);
  const MetricView old_view = flatten(old_suite, per_unit);
  const MetricView new_view = flatten(new_suite, per_unit);

  const std::vector<std::string> manifest_warnings =
      manifest_mismatches(old_suite.facts, new_suite.facts);
  for (const auto& warning : manifest_warnings) {
    std::printf("WARNING: %s — normalized metrics are not comparable "
                "across configurations\n",
                warning.c_str());
  }
  if (!manifest_warnings.empty()) std::printf("\n");

  std::printf("%-44s %12s %12s %9s  %s\n", "metric", "old", "new", "delta",
              "verdict");
  std::printf("%s\n", std::string(92, '-').c_str());

  std::vector<std::string> regressions;
  std::vector<CompareRow> rows;
  int improvements = 0;

  // Sample-backed metrics: the statistical gate. Everything sample-backed
  // is lower-is-better (wall time, and with --per-unit the normalized
  // unit costs; IPC is kept scalar for exactly this reason).
  for (const auto& [metric, old_samples] : old_view.samples) {
    const auto found = new_view.samples.find(metric);
    if (found == new_view.samples.end()) {
      const double old_median = gw::obs::stats::median(old_samples);
      std::printf("%-44s %12s %12s %9s  %s\n", metric.c_str(),
                  fmt_ms(old_median).c_str(), "-", "-", "missing in new run");
      CompareRow& row = rows.emplace_back();
      row.name = metric;
      row.kind = "samples";
      row.verdict = "missing_in_new";
      row.old_value = old_median;
      continue;
    }
    const auto comparison = gw::obs::stats::compare_samples(
        old_samples, found->second, threshold_pct, alpha);
    CompareRow& row = rows.emplace_back();
    row.name = metric;
    row.kind = "samples";
    row.old_value = comparison.old_median;
    row.new_value = comparison.new_median;
    row.delta_pct = comparison.delta_pct;
    row.p_value = comparison.p_value;
    std::string verdict;
    if (!comparison.significant) {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "~ (p=%.3f, n=%zu+%zu)",
                    comparison.p_value, old_samples.size(),
                    found->second.size());
      verdict = buffer;
      row.verdict = "unchanged";
    } else if (comparison.delta_pct > 0.0) {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "REGRESSION (p=%.3f)",
                    comparison.p_value);
      verdict = buffer;
      row.verdict = "regression";
      regressions.push_back(metric);
    } else {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "improvement (p=%.3f)",
                    comparison.p_value);
      verdict = buffer;
      row.verdict = "improvement";
      ++improvements;
    }
    std::printf("%-44s %12s %12s %9s  %s\n", metric.c_str(),
                fmt_ms(comparison.old_median).c_str(),
                fmt_ms(comparison.new_median).c_str(),
                fmt_pct(comparison.delta_pct).c_str(), verdict.c_str());
  }
  for (const auto& [metric, new_samples] : new_view.samples) {
    if (old_view.samples.count(metric) == 0) {
      const double new_median = gw::obs::stats::median(new_samples);
      std::printf("%-44s %12s %12s %9s  %s\n", metric.c_str(), "-",
                  fmt_ms(new_median).c_str(), "-", "new metric");
      CompareRow& row = rows.emplace_back();
      row.name = metric;
      row.kind = "samples";
      row.verdict = "new_metric";
      row.new_value = new_median;
    }
  }

  // Scalar metrics: single values per run (counters, histogram quantiles);
  // informational only — shown when they moved beyond the threshold.
  int scalars_shown = 0;
  for (const auto& [metric, old_value] : old_view.scalars) {
    const auto found = new_view.scalars.find(metric);
    if (found == new_view.scalars.end()) continue;
    const double new_value = found->second;
    if (old_value == new_value) continue;
    const double delta_pct =
        old_value != 0.0
            ? (new_value - old_value) / std::abs(old_value) * 100.0
            : std::numeric_limits<double>::infinity();
    if (std::abs(delta_pct) < threshold_pct) continue;
    std::printf("%-44s %12.6g %12.6g %9s  %s\n", metric.c_str(), old_value,
                new_value, fmt_pct(delta_pct).c_str(), "info (no samples)");
    CompareRow& row = rows.emplace_back();
    row.name = metric;
    row.kind = "scalar";
    row.verdict = "changed";
    row.old_value = old_value;
    row.new_value = new_value;
    if (std::isfinite(delta_pct)) row.delta_pct = delta_pct;
    ++scalars_shown;
  }

  std::printf("\n%zu regression(s), %d improvement(s), %d scalar change(s) "
              "beyond %.1f%%\n",
              regressions.size(), improvements, scalars_shown,
              threshold_pct);
  for (const auto& metric : regressions) {
    std::printf("  REGRESSED: %s\n", metric.c_str());
  }

  if (!json_path.empty()) {
    const std::string document =
        render_compare(rows, regressions, manifest_warnings, files[0],
                       files[1], threshold_pct, alpha, per_unit);
    std::ofstream out(json_path);
    if (!out.good()) die("cannot write " + json_path);
    out << document << '\n';
  }
  return regressions.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty() || args[0] == "--help" || args[0] == "-h") {
    print_usage(args.empty() ? stderr : stdout);
    return args.empty() ? 2 : 0;
  }
  const std::string command = args[0];
  args.erase(args.begin());
  if (command == "merge") return cmd_merge(args);
  if (command == "compare") return cmd_compare(args);
  print_usage(stderr);
  die("unknown command '" + command + "'");
}
