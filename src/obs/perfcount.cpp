#include "obs/perfcount.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "obs/metrics.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#define GW_PERFCOUNT_LINUX 1
#else
#define GW_PERFCOUNT_LINUX 0
#endif

namespace gw::obs {

namespace {

#if GW_PERFCOUNT_LINUX

long perf_event_open(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                     unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

perf_event_attr base_attr(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 1;
  // Count user-space only: the kernel share is scheduler noise for a
  // roofline model of our own loops, and excluding it also works at
  // perf_event_paranoid=2 (the common unprivileged default).
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return attr;
}

const char* errno_name(int err) {
  switch (err) {
    case EACCES:
      return "EACCES";
    case EPERM:
      return "EPERM";
    case ENOENT:
      return "ENOENT";
    case ENODEV:
      return "ENODEV";
    case EOPNOTSUPP:
      return "EOPNOTSUPP";
    case ENOSYS:
      return "ENOSYS";
    case EINVAL:
      return "EINVAL";
    default:
      return "errno";
  }
}

std::string describe_open_failure(int err, int paranoid) {
  std::ostringstream out;
  out << "perf_event_open: " << errno_name(err);
  if (err == EACCES || err == EPERM) {
    out << " (perf_event_paranoid=" << paranoid
        << "; need <= 2, or CAP_PERFMON)";
  } else if (err == ENOENT || err == ENODEV || err == EOPNOTSUPP) {
    out << " (no hardware PMU — VM or container?)";
  } else if (err == ENOSYS) {
    out << " (kernel built without perf events)";
  } else {
    out << " (" << std::strerror(err) << ")";
  }
  return out.str();
}

// PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, value[nr].
struct GroupRead {
  std::uint64_t nr;
  std::uint64_t time_enabled;
  std::uint64_t time_running;
  std::uint64_t value[5];
};

#endif  // GW_PERFCOUNT_LINUX

}  // namespace

PerfCounterSession::PerfCounterSession(const PerfCounterOptions& options) {
  if (options.force_disable) {
    status_ = "disabled by caller";
    return;
  }
  open_counters();
}

PerfCounterSession::~PerfCounterSession() { close_counters(); }

void PerfCounterSession::open_counters() {
#if GW_PERFCOUNT_LINUX
  // Software task-clock first: it survives on PMU-less hosts and gives a
  // real on-CPU ns denominator even when the hardware group cannot open.
  {
    perf_event_attr attr =
        base_attr(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK);
    clock_fd_ = static_cast<int>(perf_event_open(&attr, 0, -1, -1, 0));
  }

  // Hardware group, cycles leading. Grouped reads keep the five counts
  // from the same PMU-residency windows, so derived ratios are coherent.
  perf_event_attr leader =
      base_attr(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
  leader.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
  group_fd_ = static_cast<int>(perf_event_open(&leader, 0, -1, -1, 0));
  if (group_fd_ < 0) {
    status_ = describe_open_failure(errno, paranoid_level());
    return;
  }

  static constexpr std::uint64_t kSiblings[] = {
      PERF_COUNT_HW_INSTRUCTIONS,
      PERF_COUNT_HW_CACHE_REFERENCES,
      PERF_COUNT_HW_CACHE_MISSES,
      PERF_COUNT_HW_BRANCH_MISSES,
  };
  for (std::size_t i = 0; i < sibling_fds_.size(); ++i) {
    perf_event_attr attr = base_attr(PERF_TYPE_HARDWARE, kSiblings[i]);
    sibling_fds_[i] =
        static_cast<int>(perf_event_open(&attr, 0, -1, group_fd_, 0));
    if (sibling_fds_[i] < 0) {
      // All five or nothing: a partial group would skew every ratio.
      status_ = describe_open_failure(errno, paranoid_level());
      const int clock_fd = clock_fd_;
      close_counters();
      clock_fd_ = clock_fd;  // keep the software clock alive
      return;
    }
  }
  status_ = "ok";
#else
  status_ = "perf_event_open unavailable (not Linux)";
#endif
}

void PerfCounterSession::close_counters() noexcept {
#if GW_PERFCOUNT_LINUX
  for (int& fd : sibling_fds_) {
    if (fd >= 0) close(fd);
    fd = -1;
  }
  if (group_fd_ >= 0) close(group_fd_);
  group_fd_ = -1;
  if (clock_fd_ >= 0) close(clock_fd_);
  clock_fd_ = -1;
#endif
}

void PerfCounterSession::start() noexcept {
#if GW_PERFCOUNT_LINUX
  if (group_fd_ >= 0) {
    ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  }
  if (clock_fd_ >= 0) {
    ioctl(clock_fd_, PERF_EVENT_IOC_RESET, 0);
    ioctl(clock_fd_, PERF_EVENT_IOC_ENABLE, 0);
  }
#endif
}

PerfCounts PerfCounterSession::stop() noexcept {
  PerfCounts counts;
#if GW_PERFCOUNT_LINUX
  if (group_fd_ >= 0) {
    ioctl(group_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
    GroupRead buf{};
    const ssize_t got = read(group_fd_, &buf, sizeof(buf));
    if (got >= static_cast<ssize_t>(3 * sizeof(std::uint64_t)) &&
        buf.nr == 5) {
      counts.hardware = true;
      counts.cycles = buf.value[0];
      counts.instructions = buf.value[1];
      counts.cache_references = buf.value[2];
      counts.cache_misses = buf.value[3];
      counts.branch_misses = buf.value[4];
      counts.time_enabled_ns = buf.time_enabled;
      counts.time_running_ns = buf.time_running;
      counts.scale = buf.time_running > 0
                         ? static_cast<double>(buf.time_enabled) /
                               static_cast<double>(buf.time_running)
                         : 1.0;
    }
  }
  if (clock_fd_ >= 0) {
    ioctl(clock_fd_, PERF_EVENT_IOC_DISABLE, 0);
    std::uint64_t ns = 0;
    if (read(clock_fd_, &ns, sizeof(ns)) == sizeof(ns)) {
      counts.software = true;
      counts.task_clock_ns = ns;  // task-clock counts in nanoseconds
    }
  }
#endif
  return counts;
}

int PerfCounterSession::paranoid_level() noexcept {
#if GW_PERFCOUNT_LINUX
  std::ifstream in("/proc/sys/kernel/perf_event_paranoid");
  int level = -1000;
  if (in >> level) return level;
#endif
  return -1000;
}

bool PerfCounterSession::probe(std::string* reason) {
  static std::once_flag once;
  static bool cached_ok = false;
  static std::string cached_reason;
  std::call_once(once, [] {
    PerfCounterSession session;
    cached_ok = session.available();
    cached_reason = session.status();
  });
  if (reason != nullptr) *reason = cached_reason;
  return cached_ok;
}

namespace work {

namespace detail {

thread_local Block* t_block = nullptr;

namespace {

struct BlockRegistry {
  std::mutex mu;
  // unique_ptr, not values: Block addresses must survive vector growth
  // because each owning thread caches its pointer for the process
  // lifetime. Blocks are never freed (threads may outlive the registry
  // scan; a handful of cache lines leak at exit by design).
  std::vector<std::unique_ptr<Block>> blocks;
};

BlockRegistry& block_registry() {
  static auto* registry = new BlockRegistry();
  return *registry;
}

}  // namespace

Block* register_thread() {
  if (t_block != nullptr) return t_block;
  auto& registry = block_registry();
  const std::lock_guard<std::mutex> lock(registry.mu);
  registry.blocks.push_back(std::make_unique<Block>());
  t_block = registry.blocks.back().get();
  return t_block;
}

}  // namespace detail

const char* kind_name(Kind kind) noexcept {
  switch (kind) {
    case Kind::kUsersEvaluated:
      return "users_evaluated";
    case Kind::kJacobianCells:
      return "jacobian_cells";
    case Kind::kBestResponseCalls:
      return "best_response_calls";
    case Kind::kGsSweeps:
      return "gs_sweeps";
    case Kind::kEventsProcessed:
      return "events_processed";
    case Kind::kUpdatesApplied:
      return "updates_applied";
  }
  return "unknown";
}

void set_armed(bool armed) noexcept {
  detail::g_armed.store(armed, std::memory_order_relaxed);
}

Totals collect() {
  Totals totals;
  auto& registry = detail::block_registry();
  const std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& block : registry.blocks) {
    for (std::size_t i = 0; i < kKindCount; ++i) {
      totals.counts[i] += block->counts[i].load(std::memory_order_relaxed);
    }
  }
  return totals;
}

void reset() {
  auto& registry = detail::block_registry();
  const std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& block : registry.blocks) {
    for (auto& cell : block->counts) {
      cell.store(0, std::memory_order_relaxed);
    }
  }
}

std::size_t registered_threads() {
  auto& registry = detail::block_registry();
  const std::lock_guard<std::mutex> lock(registry.mu);
  return registry.blocks.size();
}

}  // namespace work

void publish_work_totals(Registry& registry) {
  const work::Totals totals = work::collect();
  for (std::size_t i = 0; i < work::kKindCount; ++i) {
    if (totals.counts[i] == 0) continue;
    const auto kind = static_cast<work::Kind>(i);
    registry.counter(std::string("work.") + work::kind_name(kind))
        .inc(totals.counts[i]);
  }
}

}  // namespace gw::obs
