#include "numerics/optimize.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace gw::numerics {

namespace {

constexpr double kGolden = 0.6180339887498949;  // (sqrt(5)-1)/2

}  // namespace

Maximum1D golden_section_max(const std::function<double(double)>& f, double lo,
                             double hi, const Optimize1DOptions& options) {
  if (!(lo < hi)) throw std::invalid_argument("golden_section_max: lo >= hi");
  double a = lo, b = hi;
  double x1 = b - kGolden * (b - a);
  double x2 = a + kGolden * (b - a);
  double f1 = f(x1), f2 = f(x2);
  int evals = 2;
  while (b - a > options.x_tol && evals < options.max_iterations * 2) {
    if (f1 < f2) {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kGolden * (b - a);
      f2 = f(x2);
    } else {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kGolden * (b - a);
      f1 = f(x1);
    }
    ++evals;
  }
  const double x = (f1 > f2) ? x1 : x2;
  return {x, std::max(f1, f2), evals, b - a <= options.x_tol * 4};
}

Maximum1D brent_max(const std::function<double(double)>& f, double lo,
                    double hi, const Optimize1DOptions& options) {
  // Classic Brent minimization of -f.
  if (!(lo < hi)) throw std::invalid_argument("brent_max: lo >= hi");
  const double cgold = 1.0 - kGolden;
  double a = lo, b = hi;
  double x = a + cgold * (b - a);
  double w = x, v = x;
  double fx = -f(x), fw = fx, fv = fx;
  double d = 0.0, e = 0.0;
  int evals = 1;
  for (int it = 0; it < options.max_iterations; ++it) {
    const double xm = 0.5 * (a + b);
    const double tol1 = options.x_tol * std::abs(x) + 1e-15;
    const double tol2 = 2.0 * tol1;
    if (std::abs(x - xm) <= tol2 - 0.5 * (b - a)) {
      return {x, -fx, evals, true};
    }
    bool parabolic_ok = false;
    if (std::abs(e) > tol1) {
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::abs(q);
      const double etemp = e;
      e = d;
      if (std::abs(p) < std::abs(0.5 * q * etemp) && p > q * (a - x) &&
          p < q * (b - x)) {
        parabolic_ok = true;
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2) d = (xm >= x) ? tol1 : -tol1;
      }
    }
    if (!parabolic_ok) {
      e = (x >= xm) ? a - x : b - x;
      d = cgold * e;
    }
    const double u = (std::abs(d) >= tol1) ? x + d
                                           : x + (d >= 0.0 ? tol1 : -tol1);
    const double fu = -f(u);
    ++evals;
    if (fu <= fx) {
      if (u >= x) a = x; else b = x;
      v = w; fv = fw;
      w = x; fw = fx;
      x = u; fx = fu;
    } else {
      if (u < x) a = u; else b = u;
      if (fu <= fw || w == x) {
        v = w; fv = fw;
        w = u; fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u; fv = fu;
      }
    }
  }
  return {x, -fx, evals, false};
}

Maximum1D maximize_scan(const std::function<double(double)>& f, double lo,
                        double hi, const Optimize1DOptions& options) {
  if (!(lo < hi)) throw std::invalid_argument("maximize_scan: lo >= hi");
  const int n = std::max(options.scan_points, 3);
  double best_x = lo;
  double best_value = -std::numeric_limits<double>::infinity();
  int best_index = 0;
  for (int i = 0; i < n; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / (n - 1);
    const double value = f(x);
    if (value > best_value) {
      best_value = value;
      best_x = x;
      best_index = i;
    }
  }
  if (!std::isfinite(best_value)) {
    // Entire interval infeasible; report the left edge.
    return {best_x, best_value, n, false};
  }
  const double step = (hi - lo) / (n - 1);
  const double rlo = std::max(lo, lo + (best_index - 1) * step);
  const double rhi = std::min(hi, lo + (best_index + 1) * step);
  Maximum1D refined = brent_max(f, rlo, rhi, options);
  refined.evaluations += n;
  if (refined.value < best_value) {
    refined.x = best_x;
    refined.value = best_value;
  }
  return refined;
}

MaximumND nelder_mead_max(
    const std::function<double(const std::vector<double>&)>& f,
    const std::vector<double>& start, const NelderMeadOptions& options) {
  const std::size_t n = start.size();
  if (n == 0) throw std::invalid_argument("nelder_mead_max: empty start");

  // Build initial simplex.
  std::vector<std::vector<double>> simplex(n + 1, start);
  for (std::size_t i = 0; i < n; ++i) {
    simplex[i + 1][i] +=
        (start[i] != 0.0) ? options.initial_step * std::abs(start[i])
                          : options.initial_step;
  }
  std::vector<double> values(n + 1);
  int evals = 0;
  for (std::size_t i = 0; i <= n; ++i) {
    values[i] = f(simplex[i]);
    ++evals;
  }

  auto order = [&] {
    std::vector<std::size_t> index(n + 1);
    std::iota(index.begin(), index.end(), std::size_t{0});
    std::sort(index.begin(), index.end(),
              [&](std::size_t a, std::size_t b) { return values[a] > values[b]; });
    std::vector<std::vector<double>> new_simplex(n + 1);
    std::vector<double> new_values(n + 1);
    for (std::size_t i = 0; i <= n; ++i) {
      new_simplex[i] = simplex[index[i]];
      new_values[i] = values[index[i]];
    }
    simplex = std::move(new_simplex);
    values = std::move(new_values);
  };

  auto centroid_excluding_worst = [&] {
    std::vector<double> c(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < n; ++k) c[k] += simplex[i][k];
    }
    for (auto& coordinate : c) coordinate /= static_cast<double>(n);
    return c;
  };

  auto blend = [&](const std::vector<double>& c, const std::vector<double>& p,
                   double t) {
    std::vector<double> out(n);
    for (std::size_t k = 0; k < n; ++k) out[k] = c[k] + t * (c[k] - p[k]);
    return out;
  };

  while (evals < options.max_evaluations) {
    order();
    const double finite_best = values[0];
    const double finite_worst = values[n];
    if (std::isfinite(finite_best) && std::isfinite(finite_worst) &&
        finite_best - finite_worst <= options.f_tol) {
      return {simplex[0], values[0], evals, true};
    }
    const auto c = centroid_excluding_worst();
    const auto reflected = blend(c, simplex[n], 1.0);
    const double fr = f(reflected);
    ++evals;
    if (fr > values[0]) {
      const auto expanded = blend(c, simplex[n], 2.0);
      const double fe = f(expanded);
      ++evals;
      if (fe > fr) {
        simplex[n] = expanded;
        values[n] = fe;
      } else {
        simplex[n] = reflected;
        values[n] = fr;
      }
    } else if (fr > values[n - 1]) {
      simplex[n] = reflected;
      values[n] = fr;
    } else {
      const auto contracted = blend(c, simplex[n], -0.5);
      const double fc = f(contracted);
      ++evals;
      if (fc > values[n]) {
        simplex[n] = contracted;
        values[n] = fc;
      } else {
        // Shrink toward best.
        for (std::size_t i = 1; i <= n; ++i) {
          for (std::size_t k = 0; k < n; ++k) {
            simplex[i][k] = simplex[0][k] + 0.5 * (simplex[i][k] - simplex[0][k]);
          }
          values[i] = f(simplex[i]);
          ++evals;
        }
      }
    }
  }
  order();
  return {simplex[0], values[0], evals, false};
}

}  // namespace gw::numerics
