// E-CHURN: streaming control plane under rate churn.
//
// Claim under test: warm-started incremental equilibrium repair (gw::ctrl
// repair ladder — rank-1 refresh, Theorem 7 relaxation, warm solve) sustains
// at least 10x the update throughput of the naive controller that cold
// re-solves every dirty shard, while serving allocations that agree with a
// from-scratch solve to solver tolerance; steady-state staleness of the
// served allocation is reported alongside.
//
// Scenarios: {Fair Share, FIFO/proportional, general serial M/G/1} x
// {Poisson background churn, adversarial bursts}. Updates stream through a
// sharded gw::ctrl::Controller (dirty shards repaired over the --threads
// pool); the staleness phase replays the same stream in virtual time with
// arrivals at half the measured repair capacity.
//
// Bench-specific knobs ride the --churn passthrough prefix:
//   --churn_users=N    total users (default 512)
//   --churn_shard=S    users per shard (default 64)
//   --churn_updates=M  updates in the incremental phases (default 1536;
//                      burst phases cap at 8 whole bursts of S updates)
//   --churn_naive=M    updates in the Poisson naive baseline phase
//                      (default 48; the burst baseline always processes 2
//                      whole bursts so both controllers solve identical
//                      whole-shard games)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/fair_share.hpp"
#include "core/gfunction.hpp"
#include "core/nash.hpp"
#include "core/proportional.hpp"
#include "core/serial_general.hpp"
#include "ctrl/controller.hpp"
#include "exec/thread_pool.hpp"

namespace {

using gw::core::AllocationFunction;
using gw::core::make_linear;
using gw::ctrl::BurstChurn;
using gw::ctrl::BurstChurnOptions;
using gw::ctrl::Controller;
using gw::ctrl::ControllerConfig;
using gw::ctrl::PoissonChurn;
using gw::ctrl::PoissonChurnOptions;
using gw::ctrl::RateUpdate;
using gw::ctrl::RepairMode;
using gw::ctrl::RepairPolicy;
using gw::ctrl::SolverShard;

struct ChurnParams {
  std::size_t users = 512;
  std::size_t shard = 64;
  std::size_t updates = 1536;
  std::size_t naive_updates = 48;
  std::size_t batch = 32;
};

ChurnParams parse_params() {
  ChurnParams params;
  auto value_of = [](const std::string& arg) -> long {
    const auto eq = arg.find('=');
    if (eq == std::string::npos) return -1;
    return std::strtol(arg.c_str() + eq + 1, nullptr, 10);
  };
  for (const auto& arg : gw::bench::passthrough_args()) {
    const long v = value_of(arg);
    if (v <= 0) continue;
    if (arg.rfind("--churn_users", 0) == 0) {
      params.users = static_cast<std::size_t>(v);
    } else if (arg.rfind("--churn_shard", 0) == 0) {
      params.shard = static_cast<std::size_t>(v);
    } else if (arg.rfind("--churn_updates", 0) == 0) {
      params.updates = static_cast<std::size_t>(v);
    } else if (arg.rfind("--churn_naive", 0) == 0) {
      params.naive_updates = static_cast<std::size_t>(v);
    }
  }
  params.shard = std::min(params.shard, params.users);
  return params;
}

/// Heterogeneous delay-aversions; same spread the churn draws from.
gw::core::UtilityProfile initial_profile(std::size_t n, std::size_t offset) {
  gw::core::UtilityProfile profile;
  for (std::size_t i = 0; i < n; ++i) {
    const double phase =
        static_cast<double>((offset + i) % 17) / 16.0;  // deterministic mix
    profile.push_back(make_linear(1.0, 0.3 + 0.55 * phase));
  }
  return profile;
}

/// The bench's repair policy: ladder defaults, except a raised full-solve
/// sweep budget. Whole-shard burst profiles interleave two identical gamma
/// classes, whose symmetric slow modes push Gauss-Seidel to ~900 sweeps at
/// 64 users under Fair Share — well past the 400-sweep default. The raise
/// applies to the incremental and naive controllers and to the consistency
/// oracle alike, so the comparison stays update-for-update fair.
RepairPolicy bench_policy(RepairMode mode) {
  RepairPolicy policy;
  policy.mode = mode;
  policy.full_solve.max_iterations = 2000;
  return policy;
}

Controller build_controller(
    const std::shared_ptr<const AllocationFunction>& alloc,
    const ChurnParams& params, RepairMode mode) {
  std::vector<SolverShard> shards;
  for (std::size_t base = 0; base < params.users; base += params.shard) {
    const std::size_t n = std::min(params.shard, params.users - base);
    shards.emplace_back(alloc, initial_profile(n, base));
  }
  ControllerConfig config;
  config.policy = bench_policy(mode);
  return Controller(std::move(shards), config);
}

/// One pre-generated churn stream (deterministic per seed).
std::vector<RateUpdate> make_stream(const std::string& kind,
                                    std::size_t users, std::size_t shard,
                                    std::size_t count, std::uint64_t seed) {
  std::vector<RateUpdate> stream;
  stream.reserve(count);
  if (kind == "poisson") {
    PoissonChurn churn(users, PoissonChurnOptions{}, seed);
    for (std::size_t i = 0; i < count; ++i) stream.push_back(churn.next());
  } else {
    BurstChurnOptions options;
    options.block_size = shard;    // each burst concentrates on one shard
    options.burst_length = shard;  // ...and flips every user in it
    BurstChurn churn(users, options, seed);
    for (std::size_t i = 0; i < count; ++i) stream.push_back(churn.next());
  }
  return stream;
}

struct ThroughputResult {
  double updates_per_second = 0.0;
  std::size_t full_solves = 0;     ///< escalations to rung 4 (or naive solves)
  std::size_t batches = 0;
  bool all_converged = true;
};

/// Feeds `stream` through `ctrl` in fixed-size batches, wall-timing the
/// apply loop. The same batch boundaries are used for every mode, so the
/// incremental/naive comparison is update-for-update.
ThroughputResult run_throughput(Controller& ctrl,
                                const std::vector<RateUpdate>& stream,
                                std::size_t batch_size,
                                gw::exec::ThreadPool& pool) {
  ThroughputResult result;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < stream.size(); i += batch_size) {
    const std::size_t end = std::min(i + batch_size, stream.size());
    ctrl.submit(std::span<const RateUpdate>(stream.data() + i, end - i));
    const auto report = ctrl.apply_pending(&pool);
    result.full_solves += report.full_solve;
    result.all_converged = result.all_converged && report.all_converged;
    ++result.batches;
  }
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  result.updates_per_second =
      seconds > 0.0 ? static_cast<double>(stream.size()) / seconds : 0.0;
  return result;
}

struct StalenessResult {
  double mean_ms = 0.0;
  double max_ms = 0.0;
  bool drained = false;
};

/// Virtual-time closed loop: arrivals are rescaled to `arrival_rate`
/// updates/sec; the controller applies whatever has arrived, the clock
/// advances by the measured batch latency, and each update's staleness is
/// the virtual time from its arrival to the epoch that first reflects it.
StalenessResult run_staleness(Controller& ctrl,
                              std::vector<RateUpdate> stream,
                              double arrival_rate,
                              gw::exec::ThreadPool& pool) {
  StalenessResult result;
  if (stream.empty() || arrival_rate <= 0.0) return result;
  // Rescale the stream's timestamps to the target arrival rate, keeping
  // the relative pattern (bursts stay bursts).
  const double span = stream.back().arrival_time;
  const double target_span =
      static_cast<double>(stream.size()) / arrival_rate;
  const double scale = span > 0.0 ? target_span / span : 0.0;
  for (auto& update : stream) update.arrival_time *= scale;

  double clock = 0.0;
  double sum_ms = 0.0;
  std::size_t served = 0;
  std::size_t next = 0;
  while (next < stream.size()) {
    if (stream[next].arrival_time > clock) {
      clock = stream[next].arrival_time;  // idle until the next arrival
    }
    const std::size_t first = next;
    while (next < stream.size() && stream[next].arrival_time <= clock) {
      ctrl.submit(stream[next]);
      ++next;
    }
    const auto report = ctrl.apply_pending(&pool);
    clock += report.wall_seconds;
    for (std::size_t i = first; i < next; ++i) {
      const double staleness_ms =
          (clock - stream[i].arrival_time) * 1e3;
      sum_ms += staleness_ms;
      result.max_ms = std::max(result.max_ms, staleness_ms);
      ++served;
    }
  }
  result.mean_ms = served > 0 ? sum_ms / static_cast<double>(served) : 0.0;
  result.drained = ctrl.pending() == 0;
  return result;
}

/// Max |served - cold oracle| over every shard of the controller. The
/// oracle runs with the bench's raised sweep budget so it is itself
/// converged on the hard burst profiles.
double consistency_error(const Controller& ctrl) {
  const auto oracle_options = bench_policy(RepairMode::kIncremental).full_solve;
  double worst = 0.0;
  for (std::size_t k = 0; k < ctrl.shard_count(); ++k) {
    const auto oracle = ctrl.shard(k).cold_solve(oracle_options);
    const auto& served = ctrl.shard(k).rates();
    for (std::size_t i = 0; i < served.size(); ++i) {
      worst = std::max(worst, std::abs(served[i] - oracle[i]));
    }
  }
  return worst;
}

int run() {
  const ChurnParams params = parse_params();
  gw::exec::ThreadPool pool(gw::bench::thread_count());

  gw::bench::banner(
      "E-CHURN", "gw::ctrl / Theorem 7",
      "Incremental equilibrium repair sustains >=10x the update throughput "
      "of naive full re-solves under Poisson churn and degrades gracefully "
      "to naive cost under adversarial whole-shard bursts, consistent with "
      "cold solves to solver tolerance; served-allocation staleness at "
      "steady state reported.");

  struct DisciplineSpec {
    std::string label;
    std::shared_ptr<const AllocationFunction> alloc;
  };
  const std::vector<DisciplineSpec> disciplines = {
      {"fs", std::make_shared<gw::core::FairShareAllocation>()},
      {"fifo", std::make_shared<gw::core::ProportionalAllocation>()},
      {"serial-mg1", std::make_shared<gw::core::GeneralSerialAllocation>(
                         gw::core::GFunction::mg1(1.0))},
  };
  const std::vector<std::string> churn_kinds = {"poisson", "burst"};

  gw::bench::table_header({"discipline", "churn", "users", "inc up/s",
                           "naive up/s", "ratio", "full%", "stale ms",
                           "max|d|"});

  bool poisson_ratio_ok = true;
  bool burst_ratio_ok = true;
  bool all_consistent = true;
  bool all_drained = true;
  bool all_converged = true;
  double worst_poisson_ratio = std::numeric_limits<double>::infinity();
  double worst_burst_ratio = std::numeric_limits<double>::infinity();
  double worst_error = 0.0;

  std::uint64_t seed = 40;
  for (const auto& discipline : disciplines) {
    for (const auto& kind : churn_kinds) {
      ++seed;
      // Poisson batches model the steady drain cadence; burst batches align
      // with whole bursts so both controllers face identical shard-sized
      // dirty sets per apply. Burst phases are capped at 8 bursts — every
      // burst costs one whole-shard cold solve (~900 sweeps on the hard
      // profiles), so more bursts only repeat the same measurement — and
      // the naive burst baseline processes 2 whole bursts so it solves the
      // very same whole-shard games the incremental controller does.
      const std::size_t batch =
          kind == "burst" ? params.shard : params.batch;
      const std::size_t inc_count =
          kind == "burst" ? std::min(params.updates, 8 * params.shard)
                          : params.updates;
      const std::size_t naive_count =
          kind == "burst" ? std::min(inc_count, 2 * params.shard)
                          : params.naive_updates;
      const auto stream = make_stream(kind, params.users, params.shard,
                                      inc_count, seed);
      const auto naive_stream = std::vector<RateUpdate>(
          stream.begin(),
          stream.begin() + static_cast<std::ptrdiff_t>(std::min(
                               naive_count, stream.size())));

      // Incremental throughput.
      Controller inc = build_controller(discipline.alloc, params,
                                        RepairMode::kIncremental);
      const auto inc_result = run_throughput(inc, stream, batch, pool);
      const double error = consistency_error(inc);

      // Naive baseline: identical controller, cold re-solve per dirty
      // shard, same batch boundaries, prefix of the same stream.
      Controller naive = build_controller(discipline.alloc, params,
                                          RepairMode::kFullResolve);
      const auto naive_result =
          run_throughput(naive, naive_stream, batch, pool);

      // Staleness at half the measured incremental capacity.
      Controller stale_ctrl = build_controller(discipline.alloc, params,
                                               RepairMode::kIncremental);
      const auto staleness = run_staleness(
          stale_ctrl, stream, 0.5 * inc_result.updates_per_second, pool);

      const double ratio =
          naive_result.updates_per_second > 0.0
              ? inc_result.updates_per_second / naive_result.updates_per_second
              : 0.0;
      const double full_pct =
          100.0 * static_cast<double>(inc_result.full_solves) /
          static_cast<double>(inc_result.batches);

      gw::bench::table_row(
          {discipline.label, kind, std::to_string(params.users),
           gw::bench::fmt(inc_result.updates_per_second, 0),
           gw::bench::fmt(naive_result.updates_per_second, 0),
           gw::bench::fmt(ratio, 1), gw::bench::fmt(full_pct, 1),
           gw::bench::fmt(staleness.mean_ms, 3),
           gw::bench::fmt(error, 7)});

      if (kind == "poisson") {
        worst_poisson_ratio = std::min(worst_poisson_ratio, ratio);
        poisson_ratio_ok = poisson_ratio_ok && ratio >= 10.0;
      } else {
        worst_burst_ratio = std::min(worst_burst_ratio, ratio);
        burst_ratio_ok = burst_ratio_ok && ratio >= 0.5;
      }
      worst_error = std::max(worst_error, error);
      all_consistent = all_consistent && error <= 1e-4;
      all_drained = all_drained && staleness.drained;
      all_converged = all_converged && inc_result.all_converged &&
                      naive_result.all_converged;
    }
  }

  gw::bench::verdict(
      poisson_ratio_ok,
      "incremental repair >= 10x naive full re-solve throughput under "
      "Poisson churn (worst ratio " +
          gw::bench::fmt(worst_poisson_ratio, 1) + "x at N=" +
          std::to_string(params.users) + ")");
  gw::bench::verdict(
      burst_ratio_ok,
      "adversarial bursts degrade to naive cost, never below half of it "
      "(worst ratio " +
          gw::bench::fmt(worst_burst_ratio, 1) + "x)");
  gw::bench::verdict(
      all_consistent,
      "served allocations match cold full solves within solver tolerance "
      "(worst max|d| " +
          gw::bench::fmt(worst_error, 7) + " <= 1e-4)");
  gw::bench::verdict(all_drained,
                     "staleness loop drains its backlog at half capacity "
                     "(steady state exists)");
  gw::bench::verdict(all_converged,
                     "every batch converged (no unconverged repair served)");
  return gw::bench::failures();
}

}  // namespace

int main(int argc, char** argv) {
  return gw::bench::run_repeated(argc, argv, run, "--churn");
}
