// E-GEN — footnote 5 + Corollary 2: how the results depend on the SHAPE
// of the aggregate constraint g.
//
// * M/G/1 constraints (any service variability): the serial rule keeps
//   uniqueness, envy-freeness and the protective bound g(N r)/N; the
//   proportional rule keeps failing them — the paper's dichotomy is about
//   the sharing rule, not the exponential server.
// * Separable constraints (Corollary 2): Nash equilibria become Pareto
//   optimal — the Theorem 1 impossibility is a property of coupled
//   constraints like M/M/1, not of selfishness.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/coalition.hpp"
#include "core/corollary2.hpp"
#include "core/envy.hpp"
#include "core/nash.hpp"
#include "core/serial_general.hpp"
#include "numerics/rng.hpp"
#include "queueing/mg1.hpp"
#include "sim/runner.hpp"

static int run() {
  using namespace gw;
  using core::make_linear;
  bench::banner(
      "E-GEN general_constraint", "Footnote 5; Corollary 2",
      "All theorems survive replacing the M/M/1 curve with any strictly "
      "increasing strictly convex g (M/G/1 at any service variability); "
      "and with separable constraints, Nash equilibria turn Pareto "
      "optimal (Corollary 2).");

  std::printf("\nServing-variability sweep (serial vs proportional rule; "
              "3 heterogeneous users):\n\n");
  bench::table_header({"constraint", "rule", "Nash eq", "max envy",
                       "protective"});
  const core::UtilityProfile profile{make_linear(1.0, 0.2),
                                     make_linear(1.0, 0.4),
                                     make_linear(1.0, 0.6)};
  bool serial_all_good = true;
  for (const double scv : {0.0, 1.0, 4.0}) {
    const auto g = core::GFunction::mg1(scv);
    const core::GeneralSerialAllocation serial(g);
    const core::GeneralProportionalAllocation proportional(g);

    for (int which = 0; which < 2; ++which) {
      const core::AllocationFunction& alloc =
          which == 0 ? static_cast<const core::AllocationFunction&>(serial)
                     : static_cast<const core::AllocationFunction&>(
                           proportional);
      const auto equilibria = core::find_equilibria(alloc, profile, 8, 3);
      // Envy after unilateral optimization over random opponents.
      numerics::Rng rng(11);
      double worst_envy = 0.0;
      for (int trial = 0; trial < 60; ++trial) {
        std::vector<double> rates(3);
        for (auto& r : rates) r = rng.uniform(0.02, 0.6);
        const auto envy =
            core::unilateral_envy(alloc, profile, rates, trial % 3);
        worst_envy = std::max(worst_envy, envy.max_envy);
      }
      // Protection: fixed light user vs flooding adversaries.
      const double bound = serial.protective_bound(0.1, 3);
      double worst_congestion = 0.0;
      for (int trial = 0; trial < 200; ++trial) {
        std::vector<double> rates{0.1, rng.uniform(0.0, 2.0),
                                  rng.uniform(0.0, 2.0)};
        worst_congestion =
            std::max(worst_congestion, alloc.congestion(rates)[0]);
      }
      const bool protective = worst_congestion <= bound + 1e-9;
      if (which == 0 &&
          (equilibria.size() != 1 || worst_envy > 1e-6 || !protective)) {
        serial_all_good = false;
      }
      bench::table_row({"M/G/1 scv=" + bench::fmt(scv, 1),
                        which == 0 ? "serial" : "proportional",
                        std::to_string(equilibria.size()),
                        bench::fmt(worst_envy, 5),
                        protective ? "yes" : "NO"});
    }
  }
  bench::verdict(serial_all_good,
                 "serial rule keeps uniqueness/envy-freeness/protection "
                 "for every service variability");

  // Corollary 2: separable quadratic constraint.
  std::printf("\nCorollary 2 — separable constraint sum c = sum r^2, "
              "allocation C_i = r_i^2:\n\n");
  const core::QuadraticSeparableAllocation separable;
  const core::UtilityProfile quad_profile{make_linear(1.0, 0.8),
                                          make_linear(1.0, 1.25),
                                          make_linear(1.0, 2.0)};
  const auto nash =
      core::solve_nash(separable, quad_profile, {0.2, 0.2, 0.2});
  const auto queues = separable.congestion(nash.rates);
  const auto residuals =
      core::quadratic_pareto_residuals(quad_profile, nash.rates, queues);
  bench::table_header({"user", "Nash rate", "1/(2 gamma)", "ParetoFDC"});
  const double gammas[] = {0.8, 1.25, 2.0};
  double worst_residual = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    worst_residual = std::max(worst_residual, std::abs(residuals[i]));
    bench::table_row({std::to_string(i + 1), bench::fmt(nash.rates[i]),
                      bench::fmt(1.0 / (2.0 * gammas[i])),
                      bench::fmt(residuals[i], 6)});
  }
  bench::verdict(nash.converged && worst_residual < 1e-3,
                 "separable constraint: every Nash equilibrium is Pareto "
                 "optimal (Corollary 2)");

  // Empirical M/G/1: the aggregate constraint curve itself, measured in
  // packets under FIFO at a sweep of loads and service variabilities.
  std::printf("\nMeasured aggregate queue vs the P-K constraint g(x; scv) "
              "(FIFO, packets):\n\n");
  bench::table_header({"scv", "load", "g analytic", "g measured", "rel.err"});
  bool constraint_matches = true;
  for (const double scv : {0.0, 4.0}) {
    for (const double load : {0.3, 0.6, 0.8}) {
      sim::RunOptions options;
      options.warmup = 5000.0;
      options.batches = 12;
      options.batch_length = 8000.0;
      options.seed = 8080;
      options.service = scv == 0.0
                            ? sim::ServiceSpec::deterministic(1.0)
                            : sim::ServiceSpec::hyperexponential(scv, 1.0);
      const auto run = sim::run_switch(sim::Discipline::kFifo, {load}, options);
      const double analytic = queueing::g_mg1(load, scv);
      const double rel = run.users[0].mean_queue / analytic - 1.0;
      if (std::abs(rel) > 0.15) constraint_matches = false;
      bench::table_row({bench::fmt(scv, 1), bench::fmt(load, 1),
                        bench::fmt(analytic), bench::fmt(run.users[0].mean_queue),
                        bench::fmt(rel * 100.0, 2) + "%"});
    }
  }
  bench::verdict(constraint_matches,
                 "the packet simulator realizes the generalized constraint "
                 "curves g(x; scv) within 15%");
  return bench::failures();
}

GW_BENCH_MAIN(run)
