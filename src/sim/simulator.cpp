#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/perfcount.hpp"

namespace gw::sim {

Simulator::Simulator()
    : events_processed_(&obs::default_registry().counter(
          "sim.events_processed")) {}

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    return index;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t index) noexcept {
  Slot& slot = slots_[index];
  slot.action.reset();
  slot.armed = false;
  // Bumping the generation invalidates every outstanding EventId and heap
  // entry that still points at this slot; skip 0 on wrap so no id is 0
  // (stations use EventId 0 as their "nothing scheduled" sentinel).
  if (++slot.gen == 0) slot.gen = 1;
  slot.next_free = free_head_;
  free_head_ = index;
}

void Simulator::sift_up(std::size_t i) noexcept {
  const Entry entry = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!earlier(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void Simulator::sift_down(std::size_t i) noexcept {
  const Entry entry = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = (i << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t child = first + 1; child < last; ++child) {
      if (earlier(heap_[child], heap_[best])) best = child;
    }
    if (!earlier(heap_[best], entry)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = entry;
}

EventId Simulator::schedule_at(double t, Action action) {
  if (t < now_) throw std::invalid_argument("Simulator: scheduling in the past");
  if (!action) throw std::invalid_argument("Simulator: empty action");
  const std::uint32_t slot = acquire_slot();
  Slot& home = slots_[slot];
  home.action = std::move(action);
  home.armed = true;
  heap_.push_back(Entry{t, next_seq_++, slot, home.gen});
  sift_up(heap_.size() - 1);
  ++live_;
  return (static_cast<EventId>(home.gen) << 32) | slot;
}

EventId Simulator::schedule_in(double dt, Action action) {
  return schedule_at(now_ + dt, std::move(action));
}

void Simulator::cancel(EventId id) noexcept {
  const auto index = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (index >= slots_.size()) return;
  Slot& slot = slots_[index];
  if (!slot.armed || slot.gen != gen) return;  // fired/cancelled/bogus: no-op
  release_slot(index);
  --live_;
}

std::size_t Simulator::run_until(double t_end) {
  if (t_end < now_) {
    throw std::invalid_argument("Simulator: run_until into the past");
  }
  std::size_t fired = 0;
  while (!heap_.empty() && heap_.front().time <= t_end) {
    const Entry top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    Slot& slot = slots_[top.slot];
    if (!slot.armed || slot.gen != top.gen) continue;  // lazily cancelled
    now_ = top.time;
    // Move the action out and retire the slot *before* invoking: the
    // action may schedule (reusing this slot under a fresh generation) or
    // cancel, and a cancel of this very event must be a no-op.
    Action action = std::move(slot.action);
    release_slot(top.slot);
    --live_;
    action();
    ++fired;
    ++processed_;
  }
  now_ = t_end;
  events_processed_->inc(fired);
  obs::work::add(obs::work::Kind::kEventsProcessed, fired);
  return fired;
}

std::size_t Simulator::run_for(double dt) { return run_until(now_ + dt); }

}  // namespace gw::sim
