#include "core/envy.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/fair_share.hpp"
#include "core/proportional.hpp"
#include "numerics/rng.hpp"

namespace gw::core {
namespace {

TEST(EnvyMatrix, DiagonalIsZero) {
  const UtilityProfile profile{make_linear(1.0, 0.2), make_linear(1.0, 0.5)};
  const auto envy = envy_matrix(profile, {0.2, 0.3}, {0.5, 0.7});
  EXPECT_DOUBLE_EQ(envy(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(envy(1, 1), 0.0);
}

TEST(EnvyMatrix, DetectsObviousEnvy) {
  // Same utility; user 1 has strictly more throughput at equal congestion.
  const auto u = make_linear(1.0, 0.2);
  const auto envy = envy_matrix({u, u}, {0.1, 0.3}, {0.5, 0.5});
  EXPECT_GT(envy(0, 1), 0.0);
  EXPECT_LT(envy(1, 0), 0.0);
}

TEST(EnvyMatrix, SaturatedAllocationsNotEnvied) {
  const auto u = make_linear(1.0, 0.2);
  const double inf = std::numeric_limits<double>::infinity();
  const auto envy = envy_matrix({u, u}, {0.1, 0.9}, {0.2, inf});
  EXPECT_LT(envy(0, 1), 0.0);  // -inf: certainly no envy
  EXPECT_DOUBLE_EQ(envy(1, 1), 0.0);
}

TEST(MaxEnvy, ZeroForSymmetricAllocation) {
  const auto u = make_linear(1.0, 0.3);
  EXPECT_DOUBLE_EQ(max_envy({u, u}, {0.2, 0.2}, {0.4, 0.4}), 0.0);
}

TEST(Theorem3, FairShareUnilaterallyEnvyFree) {
  // After best-responding, a user envies no one under FS — for random
  // opponents' profiles, including floods (out of equilibrium!).
  const FairShareAllocation alloc;
  numerics::Rng rng(2027);
  const auto u = make_linear(1.0, 0.3);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<double> rates(4);
    for (auto& r : rates) r = rng.uniform(0.01, 0.8);
    const UtilityProfile profile{u, u, u, u};
    const auto result = unilateral_envy(alloc, profile, rates, 0);
    EXPECT_LE(result.max_envy, 1e-6)
        << "trial " << trial << " envies user " << result.envied;
  }
}

TEST(Theorem3, FairShareEnvyFreeForHeterogeneousUtilities) {
  const FairShareAllocation alloc;
  numerics::Rng rng(31337);
  for (int trial = 0; trial < 15; ++trial) {
    const UtilityProfile profile{
        make_linear(1.0, rng.uniform(0.1, 0.9)),
        make_linear(1.0, rng.uniform(0.1, 0.9)),
        make_linear(1.0, rng.uniform(0.1, 0.9)),
    };
    std::vector<double> rates(3);
    for (auto& r : rates) r = rng.uniform(0.02, 0.5);
    for (std::size_t i = 0; i < 3; ++i) {
      const auto result = unilateral_envy(alloc, profile, rates, i);
      EXPECT_LE(result.max_envy, 1e-6) << "trial " << trial << " user " << i;
    }
  }
}

TEST(Fifo, UnilateralEnvyExists) {
  // Under the proportional allocation, a best-responding light user envies
  // any heavier user (equal congestion-per-rate, utility increasing in r
  // at the interior optimum).
  const ProportionalAllocation alloc;
  const auto u = make_linear(1.0, 0.25);
  // Opponent fixed at a high-but-stable rate.
  const UtilityProfile profile{u, u};
  const auto result = unilateral_envy(alloc, profile, {0.1, 0.55}, 0);
  EXPECT_GT(result.max_envy, 0.0);
  EXPECT_EQ(result.envied, 1u);
}

TEST(UnilateralEnvy, ReportsBestResponseRate) {
  const FairShareAllocation alloc;
  const auto u = make_linear(1.0, 0.25);
  const auto result = unilateral_envy(alloc, {u, u}, {0.1, 0.2}, 0);
  EXPECT_GT(result.best_response_rate, 0.0);
  EXPECT_LT(result.best_response_rate, 1.0);
}

TEST(EnvyMatrix, SizeMismatchThrows) {
  const auto u = make_linear(1.0, 0.2);
  EXPECT_THROW((void)envy_matrix({u, u}, {0.1}, {0.1, 0.2}),
               std::invalid_argument);
}

}  // namespace
}  // namespace gw::core
