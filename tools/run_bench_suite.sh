#!/usr/bin/env bash
# Run every bench binary with --json --repeat and merge the telemetry into
# one gw.benchsuite.v1 document.
#
#   GW_BENCH_BIN_DIR   directory with the bench binaries (default build/bench)
#   GW_BENCHSTAT       gw-benchstat binary (default build/tools/gw-benchstat)
#   GW_BENCH_OUT_DIR   output directory (default <bin dir>/out)
#   GW_BENCH_REPEAT    reps per bench (default 3)
#   GW_BENCH_LABEL     manifest label for the run (default "suite")
#   GW_BENCH_THREADS   --threads for the parallel sweep loops (default 1;
#                      results are identical for any value, and the count
#                      is stamped into each run manifest)
#   GW_BENCH_COUNTERS  --counters mode for hardware perf counters
#                      (default auto; off skips perf_event_open, require
#                      fails the suite when counters cannot open)
#
# Normally invoked via `cmake --build build --target bench_suite`, which
# sets the first three. Produces $GW_BENCH_OUT_DIR/BENCH_SUITE.json and
# exits nonzero if any bench fails a verdict or emits no telemetry.
set -euo pipefail

BIN_DIR="${GW_BENCH_BIN_DIR:-build/bench}"
BENCHSTAT="${GW_BENCHSTAT:-build/tools/gw-benchstat}"
OUT_DIR="${GW_BENCH_OUT_DIR:-${BIN_DIR}/out}"
REPEAT="${GW_BENCH_REPEAT:-3}"
LABEL="${GW_BENCH_LABEL:-suite}"
THREADS="${GW_BENCH_THREADS:-1}"
COUNTERS="${GW_BENCH_COUNTERS:-auto}"

if [[ ! -d "${BIN_DIR}" ]]; then
  echo "run_bench_suite: no bench binary dir at ${BIN_DIR}" >&2
  exit 2
fi
if [[ ! -x "${BENCHSTAT}" ]]; then
  echo "run_bench_suite: gw-benchstat not built at ${BENCHSTAT}" >&2
  exit 2
fi

mkdir -p "${OUT_DIR}"
rm -f "${OUT_DIR}"/bench_*.json "${OUT_DIR}/BENCH_SUITE.json"

status=0
ran=0
warned_degraded=0
for bench in "${BIN_DIR}"/bench_*; do
  [[ -f "${bench}" && -x "${bench}" ]] || continue
  name="$(basename "${bench}")"
  out="${OUT_DIR}/${name}.json"
  extra=()
  reps="${REPEAT}"
  if [[ "${name}" == "bench_micro" ]]; then
    # google-benchmark repeats internally until timings stabilize, so the
    # microbench suite entry runs one rep with a shorter min time.
    extra+=("--benchmark_min_time=0.05")
    reps=1
  fi
  if [[ "${name}" == "bench_scale" ]]; then
    # E-SCALE's differential verdicts all live on the N <= 1e4 rungs; the
    # 1e5/1e6 rungs only add wall time, so the suite entry truncates the
    # ladder (the acceptance run uses the full default ladder).
    extra+=("--scale_nmax=10000")
    reps=1
  fi
  if [[ "${name}" == "bench_churn" ]]; then
    # E-CHURN's full-size defaults (512 users) exist for the acceptance
    # run; the suite entry shrinks the population so the whole suite stays
    # minutes-scale. The >=10x verdict has a wide margin at this size too.
    extra+=("--churn_users=128" "--churn_shard=32" "--churn_updates=384"
            "--churn_naive=16")
    reps=1
  fi
  echo "=== ${name} (repeat ${reps}) ==="
  if ! "${bench}" --json "${out}" --repeat "${reps}" --label "${LABEL}" \
      --threads "${THREADS}" --counters "${COUNTERS}" \
      "${extra[@]+"${extra[@]}"}" > "${OUT_DIR}/${name}.log" 2>&1; then
    echo "run_bench_suite: ${name} FAILED (see ${OUT_DIR}/${name}.log)" >&2
    status=1
  fi
  if [[ ! -s "${out}" ]]; then
    echo "run_bench_suite: ${name} wrote no telemetry" >&2
    status=1
    continue
  fi
  if [[ "${warned_degraded}" -eq 0 && "${COUNTERS}" != "off" ]] \
      && grep -q '"counters_available": *false' "${out}"; then
    echo "run_bench_suite: hardware counters unavailable — suite runs degraded (wall-time + work meters only)" >&2
    warned_degraded=1
  fi
  ran=$((ran + 1))
done

if [[ "${ran}" -eq 0 ]]; then
  echo "run_bench_suite: no bench binaries found in ${BIN_DIR}" >&2
  exit 2
fi

"${BENCHSTAT}" merge "${OUT_DIR}"/bench_*.json > "${OUT_DIR}/BENCH_SUITE.json"
echo "merged ${ran} bench runs -> ${OUT_DIR}/BENCH_SUITE.json"
exit "${status}"
