#include "core/proportional.hpp"

#include <limits>
#include <numeric>

#include "core/simd.hpp"

namespace gw::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

double total_of(std::span<const double> rates) {
  double total = 0.0;
  for (const double r : rates) total += r;
  return total;
}
}  // namespace

void ProportionalAllocation::congestion_into(std::span<const double> rates,
                                             std::span<double> out,
                                             EvalWorkspace& /*ws*/) const {
  const double total = total_of(rates);
  if (total >= 1.0) {
    for (std::size_t i = 0; i < rates.size(); ++i) {
      out[i] = rates[i] > 0.0 ? kInf : 0.0;
    }
    return;
  }
  const double inv = 1.0 / (1.0 - total);
  const std::size_t n = rates.size();
  GW_SIMD_LOOP
  for (std::size_t i = 0; i < n; ++i) out[i] = rates[i] * inv;
}

double ProportionalAllocation::congestion_of_into(std::size_t i,
                                                  std::span<const double> rates,
                                                  EvalWorkspace& /*ws*/) const {
  const double total = total_of(rates);
  if (total >= 1.0) return rates[i] > 0.0 ? kInf : 0.0;
  // Same reciprocal-multiply as congestion_into so the single-component
  // path is bit-identical to the vector path.
  const double inv = 1.0 / (1.0 - total);
  return rates[i] * inv;
}

void ProportionalAllocation::jacobian_into(std::span<const double> rates,
                                           numerics::Matrix& out,
                                           EvalWorkspace& /*ws*/) const {
  const std::size_t n = rates.size();
  out.resize(n, n);
  const double total = total_of(rates);
  if (total >= 1.0) {
    for (std::size_t i = 0; i < n; ++i) {
      double* const out_row = out.row_data(i);
      GW_SIMD_LOOP
      for (std::size_t j = 0; j < n; ++j) out_row[j] = kInf;
    }
    return;
  }
  // Entry expressions mirror partial() exactly (division, not
  // reciprocal-multiply) so the batched path is bit-identical to the
  // legacy entrywise path; each row is a broadcast fill plus a diagonal
  // overwrite.
  const double u = 1.0 - total;
  const double u2 = u * u;
  for (std::size_t i = 0; i < n; ++i) {
    const double own = rates[i] / u2;
    double* const out_row = out.row_data(i);
    GW_SIMD_LOOP
    for (std::size_t j = 0; j < n; ++j) out_row[j] = own;
    out_row[i] = 1.0 / u + own;
  }
}

void ProportionalAllocation::second_partials_into(std::span<const double> rates,
                                                  numerics::Matrix& out,
                                                  EvalWorkspace& /*ws*/) const {
  const std::size_t n = rates.size();
  out.resize(n, n);
  const double total = total_of(rates);
  if (total >= 1.0) {
    for (std::size_t i = 0; i < n; ++i) {
      double* const out_row = out.row_data(i);
      GW_SIMD_LOOP
      for (std::size_t j = 0; j < n; ++j) out_row[j] = kInf;
    }
    return;
  }
  // Mirrors second_partial() exactly; see jacobian_into.
  const double u = 1.0 - total;
  const double u2 = u * u;
  const double u3 = u2 * u;
  for (std::size_t i = 0; i < n; ++i) {
    const double shared = 2.0 * rates[i] / u3;
    const double off = 1.0 / u2 + shared;
    double* const out_row = out.row_data(i);
    GW_SIMD_LOOP
    for (std::size_t j = 0; j < n; ++j) out_row[j] = off;
    out_row[i] = 2.0 / u2 + shared;
  }
}

double ProportionalAllocation::partial(std::size_t i, std::size_t j,
                                       const std::vector<double>& rates) const {
  validate_rates(rates);
  const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
  if (total >= 1.0) return kInf;
  const double u = 1.0 - total;
  const double own = rates.at(i) / (u * u);
  return (i == j) ? 1.0 / u + own : own;
}

double ProportionalAllocation::second_partial(
    std::size_t i, std::size_t j, const std::vector<double>& rates) const {
  validate_rates(rates);
  const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
  if (total >= 1.0) return kInf;
  const double u = 1.0 - total;
  const double u2 = u * u;
  const double u3 = u2 * u;
  // d/dr_j [ 1/u + r_i/u^2 ]  (the i-derivative), so:
  //   j == i: 2/u^2 + 2 r_i / u^3;  j != i: 1/u^2 + 2 r_i / u^3.
  const double shared = 2.0 * rates.at(i) / u3;
  return (i == j) ? 2.0 / u2 + shared : 1.0 / u2 + shared;
}

}  // namespace gw::core
