// Serial cost sharing and proportional sharing over an arbitrary convex
// aggregate constraint g (paper footnote 5).
//
// GeneralSerialAllocation is the Fair Share construction with g pluggable:
//   S_k = (N-k+1) r_k + sum_{j<k} r_j (rates ascending),
//   C_k = sum_{m<=k} [g(S_m) - g(S_{m-1})] / (N-m+1).
// GeneralProportionalAllocation is the FIFO analogue: everyone pays in
// proportion to throughput, C_i = r_i * g(sum r) / sum r.
//
// With GFunction::mm1() these reduce exactly to FairShareAllocation and
// ProportionalAllocation (tested); with M/G/1 or abstract technologies
// they carry the paper's theorems beyond the exponential server.
#pragma once

#include "core/allocation.hpp"
#include "core/gfunction.hpp"

namespace gw::core {

class GeneralSerialAllocation final : public AllocationFunction {
 public:
  explicit GeneralSerialAllocation(GFunction g);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::vector<double> congestion(
      const std::vector<double>& rates) const override;
  [[nodiscard]] double partial(std::size_t i, std::size_t j,
                               const std::vector<double>& rates) const override;
  [[nodiscard]] double second_partial(
      std::size_t i, std::size_t j,
      const std::vector<double>& rates) const override;

  /// The generalized protective bound g(N r) / N (Theorem 8's analogue).
  [[nodiscard]] double protective_bound(double rate, std::size_t n) const;

  [[nodiscard]] const GFunction& g() const noexcept { return g_; }

 private:
  GFunction g_;
};

class GeneralProportionalAllocation final : public AllocationFunction {
 public:
  explicit GeneralProportionalAllocation(GFunction g);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::vector<double> congestion(
      const std::vector<double>& rates) const override;

 private:
  GFunction g_;
};

}  // namespace gw::core
