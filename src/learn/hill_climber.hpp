// Incremental hill climbing on achieved utility only.
//
// The learner alternates between playing its base rate and a probe rate
// one step away; comparing the two observed utilities decides the next
// move. Step size shrinks on direction reversals (success/failure
// adaptation), mirroring how an application would actually tune its
// sending rate. This is the paper's "most naive self-optimization
// algorithm" (Section 4.2.2).
#pragma once

#include "learn/learner.hpp"

namespace gw::learn {

struct HillClimberOptions {
  double initial_step = 0.02;
  double min_step = 1e-6;
  double shrink = 0.6;    ///< step multiplier on reversal
  double grow = 1.15;     ///< step multiplier on continued success
  double r_min = 1e-5;
  double r_max = 0.98;
  /// Observations averaged per phase before a move is judged. Raise above
  /// 1 in noisy (measurement-driven) environments: queueing noise at
  /// realistic window lengths otherwise drowns the local gradient and the
  /// climber random-walks.
  int samples_per_phase = 1;
};

class FiniteDifferenceHillClimber final : public Learner {
 public:
  explicit FiniteDifferenceHillClimber(double initial_rate,
                                       const HillClimberOptions& options = {});

  [[nodiscard]] std::string name() const override { return "HillClimber"; }
  [[nodiscard]] double current_rate() const override { return rate_; }
  double next_rate(const LearnerContext& context) override;
  void reset(double initial_rate) override;

  [[nodiscard]] double step() const noexcept { return step_; }

 private:
  enum class Phase { kAtBase, kAtProbe };

  HillClimberOptions options_;
  double rate_;        ///< rate currently being played
  double base_rate_;   ///< accepted operating point
  double base_utility_ = 0.0;
  double step_;
  int direction_ = +1;
  Phase phase_ = Phase::kAtBase;
  double phase_sum_ = 0.0;  ///< accumulated observations this phase
  int phase_samples_ = 0;
};

}  // namespace gw::learn
