#include "sim/stations.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace gw::sim {

// Cold trace-emission bodies, out of line so the inline hot-path hooks
// stay a load + branch when tracing is off.

void Station::trace_packet_instant(obs::TraceSession& trace, const char* name,
                                   const Packet& packet) const {
  trace.instant("packet", name, sim_.now() * 1e6, "user",
                static_cast<double>(packet.user));
}

void Station::emit_service_span() {
  if (auto* trace = obs::active_trace()) {
    trace->complete("station",
                    name() + " serve u" + std::to_string(service_span_user_),
                    service_span_start_ * 1e6,
                    (sim_.now() - service_span_start_) * 1e6);
  }
  service_span_open_ = false;
}

// ------------------------------------------------------------------ FIFO

void FifoStation::arrive(Packet packet) {
  note_arrival(packet);
  packet.remaining = packet.service_demand;
  queue_.push_back(packet);
  if (!busy_) start_service();
}

void FifoStation::start_service() {
  busy_ = true;
  trace_service_start(queue_.front());
  completion_ =
      sim_.schedule_in(queue_.front().remaining, [this] { complete(); });
}

void FifoStation::complete() {
  Packet done = queue_.front();
  queue_.pop_front();
  trace_service_stop();
  note_departure(done);
  if (queue_.empty()) {
    busy_ = false;
  } else {
    start_service();
  }
}

// --------------------------------------------------------------- LIFO-PR

void LifoPreemptStation::arrive(Packet packet) {
  note_arrival(packet);
  packet.remaining = packet.service_demand;
  if (busy_) {
    // Preempt: bank the in-service packet's progress.
    sim_.cancel(completion_);
    stack_.back().remaining -= sim_.now() - service_start_;
    trace_service_stop();
  }
  stack_.push_back(packet);
  serve_top();
}

void LifoPreemptStation::serve_top() {
  busy_ = true;
  service_start_ = sim_.now();
  trace_service_start(stack_.back());
  completion_ =
      sim_.schedule_in(std::max(stack_.back().remaining, 0.0),
                       [this] { complete(); });
}

void LifoPreemptStation::complete() {
  Packet done = stack_.back();
  stack_.pop_back();
  trace_service_stop();
  note_departure(done);
  if (stack_.empty()) {
    busy_ = false;
  } else {
    serve_top();
  }
}

// -------------------------------------------------------------------- PS

void PsStation::arrive(Packet packet) {
  note_arrival(packet);
  packet.remaining = packet.service_demand;
  age_jobs();
  jobs_.push_back(packet);
  reschedule();
}

void PsStation::age_jobs() {
  const double elapsed = sim_.now() - last_progress_;
  if (elapsed > 0.0 && !jobs_.empty()) {
    const double share = elapsed / static_cast<double>(jobs_.size());
    for (auto& job : jobs_) job.remaining -= share;
  }
  last_progress_ = sim_.now();
}

void PsStation::reschedule() {
  if (completion_ != 0) {
    sim_.cancel(completion_);
    completion_ = 0;
  }
  if (jobs_.empty()) return;
  double least = std::numeric_limits<double>::infinity();
  for (const auto& job : jobs_) least = std::min(least, job.remaining);
  const double until_done =
      std::max(least, 0.0) * static_cast<double>(jobs_.size());
  completion_ = sim_.schedule_in(until_done, [this] { complete(); });
}

void PsStation::complete() {
  age_jobs();
  // Finish the job(s) that have run out of work (ties are possible only
  // with zero-probability equal demands, but handle them robustly).
  constexpr double kEps = 1e-12;
  bool departed = false;
  for (std::size_t k = 0; k < jobs_.size();) {
    if (jobs_[k].remaining <= kEps) {
      note_departure(jobs_[k]);
      jobs_.erase(jobs_.begin() + static_cast<long>(k));
      departed = true;
    } else {
      ++k;
    }
  }
  if (!departed && !jobs_.empty()) {
    // The scheduled finisher's residual can exceed kEps by floating-point
    // jitter that is *below one ulp of the clock*, in which case the
    // rescheduled event would re-fire at the same timestamp forever.
    // The event only fires when some job was due: depart the minimum.
    std::size_t winner = 0;
    for (std::size_t k = 1; k < jobs_.size(); ++k) {
      if (jobs_[k].remaining < jobs_[winner].remaining) winner = k;
    }
    note_departure(jobs_[winner]);
    jobs_.erase(jobs_.begin() + static_cast<long>(winner));
  }
  completion_ = 0;
  reschedule();
}

// ------------------------------------------------ HOL (non-preemptive)

HolPriorityStation::HolPriorityStation(Simulator& sim, QueueTracker& tracker,
                                       std::size_t levels)
    : Station(sim, tracker), levels_(levels) {
  if (levels == 0) {
    throw std::invalid_argument("HolPriorityStation: zero levels");
  }
}

void HolPriorityStation::arrive(Packet packet) {
  const auto level = static_cast<std::size_t>(packet.priority);
  if (level >= levels_.size()) {
    throw std::invalid_argument("HolPriorityStation: bad priority");
  }
  note_arrival(packet);
  packet.remaining = packet.service_demand;
  levels_[level].push_back(std::move(packet));
  if (!busy_) serve_next();
}

void HolPriorityStation::serve_next() {
  for (auto& level : levels_) {
    if (level.empty()) continue;
    in_service_ = level.front();
    level.pop_front();
    busy_ = true;
    trace_service_start(in_service_);
    completion_ = sim_.schedule_in(in_service_.service_demand,
                                   [this] { complete(); });
    return;
  }
  busy_ = false;
}

void HolPriorityStation::complete() {
  busy_ = false;
  trace_service_stop();
  note_departure(in_service_);
  serve_next();
}

// --------------------------------------------------- preemptive priority

PreemptivePriorityStation::PreemptivePriorityStation(Simulator& sim,
                                                     QueueTracker& tracker,
                                                     std::size_t levels)
    : Station(sim, tracker), levels_(levels) {
  if (levels == 0) {
    throw std::invalid_argument("PreemptivePriorityStation: zero levels");
  }
}

void PreemptivePriorityStation::arrive(Packet packet) {
  note_arrival(packet);
  packet.remaining = packet.service_demand;
  const auto level = static_cast<std::size_t>(packet.priority);
  if (level >= levels_.size()) {
    throw std::invalid_argument("PreemptivePriorityStation: bad priority");
  }
  if (busy_ && level < static_cast<std::size_t>(in_service_.priority)) {
    // Higher-priority arrival preempts; bank progress and park the job at
    // the head of its class.
    sim_.cancel(completion_);
    in_service_.remaining -= sim_.now() - service_start_;
    trace_service_stop();
    levels_[static_cast<std::size_t>(in_service_.priority)].push_front(
        in_service_);
    busy_ = false;
  }
  levels_[level].push_back(std::move(packet));
  if (!busy_) serve_next();
}

void PreemptivePriorityStation::serve_next() {
  for (auto& level : levels_) {
    if (level.empty()) continue;
    in_service_ = level.front();
    level.pop_front();
    busy_ = true;
    service_start_ = sim_.now();
    trace_service_start(in_service_);
    completion_ = sim_.schedule_in(std::max(in_service_.remaining, 0.0),
                                   [this] { complete(); });
    return;
  }
  busy_ = false;
}

void PreemptivePriorityStation::complete() {
  busy_ = false;
  trace_service_stop();
  note_departure(in_service_);
  serve_next();
}

}  // namespace gw::sim
