// Numeric MAC-membership checking (paper Definition 2).
//
// MAC = monotonic allocation functions:
//   (1) dC_i/dr_j >= 0 for all i, j;
//   (2) dC_i/dr_i > 0;
//   (3) a zero cross-derivative stays zero as r_i decreases and the other
//       rates increase.
// Plus the AC requirements: symmetry, feasibility (aggregate + subsidiary
// constraints), interior allocations. The checker samples the natural
// domain and reports the worst violation of each condition — it cannot
// prove membership, but reliably detects non-membership and regression
// bugs in analytic derivatives.
#pragma once

#include <cstddef>
#include <string>

#include "core/allocation.hpp"

namespace gw::core {

struct MacCheckOptions {
  std::size_t users = 4;
  int samples = 300;
  unsigned seed = 5150;
  double derivative_tolerance = 1e-6;
  double feasibility_tolerance = 1e-7;
};

struct MacReport {
  int samples_checked = 0;
  int monotonicity_violations = 0;   ///< dC_i/dr_j < -tol
  int own_slope_violations = 0;      ///< dC_i/dr_i <= 0
  int symmetry_violations = 0;       ///< permuted input != permuted output
  int feasibility_violations = 0;    ///< aggregate or subsidiary constraints
  int zero_persistence_violations = 0;  ///< condition (3) spot checks
  double worst_monotonicity = 0.0;   ///< most negative cross-derivative
  double worst_feasibility = 0.0;    ///< largest |F| residual

  [[nodiscard]] bool in_mac() const noexcept {
    return monotonicity_violations == 0 && own_slope_violations == 0 &&
           symmetry_violations == 0 && feasibility_violations == 0 &&
           zero_persistence_violations == 0;
  }
  [[nodiscard]] std::string summary() const;
};

/// Randomized membership check over the natural domain D.
[[nodiscard]] MacReport check_mac(const AllocationFunction& alloc,
                                  const MacCheckOptions& options = {});

}  // namespace gw::core
