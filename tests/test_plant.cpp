// Lemma 5: planting Nash equilibria at arbitrary interior points, plus
// the lemma-level structure of the appendix (tie derivatives, acyclicity).
#include "core/plant.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/fair_share.hpp"
#include "core/mixture.hpp"
#include "core/nash.hpp"
#include "core/proportional.hpp"
#include "numerics/rng.hpp"

namespace gw::core {
namespace {

std::vector<double> random_interior(numerics::Rng& rng, std::size_t n,
                                    double max_total) {
  std::vector<double> rates(n);
  double total = 0.0;
  for (auto& r : rates) {
    r = rng.uniform(0.05, 1.0);
    total += r;
  }
  const double target = rng.uniform(0.3, max_total);
  for (auto& r : rates) r *= target / total;
  return rates;
}

TEST(Lemma5, PlantsEquilibriaUnderFairShare) {
  const FairShareAllocation alloc;
  numerics::Rng rng(808);
  for (int trial = 0; trial < 10; ++trial) {
    const auto target = random_interior(rng, 3, 0.85);
    EXPECT_TRUE(verify_planted(alloc, target))
        << "trial " << trial << " target (" << target[0] << "," << target[1]
        << "," << target[2] << ")";
  }
}

TEST(Lemma5, PlantsEquilibriaUnderProportional) {
  const ProportionalAllocation alloc;
  numerics::Rng rng(809);
  for (int trial = 0; trial < 10; ++trial) {
    const auto target = random_interior(rng, 3, 0.8);
    EXPECT_TRUE(verify_planted(alloc, target)) << "trial " << trial;
  }
}

TEST(Lemma5, PlantsEquilibriaUnderMixtures) {
  const MixtureAllocation alloc(0.4);
  numerics::Rng rng(810);
  for (int trial = 0; trial < 6; ++trial) {
    const auto target = random_interior(rng, 4, 0.8);
    EXPECT_TRUE(verify_planted(alloc, target)) << "trial " << trial;
  }
}

TEST(Lemma5, SolverRecoversThePlantedPoint) {
  // Not only is the target a Nash point: under FS it is the UNIQUE one,
  // so best-response dynamics from anywhere recover it.
  const FairShareAllocation alloc;
  const std::vector<double> target{0.12, 0.2, 0.3};
  const auto profile = plant_nash_profile(alloc, target);
  const auto solved = solve_nash(alloc, profile, {0.4, 0.05, 0.15});
  ASSERT_TRUE(solved.converged);
  for (std::size_t i = 0; i < target.size(); ++i) {
    EXPECT_NEAR(solved.rates[i], target[i], 1e-3) << "user " << i;
  }
}

TEST(Lemma5, FdcHoldsExactlyAtThePlant) {
  const FairShareAllocation alloc;
  const std::vector<double> target{0.1, 0.25};
  const auto profile = plant_nash_profile(alloc, target);
  const auto residuals = fdc_residuals(alloc, profile, target);
  for (const double e : residuals) EXPECT_NEAR(e, 0.0, 1e-9);
}

TEST(Lemma5, RejectsSaturatedTargets) {
  const ProportionalAllocation alloc;
  EXPECT_THROW((void)plant_nash_profile(alloc, {0.6, 0.7}),
               std::invalid_argument);
  EXPECT_THROW((void)plant_nash_profile(alloc, {0.0, 0.3}),
               std::invalid_argument);
}

TEST(Lemma1Structure, OnlyFairShareHasZeroTieDerivatives) {
  // The appendix's characterization signature: dC_i/dr_j = 0 at r_i = r_j.
  const std::vector<double> tie{0.2, 0.2, 0.1};
  const FairShareAllocation fs;
  EXPECT_DOUBLE_EQ(fs.partial(0, 1, tie), 0.0);
  const ProportionalAllocation fifo;
  EXPECT_GT(fifo.partial(0, 1, tie), 0.0);
  const MixtureAllocation mixture(0.3);
  EXPECT_GT(mixture.partial(0, 1, tie), 0.0);
}

TEST(Lemma3Structure, FairShareJacobianIsAcyclic) {
  // Acyclicity (no k-cycles, k >= 2) of dC_i/dr_j: with distinct rates the
  // FS Jacobian is strictly lower triangular in sorted order, hence
  // acyclic; proportional has all entries positive, hence 2-cycles.
  const FairShareAllocation fs;
  const ProportionalAllocation fifo;
  const std::vector<double> rates{0.15, 0.25, 0.1};
  bool fs_two_cycle = false, fifo_two_cycle = false;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 3; ++j) {
      if (fs.partial(i, j, rates) != 0.0 && fs.partial(j, i, rates) != 0.0) {
        fs_two_cycle = true;
      }
      if (fifo.partial(i, j, rates) != 0.0 &&
          fifo.partial(j, i, rates) != 0.0) {
        fifo_two_cycle = true;
      }
    }
  }
  EXPECT_FALSE(fs_two_cycle);
  EXPECT_TRUE(fifo_two_cycle);
}

TEST(Lemma2Structure, AllZeroCrossDerivativesOnlyAtSymmetricPoints) {
  // For FS, every cross-derivative vanishes iff all rates are equal.
  const FairShareAllocation fs;
  auto all_cross_zero = [&](const std::vector<double>& rates) {
    for (std::size_t i = 0; i < rates.size(); ++i) {
      for (std::size_t j = 0; j < rates.size(); ++j) {
        if (i != j && std::abs(fs.partial(i, j, rates)) > 1e-12) {
          return false;
        }
      }
    }
    return true;
  };
  EXPECT_TRUE(all_cross_zero({0.2, 0.2, 0.2}));
  EXPECT_FALSE(all_cross_zero({0.1, 0.2, 0.2}));
  EXPECT_FALSE(all_cross_zero({0.25, 0.1, 0.17}));
}

}  // namespace
}  // namespace gw::core
