// M/G/1 Pollaczek–Khinchine results.
//
// The paper notes (footnote 5) that all of its results carry over to any
// queueing system whose aggregate constraint g is strictly increasing and
// strictly convex — M/G/1 included. This module supplies those constraint
// functions for general service-time distributions, enabling the
// generalized feasibility experiments.
#pragma once

namespace gw::queueing {

/// First two moments of a service-time distribution.
struct ServiceMoments {
  double mean = 1.0;
  double second_moment = 2.0;  ///< E[S^2]; exponential(1) has 2

  /// Squared coefficient of variation.
  [[nodiscard]] double scv() const noexcept {
    const double variance = second_moment - mean * mean;
    return variance / (mean * mean);
  }

  [[nodiscard]] static ServiceMoments exponential(double rate) noexcept;
  [[nodiscard]] static ServiceMoments deterministic(double value) noexcept;
  /// Erlang-k with given mean.
  [[nodiscard]] static ServiceMoments erlang(int k, double mean) noexcept;
  /// Two-phase hyperexponential by probability/rate pairs.
  [[nodiscard]] static ServiceMoments hyperexponential(
      double p1, double rate1, double rate2) noexcept;
};

struct Mg1 {
  double lambda = 0.0;
  ServiceMoments service;

  [[nodiscard]] double load() const noexcept { return lambda * service.mean; }
  [[nodiscard]] bool stable() const noexcept { return load() < 1.0; }
  /// Mean waiting time (P-K), +inf if unstable.
  [[nodiscard]] double mean_wait() const noexcept;
  /// Mean sojourn time.
  [[nodiscard]] double mean_sojourn() const noexcept;
  /// Mean number in system (Little).
  [[nodiscard]] double mean_in_system() const noexcept;
};

/// Aggregate-constraint g for an M/G/1 at total load x (unit-mean service):
/// g_MG1(x) = x + x^2 (1 + scv) / (2 (1 - x)). Strictly increasing and
/// strictly convex on [0, 1) for any scv >= 0, as the paper requires.
[[nodiscard]] double g_mg1(double load, double scv) noexcept;

}  // namespace gw::queueing
